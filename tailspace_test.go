package tailspace

import (
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	res, err := Run("(+ 1 2)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != "3" {
		t.Fatalf("answer %q", res.Answer)
	}
	if res.Steps == 0 || res.ProgramSize == 0 {
		t.Fatalf("metadata missing: %+v", res)
	}
}

func TestRunEveryVariant(t *testing.T) {
	for _, v := range Variants {
		res, err := Run("(let ((x 2)) (* x 21))", Options{Variant: v})
		if err != nil {
			t.Fatalf("[%s] %v", v, err)
		}
		if res.Answer != "42" {
			t.Fatalf("[%s] answer %q", v, res.Answer)
		}
	}
}

func TestUnknownVariant(t *testing.T) {
	if _, err := Run("1", Options{Variant: "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunReportsStuck(t *testing.T) {
	_, err := Run("(car 5)", Options{})
	if err == nil || !strings.Contains(err.Error(), "car") {
		t.Fatalf("got %v", err)
	}
}

func TestApplyMeasuresSpace(t *testing.T) {
	res, err := Apply("(define (f n) (* n n))", "(quote 9)", Options{Measure: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != "81" {
		t.Fatalf("answer %q", res.Answer)
	}
	if res.SpaceFlat == 0 || res.SpaceLinked == 0 {
		t.Fatal("space must be measured")
	}
	if res.SpaceLinked > res.SpaceFlat {
		t.Fatalf("U (%d) must be <= S (%d)", res.SpaceLinked, res.SpaceFlat)
	}
}

func TestMeasureAllOrdering(t *testing.T) {
	m, err := MeasureAll("(define (f n) (if (zero? n) 0 (f (- n 1))))", "(quote 40)",
		Options{FixnumCosts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 8 {
		t.Fatalf("got %d variants", len(m))
	}
	if !(m[Tail].SpaceFlat <= m[GC].SpaceFlat && m[GC].SpaceFlat <= m[Stack].SpaceFlat) {
		t.Fatalf("hierarchy violated: tail=%d gc=%d stack=%d",
			m[Tail].SpaceFlat, m[GC].SpaceFlat, m[Stack].SpaceFlat)
	}
	if !(m[SFS].SpaceFlat <= m[Evlis].SpaceFlat && m[Evlis].SpaceFlat <= m[Tail].SpaceFlat) {
		t.Fatalf("hierarchy violated: sfs=%d evlis=%d tail=%d",
			m[SFS].SpaceFlat, m[Evlis].SpaceFlat, m[Tail].SpaceFlat)
	}
	if !(m[Tail].SpaceFlat <= m[SpaceEff].SpaceFlat && m[SpaceEff].SpaceFlat <= m[Naive].SpaceFlat) {
		t.Fatalf("monitor hierarchy violated: tail=%d spaceff=%d naive=%d",
			m[Tail].SpaceFlat, m[SpaceEff].SpaceFlat, m[Naive].SpaceFlat)
	}
}

func TestAnalyzeTailCalls(t *testing.T) {
	s, err := AnalyzeTailCalls("(define (f n) (if (zero? n) 0 (f (- n 1)))) f")
	if err != nil {
		t.Fatal(err)
	}
	if s.SelfTail != 1 {
		t.Fatalf("self = %d", s.SelfTail)
	}
	if s.Calls != s.NonTail+s.TailCalls {
		t.Fatalf("partition broken: %+v", s)
	}
}

func TestIsProperlyTailRecursive(t *testing.T) {
	proper, err := IsProperlyTailRecursive(Tail)
	if err != nil {
		t.Fatal(err)
	}
	if !proper {
		t.Fatal("Z_tail must be properly tail recursive")
	}
	improper, err := IsProperlyTailRecursive(GC)
	if err != nil {
		t.Fatal(err)
	}
	if improper {
		t.Fatal("Z_gc must not be properly tail recursive")
	}
}

func TestOrdersAgree(t *testing.T) {
	src := "(- (* 3 4) (+ 1 2))"
	for _, o := range []Order{LeftToRight, RightToLeft, RandomOrder} {
		res, err := Run(src, Options{Order: o, Seed: 5})
		if err != nil || res.Answer != "9" {
			t.Fatalf("order %v: %v %q", o, err, res.Answer)
		}
	}
}

func TestStackStrictSurfacesDangling(t *testing.T) {
	_, err := Run("(((lambda (x) (lambda (y) x)) 1) 2)", Options{Variant: Stack, StackStrict: true})
	if err == nil || !strings.Contains(err.Error(), "dangle") {
		t.Fatalf("got %v", err)
	}
}

func TestCallCCThroughFacade(t *testing.T) {
	res, err := Run("(+ 1 (call/cc (lambda (k) (k 41))))", Options{Variant: SFS})
	if err != nil || res.Answer != "42" {
		t.Fatalf("%v %q", err, res.Answer)
	}
}

func TestMTAVariantThroughFacade(t *testing.T) {
	res, err := Run("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 100)", Options{Variant: MTA})
	if err != nil || res.Answer != "0" {
		t.Fatalf("%v %q", err, res.Answer)
	}
}

func TestRunCPS(t *testing.T) {
	res, err := RunCPS("(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)",
		Options{Variant: Tail})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer != "3628800" {
		t.Fatalf("got %q", res.Answer)
	}
	// call/cc works with zero machine support after conversion.
	res, err = RunCPS("(call/cc (lambda (k) (+ 1 (k 41))))", Options{Variant: Tail})
	if err != nil || res.Answer != "41" {
		t.Fatalf("%v %q", err, res.Answer)
	}
}

func TestRunCPSParseError(t *testing.T) {
	if _, err := RunCPS("(if)", Options{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestRunSECD(t *testing.T) {
	loop := "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 300)"
	classic, err := RunSECD(loop, false)
	if err != nil {
		t.Fatal(err)
	}
	tailrec, err := RunSECD(loop, true)
	if err != nil {
		t.Fatal(err)
	}
	if classic.Answer != "0" || tailrec.Answer != "0" {
		t.Fatalf("answers %q %q", classic.Answer, tailrec.Answer)
	}
	if tailrec.PeakDump >= classic.PeakDump {
		t.Fatalf("tail-recursive dump (%d) should be far below classic (%d)",
			tailrec.PeakDump, classic.PeakDump)
	}
}

func TestRunSECDRejectsCallCC(t *testing.T) {
	if _, err := RunSECD("(call/cc (lambda (k) (k 1)))", true); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestCheckControlSpace(t *testing.T) {
	rep, err := CheckControlSpace("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 1)")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != ControlBounded {
		t.Fatalf("verdict %s: %v", rep.Verdict, rep.Findings)
	}
	rep, err = CheckControlSpace("(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1))))) (f 1)")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != ControlUnbounded || len(rep.Findings) == 0 {
		t.Fatalf("verdict %s: %v", rep.Verdict, rep.Findings)
	}
	if _, err := CheckControlSpace("(if)"); err == nil {
		t.Fatal("expected parse error")
	}
}
