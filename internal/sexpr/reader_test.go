package sexpr

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustReadOne(t *testing.T, src string) Datum {
	t.Helper()
	d, err := ReadOne(src)
	if err != nil {
		t.Fatalf("ReadOne(%q): %v", src, err)
	}
	return d
}

func TestReadBooleans(t *testing.T) {
	if d := mustReadOne(t, "#t"); d != Bool(true) {
		t.Fatalf("got %v", d)
	}
	if d := mustReadOne(t, "#f"); d != Bool(false) {
		t.Fatalf("got %v", d)
	}
}

func TestReadNumbers(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"42":     42,
		"-17":    -17,
		"+5":     5,
		"123456": 123456,
	}
	for src, want := range cases {
		d := mustReadOne(t, src)
		n, ok := d.(Num)
		if !ok {
			t.Fatalf("ReadOne(%q) = %T, want Num", src, d)
		}
		if n.Int.Int64() != want {
			t.Fatalf("ReadOne(%q) = %v, want %d", src, n, want)
		}
	}
}

func TestReadBigNumber(t *testing.T) {
	src := "123456789012345678901234567890"
	d := mustReadOne(t, src)
	n := d.(Num)
	want, _ := new(big.Int).SetString(src, 10)
	if n.Int.Cmp(want) != 0 {
		t.Fatalf("got %v want %v", n, want)
	}
}

func TestReadSymbols(t *testing.T) {
	for _, src := range []string{"foo", "set!", "+", "-", "...", "list->vector", "a1", "<=?", "%undef"} {
		d := mustReadOne(t, src)
		if s, ok := d.(Sym); !ok || string(s) != src {
			t.Fatalf("ReadOne(%q) = %#v", src, d)
		}
	}
}

func TestReadStrings(t *testing.T) {
	d := mustReadOne(t, `"hello\nworld \"x\""`)
	if s, ok := d.(Str); !ok || string(s) != "hello\nworld \"x\"" {
		t.Fatalf("got %#v", d)
	}
}

func TestReadChars(t *testing.T) {
	cases := map[string]rune{
		`#\a`:       'a',
		`#\space`:   ' ',
		`#\newline`: '\n',
		`#\(`:       '(',
		`#\1`:       '1',
	}
	for src, want := range cases {
		d := mustReadOne(t, src)
		if c, ok := d.(Char); !ok || rune(c) != want {
			t.Fatalf("ReadOne(%q) = %#v, want %q", src, d, want)
		}
	}
}

func TestReadLists(t *testing.T) {
	d := mustReadOne(t, "(a (b c) d)")
	want := List(Sym("a"), List(Sym("b"), Sym("c")), Sym("d"))
	if !Equal(d, want) {
		t.Fatalf("got %v want %v", d, want)
	}
}

func TestReadEmptyList(t *testing.T) {
	if _, ok := mustReadOne(t, "()").(Nil); !ok {
		t.Fatal("() should read as Nil")
	}
}

func TestReadDottedPair(t *testing.T) {
	d := mustReadOne(t, "(a . b)")
	p, ok := d.(*Pair)
	if !ok || !Equal(p.Car, Sym("a")) || !Equal(p.Cdr, Sym("b")) {
		t.Fatalf("got %v", d)
	}
}

func TestReadDottedList(t *testing.T) {
	d := mustReadOne(t, "(a b . c)")
	items, tail := FlattenDotted(d)
	if len(items) != 2 || !Equal(tail, Sym("c")) {
		t.Fatalf("got items=%v tail=%v", items, tail)
	}
}

func TestDotVsEllipsis(t *testing.T) {
	d := mustReadOne(t, "(a ... b)")
	want := List(Sym("a"), Sym("..."), Sym("b"))
	if !Equal(d, want) {
		t.Fatalf("got %v", d)
	}
}

func TestReadVector(t *testing.T) {
	d := mustReadOne(t, "#(1 2 three)")
	v, ok := d.(Vector)
	if !ok || len(v) != 3 {
		t.Fatalf("got %#v", d)
	}
	if !Equal(v[2], Sym("three")) {
		t.Fatalf("got %v", v)
	}
}

func TestReadQuoteAbbreviations(t *testing.T) {
	cases := map[string]Datum{
		"'x":     List(Sym("quote"), Sym("x")),
		"`x":     List(Sym("quasiquote"), Sym("x")),
		",x":     List(Sym("unquote"), Sym("x")),
		",@x":    List(Sym("unquote-splicing"), Sym("x")),
		"'(1 2)": List(Sym("quote"), List(NewNum(1), NewNum(2))),
	}
	for src, want := range cases {
		if d := mustReadOne(t, src); !Equal(d, want) {
			t.Fatalf("ReadOne(%q) = %v, want %v", src, d, want)
		}
	}
}

func TestReadComments(t *testing.T) {
	d := mustReadOne(t, "; header\n(a ; inline\n b) ; trailing")
	if !Equal(d, List(Sym("a"), Sym("b"))) {
		t.Fatalf("got %v", d)
	}
}

func TestReadBlockComments(t *testing.T) {
	d := mustReadOne(t, "#| outer #| nested |# still out |# (x)")
	if !Equal(d, List(Sym("x"))) {
		t.Fatalf("got %v", d)
	}
}

func TestReadDatumComment(t *testing.T) {
	d := mustReadOne(t, "(a #;(skipped thing) b)")
	if !Equal(d, List(Sym("a"), Sym("b"))) {
		t.Fatalf("got %v", d)
	}
}

func TestReadBrackets(t *testing.T) {
	d := mustReadOne(t, "(let ([x 1]) x)")
	want := List(Sym("let"), List(List(Sym("x"), NewNum(1))), Sym("x"))
	if !Equal(d, want) {
		t.Fatalf("got %v", d)
	}
}

func TestMismatchedBrackets(t *testing.T) {
	if _, err := ReadOne("(a]"); err == nil {
		t.Fatal("expected error for (a]")
	}
}

func TestReadAll(t *testing.T) {
	ds, err := ReadAll("(define x 1) (define y 2) (+ x y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("got %d data", len(ds))
	}
}

func TestReadErrors(t *testing.T) {
	for _, src := range []string{")", "(a", `"abc`, "#q", "(. b)", "(a . )", "(a . b c)", "'", "#\\"} {
		if _, err := ReadOne(src); err == nil {
			t.Errorf("ReadOne(%q): expected error", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := ReadOne("(a\n  ]")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("got %T: %v", err, err)
	}
	if se.Line != 2 {
		t.Fatalf("got line %d, want 2", se.Line)
	}
}

// randomDatum builds a random datum of bounded depth for the round-trip
// property test.
func randomDatum(r *rand.Rand, depth int) Datum {
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return Bool(r.Intn(2) == 0)
		case 1:
			return Num{Int: big.NewInt(r.Int63n(1 << 40))}
		case 2:
			syms := []string{"a", "foo", "set!", "+", "list->vector", "x1"}
			return Sym(syms[r.Intn(len(syms))])
		case 3:
			return Str("s" + string(rune('a'+r.Intn(26))))
		default:
			return Char(rune('a' + r.Intn(26)))
		}
	}
	switch r.Intn(4) {
	case 0:
		n := r.Intn(4)
		items := make([]Datum, n)
		for i := range items {
			items[i] = randomDatum(r, depth-1)
		}
		return List(items...)
	case 1:
		n := r.Intn(3)
		v := make(Vector, n)
		for i := range v {
			v[i] = randomDatum(r, depth-1)
		}
		return v
	case 2:
		return &Pair{Car: randomDatum(r, depth-1), Cdr: randomDatum(r, 0)}
	default:
		return randomDatum(r, 0)
	}
}

func TestPropertyPrintReadRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDatum(r, 4)
		text := d.String()
		back, err := ReadOne(text)
		if err != nil {
			t.Logf("reading %q: %v", text, err)
			return false
		}
		return Equal(d, back)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReadAllConcatenation(t *testing.T) {
	// Printing several data separated by whitespace and re-reading yields the
	// same sequence.
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		var parts []string
		var data []Datum
		for i := 0; i < n; i++ {
			d := randomDatum(r, 3)
			data = append(data, d)
			parts = append(parts, d.String())
		}
		back, err := ReadAll(strings.Join(parts, "\n"))
		if err != nil || len(back) != len(data) {
			return false
		}
		for i := range data {
			if !Equal(data[i], back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWriterRendering(t *testing.T) {
	cases := map[string]Datum{
		"#t":        Bool(true),
		"42":        NewNum(42),
		"(a b)":     List(Sym("a"), Sym("b")),
		"(a . b)":   &Pair{Car: Sym("a"), Cdr: Sym("b")},
		"#(1 2)":    Vector{NewNum(1), NewNum(2)},
		"()":        Nil{},
		`"hi"`:      Str("hi"),
		`#\space`:   Char(' '),
		"(a b . c)": ImproperList([]Datum{Sym("a"), Sym("b")}, Sym("c")),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestFlatten(t *testing.T) {
	items, ok := Flatten(List(Sym("a"), Sym("b")))
	if !ok || len(items) != 2 {
		t.Fatalf("got %v %v", items, ok)
	}
	if _, ok := Flatten(&Pair{Car: Sym("a"), Cdr: Sym("b")}); ok {
		t.Fatal("improper list should not flatten")
	}
}
