package sexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyReaderNeverPanics drives the reader with random byte soup:
// every input must either parse or return an error, never panic, and parsed
// output must survive a print/re-read round trip.
func TestPropertyReaderNeverPanics(t *testing.T) {
	chars := []byte("()[]#\\\"';`,.|ab01 \n\t-+")
	f := func(seed int64, length uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, int(length))
		for i := range buf {
			buf[i] = chars[r.Intn(len(chars))]
		}
		data, err := ReadAll(string(buf))
		if err != nil {
			return true // rejecting garbage is fine
		}
		for _, d := range data {
			back, err := ReadOne(d.String())
			if err != nil || !Equal(d, back) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReaderArbitraryUnicode feeds arbitrary strings straight from
// testing/quick's generator.
func TestPropertyReaderArbitraryUnicode(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = ReadAll(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeeplyNestedInput(t *testing.T) {
	// A pathological but legal input: 10k nested lists.
	depth := 10000
	src := ""
	for i := 0; i < depth; i++ {
		src += "("
	}
	src += "x"
	for i := 0; i < depth; i++ {
		src += ")"
	}
	if _, err := ReadOne(src); err != nil {
		t.Fatalf("deep nesting should parse: %v", err)
	}
}
