// Package sexpr provides the external syntax of Scheme: a reader and writer
// for s-expression data. The expander (internal/expand) lowers this surface
// syntax into the Core Scheme internal syntax of the paper's Figure 1.
package sexpr

import (
	"math/big"
	"strings"
)

// Datum is an external representation read from program text: booleans,
// exact integers, symbols, strings, characters, proper and improper lists,
// and vectors.
type Datum interface {
	isDatum()
	// String renders the datum in external (write) syntax.
	String() string
}

// Bool is the #t / #f literal.
type Bool bool

// Num is an exact integer literal of unbounded precision.
type Num struct{ Int *big.Int }

// Sym is a symbol.
type Sym string

// Str is a string literal.
type Str string

// Char is a character literal.
type Char rune

// Nil is the empty list ().
type Nil struct{}

// Pair is a cons cell; proper lists are chains of Pairs ending in Nil.
type Pair struct{ Car, Cdr Datum }

// Vector is a vector literal #(...).
type Vector []Datum

func (Bool) isDatum()   {}
func (Num) isDatum()    {}
func (Sym) isDatum()    {}
func (Str) isDatum()    {}
func (Char) isDatum()   {}
func (Nil) isDatum()    {}
func (*Pair) isDatum()  {}
func (Vector) isDatum() {}

// NewNum builds a Num from an int64.
func NewNum(v int64) Num { return Num{Int: big.NewInt(v)} }

// List builds a proper list from the given data.
func List(items ...Datum) Datum {
	var d Datum = Nil{}
	for i := len(items) - 1; i >= 0; i-- {
		d = &Pair{Car: items[i], Cdr: d}
	}
	return d
}

// ImproperList builds a dotted list ending in tail.
func ImproperList(items []Datum, tail Datum) Datum {
	d := tail
	for i := len(items) - 1; i >= 0; i-- {
		d = &Pair{Car: items[i], Cdr: d}
	}
	return d
}

// Flatten returns the elements of a proper list and reports whether d was in
// fact a proper list.
func Flatten(d Datum) ([]Datum, bool) {
	var out []Datum
	for {
		switch x := d.(type) {
		case Nil:
			return out, true
		case *Pair:
			out = append(out, x.Car)
			d = x.Cdr
		default:
			return out, false
		}
	}
}

// FlattenDotted splits a possibly-dotted list into its leading elements and
// final tail (Nil for a proper list).
func FlattenDotted(d Datum) (items []Datum, tail Datum) {
	for {
		p, ok := d.(*Pair)
		if !ok {
			return items, d
		}
		items = append(items, p.Car)
		d = p.Cdr
	}
}

// Equal reports structural equality of two data.
func Equal(a, b Datum) bool {
	switch x := a.(type) {
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Num:
		y, ok := b.(Num)
		return ok && x.Int.Cmp(y.Int) == 0
	case Sym:
		y, ok := b.(Sym)
		return ok && x == y
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Char:
		y, ok := b.(Char)
		return ok && x == y
	case Nil:
		_, ok := b.(Nil)
		return ok
	case *Pair:
		y, ok := b.(*Pair)
		return ok && Equal(x.Car, y.Car) && Equal(x.Cdr, y.Cdr)
	case Vector:
		y, ok := b.(Vector)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func (b Bool) String() string {
	if bool(b) {
		return "#t"
	}
	return "#f"
}

func (n Num) String() string { return n.Int.String() }

func (s Sym) String() string { return string(s) }

func (s Str) String() string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range string(s) {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func (c Char) String() string {
	switch rune(c) {
	case ' ':
		return `#\space`
	case '\n':
		return `#\newline`
	case '\t':
		return `#\tab`
	default:
		return `#\` + string(rune(c))
	}
}

func (Nil) String() string { return "()" }

func (p *Pair) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	sb.WriteString(p.Car.String())
	d := p.Cdr
	for {
		switch x := d.(type) {
		case Nil:
			sb.WriteByte(')')
			return sb.String()
		case *Pair:
			sb.WriteByte(' ')
			sb.WriteString(x.Car.String())
			d = x.Cdr
		default:
			sb.WriteString(" . ")
			sb.WriteString(x.String())
			sb.WriteByte(')')
			return sb.String()
		}
	}
}

func (v Vector) String() string {
	var sb strings.Builder
	sb.WriteString("#(")
	for i, d := range v {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(d.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
