package sexpr

import (
	"fmt"
	"math/big"
	"strings"
	"unicode"
)

// SyntaxError reports a malformed program text with a position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Reader parses a stream of data from program text.
type Reader struct {
	src       []rune
	pos       int
	line, col int
}

// NewReader returns a Reader over src.
func NewReader(src string) *Reader {
	return &Reader{src: []rune(src), line: 1, col: 1}
}

// ReadAll parses every datum in src.
func ReadAll(src string) ([]Datum, error) {
	r := NewReader(src)
	var out []Datum
	for {
		d, err := r.Read()
		if err != nil {
			return nil, err
		}
		if d == nil {
			return out, nil
		}
		out = append(out, d)
	}
}

// ReadOne parses exactly one datum and requires nothing but whitespace after it.
func ReadOne(src string) (Datum, error) {
	r := NewReader(src)
	d, err := r.Read()
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, r.errf("expected a datum, found end of input")
	}
	rest, err := r.Read()
	if err != nil {
		return nil, err
	}
	if rest != nil {
		return nil, r.errf("unexpected extra datum %s", rest)
	}
	return d, nil
}

func (r *Reader) errf(format string, args ...any) error {
	return &SyntaxError{Line: r.line, Col: r.col, Msg: fmt.Sprintf(format, args...)}
}

func (r *Reader) peek() (rune, bool) {
	if r.pos >= len(r.src) {
		return 0, false
	}
	return r.src[r.pos], true
}

func (r *Reader) next() (rune, bool) {
	c, ok := r.peek()
	if !ok {
		return 0, false
	}
	r.pos++
	if c == '\n' {
		r.line++
		r.col = 1
	} else {
		r.col++
	}
	return c, true
}

func (r *Reader) skipAtmosphere() error {
	for {
		c, ok := r.peek()
		if !ok {
			return nil
		}
		switch {
		case unicode.IsSpace(c):
			r.next()
		case c == ';':
			for {
				c, ok := r.next()
				if !ok || c == '\n' {
					break
				}
			}
		case c == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '|':
			r.next()
			r.next()
			depth := 1
			for depth > 0 {
				c, ok := r.next()
				if !ok {
					return r.errf("unterminated block comment")
				}
				if c == '|' {
					if d, ok := r.peek(); ok && d == '#' {
						r.next()
						depth--
					}
				} else if c == '#' {
					if d, ok := r.peek(); ok && d == '|' {
						r.next()
						depth++
					}
				}
			}
		case c == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == ';':
			// Datum comment: #; skips the next datum.
			r.next()
			r.next()
			if err := r.skipAtmosphere(); err != nil {
				return err
			}
			d, err := r.Read()
			if err != nil {
				return err
			}
			if d == nil {
				return r.errf("datum comment at end of input")
			}
		default:
			return nil
		}
	}
}

// Read parses the next datum, or returns (nil, nil) at end of input.
func (r *Reader) Read() (Datum, error) {
	if err := r.skipAtmosphere(); err != nil {
		return nil, err
	}
	c, ok := r.peek()
	if !ok {
		return nil, nil
	}
	switch c {
	case '(', '[':
		return r.readList(c)
	case ')', ']':
		return nil, r.errf("unexpected %q", c)
	case '\'':
		r.next()
		return r.readAbbrev("quote")
	case '`':
		r.next()
		return r.readAbbrev("quasiquote")
	case ',':
		r.next()
		if d, ok := r.peek(); ok && d == '@' {
			r.next()
			return r.readAbbrev("unquote-splicing")
		}
		return r.readAbbrev("unquote")
	case '"':
		return r.readString()
	case '#':
		return r.readHash()
	default:
		return r.readAtom()
	}
}

func (r *Reader) readAbbrev(tag string) (Datum, error) {
	d, err := r.Read()
	if err != nil {
		return nil, err
	}
	if d == nil {
		return nil, r.errf("expected a datum after %s abbreviation", tag)
	}
	return List(Sym(tag), d), nil
}

func closerFor(open rune) rune {
	if open == '[' {
		return ']'
	}
	return ')'
}

func (r *Reader) readList(open rune) (Datum, error) {
	r.next() // consume opener
	closer := closerFor(open)
	var items []Datum
	for {
		if err := r.skipAtmosphere(); err != nil {
			return nil, err
		}
		c, ok := r.peek()
		if !ok {
			return nil, r.errf("unterminated list")
		}
		if c == closer {
			r.next()
			return List(items...), nil
		}
		if c == ')' || c == ']' {
			return nil, r.errf("mismatched closer %q (expected %q)", c, closer)
		}
		if c == '.' && r.isDelimitedDot() {
			if len(items) == 0 {
				return nil, r.errf("dot with no preceding datum")
			}
			r.next()
			tail, err := r.Read()
			if err != nil {
				return nil, err
			}
			if tail == nil {
				return nil, r.errf("expected a datum after dot")
			}
			if err := r.skipAtmosphere(); err != nil {
				return nil, err
			}
			c, ok := r.next()
			if !ok || c != closer {
				return nil, r.errf("expected %q after dotted tail", closer)
			}
			return ImproperList(items, tail), nil
		}
		d, err := r.Read()
		if err != nil {
			return nil, err
		}
		if d == nil {
			return nil, r.errf("unterminated list")
		}
		items = append(items, d)
	}
}

// isDelimitedDot reports whether the '.' at the cursor stands alone (a dotted
// pair marker) as opposed to starting a symbol like '...'.
func (r *Reader) isDelimitedDot() bool {
	if r.pos+1 >= len(r.src) {
		return true
	}
	c := r.src[r.pos+1]
	return unicode.IsSpace(c) || c == '(' || c == ')' || c == '[' || c == ']' || c == ';'
}

func (r *Reader) readString() (Datum, error) {
	r.next() // consume quote
	var sb strings.Builder
	for {
		c, ok := r.next()
		if !ok {
			return nil, r.errf("unterminated string")
		}
		if c == '"' {
			return Str(sb.String()), nil
		}
		if c == '\\' {
			e, ok := r.next()
			if !ok {
				return nil, r.errf("unterminated string escape")
			}
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\\':
				sb.WriteRune(e)
			default:
				return nil, r.errf("unknown string escape \\%c", e)
			}
			continue
		}
		sb.WriteRune(c)
	}
}

func (r *Reader) readHash() (Datum, error) {
	r.next() // consume '#'
	c, ok := r.peek()
	if !ok {
		return nil, r.errf("lone #")
	}
	switch c {
	case 't', 'f':
		r.next()
		if d, ok := r.peek(); ok && !isDelimiter(d) {
			return nil, r.errf("bad boolean literal")
		}
		return Bool(c == 't'), nil
	case '(':
		d, err := r.readList('(')
		if err != nil {
			return nil, err
		}
		items, _ := Flatten(d)
		return Vector(items), nil
	case '\\':
		r.next()
		return r.readChar()
	default:
		return nil, r.errf("unknown # syntax #%c", c)
	}
}

func (r *Reader) readChar() (Datum, error) {
	c, ok := r.next()
	if !ok {
		return nil, r.errf("unterminated character literal")
	}
	// A named character is a letter followed by more letters.
	if unicode.IsLetter(c) {
		name := string(c)
		for {
			d, ok := r.peek()
			if !ok || isDelimiter(d) {
				break
			}
			r.next()
			name += string(d)
		}
		if len([]rune(name)) == 1 {
			return Char(c), nil
		}
		switch strings.ToLower(name) {
		case "space":
			return Char(' '), nil
		case "newline", "linefeed":
			return Char('\n'), nil
		case "tab":
			return Char('\t'), nil
		case "return":
			return Char('\r'), nil
		case "nul", "null":
			return Char(0), nil
		default:
			return nil, r.errf("unknown character name #\\%s", name)
		}
	}
	return Char(c), nil
}

func isDelimiter(c rune) bool {
	return unicode.IsSpace(c) || c == '(' || c == ')' || c == '[' || c == ']' || c == '"' || c == ';'
}

func (r *Reader) readAtom() (Datum, error) {
	var sb strings.Builder
	for {
		c, ok := r.peek()
		if !ok || isDelimiter(c) {
			break
		}
		r.next()
		sb.WriteRune(c)
	}
	text := sb.String()
	if text == "" {
		return nil, r.errf("empty atom")
	}
	if text == "." {
		return nil, r.errf("a lone dot is only valid inside a list")
	}
	if n, ok := parseInt(text); ok {
		return Num{Int: n}, nil
	}
	return Sym(text), nil
}

func parseInt(text string) (*big.Int, bool) {
	// Only treat text as a number when it is a valid exact integer; "+", "-",
	// and "..." are symbols.
	if text == "+" || text == "-" {
		return nil, false
	}
	body := text
	if body[0] == '+' || body[0] == '-' {
		body = body[1:]
	}
	if body == "" {
		return nil, false
	}
	for _, c := range body {
		if c < '0' || c > '9' {
			return nil, false
		}
	}
	n := new(big.Int)
	n, ok := n.SetString(text, 10)
	return n, ok
}
