package expand

import (
	"strings"
	"testing"

	"tailspace/internal/ast"
)

func mustExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func mustProgram(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("ParseProgram(%q): %v", src, err)
	}
	return e
}

func TestSelfEvaluating(t *testing.T) {
	if _, ok := mustExpr(t, "42").(*ast.Const); !ok {
		t.Fatal("number should expand to Const")
	}
	if _, ok := mustExpr(t, "#t").(*ast.Const); !ok {
		t.Fatal("boolean should expand to Const")
	}
	if _, ok := mustExpr(t, `"s"`).(*ast.Const); !ok {
		t.Fatal("string should expand to Const")
	}
}

func TestVariable(t *testing.T) {
	e := mustExpr(t, "x")
	if v, ok := e.(*ast.Var); !ok || v.Name != "x" {
		t.Fatalf("got %#v", e)
	}
}

func TestQuoteSimple(t *testing.T) {
	e := mustExpr(t, "'sym")
	c, ok := e.(*ast.Const)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if s, ok := c.Value.(ast.SymConst); !ok || string(s) != "sym" {
		t.Fatalf("got %#v", c.Value)
	}
}

func TestQuoteEmptyList(t *testing.T) {
	e := mustExpr(t, "'()")
	c := e.(*ast.Const)
	if _, ok := c.Value.(ast.NilConst); !ok {
		t.Fatalf("got %#v", c.Value)
	}
}

func TestQuoteCompoundLowersToConstructors(t *testing.T) {
	// Section 12: no compound constants; '(1 2) becomes (cons '1 (cons '2 '())).
	e := mustExpr(t, "'(1 2)")
	call, ok := e.(*ast.Call)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if op, ok := call.Operator().(*ast.Var); !ok || op.Name != "cons" {
		t.Fatalf("operator = %v", call.Operator())
	}
	if !strings.Contains(e.String(), "cons") {
		t.Fatalf("expansion %s should use cons", e)
	}
}

func TestQuoteVectorLowersToVectorCall(t *testing.T) {
	e := mustExpr(t, "'#(1 2 3)")
	call, ok := e.(*ast.Call)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if op := call.Operator().(*ast.Var); op.Name != "vector" {
		t.Fatalf("operator = %v", op.Name)
	}
	if len(call.Operands()) != 3 {
		t.Fatalf("got %d operands", len(call.Operands()))
	}
}

func TestLambda(t *testing.T) {
	e := mustExpr(t, "(lambda (x y) x)")
	lam, ok := e.(*ast.Lambda)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(lam.Params) != 2 || lam.Params[0] != "x" {
		t.Fatalf("params = %v", lam.Params)
	}
}

func TestLambdaRejectsVariadic(t *testing.T) {
	if _, err := ParseExpr("(lambda (x . rest) x)"); err == nil {
		t.Fatal("dotted formals must be rejected (Core Scheme fixes arity)")
	}
	if _, err := ParseExpr("(lambda args args)"); err == nil {
		t.Fatal("symbol formals must be rejected")
	}
}

func TestLambdaRejectsDuplicateParams(t *testing.T) {
	if _, err := ParseExpr("(lambda (x x) x)"); err == nil {
		t.Fatal("duplicate params must be rejected")
	}
}

func TestIfTwoArmed(t *testing.T) {
	e := mustExpr(t, "(if p 1)")
	f := e.(*ast.If)
	c, ok := f.Else.(*ast.Const)
	if !ok {
		t.Fatalf("else = %T", f.Else)
	}
	if _, ok := c.Value.(ast.UnspecifiedConst); !ok {
		t.Fatalf("else value = %#v", c.Value)
	}
}

func TestSet(t *testing.T) {
	e := mustExpr(t, "(set! x 1)")
	s := e.(*ast.Set)
	if s.Name != "x" {
		t.Fatalf("got %v", s.Name)
	}
}

func TestBeginSingle(t *testing.T) {
	e := mustExpr(t, "(begin x)")
	if _, ok := e.(*ast.Var); !ok {
		t.Fatalf("(begin x) should expand to x, got %T", e)
	}
}

func TestBeginSequence(t *testing.T) {
	e := mustExpr(t, "(begin a b c)")
	// ((lambda (g) ((lambda (g2) c) b)) a)
	call, ok := e.(*ast.Call)
	if !ok {
		t.Fatalf("got %T", e)
	}
	lam := call.Operator().(*ast.Lambda)
	if len(lam.Params) != 1 {
		t.Fatalf("params = %v", lam.Params)
	}
	if arg := call.Operands()[0].(*ast.Var); arg.Name != "a" {
		t.Fatalf("first evaluated = %v", arg.Name)
	}
}

func TestLet(t *testing.T) {
	e := mustExpr(t, "(let ((x 1) (y 2)) y)")
	call := e.(*ast.Call)
	lam := call.Operator().(*ast.Lambda)
	if len(lam.Params) != 2 || lam.Params[1] != "y" {
		t.Fatalf("params = %v", lam.Params)
	}
	if len(call.Operands()) != 2 {
		t.Fatalf("operands = %d", len(call.Operands()))
	}
}

func TestLetStar(t *testing.T) {
	e := mustExpr(t, "(let* ((x 1) (y x)) y)")
	// Outer let binds x; inner let binds y with x in scope.
	outer := e.(*ast.Call)
	outerLam := outer.Operator().(*ast.Lambda)
	if len(outerLam.Params) != 1 || outerLam.Params[0] != "x" {
		t.Fatalf("outer params = %v", outerLam.Params)
	}
	fv := ast.FreeVars(e)
	if fv.Contains("x") || fv.Contains("y") {
		t.Fatalf("let* must bind both variables; free = %v", fv.Sorted())
	}
}

func TestLetrecUsesUndef(t *testing.T) {
	e := mustExpr(t, "(letrec ((f (lambda (n) (f n)))) f)")
	if !strings.Contains(e.String(), "%undef") {
		t.Fatalf("letrec expansion should initialize with (%%undef): %s", e)
	}
	fv := ast.FreeVars(e)
	if fv.Contains("f") {
		t.Fatal("letrec must bind f")
	}
}

func TestNamedLet(t *testing.T) {
	e := mustExpr(t, "(let loop ((i 0)) (if (zero? i) 'done (loop (- i 1))))")
	fv := ast.FreeVars(e)
	if fv.Contains("loop") || fv.Contains("i") {
		t.Fatalf("named let must bind loop and i; free = %v", fv.Sorted())
	}
	if !fv.Contains("zero?") {
		t.Fatal("zero? should be free")
	}
}

func TestCondBasic(t *testing.T) {
	e := mustExpr(t, "(cond (a 1) (b 2) (else 3))")
	f, ok := e.(*ast.If)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if _, ok := f.Else.(*ast.If); !ok {
		t.Fatalf("nested if expected, got %T", f.Else)
	}
}

func TestCondNoElse(t *testing.T) {
	e := mustExpr(t, "(cond (a 1))")
	f := e.(*ast.If)
	c, ok := f.Else.(*ast.Const)
	if !ok {
		t.Fatalf("else = %T", f.Else)
	}
	if _, ok := c.Value.(ast.UnspecifiedConst); !ok {
		t.Fatal("fallthrough cond must be unspecified")
	}
}

func TestCondTestOnlyClause(t *testing.T) {
	e := mustExpr(t, "(cond ((f x)) (else 2))")
	// Must bind the test value once.
	call, ok := e.(*ast.Call)
	if !ok {
		t.Fatalf("got %T: %s", e, e)
	}
	if _, ok := call.Operator().(*ast.Lambda); !ok {
		t.Fatalf("expected let-expansion, got %s", e)
	}
}

func TestCondArrowClause(t *testing.T) {
	e := mustExpr(t, "(cond ((f x) => g) (else 2))")
	s := e.String()
	if !strings.Contains(s, "g") {
		t.Fatalf("receiver missing: %s", s)
	}
}

func TestAndOr(t *testing.T) {
	if e := mustExpr(t, "(and)"); e.String() != "(quote #t)" {
		t.Fatalf("(and) = %s", e)
	}
	if e := mustExpr(t, "(or)"); e.String() != "(quote #f)" {
		t.Fatalf("(or) = %s", e)
	}
	if _, ok := mustExpr(t, "(and a b)").(*ast.If); !ok {
		t.Fatal("(and a b) should be an if")
	}
	// (or a b) must evaluate a once.
	e := mustExpr(t, "(or a b)")
	if _, ok := e.(*ast.Call); !ok {
		t.Fatalf("(or a b) should bind its first test: %s", e)
	}
}

func TestWhenUnless(t *testing.T) {
	e := mustExpr(t, "(when p a b)")
	f := e.(*ast.If)
	if _, ok := f.Then.(*ast.Call); !ok {
		t.Fatalf("when body should be a sequence, got %T", f.Then)
	}
	e2 := mustExpr(t, "(unless p a)")
	f2 := e2.(*ast.If)
	if _, ok := f2.Then.(*ast.Const); !ok {
		t.Fatal("unless then-arm should be unspecified")
	}
}

func TestCase(t *testing.T) {
	e := mustExpr(t, "(case k ((1 2) 'small) ((3) 'three) (else 'big))")
	s := e.String()
	if !strings.Contains(s, "eqv?") {
		t.Fatalf("case should compare with eqv?: %s", s)
	}
}

func TestDo(t *testing.T) {
	e := mustExpr(t, "(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i 10) acc))")
	fv := ast.FreeVars(e)
	if fv.Contains("i") || fv.Contains("acc") {
		t.Fatalf("do must bind its variables; free = %v", fv.Sorted())
	}
	for _, want := range []string{"+", "="} {
		if !fv.Contains(want) {
			t.Fatalf("%s should be free in %s", want, e)
		}
	}
}

func TestDoWithoutStep(t *testing.T) {
	e := mustExpr(t, "(do ((x 5)) ((zero? x) 'done))")
	if ast.FreeVars(e).Contains("x") {
		t.Fatal("x must be bound")
	}
}

func TestQuasiquotePlain(t *testing.T) {
	e := mustExpr(t, "`(1 2)")
	if !strings.Contains(e.String(), "cons") {
		t.Fatalf("plain quasiquote lowers to conses: %s", e)
	}
}

func TestQuasiquoteUnquote(t *testing.T) {
	e := mustExpr(t, "`(1 ,x)")
	s := e.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "cons") {
		t.Fatalf("got %s", s)
	}
}

func TestQuasiquoteSplicing(t *testing.T) {
	e := mustExpr(t, "`(1 ,@xs 2)")
	if !strings.Contains(e.String(), "append") {
		t.Fatalf("splicing should use append: %s", e)
	}
}

func TestQuasiquoteNested(t *testing.T) {
	e := mustExpr(t, "``(a ,x)")
	// Depth-2 unquote is preserved as data.
	if !strings.Contains(e.String(), "unquote") {
		t.Fatalf("nested quasiquote should preserve unquote: %s", e)
	}
}

func TestInternalDefines(t *testing.T) {
	e := mustExpr(t, `(lambda (n)
	  (define (even? k) (if (zero? k) #t (odd? (- k 1))))
	  (define (odd? k) (if (zero? k) #f (even? (- k 1))))
	  (even? n))`)
	lam := e.(*ast.Lambda)
	fv := ast.FreeVars(lam.Body)
	if fv.Contains("even?") || fv.Contains("odd?") {
		t.Fatalf("internal defines must be bound; free = %v", fv.Sorted())
	}
}

func TestProgramDefines(t *testing.T) {
	e := mustProgram(t, "(define (f n) (f n)) (f 3)")
	fv := ast.FreeVars(e)
	if fv.Contains("f") {
		t.Fatal("top-level define must bind f")
	}
}

func TestProgramOnlyDefinesEvaluatesToLastDefinition(t *testing.T) {
	e := mustProgram(t, "(define (g x) x) (define (f n) (g n))")
	// Program value is the variable f.
	s := e.String()
	if !strings.HasSuffix(s, "f) (%undef) (%undef))") && !strings.Contains(s, "f)") {
		t.Fatalf("program should evaluate to f: %s", s)
	}
	if ast.FreeVars(e).Contains("f") {
		t.Fatal("f must be bound")
	}
}

func TestProgramRejectsDefineAfterExpression(t *testing.T) {
	if _, err := ParseProgram("(f 1) (define (f n) n)"); err == nil {
		t.Fatal("define after expression must be rejected")
	}
}

func TestDefineLabelsLambda(t *testing.T) {
	e := mustProgram(t, "(define (f n) (f n)) (f 1)")
	var found bool
	ast.Walk(e, func(x ast.Expr) bool {
		if lam, ok := x.(*ast.Lambda); ok && lam.Label == "f" {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("define should label its lambda with the defined name")
	}
}

func TestExpandErrors(t *testing.T) {
	bad := []string{
		"()",
		"(if)",
		"(if a b c d)",
		"(set! 3 x)",
		"(set! x)",
		"(lambda)",
		"(lambda (x))",
		"(let ((x)) x)",
		"(let)",
		"(quote)",
		"(quote a b)",
		"(define x 1)",
		"(cond (else 1) (a 2))",
		",x",
		"#(1 2)",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestGensymsAreUnreadable(t *testing.T) {
	x := New()
	g := x.gensym("t")
	if !strings.HasPrefix(g, "%") {
		t.Fatalf("gensym %q must be hygienic", g)
	}
	g2 := x.gensym("t")
	if g == g2 {
		t.Fatal("gensyms must be distinct")
	}
}

func TestShadowingOfKeywordsNotSupported(t *testing.T) {
	// Documented limitation: keywords are reserved. (let ((if 1)) if) still
	// parses because binding positions are not keyword positions.
	e := mustExpr(t, "(let ((ifx 1)) ifx)")
	if ast.FreeVars(e).Contains("ifx") {
		t.Fatal("ifx must be bound")
	}
}
