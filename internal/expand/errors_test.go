package expand_test

import (
	"strings"
	"testing"

	"tailspace/internal/core"
	"tailspace/internal/expand"
)

func TestExpandErrorRendering(t *testing.T) {
	_, err := expand.ParseExpr("(if)")
	if err == nil {
		t.Fatal("expected error")
	}
	ee, ok := err.(*expand.ExpandError)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if !strings.Contains(ee.Error(), "if") {
		t.Fatalf("message %q should mention the form", ee.Error())
	}
	// Error without a form.
	bare := &expand.ExpandError{Msg: "plain"}
	if bare.Error() != "expand: plain" {
		t.Fatalf("got %q", bare.Error())
	}
}

func TestQuoteAllAtomKinds(t *testing.T) {
	// Each quoted atom kind round-trips through evaluation.
	cases := map[string]string{
		"'#t":       "#t",
		"'42":       "42",
		"'sym":      "sym",
		`'"str"`:    `"str"`,
		`'#\a`:      `#\a`,
		"'()":       "()",
		"'(a . b)":  "(a . b)",
		"'#(1 (2))": "#(1 (2))",
	}
	for src, want := range cases {
		res, err := core.RunProgram(src, core.Options{})
		if err != nil || res.Err != nil {
			t.Fatalf("%q: %v %v", src, err, res.Err)
		}
		if res.Answer != want {
			t.Errorf("%q = %q, want %q", src, res.Answer, want)
		}
	}
}

func TestDefineFormErrors(t *testing.T) {
	bad := []string{
		"(define)",
		"(define 3 4)",
		"(define x)",
		"(define x 1 2)",
		"(define (3 x) x)",
		"(define ((f) x) x)",
	}
	for _, src := range bad {
		if _, err := expand.ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q): expected error", src)
		}
	}
}

func TestCaseFormErrors(t *testing.T) {
	bad := []string{
		"(case)",
		"(case k)",
		"(case k (bad))",
		"(case k (else 1) ((2) 2))",
		"(case k (3 4))",
	}
	for _, src := range bad {
		if _, err := expand.ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestCaseEmptyDataClause(t *testing.T) {
	res, err := core.RunProgram("(case 1 (() 'never) ((1) 'one))", core.Options{})
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.Answer != "one" {
		t.Fatalf("got %q", res.Answer)
	}
}

func TestWhenUnlessErrors(t *testing.T) {
	for _, src := range []string{"(when)", "(when p)", "(unless)", "(unless p)"} {
		if _, err := expand.ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestWhenUnlessEvaluation(t *testing.T) {
	cases := map[string]string{
		"(when #t 1 2)":   "2",
		"(when #f 1 2)":   "#!unspecified",
		"(unless #f 1 2)": "2",
		"(unless #t 1 2)": "#!unspecified",
	}
	for src, want := range cases {
		res, err := core.RunProgram(src, core.Options{})
		if err != nil || res.Err != nil {
			t.Fatalf("%q: %v %v", src, err, res.Err)
		}
		if res.Answer != want {
			t.Errorf("%q = %q, want %q", src, res.Answer, want)
		}
	}
}

func TestQuasiquoteEvaluation(t *testing.T) {
	cases := map[string]string{
		"`(1 2)":              "(1 2)",
		"`(1 ,(+ 1 1))":       "(1 2)",
		"`(1 ,@(list 2 3) 4)": "(1 2 3 4)",
		"`#(1 ,(+ 1 1))":      "#(1 2)",
		"`(a (b ,(* 2 2)))":   "(a (b 4))",
		"``(a ,(b))":          "(quasiquote (a (unquote (b))))",
		"`(x . ,(+ 1 1))":     "(x . 2)",
		"`,(+ 1 2)":           "3",
	}
	for src, want := range cases {
		res, err := core.RunProgram(src, core.Options{})
		if err != nil || res.Err != nil {
			t.Fatalf("%q: %v %v", src, err, res.Err)
		}
		if res.Answer != want {
			t.Errorf("%q = %q, want %q", src, res.Answer, want)
		}
	}
}

func TestQuasiquoteDepth2Splicing(t *testing.T) {
	// A depth-2 unquote-splicing stays quoted.
	res, err := core.RunProgram("``(,@(list 1))", core.Options{})
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if !strings.Contains(res.Answer, "unquote-splicing") {
		t.Fatalf("got %q", res.Answer)
	}
}

func TestDoErrors(t *testing.T) {
	bad := []string{
		"(do)",
		"(do ((x)) ((= x 1)))",
		"(do ((x 1 2 3)) ((= x 1)))",
		"(do ((3 1)) ((= 1 1)))",
		"(do x ((= 1 1)))",
		"(do ((x 1)) ())",
	}
	for _, src := range bad {
		if _, err := expand.ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestDoWithoutResultIsFalse(t *testing.T) {
	res, err := core.RunProgram("(do ((i 0 (+ i 1))) ((= i 3)))", core.Options{})
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.Answer != "#f" {
		t.Fatalf("got %q", res.Answer)
	}
}

func TestLetErrors(t *testing.T) {
	bad := []string{
		"(let loop x)",
		"(let ((x 1 2)) x)",
		"(let (x) x)",
		"(letrec ((x 1) (x 2)) x)",
		"(let* x)",
	}
	for _, src := range bad {
		if _, err := expand.ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestCondArrowArityError(t *testing.T) {
	if _, err := expand.ParseExpr("(cond ((f x) => g h) (else 1))"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBodyWithOnlyDefinesFails(t *testing.T) {
	if _, err := expand.ParseExpr("(lambda (x) (define y 1))"); err == nil {
		t.Fatal("body without expressions must fail")
	}
}

func TestImproperExpressionList(t *testing.T) {
	if _, err := expand.ParseExpr("(f . x)"); err == nil {
		t.Fatal("improper call must fail")
	}
}
