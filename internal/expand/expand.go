// Package expand lowers the external syntax of Scheme into the Core Scheme
// internal syntax of the paper's Figure 1. It expands the standard derived
// forms (let, let*, letrec, named let, begin, cond, case, and, or, when,
// unless, do, quasiquote) and rewrites compound quoted constants into
// constructor calls, as Section 12 of the paper requires: Programs and
// Inputs are Core Scheme expressions that contain no locations.
package expand

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/sexpr"
)

// ExpandError reports a malformed special form.
type ExpandError struct {
	Form sexpr.Datum
	Msg  string
}

func (e *ExpandError) Error() string {
	if e.Form != nil {
		return fmt.Sprintf("expand: %s: in %s", e.Msg, e.Form)
	}
	return "expand: " + e.Msg
}

// Expander rewrites surface syntax into Core Scheme.
type Expander struct {
	gensymCount int
}

// New returns a fresh Expander.
func New() *Expander { return &Expander{} }

// gensym returns an identifier that cannot appear in source programs.
func (x *Expander) gensym(hint string) string {
	x.gensymCount++
	return fmt.Sprintf("%%%s:%d", hint, x.gensymCount)
}

func errf(form sexpr.Datum, format string, args ...any) error {
	return &ExpandError{Form: form, Msg: fmt.Sprintf(format, args...)}
}

// Expr expands a single datum into a Core Scheme expression.
func (x *Expander) Expr(d sexpr.Datum) (ast.Expr, error) {
	switch t := d.(type) {
	case sexpr.Bool:
		return &ast.Const{Value: ast.BoolConst(bool(t))}, nil
	case sexpr.Num:
		return &ast.Const{Value: ast.NumConst{Int: t.Int}}, nil
	case sexpr.Str:
		return &ast.Const{Value: ast.StrConst(string(t))}, nil
	case sexpr.Char:
		return &ast.Const{Value: ast.CharConst(rune(t))}, nil
	case sexpr.Sym:
		return &ast.Var{Name: string(t)}, nil
	case sexpr.Nil:
		return nil, errf(d, "empty combination ()")
	case sexpr.Vector:
		return nil, errf(d, "vector literals must be quoted")
	case *sexpr.Pair:
		return x.expandPair(t)
	}
	return nil, errf(d, "unexpected datum")
}

func (x *Expander) expandPair(p *sexpr.Pair) (ast.Expr, error) {
	items, ok := sexpr.Flatten(p)
	if !ok {
		return nil, errf(p, "improper expression list")
	}
	if head, isSym := p.Car.(sexpr.Sym); isSym {
		switch string(head) {
		case "quote":
			if len(items) != 2 {
				return nil, errf(p, "quote takes one argument")
			}
			return x.quote(items[1])
		case "quasiquote":
			if len(items) != 2 {
				return nil, errf(p, "quasiquote takes one argument")
			}
			return x.quasiquote(items[1], 1)
		case "unquote", "unquote-splicing":
			return nil, errf(p, "%s outside quasiquote", head)
		case "lambda":
			return x.lambda(p, items, "")
		case "if":
			return x.ifForm(p, items)
		case "set!":
			return x.setForm(p, items)
		case "begin":
			return x.begin(items[1:])
		case "let":
			return x.let(p, items)
		case "let*":
			return x.letStar(p, items)
		case "letrec", "letrec*":
			return x.letrec(p, items)
		case "cond":
			return x.cond(p, items[1:])
		case "case":
			return x.caseForm(p, items)
		case "and":
			return x.and(items[1:])
		case "or":
			return x.or(items[1:])
		case "when":
			return x.when(p, items)
		case "unless":
			return x.unless(p, items)
		case "do":
			return x.doForm(p, items)
		case "mon":
			return x.monForm(p, items, "")
		case "->":
			return x.arrowForm(p, items)
		case "define", "define/contract":
			return nil, errf(p, "%s is only allowed at the top level or at the head of a body", head)
		}
	}
	// An ordinary procedure call.
	exprs := make([]ast.Expr, len(items))
	for i, it := range items {
		e, err := x.Expr(it)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
	}
	return &ast.Call{Exprs: exprs}, nil
}

// quote lowers a quoted datum. Simple constants become Const nodes; compound
// constants become constructor calls so that expressions carry no locations.
func (x *Expander) quote(d sexpr.Datum) (ast.Expr, error) {
	switch t := d.(type) {
	case sexpr.Bool:
		return &ast.Const{Value: ast.BoolConst(bool(t))}, nil
	case sexpr.Num:
		return &ast.Const{Value: ast.NumConst{Int: t.Int}}, nil
	case sexpr.Sym:
		return &ast.Const{Value: ast.SymConst(string(t))}, nil
	case sexpr.Str:
		return &ast.Const{Value: ast.StrConst(string(t))}, nil
	case sexpr.Char:
		return &ast.Const{Value: ast.CharConst(rune(t))}, nil
	case sexpr.Nil:
		return &ast.Const{Value: ast.NilConst{}}, nil
	case *sexpr.Pair:
		car, err := x.quote(t.Car)
		if err != nil {
			return nil, err
		}
		cdr, err := x.quote(t.Cdr)
		if err != nil {
			return nil, err
		}
		return &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: "cons"}, car, cdr}}, nil
	case sexpr.Vector:
		exprs := make([]ast.Expr, 0, len(t)+1)
		exprs = append(exprs, &ast.Var{Name: "vector"})
		for _, el := range t {
			q, err := x.quote(el)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, q)
		}
		return &ast.Call{Exprs: exprs}, nil
	}
	return nil, errf(d, "unquotable datum")
}

func (x *Expander) lambda(form sexpr.Datum, items []sexpr.Datum, label string) (ast.Expr, error) {
	if len(items) < 3 {
		return nil, errf(form, "lambda needs formals and a body")
	}
	params, err := formals(form, items[1])
	if err != nil {
		return nil, err
	}
	body, err := x.body(items[2:])
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = x.gensym("lambda")
	}
	return &ast.Lambda{Params: params, Body: body, Label: label}, nil
}

// monForm expands (mon ctc expr). label is the blame label: the defined name
// when the form is the right-hand side of a define/contract, a gensym
// otherwise. A lambda literal under the monitor inherits the label so the
// tail-call classifier still recognizes self-calls of contracted procedures.
func (x *Expander) monForm(form sexpr.Datum, items []sexpr.Datum, label string) (ast.Expr, error) {
	if len(items) != 3 {
		return nil, errf(form, "mon takes a contract and an expression")
	}
	ctc, err := x.Expr(items[1])
	if err != nil {
		return nil, err
	}
	var body ast.Expr
	if label != "" {
		if p, ok := items[2].(*sexpr.Pair); ok {
			if head, ok := p.Car.(sexpr.Sym); ok && string(head) == "lambda" {
				if li, flat := sexpr.Flatten(p); flat {
					body, err = x.lambda(p, li, label)
					if err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if body == nil {
		body, err = x.Expr(items[2])
		if err != nil {
			return nil, err
		}
	}
	if label == "" {
		label = x.gensym("mon")
	}
	return &ast.Mon{Ctc: ctc, Expr: body, Label: label}, nil
}

// arrowForm expands (-> dom... cod) into a call of the %-> combinator, which
// allocates the arrow contract as an ordinary value: erasing machines build
// and drop it, monitor machines wrap procedures in it.
func (x *Expander) arrowForm(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 2 {
		return nil, errf(form, "-> needs a codomain contract")
	}
	exprs := make([]ast.Expr, 0, len(items))
	exprs = append(exprs, &ast.Var{Name: "%->"})
	for _, it := range items[1:] {
		e, err := x.Expr(it)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	return &ast.Call{Exprs: exprs}, nil
}

func formals(form, d sexpr.Datum) ([]string, error) {
	items, ok := sexpr.Flatten(d)
	if !ok {
		return nil, errf(form, "variadic formals are not part of Core Scheme (Figure 1 fixes the arity)")
	}
	params := make([]string, len(items))
	seen := map[string]bool{}
	for i, it := range items {
		s, ok := it.(sexpr.Sym)
		if !ok {
			return nil, errf(form, "formal parameter %s is not an identifier", it)
		}
		if seen[string(s)] {
			return nil, errf(form, "duplicate formal parameter %s", s)
		}
		seen[string(s)] = true
		params[i] = string(s)
	}
	return params, nil
}

// body expands a lambda/let body: leading internal defines become a letrec.
func (x *Expander) body(items []sexpr.Datum) (ast.Expr, error) {
	var defs []definition
	rest := items
	for len(rest) > 0 {
		def, ok, err := x.asDefinition(rest[0])
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		defs = append(defs, def)
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return nil, errf(nil, "body has no expressions")
	}
	tail, err := x.begin(rest)
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return tail, nil
	}
	return x.letrecFromDefs(defs, tail)
}

// definition is a parsed (define name rhs) form, with the rhs not yet
// expanded so that letrec labels can be attached to lambdas.
type definition struct {
	name string
	rhs  sexpr.Datum
}

// asDefinition recognizes (define I E), (define (I args...) body...), and
// the contracted forms (define/contract I ctc E) and
// (define/contract (I args...) ctc body...), which attach a mon wrapper to
// the right-hand side.
func (x *Expander) asDefinition(d sexpr.Datum) (definition, bool, error) {
	p, ok := d.(*sexpr.Pair)
	if !ok {
		return definition{}, false, nil
	}
	head, ok := p.Car.(sexpr.Sym)
	if !ok {
		return definition{}, false, nil
	}
	switch string(head) {
	case "define":
		items, ok := sexpr.Flatten(p)
		if !ok || len(items) < 2 {
			return definition{}, false, errf(d, "malformed define")
		}
		switch target := items[1].(type) {
		case sexpr.Sym:
			if len(items) != 3 {
				return definition{}, false, errf(d, "define of a variable takes exactly one expression")
			}
			return definition{name: string(target), rhs: items[2]}, true, nil
		case *sexpr.Pair:
			// (define (f a b) body...) => f = (lambda (a b) body...)
			nameD := target.Car
			name, ok := nameD.(sexpr.Sym)
			if !ok {
				return definition{}, false, errf(d, "procedure name is not an identifier")
			}
			lam := sexpr.ImproperList(
				append([]sexpr.Datum{sexpr.Sym("lambda"), target.Cdr}, items[2:]...), sexpr.Nil{})
			return definition{name: string(name), rhs: lam}, true, nil
		default:
			return definition{}, false, errf(d, "malformed define target")
		}
	case "define/contract":
		items, ok := sexpr.Flatten(p)
		if !ok || len(items) < 4 {
			return definition{}, false, errf(d, "define/contract takes a target, a contract, and an expression")
		}
		switch target := items[1].(type) {
		case sexpr.Sym:
			if len(items) != 4 {
				return definition{}, false, errf(d, "define/contract of a variable takes a contract and one expression")
			}
			mon := sexpr.List(sexpr.Sym("mon"), items[2], items[3])
			return definition{name: string(target), rhs: mon}, true, nil
		case *sexpr.Pair:
			// (define/contract (f a b) ctc body...)
			//   => f = (mon ctc (lambda (a b) body...))
			name, ok := target.Car.(sexpr.Sym)
			if !ok {
				return definition{}, false, errf(d, "procedure name is not an identifier")
			}
			lam := sexpr.ImproperList(
				append([]sexpr.Datum{sexpr.Sym("lambda"), target.Cdr}, items[3:]...), sexpr.Nil{})
			mon := sexpr.List(sexpr.Sym("mon"), items[2], lam)
			return definition{name: string(name), rhs: mon}, true, nil
		default:
			return definition{}, false, errf(d, "malformed define/contract target")
		}
	}
	return definition{}, false, nil
}

// expandRHS expands a definition right-hand side, labelling lambdas with the
// defined name so the tail-call classifier can recognize self-tail calls. A
// mon right-hand side (define/contract) labels both the monitor and any
// lambda literal inside it with the defined name.
func (x *Expander) expandRHS(def definition) (ast.Expr, error) {
	if p, ok := def.rhs.(*sexpr.Pair); ok {
		if head, ok := p.Car.(sexpr.Sym); ok {
			if items, flat := sexpr.Flatten(p); flat {
				switch string(head) {
				case "lambda":
					return x.lambda(p, items, def.name)
				case "mon":
					return x.monForm(p, items, def.name)
				}
			}
		}
	}
	return x.Expr(def.rhs)
}

// letrecFromDefs builds the Core Scheme expansion of letrec*:
//
//	((lambda (x1 ... xn)
//	   (begin (set! x1 e1) ... (set! xn en) body))
//	 (%undef) ... (%undef))
//
// Reading a variable before its set! runs yields UNDEFINED, which sticks the
// machine — exactly the R5RS letrec restriction.
func (x *Expander) letrecFromDefs(defs []definition, tail ast.Expr) (ast.Expr, error) {
	params := make([]string, len(defs))
	seen := map[string]bool{}
	seq := make([]ast.Expr, 0, len(defs)+1)
	for i, def := range defs {
		if seen[def.name] {
			return nil, errf(nil, "duplicate definition of %s", def.name)
		}
		seen[def.name] = true
		params[i] = def.name
		rhs, err := x.expandRHS(def)
		if err != nil {
			return nil, err
		}
		seq = append(seq, &ast.Set{Name: def.name, Rhs: rhs})
	}
	seq = append(seq, tail)
	body := x.sequence(seq)
	callExprs := make([]ast.Expr, 0, len(defs)+1)
	callExprs = append(callExprs, &ast.Lambda{Params: params, Body: body, Label: x.gensym("letrec")})
	for range defs {
		callExprs = append(callExprs, &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: "%undef"}}})
	}
	return &ast.Call{Exprs: callExprs}, nil
}

func (x *Expander) ifForm(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) != 3 && len(items) != 4 {
		return nil, errf(form, "if takes two or three subexpressions")
	}
	test, err := x.Expr(items[1])
	if err != nil {
		return nil, err
	}
	then, err := x.Expr(items[2])
	if err != nil {
		return nil, err
	}
	var els ast.Expr = &ast.Const{Value: ast.UnspecifiedConst{}}
	if len(items) == 4 {
		if els, err = x.Expr(items[3]); err != nil {
			return nil, err
		}
	}
	return &ast.If{Test: test, Then: then, Else: els}, nil
}

func (x *Expander) setForm(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) != 3 {
		return nil, errf(form, "set! takes an identifier and an expression")
	}
	name, ok := items[1].(sexpr.Sym)
	if !ok {
		return nil, errf(form, "set! target is not an identifier")
	}
	rhs, err := x.Expr(items[2])
	if err != nil {
		return nil, err
	}
	return &ast.Set{Name: string(name), Rhs: rhs}, nil
}

// begin expands a sequence. Core Scheme has no sequencing form, so
// (begin e1 e2 ...) becomes ((lambda (ignored) (begin e2 ...)) e1).
func (x *Expander) begin(items []sexpr.Datum) (ast.Expr, error) {
	if len(items) == 0 {
		return &ast.Const{Value: ast.UnspecifiedConst{}}, nil
	}
	exprs := make([]ast.Expr, len(items))
	for i, it := range items {
		e, err := x.Expr(it)
		if err != nil {
			return nil, err
		}
		exprs[i] = e
	}
	return x.sequence(exprs), nil
}

// sequence chains already-expanded expressions with ignored bindings.
func (x *Expander) sequence(exprs []ast.Expr) ast.Expr {
	result := exprs[len(exprs)-1]
	for i := len(exprs) - 2; i >= 0; i-- {
		ignored := x.gensym("seq")
		result = &ast.Call{Exprs: []ast.Expr{
			&ast.Lambda{Params: []string{ignored}, Body: result, Label: x.gensym("begin")},
			exprs[i],
		}}
	}
	return result
}

type binding struct {
	name string
	init sexpr.Datum
}

func parseBindings(form, d sexpr.Datum) ([]binding, error) {
	items, ok := sexpr.Flatten(d)
	if !ok {
		return nil, errf(form, "malformed binding list")
	}
	out := make([]binding, len(items))
	for i, it := range items {
		pair, ok := sexpr.Flatten(it)
		if !ok || len(pair) != 2 {
			return nil, errf(form, "binding %s is not (name init)", it)
		}
		name, ok := pair[0].(sexpr.Sym)
		if !ok {
			return nil, errf(form, "binding name %s is not an identifier", pair[0])
		}
		out[i] = binding{name: string(name), init: pair[1]}
	}
	return out, nil
}

func (x *Expander) let(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) >= 3 {
		if name, ok := items[1].(sexpr.Sym); ok {
			return x.namedLet(form, string(name), items)
		}
	}
	if len(items) < 3 {
		return nil, errf(form, "let needs bindings and a body")
	}
	binds, err := parseBindings(form, items[1])
	if err != nil {
		return nil, err
	}
	body, err := x.body(items[2:])
	if err != nil {
		return nil, err
	}
	params := make([]string, len(binds))
	callExprs := make([]ast.Expr, 0, len(binds)+1)
	callExprs = append(callExprs, nil) // placeholder for the lambda
	for i, b := range binds {
		params[i] = b.name
		init, err := x.Expr(b.init)
		if err != nil {
			return nil, err
		}
		callExprs = append(callExprs, init)
	}
	callExprs[0] = &ast.Lambda{Params: params, Body: body, Label: x.gensym("let")}
	return &ast.Call{Exprs: callExprs}, nil
}

func (x *Expander) namedLet(form sexpr.Datum, name string, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 4 {
		return nil, errf(form, "named let needs bindings and a body")
	}
	binds, err := parseBindings(form, items[2])
	if err != nil {
		return nil, err
	}
	// (let loop ((v i) ...) body) =>
	//   (letrec ((loop (lambda (v ...) body))) (loop i ...))
	params := make([]sexpr.Datum, len(binds))
	inits := make([]sexpr.Datum, len(binds))
	for i, b := range binds {
		params[i] = sexpr.Sym(b.name)
		inits[i] = b.init
	}
	lam := sexpr.ImproperList(
		append([]sexpr.Datum{sexpr.Sym("lambda"), sexpr.List(params...)}, items[3:]...), sexpr.Nil{})
	def := definition{name: name, rhs: lam}
	callD := sexpr.List(append([]sexpr.Datum{sexpr.Sym(name)}, inits...)...)
	callE, err := x.Expr(callD)
	if err != nil {
		return nil, err
	}
	return x.letrecFromDefs([]definition{def}, callE)
}

func (x *Expander) letStar(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 3 {
		return nil, errf(form, "let* needs bindings and a body")
	}
	binds, err := parseBindings(form, items[1])
	if err != nil {
		return nil, err
	}
	if len(binds) <= 1 {
		return x.let(form, items)
	}
	// (let* ((a x) rest...) body) => (let ((a x)) (let* (rest...) body))
	first := sexpr.List(sexpr.Sym(binds[0].name), binds[0].init)
	restBinds, _ := sexpr.Flatten(items[1])
	inner := sexpr.ImproperList(
		append([]sexpr.Datum{sexpr.Sym("let*"), sexpr.List(restBinds[1:]...)}, items[2:]...), sexpr.Nil{})
	outer := sexpr.List(sexpr.Sym("let"), sexpr.List(first), inner)
	return x.Expr(outer)
}

func (x *Expander) letrec(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 3 {
		return nil, errf(form, "letrec needs bindings and a body")
	}
	binds, err := parseBindings(form, items[1])
	if err != nil {
		return nil, err
	}
	defs := make([]definition, len(binds))
	for i, b := range binds {
		defs[i] = definition{name: b.name, rhs: b.init}
	}
	body, err := x.body(items[2:])
	if err != nil {
		return nil, err
	}
	return x.letrecFromDefs(defs, body)
}

func (x *Expander) cond(form sexpr.Datum, clauses []sexpr.Datum) (ast.Expr, error) {
	if len(clauses) == 0 {
		return &ast.Const{Value: ast.UnspecifiedConst{}}, nil
	}
	clause, ok := sexpr.Flatten(clauses[0])
	if !ok || len(clause) == 0 {
		return nil, errf(form, "malformed cond clause")
	}
	if s, ok := clause[0].(sexpr.Sym); ok && string(s) == "else" {
		if len(clauses) != 1 {
			return nil, errf(form, "else clause must be last")
		}
		return x.begin(clause[1:])
	}
	rest, err := x.cond(form, clauses[1:])
	if err != nil {
		return nil, err
	}
	test, err := x.Expr(clause[0])
	if err != nil {
		return nil, err
	}
	switch {
	case len(clause) == 1:
		// (cond (test) ...) returns the test value when it is true.
		tmp := x.gensym("cond")
		return &ast.Call{Exprs: []ast.Expr{
			&ast.Lambda{
				Params: []string{tmp},
				Body:   &ast.If{Test: &ast.Var{Name: tmp}, Then: &ast.Var{Name: tmp}, Else: rest},
				Label:  x.gensym("cond"),
			},
			test,
		}}, nil
	case len(clause) >= 3 && isSym(clause[1], "=>"):
		if len(clause) != 3 {
			t := clause[1]
			return nil, errf(form, "cond => clause takes one receiver, got %s", t)
		}
		recv, err := x.Expr(clause[2])
		if err != nil {
			return nil, err
		}
		tmp := x.gensym("cond")
		return &ast.Call{Exprs: []ast.Expr{
			&ast.Lambda{
				Params: []string{tmp},
				Body: &ast.If{
					Test: &ast.Var{Name: tmp},
					Then: &ast.Call{Exprs: []ast.Expr{recv, &ast.Var{Name: tmp}}},
					Else: rest,
				},
				Label: x.gensym("cond"),
			},
			test,
		}}, nil
	default:
		then, err := x.begin(clause[1:])
		if err != nil {
			return nil, err
		}
		return &ast.If{Test: test, Then: then, Else: rest}, nil
	}
}

func isSym(d sexpr.Datum, name string) bool {
	s, ok := d.(sexpr.Sym)
	return ok && string(s) == name
}

func (x *Expander) caseForm(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 3 {
		return nil, errf(form, "case needs a key and clauses")
	}
	key, err := x.Expr(items[1])
	if err != nil {
		return nil, err
	}
	tmp := x.gensym("case")
	body, err := x.caseClauses(form, tmp, items[2:])
	if err != nil {
		return nil, err
	}
	return &ast.Call{Exprs: []ast.Expr{
		&ast.Lambda{Params: []string{tmp}, Body: body, Label: x.gensym("case")},
		key,
	}}, nil
}

func (x *Expander) caseClauses(form sexpr.Datum, tmp string, clauses []sexpr.Datum) (ast.Expr, error) {
	if len(clauses) == 0 {
		return &ast.Const{Value: ast.UnspecifiedConst{}}, nil
	}
	clause, ok := sexpr.Flatten(clauses[0])
	if !ok || len(clause) < 2 {
		return nil, errf(form, "malformed case clause")
	}
	if isSym(clause[0], "else") {
		if len(clauses) != 1 {
			return nil, errf(form, "else clause must be last")
		}
		return x.begin(clause[1:])
	}
	data, ok := sexpr.Flatten(clause[0])
	if !ok {
		return nil, errf(form, "case clause data must be a list")
	}
	then, err := x.begin(clause[1:])
	if err != nil {
		return nil, err
	}
	rest, err := x.caseClauses(form, tmp, clauses[1:])
	if err != nil {
		return nil, err
	}
	// (eqv? tmp 'd1) or (eqv? tmp 'd2) or ...
	var test ast.Expr
	for i := len(data) - 1; i >= 0; i-- {
		q, err := x.quote(data[i])
		if err != nil {
			return nil, err
		}
		cmp := &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: "eqv?"}, &ast.Var{Name: tmp}, q}}
		if test == nil {
			test = cmp
		} else {
			test = &ast.If{Test: cmp, Then: &ast.Const{Value: ast.BoolConst(true)}, Else: test}
		}
	}
	if test == nil {
		return rest, nil
	}
	return &ast.If{Test: test, Then: then, Else: rest}, nil
}

func (x *Expander) and(items []sexpr.Datum) (ast.Expr, error) {
	if len(items) == 0 {
		return &ast.Const{Value: ast.BoolConst(true)}, nil
	}
	first, err := x.Expr(items[0])
	if err != nil {
		return nil, err
	}
	if len(items) == 1 {
		return first, nil
	}
	rest, err := x.and(items[1:])
	if err != nil {
		return nil, err
	}
	return &ast.If{Test: first, Then: rest, Else: &ast.Const{Value: ast.BoolConst(false)}}, nil
}

func (x *Expander) or(items []sexpr.Datum) (ast.Expr, error) {
	if len(items) == 0 {
		return &ast.Const{Value: ast.BoolConst(false)}, nil
	}
	first, err := x.Expr(items[0])
	if err != nil {
		return nil, err
	}
	if len(items) == 1 {
		return first, nil
	}
	rest, err := x.or(items[1:])
	if err != nil {
		return nil, err
	}
	tmp := x.gensym("or")
	return &ast.Call{Exprs: []ast.Expr{
		&ast.Lambda{
			Params: []string{tmp},
			Body:   &ast.If{Test: &ast.Var{Name: tmp}, Then: &ast.Var{Name: tmp}, Else: rest},
			Label:  x.gensym("or"),
		},
		first,
	}}, nil
}

func (x *Expander) when(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 3 {
		return nil, errf(form, "when needs a test and a body")
	}
	test, err := x.Expr(items[1])
	if err != nil {
		return nil, err
	}
	body, err := x.begin(items[2:])
	if err != nil {
		return nil, err
	}
	return &ast.If{Test: test, Then: body, Else: &ast.Const{Value: ast.UnspecifiedConst{}}}, nil
}

func (x *Expander) unless(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 3 {
		return nil, errf(form, "unless needs a test and a body")
	}
	test, err := x.Expr(items[1])
	if err != nil {
		return nil, err
	}
	body, err := x.begin(items[2:])
	if err != nil {
		return nil, err
	}
	return &ast.If{Test: test, Then: &ast.Const{Value: ast.UnspecifiedConst{}}, Else: body}, nil
}

// doForm expands (do ((v init step)...) (test result...) body...) into a
// named let whose loop re-invokes itself with the step expressions.
func (x *Expander) doForm(form sexpr.Datum, items []sexpr.Datum) (ast.Expr, error) {
	if len(items) < 3 {
		return nil, errf(form, "do needs bindings and a test clause")
	}
	specs, ok := sexpr.Flatten(items[1])
	if !ok {
		return nil, errf(form, "malformed do bindings")
	}
	type doVar struct {
		name       string
		init, step sexpr.Datum
	}
	vars := make([]doVar, len(specs))
	for i, s := range specs {
		parts, ok := sexpr.Flatten(s)
		if !ok || len(parts) < 2 || len(parts) > 3 {
			return nil, errf(form, "do binding %s is not (var init [step])", s)
		}
		name, ok := parts[0].(sexpr.Sym)
		if !ok {
			return nil, errf(form, "do variable %s is not an identifier", parts[0])
		}
		v := doVar{name: string(name), init: parts[1], step: parts[0]}
		if len(parts) == 3 {
			v.step = parts[2]
		}
		vars[i] = v
	}
	testClause, ok := sexpr.Flatten(items[2])
	if !ok || len(testClause) == 0 {
		return nil, errf(form, "malformed do test clause")
	}
	loop := sexpr.Sym(x.gensym("do"))
	binds := make([]sexpr.Datum, len(vars))
	steps := make([]sexpr.Datum, len(vars))
	for i, v := range vars {
		binds[i] = sexpr.List(sexpr.Sym(v.name), v.init)
		steps[i] = v.step
	}
	again := sexpr.List(append([]sexpr.Datum{loop}, steps...)...)
	bodyItems := append(append([]sexpr.Datum{}, items[3:]...), again)
	loopBody := sexpr.ImproperList(append([]sexpr.Datum{sexpr.Sym("begin")}, bodyItems...), sexpr.Nil{})
	var result sexpr.Datum
	if len(testClause) == 1 {
		result = sexpr.List(sexpr.Sym("quote"), sexpr.Bool(false))
	} else {
		result = sexpr.ImproperList(append([]sexpr.Datum{sexpr.Sym("begin")}, testClause[1:]...), sexpr.Nil{})
	}
	full := sexpr.List(
		sexpr.Sym("let"), loop, sexpr.List(binds...),
		sexpr.List(sexpr.Sym("if"), testClause[0], result, loopBody),
	)
	return x.Expr(full)
}

// quasiquote expands `d at nesting depth. Only depth-1 unquotes are spliced;
// nested quasiquotes rebuild their structure.
func (x *Expander) quasiquote(d sexpr.Datum, depth int) (ast.Expr, error) {
	switch t := d.(type) {
	case *sexpr.Pair:
		if items, ok := sexpr.Flatten(t); ok && len(items) == 2 {
			if isSym(items[0], "unquote") {
				if depth == 1 {
					return x.Expr(items[1])
				}
				inner, err := x.quasiquote(items[1], depth-1)
				if err != nil {
					return nil, err
				}
				return x.listOf(&ast.Const{Value: ast.SymConst("unquote")}, inner), nil
			}
			if isSym(items[0], "quasiquote") {
				inner, err := x.quasiquote(items[1], depth+1)
				if err != nil {
					return nil, err
				}
				return x.listOf(&ast.Const{Value: ast.SymConst("quasiquote")}, inner), nil
			}
		}
		// Splicing in car position.
		if carItems, ok := sexpr.Flatten(t.Car); ok && len(carItems) == 2 && isSym(carItems[0], "unquote-splicing") && depth == 1 {
			spliced, err := x.Expr(carItems[1])
			if err != nil {
				return nil, err
			}
			rest, err := x.quasiquote(t.Cdr, depth)
			if err != nil {
				return nil, err
			}
			return &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: "append"}, spliced, rest}}, nil
		}
		car, err := x.quasiquote(t.Car, depth)
		if err != nil {
			return nil, err
		}
		cdr, err := x.quasiquote(t.Cdr, depth)
		if err != nil {
			return nil, err
		}
		return &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: "cons"}, car, cdr}}, nil
	case sexpr.Vector:
		exprs := make([]ast.Expr, 0, len(t)+1)
		exprs = append(exprs, &ast.Var{Name: "vector"})
		for _, el := range t {
			q, err := x.quasiquote(el, depth)
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, q)
		}
		return &ast.Call{Exprs: exprs}, nil
	default:
		return x.quote(d)
	}
}

func (x *Expander) listOf(exprs ...ast.Expr) ast.Expr {
	all := append([]ast.Expr{&ast.Var{Name: "list"}}, exprs...)
	return &ast.Call{Exprs: all}
}

// Program expands a whole program: a sequence of top-level definitions and
// expressions. Definitions are gathered into a single letrec over the final
// expression sequence, mirroring the paper's treatment of programs as single
// Core Scheme expressions.
func Program(data []sexpr.Datum) (ast.Expr, error) {
	x := New()
	var defs []definition
	var exprs []sexpr.Datum
	for _, d := range data {
		def, ok, err := x.asDefinition(d)
		if err != nil {
			return nil, err
		}
		if ok {
			if len(exprs) > 0 {
				return nil, errf(d, "definitions must precede top-level expressions")
			}
			defs = append(defs, def)
			continue
		}
		exprs = append(exprs, d)
	}
	var tail ast.Expr
	var err error
	if len(exprs) == 0 {
		// A program of pure definitions evaluates to its last defined
		// variable, so "(define (f n) ...)" alone is a Program in the sense
		// of Section 12: an expression evaluating to a procedure.
		if len(defs) == 0 {
			return nil, errf(nil, "empty program")
		}
		tail = &ast.Var{Name: defs[len(defs)-1].name}
	} else {
		tail, err = x.begin(exprs)
		if err != nil {
			return nil, err
		}
	}
	if len(defs) == 0 {
		return tail, nil
	}
	return x.letrecFromDefs(defs, tail)
}

// ParseProgram reads and expands program source text.
func ParseProgram(src string) (ast.Expr, error) {
	data, err := sexpr.ReadAll(src)
	if err != nil {
		return nil, err
	}
	e, err := Program(data)
	if err != nil {
		return nil, err
	}
	ast.InternSyms(e)
	return e, nil
}

// ParseExpr reads and expands a single expression.
func ParseExpr(src string) (ast.Expr, error) {
	d, err := sexpr.ReadOne(src)
	if err != nil {
		return nil, err
	}
	e, err := New().Expr(d)
	if err != nil {
		return nil, err
	}
	ast.InternSyms(e)
	return e, nil
}
