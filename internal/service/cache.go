package service

import (
	"container/list"
	"context"
	"sync"
	"time"

	"tailspace/internal/obs"
)

// Metric names the service publishes beside the engine's own (the per-run
// registries are merged in, so /metrics also reports machine.steps totals,
// GC work, and worst-cell peaks across everything the server has run).
const (
	MetricCacheHits   = "cache.hits"     // served straight from the LRU
	MetricCacheMisses = "cache.misses"   // computed fresh
	MetricCacheJoins  = "cache.joins"    // coalesced onto an in-flight computation
	MetricCacheSize   = "cache.size"     // gauge: entries resident
	MetricInflight    = "cache.inflight" // gauge: distinct computations running
	MetricPoolBusy    = "pool.busy"      // gauge: worker slots in use
	MetricPoolWaiting = "pool.waiting"   // gauge: computations queued for a slot
	// MetricRequests counts served requests per route pattern, labeled with
	// obs.Labeled(MetricRequests, "endpoint", route). The route must enter as
	// a label, never concatenated into the name: patterns like
	// /v1/runs/{id}/events contain braces, which the Prometheus writer would
	// misparse as a label block.
	MetricRequests = "http.requests"
	MetricStatus   = "http.status." // counter prefix, by status class (2xx...)

	// Histograms (fixed log buckets; see obs.Histogram). Labeled names are
	// built with obs.Labeled, so the Prometheus exposition renders them as
	// real label sets and the JSON snapshot carries count/sum/p50/p90/p99
	// per series.
	MetricReqLatencyUS = "http.request.us"     // per request, labeled endpoint
	MetricQueueWaitUS  = "pool.wait.us"        // time from arrival to worker slot
	MetricRunSteps     = "run.steps"           // per engine run, labeled machine+model
	MetricRunPeakFlat  = "run.peak.flat.words" // S_X sample per measured run, labeled machine+model
	MetricStreamSubs   = "stream.subscribers"  // gauge: attached live-event streams
)

// resultCache is the content-addressed result cache with single-flight
// coalescing. Keys are hashes of (endpoint kind, expanded program, input,
// machine, mode, options); values are finished response cells, which are
// immutable once stored.
//
// Concurrent requests for the same key share one computation: the first
// becomes the leader and starts the work, later arrivals join as waiters.
// The computation's lifetime is tied to its waiters, not to the leader's
// connection — each waiter that disconnects decrements a reference count,
// and only when the count reaches zero is the underlying run cancelled. A
// computation that fails (cancellation, deadline) is not cached, so the
// next request retries it.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	byKey   map[string]*list.Element
	flights map[string]*flight
	metrics *obs.SyncMetrics
}

// centry is one resident cache entry.
type centry struct {
	key string
	val any
}

// flight is one in-progress computation and its waiters.
type flight struct {
	done    chan struct{} // closed when val/err are final
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

func newResultCache(max int, metrics *obs.SyncMetrics) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		ll:      list.New(),
		byKey:   map[string]*list.Element{},
		flights: map[string]*flight{},
		metrics: metrics,
	}
}

// do returns the cached value for key, joins an in-flight computation for
// it, or runs compute to produce it. disposition reports which of the three
// happened ("hit", "join", "miss").
//
// onLookup, when non-nil, is invoked exactly once, as soon as the
// disposition is decided and the cache lock released — before any waiting
// on the computation. The service uses it to close the cache-lookup span of
// a traced request so the span measures the lookup alone, not the run.
//
// ctx is this caller's own lifetime — request context plus per-request
// deadline. compute receives a context the *flight* owns, derived from base
// (the server's lifetime) bounded by timeout: it ends when every waiter is
// gone, when the server closes, or at the deadline — but not when any
// individual requester (the leader included) disconnects, so coalesced
// followers keep a computation alive.
func (c *resultCache) do(ctx, base context.Context, timeout time.Duration, key string, onLookup func(disposition string), compute func(context.Context) (any, error)) (val any, disposition string, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		val = el.Value.(*centry).val
		c.mu.Unlock()
		c.metrics.Inc(MetricCacheHits, 1)
		if onLookup != nil {
			onLookup("hit")
		}
		return val, "hit", nil
	}
	if f, ok := c.flights[key]; ok {
		f.waiters++
		c.mu.Unlock()
		c.metrics.Inc(MetricCacheJoins, 1)
		if onLookup != nil {
			onLookup("join")
		}
		return c.wait(ctx, key, f, "join")
	}

	// Leader: start the computation on a context owned by the flight.
	fctx, cancel := context.WithTimeout(base, timeout)
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.flights[key] = f
	c.mu.Unlock()
	c.metrics.Inc(MetricCacheMisses, 1)
	c.metrics.Add(MetricInflight, 1)
	if onLookup != nil {
		onLookup("miss")
	}

	go func() {
		v, cerr := compute(fctx)
		c.mu.Lock()
		f.val, f.err = v, cerr
		delete(c.flights, key)
		if cerr == nil {
			c.insertLocked(key, v)
		}
		c.mu.Unlock()
		close(f.done)
		cancel()
		c.metrics.Add(MetricInflight, -1)
	}()
	return c.wait(ctx, key, f, "miss")
}

// wait blocks until the flight finishes or this waiter's context ends. A
// departing waiter that was the last one cancels the computation.
func (c *resultCache) wait(ctx context.Context, key string, f *flight, disposition string) (any, string, error) {
	select {
	case <-f.done:
		return f.val, disposition, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		c.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, disposition, ctx.Err()
	}
}

// insertLocked adds a finished value and evicts beyond the bound. Caller
// holds c.mu.
func (c *resultCache) insertLocked(key string, val any) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*centry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&centry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*centry).key)
	}
	c.metrics.Set(MetricCacheSize, int64(c.ll.Len()))
}

// Len reports the resident entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
