package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
	"tailspace/internal/expand"
	"tailspace/internal/obs"
	"tailspace/internal/space"
	"tailspace/internal/version"
)

// Config tunes a Server. The zero value is usable: GOMAXPROCS workers, a
// 4096-entry cache, a 30-second request deadline, and the engine's default
// step bound as the cap.
type Config struct {
	// Workers bounds the number of machine runs executing at once.
	Workers int
	// QueueDepth bounds computations waiting for a worker slot beyond the
	// pool; past it the server sheds load with 503 instead of queueing
	// unboundedly. Default 64.
	QueueDepth int
	// CacheEntries bounds the result cache. Default 4096.
	CacheEntries int
	// RequestTimeout is the per-request deadline: the longest a computation
	// started for a request may run. Default 30s.
	RequestTimeout time.Duration
	// MaxSteps caps (and defaults) the per-request step bound. Default is
	// the engine's 5-million-step default.
	MaxSteps int
	// Events, when non-nil, receives one obs.EventRequest per served
	// request. The server serializes emissions, so any Sink works.
	Events obs.Sink
	// Backend is the execution backend for requests that do not name one
	// (the spaced -backend flag). The zero value is the stepper.
	Backend core.Backend
}

// Server is the spaced service core: handlers plus the worker pool, result
// cache, and metrics registry behind them. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	cfg     Config
	start   time.Time
	sem     chan struct{}
	waiting int64 // queued-for-slot count, under waitMu
	waitMu  sync.Mutex
	cache   *resultCache
	metrics *obs.SyncMetrics
	// base is the ancestor of every computation context; Close cancels it,
	// aborting in-flight runs that survived the HTTP drain.
	base context.Context
	stop context.CancelFunc

	events   obs.Sink
	eventsMu sync.Mutex

	// spans retains the recent finished spans of every traced request,
	// exported per trace by GET /v1/traces/{id}.
	spanMu sync.Mutex
	spans  *obs.Ring

	// streams indexes live (and recently finished) run event streams by
	// trace ID, served by GET /v1/runs/{id}/events.
	streams *streamTable
}

// spanRingCapacity bounds retained spans across all requests. A request
// produces a handful of spans, so this covers thousands of recent requests.
const spanRingCapacity = 16384

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 4096
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxSteps < 1 {
		cfg.MaxSteps = 5_000_000
	}
	m := obs.NewSyncMetrics()
	base, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.Workers),
		cache:   newResultCache(cfg.CacheEntries, m),
		metrics: m,
		base:    base,
		stop:    stop,
		events:  cfg.Events,
		spans:   obs.NewRing(spanRingCapacity),
		streams: newStreamTable(finishedStreamsKept),
	}
}

// Metrics exposes the server's registry (shared with /metrics).
func (s *Server) Metrics() *obs.SyncMetrics { return s.metrics }

// Close aborts every in-flight computation. Call it after http.Server.
// Shutdown has drained (or given up on) the handlers.
func (s *Server) Close() { s.stop() }

// Handler returns the service's route table. The second logged argument is
// the route *pattern*, not the request path — it labels the per-endpoint
// latency histograms, so metric cardinality stays bounded by the route
// table even for parameterized paths.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eval", s.logged("/v1/eval", s.handleEval))
	mux.HandleFunc("POST /v1/measure", s.logged("/v1/measure", s.handleMeasure))
	mux.HandleFunc("POST /v1/lint", s.logged("/v1/lint", s.handleLint))
	mux.HandleFunc("POST /v1/classify", s.logged("/v1/classify", s.handleClassify))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.logged("/v1/runs/{id}/events", s.handleRunEvents))
	mux.HandleFunc("GET /v1/traces/{id}", s.logged("/v1/traces/{id}", s.handleTrace))
	mux.HandleFunc("GET /healthz", s.logged("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.logged("/metrics", s.handleMetrics))
	return mux
}

// maxBodyBytes bounds request bodies; programs are source text, not data.
const maxBodyBytes = 1 << 20

// reqState carries per-request bookkeeping from handler to middleware.
type reqState struct {
	status int
	cache  string // hit|miss|join (or shed|cancel|timeout on failure)
	tc     *obs.TraceContext
}

// statusWriter records the status a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	st *reqState
}

func (w *statusWriter) WriteHeader(code int) {
	w.st.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers can push
// events as they happen rather than when the response buffer fills.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// clientRequestID extracts a usable client-chosen trace ID from the
// X-Request-Id header: up to 64 characters of [A-Za-z0-9._-]. Anything
// else (or nothing) means the middleware mints one. Honoring the client's
// ID is what lets a caller POST a run and immediately stream it — it knows
// the trace ID before the response exists.
func clientRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

// span records a finished span of a traced request: into the server's span
// ring (exported by GET /v1/traces/{id}) and onto the request's live run
// stream, if one exists. Returns the span's duration.
func (s *Server) span(tc *obs.TraceContext, name string, start time.Time) time.Duration {
	dur := time.Since(start)
	e := tc.Span(name, start, dur)
	s.spanMu.Lock()
	s.spans.Emit(e)
	s.spanMu.Unlock()
	if rs := s.streams.get(tc.ID); rs != nil {
		rs.fan.Emit(e)
	}
	return dur
}

// logged wraps a handler with the request-scoped observability: it mints
// the trace context (honoring a client X-Request-Id, echoing the ID back as
// X-Trace-Id), records the request span and per-endpoint latency histogram,
// finishes the request's run stream, and emits the access-log event.
func (s *Server) logged(route string, h func(http.ResponseWriter, *http.Request, *reqState)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tc := obs.NewTraceContext(clientRequestID(r))
		w.Header().Set("X-Trace-Id", tc.ID)
		// begin/finish bracket the request so the stream table knows which
		// trace IDs may still lazily create a live stream.
		s.streams.begin(tc.ID)
		st := &reqState{status: http.StatusOK, tc: tc}
		h(&statusWriter{ResponseWriter: w, st: st}, r, st)
		// The request span must land before finish: a closed stream drops
		// emissions.
		dur := s.span(tc, "request", start)
		s.streams.finish(tc.ID)
		s.metrics.Inc(obs.Labeled(MetricRequests, "endpoint", route), 1)
		s.metrics.Inc(MetricStatus+strconv.Itoa(st.status/100)+"xx", 1)
		s.metrics.Observe(obs.Labeled(MetricReqLatencyUS, "endpoint", route), dur.Microseconds())
		if s.events != nil {
			s.eventsMu.Lock()
			s.events.Emit(obs.Event{
				Type:   obs.EventRequest,
				Method: r.Method,
				Path:   r.URL.Path,
				Status: st.status,
				DurUS:  dur.Microseconds(),
				Cache:  st.cache,
				Trace:  tc.ID,
			})
			s.eventsMu.Unlock()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decode reads a JSON request body into v.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// expandProgram parses + macro-expands source once, returning the expanded
// expression's canonical rendering — the content-addressed identity every
// cache key hashes. Expansion failures surface as 400 before any worker
// slot is consumed.
func expandProgram(src string) (string, int, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return "", 0, err
	}
	return e.String(), e.Size(), nil
}

// cacheKey hashes the full identity of a computation. Every field that can
// change the result is included; the program participates by expanded form,
// so surface-syntax differences that expand identically share an entry.
func cacheKey(kind, expanded, input string, parts ...string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(expanded))
	h.Write([]byte{0})
	h.Write([]byte(input))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// clampSteps applies the server's default and cap to a request step bound.
func (s *Server) clampSteps(n int) int {
	if n < 1 || n > s.cfg.MaxSteps {
		return s.cfg.MaxSteps
	}
	return n
}

// acquire takes a worker slot, honoring ctx and shedding load when the
// queue is past QueueDepth. Returns a release func, or an error.
var errQueueFull = errors.New("service: worker queue full")

func (s *Server) acquire(ctx context.Context) (func(), error) {
	s.waitMu.Lock()
	if s.waiting >= int64(s.cfg.QueueDepth) {
		s.waitMu.Unlock()
		return nil, errQueueFull
	}
	s.waiting++
	s.metrics.Set(MetricPoolWaiting, s.waiting)
	s.waitMu.Unlock()

	defer func() {
		s.waitMu.Lock()
		s.waiting--
		s.metrics.Set(MetricPoolWaiting, s.waiting)
		s.waitMu.Unlock()
	}()

	select {
	case s.sem <- struct{}{}:
		s.metrics.Add(MetricPoolBusy, 1)
		return func() {
			<-s.sem
			s.metrics.Add(MetricPoolBusy, -1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runCell executes one (machine, mode) run on the worker pool under ctx,
// traced by tc: the queue wait and the run itself become spans, the run's
// engine events flow into the request's live stream stamped with the trace
// ID, and the run's step count and measured peak land in the labeled
// histograms. The finished run's registry is merged into the server's, so
// /metrics accumulates engine totals across everything ever served.
func (s *Server) runCell(ctx context.Context, tc *obs.TraceContext, program, input string, opts core.Options) (core.Result, error) {
	waitStart := time.Now()
	release, err := s.acquire(ctx)
	if err != nil {
		return core.Result{}, err
	}
	wait := s.span(tc, "queue-wait", waitStart)
	s.metrics.Observe(MetricQueueWaitUS, wait.Microseconds())
	defer release()
	opts.Cancel = ctx.Done()
	opts.TraceID = tc.ID
	if opts.Events == nil {
		// The request's live stream: created lazily by the first run of the
		// request, shared by every cell of a measure grid. A coalesced flight
		// that outlived its request gets nil (or an already-closed fan, which
		// drops emissions) — never a fresh stream nothing would finish.
		if rs := s.streams.getOrCreate(tc.ID); rs != nil {
			opts.Events = rs.fan
		}
	}
	modelName := "word"
	if opts.CostModel != nil {
		modelName = opts.CostModel.Name()
	}
	runStart := time.Now()
	var res core.Result
	if input != "" {
		res, err = core.RunApplication(program, input, opts)
	} else {
		res, err = core.RunProgram(program, opts)
	}
	s.span(tc, "run", runStart)
	if err != nil {
		return core.Result{}, err
	}
	if errors.Is(res.Err, core.ErrCancelled) {
		// Cancellation is a property of this request's lifetime, not of the
		// computation; report the context's verdict and cache nothing.
		if cerr := ctx.Err(); cerr != nil {
			return core.Result{}, cerr
		}
		return core.Result{}, core.ErrCancelled
	}
	labels := obs.Labeled("", "machine", opts.Variant.Name, "model", modelName)
	s.metrics.Observe(MetricRunSteps+labels, int64(res.Steps))
	if opts.Measure {
		s.metrics.Observe(MetricRunPeakFlat+labels, int64(res.PeakFlat))
	}
	s.metrics.Merge(res.Metrics)
	return res, nil
}

// withDeadline derives the waiter context for one request: its own
// connection lifetime plus the per-request deadline.
func (s *Server) withDeadline(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// computeErr maps a failed computation to an HTTP status.
func computeStatus(err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, core.ErrCancelled):
		// The client is gone (or the server is shutting down); 499 is the
		// conventional "client closed request" status.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// errOutcome maps a failed computation to the access-log outcome word, the
// failure-side counterpart of the cache dispositions (hit|miss|join).
func errOutcome(err error) string {
	switch {
	case errors.Is(err, errQueueFull):
		return "shed"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled), errors.Is(err, core.ErrCancelled):
		return "cancel"
	default:
		return "error"
	}
}

// lookupSpan builds the resultCache.do onLookup callback: it closes a
// cache-lookup span opened now, so the span covers the lookup decision
// alone (never the computation behind it).
func (s *Server) lookupSpan(tc *obs.TraceContext) func(string) {
	start := time.Now()
	return func(string) { s.span(tc, "cache-lookup", start) }
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request, st *reqState) {
	var req EvalRequest
	if !decode(w, r, &req) {
		return
	}
	v, err := parseMachine(req.Machine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	order, err := parseOrder(req.Order)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	backend, err := parseBackend(req.Backend, s.cfg.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	expandStart := time.Now()
	expanded, _, err := expandProgram(req.Program)
	s.span(st.tc, "expand", expandStart)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Input != "" {
		if _, err := expand.ParseExpr(req.Input); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("input: %w", err))
			return
		}
	}
	maxSteps := s.clampSteps(req.MaxSteps)
	// The backend's canonical name enters the key (not the client's
	// spelling): the two backends compute identical observables, but a
	// cache entry names the exact computation that produced it.
	key := cacheKey("eval", expanded, req.Input, v.Name, req.Order,
		strconv.Itoa(maxSteps), backend.String())

	ctx, cancel := s.withDeadline(r)
	defer cancel()
	val, disposition, err := s.cache.do(ctx, s.base, s.cfg.RequestTimeout, key, s.lookupSpan(st.tc), func(fctx context.Context) (any, error) {
		res, err := s.runCell(fctx, st.tc, req.Program, req.Input, core.Options{
			Variant: v, MaxSteps: maxSteps, Order: order, Backend: backend,
		})
		if err != nil {
			return nil, err
		}
		outcome, msg := outcomeOf(res.Err)
		return &EvalResponse{
			Machine: v.Name, Outcome: outcome, Answer: res.Answer,
			Steps: res.Steps, Error: msg,
		}, nil
	})
	st.cache = disposition
	if err != nil {
		st.cache = errOutcome(err)
		writeError(w, computeStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request, st *reqState) {
	var req MeasureRequest
	if !decode(w, r, &req) {
		return
	}
	machines := req.Machines
	if len(machines) == 0 {
		for _, v := range core.Variants {
			machines = append(machines, v.Name)
		}
	}
	modelNames := req.CostModels
	if len(modelNames) == 0 {
		modelNames = []string{"word"}
	}
	variants := make([]core.Variant, len(machines))
	for i, name := range machines {
		v, err := parseMachine(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		variants[i] = v
	}
	models := make([]space.CostModel, len(modelNames))
	for i, name := range modelNames {
		m, err := parseCostModel(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		models[i] = m
	}
	order, err := parseOrder(req.Order)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	backend, err := parseBackend(req.Backend, s.cfg.Backend)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	expandStart := time.Now()
	expanded, size, err := expandProgram(req.Program)
	s.span(st.tc, "expand", expandStart)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Input != "" {
		if _, err := expand.ParseExpr(req.Input); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("input: %w", err))
			return
		}
	}
	maxSteps := s.clampSteps(req.MaxSteps)

	ctx, cancel := s.withDeadline(r)
	defer cancel()

	// Each cell is an independent cache unit, so overlapping grids from
	// different requests share cells; the cells of one request fan out
	// concurrently over the worker pool.
	type cellSlot struct {
		cell        MeasureCell
		disposition string
		err         error
	}
	slots := make([]cellSlot, len(variants)*len(models))
	var wg sync.WaitGroup
	for vi, v := range variants {
		for mi, model := range models {
			wg.Add(1)
			// The model's canonical Name — not the client's spelling — enters
			// the cache key, so two models are always two cache identities
			// and two spellings of one model are one.
			go func(i int, v core.Variant, model space.CostModel, modelName string) {
				defer wg.Done()
				key := cacheKey("measure", expanded, req.Input, v.Name, modelName,
					strconv.FormatBool(req.FlatOnly), req.Order, strconv.Itoa(maxSteps),
					backend.String())
				val, disposition, err := s.cache.do(ctx, s.base, s.cfg.RequestTimeout, key, s.lookupSpan(st.tc), func(fctx context.Context) (any, error) {
					measureStart := time.Now()
					res, err := s.runCell(fctx, st.tc, req.Program, req.Input, core.Options{
						Variant: v, Measure: true, FlatOnly: req.FlatOnly,
						GCEvery: 1, MaxSteps: maxSteps, Order: order,
						CostModel: model, Backend: backend,
					})
					s.span(st.tc, "measure", measureStart)
					if err != nil {
						return nil, err
					}
					outcome, msg := outcomeOf(res.Err)
					return &MeasureCell{
						Machine: v.Name, CostModel: modelName, Outcome: outcome,
						Flat: res.PeakFlat, Linked: res.PeakLinked,
						Heap: res.PeakHeap, ContDepth: res.PeakContDepth,
						Steps: res.Steps, Answer: res.Answer, Error: msg,
					}, nil
				})
				slots[i].disposition = disposition
				if err != nil {
					slots[i].err = err
					return
				}
				slots[i].cell = *val.(*MeasureCell)
			}(vi*len(models)+mi, v, model, model.Name())
		}
	}
	wg.Wait()

	resp := MeasureResponse{ProgramSize: size, Cells: make([]MeasureCell, len(slots))}
	st.cache = "miss"
	allHit := true
	for i, slot := range slots {
		if slot.err != nil {
			writeError(w, computeStatus(slot.err), slot.err)
			st.cache = errOutcome(slot.err)
			return
		}
		resp.Cells[i] = slot.cell
		if slot.disposition != "hit" {
			allHit = false
		}
	}
	if allHit {
		st.cache = "hit"
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request, st *reqState) {
	var req LintRequest
	if !decode(w, r, &req) {
		return
	}
	name := req.Name
	if name == "" {
		name = "program"
	}
	expandStart := time.Now()
	expanded, _, err := expandProgram(req.Program)
	s.span(st.tc, "expand", expandStart)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKey("lint", expanded, "", name)

	ctx, cancel := s.withDeadline(r)
	defer cancel()
	val, disposition, err := s.cache.do(ctx, s.base, s.cfg.RequestTimeout, key, s.lookupSpan(st.tc), func(fctx context.Context) (any, error) {
		waitStart := time.Now()
		release, err := s.acquire(fctx)
		if err != nil {
			return nil, err
		}
		wait := s.span(st.tc, "queue-wait", waitStart)
		s.metrics.Observe(MetricQueueWaitUS, wait.Microseconds())
		defer release()
		rep, err := analysis.LintSource(name, req.Program)
		if err != nil {
			return nil, err
		}
		return &LintResponse{LintReport: rep, Confirmed: rep.Confirmed()}, nil
	})
	st.cache = disposition
	if err != nil {
		st.cache = errOutcome(err)
		writeError(w, computeStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, st *reqState) {
	var req ClassifyRequest
	if !decode(w, r, &req) {
		return
	}
	name := req.Name
	if name == "" {
		name = "program"
	}
	model, err := parseCostModel(req.CostModel)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	expandStart := time.Now()
	program, err := expand.ParseProgram(req.Program)
	s.span(st.tc, "expand", expandStart)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The model's canonical Name enters the key (like /v1/measure cells):
	// certificates widen under logarithmic pricing, so the same program
	// under two models is two cache identities. The expanded AST is kept
	// and fed straight to the classifier — one parse+expand per miss.
	key := cacheKey("classify", program.String(), "", name, model.Name())

	ctx, cancel := s.withDeadline(r)
	defer cancel()
	val, disposition, err := s.cache.do(ctx, s.base, s.cfg.RequestTimeout, key, s.lookupSpan(st.tc), func(fctx context.Context) (any, error) {
		waitStart := time.Now()
		release, err := s.acquire(fctx)
		if err != nil {
			return nil, err
		}
		wait := s.span(st.tc, "queue-wait", waitStart)
		s.metrics.Observe(MetricQueueWaitUS, wait.Microseconds())
		defer release()
		rep := analysis.Classify(name, program, model.Name())
		return &ClassifyResponse{ClassifyReport: rep}, nil
	})
	st.cache = disposition
	if err != nil {
		st.cache = errOutcome(err)
		writeError(w, computeStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request, _ *reqState) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		Version:       version.String("spaced"),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
		Workers:       s.cfg.Workers,
		Cache:         s.cache.Len(),
	})
}

// handleMetrics renders the registry. The default is the flat JSON
// snapshot — the same shape Result.Metrics marshals to, so trend tooling
// reads both — with histograms projected to count/sum/p50/p90/p99 keys.
// A Prometheus scraper (Accept: text/plain or openmetrics, or an explicit
// ?format=prometheus) gets text exposition format 0.0.4 instead, with the
// full cumulative bucket layout per histogram.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, _ *reqState) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		w.WriteHeader(http.StatusOK)
		s.metrics.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// wantsPrometheus decides the /metrics representation: an explicit
// ?format= wins; otherwise the Accept header decides (Prometheus scrapers
// ask for openmetrics or text/plain; JSON remains the default so existing
// curl/spacectl consumers are unchanged).
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "openmetrics") || strings.Contains(accept, "text/plain")
}
