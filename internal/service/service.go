package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
	"tailspace/internal/expand"
	"tailspace/internal/obs"
	"tailspace/internal/space"
)

// Config tunes a Server. The zero value is usable: GOMAXPROCS workers, a
// 4096-entry cache, a 30-second request deadline, and the engine's default
// step bound as the cap.
type Config struct {
	// Workers bounds the number of machine runs executing at once.
	Workers int
	// QueueDepth bounds computations waiting for a worker slot beyond the
	// pool; past it the server sheds load with 503 instead of queueing
	// unboundedly. Default 64.
	QueueDepth int
	// CacheEntries bounds the result cache. Default 4096.
	CacheEntries int
	// RequestTimeout is the per-request deadline: the longest a computation
	// started for a request may run. Default 30s.
	RequestTimeout time.Duration
	// MaxSteps caps (and defaults) the per-request step bound. Default is
	// the engine's 5-million-step default.
	MaxSteps int
	// Events, when non-nil, receives one obs.EventRequest per served
	// request. The server serializes emissions, so any Sink works.
	Events obs.Sink
}

// Server is the spaced service core: handlers plus the worker pool, result
// cache, and metrics registry behind them. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	cfg     Config
	sem     chan struct{}
	waiting int64 // queued-for-slot count, under waitMu
	waitMu  sync.Mutex
	cache   *resultCache
	metrics *obs.SyncMetrics
	// base is the ancestor of every computation context; Close cancels it,
	// aborting in-flight runs that survived the HTTP drain.
	base context.Context
	stop context.CancelFunc

	events   obs.Sink
	eventsMu sync.Mutex
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries < 1 {
		cfg.CacheEntries = 4096
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxSteps < 1 {
		cfg.MaxSteps = 5_000_000
	}
	m := obs.NewSyncMetrics()
	base, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		cache:   newResultCache(cfg.CacheEntries, m),
		metrics: m,
		base:    base,
		stop:    stop,
		events:  cfg.Events,
	}
}

// Metrics exposes the server's registry (shared with /metrics).
func (s *Server) Metrics() *obs.SyncMetrics { return s.metrics }

// Close aborts every in-flight computation. Call it after http.Server.
// Shutdown has drained (or given up on) the handlers.
func (s *Server) Close() { s.stop() }

// Handler returns the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eval", s.logged(s.handleEval))
	mux.HandleFunc("POST /v1/measure", s.logged(s.handleMeasure))
	mux.HandleFunc("POST /v1/lint", s.logged(s.handleLint))
	mux.HandleFunc("GET /healthz", s.logged(s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.logged(s.handleMetrics))
	return mux
}

// maxBodyBytes bounds request bodies; programs are source text, not data.
const maxBodyBytes = 1 << 20

// reqState carries per-request bookkeeping from handler to middleware.
type reqState struct {
	status int
	cache  string // hit|miss|join, for cached endpoints
}

// statusWriter records the status a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	st *reqState
}

func (w *statusWriter) WriteHeader(code int) {
	w.st.status = code
	w.ResponseWriter.WriteHeader(code)
}

// logged wraps a handler with request counting and structured logging.
func (s *Server) logged(h func(http.ResponseWriter, *http.Request, *reqState)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		st := &reqState{status: http.StatusOK}
		h(&statusWriter{ResponseWriter: w, st: st}, r, st)
		s.metrics.Inc(MetricRequests+r.URL.Path, 1)
		s.metrics.Inc(MetricStatus+strconv.Itoa(st.status/100)+"xx", 1)
		if s.events != nil {
			s.eventsMu.Lock()
			s.events.Emit(obs.Event{
				Type:   obs.EventRequest,
				Method: r.Method,
				Path:   r.URL.Path,
				Status: st.status,
				DurUS:  time.Since(start).Microseconds(),
				Cache:  st.cache,
			})
			s.eventsMu.Unlock()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decode reads a JSON request body into v.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// expandProgram parses + macro-expands source once, returning the expanded
// expression's canonical rendering — the content-addressed identity every
// cache key hashes. Expansion failures surface as 400 before any worker
// slot is consumed.
func expandProgram(src string) (string, int, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return "", 0, err
	}
	return e.String(), e.Size(), nil
}

// cacheKey hashes the full identity of a computation. Every field that can
// change the result is included; the program participates by expanded form,
// so surface-syntax differences that expand identically share an entry.
func cacheKey(kind, expanded, input string, parts ...string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(expanded))
	h.Write([]byte{0})
	h.Write([]byte(input))
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// clampSteps applies the server's default and cap to a request step bound.
func (s *Server) clampSteps(n int) int {
	if n < 1 || n > s.cfg.MaxSteps {
		return s.cfg.MaxSteps
	}
	return n
}

// acquire takes a worker slot, honoring ctx and shedding load when the
// queue is past QueueDepth. Returns a release func, or an error.
var errQueueFull = errors.New("service: worker queue full")

func (s *Server) acquire(ctx context.Context) (func(), error) {
	s.waitMu.Lock()
	if s.waiting >= int64(s.cfg.QueueDepth) {
		s.waitMu.Unlock()
		return nil, errQueueFull
	}
	s.waiting++
	s.metrics.Set(MetricPoolWaiting, s.waiting)
	s.waitMu.Unlock()

	defer func() {
		s.waitMu.Lock()
		s.waiting--
		s.metrics.Set(MetricPoolWaiting, s.waiting)
		s.waitMu.Unlock()
	}()

	select {
	case s.sem <- struct{}{}:
		s.metrics.Add(MetricPoolBusy, 1)
		return func() {
			<-s.sem
			s.metrics.Add(MetricPoolBusy, -1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runCell executes one (machine, mode) run on the worker pool under ctx.
// The finished run's registry is merged into the server's, so /metrics
// accumulates engine totals across everything ever served.
func (s *Server) runCell(ctx context.Context, program, input string, opts core.Options) (core.Result, error) {
	release, err := s.acquire(ctx)
	if err != nil {
		return core.Result{}, err
	}
	defer release()
	opts.Cancel = ctx.Done()
	var res core.Result
	if input != "" {
		res, err = core.RunApplication(program, input, opts)
	} else {
		res, err = core.RunProgram(program, opts)
	}
	if err != nil {
		return core.Result{}, err
	}
	if errors.Is(res.Err, core.ErrCancelled) {
		// Cancellation is a property of this request's lifetime, not of the
		// computation; report the context's verdict and cache nothing.
		if cerr := ctx.Err(); cerr != nil {
			return core.Result{}, cerr
		}
		return core.Result{}, core.ErrCancelled
	}
	s.metrics.Merge(res.Metrics)
	return res, nil
}

// withDeadline derives the waiter context for one request: its own
// connection lifetime plus the per-request deadline.
func (s *Server) withDeadline(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// computeErr maps a failed computation to an HTTP status.
func computeStatus(err error) int {
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, core.ErrCancelled):
		// The client is gone (or the server is shutting down); 499 is the
		// conventional "client closed request" status.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request, st *reqState) {
	var req EvalRequest
	if !decode(w, r, &req) {
		return
	}
	v, err := parseMachine(req.Machine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	order, err := parseOrder(req.Order)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	expanded, _, err := expandProgram(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Input != "" {
		if _, err := expand.ParseExpr(req.Input); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("input: %w", err))
			return
		}
	}
	maxSteps := s.clampSteps(req.MaxSteps)
	key := cacheKey("eval", expanded, req.Input, v.Name, req.Order, strconv.Itoa(maxSteps))

	ctx, cancel := s.withDeadline(r)
	defer cancel()
	val, disposition, err := s.cache.do(ctx, s.base, s.cfg.RequestTimeout, key, func(fctx context.Context) (any, error) {
		res, err := s.runCell(fctx, req.Program, req.Input, core.Options{
			Variant: v, MaxSteps: maxSteps, Order: order,
		})
		if err != nil {
			return nil, err
		}
		outcome, msg := outcomeOf(res.Err)
		return &EvalResponse{
			Machine: v.Name, Outcome: outcome, Answer: res.Answer,
			Steps: res.Steps, Error: msg,
		}, nil
	})
	st.cache = disposition
	if err != nil {
		writeError(w, computeStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request, st *reqState) {
	var req MeasureRequest
	if !decode(w, r, &req) {
		return
	}
	machines := req.Machines
	if len(machines) == 0 {
		for _, v := range core.Variants {
			machines = append(machines, v.Name)
		}
	}
	modelNames := req.CostModels
	if len(modelNames) == 0 {
		modelNames = []string{"word"}
	}
	variants := make([]core.Variant, len(machines))
	for i, name := range machines {
		v, err := parseMachine(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		variants[i] = v
	}
	models := make([]space.CostModel, len(modelNames))
	for i, name := range modelNames {
		m, err := parseCostModel(name)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		models[i] = m
	}
	order, err := parseOrder(req.Order)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	expanded, size, err := expandProgram(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Input != "" {
		if _, err := expand.ParseExpr(req.Input); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("input: %w", err))
			return
		}
	}
	maxSteps := s.clampSteps(req.MaxSteps)

	ctx, cancel := s.withDeadline(r)
	defer cancel()

	// Each cell is an independent cache unit, so overlapping grids from
	// different requests share cells; the cells of one request fan out
	// concurrently over the worker pool.
	type cellSlot struct {
		cell        MeasureCell
		disposition string
		err         error
	}
	slots := make([]cellSlot, len(variants)*len(models))
	var wg sync.WaitGroup
	for vi, v := range variants {
		for mi, model := range models {
			wg.Add(1)
			// The model's canonical Name — not the client's spelling — enters
			// the cache key, so two models are always two cache identities
			// and two spellings of one model are one.
			go func(i int, v core.Variant, model space.CostModel, modelName string) {
				defer wg.Done()
				key := cacheKey("measure", expanded, req.Input, v.Name, modelName,
					strconv.FormatBool(req.FlatOnly), req.Order, strconv.Itoa(maxSteps))
				val, disposition, err := s.cache.do(ctx, s.base, s.cfg.RequestTimeout, key, func(fctx context.Context) (any, error) {
					res, err := s.runCell(fctx, req.Program, req.Input, core.Options{
						Variant: v, Measure: true, FlatOnly: req.FlatOnly,
						GCEvery: 1, MaxSteps: maxSteps, Order: order,
						CostModel: model,
					})
					if err != nil {
						return nil, err
					}
					outcome, msg := outcomeOf(res.Err)
					return &MeasureCell{
						Machine: v.Name, CostModel: modelName, Outcome: outcome,
						Flat: res.PeakFlat, Linked: res.PeakLinked,
						Heap: res.PeakHeap, ContDepth: res.PeakContDepth,
						Steps: res.Steps, Answer: res.Answer, Error: msg,
					}, nil
				})
				slots[i].disposition = disposition
				if err != nil {
					slots[i].err = err
					return
				}
				slots[i].cell = *val.(*MeasureCell)
			}(vi*len(models)+mi, v, model, model.Name())
		}
	}
	wg.Wait()

	resp := MeasureResponse{ProgramSize: size, Cells: make([]MeasureCell, len(slots))}
	st.cache = "miss"
	allHit := true
	for i, slot := range slots {
		if slot.err != nil {
			writeError(w, computeStatus(slot.err), slot.err)
			st.cache = slot.disposition
			return
		}
		resp.Cells[i] = slot.cell
		if slot.disposition != "hit" {
			allHit = false
		}
	}
	if allHit {
		st.cache = "hit"
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request, st *reqState) {
	var req LintRequest
	if !decode(w, r, &req) {
		return
	}
	name := req.Name
	if name == "" {
		name = "program"
	}
	expanded, _, err := expandProgram(req.Program)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := cacheKey("lint", expanded, "", name)

	ctx, cancel := s.withDeadline(r)
	defer cancel()
	val, disposition, err := s.cache.do(ctx, s.base, s.cfg.RequestTimeout, key, func(fctx context.Context) (any, error) {
		release, err := s.acquire(fctx)
		if err != nil {
			return nil, err
		}
		defer release()
		rep, err := analysis.LintSource(name, req.Program)
		if err != nil {
			return nil, err
		}
		return &LintResponse{LintReport: rep, Confirmed: rep.Confirmed()}, nil
	})
	st.cache = disposition
	if err != nil {
		writeError(w, computeStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, val)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request, _ *reqState) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": s.cfg.Workers,
		"cache":   s.cache.Len(),
	})
}

// handleMetrics renders the registry snapshot as a flat JSON object — the
// same shape Result.Metrics marshals to, so trend tooling reads both.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request, _ *reqState) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}
