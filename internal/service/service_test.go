package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
	"tailspace/internal/obs"
	"tailspace/internal/space"
)

// countdown is the Theorem 25(b) iterative program; applied to (quote N) it
// terminates on every machine.
const countdown = "(define (f n) (if (zero? n) 0 (f (- n 1))))"

// infiniteLoop diverges under every machine.
const infiniteLoop = "((lambda (f) (f f)) (lambda (f) (f f)))"

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, req any, resp any) int {
	t.Helper()
	status, body := postCtx(t, context.Background(), url, req)
	if resp != nil && status == http.StatusOK {
		if err := json.Unmarshal(body, resp); err != nil {
			t.Fatalf("decode %s response: %v\n%s", url, err, body)
		}
	}
	return status
}

func postCtx(t *testing.T, ctx context.Context, url string, req any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return 0, nil
	}
	defer hresp.Body.Close()
	body, _ := io.ReadAll(hresp.Body)
	return hresp.StatusCode, body
}

// TestMeasureMatchesDirectRun pins the acceptance criterion: a service cell
// equals a direct engine run with the spacelab sweep options, for every
// machine in the family.
func TestMeasureMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp MeasureResponse
	req := MeasureRequest{Program: countdown, Input: "(quote 6)", CostModels: []string{"fixnum"}}
	if status := post(t, ts.URL+"/v1/measure", req, &resp); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(resp.Cells) != len(core.Variants) {
		t.Fatalf("cells = %d, want %d", len(resp.Cells), len(core.Variants))
	}
	for i, v := range core.Variants {
		want, err := core.RunApplication(countdown, "(quote 6)", core.Options{
			Variant: v, Measure: true, GCEvery: 1, MaxSteps: 5_000_000,
			CostModel: space.Fixnum,
		})
		if err != nil {
			t.Fatalf("direct run [%s]: %v", v, err)
		}
		got := resp.Cells[i]
		if got.Machine != v.Name || got.Outcome != "answer" {
			t.Fatalf("cell %d = %+v, want machine %s with an answer", i, got, v.Name)
		}
		if got.Flat != want.PeakFlat || got.Linked != want.PeakLinked ||
			got.Heap != want.PeakHeap || got.Steps != want.Steps ||
			got.ContDepth != want.PeakContDepth || got.Answer != want.Answer {
			t.Errorf("[%s] service cell %+v differs from direct run (flat %d linked %d heap %d steps %d depth %d answer %q)",
				v, got, want.PeakFlat, want.PeakLinked, want.PeakHeap, want.Steps, want.PeakContDepth, want.Answer)
		}
	}
}

// TestConcurrentRequestsCoalesceAndCache fans identical requests out
// concurrently, checks every response is identical, and checks the cache
// counters: the distinct cells are computed once (misses), the concurrent
// duplicates coalesce (joins), and a repeat of the whole request afterwards
// is served entirely from cache (hits).
func TestConcurrentRequestsCoalesceAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := MeasureRequest{Program: countdown, Input: "(quote 5)", Machines: []string{"tail", "gc"}}

	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postCtx(t, context.Background(), ts.URL+"/v1/measure", req)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, status, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw a different response:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	m := s.Metrics()
	if misses := m.Counter(MetricCacheMisses); misses != 2 {
		t.Errorf("cache.misses = %d, want 2 (one per distinct cell)", misses)
	}
	joinsAndHits := m.Counter(MetricCacheJoins) + m.Counter(MetricCacheHits)
	if want := int64(clients*2 - 2); joinsAndHits != want {
		t.Errorf("joins+hits = %d, want %d", joinsAndHits, want)
	}

	// A repeat after everything has landed must be a pure cache hit.
	before := m.Counter(MetricCacheHits)
	status, _ := postCtx(t, context.Background(), ts.URL+"/v1/measure", req)
	if status != http.StatusOK {
		t.Fatalf("repeat status = %d", status)
	}
	if got := m.Counter(MetricCacheHits); got != before+2 {
		t.Errorf("cache.hits after repeat = %d, want %d", got, before+2)
	}
	if misses := m.Counter(MetricCacheMisses); misses != 2 {
		t.Errorf("repeat recomputed: cache.misses = %d, want still 2", misses)
	}
}

// TestMonitorMachinesOnTheWire pins the contract monitors' wire surface:
// both machines are selectable by name, agree with Z_tail on the answer of
// a contracted loop, reproduce the Greenberg separation in their measured
// peaks (naive grows with the input, spaceff does not), and each machine is
// its own cache identity — spaceff must not be served naive's cells.
func TestMonitorMachinesOnTheWire(t *testing.T) {
	const contracted = "(define/contract (f n) (-> number? number?) (if (zero? n) 0 (f (- n 1))))"
	s, ts := newTestServer(t, Config{})
	measure := func(machine, input string) MeasureCell {
		var resp MeasureResponse
		r := MeasureRequest{Program: contracted, Input: input,
			Machines: []string{machine}, CostModels: []string{"fixnum"}}
		if status := post(t, ts.URL+"/v1/measure", r, &resp); status != http.StatusOK {
			t.Fatalf("measure %s: status = %d", machine, status)
		}
		if len(resp.Cells) != 1 {
			t.Fatalf("measure %s: %d cells", machine, len(resp.Cells))
		}
		return resp.Cells[0]
	}

	naiveSmall := measure("naive", "(quote 8)")
	m := s.Metrics()
	missesAfterNaive := m.Counter(MetricCacheMisses)
	hitsAfterNaive := m.Counter(MetricCacheHits)

	spaceffSmall := measure("spaceff", "(quote 8)")
	if got := m.Counter(MetricCacheMisses); got != missesAfterNaive+1 {
		t.Fatalf("spaceff must be a fresh cache identity: misses = %d, want %d", got, missesAfterNaive+1)
	}
	if got := m.Counter(MetricCacheHits); got != hitsAfterNaive {
		t.Fatalf("spaceff must not hit the naive entry: hits = %d, want %d", got, hitsAfterNaive)
	}
	tailSmall := measure("tail", "(quote 8)")
	for _, c := range []MeasureCell{naiveSmall, spaceffSmall, tailSmall} {
		if c.Outcome != "answer" || c.Answer != "0" {
			t.Fatalf("[%s] = %+v, want answer 0", c.Machine, c)
		}
	}

	// At small n the prelude's peak masks the monitor chain, so the
	// separation needs an input deep enough for the chain to dominate:
	// one mon-cod frame per level puts naive's peak Θ(n) past tail's.
	naiveBig := measure("naive", "(quote 512)")
	spaceffBig := measure("spaceff", "(quote 512)")
	if naiveBig.Flat-naiveSmall.Flat < 512 {
		t.Errorf("naive monitor peak must chain with the input: %d @8 vs %d @512",
			naiveSmall.Flat, naiveBig.Flat)
	}
	if spaceffBig.Flat != spaceffSmall.Flat {
		t.Errorf("space-efficient monitor peak must not grow: %d @8 vs %d @512",
			spaceffSmall.Flat, spaceffBig.Flat)
	}
}

// TestClientDisconnectCancelsWorker submits a diverging program, drops the
// connection, and asserts the worker slot frees promptly: the cancellation
// propagated through the flight context into core.Run.
func TestClientDisconnectCancelsWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxSteps: 1 << 30, RequestTimeout: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		postCtx(t, ctx, ts.URL+"/v1/eval", EvalRequest{Program: infiniteLoop})
	}()

	// Wait until the run actually occupies the pool, then disconnect.
	waitFor(t, "worker busy", func() bool { return s.Metrics().Gauge(MetricPoolBusy) == 1 })
	cancel()
	<-done
	waitFor(t, "worker freed after disconnect", func() bool {
		return s.Metrics().Gauge(MetricPoolBusy) == 0 && s.Metrics().Gauge(MetricInflight) == 0
	})

	// The freed slot must be usable: a normal request still completes.
	var resp EvalResponse
	if status := post(t, ts.URL+"/v1/eval", EvalRequest{Program: "(+ 1 2)"}, &resp); status != http.StatusOK {
		t.Fatalf("follow-up status = %d", status)
	}
	if resp.Answer != "3" {
		t.Fatalf("follow-up answer = %q", resp.Answer)
	}
}

// TestCoalescedComputationSurvivesLeaderDisconnect: the first requester
// starts a computation, a second identical request joins it, the first
// disconnects — the survivor must still get the result.
func TestCoalescedComputationSurvivesLeaderDisconnect(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, RequestTimeout: time.Hour})
	// A program slow enough (hundreds of thousands of steps) to let the
	// second request join before the first finishes.
	req := EvalRequest{Program: countdown, Input: "(quote 200000)"}

	leaderCtx, dropLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		postCtx(t, leaderCtx, ts.URL+"/v1/eval", req)
	}()
	waitFor(t, "leader in flight", func() bool { return s.Metrics().Gauge(MetricInflight) == 1 })

	followerDone := make(chan struct{})
	var followerStatus int
	var followerBody []byte
	go func() {
		defer close(followerDone)
		followerStatus, followerBody = postCtx(t, context.Background(), ts.URL+"/v1/eval", req)
	}()
	waitFor(t, "follower joined", func() bool { return s.Metrics().Counter(MetricCacheJoins) >= 1 })

	dropLeader()
	<-leaderDone
	<-followerDone
	if followerStatus != http.StatusOK {
		t.Fatalf("follower status = %d: %s", followerStatus, followerBody)
	}
	var resp EvalResponse
	if err := json.Unmarshal(followerBody, &resp); err != nil {
		t.Fatalf("decode follower: %v", err)
	}
	if resp.Outcome != "answer" || resp.Answer != "0" {
		t.Fatalf("follower got %+v, want answer 0", resp)
	}
}

// TestDeadlineReturns504 bounds a diverging run by the per-request timeout.
func TestDeadlineReturns504(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSteps: 1 << 30, RequestTimeout: 100 * time.Millisecond})
	status, body := postCtx(t, context.Background(), ts.URL+"/v1/eval", EvalRequest{Program: infiniteLoop})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, body)
	}
}

// TestServerCloseAbortsInflight models the drain deadline: Close cancels
// the base context, so a stuck in-flight run aborts instead of holding the
// process open.
func TestServerCloseAbortsInflight(t *testing.T) {
	s := New(Config{MaxSteps: 1 << 30, RequestTimeout: time.Hour})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		status, _ := postCtx(t, context.Background(), ts.URL+"/v1/eval", EvalRequest{Program: infiniteLoop})
		done <- status
	}()
	waitFor(t, "run in flight", func() bool { return s.Metrics().Gauge(MetricInflight) == 1 })
	s.Close()
	select {
	case status := <-done:
		if status != 499 {
			t.Fatalf("status = %d, want 499", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight run survived Close for 5s")
	}
}

// TestEvalOutcomes covers the distinguished non-answer outcomes.
func TestEvalOutcomes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp EvalResponse
	if status := post(t, ts.URL+"/v1/eval", EvalRequest{Program: infiniteLoop, MaxSteps: 1000}, &resp); status != http.StatusOK {
		t.Fatalf("max-steps status = %d", status)
	}
	if resp.Outcome != "max-steps" {
		t.Errorf("outcome = %q, want max-steps", resp.Outcome)
	}
	if status := post(t, ts.URL+"/v1/eval", EvalRequest{Program: "(car 1)"}, &resp); status != http.StatusOK {
		t.Fatalf("stuck status = %d", status)
	}
	if resp.Outcome != "stuck" || resp.Error == "" {
		t.Errorf("stuck outcome = %+v", resp)
	}
}

// TestLintEndpoint serves the analyzer's verdicts.
func TestLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	leaky := `(define (build n acc) (if (zero? n) acc (build (- n 1) (lambda () (cons n (acc))))))
(define (driver n) (build n (lambda () '())))
driver`
	var resp LintResponse
	if status := post(t, ts.URL+"/v1/lint", LintRequest{Name: "leaky", Program: leaky}, &resp); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if resp.Program != "leaky" {
		t.Errorf("program = %q", resp.Program)
	}
	var clean LintResponse
	if status := post(t, ts.URL+"/v1/lint", LintRequest{Program: countdown + "\nf"}, &clean); status != http.StatusOK {
		t.Fatalf("clean status = %d", status)
	}
	if clean.Confirmed {
		t.Errorf("countdown reported a confirmed leak: %+v", clean.LintReport)
	}
}

// TestClassifyEndpoint serves space-class certificates, with the cost
// model part of the result (and the cache identity): logarithmic pricing
// widens countdown's O(1) tail certificate to O(n).
func TestClassifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	program := countdown + "\nf"
	var word ClassifyResponse
	if status := post(t, ts.URL+"/v1/classify", ClassifyRequest{Name: "countdown", Program: program}, &word); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if word.Program != "countdown" || word.Model != "word" {
		t.Errorf("header = %q/%q, want countdown/word", word.Program, word.Model)
	}
	if c := word.CertificateFor("tail"); c.Class != analysis.ClassConstant {
		t.Errorf("word-model tail certificate = %+v, want O(1)", c)
	}
	var log ClassifyResponse
	if status := post(t, ts.URL+"/v1/classify", ClassifyRequest{Name: "countdown", Program: program, CostModel: "log"}, &log); status != http.StatusOK {
		t.Fatalf("log status = %d", status)
	}
	if c := log.CertificateFor("tail"); c.Class != analysis.ClassLinear {
		t.Errorf("log-model tail certificate = %+v, want O(n)", c)
	}
}

// TestBadRequests pins the 400 paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		url  string
		req  any
	}{
		{"parse error", "/v1/eval", EvalRequest{Program: "(unclosed"}},
		{"unknown machine", "/v1/eval", EvalRequest{Program: "(+ 1 2)", Machine: "zinc"}},
		{"random order", "/v1/eval", EvalRequest{Program: "(+ 1 2)", Order: "random"}},
		{"unknown cost model", "/v1/measure", MeasureRequest{Program: "(+ 1 2)", CostModels: []string{"decimal"}}},
		{"classify bad model", "/v1/classify", ClassifyRequest{Program: "(+ 1 2)", CostModel: "decimal"}},
		{"classify parse error", "/v1/classify", ClassifyRequest{Program: "(unclosed"}},
		{"bad input", "/v1/measure", MeasureRequest{Program: countdown, Input: "(((("}},
	}
	for _, tc := range cases {
		status, body := postCtx(t, context.Background(), ts.URL+tc.url, tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tc.name, status, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", tc.name, body)
		}
	}
}

// TestHealthAndMetricsEndpoints exercises the GET surface.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", hresp.StatusCode, body)
	}

	// Serve one request, then check the registry bridged engine totals.
	var eresp EvalResponse
	if status := post(t, ts.URL+"/v1/eval", EvalRequest{Program: "(+ 1 2)"}, &eresp); status != http.StatusOK {
		t.Fatalf("eval status = %d", status)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap map[string]int64
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	for _, name := range []string{MetricCacheMisses, "machine.steps", obs.Labeled(MetricRequests, "endpoint", "/v1/eval")} {
		if snap[name] < 1 {
			t.Errorf("metrics[%s] = %d, want >= 1 (snapshot %v)", name, snap[name], snap)
		}
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCostModelsAreDistinctCacheIdentities pins the cache-key contract of
// the cost-model axis: the same program under two cost_model values is two
// cache entries (the second model misses, it is not served the first
// model's cells), while repeating a model is a pure hit. The peaks must
// also differ — under LogModel pointers widen with the live store.
func TestCostModelsAreDistinctCacheIdentities(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := func(model string) MeasureResponse {
		var resp MeasureResponse
		r := MeasureRequest{Program: countdown, Input: "(quote 6)",
			Machines: []string{"tail"}, CostModels: []string{model}}
		if status := post(t, ts.URL+"/v1/measure", r, &resp); status != http.StatusOK {
			t.Fatalf("measure %s: status = %d", model, status)
		}
		return resp
	}

	word := req("word")
	m := s.Metrics()
	missesAfterWord := m.Counter(MetricCacheMisses)
	hitsAfterWord := m.Counter(MetricCacheHits)

	logResp := req("log")
	if got := m.Counter(MetricCacheMisses); got != missesAfterWord+1 {
		t.Fatalf("log model must be a fresh cache identity: misses = %d, want %d", got, missesAfterWord+1)
	}
	if got := m.Counter(MetricCacheHits); got != hitsAfterWord {
		t.Fatalf("log model must not hit the word entry: hits = %d, want %d", got, hitsAfterWord)
	}
	if word.Cells[0].CostModel != "word" || logResp.Cells[0].CostModel != "log" {
		t.Fatalf("cells mislabeled: %q / %q", word.Cells[0].CostModel, logResp.Cells[0].CostModel)
	}
	if word.Cells[0].Flat >= logResp.Cells[0].Flat {
		t.Fatalf("log-model peak (%d) must exceed word-model peak (%d): pointers widen",
			logResp.Cells[0].Flat, word.Cells[0].Flat)
	}

	again := req("log")
	if got := m.Counter(MetricCacheHits); got != hitsAfterWord+1 {
		t.Fatalf("repeat log request must hit: hits = %d, want %d", got, hitsAfterWord+1)
	}
	if again.Cells[0] != logResp.Cells[0] {
		t.Fatalf("cached cell differs: %+v vs %+v", again.Cells[0], logResp.Cells[0])
	}
}

// TestBackendsAreDistinctCacheIdentities pins the backend axis of the cache
// key: the compiled backend computes the same observables as the stepper —
// every cell field must agree — but a cache entry names the computation that
// produced it, so the two backends are two identities (the second backend
// misses) and an unknown backend is a client error.
func TestBackendsAreDistinctCacheIdentities(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := func(backend string) MeasureResponse {
		var resp MeasureResponse
		r := MeasureRequest{Program: countdown, Input: "(quote 6)",
			Machines: []string{"tail"}, CostModels: []string{"fixnum"},
			Backend: backend}
		if status := post(t, ts.URL+"/v1/measure", r, &resp); status != http.StatusOK {
			t.Fatalf("measure backend=%q: status = %d", backend, status)
		}
		return resp
	}

	stepper := req("stepper")
	m := s.Metrics()
	missesAfterStepper := m.Counter(MetricCacheMisses)
	hitsAfterStepper := m.Counter(MetricCacheHits)

	compiled := req("compiled")
	if got := m.Counter(MetricCacheMisses); got != missesAfterStepper+1 {
		t.Fatalf("compiled backend must be a fresh cache identity: misses = %d, want %d", got, missesAfterStepper+1)
	}
	if got := m.Counter(MetricCacheHits); got != hitsAfterStepper {
		t.Fatalf("compiled backend must not hit the stepper entry: hits = %d, want %d", got, hitsAfterStepper)
	}
	if stepper.Cells[0] != compiled.Cells[0] {
		t.Fatalf("backends must agree on every observable: stepper=%+v compiled=%+v",
			stepper.Cells[0], compiled.Cells[0])
	}

	// The empty backend resolves to the server default (the stepper here),
	// so it shares the stepper entry.
	again := req("")
	if got := m.Counter(MetricCacheHits); got != hitsAfterStepper+1 {
		t.Fatalf("default backend must hit the stepper entry: hits = %d, want %d", got, hitsAfterStepper+1)
	}
	if again.Cells[0] != stepper.Cells[0] {
		t.Fatalf("cached cell differs: %+v vs %+v", again.Cells[0], stepper.Cells[0])
	}

	var resp MeasureResponse
	bad := MeasureRequest{Program: countdown, Backend: "jit"}
	if status := post(t, ts.URL+"/v1/measure", bad, &resp); status != http.StatusBadRequest {
		t.Fatalf("unknown backend: status = %d, want 400", status)
	}
}
