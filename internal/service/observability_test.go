package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"tailspace/internal/obs"
)

// postTraced posts req with an X-Request-Id header and returns the status,
// body, and the X-Trace-Id the server echoed.
func postTraced(t *testing.T, url, requestID string, req any) (int, []byte, string) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		hreq.Header.Set("X-Request-Id", requestID)
	}
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer hresp.Body.Close()
	body, _ := io.ReadAll(hresp.Body)
	return hresp.StatusCode, body, hresp.Header.Get("X-Trace-Id")
}

// TestTraceEndToEnd pins the PR's acceptance walk: one POST /v1/measure is
// followable end to end — the client's request ID becomes the trace ID, the
// run's spans (queue-wait and run among them) are exported both as JSON and
// in the Chrome trace format, at least one live-streamed engine event is
// replayable from GET /v1/runs/{id}/events, and the per-endpoint latency
// histogram shows up in both /metrics representations.
func TestTraceEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const reqID = "e2e-trace-1"

	var resp MeasureResponse
	status, body, traceID := postTraced(t, ts.URL+"/v1/measure", reqID, MeasureRequest{
		Program: countdown, Input: "(quote 12)", Machines: []string{"tail"},
	})
	if status != http.StatusOK {
		t.Fatalf("measure status = %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decode measure response: %v", err)
	}
	if traceID != reqID {
		t.Fatalf("X-Trace-Id = %q, want the client's request ID %q", traceID, reqID)
	}

	// 1. The run stream replays at least one engine event, every event is
	// stamped with the trace ID, and the stream ends with stream.end.
	sresp, err := http.Get(ts.URL + "/v1/runs/" + reqID + "/events")
	if err != nil {
		t.Fatalf("GET run events: %v", err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("run events status = %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("run events Content-Type = %q", ct)
	}
	var engineEvents int
	var sawEnd bool
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type  string `json:"type"`
			Trace string `json:"trace"`
			Total int    `json:"total"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("stream line is not JSON: %v\n%s", err, line)
		}
		if probe.Type == "stream.end" {
			sawEnd = true
			if probe.Total < 1 {
				t.Fatalf("stream.end total = %d, want >= 1", probe.Total)
			}
			continue
		}
		if probe.Trace != reqID {
			t.Fatalf("streamed event lacks trace stamp: %s", line)
		}
		if probe.Type != string(obs.EventSpan) {
			engineEvents++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if engineEvents < 1 {
		t.Fatal("stream replayed no engine events")
	}
	if !sawEnd {
		t.Fatal("stream did not terminate with stream.end")
	}

	// 2. The trace export carries the queue-wait + run span pair (plus the
	// request envelope), all on this trace.
	var trace TraceResponse
	getJSON(t, ts.URL+"/v1/traces/"+reqID, &trace)
	if trace.Trace != reqID {
		t.Fatalf("trace id = %q", trace.Trace)
	}
	names := map[string]int{}
	for _, sp := range trace.Spans {
		if sp.Trace != reqID || sp.Type != obs.EventSpan {
			t.Fatalf("foreign span in trace: %+v", sp)
		}
		if sp.DurUS < 1 || sp.StartUS == 0 || sp.SpanID == 0 {
			t.Fatalf("span missing timing or ID: %+v", sp)
		}
		names[sp.Span]++
	}
	for _, want := range []string{"expand", "cache-lookup", "queue-wait", "run", "measure", "request"} {
		if names[want] == 0 {
			t.Fatalf("trace spans %v lack %q", names, want)
		}
	}

	// 3. The same spans render as Chrome complete events.
	chrome := getBody(t, ts.URL+"/v1/traces/"+reqID+"?format=chrome")
	for _, want := range []string{`"cat":"span"`, `"ph":"X"`, `"queue-wait"`, `"run"`, reqID} {
		if !strings.Contains(chrome, want) {
			t.Fatalf("chrome export lacks %s:\n%s", want, chrome)
		}
	}

	// 4. Both /metrics representations carry the per-endpoint latency
	// histogram for the measure endpoint.
	var snap map[string]int64
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap[`http.request.us{endpoint="/v1/measure"}.count`] < 1 {
		t.Fatalf("JSON snapshot lacks measure latency histogram: %v", snap)
	}
	if snap[`run.steps{machine="tail",model="word"}.count`] < 1 {
		t.Fatal("JSON snapshot lacks labeled run.steps histogram")
	}
	prom := getBody(t, ts.URL+"/metrics?format=prometheus")
	for _, want := range []string{
		"# TYPE http_request_us histogram",
		`http_request_us_bucket{endpoint="/v1/measure",le="+Inf"}`,
		`http_request_us_sum{endpoint="/v1/measure"}`,
		`run_peak_flat_words_count{machine="tail",model="word"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus exposition lacks %q:\n%s", want, prom)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v\n%s", url, err, body)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestMetricsContentNegotiation: a Prometheus scraper's Accept header gets
// text exposition; the bare default stays JSON for existing consumers.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("scraper Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	plain, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	if ct := plain.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q, want JSON", ct)
	}
}

// TestClientRequestIDValidation: malformed or oversized X-Request-Id values
// are replaced by a minted trace ID, never echoed back.
func TestClientRequestIDValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, bad := range []string{"spaces are bad", "semi;colon", strings.Repeat("x", 65)} {
		_, _, traceID := postTraced(t, ts.URL+"/v1/eval", bad, EvalRequest{Program: countdown, Input: "(quote 1)"})
		if traceID == bad || traceID == "" {
			t.Fatalf("X-Request-Id %q: got trace %q, want a minted ID", bad, traceID)
		}
	}
	_, _, traceID := postTraced(t, ts.URL+"/v1/eval", "", EvalRequest{Program: countdown, Input: "(quote 2)"})
	if len(traceID) != 16 {
		t.Fatalf("minted trace ID %q, want 16 hex digits", traceID)
	}
}

// TestRunEventsUnknownTrace: streaming a trace that never ran is a 404, not
// a hang.
func TestRunEventsUnknownTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/runs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestRunEventsSSE: an EventSource-style client gets the same stream as
// server-sent events.
func TestRunEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const reqID = "sse-trace-1"
	status, body, _ := postTraced(t, ts.URL+"/v1/eval", reqID, EvalRequest{Program: countdown, Input: "(quote 3)"})
	if status != http.StatusOK {
		t.Fatalf("eval status = %d: %s", status, body)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/runs/"+reqID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "data: {") || !strings.Contains(string(raw), "stream.end") {
		t.Fatalf("SSE body lacks data frames or terminator:\n%s", raw)
	}
}

// TestHealthzReportsVersionAndUptime pins the enriched health probe.
func TestHealthzReportsVersionAndUptime(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h HealthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" {
		t.Fatalf("status = %q", h.Status)
	}
	if !strings.Contains(h.Version, "spaced") {
		t.Fatalf("version = %q, want a spaced build string", h.Version)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("uptime = %d", h.UptimeSeconds)
	}
	if h.Workers < 1 {
		t.Fatalf("workers = %d", h.Workers)
	}
}

// TestAccessLogEventOutcomes: the access-log event stream reports the
// request outcome — cache disposition on success, shed on queue overflow —
// and carries the trace ID.
func TestAccessLogEventOutcomes(t *testing.T) {
	ring := obs.NewRing(64)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Events: ring})
	_ = s

	status, body, _ := postTraced(t, ts.URL+"/v1/eval", "log-ok", EvalRequest{Program: countdown, Input: "(quote 4)"})
	if status != http.StatusOK {
		t.Fatalf("eval status = %d: %s", status, body)
	}

	var logged *obs.Event
	for _, e := range ring.Events() {
		if e.Type == obs.EventRequest && e.Trace == "log-ok" {
			ev := e
			logged = &ev
		}
	}
	if logged == nil {
		t.Fatal("no access-log event for the traced request")
	}
	if logged.Cache != "miss" {
		t.Fatalf("outcome = %q, want miss", logged.Cache)
	}
	if logged.Status != http.StatusOK || logged.Path != "/v1/eval" {
		t.Fatalf("access-log event: %+v", logged)
	}
}

// TestStreamLiveDuringRun subscribes while a long run is still executing
// and requires at least one live (not merely replayed) event before
// cancelling the request.
func TestStreamLiveDuringRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const reqID = "live-trace-1"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload, _ := json.Marshal(EvalRequest{Program: infiniteLoop, MaxSteps: 2_000_000})
		hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/eval", bytes.NewReader(payload))
		hreq.Header.Set("X-Request-Id", reqID)
		resp, err := http.DefaultClient.Do(hreq)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// The stream appears once the run starts; poll briefly.
	var resp *http.Response
	waitFor(t, "run stream to appear", func() bool {
		r, err := http.Get(ts.URL + "/v1/runs/" + reqID + "/events")
		if err != nil {
			return false
		}
		if r.StatusCode != http.StatusOK {
			r.Body.Close()
			return false
		}
		resp = r
		return true
	})
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	events := 0
	for sc.Scan() && events < 3 {
		events++
	}
	if events < 1 {
		t.Fatal("no live events observed during the run")
	}
	cancel()
	<-done
}

// TestStreamTableRefusesPostFinishCreate pins the coalesced-flight leak fix:
// a computation can outlive the request that started it (followers keep the
// flight alive after the leader disconnects), and its lazy getOrCreate must
// not mint a fresh live stream once the owning request has finished — no
// finish would ever follow, so the stream would sit in the table forever
// and hang every subscriber.
func TestStreamTableRefusesPostFinishCreate(t *testing.T) {
	st := newStreamTable(1)

	st.begin("a")
	if st.getOrCreate("a") == nil {
		t.Fatal("in-flight request should get a live stream")
	}
	st.finish("a")

	// Push "a" past the bounded finished set.
	st.begin("b")
	if st.getOrCreate("b") == nil {
		t.Fatal("in-flight request should get a live stream")
	}
	st.finish("b")
	if st.get("a") != nil {
		t.Fatal("stream a should have aged out of the finished set")
	}

	// The late lazy-create from a's outliving flight: refuse, don't leak.
	if rs := st.getOrCreate("a"); rs != nil {
		t.Fatal("getOrCreate after finish+eviction minted a stream nothing will close")
	}

	// While still retained, the finished stream is returned as-is (its fan
	// is closed, so emissions drop instead of leaking).
	if rs := st.getOrCreate("b"); rs == nil || !rs.done {
		t.Fatal("retained finished stream should be returned, already closed")
	}
}

// TestStreamTableSharedRequestID: overlapping requests reusing one
// X-Request-Id are counted, not flagged — the ID stays live-creatable until
// the last of them finishes.
func TestStreamTableSharedRequestID(t *testing.T) {
	st := newStreamTable(4)
	st.begin("x")
	st.begin("x")
	st.finish("x") // first request done; second still in flight
	if st.getOrCreate("x") == nil {
		t.Fatal("trace active in a second request should still create")
	}
	st.finish("x")
	if _, ok := st.active["x"]; ok {
		t.Fatal("trace should be inactive after its last request finished")
	}
}
