// Package service implements spaced, the long-lived space-measurement
// server over the repo's engine: the six Clinger machines (POST /v1/eval),
// the Definition 21 S_X/U_X meters (POST /v1/measure), and the static
// space-leak analyzer (POST /v1/lint), behind a bounded worker pool with
// per-request deadlines, client-disconnect cancellation, and a
// content-addressed result cache with single-flight coalescing.
//
// The wire format is JSON over HTTP. Requests name programs by source text
// (the server expands them itself), machines by the paper's names
// (tail|gc|stack|evlis|free|sfs|mta), and space cost models by
// "word"/"fixnum"/"log". Every measurement a response reports is computed
// by exactly the option set the spacelab sweeps use (Measure, GCEvery: 1),
// so a service cell and a spacelab cell for the same inputs are identical.
package service

import (
	"fmt"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
	"tailspace/internal/space"
)

// EvalRequest runs a program — optionally applied to an input datum, the
// (P D) shape of Definition 23 — on one machine, without space accounting.
type EvalRequest struct {
	// Program is Scheme source text (full surface language; the server
	// expands it).
	Program string `json:"program"`
	// Input, when non-empty, is a datum expression; the server evaluates
	// (P Input) instead of P alone.
	Input string `json:"input,omitempty"`
	// Machine selects the reference implementation; empty means "tail".
	Machine string `json:"machine,omitempty"`
	// MaxSteps bounds the computation; 0 means the server default, and
	// values above the server's cap are clamped to it.
	MaxSteps int `json:"maxSteps,omitempty"`
	// Order is the argument-evaluation permutation: "left" (default) or
	// "right". The random order is rejected — its results are not
	// deterministic, so they must not enter the content-addressed cache.
	Order string `json:"order,omitempty"`
	// Backend selects the execution backend: "stepper" or "compiled";
	// empty means the server's configured default. The backends are
	// observationally identical, but the backend still enters the cache
	// key — a cache entry names the computation that produced it.
	Backend string `json:"backend,omitempty"`
}

// EvalResponse is the observable outcome of one run.
type EvalResponse struct {
	Machine string `json:"machine"`
	// Outcome is "answer", "stuck", or "max-steps".
	Outcome string `json:"outcome"`
	// Answer is the rendered observable answer (Definition 11); empty
	// unless Outcome is "answer".
	Answer string `json:"answer,omitempty"`
	Steps  int    `json:"steps"`
	// Error carries the stuck diagnostic when Outcome is "stuck".
	Error string `json:"error,omitempty"`
}

// MeasureRequest measures S_X (and, unless FlatOnly, U_X) peaks for one
// program across a machine × cost-model grid.
type MeasureRequest struct {
	Program string `json:"program"`
	Input   string `json:"input,omitempty"`
	// Machines lists the grid's machines; empty means the full family —
	// the paper's six machines plus the two contract monitors.
	Machines []string `json:"machines,omitempty"`
	// CostModels lists space cost models ("word", "fixnum", "log"); empty
	// means word only. Each model is a distinct cache identity: the same
	// program under two models is two cache entries.
	CostModels []string `json:"costModels,omitempty"`
	// FlatOnly skips the Figure 8 linked measurement (U_X), whose per-step
	// cost is O(configuration).
	FlatOnly bool   `json:"flatOnly,omitempty"`
	MaxSteps int    `json:"maxSteps,omitempty"`
	Order    string `json:"order,omitempty"`
	// Backend selects the execution backend ("stepper" or "compiled");
	// empty means the server default. Part of the cache identity.
	Backend string `json:"backend,omitempty"`
}

// MeasureCell is one grid cell: the peaks of one (machine, cost-model) run.
type MeasureCell struct {
	Machine   string `json:"machine"`
	CostModel string `json:"costModel"`
	Outcome   string `json:"outcome"`
	// Flat is |P| + peak Figure 7 space (the S_X sample); Linked is
	// |P| + peak Figure 8 space (the U_X sample, 0 when flatOnly).
	Flat      int    `json:"flat"`
	Linked    int    `json:"linked,omitempty"`
	Heap      int    `json:"heap"`
	ContDepth int    `json:"contDepth"`
	Steps     int    `json:"steps"`
	Answer    string `json:"answer,omitempty"`
	Error     string `json:"error,omitempty"`
}

// MeasureResponse is the full grid, cells in machines × costModels request
// order.
type MeasureResponse struct {
	ProgramSize int           `json:"programSize"`
	Cells       []MeasureCell `json:"cells"`
}

// LintRequest runs the static space-leak analyzer on one program.
type LintRequest struct {
	// Name labels the program in the report; empty means "program".
	Name    string `json:"name,omitempty"`
	Program string `json:"program"`
}

// LintResponse is the analyzer's report, in the same JSON shape tailscan
// -lint -json emits (pinned there by a golden test).
type LintResponse struct {
	*analysis.LintReport
	// Confirmed mirrors LintReport.Confirmed() so clients need not count
	// leaks themselves.
	Confirmed bool `json:"confirmed"`
}

// ClassifyRequest derives per-machine space-class certificates for one
// program: for each of the paper's six machines, an O(1)/O(n)/unbounded
// upper bound on S_X with the evidence that forced it.
type ClassifyRequest struct {
	// Name labels the program in the report; empty means "program".
	Name    string `json:"name,omitempty"`
	Program string `json:"program"`
	// CostModel is the space cost model the certificates are stated under
	// ("word", "fixnum", or "log"); empty means word. Logarithmic pricing
	// widens unit-cost bounds, so the model is part of the cache identity.
	CostModel string `json:"costModel,omitempty"`
}

// ClassifyResponse is the certificate report, in the same JSON shape
// tailscan -classify -json emits one element of.
type ClassifyResponse struct {
	*analysis.ClassifyReport
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	// Version is the spaced build identity (internal/version), so a probe
	// can tell which build is answering.
	Version string `json:"version"`
	// UptimeSeconds is whole seconds since the Server was constructed.
	UptimeSeconds int64 `json:"uptimeSeconds"`
	Workers       int   `json:"workers"`
	// Cache is the resident result-cache entry count.
	Cache int `json:"cache"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// outcomeOf classifies a finished run the way the responses report it.
func outcomeOf(err error) (outcome, msg string) {
	switch {
	case err == nil:
		return "answer", ""
	case err == core.ErrMaxSteps:
		return "max-steps", err.Error()
	default:
		return "stuck", err.Error()
	}
}

// parseMachine resolves a wire machine name.
func parseMachine(name string) (core.Variant, error) {
	if name == "" {
		name = "tail"
	}
	v, ok := core.ByName(name)
	if !ok {
		return core.Variant{}, fmt.Errorf("unknown machine %q (want tail|gc|stack|evlis|free|sfs|naive|spaceff|mta)", name)
	}
	return v, nil
}

// parseCostModel resolves a wire cost-model name.
func parseCostModel(name string) (space.CostModel, error) {
	m, err := space.ModelByName(name)
	if err != nil {
		return nil, fmt.Errorf("unknown cost model %q (want word|fixnum|log)", name)
	}
	return m, nil
}

// parseBackend resolves a wire backend name; empty defers to def (the
// server's configured default).
func parseBackend(name string, def core.Backend) (core.Backend, error) {
	if name == "" {
		return def, nil
	}
	return core.ParseBackend(name)
}

// parseOrder resolves a wire argument-order name. RandomOrder is rejected:
// a nondeterministic run has no content-addressed identity.
func parseOrder(name string) (core.ArgOrder, error) {
	switch name {
	case "", "left":
		return core.LeftToRight, nil
	case "right":
		return core.RightToLeft, nil
	case "random":
		return 0, fmt.Errorf("order %q is nondeterministic and cannot be served from a content-addressed cache", name)
	}
	return 0, fmt.Errorf("unknown order %q (want left|right)", name)
}
