package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"tailspace/internal/obs"
)

// Live run streaming. Every traced request that starts at least one engine
// run gets a runStream: an obs.Fanout the run's events (and the request's
// spans) are emitted into. GET /v1/runs/{id}/events subscribes to it and
// relays events to the client as NDJSON (or SSE), live while the run is in
// flight and by ring replay afterwards — a stream opened just after a short
// run finished still sees its retained tail, which is what makes the smoke
// test deterministic.
//
// The backpressure policy is the Fanout's: the engine never blocks on a
// network peer; a slow stream loses events, and the final stream.end object
// reports how many.

// runStreamRing bounds the events a stream retains for replay. Engine
// streams can run to millions of events; late subscribers get the tail.
const runStreamRing = 4096

// finishedStreamsKept bounds how many finished streams stay subscribable.
const finishedStreamsKept = 64

// runStream is the live event channel of one traced request.
type runStream struct {
	fan  *obs.Fanout
	done bool // finished (fan closed); guarded by streamTable.mu
}

// streamTable indexes run streams by trace ID. Streams are created lazily
// by the first engine run of a request, finished by the request middleware
// when the handler returns, and retained (bounded FIFO) after finishing so
// recent runs stay replayable.
//
// Creation is gated on the owning request still being in flight (begin /
// finish bracket every traced request): a coalesced computation can outlive
// the request that started it, and a late getOrCreate from such a flight
// must not mint a fresh live stream — nothing would ever finish it, so it
// would sit in byID forever and hang every subscriber. Once the owner has
// finished, getOrCreate returns the retained (closed) stream if it is still
// held, and nil after eviction.
type streamTable struct {
	mu       sync.Mutex
	byID     map[string]*runStream
	active   map[string]int // in-flight request count per trace ID
	finished []string       // finish order, oldest first
	keep     int
}

func newStreamTable(keep int) *streamTable {
	if keep < 1 {
		keep = 1
	}
	return &streamTable{
		byID:   map[string]*runStream{},
		active: map[string]int{},
		keep:   keep,
	}
}

// begin marks a traced request as in flight; its finish must follow. The
// count (not a bool) tolerates clients that reuse one X-Request-Id across
// overlapping requests.
func (t *streamTable) begin(id string) {
	t.mu.Lock()
	t.active[id]++
	t.mu.Unlock()
}

// getOrCreate returns the stream for trace id, creating a live one if none
// exists and the owning request is still in flight. All runs of one request
// (the cells of a measure grid) share it. Returns nil when the request has
// already finished and its stream aged out — the caller runs untraced
// rather than leaking a stream no one will ever close.
func (t *streamTable) getOrCreate(id string) *runStream {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rs, ok := t.byID[id]; ok {
		return rs
	}
	if t.active[id] == 0 {
		return nil
	}
	rs := &runStream{fan: obs.NewFanout(runStreamRing)}
	t.byID[id] = rs
	return rs
}

// get returns the stream for trace id, live or finished, or nil.
func (t *streamTable) get(id string) *runStream {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

// finish retires one in-flight request and closes the stream for trace id
// (ending every subscriber after its buffer drains), moving it to the
// bounded finished set. The stream close is a no-op when the request
// started no run, or on a second finish of the same id.
func (t *streamTable) finish(id string) {
	t.mu.Lock()
	if t.active[id] > 1 {
		t.active[id]--
	} else {
		delete(t.active, id)
	}
	rs := t.byID[id]
	if rs == nil || rs.done {
		t.mu.Unlock()
		return
	}
	rs.done = true
	t.finished = append(t.finished, id)
	for len(t.finished) > t.keep {
		delete(t.byID, t.finished[0])
		t.finished = t.finished[1:]
	}
	t.mu.Unlock()
	rs.fan.Close()
}

// StreamEnd is the final object of a run event stream: how much the stream
// carried and how much backpressure cost this subscriber.
type StreamEnd struct {
	Type string `json:"type"` // always "stream.end"
	// Total is the number of events the run emitted into the stream.
	Total int `json:"total"`
	// Dropped is the number of events this subscriber lost to backpressure
	// (the engine never blocks on a slow stream reader).
	Dropped int64 `json:"dropped"`
}

// handleRunEvents streams the engine events of a traced request:
// GET /v1/runs/{id}/events, where {id} is the trace ID (the X-Trace-Id
// response header / access-log trace of the request that started the run).
// The body is NDJSON — one obs.Event per line, then one StreamEnd — or SSE
// when the client asks for text/event-stream.
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request, st *reqState) {
	id := r.PathValue("id")
	rs := s.streams.get(id)
	if rs == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no live or recent run stream for request %q (streams exist only for requests that started an engine run)", id))
		return
	}
	sub := rs.fan.Subscribe(1024)
	defer sub.Cancel()
	s.metrics.Add(MetricStreamSubs, 1)
	defer s.metrics.Add(MetricStreamSubs, -1)

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flush(w)

	for {
		select {
		case e, ok := <-sub.Events():
			if !ok {
				// The run's request finished and the buffer drained: close the
				// stream with its accounting.
				writeStreamObj(w, sse, StreamEnd{Type: "stream.end", Total: rs.fan.Total(), Dropped: sub.Dropped()})
				flush(w)
				return
			}
			if err := writeStreamObj(w, sse, e); err != nil {
				return // client gone
			}
			flush(w)
		case <-r.Context().Done():
			return
		}
	}
}

// writeStreamObj writes one stream element: an NDJSON line, or an SSE data
// frame.
func writeStreamObj(w io.Writer, sse bool, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if sse {
		_, err = fmt.Fprintf(w, "data: %s\n\n", b)
	} else {
		b = append(b, '\n')
		_, err = w.Write(b)
	}
	return err
}

// flush pushes buffered response bytes to the client so a live stream is
// actually live.
func flush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// TraceResponse is the JSON shape of GET /v1/traces/{id}: the finished
// spans of one request, in completion order.
type TraceResponse struct {
	Trace string      `json:"trace"`
	Spans []obs.Event `json:"spans"`
}

// handleTrace exports the spans of one request: GET /v1/traces/{id} returns
// them as JSON, and ?format=chrome renders the same spans in the Chrome
// trace_event format every other exporter in this repo uses (load the body
// in chrome://tracing or Perfetto).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, st *reqState) {
	id := r.PathValue("id")
	spans := s.spansFor(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("no spans recorded for trace %q", id))
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, "trace "+id, spans)
		return
	}
	writeJSON(w, http.StatusOK, TraceResponse{Trace: id, Spans: spans})
}

// spansFor returns the retained spans of one trace, oldest first. The span
// ring is bounded, so spans of old requests age out.
func (s *Server) spansFor(id string) []obs.Event {
	s.spanMu.Lock()
	all := s.spans.Events()
	s.spanMu.Unlock()
	var out []obs.Event
	for _, e := range all {
		if e.Trace == id {
			out = append(out, e)
		}
	}
	return out
}
