package experiments

import (
	"fmt"
	"math/rand"
)

// RandomProgram generates a random, closed, terminating Scheme program that
// evaluates to an integer. The generator never emits recursion, so every
// program halts; it exercises the forms whose rules the machine variants
// differ in (calls, lets, closures, assignments, conditionals, call/cc,
// contract monitors), which makes the output a good probe for the
// Corollary 20 differential property and the Theorem 24 pointwise
// inequalities.
func RandomProgram(r *rand.Rand, depth int) string {
	g := &progGen{r: r}
	return g.intExpr(depth, nil)
}

type progGen struct {
	r     *rand.Rand
	fresh int
}

func (g *progGen) name() string {
	g.fresh++
	return fmt.Sprintf("v%d", g.fresh)
}

func (g *progGen) pick(env []string) string {
	return env[g.r.Intn(len(env))]
}

// intExpr emits an integer-valued expression using the variables in env
// (all integer-valued).
func (g *progGen) intExpr(depth int, env []string) string {
	if depth <= 0 {
		if len(env) > 0 && g.r.Intn(2) == 0 {
			return g.pick(env)
		}
		return fmt.Sprintf("%d", g.r.Intn(20)-5)
	}
	switch g.r.Intn(12) {
	case 0, 1:
		op := []string{"+", "-", "*"}[g.r.Intn(3)]
		return fmt.Sprintf("(%s %s %s)", op, g.intExpr(depth-1, env), g.intExpr(depth-1, env))
	case 2:
		return fmt.Sprintf("(if (zero? %s) %s %s)",
			g.intExpr(depth-1, env), g.intExpr(depth-1, env), g.intExpr(depth-1, env))
	case 3:
		return fmt.Sprintf("(if (< %s %s) %s %s)",
			g.intExpr(depth-1, env), g.intExpr(depth-1, env),
			g.intExpr(depth-1, env), g.intExpr(depth-1, env))
	case 4:
		x := g.name()
		return fmt.Sprintf("(let ((%s %s)) %s)", x, g.intExpr(depth-1, env),
			g.intExpr(depth-1, append(env, x)))
	case 5:
		x, y := g.name(), g.name()
		body := g.intExpr(depth-1, append(env, x, y))
		return fmt.Sprintf("((lambda (%s %s) %s) %s %s)", x, y, body,
			g.intExpr(depth-1, env), g.intExpr(depth-1, env))
	case 6:
		return fmt.Sprintf("(car (cons %s %s))", g.intExpr(depth-1, env), g.intExpr(depth-1, env))
	case 7:
		x := g.name()
		return fmt.Sprintf("(let ((%s %s)) (begin (set! %s %s) %s))",
			x, g.intExpr(depth-1, env), x, g.intExpr(depth-1, env), x)
	case 8:
		// A thunk created and immediately applied: stresses closure rules.
		return fmt.Sprintf("((lambda () %s))", g.intExpr(depth-1, env))
	case 9:
		// A flat contract on a number: the monitor machines check it (and
		// pass), the erasing machines drop it.
		return fmt.Sprintf("(mon number? %s)", g.intExpr(depth-1, env))
	case 10:
		// An arrow contract on an immediately applied procedure: guarded
		// application exercises the mon-dom/mon-cod rules.
		x := g.name()
		body := g.intExpr(depth-1, append(env, x))
		return fmt.Sprintf("((mon (-> number? number?) (lambda (%s) %s)) %s)",
			x, body, g.intExpr(depth-1, env))
	default:
		// call/cc with an occasional early escape.
		k := g.name()
		if g.r.Intn(2) == 0 {
			return fmt.Sprintf("(call/cc (lambda (%s) (%s %s)))", k, k, g.intExpr(depth-1, env))
		}
		return fmt.Sprintf("(call/cc (lambda (%s) %s))", k, g.intExpr(depth-1, env))
	}
}

// RandomPrograms generates count programs from the given seed.
func RandomPrograms(seed int64, count, depth int) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, count)
	for i := range out {
		out[i] = RandomProgram(r, depth)
	}
	return out
}

// ProgramSetFromSlice adapts a slice to the map shape Corollary20 expects.
func ProgramSetFromSlice(prefix string, srcs []string) map[string]string {
	out := make(map[string]string, len(srcs))
	for i, s := range srcs {
		out[fmt.Sprintf("%s-%02d", prefix, i)] = s
	}
	return out
}
