package experiments

import (
	"fmt"

	"tailspace/internal/analysis"
	"tailspace/internal/corpus"
)

// Fig2 reproduces Figure 2: the static frequency of tail calls. The paper
// instrumented two production compilers (lcc and Twobit) over their private
// benchmark suites; we run the Definition 1/2 classifier over the bundled
// corpus (see DESIGN.md's substitution notes). As in the paper's caption,
// the self column includes tail calls to known closures.
func Fig2() (Table, error) {
	t := Table{
		Title:  "Figure 2: static frequency of tail calls (corpus scan)",
		Header: []string{"program", "calls", "non-tail %", "tail %", "self %"},
	}
	var total analysis.CallStats
	for _, p := range corpus.All() {
		s, err := analysis.AnalyzeSource(p.Name, p.Source)
		if err != nil {
			return t, fmt.Errorf("fig2: %s: %w", p.Name, err)
		}
		total.Add(s)
		t.AddRow(p.Name, itoa(s.Calls),
			pct(s.Percent(s.NonTail)), pct(s.Percent(s.Tail())), pct(s.Percent(s.SelfColumn())))
	}
	t.AddRow("TOTAL", itoa(total.Calls),
		pct(total.Percent(total.NonTail)), pct(total.Percent(total.Tail())), pct(total.Percent(total.SelfColumn())))

	// The paper's headline observations about the figure.
	if total.Tail() <= total.SelfTail {
		t.Violationf("tail calls (%d) should far outnumber pure self-tail calls (%d)", total.Tail(), total.SelfTail)
	}
	if frac := total.Percent(total.Tail()); frac < 15 {
		t.Violationf("idiomatic Scheme should show a substantial tail-call fraction, got %.1f%%", frac)
	}
	if total.SelfTail >= total.Calls/4 {
		t.Violationf("pure self-tail calls should be a small minority, got %d of %d", total.SelfTail, total.Calls)
	}
	t.Notef("self %% includes tail calls to known closures, as in the paper's Figure 2 caption")
	return t, nil
}

func pct(p float64) string { return fmt.Sprintf("%.1f", p) }
