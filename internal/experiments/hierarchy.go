package experiments

import (
	"fmt"
	"sort"

	"tailspace/internal/core"
	"tailspace/internal/obs"
	"tailspace/internal/space"
)

// hierarchyChecks are the pointwise inequalities of Theorem 24, as pairs
// (smaller, larger).
var hierarchyChecks = [][2]string{
	{"tail", "gc"},
	{"gc", "stack"},
	{"sfs", "evlis"},
	{"evlis", "tail"},
	{"sfs", "free"},
	{"free", "tail"},
	// Contract monitors: erasure never does less than nothing, and the
	// duplicate-dropping join never keeps more pending checks than the
	// naive chain — S_tail ≤ S_spaceff ≤ S_naive pointwise.
	{"tail", "spaceff"},
	{"spaceff", "naive"},
}

// Hierarchy reproduces Figure 6 / Theorem 24: for each probe program and
// input, measure S_X under every reference implementation and check the
// pointwise inequalities
//
//	S_tail ≤ S_gc ≤ S_stack,  S_sfs ≤ S_evlis ≤ S_tail,  S_sfs ≤ S_free ≤ S_tail
//
// together with U_X ≤ S_X (Section 13) for every X.
func Hierarchy(programs map[string]string, n int) (Table, error) {
	t := Table{
		Title:  fmt.Sprintf("Figure 6 / Theorem 24: space hierarchy at n=%d (flat S_X; U_X in parens)", n),
		Header: []string{"program", "stack", "gc", "tail", "evlis", "free", "sfs", "naive", "spaceff"},
	}
	names := make([]string, 0, len(programs))
	for name := range programs {
		names = append(names, name)
	}
	sort.Strings(names)

	// The full (program × machine) grid runs on the shared worker pool; the
	// table rows and inequality checks are assembled sequentially afterwards,
	// so the output is identical to a sequential run.
	type cell struct {
		flat, linked int
		metrics      *obs.Metrics
	}
	cells := make([]cell, len(names)*len(core.Variants))
	err := runGrid(len(cells), func(i int) error {
		name := names[i/len(core.Variants)]
		v := core.Variants[i%len(core.Variants)]
		res, err := core.RunApplication(programs[name], fmt.Sprintf("(quote %d)", n), core.Options{
			Variant: v, Measure: true, GCEvery: 1, MaxSteps: 5_000_000,
			CostModel: expModel(space.Fixnum), Backend: expBackend(),
		})
		if err != nil {
			return fmt.Errorf("hierarchy: %s [%s]: %w", name, v, err)
		}
		if res.Err != nil {
			return fmt.Errorf("hierarchy: %s [%s]: %w", name, v, res.Err)
		}
		cells[i] = cell{flat: res.PeakFlat, linked: res.PeakLinked, metrics: res.Metrics}
		return nil
	})
	if err != nil {
		return t, err
	}
	for _, c := range cells {
		t.Absorb(c.metrics)
	}

	for ni, name := range names {
		flat := map[string]int{}
		linked := map[string]int{}
		row := []string{name}
		for vi, v := range core.Variants {
			c := cells[ni*len(core.Variants)+vi]
			flat[v.Name] = c.flat
			linked[v.Name] = c.linked
			row = append(row, fmt.Sprintf("%d (%d)", c.flat, c.linked))
		}
		t.Rows = append(t.Rows, row)
		for _, c := range hierarchyChecks {
			if flat[c[0]] > flat[c[1]] {
				t.Violationf("%s: S_%s (%d) > S_%s (%d)", name, c[0], flat[c[0]], c[1], flat[c[1]])
			}
		}
		// Section 13: the analogue of Theorem 24 holds for linked
		// environments on the machines that can use them (Z_free and Z_sfs
		// require flat environments, so U_free and U_sfs "have no practical
		// meaning" and are excluded).
		for _, c := range [][2]string{{"tail", "gc"}, {"gc", "stack"}, {"evlis", "tail"}} {
			if linked[c[0]] > linked[c[1]] {
				t.Violationf("%s: U_%s (%d) > U_%s (%d)", name, c[0], linked[c[0]], c[1], linked[c[1]])
			}
		}
		for _, v := range core.Variants {
			if linked[v.Name] > flat[v.Name] {
				t.Violationf("%s: U_%s (%d) > S_%s (%d)", name, v.Name, linked[v.Name], v.Name, flat[v.Name])
			}
		}
	}
	t.Notef("checked pointwise: S_tail<=S_gc<=S_stack, S_sfs<=S_evlis<=S_tail, S_sfs<=S_free<=S_tail, S_tail<=S_spaceff<=S_naive, U_X<=S_X, and the §13 linked analogue U_tail<=U_gc<=U_stack, U_evlis<=U_tail")
	return t, nil
}

// HierarchyProbePrograms is the default probe set: the four Theorem 25
// separation programs (which stress exactly the rules the variants differ
// in), the Section 4 example, and the contracted loop (which stresses the
// monitor inequalities — on the contract-free probes the monitor machines
// coincide with Z_tail exactly).
func HierarchyProbePrograms() map[string]string {
	return map[string]string{
		"vector-frames":   VectorFrames,
		"countdown":       CountdownLoop,
		"thunk-return":    ThunkReturn,
		"closure-capture": ClosureCapture,
		"find-leftmost":   FindLeftmostProgram("left-spine"),
		"contracted-loop": ContractedLoop,
	}
}
