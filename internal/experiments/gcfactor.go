package experiments

import (
	"fmt"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// allocLoop is a constant-live-set loop that allocates a fresh vector every
// iteration, so uncollected garbage is visible.
const allocLoop = `
(define (f n)
  (if (zero? n)
      0
      (f (- (vector-ref (make-vector 4 n) 0) 1))))`

// GCFactor reproduces the Section 12 argument: a real collector that runs
// only every k steps uses no more than some fixed constant R times the space
// of collecting after every computation step ("Usually R <= 3"). The claim
// is asymptotic: for a fixed period k, the peak-space ratio against the
// collect-every-step baseline must stay bounded as the input grows — lazy
// collection costs a constant factor, never a complexity class. We measure
// an allocation-heavy constant-live-set loop across input sizes and periods.
func GCFactor(n int, periods []int) (Table, error) {
	if len(periods) == 0 {
		periods = []int{50, 250, 1000}
	}
	ns := []int{n / 4, n / 2, n}
	t := Table{
		Title:  "Section 12: periodic collection factor R on an allocating loop, Z_tail",
		Header: []string{"n", "S (k=1)"},
	}
	for _, k := range periods {
		t.Header = append(t.Header, fmt.Sprintf("S (k=%d)", k), "ratio")
	}

	ratios := make(map[int][]float64) // period -> ratio per n
	for _, nn := range ns {
		base, err := measureWithPeriod(nn, 1)
		if err != nil {
			return t, err
		}
		row := []string{itoa(nn), itoa(base)}
		for _, k := range periods {
			peak, err := measureWithPeriod(nn, k)
			if err != nil {
				return t, err
			}
			ratio := float64(peak) / float64(base)
			ratios[k] = append(ratios[k], ratio)
			row = append(row, itoa(peak), fmt.Sprintf("%.2f", ratio))
			if peak < base {
				t.Violationf("n=%d k=%d: lazier collection cannot use less space (%d < %d)", nn, k, peak, base)
			}
		}
		t.Rows = append(t.Rows, row)
	}

	// Bounded factor: the ratio at the largest n must not exceed R=4, and
	// it must not be growing with n (allow 15% measurement slack).
	for _, k := range periods {
		rs := ratios[k]
		last := rs[len(rs)-1]
		if last > 4.0 {
			t.Violationf("period %d blew the constant factor at n=%d: %.2f", k, ns[len(ns)-1], last)
		}
		if last > rs[0]*1.15 && last-rs[0] > 0.1 {
			t.Violationf("period %d ratio grows with n (%.2f -> %.2f): not a constant factor", k, rs[0], last)
		}
	}
	t.Notef("the loop's live set is constant and it allocates a vector per iteration, so every extra word is uncollected garbage")
	return t, nil
}

func measureWithPeriod(n, k int) (int, error) {
	res, err := core.RunApplication(allocLoop, fmt.Sprintf("(quote %d)", n), core.Options{
		Variant: core.Tail, Measure: true, FlatOnly: true, GCEvery: k,
		MaxSteps: 5_000_000, NumberMode: space.Fixnum,
	})
	if err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	return res.PeakFlat, nil
}

// Corollary20 runs a program set under every variant and argument order and
// checks that all computations produce the same observable answer.
func Corollary20(programs map[string]string) (Table, error) {
	t := Table{
		Title:  "Corollary 20: all reference implementations compute the same answers",
		Header: []string{"program", "answer", "runs"},
	}
	orders := []core.ArgOrder{core.LeftToRight, core.RightToLeft, core.RandomOrder}
	for name, src := range programs {
		want := ""
		runs := 0
		for _, v := range core.Variants {
			for _, o := range orders {
				res, err := core.RunProgram(src, core.Options{
					Variant: v, Order: o, Seed: 42, MaxSteps: 5_000_000,
				})
				if err != nil {
					return t, fmt.Errorf("corollary20: %s: %w", name, err)
				}
				if res.Err != nil {
					return t, fmt.Errorf("corollary20: %s [%s]: %w", name, v, res.Err)
				}
				if want == "" {
					want = res.Answer
				} else if res.Answer != want {
					t.Violationf("%s: [%s/order %v] answered %q, others %q", name, v, o, res.Answer, want)
				}
				runs++
			}
		}
		t.AddRow(name, truncate(want, 32), itoa(runs))
	}
	return t, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
