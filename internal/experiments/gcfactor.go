package experiments

import (
	"fmt"
	"sort"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// allocLoop is a constant-live-set loop that allocates a fresh vector every
// iteration, so uncollected garbage is visible.
const allocLoop = `
(define (f n)
  (if (zero? n)
      0
      (f (- (vector-ref (make-vector 4 n) 0) 1))))`

// GCFactor reproduces the Section 12 argument: a real collector that runs
// only every k steps uses no more than some fixed constant R times the space
// of collecting after every computation step ("Usually R <= 3"). The claim
// is asymptotic: for a fixed period k, the peak-space ratio against the
// collect-every-step baseline must stay bounded as the input grows — lazy
// collection costs a constant factor, never a complexity class. We measure
// an allocation-heavy constant-live-set loop across input sizes and periods.
func GCFactor(n int, periods []int) (Table, error) {
	if len(periods) == 0 {
		periods = []int{50, 250, 1000}
	}
	ns := []int{n / 4, n / 2, n}
	t := Table{
		Title:  "Section 12: periodic collection factor R on an allocating loop, Z_tail",
		Header: []string{"n", "S (k=1)"},
	}
	for _, k := range periods {
		t.Header = append(t.Header, fmt.Sprintf("S (k=%d)", k), "ratio")
	}

	// Measure the whole (n × period) grid — the k=1 baseline included — on
	// the shared worker pool, then assemble rows and ratios sequentially.
	ks := append([]int{1}, periods...)
	peaks := make([]int, len(ns)*len(ks))
	err := runGrid(len(peaks), func(i int) error {
		peak, err := measureWithPeriod(ns[i/len(ks)], ks[i%len(ks)])
		if err != nil {
			return err
		}
		peaks[i] = peak
		return nil
	})
	if err != nil {
		return t, err
	}

	ratios := make(map[int][]float64) // period -> ratio per n
	for ni, nn := range ns {
		base := peaks[ni*len(ks)]
		row := []string{itoa(nn), itoa(base)}
		for ki, k := range periods {
			peak := peaks[ni*len(ks)+ki+1]
			ratio := float64(peak) / float64(base)
			ratios[k] = append(ratios[k], ratio)
			row = append(row, itoa(peak), fmt.Sprintf("%.2f", ratio))
			if peak < base {
				t.Violationf("n=%d k=%d: lazier collection cannot use less space (%d < %d)", nn, k, peak, base)
			}
		}
		t.Rows = append(t.Rows, row)
	}

	// Bounded factor: the ratio at the largest n must not exceed R=4, and
	// it must not be growing with n (allow 15% measurement slack).
	for _, k := range periods {
		rs := ratios[k]
		last := rs[len(rs)-1]
		if last > 4.0 {
			t.Violationf("period %d blew the constant factor at n=%d: %.2f", k, ns[len(ns)-1], last)
		}
		if last > rs[0]*1.15 && last-rs[0] > 0.1 {
			t.Violationf("period %d ratio grows with n (%.2f -> %.2f): not a constant factor", k, rs[0], last)
		}
	}
	t.Notef("the loop's live set is constant and it allocates a vector per iteration, so every extra word is uncollected garbage")
	return t, nil
}

func measureWithPeriod(n, k int) (int, error) {
	res, err := core.RunApplication(allocLoop, fmt.Sprintf("(quote %d)", n), core.Options{
		Variant: core.Tail, Measure: true, FlatOnly: true, GCEvery: k,
		MaxSteps: 5_000_000, CostModel: expModel(space.Fixnum), Backend: expBackend(),
	})
	if err != nil {
		return 0, err
	}
	if res.Err != nil {
		return 0, res.Err
	}
	return res.PeakFlat, nil
}

// Corollary20 runs a program set under every variant and argument order and
// checks that all computations produce the same observable answer.
func Corollary20(programs map[string]string) (Table, error) {
	t := Table{
		Title:  "Corollary 20: all reference implementations compute the same answers",
		Header: []string{"program", "answer", "runs"},
	}
	orders := []core.ArgOrder{core.LeftToRight, core.RightToLeft, core.RandomOrder}
	names := make([]string, 0, len(programs))
	for name := range programs {
		names = append(names, name)
	}
	sort.Strings(names)

	// One answer per (program, machine, order) cell, computed on the shared
	// pool; agreement is checked sequentially against the first cell of each
	// program's block.
	perProgram := len(core.Variants) * len(orders)
	answers := make([]string, len(names)*perProgram)
	err := runGrid(len(answers), func(i int) error {
		name := names[i/perProgram]
		v := core.Variants[i%perProgram/len(orders)]
		o := orders[i%len(orders)]
		res, err := core.RunProgram(programs[name], core.Options{
			Variant: v, Order: o, Seed: 42, MaxSteps: 5_000_000, Backend: expBackend(),
		})
		if err != nil {
			return fmt.Errorf("corollary20: %s: %w", name, err)
		}
		if res.Err != nil {
			return fmt.Errorf("corollary20: %s [%s]: %w", name, v, res.Err)
		}
		answers[i] = res.Answer
		return nil
	})
	if err != nil {
		return t, err
	}

	for ni, name := range names {
		want := answers[ni*perProgram]
		for j := 1; j < perProgram; j++ {
			if got := answers[ni*perProgram+j]; got != want {
				v := core.Variants[j/len(orders)]
				o := orders[j%len(orders)]
				t.Violationf("%s: [%s/order %v] answered %q, others %q", name, v, o, got, want)
			}
		}
		t.AddRow(name, truncate(want, 32), itoa(perProgram))
	}
	return t, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
