package experiments

import (
	"fmt"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
	"tailspace/internal/corpus"
)

// ControlSpaceExperiment validates the static control-space analyzer (a step
// toward the paper's §16 program of formal reasoning about space) against
// the machine: for parameterized programs, a Bounded verdict must coincide
// with input-independent peak continuation depth under Z_tail, and an
// Unbounded verdict with growing depth. The corpus census is reported too.
func ControlSpaceExperiment() (Table, error) {
	t := Table{
		Title:  "§16: static control-space analysis vs measured continuation depth (Z_tail)",
		Header: []string{"program", "verdict", "depth(n=16)", "depth(n=128)", "agrees"},
	}

	probes := []struct {
		name string
		gen  func(n int) string
	}{
		{"countdown", func(n int) string {
			return fmt.Sprintf("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f %d)", n)
		}},
		{"sum-rec", func(n int) string {
			return fmt.Sprintf("(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum %d)", n)
		}},
		{"even-odd", func(n int) string {
			return fmt.Sprintf(`
(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
(even2? %d)`, n)
		}},
		{"cps-countdown", func(n int) string {
			return fmt.Sprintf(`
(define (f n k) (if (zero? n) (k 0) (f (- n 1) k)))
(f %d (lambda (x) x))`, n)
		}},
		{"closure-capture", func(n int) string {
			return fmt.Sprintf(`
(define (f n)
  (if (zero? n)
      0
      ((lambda () (begin (f (- n 1)) n)))))
(f %d)`, n)
		}},
		{"mutual-nontail", func(n int) string {
			return fmt.Sprintf(`
(define (f n) (g n))
(define (g n) (if (zero? n) 0 (+ 1 (f (- n 1)))))
(f %d)`, n)
		}},
	}

	depthAt := func(src string) (int, error) {
		res, err := core.RunProgram(src, core.Options{Variant: core.Tail, MaxSteps: 5_000_000, Backend: expBackend()})
		if err != nil {
			return 0, err
		}
		if res.Err != nil {
			return 0, res.Err
		}
		return res.PeakContDepth, nil
	}

	for _, p := range probes {
		rep, err := analysis.ControlSpaceSource(p.gen(16))
		if err != nil {
			return t, fmt.Errorf("controlspace: %s: %w", p.name, err)
		}
		small, err := depthAt(p.gen(16))
		if err != nil {
			return t, fmt.Errorf("controlspace: %s: %w", p.name, err)
		}
		large, err := depthAt(p.gen(128))
		if err != nil {
			return t, fmt.Errorf("controlspace: %s: %w", p.name, err)
		}
		grew := large > small
		agrees := "yes"
		switch rep.Verdict {
		case analysis.BoundedControl:
			if grew {
				agrees = "NO"
				t.Violationf("%s: verdict bounded but depth grew %d -> %d", p.name, small, large)
			}
		case analysis.UnboundedControl:
			if !grew {
				agrees = "NO"
				t.Violationf("%s: verdict unbounded but depth flat at %d", p.name, small)
			}
		default:
			agrees = "n/a" // Unknown makes no claim
		}
		t.AddRow(p.name, rep.Verdict.String(), itoa(small), itoa(large), agrees)
	}

	// Census over the corpus: how much idiomatic code the analysis can
	// prove bounded without any closure analysis.
	counts := map[analysis.Verdict]int{}
	for _, p := range corpus.All() {
		rep, err := analysis.ControlSpaceSource(p.Source)
		if err != nil {
			return t, fmt.Errorf("controlspace census: %s: %w", p.Name, err)
		}
		counts[rep.Verdict]++
	}
	t.Notef(fmt.Sprintf("corpus census: %d bounded, %d unbounded, %d unknown of %d programs",
		counts[analysis.BoundedControl], counts[analysis.UnboundedControl],
		counts[analysis.UnknownControl], len(corpus.All())))
	t.Notef("bounded = continuation depth provably independent of the input under Z_tail")
	return t, nil
}
