package experiments

import (
	"errors"
	"fmt"

	"tailspace/internal/core"
	"tailspace/internal/corpus"
)

// AlgolSubset measures how much of the corpus lies in the "Algol-like subset
// of Scheme" (Section 8): the programs for which Z_stack can always choose
// A = {β1,...,βn} — whole-frame deletion — without ever creating a dangling
// pointer. Section 5's point is that idiomatic Scheme constantly escapes
// this subset (closures, explicit continuations, CPS), which is why
// deletion strategies and proper tail recursion conflict.
func AlgolSubset() (Table, error) {
	t := Table{
		Title:  "Section 5/8: which corpus programs are Algol-like (strict whole-frame deletion)",
		Header: []string{"program", "strict Z_stack", "safe-subset Z_stack"},
	}
	algol := 0
	total := 0
	for _, p := range corpus.All() {
		total++
		strictVerdict := "runs"
		res, err := core.RunProgram(p.Source, core.Options{
			Variant: core.Stack, StackStrict: true, MaxSteps: 5_000_000,
			Backend: expBackend(),
		})
		if err != nil {
			return t, fmt.Errorf("algol: %s: %w", p.Name, err)
		}
		if res.Err != nil {
			var stuck *core.StuckError
			if errors.As(res.Err, &stuck) && stuck.IsDangling() {
				strictVerdict = "dangles"
			} else {
				return t, fmt.Errorf("algol: %s: unexpected %w", p.Name, res.Err)
			}
		} else {
			if res.Answer != p.Answer {
				return t, fmt.Errorf("algol: %s: wrong answer %q", p.Name, res.Answer)
			}
			algol++
		}

		// The maximal-safe choice of A must always complete (the paper's
		// nondeterminism resolved in the program's favour).
		safe, err := core.RunProgram(p.Source, core.Options{Variant: core.Stack, MaxSteps: 5_000_000, Backend: expBackend()})
		if err != nil {
			return t, err
		}
		t.Absorb(safe.Metrics)
		safeVerdict := "runs"
		if safe.Err != nil {
			safeVerdict = "FAILS"
			t.Violationf("%s: safe-subset Z_stack must always complete: %v", p.Name, safe.Err)
			t.Incompletef("%s: safe-subset Z_stack run ended without an answer: %v", p.Name, safe.Err)
		} else if safe.Answer != p.Answer {
			t.Violationf("%s: safe-subset Z_stack answered %q, want %q", p.Name, safe.Answer, p.Answer)
		}
		t.AddRow(p.Name, strictVerdict, safeVerdict)
	}
	t.AddRow("TOTAL", fmt.Sprintf("%d/%d Algol-like", algol, total), fmt.Sprintf("%d/%d", total, total))
	if algol == total {
		t.Violationf("a realistic Scheme corpus should escape the Algol-like subset somewhere")
	}
	if algol == 0 {
		t.Violationf("some corpus programs (pure loops) should be Algol-like")
	}
	t.Notef("'dangles' = whole-frame deletion would free a location that a closure or continuation still references")
	return t, nil
}
