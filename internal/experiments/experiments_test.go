package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"tailspace/internal/core"
	"tailspace/internal/expand"
	"tailspace/internal/space"
)

func TestFitGrowthLinear(t *testing.T) {
	ns := []int{10, 20, 40, 80}
	peaks := []int{100, 200, 400, 800}
	f := FitGrowth(ns, peaks)
	if f.Class() != Linear {
		t.Fatalf("fit %v", f)
	}
	if f.Exponent < 0.95 || f.Exponent > 1.05 {
		t.Fatalf("exponent %.3f", f.Exponent)
	}
}

func TestFitGrowthQuadratic(t *testing.T) {
	ns := []int{10, 20, 40}
	peaks := []int{100, 400, 1600}
	if c := FitGrowth(ns, peaks).Class(); c != Quadratic {
		t.Fatalf("class %s", c)
	}
}

func TestFitGrowthConstant(t *testing.T) {
	ns := []int{10, 100, 1000}
	peaks := []int{55, 57, 56}
	f := FitGrowth(ns, peaks)
	if f.Class() != Constant {
		t.Fatalf("fit %v", f)
	}
}

func TestFitGrowthDegenerate(t *testing.T) {
	if f := FitGrowth([]int{1}, []int{1}); f.Exponent != 0 {
		t.Fatalf("single point fit %v", f)
	}
}

func TestGrowsFasterThan(t *testing.T) {
	quad := Fit{Exponent: 2.0, LastSegment: 2.0}
	lin := Fit{Exponent: 1.0, LastSegment: 1.0}
	if !quad.GrowsFasterThan(lin) || lin.GrowsFasterThan(quad) {
		t.Fatal("ordering broken")
	}
}

func TestSweepProgramCollectsPoints(t *testing.T) {
	s, err := SweepProgram("countdown", CountdownLoop, core.Tail, []int{5, 10}, SweepOptions{Model: space.Fixnum})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 || s.Points[1].N != 10 {
		t.Fatalf("points %+v", s.Points)
	}
	if s.Points[0].Flat == 0 || s.Points[0].Linked == 0 {
		t.Fatal("peaks must be measured")
	}
}

func TestSweepReportsStuckPrograms(t *testing.T) {
	_, err := SweepProgram("bad", "(define (f n) (undefined-var))", core.Tail, []int{1}, SweepOptions{})
	if err == nil {
		t.Fatal("expected stuck error")
	}
}

func TestThm26ProgramGeneratesValidScheme(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7} {
		src := Thm26Program(k)
		if _, err := expand.ParseProgram(src); err != nil {
			t.Fatalf("k=%d: %v\n%s", k, err, src)
		}
	}
}

func TestThm26ProgramRuns(t *testing.T) {
	res, err := core.RunApplication(Thm26Program(3), "(quote 5)", core.Options{Variant: core.Tail})
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	// The program returns (list i x0 x1 x2 x3) for the chosen thunk; i is
	// random but the xs are fixed: x0=n=5, x1=4, x2=3, x3=2.
	if !strings.HasSuffix(res.Answer, " 5 4 3 2)") {
		t.Fatalf("answer %q", res.Answer)
	}
}

func TestFindLeftmostProgramsRun(t *testing.T) {
	for _, shape := range []string{"right-spine", "left-spine"} {
		res, err := core.RunApplication(FindLeftmostProgram(shape), "(quote 6)", core.Options{Variant: core.Tail})
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v %v", shape, err, res.Err)
		}
		if res.Answer != "-1" {
			t.Fatalf("%s: answer %q (search must exhaust the tree)", shape, res.Answer)
		}
	}
}

func TestFig2Reproduces(t *testing.T) {
	table, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations: %v", table.Violations)
	}
	if len(table.Rows) < 20 {
		t.Fatalf("expected a row per corpus program, got %d", len(table.Rows))
	}
	out := table.Render()
	if !strings.Contains(out, "TOTAL") {
		t.Fatal("total row missing")
	}
}

func TestHierarchyReproduces(t *testing.T) {
	table, err := Hierarchy(HierarchyProbePrograms(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations: %v", table.Violations)
	}
}

func TestThm25Reproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("separation sweeps are slow")
	}
	tables, err := Thm25()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("expected 4 separation programs, got %d", len(tables))
	}
	for _, table := range tables {
		if !table.Ok() {
			t.Errorf("%s:\n%s", table.Title, table.Render())
		}
	}
}

func TestThm26Reproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("separation sweeps are slow")
	}
	table, err := Thm26([]int{4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestFindLeftmostReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	table, err := FindLeftmost([]int{16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestGCFactorReproduces(t *testing.T) {
	table, err := GCFactor(200, []int{1, 2, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestCorollary20OnRandomPrograms(t *testing.T) {
	progs := ProgramSetFromSlice("rand", RandomPrograms(2024, 25, 4))
	table, err := Corollary20(progs)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestRandomContractProgramsOnMonitors(t *testing.T) {
	// The generator's contract arms (flat mon, guarded application) must
	// execute identically on both monitor machines and on the erasing
	// Z_tail: contracts in these programs always pass, so monitoring can
	// change space but never answers.
	progs := RandomPrograms(41, 60, 4)
	withMon := 0
	for i, src := range progs {
		if !strings.Contains(src, "(mon ") {
			continue
		}
		withMon++
		answers := map[string]string{}
		for _, v := range []core.Variant{core.Tail, core.Naive, core.SpaceEff} {
			res, err := core.RunProgram(src, core.Options{Variant: v, MaxSteps: 500_000})
			if err != nil {
				t.Fatalf("prog %d %q [%s]: %v", i, src, v, err)
			}
			if res.Err != nil {
				t.Fatalf("prog %d %q [%s]: %v", i, src, v, res.Err)
			}
			answers[v.Name] = res.Answer
		}
		if answers["naive"] != answers["tail"] || answers["spaceff"] != answers["tail"] {
			t.Errorf("prog %d %q: answers diverge: %v", i, src, answers)
		}
	}
	if withMon == 0 {
		t.Fatal("seed 41 produced no contract forms — the generator arm is dead")
	}
	t.Logf("%d/%d programs contained contract forms", withMon, len(progs))
}

func TestRandomProgramsParseAndTerminate(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		src := RandomProgram(r, 5)
		res, err := core.RunProgram(src, core.Options{Variant: core.SFS, MaxSteps: 500_000})
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if res.Err != nil {
			t.Fatalf("run %q: %v", src, res.Err)
		}
	}
}

func TestTheorem24OnRandomPrograms(t *testing.T) {
	// Pointwise S_tail <= S_gc <= S_stack etc. on random programs, the
	// property-based counterpart of the hierarchy table.
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 12; i++ {
		src := RandomProgram(r, 4)
		peaks := map[string]int{}
		for _, v := range core.Variants {
			res, err := core.RunProgram(src, core.Options{
				Variant: v, Measure: true, GCEvery: 1, MaxSteps: 500_000,
			})
			if err != nil || res.Err != nil {
				t.Fatalf("%q [%s]: %v %v", src, v, err, res.Err)
			}
			peaks[v.Name] = res.PeakFlat
		}
		for _, c := range hierarchyChecks {
			if peaks[c[0]] > peaks[c[1]] {
				t.Errorf("S_%s (%d) > S_%s (%d) on %q", c[0], peaks[c[0]], c[1], peaks[c[1]], src)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	table := Table{Title: "T", Header: []string{"a", "bb"}}
	table.AddRow("1", "2")
	table.Notef("hello %d", 7)
	out := table.Render()
	for _, want := range []string{"T", "a", "bb", "note: hello 7", "all checked claims hold"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	table.Violationf("bad %s", "x")
	if table.Ok() {
		t.Fatal("violations must flip Ok")
	}
	if !strings.Contains(table.Render(), "VIOLATION: bad x") {
		t.Fatal("violation missing from render")
	}
}
