package experiments

import (
	"fmt"
	"strings"

	"tailspace/internal/obs"
)

// Table is a rendered experiment artifact: the rows the paper's figure or
// theorem reports, plus notes and machine-checkable findings.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Violations lists any asymptotic claims of the paper that the
	// measurements failed to reproduce (empty on success).
	Violations []string
	// Incomplete lists runs that never produced an answer — stuck
	// configurations or MaxSteps exhaustion — so a grid whose cells died is
	// distinguishable from one whose claims held. An expected sticking (e.g.
	// the strict Z_stack deletion policy refusing a dangling frame) is a row,
	// not an Incomplete entry.
	Incomplete []string
	// Metrics aggregates the per-run registries of every cell in the grid:
	// counters (transitions by rule, GC work, allocations) sum, gauges
	// (peaks) take the maximum.
	Metrics *obs.Metrics
}

// Ok reports whether every claim checked by the experiment held.
func (t Table) Ok() bool { return len(t.Violations) == 0 }

// Complete reports whether every run of the experiment produced an answer.
func (t Table) Complete() bool { return len(t.Incomplete) == 0 }

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Violationf records a failed claim.
func (t *Table) Violationf(format string, args ...any) {
	t.Violations = append(t.Violations, fmt.Sprintf(format, args...))
}

// Incompletef records a run that ended stuck or out of steps.
func (t *Table) Incompletef(format string, args ...any) {
	t.Incomplete = append(t.Incomplete, fmt.Sprintf(format, args...))
}

// Absorb merges a run's metrics registry into the table's aggregate.
func (t *Table) Absorb(m *obs.Metrics) {
	if m == nil {
		return
	}
	if t.Metrics == nil {
		t.Metrics = obs.NewMetrics()
	}
	t.Metrics.Merge(m)
}

// Notef records a free-form observation.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render lays the table out with padded columns.
func (t Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("=", len(t.Title)))
	sb.WriteByte('\n')

	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := columnWidths(all)

	if len(t.Header) > 0 {
		sb.WriteString(renderRow(t.Header, widths))
		sb.WriteByte('\n')
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total))
		sb.WriteByte('\n')
	}
	for _, row := range t.Rows {
		sb.WriteString(renderRow(row, widths))
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	for _, inc := range t.Incomplete {
		sb.WriteString("INCOMPLETE: " + inc + "\n")
	}
	for _, v := range t.Violations {
		sb.WriteString("VIOLATION: " + v + "\n")
	}
	if len(t.Violations) == 0 {
		sb.WriteString("all checked claims hold\n")
	}
	return sb.String()
}

func columnWidths(rows [][]string) []int {
	var widths []int
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	return widths
}

func renderRow(row []string, widths []int) string {
	var sb strings.Builder
	for i, cell := range row {
		sb.WriteString(cell)
		if i < len(row)-1 {
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)+2))
		}
	}
	return sb.String()
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
