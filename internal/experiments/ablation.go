package experiments

import (
	"fmt"

	"tailspace/internal/core"
	"tailspace/internal/space"
	"tailspace/internal/value"
)

// ReturnEnvAblation justifies the one non-obvious semantic reading this
// reproduction makes (see DESIGN.md): the environments saved in return
// continuations are charged by Figure 7 but are not GC roots. The ablation
// flips that reading — return environments become roots, the maximally
// literal reading of the GC rule — and re-runs Theorem 25(a)'s program under
// Z_gc: the vectors bound in caller environments are then retained until
// every frame pops, Z_gc's reachability becomes identical to Z_stack's, and
// the paper's first separation collapses (both machines quadratic). The
// proofs therefore force the charged-but-dead reading.
func ReturnEnvAblation() (Table, error) {
	t := Table{
		Title:  "Ablation: are return-continuation environments GC roots? (Theorem 25(a) under Z_gc)",
		Header: []string{"reading", "S(8)", "S(16)", "S(32)", "S(64)", "fit", "separation survives?"},
	}
	ns := []int{8, 16, 32, 64}

	measure := func(rootEnvs bool) ([]int, error) {
		value.RootReturnEnvironments = rootEnvs
		defer func() { value.RootReturnEnvironments = false }()
		peaks := make([]int, 0, len(ns))
		for _, n := range ns {
			res, err := core.RunApplication(VectorFrames, fmt.Sprintf("(quote %d)", n), core.Options{
				Variant: core.GC, Measure: true, FlatOnly: true,
				GCEvery: 1, CostModel: expModel(space.Fixnum), MaxSteps: 5_000_000,
				Backend: expBackend(),
			})
			if err != nil {
				return nil, err
			}
			if res.Err != nil {
				return nil, res.Err
			}
			peaks = append(peaks, res.PeakFlat)
		}
		return peaks, nil
	}

	dead, err := measure(false)
	if err != nil {
		return t, err
	}
	rooted, err := measure(true)
	if err != nil {
		return t, err
	}

	deadFit := FitGrowth(ns, dead)
	rootedFit := FitGrowth(ns, rooted)

	row := func(label string, peaks []int, fit Fit, survives string) {
		cells := []string{label}
		for _, p := range peaks {
			cells = append(cells, itoa(p))
		}
		cells = append(cells, fmt.Sprintf("n^%.2f", fit.Exponent), survives)
		t.Rows = append(t.Rows, cells)
	}
	deadOK := "yes"
	if deadFit.Class() != Linear {
		deadOK = "NO"
		t.Violationf("charged-but-dead reading: S_gc fitted %s, should be linear", deadFit.Class())
	}
	rootedOK := "no (as predicted)"
	if rootedFit.Class() != Quadratic {
		rootedOK = "UNEXPECTED"
		t.Violationf("rooted reading: S_gc fitted %s, should collapse to quadratic", rootedFit.Class())
	}
	row("charged but dead (ours)", dead, deadFit, deadOK)
	row("rooted (literal)", rooted, rootedFit, rootedOK)

	t.Notef("program: Theorem 25(a)'s vector-frames under Z_gc; Z_stack is quadratic either way")
	t.Notef("with rooted return environments Z_gc retains exactly what Z_stack retains, so O(S_stack) ⊄ O(S_gc) cannot hold")
	return t, nil
}
