package experiments

import (
	"runtime"
	"sync"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// Experiment grids — (program × machine × size) — are embarrassingly
// parallel: every run builds its own store, machine, and meter, and the only
// process-wide mutable state is the ablation switch, which runs by itself.
// The grid helpers below fan runs out over a package-wide bounded pool so
// sweeps scale with the hardware while results stay byte-identical to a
// sequential run: outputs land in their input's slot and the lowest-index
// error wins.

var (
	poolMu     sync.Mutex
	poolSem    = make(chan struct{}, runtime.GOMAXPROCS(0))
	poolCancel <-chan struct{}
)

// SetJobs bounds the number of measurement runs in flight across all
// experiments (the spacelab -jobs flag). n < 1 restores the default,
// GOMAXPROCS. Grids already in flight keep their previous bound.
func SetJobs(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	poolMu.Lock()
	poolSem = make(chan struct{}, n)
	poolMu.Unlock()
}

// Jobs reports the current bound.
func Jobs() int {
	poolMu.Lock()
	defer poolMu.Unlock()
	return cap(poolSem)
}

// SetCancel installs a package-wide cancellation channel (a context's
// Done()): grid tasks not yet started are skipped once it closes, and
// every sweep run polls it through core.Options.Cancel, so an interrupt
// (Ctrl-C in spacelab/tailscan) stops a long sweep between transitions
// instead of killing the process mid-write. nil restores the default
// (never cancelled).
func SetCancel(done <-chan struct{}) {
	poolMu.Lock()
	poolCancel = done
	poolMu.Unlock()
}

// cancelChan reads the installed cancellation channel (nil when none).
func cancelChan() <-chan struct{} {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolCancel
}

// cancelled reports whether the installed channel has fired.
func cancelled() bool {
	done := cancelChan()
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// runGrid runs task(0), ..., task(n-1) on the shared bounded pool and waits
// for all of them. Each task writes its result into caller-owned slot i, so
// output order is deterministic; the returned error is the lowest-index one.
// Tasks that have not started when the installed cancellation channel fires
// are skipped and report core.ErrCancelled.
func runGrid(n int, task func(i int) error) error {
	if n == 1 {
		return task(0)
	}
	poolMu.Lock()
	sem := poolSem
	poolMu.Unlock()

	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if cancelled() {
				errs[i] = core.ErrCancelled
				return
			}
			errs[i] = task(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// poolModel is the package-wide cost-model override; nil means every
// experiment keeps its own historical default (Fixnum for the hierarchy and
// separation grids, which predate the cost-model axis).
var poolModel space.CostModel

// SetCostModel installs a package-wide cost-model override (the spacelab and
// tailscan -cost-model flag): every sweep and grid prices space under m
// instead of its per-experiment default. nil restores the defaults.
func SetCostModel(m space.CostModel) {
	poolMu.Lock()
	poolModel = m
	poolMu.Unlock()
}

// CostModelOverride reads the installed override (nil when none).
func CostModelOverride() space.CostModel {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolModel
}

// expModel resolves the cost model one run should use: the package override
// when installed, the caller's default otherwise (nil means WordModel).
func expModel(def space.CostModel) space.CostModel {
	if o := CostModelOverride(); o != nil {
		return o
	}
	return def
}

// poolBackend is the package-wide execution backend; the zero value is the
// stepper, so experiments behave exactly as before unless a caller opts in.
var poolBackend core.Backend

// SetBackend installs a package-wide execution backend (the spacelab and
// tailscan -backend flag): every sweep and grid run executes under it. The
// backends are observationally identical — same rules, events, and peaks —
// so this only changes wall-clock time, never results.
func SetBackend(b core.Backend) {
	poolMu.Lock()
	poolBackend = b
	poolMu.Unlock()
}

// expBackend reads the installed backend (BackendStepper when none).
func expBackend() core.Backend {
	poolMu.Lock()
	defer poolMu.Unlock()
	return poolBackend
}
