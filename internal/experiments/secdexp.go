package experiments

import (
	"fmt"

	"tailspace/internal/corpus"
	"tailspace/internal/secd"
)

// SECDExperiment reproduces the §15 [Ram97] comparison at the compiled-code
// level: the same SECD code runs on Landin's classic machine (every
// application pushes the dump) and on Ramsdell's tail recursive machine
// (tail applications are gotos). On the iterative countdown loop the classic
// dump grows linearly while the tail recursive machine runs in constant
// state — the Z_gc / Z_tail split, reproduced in a compiler back end.
func SECDExperiment(ns []int) (Table, error) {
	if len(ns) == 0 {
		ns = []int{16, 64, 256, 1024}
	}
	t := Table{
		Title:  "§15 [Ram97]: classic vs tail recursive SECD machine on the countdown loop",
		Header: append([]string{"machine / metric"}, nsHeader(ns)...),
	}
	t.Header = append(t.Header, "fit", "paper")

	loop := func(n int) string {
		return fmt.Sprintf("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f %d)", n)
	}

	type row struct {
		label string
		mode  secd.Mode
		pick  func(secd.Result) int
		claim GrowthClass
	}
	rows := []row{
		{"classic dump depth", secd.Classic, func(r secd.Result) int { return r.PeakDump + 1 }, Linear},
		{"classic state words", secd.Classic, func(r secd.Result) int { return r.PeakState }, Linear},
		{"tail-rec dump depth", secd.TailRecursive, func(r secd.Result) int { return r.PeakDump + 1 }, Constant},
		{"tail-rec state words", secd.TailRecursive, func(r secd.Result) int { return r.PeakState }, Constant},
	}
	for _, rw := range rows {
		peaks := make([]int, 0, len(ns))
		for _, n := range ns {
			code, err := secd.CompileSource(loop(n))
			if err != nil {
				return t, err
			}
			res := secd.Run(code, rw.mode, 8_000_000)
			if res.Err != nil {
				return t, fmt.Errorf("secd [%s] n=%d: %w", rw.mode, n, res.Err)
			}
			if res.Answer != "0" {
				return t, fmt.Errorf("secd [%s] n=%d: answer %q", rw.mode, n, res.Answer)
			}
			peaks = append(peaks, rw.pick(res))
		}
		fit := FitGrowth(ns, peaks)
		if fit.Class() != rw.claim {
			t.Violationf("%s fitted %s, expected %s", rw.label, fit.Class(), rw.claim)
		}
		cells := []string{rw.label}
		for _, p := range peaks {
			cells = append(cells, itoa(p))
		}
		cells = append(cells, fmt.Sprintf("n^%.2f", fit.Exponent), string(rw.claim))
		t.Rows = append(t.Rows, cells)
	}

	// Answer agreement with the reference implementations on the compilable
	// corpus subset.
	agree := 0
	total := 0
	for _, p := range corpus.All() {
		code, err := secd.CompileSource(p.Source)
		if err != nil {
			continue // call/cc, apply, etc.: outside the SECD subset
		}
		total++
		for _, mode := range []secd.Mode{secd.Classic, secd.TailRecursive} {
			res := secd.Run(code, mode, 8_000_000)
			if res.Err != nil {
				t.Violationf("%s [%s]: %v", p.Name, mode, res.Err)
				t.Incompletef("%s [%s]: run ended without an answer: %v", p.Name, mode, res.Err)
				continue
			}
			if res.Answer != p.Answer {
				t.Violationf("%s [%s]: answered %q, want %q", p.Name, mode, res.Answer, p.Answer)
				continue
			}
		}
		agree++
	}
	t.Notef(fmt.Sprintf("both machines agree with the reference answers on %d/%d compilable corpus programs", agree, total))
	t.Notef("TAP on the classic machine is AP;RTN — a frame that exists only to pop itself")
	return t, nil
}
