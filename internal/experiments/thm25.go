package experiments

import (
	"fmt"
	"sort"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// Thm25 reproduces Theorem 25: each separation program is swept over its
// input ladder under every variant the paper makes a claim about, the growth
// order of S_X is fitted, and the fitted class is compared with the claim.
// One table per program.
func Thm25() ([]Table, error) {
	var out []Table
	for _, prog := range Thm25Programs() {
		t, err := RunSeparation(prog)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// RunSeparation sweeps a single separation program and checks its claims.
func RunSeparation(prog SeparationProgram) (Table, error) {
	family := prog.Family
	if family == "" {
		family = "Theorem 25"
	}
	t := Table{
		Title:  fmt.Sprintf("%s [%s]: %s", family, prog.Name, prog.Shows),
		Header: append([]string{"variant"}, nsHeader(prog.Inputs)...),
	}
	t.Header = append(t.Header, "fit", "paper", "ok")

	model := space.Word
	if prog.Fixnum {
		model = space.Fixnum
	}

	names := make([]string, 0, len(prog.Claims))
	for name := range prog.Claims {
		names = append(names, name)
	}
	sort.Strings(names)

	fits := map[string]Fit{}
	for _, name := range names {
		variant, ok := core.ByName(name)
		if !ok {
			return t, fmt.Errorf("thm25: unknown variant %s", name)
		}
		series, err := SweepProgram(prog.Name, prog.Source, variant, prog.Inputs, SweepOptions{Model: model, FlatOnly: true})
		if err != nil {
			return t, err
		}
		t.Absorb(series.Metrics)
		fit := series.FitFlat()
		fits[name] = fit
		claim := prog.Claims[name]
		okMark := "yes"
		if fit.Class() != claim {
			okMark = "NO"
			t.Violationf("%s: S_%s fitted %s, paper claims %s", prog.Name, name, fit.Class(), claim)
		}
		row := []string{name}
		for _, p := range series.Points {
			row = append(row, itoa(p.Flat))
		}
		row = append(row, fmt.Sprintf("n^%.2f", fit.Exponent), string(claim), okMark)
		t.Rows = append(t.Rows, row)
	}

	// The separation itself: the claimed-larger class must grow strictly
	// faster than the claimed-smaller one.
	for _, big := range names {
		for _, small := range names {
			if prog.Claims[big] == Quadratic && prog.Claims[small] == Linear ||
				prog.Claims[big] == Linear && prog.Claims[small] == Constant {
				if !fits[big].GrowsFasterThan(fits[small]) {
					t.Violationf("%s: S_%s (n^%.2f) should outgrow S_%s (n^%.2f)",
						prog.Name, big, fits[big].Exponent, small, fits[small].Exponent)
				}
			}
		}
	}
	return t, nil
}

func nsHeader(ns []int) []string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = fmt.Sprintf("S(%d)", n)
	}
	return out
}
