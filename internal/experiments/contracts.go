package experiments

// The contract-monitoring separation (after Greenberg, "Space-Efficient
// Latent Contracts"): the same guarded countdown loop runs in Θ(n) under
// the naive monitor — one pending codomain check per call — and in O(1)
// under the space-efficient monitor, which joins adjacent checks and drops
// duplicates by contract identity. The second program shows the limit of
// the join: a contract rebuilt inside the loop has a fresh identity per
// level, so both monitors chain. The erasing machines bound both programs
// from below at O(1), pinning the entire cost on monitoring itself.

// ContractedLoop is examples/contracted-loop.scm as a one-argument
// procedure: a properly tail recursive countdown guarded by one
// loop-invariant (-> number? number?) contract.
const ContractedLoop = `
(define/contract (loop n) (-> number? number?)
  (if (zero? n)
      0
      (loop (- n 1))))
(define (f n) (loop n))`

// ContractedLeak is examples/contracted-leak.scm as a one-argument
// procedure: the arrow contract is built inside the loop body, so every
// recursion level monitors under a fresh contract identity.
const ContractedLeak = `
(define (loop n)
  (if (zero? n)
      0
      ((mon (-> number? number?)
            (lambda (m) (loop m)))
       (- n 1))))
(define (f n) (loop n))`

// ContractPrograms returns the two monitor separation programs with their
// claimed growth classes on the erasing baseline and both monitors.
func ContractPrograms() []SeparationProgram {
	return []SeparationProgram{
		{
			Name:   "contracted-loop",
			Family: "Contracts",
			Source: ContractedLoop,
			Shows:  "O(S_naive) ⊄ O(S_spaceff): joined pending checks stay O(1)",
			Claims: map[string]GrowthClass{
				"tail":    Constant,
				"naive":   Linear,
				"spaceff": Constant,
			},
			Inputs: []int{16, 64, 256, 1024},
			Fixnum: true,
		},
		{
			Name:   "contracted-leak",
			Family: "Contracts",
			Source: ContractedLeak,
			Shows:  "per-level contract identity defeats the join: both monitors chain",
			Claims: map[string]GrowthClass{
				"tail":    Constant,
				"naive":   Linear,
				"spaceff": Linear,
			},
			Inputs: []int{16, 64, 256, 1024},
			Fixnum: true,
		},
	}
}

// Contracts sweeps both monitor separation programs, one table each.
func Contracts() ([]Table, error) {
	var out []Table
	for _, prog := range ContractPrograms() {
		t, err := RunSeparation(prog)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
