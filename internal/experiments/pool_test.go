package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunGridPreservesOrderAndBound(t *testing.T) {
	defer SetJobs(0)
	SetJobs(3)
	if Jobs() != 3 {
		t.Fatalf("Jobs() = %d", Jobs())
	}

	var inFlight, maxInFlight int64
	var mu sync.Mutex
	out := make([]int, 50)
	err := runGrid(len(out), func(i int) error {
		cur := atomic.AddInt64(&inFlight, 1)
		defer atomic.AddInt64(&inFlight, -1)
		mu.Lock()
		if cur > maxInFlight {
			maxInFlight = cur
		}
		mu.Unlock()
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInFlight > 3 {
		t.Fatalf("pool bound violated: %d tasks in flight", maxInFlight)
	}
	for i, got := range out {
		if got != i*i {
			t.Fatalf("slot %d = %d", i, got)
		}
	}
}

func TestRunGridReturnsLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	err := runGrid(10, func(i int) error {
		if i == 3 || i == 7 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("err = %v, want task 3's", err)
	}
}

func TestRunGridSingleTaskRunsInline(t *testing.T) {
	sentinel := errors.New("inline")
	if err := runGrid(1, func(int) error { return sentinel }); err != sentinel {
		t.Fatalf("err = %v", err)
	}
}

// TestHierarchyDeterministicAcrossJobs renders the hierarchy table at one
// and at several workers: parallel scheduling must not change a byte.
func TestHierarchyDeterministicAcrossJobs(t *testing.T) {
	defer SetJobs(0)
	probe := map[string]string{
		"countdown":     CountdownLoop,
		"vector-frames": VectorFrames,
	}
	SetJobs(1)
	serial, err := Hierarchy(probe, 6)
	if err != nil {
		t.Fatal(err)
	}
	SetJobs(8)
	parallel, err := Hierarchy(probe, 6)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Fatalf("parallel run changed the table:\n--- jobs=1\n%s\n--- jobs=8\n%s",
			serial.Render(), parallel.Render())
	}
}
