package experiments

import (
	"strings"
	"testing"
)

func TestMTAExperimentReproduces(t *testing.T) {
	table, err := MTAExperiment([]int{16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
	// The gc row must be the only one that is not properly tail recursive.
	improper := 0
	for _, row := range table.Rows {
		if row[len(row)-1] == "no" {
			improper++
			if !strings.HasPrefix(row[0], "gc") {
				t.Fatalf("unexpected improper machine %s", row[0])
			}
		}
	}
	if improper != 1 {
		t.Fatalf("exactly one machine should be improper, got %d:\n%s", improper, table.Render())
	}
}

func TestDenotationalAgreementReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	table, err := DenotationalAgreement(8)
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestAlgolSubsetReproduces(t *testing.T) {
	table, err := AlgolSubset()
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
	// The totals row reads "a/b Algol-like"; both boundary violations are
	// already checked inside, so just sanity-check the rendering.
	total := table.Rows[len(table.Rows)-1]
	if total[0] != "TOTAL" || !strings.Contains(total[1], "Algol-like") {
		t.Fatalf("totals row malformed: %v", total)
	}
}

func TestCPSExperimentReproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	table, err := CPSExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestSECDExperimentReproduces(t *testing.T) {
	table, err := SECDExperiment([]int{16, 64, 256})
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestReturnEnvAblationReproduces(t *testing.T) {
	table, err := ReturnEnvAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestControlSpaceExperimentReproduces(t *testing.T) {
	table, err := ControlSpaceExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if !table.Ok() {
		t.Fatalf("violations:\n%s", table.Render())
	}
}

func TestFitLastSegment(t *testing.T) {
	f := FitGrowth([]int{10, 20, 40}, []int{100, 200, 800})
	// Last segment quadruples over a doubling: slope 2.
	if f.LastSegment < 1.9 || f.LastSegment > 2.1 {
		t.Fatalf("last segment %.2f", f.LastSegment)
	}
}

func TestClassHockeyStickIsLinear(t *testing.T) {
	// Flat start then linear growth must not be classified quadratic.
	f := FitGrowth([]int{8, 16, 32, 64}, []int{274, 274, 352, 608})
	if c := f.Class(); c != Linear {
		t.Fatalf("hockey stick classified %s (exp %.2f, last %.2f)", c, f.Exponent, f.LastSegment)
	}
}

func TestClassAcceleratingSeriesIsQuadratic(t *testing.T) {
	// Quadratic plus a large constant: the regression alone undershoots,
	// the accelerating last segment rescues it.
	f := FitGrowth([]int{8, 16, 32, 64}, []int{400, 556, 1181, 3345})
	if c := f.Class(); c != Quadratic {
		t.Fatalf("classified %s (exp %.2f, last %.2f)", c, f.Exponent, f.LastSegment)
	}
}
