// Package experiments reproduces the paper's evaluation artifacts: the
// Figure 2 static-frequency table, the Figure 6 / Theorem 24 hierarchy of
// space classes, the Theorem 25 separation programs, the Theorem 26 linked
// versus flat incomparability, the Section 4 find-leftmost space profile,
// and the Section 12 R-factor argument for periodic garbage collection.
// Each experiment returns a rendered table plus machine-checkable findings
// so the same code drives cmd/spacelab, the benchmarks, and the test suite.
package experiments

import (
	"fmt"
	"math"
)

// Fit summarizes how a space peak grows with the input parameter N: the
// least-squares slope of log(peak) against log(N) plus the raw ratio between
// the largest and smallest measurements.
type Fit struct {
	// Exponent is the fitted log-log slope: ~0 for constant space, ~1 for
	// linear, ~2 for quadratic.
	Exponent float64
	// Ratio is peak(maxN)/peak(minN).
	Ratio float64
	// Span is maxN/minN, for interpreting Ratio.
	Span float64
	// LastSegment is the log-log slope between the two largest inputs — the
	// best estimate of the true asymptotic order, since additive lower-order
	// terms fade with N. A genuine quadratic accelerates toward 2; a linear
	// series with a flat start decelerates toward 1.
	LastSegment float64
}

// FitGrowth fits peaks measured at the given ns (both must be positive and
// parallel). Space measurements carry a large additive constant — |P|, the
// standard procedures in σ0 — that flattens log-log slopes at small N, so
// the fit first removes an extrapolated baseline: assuming the first two
// points sit on c0 + b·n with n1 ≈ 2·n0, c0 ≈ 2·p0 − p1 (clamped to stay
// below p0). The raw max/min ratio is kept for the constant-class test.
func FitGrowth(ns []int, peaks []int) Fit {
	if len(ns) != len(peaks) || len(ns) < 2 {
		return Fit{}
	}
	c0 := 2*float64(peaks[0]) - float64(peaks[1])
	if c0 < 0 {
		c0 = 0
	}
	if lim := 0.95 * float64(peaks[0]); c0 > lim {
		c0 = lim
	}
	var sx, sy, sxx, sxy float64
	for i := range ns {
		x := math.Log(float64(ns[i]))
		y := math.Log(float64(peaks[i]) - c0 + 1)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(ns))
	denom := n*sxx - sx*sx
	var slope float64
	if denom != 0 {
		slope = (n*sxy - sx*sy) / denom
	}
	last := len(ns) - 1
	lastSeg := math.Log(float64(peaks[last])/float64(peaks[last-1])) /
		math.Log(float64(ns[last])/float64(ns[last-1]))
	return Fit{
		Exponent:    slope,
		Ratio:       float64(peaks[len(peaks)-1]) / float64(peaks[0]),
		Span:        float64(ns[len(ns)-1]) / float64(ns[0]),
		LastSegment: lastSeg,
	}
}

// GrowthClass names the asymptotic class the fit most resembles.
type GrowthClass string

const (
	Constant  GrowthClass = "O(1)"
	Linear    GrowthClass = "O(n)"
	Quadratic GrowthClass = "O(n^2)"
	Other     GrowthClass = "O(n^k)"
)

// Class buckets the fitted exponent. A raw peak ratio that barely moves over
// the whole span marks a constant regardless of slope noise in the
// residuals; the last-segment slope arbitrates near the linear/quadratic
// boundary, where lower-order terms still bias the regression — a true
// quadratic accelerates with N, a flat-start linear decelerates.
func (f Fit) Class() GrowthClass {
	if f.Ratio < 1.5 && f.Span >= 4 {
		return Constant
	}
	switch {
	case f.Exponent < 0.35:
		return Constant
	case f.Exponent < 1.45:
		// A series c + b·n can never sustain a last-segment slope above 1
		// (its peak ratio over a doubling of n is below 2), so persistent
		// acceleration past ~1.3 certifies a superlinear term that small-N
		// constants hid from the regression.
		if f.LastSegment >= 1.35 {
			return Quadratic
		}
		return Linear
	case f.Exponent < 2.6:
		if f.LastSegment < 1.1 {
			return Linear // hockey stick: a flat start inflated the fit
		}
		return Quadratic
	default:
		return Other
	}
}

// GrowsFasterThan reports whether this fit grows asymptotically faster than
// the other by a clear margin — the "who wins" of a separation experiment.
// It compares last-segment slopes, the estimate least biased by additive
// lower-order terms.
func (f Fit) GrowsFasterThan(other Fit) bool {
	return f.LastSegment > other.LastSegment+0.4
}

func (f Fit) String() string {
	return fmt.Sprintf("n^%.2f (x%.1f over %.0fx span) ~ %s", f.Exponent, f.Ratio, f.Span, f.Class())
}
