package experiments

import (
	"fmt"
	"sort"
	"testing"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
	"tailspace/internal/corpus"
)

// TestFlowAnalysisPrecision pins the number of "unknown" pair verdicts over
// the standard static universe: the Theorem 25 programs and parametric
// corpus programs applied to a symbolic input, plus every corpus program as
// written. The syntactic resolver (PR 3) left 9 of 288 pairs unknown
// (cps-factorial, cps-fib, find-leftmost, list-library, church, stream-fibs,
// callcc-product); the 0-CFA resolves all higher-order argument passing and
// stored-closure flow, leaving only genuinely dynamic programs: call/cc
// re-entry (callcc-product), apply dispatch (apply-spread, fold-apply), and
// the metacircular evaluators, whose closure calls flow through an
// association-list store the one-cell heap summary cannot separate.
//
// The count may only go DOWN (more precision) without touching this test; a
// change that pushes it up is a precision regression that needs a paper
// trail here.
func TestFlowAnalysisPrecision(t *testing.T) {
	type subject struct {
		name string
		src  string
		// applied subjects are wrapped Definition 23 style before analysis.
		applied bool
	}
	var subjects []subject
	for _, p := range Thm25Programs() {
		subjects = append(subjects, subject{p.Name, p.Source, true})
	}
	for _, p := range corpus.ParametricPrograms() {
		subjects = append(subjects, subject{p.Name, p.Source, true})
	}
	for _, p := range corpus.All() {
		subjects = append(subjects, subject{p.Name, p.Source, false})
	}

	unknown := map[string]int{}
	pairs, total := 0, 0
	for _, s := range subjects {
		var rep *analysis.LeakReport
		if s.applied {
			e, err := core.ApplicationExpr(s.src, "(quote 2)")
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
			rep = analysis.AnalyzeLeaks(e)
		} else {
			var err error
			rep, err = analysis.AnalyzeLeaksSource(s.src)
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
		}
		for _, r := range rep.Relations {
			pairs++
			if r.Verdict == analysis.NoClaim {
				unknown[s.name]++
				total++
			}
		}
	}

	const syntacticBaseline = 9 // PR 3's resolver, same universe
	if total >= syntacticBaseline {
		t.Errorf("unknown pair verdicts = %d of %d; must stay strictly below the syntactic baseline of %d",
			total, pairs, syntacticBaseline)
	}

	want := map[string]int{
		"callcc-product":         1,
		"apply-spread":           2,
		"fold-apply":             1,
		"metacircular":           1,
		"metacircular-tail-loop": 1,
	}
	if len(unknown) != len(want) {
		t.Errorf("programs with unknown pairs: %v, want %v", keys(unknown), keys(want))
	}
	for name, n := range want {
		if unknown[name] != n {
			t.Errorf("%s: %d unknown pairs, want %d", name, unknown[name], n)
		}
	}
	for name, n := range unknown {
		if _, ok := want[name]; !ok {
			t.Errorf("unexpected unknown pairs on %s: %d", name, n)
		}
	}
	if pairs < 288 {
		t.Errorf("universe shrank to %d pairs; the pinned counts assume at least 288", pairs)
	}
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, fmt.Sprint(k))
	}
	sort.Strings(out)
	return out
}
