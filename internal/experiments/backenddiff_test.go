package experiments

import (
	"testing"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// TestCompiledBackendFuzzSmoke cross-checks the compiled backend against the
// stepper on ~200 seeded random programs (the randprog generator: closed,
// terminating, integer-valued, heavy on the forms the variants differ in —
// calls, lets, closures, set!, conditionals, call/cc). For every program ×
// machine the two backends must agree on the answer, the step count, the
// per-rule transition counts, and the S/U space peaks. It runs under -short
// too: the generator is the down-payment on ROADMAP item 4, and this smoke
// is the cheap always-on edge of the corpus differential suite.
func TestCompiledBackendFuzzSmoke(t *testing.T) {
	const seed, count, depth = 20260808, 200, 4
	variants := core.AllVariants
	if testing.Short() {
		variants = []core.Variant{core.Tail, core.Stack, core.Evlis, core.SFS, core.MTA}
	}
	programs := RandomPrograms(seed, count, depth)
	for _, v := range variants {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for i, src := range programs {
				run := func(backend core.Backend) core.Result {
					res, err := core.RunProgram(src, core.Options{
						Variant: v, Measure: true, GCEvery: 1,
						MaxSteps: 200_000, CostModel: space.Fixnum,
						Backend: backend,
					})
					if err != nil {
						t.Fatalf("prog %d [%s] backend=%v: %v\n%s", i, v, backend, err, src)
					}
					return res
				}
				stepper := run(core.BackendStepper)
				compiled := run(core.BackendCompiled)
				if diff := diffBackendRuns(stepper, compiled); diff != "" {
					t.Errorf("prog %d [%s]: compiled vs stepper: %s\n%s", i, v, diff, src)
				}
			}
		})
	}
}

// diffBackendRuns compares the observables the fuzz smoke pins: answer and
// termination, step count, space peaks, and the full metrics registry (which
// includes every per-rule transition counter).
func diffBackendRuns(stepper, compiled core.Result) string {
	if (stepper.Err == nil) != (compiled.Err == nil) ||
		(stepper.Err != nil && stepper.Err.Error() != compiled.Err.Error()) {
		return "Err stepper=" + errString(stepper.Err) + " compiled=" + errString(compiled.Err)
	}
	if stepper.Answer != compiled.Answer {
		return "Answer stepper=" + stepper.Answer + " compiled=" + compiled.Answer
	}
	if stepper.Steps != compiled.Steps {
		return "Steps differ"
	}
	if stepper.PeakFlat != compiled.PeakFlat || stepper.PeakLinked != compiled.PeakLinked ||
		stepper.PeakHeap != compiled.PeakHeap || stepper.PeakContDepth != compiled.PeakContDepth {
		return "peaks differ"
	}
	a, b := stepper.Metrics.Snapshot(), compiled.Metrics.Snapshot()
	for k, av := range a {
		if b[k] != av {
			return "metric " + k + " differs"
		}
	}
	for k, bv := range b {
		if a[k] != bv {
			return "metric " + k + " differs"
		}
	}
	return ""
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
