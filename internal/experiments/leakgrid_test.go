package experiments

import (
	"strings"
	"testing"
)

// TestLeakGrid is the differential validation of the static space-leak
// analyzer: every per-pair verdict it emits for the Theorem 25 programs and
// the parametric corpus/example programs must agree with the growth class
// fitted from sweeps on all six machines. A static separation contradicted
// by the meters — or an equality the meters refute — fails the test.
func TestLeakGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid sweeps six machines per program")
	}
	table, err := LeakGrid(LeakGridPrograms())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Violations) > 0 {
		t.Fatalf("static claims contradicted by the meters:\n%s\n%s",
			strings.Join(table.Violations, "\n"), table.Render())
	}

	// The grid must actually exercise both kinds of claim, and every
	// program must contribute all six pairs.
	var separates, equals int
	for _, row := range table.Rows {
		switch row[2] {
		case "separates":
			separates++
		case "equal":
			equals++
		}
	}
	if separates < 6 {
		t.Errorf("grid found only %d separation claims; the Theorem 25 programs alone should give six", separates)
	}
	if equals < 20 {
		t.Errorf("grid found only %d equality claims", equals)
	}
	if want := len(LeakGridPrograms()) * 6; len(table.Rows) != want {
		t.Errorf("grid has %d rows, want %d (six pairs per program)", len(table.Rows), want)
	}
}
