package experiments

import (
	"strings"
	"testing"
)

// TestLeakGrid is the differential validation of the static space-leak
// analyzer: every per-pair verdict it emits for the Theorem 25 programs and
// the parametric corpus/example programs must agree with the growth class
// fitted from sweeps on all eight machines. A static separation contradicted
// by the meters — or an equality the meters refute — fails the test.
func TestLeakGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid sweeps eight machines per program")
	}
	table, err := LeakGrid(LeakGridPrograms())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Violations) > 0 {
		t.Fatalf("static claims contradicted by the meters:\n%s\n%s",
			strings.Join(table.Violations, "\n"), table.Render())
	}

	// The grid must actually exercise both kinds of claim, and every
	// program must contribute all seven pairs.
	var separates, equals int
	for _, row := range table.Rows {
		switch row[2] {
		case "separates":
			separates++
		case "equal":
			equals++
		}
	}
	if separates < 6 {
		t.Errorf("grid found only %d separation claims; the Theorem 25 programs alone should give six", separates)
	}
	if equals < 20 {
		t.Errorf("grid found only %d equality claims", equals)
	}
	if want := len(LeakGridPrograms()) * 15; len(table.Rows) != want {
		t.Errorf("grid has %d rows, want %d (seven pairs + eight certificates per program)", len(table.Rows), want)
	}

	// Certificates must not be vacuous: the Theorem 25 programs alone carry
	// both O(1) bounds (countdown on the tail family) and unbounded ones.
	var constant, unbounded int
	for _, row := range table.Rows {
		if row[2] != "certificate" {
			continue
		}
		switch row[3] {
		case "O(1)":
			constant++
		case "unbounded":
			unbounded++
		}
	}
	if constant < 4 || unbounded < 4 {
		t.Errorf("certificate mix too flat: %d O(1), %d unbounded", constant, unbounded)
	}
}

// TestLeakGridRandom runs the same soundness contract over deterministic
// randprog-generated loop bodies: on every machine, the certificate must
// upper-bound the fitted class, whatever shape the generator produced.
func TestLeakGridRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid sweeps eight machines per program")
	}
	progs := RandLeakGridPrograms(0x5eed, 12)
	if len(progs) < 8 {
		t.Fatalf("only %d of 12 random programs survived the probe sweep", len(progs))
	}
	table, err := LeakGrid(progs)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Violations) > 0 {
		t.Fatalf("certificates contradicted by the meters:\n%s\n%s",
			strings.Join(table.Violations, "\n"), table.Render())
	}
}
