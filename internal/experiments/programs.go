package experiments

import (
	"fmt"
	"strings"
)

// The programs of Theorem 25, written — as in the paper — in full Scheme as
// procedure definitions of one argument. Each consumes quadratic space in
// one family of implementations but only linear (or, for CountdownLoop under
// Z_tail, constant) space in the other.

// VectorFrames distinguishes S_stack from S_gc (Theorem 25, first program):
// each activation binds a fresh vector and tail-calls itself. Algol-like
// stack allocation retains every frame's vector until its frame pops — and
// no frame pops until the recursion bottoms out — so Z_stack is quadratic,
// while Z_gc's garbage collector reclaims each vector as soon as only the
// dead frame environment mentions it.
// The vectors are scaled (×8) so the quadratic term dominates the linear
// continuation overhead within laptop-feasible sweeps; the asymptotic claim
// is unchanged.
const VectorFrames = `
(define (f n)
  (let ((v (make-vector (* 8 n))))
    (if (zero? n)
        0
        (f (- n 1)))))`

// CountdownLoop distinguishes S_gc from S_tail (Theorem 25, second program):
// the iterative computation described by a syntactically recursive
// procedure. Z_tail runs it in constant space (with fixed-precision
// arithmetic); Z_gc's useless return continuations make it linear.
const CountdownLoop = `
(define (f n) (if (zero? n) 0 (f (- n 1))))`

// ThunkReturn distinguishes S_tail from S_evlis (and shows O(S_free) is not
// contained in O(S_evlis) or O(S_sfs); Theorem 25, third program). The
// recursive call happens while evaluating (g) — the last subexpression of
// the call ((g)) — so Z_evlis evaluates it under an empty continuation
// environment and the vector dies, while Z_tail and Z_free keep the full
// environment (v included) in the push continuation for the whole recursion.
const ThunkReturn = `
(define (f n)
  (define (g)
    (begin (f (- n 1))
           (lambda () n)))
  (let ((v (make-vector (* 8 n))))
    (if (zero? n)
        0
        ((g)))))`

// ClosureCapture distinguishes S_tail and S_evlis from S_free and S_sfs
// (Theorem 25, fourth program). The thunk closes over everything in scope
// under Z_tail/Z_evlis — the vector included — so the recursion inside its
// body retains every level's vector. Closing over free variables only
// (Z_free, Z_sfs) lets the collector take the vectors.
const ClosureCapture = `
(define (f n)
  (let ((v (make-vector (* 8 n))))
    (if (zero? n)
        0
        ((lambda ()
           (begin (f (- n 1)) n))))))`

// SeparationPrograms lists the four Theorem 25 programs with the paper's
// claimed growth classes.
type SeparationProgram struct {
	Name   string
	Source string
	Shows  string // the non-inclusion(s) the paper proves with it
	// Family titles the result table; empty means "Theorem 25" (the
	// contract separations in contracts.go set their own).
	Family string
	Claims map[string]GrowthClass
	Inputs []int
	Fixnum bool // measure with fixed-precision number costs
}

// Thm25Programs returns the four separation programs with their claims.
func Thm25Programs() []SeparationProgram {
	return []SeparationProgram{
		{
			Name:   "vector-frames",
			Source: VectorFrames,
			Shows:  "O(S_stack) ⊄ O(S_gc)",
			Claims: map[string]GrowthClass{
				"stack": Quadratic,
				"gc":    Linear,
			},
			Inputs: []int{8, 16, 32, 64},
			Fixnum: true,
		},
		{
			Name:   "countdown",
			Source: CountdownLoop,
			Shows:  "O(S_gc) ⊄ O(S_tail)",
			Claims: map[string]GrowthClass{
				"gc":   Linear,
				"tail": Constant,
			},
			Inputs: []int{16, 64, 256, 1024},
			Fixnum: true,
		},
		{
			Name:   "thunk-return",
			Source: ThunkReturn,
			Shows:  "O(S_tail) ⊄ O(S_evlis), O(S_free) ⊄ O(S_evlis), O(S_free) ⊄ O(S_sfs)",
			Claims: map[string]GrowthClass{
				"tail":  Quadratic,
				"free":  Quadratic,
				"evlis": Linear,
				"sfs":   Linear,
			},
			Inputs: []int{8, 16, 32, 64},
			Fixnum: true,
		},
		{
			Name:   "closure-capture",
			Source: ClosureCapture,
			Shows:  "O(S_tail) ⊄ O(S_free), O(S_evlis) ⊄ O(S_free), O(S_evlis) ⊄ O(S_sfs)",
			Claims: map[string]GrowthClass{
				"tail":  Quadratic,
				"evlis": Quadratic,
				"free":  Linear,
				"sfs":   Linear,
			},
			Inputs: []int{8, 16, 32, 64},
			Fixnum: true,
		},
	}
}

// Thm26Program generates the paper's Section 13 program P_k:
//
//	E_{0,k} = (let ((x0 n))
//	            (define (loop i thunks)
//	              (if (zero? i)
//	                  ((list-ref thunks (random (length thunks))))
//	                  (loop (- i 1)
//	                        (cons (lambda () (list i x0 x1 ... xk))
//	                              thunks))))
//	            (loop n '()))
//	E_{j,k} = (let ((xj (- n j))) E_{j-1,k})
//	P_k     = (define (f n) E_{k,k})
//
// With k = N the program builds N thunks that each close over the same k+1
// bindings x0...xk: linked environments (U_tail) share them — O(N log N) —
// while flat safe-for-space closures (S_sfs) copy the free variables into
// every thunk — O(N^2). This realizes Theorem 26: O(S_sfs) ⊄ O(U_tail), and
// with U_evlis vs S_free it also exhibits the Section 13 incomparabilities.
func Thm26Program(k int) string {
	var xs []string
	for i := 0; i <= k; i++ {
		xs = append(xs, fmt.Sprintf("x%d", i))
	}
	var sb strings.Builder
	sb.WriteString("(define (f n)\n")
	// Outer lets bind xk ... x1, innermost binds x0.
	for j := k; j >= 1; j-- {
		fmt.Fprintf(&sb, "(let ((x%d (- n %d)))\n", j, j)
	}
	sb.WriteString("(let ((x0 n))\n")
	sb.WriteString("  (define (loop i thunks)\n")
	sb.WriteString("    (if (zero? i)\n")
	sb.WriteString("        ((list-ref thunks (random (length thunks))))\n")
	sb.WriteString("        (loop (- i 1)\n")
	fmt.Fprintf(&sb, "              (cons (lambda () (list i %s))\n", strings.Join(xs, " "))
	sb.WriteString("                    thunks))))\n")
	sb.WriteString("  (loop n '()))")
	sb.WriteString(strings.Repeat(")", k))
	sb.WriteString(")\n")
	return sb.String()
}

// FindLeftmost is the Section 4 example program, parameterized over the tree
// it searches. Trees are built from pairs; leaves are numbers.
const findLeftmostDefs = `
(define (leaf? t) (number? t))
(define (left-child t) (car t))
(define (right-child t) (cdr t))
(define (find-leftmost predicate? tree fail)
  (if (leaf? tree)
      (if (predicate? tree)
          tree
          (fail))
      (let ((continuation
             (lambda ()
               (find-leftmost predicate?
                              (right-child tree)
                              fail))))
        (find-leftmost predicate? (left-child tree) continuation))))`

// FindLeftmostProgram searches a tree of depth n for a leaf that never
// matches, exercising the full failure-continuation chain. shape is
// "right-spine" (every left child is a leaf — the case the paper says runs
// in constant space) or "left-spine" (maximal left depth — linear space).
func FindLeftmostProgram(shape string) string {
	var build string
	switch shape {
	case "right-spine":
		build = `
(define (build d)
  (if (zero? d) 0 (cons 1 (build (- d 1)))))`
	case "left-spine":
		build = `
(define (build d)
  (if (zero? d) 0 (cons (build (- d 1)) 1)))`
	default:
		panic("unknown tree shape " + shape)
	}
	return findLeftmostDefs + build + `
(define (f n)
  (find-leftmost (lambda (x) (< x 0)) (build n) (lambda () -1)))`
}
