package experiments

// The differential leak grid closes the loop between the static space-leak
// analyzer (internal/analysis) and the meters: every program is analyzed
// once (applied to a symbolic input, Definition 23 style) and then swept
// over an input ladder on every certified machine; the fitted growth class of S_X
// must agree with every static claim. A "separates" verdict demands a
// strict class gap on exactly the machine pair the analyzer named; an
// "equal" verdict demands the same class on both; "unknown" is exempt but
// counted, so a regression that degrades precise verdicts into no-claims is
// visible in the table.
//
// The grid also validates the space-class certificates: for every machine,
// the certified class must upper-bound the fitted growth class (a
// certificate may be loose, never wrong). RandLeakGridPrograms extends the
// subject pool with deterministic randprog-generated loop bodies, so the
// soundness contract is exercised on program shapes nobody hand-picked.

import (
	"fmt"
	"strings"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
	"tailspace/internal/corpus"
	"tailspace/internal/space"
)

// GridProgram is one differential-validation subject: a pure define-form
// source whose value is a one-argument procedure, plus its input ladder.
type GridProgram struct {
	Name   string
	Source string
	Inputs []int
}

// gridMachines lists the machines swept per subject — the six hierarchy
// machines plus the two contract monitors, matching analysis.CertMachines.
var gridMachines = []string{"stack", "gc", "tail", "evlis", "free", "sfs", "naive", "spaceff"}

// LeakGridPrograms returns the default subjects: the four Theorem 25
// separation programs plus the sweepable parametric corpus/example
// programs.
func LeakGridPrograms() []GridProgram {
	var out []GridProgram
	seen := map[string]bool{}
	for _, p := range Thm25Programs() {
		out = append(out, GridProgram{Name: p.Name, Source: p.Source, Inputs: p.Inputs})
		seen[p.Name] = true
	}
	for _, p := range corpus.ParametricPrograms() {
		if seen[p.Name] {
			continue
		}
		inputs := []int{16, 64, 256}
		if p.Quadratic {
			inputs = []int{8, 16, 32, 64}
		}
		out = append(out, GridProgram{Name: p.Name, Source: p.Source, Inputs: inputs})
	}
	return out
}

// RandLeakGridPrograms wraps deterministic randprog expressions in an
// input-driven tail loop, so each random body is evaluated once per
// recursion level while the driver argument scales. Candidates whose wrapped
// form fails a probe sweep (a generator change could produce a stuck
// program) are skipped rather than failing the grid.
func RandLeakGridPrograms(seed int64, count int) []GridProgram {
	// A missing probe variant must fail loudly: swallowing it would skip
	// every candidate and silently empty the random subject pool.
	variant, ok := core.ByName("tail")
	if !ok {
		panic("leakgrid: probe variant \"tail\" is not registered")
	}
	var out []GridProgram
	for i, body := range RandomPrograms(seed, count, 3) {
		p := GridProgram{
			Name:   fmt.Sprintf("rand-%02d", i),
			Source: fmt.Sprintf("(define (f n)\n  (if (zero? n)\n      %s\n      (f (- n 1))))", body),
			Inputs: []int{16, 64, 256},
		}
		if _, err := SweepProgram(p.Name, p.Source, variant, []int{4}, SweepOptions{Model: space.Fixnum, FlatOnly: true}); err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// classRank orders growth classes for verdict checking.
func classRank(c GrowthClass) int {
	switch c {
	case Constant:
		return 0
	case Linear:
		return 1
	case Quadratic:
		return 2
	default:
		return 3
	}
}

// LeakGrid analyzes and sweeps every subject, one table row per
// (program, machine pair) claim.
func LeakGrid(progs []GridProgram) (Table, error) {
	t := Table{
		Title:  "Differential leak grid: static per-pair verdicts vs fitted S_X growth",
		Header: []string{"program", "pair", "verdict", "S_small", "S_big", "ok"},
	}
	for _, p := range progs {
		e, err := core.ApplicationExpr(p.Source, "(quote 2)")
		if err != nil {
			return t, fmt.Errorf("leakgrid %s: %w", p.Name, err)
		}
		rep := analysis.AnalyzeLeaks(e)

		fits := map[string]Fit{}
		for _, m := range gridMachines {
			variant, ok := core.ByName(m)
			if !ok {
				return t, fmt.Errorf("leakgrid: unknown variant %s", m)
			}
			series, err := SweepProgram(p.Name, p.Source, variant, p.Inputs, SweepOptions{Model: space.Fixnum, FlatOnly: true})
			if err != nil {
				return t, fmt.Errorf("leakgrid %s [%s]: %w", p.Name, m, err)
			}
			t.Absorb(series.Metrics)
			fits[m] = series.FitFlat()
		}

		// Certificate soundness: the certified class must upper-bound the
		// fitted class on every machine. Certificate ranks share the fitted
		// scale (O(1)=constant, O(n)=linear, unbounded above everything), so
		// an unbounded certificate passes any meter and an O(1) certificate
		// passes only a constant fit.
		for _, cert := range rep.Certificates {
			fit, ok := fits[cert.Machine]
			if !ok {
				continue
			}
			okMark := "yes"
			if cert.Class.Rank() < classRank(fit.Class()) {
				okMark = "NO"
				t.Violationf("%s: certificate says S_%s is %s, but the meters fit %s",
					p.Name, cert.Machine, cert.Class, fit.Class())
			}
			t.Rows = append(t.Rows, []string{
				p.Name, "S_" + cert.Machine, "certificate",
				string(cert.Class), string(fit.Class()), okMark,
			})
		}

		for _, rel := range rep.Relations {
			small, big := fits[rel.Small], fits[rel.Big]
			okMark := "yes"
			switch rel.Verdict {
			case analysis.Separates:
				if classRank(big.Class()) <= classRank(small.Class()) {
					okMark = "NO"
					t.Violationf("%s: static claim %s separates, but S_%s %s vs S_%s %s",
						p.Name, rel.Pair(), rel.Small, small.Class(), rel.Big, big.Class())
				}
			case analysis.SameClass:
				if classRank(big.Class()) != classRank(small.Class()) {
					okMark = "NO"
					t.Violationf("%s: static claim %s equal, but S_%s %s vs S_%s %s",
						p.Name, rel.Pair(), rel.Small, small.Class(), rel.Big, big.Class())
				}
			default:
				okMark = "skip"
			}
			t.Rows = append(t.Rows, []string{
				p.Name, rel.Pair(), string(rel.Verdict),
				string(small.Class()), string(big.Class()), okMark,
			})
		}

		// Every confirmed leak must be consistent with the meters on the pair
		// it names: the machine it blames may never grow slower than the one
		// it exonerates, and when the synthesized relation claims a
		// separation the gap must be strict (checked above via Relations).
		for _, leak := range rep.Leaks {
			small, big, ok := strings.Cut(leak.Pair, "<")
			if !ok {
				continue
			}
			fs, fb := fits[small], fits[big]
			if classRank(fb.Class()) < classRank(fs.Class()) {
				t.Violationf("%s: %s leak blames %s, but measured S_%s %s vs S_%s %s",
					p.Name, leak.Kind, leak.Pair, small, fs.Class(), big, fb.Class())
			}
		}
	}
	return t, nil
}
