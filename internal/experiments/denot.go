package experiments

import (
	"fmt"
	"math/rand"

	"tailspace/internal/core"
	"tailspace/internal/corpus"
	"tailspace/internal/denot"
)

// DenotationalAgreement discharges the Section 16 future-work item
// empirically: every answer computed by the denotational semantics (the
// definitional interpreter of internal/denot) is computed by every reference
// implementation. The probe set is the whole corpus plus freshly generated
// random programs.
func DenotationalAgreement(randomCount int) (Table, error) {
	t := Table{
		Title:  "Section 16: denotational semantics vs the reference implementations",
		Header: []string{"program", "denotational answer", "machines agreeing"},
	}

	type probe struct{ name, src string }
	var probes []probe
	for _, p := range corpus.All() {
		probes = append(probes, probe{p.Name, p.Source})
	}
	r := rand.New(rand.NewSource(1998)) // the paper's year, for luck
	for i := 0; i < randomCount; i++ {
		probes = append(probes, probe{fmt.Sprintf("random-%02d", i), RandomProgram(r, 4)})
	}

	for _, p := range probes {
		v, st, err := denot.Run(p.src)
		if err != nil {
			return t, fmt.Errorf("denot: %s: %w", p.name, err)
		}
		want := core.Answer(v, st)
		agreeing := 0
		for _, variant := range core.AllVariants {
			res, err := core.RunProgram(p.src, core.Options{Variant: variant, MaxSteps: 5_000_000, Backend: expBackend()})
			if err != nil {
				return t, fmt.Errorf("%s [%s]: %w", p.name, variant, err)
			}
			if res.Err != nil {
				return t, fmt.Errorf("%s [%s]: %w", p.name, variant, res.Err)
			}
			if res.Answer == want {
				agreeing++
			} else {
				t.Violationf("%s: [%s] answered %q, denotational semantics %q",
					p.name, variant, res.Answer, want)
			}
		}
		t.AddRow(p.name, truncate(want, 32), fmt.Sprintf("%d/%d", agreeing, len(core.AllVariants)))
	}
	t.Notef("machines include the Section 14 MTA variant alongside the paper's six")
	return t, nil
}
