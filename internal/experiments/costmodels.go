package experiments

import (
	"fmt"
	"sort"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// This file asks the Accattoli/Dal Lago/Vanoni question of Clinger's
// hierarchy: which of the Theorem 25 space-class separations are artifacts
// of the word cost model, and which survive when pointers cost the
// logarithm of the live-store size? Each separation program is re-swept
// under every cost model and each claimed separation pair gets a per-model
// separates/collapses verdict. A second experiment exhibits a program whose
// space class itself differs between WordModel and LogModel.

// LogModelGapProgram builds a live list of n constant cells and then
// traverses it tail-recursively; the peak configuration holds Θ(n) live
// store cells. The cells are booleans, not numbers, so number pricing — on
// which all models of this repo agree up to a constant — cannot blur the
// comparison. Under WordModel the peak is Θ(n) words; under LogModel every
// retained store pointer costs ⌈log2 live⌉ bits, so the same computation
// peaks at Θ(n log n). The same source is examples/log-model-gap.scm.
const LogModelGapProgram = `(lambda (n)
  (define (build i acc)
    (if (zero? i)
        acc
        (build (- i 1) (cons #t acc))))
  (define (count l k)
    (if (null? l)
        k
        (count (cdr l) (+ k 1))))
  (count (build n '()) 0))`

// logModelGapInputs is the input ladder for the gap program.
var logModelGapInputs = []int{16, 64, 256, 1024}

// CostModelGrid re-runs every Theorem 25 separation under every cost model
// and reports, per claimed separation pair, whether the bigger class still
// grows strictly faster. The word and fixnum columns reproduce the paper's
// verdicts; the log column answers the robustness question.
func CostModelGrid() (Table, error) {
	t := Table{
		Title:  "Cost-model robustness: Theorem 25 separations under word/fixnum/log pricing",
		Header: []string{"program", "separation"},
	}
	for _, m := range space.Models {
		t.Header = append(t.Header, m.Name())
	}

	for _, prog := range Thm25Programs() {
		names := make([]string, 0, len(prog.Claims))
		for name := range prog.Claims {
			names = append(names, name)
		}
		sort.Strings(names)

		// One sweep per (variant, model); fits[model][variant].
		fits := make(map[string]map[string]Fit, len(space.Models))
		for _, model := range space.Models {
			fits[model.Name()] = make(map[string]Fit, len(names))
			for _, name := range names {
				variant, ok := core.ByName(name)
				if !ok {
					return t, fmt.Errorf("costmodels: unknown variant %s", name)
				}
				series, err := SweepProgram(prog.Name, prog.Source, variant, prog.Inputs,
					SweepOptions{Model: model, FlatOnly: true})
				if err != nil {
					return t, err
				}
				t.Absorb(series.Metrics)
				fits[model.Name()][name] = series.FitFlat()
			}
		}

		for _, pair := range separationPairs(prog, names) {
			row := []string{prog.Name, fmt.Sprintf("S_%s > S_%s", pair.big, pair.small)}
			for _, model := range space.Models {
				f := fits[model.Name()]
				// The separation verdict and the slopes shown are the
				// last-segment log-log slopes — the estimate GrowsFasterThan
				// uses, least biased by the additive |P| + σ0 constant.
				if f[pair.big].GrowsFasterThan(f[pair.small]) {
					row = append(row, fmt.Sprintf("separates (n^%.2f > n^%.2f)",
						f[pair.big].LastSegment, f[pair.small].LastSegment))
				} else {
					row = append(row, fmt.Sprintf("collapses (n^%.2f vs n^%.2f)",
						f[pair.big].LastSegment, f[pair.small].LastSegment))
					// A collapse under the paper's own models is a violation;
					// under LogModel it is the experiment's finding.
					if model.Name() != "log" {
						t.Violationf("%s: S_%s > S_%s collapsed under the %s model",
							prog.Name, pair.big, pair.small, model.Name())
					}
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notef("slopes are last-segment log-log slopes; a pair separates when they differ by > 0.4")
	return t, nil
}

// separationPair is one claimed strict inclusion: S_big outgrows S_small.
type separationPair struct{ big, small string }

// separationPairs lists the strict separations a program's claims imply,
// in deterministic order (the pairs RunSeparation also checks).
func separationPairs(prog SeparationProgram, names []string) []separationPair {
	var out []separationPair
	for _, big := range names {
		for _, small := range names {
			if prog.Claims[big] == Quadratic && prog.Claims[small] == Linear ||
				prog.Claims[big] == Linear && prog.Claims[small] == Constant {
				out = append(out, separationPair{big: big, small: small})
			}
		}
	}
	return out
}

// LogModelGap sweeps the gap program under Z_tail for every cost model and
// checks the defining property through the marginal cost of one more live
// cell, slope_i = (S(n_{i+1}) − S(n_i)) / (n_{i+1} − n_i): under the word
// and fixnum models the marginal cost is a constant (Θ(n) total), while
// under the log model it grows like the pointer width, ⌈log2 live⌉ (Θ(n
// log n) total). Marginal slopes are the right witness because the peak
// carries a large additive constant — |P| plus the σ0 prelude, whose
// log-model repricing inflates every column by a constant factor — and
// because fitted exponents cannot tell n from n log n.
func LogModelGap() (Table, error) {
	t := Table{
		Title:  "Log-model gap [log-model-gap]: Θ(n) under word pricing, Θ(n log n) under log pricing",
		Header: append([]string{"model"}, nsHeader(logModelGapInputs)...),
	}
	t.Header = append(t.Header, "words/cell")

	slopes := make(map[string][]float64, len(space.Models))
	for _, model := range space.Models {
		series, err := SweepProgram("log-model-gap", LogModelGapProgram, core.Tail,
			logModelGapInputs, SweepOptions{Model: model, FlatOnly: true})
		if err != nil {
			return t, err
		}
		t.Absorb(series.Metrics)
		for i := 1; i < len(series.Points); i++ {
			slopes[model.Name()] = append(slopes[model.Name()],
				float64(series.Points[i].Flat-series.Points[i-1].Flat)/
					float64(series.Points[i].N-series.Points[i-1].N))
		}

		row := []string{model.Name()}
		for _, p := range series.Points {
			row = append(row, itoa(p.Flat))
		}
		sl := slopes[model.Name()]
		row = append(row, fmt.Sprintf("%.1f → %.1f", sl[0], sl[len(sl)-1]))
		t.Rows = append(t.Rows, row)
	}

	for _, name := range []string{"word", "fixnum"} {
		sl := slopes[name]
		first, last := sl[0], sl[len(sl)-1]
		if last > 1.15*first || first > 1.15*last {
			t.Violationf("%s: marginal words per live cell must stay constant (Θ(n)): %.1f → %.1f",
				name, first, last)
		}
	}
	sl := slopes["log"]
	if sl[len(sl)-1] < 1.25*sl[0] {
		t.Violationf("log: marginal words per live cell must grow with the pointer width (Θ(n log n)): %.1f → %.1f",
			sl[0], sl[len(sl)-1])
	}
	t.Notef("words/cell is the marginal peak increase per additional live cell, first → last ladder segment")
	t.Notef("the gap program's source is examples/log-model-gap.scm")
	return t, nil
}

// CostModels runs the full cost-model experiment: the Theorem 25 robustness
// grid followed by the word/log gap witness.
func CostModels() ([]Table, error) {
	grid, err := CostModelGrid()
	if err != nil {
		return nil, err
	}
	gap, err := LogModelGap()
	if err != nil {
		return []Table{grid}, err
	}
	return []Table{grid, gap}, nil
}
