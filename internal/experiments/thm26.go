package experiments

import (
	"fmt"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// Thm26 reproduces Theorem 26 and the Section 13 discussion: on the nested-
// let thunk family P_N (with k = N), linked environments shared across
// closures keep U_tail (and U_evlis) essentially linear while flat
// safe-for-space closures (S_sfs, S_free) copy the k+1 shared bindings into
// every thunk and go quadratic. Flat and linked environments are therefore
// asymptotically incomparable: O(S_sfs) ⊄ O(U_tail) here, while Appel's
// examples (reproduced by the closure-capture program of Theorem 25) give
// the other direction.
func Thm26(ns []int) (Table, error) {
	if len(ns) == 0 {
		ns = []int{8, 16, 32, 64}
	}
	t := Table{
		Title:  "Theorem 26 / §13: flat vs linked environments on P_N (k = N)",
		Header: append([]string{"measure"}, nsHeader(ns)...),
	}
	t.Header = append(t.Header, "fit", "paper", "ok")

	cases := []struct {
		label   string
		variant core.Variant
		linked  bool
		claim   GrowthClass
	}{
		{"U_tail", core.Tail, true, Linear},
		{"U_evlis", core.Evlis, true, Linear},
		{"S_sfs", core.SFS, false, Quadratic},
		{"S_free", core.Free, false, Quadratic},
	}

	fits := map[string]Fit{}
	for _, c := range cases {
		series, err := SweepGenerated("thm26", Thm26Program, c.variant, ns, SweepOptions{Model: space.Fixnum})
		if err != nil {
			return t, err
		}
		t.Absorb(series.Metrics)
		var peaks []int
		if c.linked {
			peaks = series.LinkedPeaks()
		} else {
			peaks = series.FlatPeaks()
		}
		fit := FitGrowth(series.Ns(), peaks)
		fits[c.label] = fit
		okMark := "yes"
		if fit.Class() != c.claim {
			okMark = "NO"
			t.Violationf("%s fitted %s, paper claims %s", c.label, fit.Class(), c.claim)
		}
		row := []string{c.label}
		for _, p := range peaks {
			row = append(row, itoa(p))
		}
		row = append(row, fmt.Sprintf("n^%.2f", fit.Exponent), string(c.claim), okMark)
		t.Rows = append(t.Rows, row)
	}

	if !fits["S_sfs"].GrowsFasterThan(fits["U_tail"]) {
		t.Violationf("S_sfs (n^%.2f) should outgrow U_tail (n^%.2f): O(S_sfs) ⊄ O(U_tail)",
			fits["S_sfs"].Exponent, fits["U_tail"].Exponent)
	}
	if !fits["S_free"].GrowsFasterThan(fits["U_evlis"]) {
		t.Violationf("S_free (n^%.2f) should outgrow U_evlis (n^%.2f): O(U_evlis) and O(S_free) incomparable",
			fits["S_free"].Exponent, fits["U_evlis"].Exponent)
	}
	t.Notef("the program text of P_N grows with N (k=N nested lets), exactly as in the paper's proof")
	t.Notef("measured with fixed-precision number costs; the paper notes the linear cases are O(N log N) with bignums")
	return t, nil
}
