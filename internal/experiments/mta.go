package experiments

import (
	"fmt"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// MTAExperiment reproduces the Section 14 observation: a standard technique
// for properly tail recursive C code "allocate[s] stack frames for all
// calls, but ... perform[s] periodic garbage collection of stack frames as
// well as heap nodes [Bak95]. A definition of proper tail recursion that is
// based on asymptotic space complexity allows this technique. To my
// knowledge, no other formal definitions do."
//
// The MTA machine pushes a return frame on every call — syntactically it is
// Z_gc, improper by any rule-shape definition — yet its frame-collecting GC
// keeps the countdown loop in constant space, so by Definition 5 it IS
// properly tail recursive. The table shows S on the loop for Z_tail, Z_mta
// at two collection periods, and Z_gc.
func MTAExperiment(ns []int) (Table, error) {
	if len(ns) == 0 {
		ns = []int{16, 64, 256, 1024}
	}
	t := Table{
		Title:  "Section 14: Cheney-on-the-MTA frame collection on the countdown loop",
		Header: append([]string{"machine"}, nsHeader(ns)...),
	}
	t.Header = append(t.Header, "fit", "properly tail recursive?")

	cases := []struct {
		label   string
		variant core.Variant
		gcEvery int
		claim   GrowthClass
	}{
		{"tail", core.Tail, 1, Constant},
		{"mta (collect every step)", core.MTA, 1, Constant},
		{"mta (collect every 25)", core.MTA, 25, Constant},
		{"gc (no frame collection)", core.GC, 1, Linear},
	}
	for _, c := range cases {
		peaks := make([]int, 0, len(ns))
		for _, n := range ns {
			res, err := core.RunApplication(CountdownLoop, fmt.Sprintf("(quote %d)", n), core.Options{
				Variant: c.variant, Measure: true, FlatOnly: true,
				GCEvery: c.gcEvery, CostModel: expModel(space.Fixnum), MaxSteps: 5_000_000,
				Backend: expBackend(),
			})
			if err != nil {
				return t, err
			}
			if res.Err != nil {
				return t, res.Err
			}
			peaks = append(peaks, res.PeakFlat)
		}
		fit := FitGrowth(ns, peaks)
		verdict := "yes"
		if fit.Class() != Constant {
			verdict = "no"
		}
		if fit.Class() != c.claim {
			t.Violationf("%s fitted %s, expected %s", c.label, fit.Class(), c.claim)
		}
		row := []string{c.label}
		for _, p := range peaks {
			row = append(row, itoa(p))
		}
		row = append(row, fmt.Sprintf("n^%.2f", fit.Exponent), verdict)
		t.Rows = append(t.Rows, row)
	}
	t.Notef("mta pushes a continuation for EVERY call, exactly like gc; only its collector differs")
	t.Notef("no syntactic definition of proper tail recursion admits mta; the space-class definition does")
	return t, nil
}
