package experiments

import (
	"fmt"

	"tailspace/internal/analysis"
	"tailspace/internal/ast"
	"tailspace/internal/core"
	"tailspace/internal/corpus"
	"tailspace/internal/cps"
	"tailspace/internal/prim"
	"tailspace/internal/space"
)

// CPSExperiment reproduces the Section 1 / [Ste78] lens on proper tail
// recursion: after CPS conversion every call to an unknown procedure is a
// tail call, the observable answers are unchanged, and the conversion
// preserves the space class of iterative programs — "it is perfectly
// feasible to write large programs in which no procedure ever returns"
// (Section 4), and proper tail recursion is exactly what lets such programs
// run in bounded control space.
func CPSExperiment() (Table, error) {
	t := Table{
		Title:  "Section 1/[Ste78]: CPS conversion — tail-call shape, answers, and space",
		Header: []string{"program", "direct tail %", "CPS tail %", "CPS non-tail", "answer"},
	}
	for _, p := range corpus.All() {
		if !cpsConvertible(p.Name) {
			continue
		}
		direct, err := analysis.AnalyzeSource(p.Name, p.Source)
		if err != nil {
			return t, err
		}
		converted, err := cps.ConvertSource(p.Source)
		if err != nil {
			return t, fmt.Errorf("cps: %s: %w", p.Name, err)
		}
		after := analysis.Analyze(converted)

		// The structural invariant: every non-tail call applies a known
		// primitive directly.
		badNonTail := 0
		info := ast.MarkTails(converted)
		ast.Walk(converted, func(x ast.Expr) bool {
			call, ok := x.(*ast.Call)
			if !ok || info.IsTail(call) {
				return true
			}
			if op, ok := call.Operator().(*ast.Var); ok {
				if _, isPrim := prim.Lookup(op.Name); isPrim {
					return true
				}
			}
			badNonTail++
			return true
		})
		if badNonTail > 0 {
			t.Violationf("%s: %d non-tail calls to unknown procedures after CPS", p.Name, badNonTail)
		}

		res := core.NewRunner(core.Options{Variant: core.Tail, MaxSteps: 8_000_000, Backend: expBackend()}).Run(converted)
		t.Absorb(res.Metrics)
		verdict := res.Answer
		if res.Err != nil {
			verdict = "ERROR"
			t.Violationf("%s: CPS program failed: %v", p.Name, res.Err)
			t.Incompletef("%s: CPS run ended without an answer: %v", p.Name, res.Err)
		} else if res.Answer != p.Answer {
			t.Violationf("%s: CPS answered %q, want %q", p.Name, res.Answer, p.Answer)
		}
		t.AddRow(p.Name,
			pct(direct.Percent(direct.Tail())),
			pct(after.Percent(after.Tail())),
			itoa(after.NonTail),
			truncate(verdict, 24))
	}

	// Space preservation: the countdown loop stays O(1) under Z_tail after
	// conversion.
	loopCPS := func(n int) (int, error) {
		converted, err := cps.ConvertSource(CountdownLoop + fmt.Sprintf("\n(f %d)", n))
		if err != nil {
			return 0, err
		}
		res := core.NewRunner(core.Options{
			Variant: core.Tail, Measure: true, FlatOnly: true,
			GCEvery: 1, CostModel: expModel(space.Fixnum), MaxSteps: 8_000_000,
			Backend: expBackend(),
		}).Run(converted)
		return res.PeakFlat, res.Err
	}
	small, err := loopCPS(10)
	if err != nil {
		return t, err
	}
	large, err := loopCPS(500)
	if err != nil {
		return t, err
	}
	if large-small > 4 {
		t.Violationf("CPS countdown loop not constant: S(10)=%d S(500)=%d", small, large)
	}
	t.Notef(fmt.Sprintf("CPS countdown under Z_tail: S(10)=%d, S(500)=%d — conversion preserves O(1)", small, large))
	t.Notef("all remaining non-tail calls in CPS output are direct applications of standard procedures")
	t.Notef("programs using `apply` are skipped (a CPS compiler open-codes it; see internal/cps)")
	return t, nil
}

func cpsConvertible(name string) bool {
	switch name {
	case "apply-spread", "fold-apply", "metacircular", "metacircular-tail-loop":
		return false
	}
	return true
}
