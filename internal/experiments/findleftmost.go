package experiments

import (
	"fmt"

	"tailspace/internal/core"
	"tailspace/internal/space"
)

// FindLeftmost reproduces the Section 4 claim: the space required by
// find-leftmost is independent of the number of right edges in the tree and
// proportional to the maximal number of left edges on any root-to-leaf path.
//
// Both probe trees have exactly n interior nodes (identical store cost), so
// the difference between the left-spine and right-spine peaks isolates the
// cost of the search strategy: it must grow linearly (the chain of failure
// continuations along left edges), while the right-spine peak minus the tree
// cost stays bounded — "if every left child is a leaf, then find-leftmost
// runs in constant space, no matter how large the tree."
func FindLeftmost(ns []int) (Table, error) {
	if len(ns) == 0 {
		ns = []int{16, 32, 64, 128}
	}
	t := Table{
		Title:  "Section 4: find-leftmost space vs tree shape (Z_tail, flat space)",
		Header: append([]string{"series"}, nsHeader(ns)...),
	}
	t.Header = append(t.Header, "fit")

	right, err := SweepProgram("right-spine", FindLeftmostProgram("right-spine"), core.Tail, ns, SweepOptions{Model: space.Fixnum, FlatOnly: true})
	if err != nil {
		return t, err
	}
	left, err := SweepProgram("left-spine", FindLeftmostProgram("left-spine"), core.Tail, ns, SweepOptions{Model: space.Fixnum, FlatOnly: true})
	if err != nil {
		return t, err
	}
	t.Absorb(right.Metrics)
	t.Absorb(left.Metrics)

	rowFor := func(label string, peaks []int) {
		row := []string{label}
		for _, p := range peaks {
			row = append(row, itoa(p))
		}
		row = append(row, fmt.Sprintf("n^%.2f", FitGrowth(ns, peaks).Exponent))
		t.Rows = append(t.Rows, row)
	}
	rowFor("right-spine S(n)", right.FlatPeaks())
	rowFor("left-spine  S(n)", left.FlatPeaks())

	delta := make([]int, len(ns))
	for i := range ns {
		delta[i] = left.Points[i].Flat - right.Points[i].Flat
		if delta[i] <= 0 {
			delta[i] = 1
		}
	}
	rowFor("left - right", delta)

	// The left-spine search must cost asymptotically more than the
	// right-spine search over trees of identical size.
	deltaFit := FitGrowth(ns, delta)
	if deltaFit.Class() == Constant {
		t.Violationf("left-depth cost should grow with n, fitted %s", deltaFit)
	}
	// Right-spine search overhead is bounded: the per-node gap between the
	// two shapes' peaks at the largest n must come from the left chain, and
	// the right-spine curve must track the tree cost alone. We check that
	// the right-spine slope does not exceed the pure tree cost by comparing
	// against a build-only baseline.
	buildOnly := findLeftmostDefs + `
(define (build d)
  (if (zero? d) 0 (cons 1 (build (- d 1)))))
(define (f n) (begin (build n) 0))`
	base, err := SweepProgram("build-only", buildOnly, core.Tail, ns, SweepOptions{Model: space.Fixnum, FlatOnly: true})
	if err != nil {
		return t, err
	}
	overhead := make([]int, len(ns))
	for i := range ns {
		overhead[i] = right.Points[i].Flat - base.Points[i].Flat
		if overhead[i] <= 0 {
			overhead[i] = 1
		}
	}
	rowFor("right - build-only", overhead)
	if f := FitGrowth(ns, overhead); f.Class() != Constant {
		t.Violationf("right-spine search overhead should be O(1), fitted %s", f)
	}
	t.Notef("both tree shapes hold n interior nodes, so the store cost of the input is identical")
	return t, nil
}
