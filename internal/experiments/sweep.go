package experiments

import (
	"fmt"

	"tailspace/internal/core"
	"tailspace/internal/obs"
	"tailspace/internal/space"
)

// SeriesPoint is one measurement: program applied to (quote N).
type SeriesPoint struct {
	N         int
	Flat      int // |P| + peak Figure 7 space: the S_X(P, N) sample
	Linked    int // |P| + peak Figure 8 space: the U_X(P, N) sample
	Heap      int // peak live locations
	Steps     int
	ContDepth int
}

// Series is a sweep of one program under one variant across inputs.
type Series struct {
	Label   string
	Variant core.Variant
	Points  []SeriesPoint
	// Metrics aggregates the per-run registries across the sweep: counters
	// (transitions by rule, GC work, allocations) sum over the inputs, gauges
	// (peaks) take the maximum.
	Metrics *obs.Metrics
}

// Ns returns the swept input sizes.
func (s Series) Ns() []int {
	out := make([]int, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.N
	}
	return out
}

// FlatPeaks returns the S_X samples.
func (s Series) FlatPeaks() []int {
	out := make([]int, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Flat
	}
	return out
}

// LinkedPeaks returns the U_X samples.
func (s Series) LinkedPeaks() []int {
	out := make([]int, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Linked
	}
	return out
}

// FitFlat fits the growth of S_X against N.
func (s Series) FitFlat() Fit { return FitGrowth(s.Ns(), s.FlatPeaks()) }

// FitLinked fits the growth of U_X against N.
func (s Series) FitLinked() Fit { return FitGrowth(s.Ns(), s.LinkedPeaks()) }

// SweepOptions configures a sweep.
type SweepOptions struct {
	// Model is the space cost model for the sweep (nil means the default
	// WordModel); the package-wide SetCostModel override, when installed,
	// wins over it.
	Model    space.CostModel
	MaxSteps int
	Order    core.ArgOrder
	// FlatOnly skips the linked (Figure 8) measurement when only S_X is
	// being fitted.
	FlatOnly bool
}

// SweepProgram measures one fixed program applied to each (quote N).
func SweepProgram(label, programSrc string, v core.Variant, ns []int, opts SweepOptions) (Series, error) {
	return sweep(label, func(int) string { return programSrc }, v, ns, opts)
}

// SweepGenerated measures a program family P_N (the program text may depend
// on N, as in Theorem 26) applied to (quote N).
func SweepGenerated(label string, gen func(n int) string, v core.Variant, ns []int, opts SweepOptions) (Series, error) {
	return sweep(label, gen, v, ns, opts)
}

func sweep(label string, gen func(n int) string, v core.Variant, ns []int, opts SweepOptions) (Series, error) {
	s := Series{Label: label, Variant: v}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 5_000_000
	}
	// Each input size is an independent run with its own store and meter, so
	// the sweep fans out over the shared worker pool; points land in input
	// order and the per-run metric registries are merged afterwards.
	points := make([]SeriesPoint, len(ns))
	metrics := make([]*obs.Metrics, len(ns))
	err := runGrid(len(ns), func(i int) error {
		n := ns[i]
		res, err := core.RunApplication(gen(n), fmt.Sprintf("(quote %d)", n), core.Options{
			Variant:   v,
			Measure:   true,
			FlatOnly:  opts.FlatOnly,
			GCEvery:   1,
			MaxSteps:  maxSteps,
			CostModel: expModel(opts.Model),
			Order:     opts.Order,
			Backend:   expBackend(),
			Cancel:    cancelChan(),
		})
		if err != nil {
			return fmt.Errorf("%s [%s] n=%d: %w", label, v, n, err)
		}
		if res.Err != nil {
			return fmt.Errorf("%s [%s] n=%d: %w", label, v, n, res.Err)
		}
		points[i] = SeriesPoint{
			N: n, Flat: res.PeakFlat, Linked: res.PeakLinked,
			Heap: res.PeakHeap, Steps: res.Steps, ContDepth: res.PeakContDepth,
		}
		metrics[i] = res.Metrics
		return nil
	})
	if err != nil {
		return s, err
	}
	s.Points = points
	s.Metrics = obs.NewMetrics()
	for _, m := range metrics {
		s.Metrics.Merge(m)
	}
	return s, nil
}
