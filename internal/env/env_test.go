package env

import (
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	e := Empty()
	if e.Size() != 0 || !e.IsEmpty() {
		t.Fatal("empty env should have size 0")
	}
	if _, ok := e.Lookup("x"); ok {
		t.Fatal("empty env should not resolve x")
	}
}

func TestExtendAndLookup(t *testing.T) {
	e := Empty().Extend([]string{"x", "y"}, []Location{1, 2})
	if l, ok := e.Lookup("x"); !ok || l != 1 {
		t.Fatalf("x -> %v %v", l, ok)
	}
	if l, ok := e.Lookup("y"); !ok || l != 2 {
		t.Fatalf("y -> %v %v", l, ok)
	}
	if e.Size() != 2 {
		t.Fatalf("size = %d", e.Size())
	}
}

func TestExtendShadows(t *testing.T) {
	e := Empty().Extend([]string{"x"}, []Location{1})
	e2 := e.Extend([]string{"x"}, []Location{9})
	if l, _ := e2.Lookup("x"); l != 9 {
		t.Fatalf("shadowed x = %v", l)
	}
	// The original environment is unchanged (persistence).
	if l, _ := e.Lookup("x"); l != 1 {
		t.Fatalf("original x = %v", l)
	}
	if e2.Size() != 1 {
		t.Fatalf("shadowing must not grow the domain: %d", e2.Size())
	}
}

func TestExtendMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Empty().Extend([]string{"x"}, nil)
}

func TestRestrict(t *testing.T) {
	e := Empty().Extend([]string{"a", "b", "c"}, []Location{1, 2, 3})
	r := e.Restrict(map[string]struct{}{"a": {}, "c": {}, "zz": {}})
	if r.Size() != 2 {
		t.Fatalf("size = %d", r.Size())
	}
	if _, ok := r.Lookup("b"); ok {
		t.Fatal("b should be gone")
	}
	if l, ok := r.Lookup("c"); !ok || l != 3 {
		t.Fatal("c should survive")
	}
}

func TestRestrictTo(t *testing.T) {
	e := Empty().Extend([]string{"a", "b"}, []Location{1, 2})
	r := e.RestrictTo("b")
	if r.Size() != 1 {
		t.Fatalf("size = %d", r.Size())
	}
}

func TestDomainSorted(t *testing.T) {
	e := Empty().Extend([]string{"z", "a", "m"}, []Location{1, 2, 3})
	d := e.Domain()
	if len(d) != 3 || d[0] != "a" || d[1] != "m" || d[2] != "z" {
		t.Fatalf("domain = %v", d)
	}
}

func TestGraphAndLocations(t *testing.T) {
	e := Empty().Extend([]string{"x", "y"}, []Location{7, 7})
	g := e.Graph()
	if len(g) != 2 {
		t.Fatalf("graph = %v", g)
	}
	locs := e.Locations()
	if len(locs) != 2 || locs[0] != 7 || locs[1] != 7 {
		t.Fatalf("locations = %v", locs)
	}
}

func TestFromBindings(t *testing.T) {
	e := FromBindings(Binding{"x", 1}, Binding{"x", 2})
	if l, _ := e.Lookup("x"); l != 2 {
		t.Fatalf("later binding should win: %v", l)
	}
}

func TestPropertyRestrictShrinks(t *testing.T) {
	f := func(names []string, keepNames []string) bool {
		locs := make([]Location, len(names))
		for i := range locs {
			locs[i] = Location(i)
		}
		e := Empty().Extend(names, locs)
		keep := make(map[string]struct{})
		for _, k := range keepNames {
			keep[k] = struct{}{}
		}
		r := e.Restrict(keep)
		if r.Size() > e.Size() {
			return false
		}
		// Every surviving binding agrees with the original.
		ok := true
		r.Each(func(name string, loc Location) {
			orig, found := e.Lookup(name)
			if !found || orig != loc {
				ok = false
			}
			if _, inKeep := keep[name]; !inKeep {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyExtendLookup(t *testing.T) {
	f := func(base []string, add []string) bool {
		baseLocs := make([]Location, len(base))
		for i := range baseLocs {
			baseLocs[i] = Location(i)
		}
		addLocs := make([]Location, len(add))
		for i := range addLocs {
			addLocs[i] = Location(1000 + i)
		}
		e := Empty().Extend(base, baseLocs).Extend(add, addLocs)
		// Every added name resolves to its last-added location.
		last := make(map[string]Location)
		for i, n := range add {
			last[n] = addLocs[i]
		}
		for n, want := range last {
			if got, ok := e.Lookup(n); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
