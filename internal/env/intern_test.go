package env

import (
	"math/rand"
	"sort"
	"testing"
)

// TestInternedLookupMatchesMapReference drives randomized Extend/Restrict
// chains — drawn from a small name pool so shadowing is frequent — against a
// plain map-of-strings model of the finite-map semantics. Every historical
// environment is re-checked after every operation (persistence: extending a
// chain must not disturb any environment that shares its ribs), and each
// check crosses the full API: string Lookup, interned LookupSym, Size,
// Domain, EachSym visit-once iteration, and the Locations root multiset.
func TestInternedLookupMatchesMapReference(t *testing.T) {
	pool := []string{"a", "b", "c", "d", "e", "f", "x", "y", "z", "shadow"}
	rng := rand.New(rand.NewSource(0x5eed))
	type snap struct {
		e   Env
		ref map[string]Location
	}
	var nextLoc Location
	for trial := 0; trial < 100; trial++ {
		e := Empty()
		ref := map[string]Location{}
		history := []snap{{e, ref}}
		for op := 0; op < 30; op++ {
			switch rng.Intn(4) {
			case 0, 1: // Extend with 1–3 names, duplicates allowed
				n := 1 + rng.Intn(3)
				names := make([]string, n)
				locs := make([]Location, n)
				for i := range names {
					names[i] = pool[rng.Intn(len(pool))]
					nextLoc++
					locs[i] = nextLoc
				}
				e = e.Extend(names, locs)
				next := make(map[string]Location, len(ref)+n)
				for k, v := range ref {
					next[k] = v
				}
				for i, name := range names {
					next[name] = locs[i]
				}
				ref = next
			case 2: // Restrict to a random subset of the pool
				keep := make([]string, 0, len(pool))
				for _, name := range pool {
					if rng.Intn(2) == 0 {
						keep = append(keep, name)
					}
				}
				e = e.RestrictTo(keep...)
				next := map[string]Location{}
				for _, name := range keep {
					if l, ok := ref[name]; ok {
						next[name] = l
					}
				}
				ref = next
			case 3: // RestrictSyms with duplicates in the keep list
				name := pool[rng.Intn(len(pool))]
				e = e.RestrictSyms([]Symbol{Intern(name), Intern(name)})
				next := map[string]Location{}
				if l, ok := ref[name]; ok {
					next[name] = l
				}
				ref = next
			}
			history = append(history, snap{e, ref})
		}
		// Persistence: every snapshot must still agree with its model.
		for i, s := range history {
			checkEnvAgainst(t, trial, i, s.e, s.ref, pool)
			if t.Failed() {
				return
			}
		}
	}
}

func checkEnvAgainst(t *testing.T, trial, step int, e Env, ref map[string]Location, pool []string) {
	t.Helper()
	if e.Size() != len(ref) {
		t.Errorf("trial %d step %d: Size=%d want %d", trial, step, e.Size(), len(ref))
	}
	for _, name := range pool {
		wantLoc, wantOK := ref[name]
		gotLoc, gotOK := e.Lookup(name)
		if gotOK != wantOK || (wantOK && gotLoc != wantLoc) {
			t.Errorf("trial %d step %d: Lookup(%q)=(%d,%v) want (%d,%v)",
				trial, step, name, gotLoc, gotOK, wantLoc, wantOK)
		}
		gotLoc, gotOK = e.LookupSym(Intern(name))
		if gotOK != wantOK || (wantOK && gotLoc != wantLoc) {
			t.Errorf("trial %d step %d: LookupSym(%q)=(%d,%v) want (%d,%v)",
				trial, step, name, gotLoc, gotOK, wantLoc, wantOK)
		}
	}
	visited := map[string]Location{}
	e.EachSym(func(s Symbol, loc Location) {
		name := SymbolName(s)
		if prev, dup := visited[name]; dup {
			t.Errorf("trial %d step %d: EachSym visited %q twice (%d, %d)", trial, step, name, prev, loc)
		}
		visited[name] = loc
	})
	if len(visited) != len(ref) {
		t.Errorf("trial %d step %d: EachSym visited %d bindings, want %d", trial, step, len(visited), len(ref))
	}
	for name, loc := range ref {
		if visited[name] != loc {
			t.Errorf("trial %d step %d: EachSym %q=%d want %d", trial, step, name, visited[name], loc)
		}
	}
	wantLocs := make([]Location, 0, len(ref))
	for _, l := range ref {
		wantLocs = append(wantLocs, l)
	}
	gotLocs := e.Locations()
	sort.Slice(wantLocs, func(i, j int) bool { return wantLocs[i] < wantLocs[j] })
	sort.Slice(gotLocs, func(i, j int) bool { return gotLocs[i] < gotLocs[j] })
	if len(gotLocs) != len(wantLocs) {
		t.Errorf("trial %d step %d: Locations len=%d want %d", trial, step, len(gotLocs), len(wantLocs))
		return
	}
	for i := range gotLocs {
		if gotLocs[i] != wantLocs[i] {
			t.Errorf("trial %d step %d: Locations[%d]=%d want %d", trial, step, i, gotLocs[i], wantLocs[i])
			return
		}
	}
}

// TestSymbolInternBasics pins the intern table's contract: stability,
// round-tripping, and the invalid zero symbol.
func TestSymbolInternBasics(t *testing.T) {
	a1 := Intern("intern-basics-a")
	a2 := Intern("intern-basics-a")
	b := Intern("intern-basics-b")
	if a1 == 0 || b == 0 {
		t.Fatal("Intern returned the invalid zero symbol")
	}
	if a1 != a2 {
		t.Errorf("Intern not stable: %d vs %d", a1, a2)
	}
	if a1 == b {
		t.Errorf("distinct spellings share symbol %d", a1)
	}
	if SymbolName(a1) != "intern-basics-a" {
		t.Errorf("SymbolName round-trip: got %q", SymbolName(a1))
	}
	if n := NumSymbols(); n <= int(a1) || n <= int(b) {
		t.Errorf("NumSymbols=%d does not bound interned symbols %d, %d", n, a1, b)
	}
	if _, ok := symbolOf("intern-basics-never-interned"); ok {
		t.Error("symbolOf invented a symbol for an unseen spelling")
	}
	if symbolOf2, ok := symbolOf("intern-basics-a"); !ok || symbolOf2 != a1 {
		t.Errorf("symbolOf(%q)=(%d,%v), want (%d,true)", "intern-basics-a", symbolOf2, ok, a1)
	}
}
