package env

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Symbol is an interned identifier: a small dense integer standing for one
// identifier spelling. The zero Symbol is invalid ("not interned"), so a
// zero-valued AST field can be detected and lazily interned by evaluators
// that receive syntax built without the expander.
//
// Interning is global and append-only: a spelling keeps its Symbol for the
// life of the process, so symbols can be compared, stored in continuations,
// and used as slice indices without ever touching the string table on the
// hot path.
type Symbol uint32

// symtab is the process-wide intern table. Writes (new spellings) take the
// mutex; reads go through an atomically published snapshot so SymbolName and
// symbolOf never contend with each other.
var symtab = struct {
	mu  sync.Mutex
	ids atomic.Pointer[map[string]Symbol]
	// names[s] is the spelling of Symbol s; names[0] is the invalid symbol.
	names atomic.Pointer[[]string]
}{}

func init() {
	ids := make(map[string]Symbol)
	names := []string{""}
	symtab.ids.Store(&ids)
	symtab.names.Store(&names)
}

// Intern returns the Symbol for name, creating one on first use.
func Intern(name string) Symbol {
	if s, ok := (*symtab.ids.Load())[name]; ok {
		return s
	}
	symtab.mu.Lock()
	defer symtab.mu.Unlock()
	oldIDs := *symtab.ids.Load()
	if s, ok := oldIDs[name]; ok {
		return s
	}
	// Copy-on-write: readers hold immutable snapshots, so a new spelling
	// publishes fresh map and slice headers instead of mutating in place.
	oldNames := *symtab.names.Load()
	s := Symbol(len(oldNames))
	ids := make(map[string]Symbol, len(oldIDs)+1)
	for k, v := range oldIDs {
		ids[k] = v
	}
	ids[name] = s
	names := make([]string, len(oldNames)+1)
	copy(names, oldNames)
	names[s] = name
	symtab.ids.Store(&ids)
	symtab.names.Store(&names)
	return s
}

// InternAll interns every name.
func InternAll(names []string) []Symbol {
	out := make([]Symbol, len(names))
	for i, n := range names {
		out[i] = Intern(n)
	}
	return out
}

// symbolOf resolves a spelling without creating a Symbol; ok is false when
// the spelling was never interned (so it cannot be bound in any Env).
func symbolOf(name string) (Symbol, bool) {
	s, ok := (*symtab.ids.Load())[name]
	return s, ok
}

// SymbolName returns the spelling of s.
func SymbolName(s Symbol) string {
	names := *symtab.names.Load()
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("sym#%d", uint32(s))
}

// NumSymbols reports how many symbols have been interned (plus one for the
// invalid zero symbol) — the exclusive upper bound of every valid Symbol,
// usable for sizing dense per-symbol scratch tables.
func NumSymbols() int {
	return len(*symtab.names.Load())
}
