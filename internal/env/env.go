// Package env implements the environments ρ of the paper's Figure 4:
// finite functions from identifiers to store locations.
//
// Environments are persistent, which makes |Dom ρ| the honest
// flat-environment charge of Figure 7: every configuration that mentions ρ
// pays for all of its bindings. The linked-environment accounting of
// Figure 8 instead unions graph(ρ) across the whole configuration; EachSym
// iteration supports that.
//
// The representation is a chain of slice-backed ribs keyed by interned
// Symbols: Extend pushes one rib (O(new bindings), sharing the parent chain
// with the original), Lookup scans ribs newest-first comparing integers, and
// |Dom ρ| is cached per rib so Size stays O(1). The chain depth follows
// lexical nesting — a closure extends its *defining* environment — so rib
// scans stay short even in deep recursions. Iteration must skip shadowed
// entries (a rib never erases its parents), which keeps Locations and the
// Figure 8 binding graph identical to the semantics' finite-map reading.
package env

import "sort"

// Location is a store address α.
type Location int

// Binding is one element of graph(ρ): an (identifier, location) pair.
type Binding struct {
	Name string
	Loc  Location
}

// rib is one extension frame: parallel symbol/location slices plus the
// cached domain size of the whole chain. Ribs are immutable once built.
type rib struct {
	syms []Symbol
	locs []Location
	up   *rib
	// size caches |Dom ρ| for the chain ending at this rib — the rib-size
	// accounting behind Figure 7's 1+|Dom ρ| frame charges. Meters price
	// every environment of every configuration on every transition, so the
	// charge must stay O(1) even though the backing representation is linked.
	size int
	// entries counts the chain's total rib entries, shadowed included; it
	// bounds iteration scratch.
	entries int
}

// Env is a finite map from identifiers to locations. The zero value is the
// empty environment. Env is comparable; two equal Envs share one rib chain
// and therefore bind identically (the converse does not hold).
type Env struct {
	r *rib
}

// Empty returns the empty environment { }.
func Empty() Env { return Env{} }

// FromBindings builds an environment from bindings; later entries shadow
// earlier ones.
func FromBindings(bs ...Binding) Env {
	syms := make([]Symbol, len(bs))
	locs := make([]Location, len(bs))
	for i, b := range bs {
		syms[i] = Intern(b.Name)
		locs[i] = b.Loc
	}
	return Env{}.ExtendSyms(syms, locs)
}

// Lookup returns ρ(I) and reports whether I ∈ Dom ρ. The spelling is
// resolved against the intern table without growing it; prefer LookupSym
// with a pre-interned Symbol on hot paths.
func (e Env) Lookup(name string) (Location, bool) {
	s, ok := symbolOf(name)
	if !ok {
		return 0, false
	}
	return e.LookupSym(s)
}

// LookupSym returns ρ(I) for an interned identifier. Within a rib, later
// entries shadow earlier ones; newer ribs shadow older ones.
func (e Env) LookupSym(s Symbol) (Location, bool) {
	for r := e.r; r != nil; r = r.up {
		for i := len(r.syms) - 1; i >= 0; i-- {
			if r.syms[i] == s {
				return r.locs[i], true
			}
		}
	}
	return 0, false
}

// Extend returns ρ[I1...In ↦ β1...βn]. It panics if the slices disagree in
// length; callers check arity first.
func (e Env) Extend(names []string, locs []Location) Env {
	if len(names) != len(locs) {
		panic("env: Extend with mismatched names and locations")
	}
	return e.ExtendSyms(InternAll(names), locs)
}

// ExtendSyms is Extend for pre-interned identifiers. The rib takes ownership
// of both slices; callers must not mutate them afterwards.
func (e Env) ExtendSyms(syms []Symbol, locs []Location) Env {
	if len(syms) != len(locs) {
		panic("env: Extend with mismatched names and locations")
	}
	if len(syms) == 0 {
		return e
	}
	size, entries := 0, len(syms)
	if e.r != nil {
		size, entries = e.r.size, e.r.entries+len(syms)
	}
	// Count the genuinely new identifiers: a name already bound below, or
	// repeated later in this same rib, does not grow |Dom ρ|.
fresh:
	for i, s := range syms {
		for j := i + 1; j < len(syms); j++ {
			if syms[j] == s {
				continue fresh
			}
		}
		if _, bound := e.LookupSym(s); !bound {
			size++
		}
	}
	return Env{r: &rib{syms: syms, locs: locs, up: e.r, size: size, entries: entries}}
}

// Restrict returns ρ | keep, the environment restricted to the identifiers
// in keep. Any map whose keys are identifiers works as the set.
func (e Env) Restrict(keep map[string]struct{}) Env {
	var syms []Symbol
	var locs []Location
	e.EachSym(func(s Symbol, l Location) {
		if _, ok := keep[SymbolName(s)]; ok {
			syms = append(syms, s)
			locs = append(locs, l)
		}
	})
	return flatEnv(syms, locs)
}

// RestrictSyms returns ρ restricted to the given identifiers (duplicates
// tolerated). It is the hot-path restriction the safe-for-space machines
// perform on every continuation they build: O(|keep| · rib scan), and the
// result is a single flat rib.
func (e Env) RestrictSyms(keep []Symbol) Env {
	syms := make([]Symbol, 0, len(keep))
	locs := make([]Location, 0, len(keep))
dedup:
	for i, s := range keep {
		for j := 0; j < i; j++ {
			if keep[j] == s {
				continue dedup
			}
		}
		if l, ok := e.LookupSym(s); ok {
			syms = append(syms, s)
			locs = append(locs, l)
		}
	}
	return flatEnv(syms, locs)
}

// RestrictToSym returns ρ | {I} for a single interned identifier.
func (e Env) RestrictToSym(s Symbol) Env {
	l, ok := e.LookupSym(s)
	if !ok {
		return Env{}
	}
	return flatEnv([]Symbol{s}, []Location{l})
}

// RestrictTo returns ρ | {names...}.
func (e Env) RestrictTo(names ...string) Env {
	return e.RestrictSyms(InternAll(names))
}

// flatEnv wraps already-deduplicated parallel slices as a single-rib Env.
func flatEnv(syms []Symbol, locs []Location) Env {
	if len(syms) == 0 {
		return Env{}
	}
	return Env{r: &rib{syms: syms, locs: locs, size: len(syms), entries: len(syms)}}
}

// Flat wraps parallel slices as a single flat-rib environment, exactly the
// shape RestrictSyms builds, for callers — the compiled backend's capture
// plans — that established at compile time that the identifiers are already
// distinct. The rib takes ownership of both slices; they must not be mutated
// afterwards (sharing one immutable syms slice across many environments is
// fine and is the point).
func Flat(syms []Symbol, locs []Location) Env {
	if len(syms) != len(locs) {
		panic("env: Flat with mismatched identifiers and locations")
	}
	return flatEnv(syms, locs)
}

// ExtendSized is ExtendSyms for callers that already know how many of the
// identifiers are genuinely new: fresh must equal the number of syms that are
// neither bound below e nor repeated later in the rib — the quantity
// ExtendSyms derives with a lookup per identifier. The compiled backend
// computes it once per lambda at compile time; passing a wrong count corrupts
// the |Dom ρ| account that Figure 7 charges.
func (e Env) ExtendSized(syms []Symbol, locs []Location, fresh int) Env {
	if len(syms) != len(locs) {
		panic("env: Extend with mismatched names and locations")
	}
	if len(syms) == 0 {
		return e
	}
	size, entries := fresh, len(syms)
	if e.r != nil {
		size, entries = e.r.size+fresh, e.r.entries+len(syms)
	}
	return Env{r: &rib{syms: syms, locs: locs, up: e.r, size: size, entries: entries}}
}

// LocAt returns the location at rib coordinates (depth, index): entry index
// of the depth-th rib from the top of the chain. It is the run-time half of
// the compiled backend's lexical addressing — the compiler guarantees the
// coordinates against the environment's statically known shape, so no
// identifier comparison happens here. Out-of-shape coordinates panic (a
// compiler bug, not a program error).
func (e Env) LocAt(depth, index int) Location {
	r := e.r
	for ; depth > 0; depth-- {
		r = r.up
	}
	return r.locs[index]
}

// Size is |Dom ρ|, the flat-environment space charge, read from the cached
// rib-size account (O(1), representation-independent).
func (e Env) Size() int {
	if e.r == nil {
		return 0
	}
	return e.r.size
}

// IsEmpty reports whether ρ = { }.
func (e Env) IsEmpty() bool { return e.Size() == 0 }

// EachSym calls f on every binding in ρ exactly once per identifier in Dom ρ
// (the visible binding; shadowed rib entries are skipped). Iteration order is
// unspecified.
func (e Env) EachSym(f func(s Symbol, loc Location)) {
	if e.r == nil {
		return
	}
	// Shadow-free chains (every entry a distinct identifier — the common
	// case; entries == size detects it in O(1)) iterate directly.
	if e.r.entries == e.r.size {
		for r := e.r; r != nil; r = r.up {
			for i := len(r.syms) - 1; i >= 0; i-- {
				f(r.syms[i], r.locs[i])
			}
		}
		return
	}
	// Dedup against the identifiers already visited. Rib chains are short
	// (lexical depth), so a linear scan over a stack-backed scratch beats
	// hashing; the scratch spills to the heap only past 64 entries.
	var buf [64]Symbol
	seen := buf[:0]
	for r := e.r; r != nil; r = r.up {
	entries:
		for i := len(r.syms) - 1; i >= 0; i-- {
			s := r.syms[i]
			for _, q := range seen {
				if q == s {
					continue entries
				}
			}
			seen = append(seen, s)
			f(s, r.locs[i])
		}
	}
}

// RibSet remembers rib chains already delivered through EachSymShared, so
// callers that union bindings across many environments (Figure 8's global
// binding set) can skip shared suffixes instead of re-walking them.
// The zero value is not ready; use NewRibSet.
type RibSet struct {
	seen map[*rib]bool
}

// NewRibSet returns an empty rib cache.
func NewRibSet() *RibSet { return &RibSet{seen: make(map[*rib]bool)} }

// EachSymShared is EachSym for callers accumulating a set union across many
// environments sharing one RibSet: bindings on rib chains the set has already
// delivered are skipped. Only shadow-free chains enter the cache — a rib
// reached through shadowing has hidden entries, so such chains are walked in
// full and never marked. Across any sequence of calls with the same set, the
// union of delivered bindings equals the union EachSym would deliver; only
// duplicates are elided.
func (e Env) EachSymShared(set *RibSet, f func(s Symbol, loc Location)) {
	if e.r == nil {
		return
	}
	if e.r.entries == e.r.size {
		// Every entry of every rib is visible. A marked rib implies its whole
		// upward chain was delivered when it was first walked, so stop there.
		for r := e.r; r != nil && !set.seen[r]; r = r.up {
			set.seen[r] = true
			for i := len(r.syms) - 1; i >= 0; i-- {
				f(r.syms[i], r.locs[i])
			}
		}
		return
	}
	e.EachSym(f)
}

// Each calls f on every binding in ρ (iteration order unspecified).
func (e Env) Each(f func(name string, loc Location)) {
	e.EachSym(func(s Symbol, loc Location) { f(SymbolName(s), loc) })
}

// Domain returns Dom ρ in lexical order.
func (e Env) Domain() []string {
	out := make([]string, 0, e.Size())
	e.EachSym(func(s Symbol, _ Location) { out = append(out, SymbolName(s)) })
	sort.Strings(out)
	return out
}

// AppendLocations appends Ran ρ (one location per identifier in Dom ρ, with
// duplicate locations preserved) to out; these are GC roots. The append
// contract lets callers reuse a scratch buffer across calls.
func (e Env) AppendLocations(out []Location) []Location {
	e.EachSym(func(_ Symbol, loc Location) { out = append(out, loc) })
	return out
}

// Locations returns Ran ρ (with duplicates preserved); these are GC roots.
func (e Env) Locations() []Location {
	if e.r == nil {
		return nil
	}
	return e.AppendLocations(make([]Location, 0, e.Size()))
}

// Graph returns graph(ρ) as a slice of bindings, for Figure 8 accounting.
func (e Env) Graph() []Binding {
	out := make([]Binding, 0, e.Size())
	e.EachSym(func(s Symbol, loc Location) {
		out = append(out, Binding{Name: SymbolName(s), Loc: loc})
	})
	return out
}
