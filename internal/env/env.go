// Package env implements the environments ρ of the paper's Figure 4:
// finite functions from identifiers to store locations.
//
// Environments are persistent (extension copies), which makes |Dom ρ| the
// honest flat-environment charge of Figure 7: every configuration that
// mentions ρ pays for all of its bindings. The linked-environment accounting
// of Figure 8 instead unions graph(ρ) across the whole configuration; Graph
// iteration supports that.
package env

import "sort"

// Location is a store address α.
type Location int

// Binding is one element of graph(ρ): an (identifier, location) pair.
type Binding struct {
	Name string
	Loc  Location
}

// Env is a finite map from identifiers to locations.
type Env struct {
	m map[string]Location
	// size caches |Dom ρ| at construction — the rib-size accounting behind
	// Figure 7's 1+|Dom ρ| frame charges. Meters price every environment of
	// every configuration on every transition, so the charge must stay O(1)
	// even if the backing representation moves to linked ribs.
	size int
}

// Empty returns the empty environment { }.
func Empty() Env { return Env{} }

// FromBindings builds an environment from bindings; later entries shadow
// earlier ones.
func FromBindings(bs ...Binding) Env {
	m := make(map[string]Location, len(bs))
	for _, b := range bs {
		m[b.Name] = b.Loc
	}
	return Env{m: m, size: len(m)}
}

// Lookup returns ρ(I) and reports whether I ∈ Dom ρ.
func (e Env) Lookup(name string) (Location, bool) {
	l, ok := e.m[name]
	return l, ok
}

// Extend returns ρ[I1...In ↦ β1...βn]. It panics if the slices disagree in
// length; callers check arity first.
func (e Env) Extend(names []string, locs []Location) Env {
	if len(names) != len(locs) {
		panic("env: Extend with mismatched names and locations")
	}
	m := make(map[string]Location, len(e.m)+len(names))
	for k, v := range e.m {
		m[k] = v
	}
	for i, n := range names {
		m[n] = locs[i]
	}
	return Env{m: m, size: len(m)}
}

// Restrict returns ρ | keep, the environment restricted to the identifiers
// in keep. Any map whose keys are identifiers works as the set.
func (e Env) Restrict(keep map[string]struct{}) Env {
	m := make(map[string]Location)
	for k, v := range e.m {
		if _, ok := keep[k]; ok {
			m[k] = v
		}
	}
	return Env{m: m, size: len(m)}
}

// RestrictTo returns ρ | {names...}.
func (e Env) RestrictTo(names ...string) Env {
	keep := make(map[string]struct{}, len(names))
	for _, n := range names {
		keep[n] = struct{}{}
	}
	return e.Restrict(keep)
}

// Size is |Dom ρ|, the flat-environment space charge, read from the cached
// rib-size account (O(1), representation-independent).
func (e Env) Size() int { return e.size }

// IsEmpty reports whether ρ = { }.
func (e Env) IsEmpty() bool { return len(e.m) == 0 }

// Each calls f on every binding in ρ (iteration order unspecified).
func (e Env) Each(f func(name string, loc Location)) {
	for k, v := range e.m {
		f(k, v)
	}
}

// Domain returns Dom ρ in lexical order.
func (e Env) Domain() []string {
	out := make([]string, 0, len(e.m))
	for k := range e.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Locations returns Ran ρ (with duplicates preserved); these are GC roots.
func (e Env) Locations() []Location {
	out := make([]Location, 0, len(e.m))
	for _, v := range e.m {
		out = append(out, v)
	}
	return out
}

// Graph returns graph(ρ) as a slice of bindings, for Figure 8 accounting.
func (e Env) Graph() []Binding {
	out := make([]Binding, 0, len(e.m))
	for k, v := range e.m {
		out = append(out, Binding{Name: k, Loc: v})
	}
	return out
}
