package ast

import "sort"

// VarSet is a set of identifiers.
type VarSet map[string]struct{}

// NewVarSet builds a set from names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Contains reports membership.
func (s VarSet) Contains(name string) bool {
	_, ok := s[name]
	return ok
}

// Add inserts name.
func (s VarSet) Add(name string) { s[name] = struct{}{} }

// Union returns a new set with the elements of both sets.
func (s VarSet) Union(t VarSet) VarSet {
	u := make(VarSet, len(s)+len(t))
	for k := range s {
		u[k] = struct{}{}
	}
	for k := range t {
		u[k] = struct{}{}
	}
	return u
}

// Sorted returns the members in lexical order.
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FreeVarCache memoizes FV(E) by node identity. The safe-for-space machines
// (Z_free, Z_sfs) consult it on every environment restriction, so the
// analysis must be shared rather than recomputed.
type FreeVarCache struct {
	memo map[Expr]VarSet
}

// NewFreeVarCache returns an empty cache.
func NewFreeVarCache() *FreeVarCache {
	return &FreeVarCache{memo: make(map[Expr]VarSet)}
}

// Free returns FV(e), the set of identifiers occurring free in e.
func (c *FreeVarCache) Free(e Expr) VarSet {
	if s, ok := c.memo[e]; ok {
		return s
	}
	var s VarSet
	switch x := e.(type) {
	case *Const:
		s = VarSet{}
	case *Var:
		s = NewVarSet(x.Name)
	case *Lambda:
		body := c.Free(x.Body)
		s = make(VarSet, len(body))
		for k := range body {
			s[k] = struct{}{}
		}
		for _, p := range x.Params {
			delete(s, p)
		}
	case *If:
		s = c.Free(x.Test).Union(c.Free(x.Then)).Union(c.Free(x.Else))
	case *Set:
		s = c.Free(x.Rhs).Union(NewVarSet(x.Name))
	case *Call:
		s = VarSet{}
		for _, sub := range x.Exprs {
			s = s.Union(c.Free(sub))
		}
	}
	c.memo[e] = s
	return s
}

// FreeOfAll returns the union of FV over several expressions.
func (c *FreeVarCache) FreeOfAll(exprs []Expr) VarSet {
	s := VarSet{}
	for _, e := range exprs {
		s = s.Union(c.Free(e))
	}
	return s
}

// FreeVars computes FV(e) without caching; convenience for tests and tools.
func FreeVars(e Expr) VarSet {
	return NewFreeVarCache().Free(e)
}
