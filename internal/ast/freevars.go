package ast

import (
	"sort"

	"tailspace/internal/env"
)

// VarSet is a set of identifiers.
type VarSet map[string]struct{}

// NewVarSet builds a set from names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = struct{}{}
	}
	return s
}

// Contains reports membership.
func (s VarSet) Contains(name string) bool {
	_, ok := s[name]
	return ok
}

// Add inserts name.
func (s VarSet) Add(name string) { s[name] = struct{}{} }

// Union returns a new set with the elements of both sets.
func (s VarSet) Union(t VarSet) VarSet {
	u := make(VarSet, len(s)+len(t))
	for k := range s {
		u[k] = struct{}{}
	}
	for k := range t {
		u[k] = struct{}{}
	}
	return u
}

// Sorted returns the members in lexical order.
func (s VarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FreeVarCache memoizes FV(E) by node identity. The safe-for-space machines
// (Z_free, Z_sfs) consult it on every environment restriction, so the
// analysis must be shared rather than recomputed.
type FreeVarCache struct {
	memo map[Expr]VarSet
	// symMemo caches FV(E) as a sorted slice of interned symbols — the form
	// the machines' environment restrictions consume. Callers must treat the
	// returned slices as immutable.
	symMemo map[Expr][]env.Symbol
}

// NewFreeVarCache returns an empty cache.
func NewFreeVarCache() *FreeVarCache {
	return &FreeVarCache{
		memo:    make(map[Expr]VarSet),
		symMemo: make(map[Expr][]env.Symbol),
	}
}

// Free returns FV(e), the set of identifiers occurring free in e.
func (c *FreeVarCache) Free(e Expr) VarSet {
	if s, ok := c.memo[e]; ok {
		return s
	}
	var s VarSet
	switch x := e.(type) {
	case *Const:
		s = VarSet{}
	case *Var:
		s = NewVarSet(x.Name)
	case *Lambda:
		body := c.Free(x.Body)
		s = make(VarSet, len(body))
		for k := range body {
			s[k] = struct{}{}
		}
		for _, p := range x.Params {
			delete(s, p)
		}
	case *If:
		s = c.Free(x.Test).Union(c.Free(x.Then)).Union(c.Free(x.Else))
	case *Set:
		s = c.Free(x.Rhs).Union(NewVarSet(x.Name))
	case *Call:
		s = VarSet{}
		for _, sub := range x.Exprs {
			s = s.Union(c.Free(sub))
		}
	case *Mon:
		s = c.Free(x.Ctc).Union(c.Free(x.Expr))
	}
	c.memo[e] = s
	return s
}

// FreeOfAll returns the union of FV over several expressions.
func (c *FreeVarCache) FreeOfAll(exprs []Expr) VarSet {
	s := VarSet{}
	for _, e := range exprs {
		s = s.Union(c.Free(e))
	}
	return s
}

// FreeSyms returns FV(e) as a sorted, deduplicated slice of interned
// symbols, memoized by node identity. The result is shared; callers must not
// mutate it.
func (c *FreeVarCache) FreeSyms(e Expr) []env.Symbol {
	if s, ok := c.symMemo[e]; ok {
		return s
	}
	fv := c.Free(e)
	s := make([]env.Symbol, 0, len(fv))
	for name := range fv {
		s = append(s, env.Intern(name))
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	c.symMemo[e] = s
	return s
}

// FreeSymsUnion returns FV(a) ∪ FV(b) as a sorted symbol slice. When one
// side is empty the other's memoized slice is returned as-is (do not mutate).
func (c *FreeVarCache) FreeSymsUnion(a, b Expr) []env.Symbol {
	return mergeSyms(c.FreeSyms(a), c.FreeSyms(b))
}

// FreeSymsOfAll returns the union of FV over several expressions as a
// sorted symbol slice (shared when the union is a single memoized set).
func (c *FreeVarCache) FreeSymsOfAll(exprs []Expr) []env.Symbol {
	switch len(exprs) {
	case 0:
		return nil
	case 1:
		return c.FreeSyms(exprs[0])
	}
	out := mergeSyms(c.FreeSyms(exprs[0]), c.FreeSyms(exprs[1]))
	for _, e := range exprs[2:] {
		out = mergeSyms(out, c.FreeSyms(e))
	}
	return out
}

// mergeSyms unions two sorted symbol slices; when one is empty the other is
// returned unchanged (so memoized sets flow through without copying).
func mergeSyms(a, b []env.Symbol) []env.Symbol {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]env.Symbol, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// FreeVars computes FV(e) without caching; convenience for tests and tools.
func FreeVars(e Expr) VarSet {
	return NewFreeVarCache().Free(e)
}
