package ast

import "testing"

// TestWalkImmediateSkipsDeferredBodies checks that WalkImmediate visits
// calls that run during the evaluation of an expression — including bodies
// of immediately applied lambdas — but not calls inside closures whose
// application is deferred.
func TestWalkImmediateSkipsDeferredBodies(t *testing.T) {
	deferred := &Call{Exprs: []Expr{&Var{Name: "g"}}}
	thunk := &Lambda{Params: nil, Body: deferred, Label: "thunk"}
	immediate := &Call{Exprs: []Expr{&Var{Name: "h"}}}
	redex := &Call{Exprs: []Expr{
		&Lambda{Params: []string{"x"}, Body: immediate, Label: "%let:1"},
		thunk,
	}}

	seen := map[Expr]bool{}
	WalkImmediate(redex, func(e Expr) bool {
		seen[e] = true
		return true
	})
	if !seen[redex] || !seen[thunk] || !seen[immediate] {
		t.Fatalf("WalkImmediate missed immediate nodes: redex=%v thunk=%v body=%v",
			seen[redex], seen[thunk], seen[immediate])
	}
	if seen[deferred] {
		t.Fatalf("WalkImmediate descended into a deferred lambda body")
	}
}
