// Package ast defines the internal syntax of Core Scheme from Figure 1 of
// the paper:
//
//	E ::= (quote c) | I | L | (if E0 E1 E2) | (set! I E0) | (E0 E1 ...)
//	L ::= (lambda (I1 ...) E)
//
// Constants c are restricted, as in Section 12 of the paper, to booleans,
// exact integers, symbols, characters, strings and the empty list; compound
// constants are lowered by the expander to constructor calls so that
// expressions never contain store locations.
package ast

import (
	"fmt"
	"math/big"
	"strings"

	"tailspace/internal/env"
)

// Expr is a Core Scheme expression.
type Expr interface {
	isExpr()
	// Size is the number of nodes in the abstract syntax tree, the |P| of
	// Definition 23.
	Size() int
	String() string
}

// Const is (quote c). The constant is one of the Go types bool, *big.Int,
// string-as-Symbol, rune-as-Char, string, or EmptyList.
type Const struct {
	Value ConstValue
}

// ConstValue is the value of a quoted constant.
type ConstValue interface{ isConst() }

// BoolConst is #t or #f.
type BoolConst bool

// NumConst is an exact integer.
type NumConst struct{ Int *big.Int }

// SymConst is a symbol constant.
type SymConst string

// StrConst is a string constant.
type StrConst string

// CharConst is a character constant.
type CharConst rune

// NilConst is the empty list constant '().
type NilConst struct{}

// UnspecifiedConst is the unspecified value (the expander inserts it for
// one-armed ifs and empty bodies).
type UnspecifiedConst struct{}

func (BoolConst) isConst()        {}
func (NumConst) isConst()         {}
func (SymConst) isConst()         {}
func (StrConst) isConst()         {}
func (CharConst) isConst()        {}
func (NilConst) isConst()         {}
func (UnspecifiedConst) isConst() {}

// Var is a variable reference I.
type Var struct {
	Name string
	// Sym is the interned identifier, filled by the expander (or by
	// InternSyms); zero means "not interned yet" and evaluators fall back to
	// interning the spelling on first use.
	Sym env.Symbol
}

// Lambda is (lambda (I1 ... In) E). Each Lambda carries a stable label used
// by diagnostics and by the tail-call classifier.
type Lambda struct {
	Params []string
	// ParamSyms holds the interned Params, parallel to Params; nil means
	// "not interned yet" (see Var.Sym).
	ParamSyms []env.Symbol
	Body      Expr
	// Label names the lambda for reporting: the defining variable when the
	// expander knows it, otherwise a generated name.
	Label string
}

// If is (if E0 E1 E2); the expander always supplies all three arms.
type If struct {
	Test, Then, Else Expr
}

// Set is (set! I E0).
type Set struct {
	Name string
	// Sym is the interned Name (see Var.Sym).
	Sym env.Symbol
	Rhs Expr
}

// Call is a procedure call (E0 E1 ...); Exprs[0] is the operator.
type Call struct {
	Exprs []Expr
}

// Mon is the contract-monitoring form (mon E_ctc E label): evaluate E_ctc to
// a contract, evaluate E, and attach the contract to the value. The monitor
// machine variants (naive, spaceff) enforce the contract; every other family
// member evaluates both subexpressions and returns E's value unwrapped
// (latent-contract erasure), so contracted programs stay runnable — and
// comparable — across the whole family. The expander produces Mon nodes from
// (mon ctc e) and from the (define/contract ...) sugar.
type Mon struct {
	// Ctc evaluates to the contract: a predicate procedure (a flat contract)
	// or an arrow contract built by (-> dom ... cod).
	Ctc Expr
	// Expr is the monitored expression.
	Expr Expr
	// Label names the monitored party for blame reporting: the defined
	// variable when the expander knows it, otherwise a generated name.
	Label string
}

func (*Const) isExpr()  {}
func (*Var) isExpr()    {}
func (*Lambda) isExpr() {}
func (*If) isExpr()     {}
func (*Set) isExpr()    {}
func (*Call) isExpr()   {}
func (*Mon) isExpr()    {}

// Size implementations: every syntactic node counts 1.

func (e *Const) Size() int { return 1 }
func (e *Var) Size() int   { return 1 }

func (e *Lambda) Size() int { return 1 + len(e.Params) + e.Body.Size() }

func (e *If) Size() int { return 1 + e.Test.Size() + e.Then.Size() + e.Else.Size() }

func (e *Set) Size() int { return 2 + e.Rhs.Size() }

func (e *Call) Size() int {
	n := 1
	for _, sub := range e.Exprs {
		n += sub.Size()
	}
	return n
}

func (e *Mon) Size() int { return 1 + e.Ctc.Size() + e.Expr.Size() }

// Operator returns the operator expression of a call.
func (e *Call) Operator() Expr { return e.Exprs[0] }

// Operands returns the operand expressions of a call.
func (e *Call) Operands() []Expr { return e.Exprs[1:] }

func (v UnspecifiedConst) String() string { return "#!unspecified" }

func constString(c ConstValue) string {
	switch x := c.(type) {
	case BoolConst:
		if bool(x) {
			return "#t"
		}
		return "#f"
	case NumConst:
		return x.Int.String()
	case SymConst:
		return string(x)
	case StrConst:
		return fmt.Sprintf("%q", string(x))
	case CharConst:
		return `#\` + string(rune(x))
	case NilConst:
		return "()"
	case UnspecifiedConst:
		return "#!unspecified"
	}
	return "?"
}

func (e *Const) String() string { return "(quote " + constString(e.Value) + ")" }

func (e *Var) String() string { return e.Name }

func (e *Lambda) String() string {
	return "(lambda (" + strings.Join(e.Params, " ") + ") " + e.Body.String() + ")"
}

func (e *If) String() string {
	return "(if " + e.Test.String() + " " + e.Then.String() + " " + e.Else.String() + ")"
}

func (e *Set) String() string {
	return "(set! " + e.Name + " " + e.Rhs.String() + ")"
}

func (e *Call) String() string {
	parts := make([]string, len(e.Exprs))
	for i, sub := range e.Exprs {
		parts[i] = sub.String()
	}
	return "(" + strings.Join(parts, " ") + ")"
}

func (e *Mon) String() string {
	return "(mon " + e.Ctc.String() + " " + e.Expr.String() + ")"
}

// InternSyms fills the interned-symbol fields (Var.Sym, Lambda.ParamSyms,
// Set.Sym) of every node that does not have them yet, so evaluators can
// resolve identifiers by integer comparison instead of string hashing. The
// expander interns at parse time; this pass exists for syntax built
// programmatically (the CPS converter, tests). Already-interned nodes are
// left untouched — the pass is idempotent, and on fully interned trees it
// performs no writes. Like all AST mutation it must happen before the tree
// is shared across goroutines.
func InternSyms(e Expr) {
	Walk(e, func(e Expr) bool {
		switch x := e.(type) {
		case *Var:
			if x.Sym == 0 {
				x.Sym = env.Intern(x.Name)
			}
		case *Lambda:
			if x.ParamSyms == nil && len(x.Params) > 0 {
				x.ParamSyms = env.InternAll(x.Params)
			}
		case *Set:
			if x.Sym == 0 {
				x.Sym = env.Intern(x.Name)
			}
		}
		return true
	})
}

// Walk visits every expression in e, parents before children, calling f on
// each. If f returns false the subtree below that node is not visited.
func Walk(e Expr, f func(Expr) bool) {
	if !f(e) {
		return
	}
	switch x := e.(type) {
	case *Lambda:
		Walk(x.Body, f)
	case *If:
		Walk(x.Test, f)
		Walk(x.Then, f)
		Walk(x.Else, f)
	case *Set:
		Walk(x.Rhs, f)
	case *Call:
		for _, sub := range x.Exprs {
			Walk(sub, f)
		}
	case *Mon:
		Walk(x.Ctc, f)
		Walk(x.Expr, f)
	}
}
