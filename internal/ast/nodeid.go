package ast

// Number assigns a stable ID to every node of the tree rooted at root:
// pre-order, starting at 1 (parents before children, in syntactic order).
// The IDs let diagnostics — allocation-site events, peak attribution — name
// an AST node compactly and stably across runs of the same program. All
// Expr implementations are pointers, so the map key is node identity.
func Number(root Expr) map[Expr]int {
	ids := make(map[Expr]int)
	next := 1
	Walk(root, func(e Expr) bool {
		if _, seen := ids[e]; !seen {
			ids[e] = next
			next++
		}
		return true
	})
	return ids
}
