package ast

import (
	"math/big"
	"testing"
)

func num(v int64) *Const { return &Const{Value: NumConst{Int: big.NewInt(v)}} }

func v(name string) *Var { return &Var{Name: name} }

func call(exprs ...Expr) *Call { return &Call{Exprs: exprs} }

func lam(params []string, body Expr) *Lambda { return &Lambda{Params: params, Body: body} }

func TestSizeLeaf(t *testing.T) {
	if got := num(7).Size(); got != 1 {
		t.Fatalf("const size = %d", got)
	}
	if got := v("x").Size(); got != 1 {
		t.Fatalf("var size = %d", got)
	}
}

func TestSizeComposite(t *testing.T) {
	// (lambda (x y) (if x y (quote 1)))  => 1 + 2 params + (1 + 1 + 1 + 1)
	e := lam([]string{"x", "y"}, &If{Test: v("x"), Then: v("y"), Else: num(1)})
	if got := e.Size(); got != 7 {
		t.Fatalf("size = %d, want 7", got)
	}
}

func TestSizeCallAndSet(t *testing.T) {
	// (set! x (f y)) => 2 + (1 + 1 + 1)
	e := &Set{Name: "x", Rhs: call(v("f"), v("y"))}
	if got := e.Size(); got != 5 {
		t.Fatalf("size = %d, want 5", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := &If{Test: v("p"), Then: call(v("f"), v("x")), Else: &Const{Value: BoolConst(false)}}
	want := "(if p (f x) (quote #f))"
	if got := e.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestFreeVarsVar(t *testing.T) {
	fv := FreeVars(v("x"))
	if !fv.Contains("x") || len(fv) != 1 {
		t.Fatalf("FV(x) = %v", fv.Sorted())
	}
}

func TestFreeVarsLambdaBinds(t *testing.T) {
	// (lambda (x) (f x y)) — free: f, y
	e := lam([]string{"x"}, call(v("f"), v("x"), v("y")))
	fv := FreeVars(e)
	if fv.Contains("x") {
		t.Fatal("x should be bound")
	}
	if !fv.Contains("f") || !fv.Contains("y") || len(fv) != 2 {
		t.Fatalf("FV = %v", fv.Sorted())
	}
}

func TestFreeVarsSetIncludesTarget(t *testing.T) {
	e := &Set{Name: "x", Rhs: num(1)}
	fv := FreeVars(e)
	if !fv.Contains("x") {
		t.Fatal("set! target must be free")
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// (lambda (x) (lambda (y) (x y z)))
	e := lam([]string{"x"}, lam([]string{"y"}, call(v("x"), v("y"), v("z"))))
	fv := FreeVars(e)
	if len(fv) != 1 || !fv.Contains("z") {
		t.Fatalf("FV = %v", fv.Sorted())
	}
}

func TestFreeVarCacheMemoizes(t *testing.T) {
	c := NewFreeVarCache()
	body := call(v("f"), v("x"))
	e := lam([]string{"x"}, body)
	a := c.Free(e)
	b := c.Free(e)
	if len(a) != 1 || !a.Contains("f") {
		t.Fatalf("FV = %v", a.Sorted())
	}
	// Same node must return the identical cached set.
	if &a == nil || len(b) != len(a) {
		t.Fatal("cache mismatch")
	}
	if len(c.memo) == 0 {
		t.Fatal("cache did not record results")
	}
}

func TestFreeOfAll(t *testing.T) {
	c := NewFreeVarCache()
	s := c.FreeOfAll([]Expr{v("a"), call(v("b"), v("c"))})
	if len(s) != 3 {
		t.Fatalf("got %v", s.Sorted())
	}
}

func TestVarSetOps(t *testing.T) {
	s := NewVarSet("a", "b")
	u := s.Union(NewVarSet("b", "c"))
	if len(u) != 3 {
		t.Fatalf("union = %v", u.Sorted())
	}
	got := u.Sorted()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("sorted = %v", got)
	}
}

// Tail-position tests follow Definition 1 exactly.

func TestTailLambdaBody(t *testing.T) {
	body := call(v("f"))
	e := lam(nil, body)
	info := MarkTails(e)
	if !info.IsTail(body) {
		t.Fatal("lambda body must be a tail expression")
	}
	if !info.IsTailCall(body) {
		t.Fatal("lambda body call must be a tail call")
	}
}

func TestTailIfArms(t *testing.T) {
	test := call(v("p"))
	thn := call(v("f"))
	els := call(v("g"))
	e := lam(nil, &If{Test: test, Then: thn, Else: els})
	info := MarkTails(e)
	if info.IsTail(test) {
		t.Fatal("if test must not be a tail expression")
	}
	if !info.IsTailCall(thn) || !info.IsTailCall(els) {
		t.Fatal("both if arms of a tail if are tail calls")
	}
}

func TestTailNestedIf(t *testing.T) {
	inner := call(v("f"))
	e := lam(nil, &If{
		Test: v("a"),
		Then: &If{Test: v("b"), Then: inner, Else: v("x")},
		Else: v("y"),
	})
	info := MarkTails(e)
	if !info.IsTailCall(inner) {
		t.Fatal("call in nested tail-if arm is a tail call")
	}
}

func TestNonTailPositions(t *testing.T) {
	arg := call(v("g"))
	rhs := call(v("h"))
	op := call(v("k"))
	e := lam(nil, &If{
		Test: v("p"),
		Then: call(op, arg),
		Else: &Set{Name: "x", Rhs: rhs},
	})
	info := MarkTails(e)
	for _, c := range []*Call{arg, rhs, op} {
		if info.IsTail(c) {
			t.Fatalf("%s must not be a tail expression", c)
		}
	}
}

func TestTailCallFalseForNonCall(t *testing.T) {
	body := v("x")
	e := lam(nil, body)
	info := MarkTails(e)
	if !info.IsTail(body) {
		t.Fatal("body is tail")
	}
	if info.IsTailCall(body) {
		t.Fatal("a variable is not a tail call")
	}
}

func TestIfArmsNotTailWhenIfIsNot(t *testing.T) {
	// The if sits in operand position, so its arms are not tail expressions.
	thn := call(v("f"))
	inner := &If{Test: v("p"), Then: thn, Else: v("x")}
	e := lam(nil, call(v("g"), inner))
	info := MarkTails(e)
	if info.IsTail(thn) {
		t.Fatal("arm of non-tail if must not be tail")
	}
}

func TestCallsCollector(t *testing.T) {
	e := lam(nil, &If{Test: call(v("p")), Then: call(v("f"), call(v("g"))), Else: v("x")})
	cs := Calls(e)
	if len(cs) != 3 {
		t.Fatalf("found %d calls, want 3", len(cs))
	}
}

func TestWalkPrune(t *testing.T) {
	e := lam(nil, call(v("f"), v("x")))
	var count int
	Walk(e, func(x Expr) bool {
		count++
		_, isLambda := x.(*Lambda)
		return !isLambda // prune below the lambda
	})
	if count != 1 {
		t.Fatalf("visited %d nodes, want 1", count)
	}
}

func TestMarkTailsTopLevelIsTail(t *testing.T) {
	e := call(v("f"))
	info := MarkTails(e)
	if !info.IsTailCall(e) {
		t.Fatal("top-level expression is a tail expression of the program")
	}
}
