package ast

// This file implements Definitions 1 and 2 of the paper:
//
//	Definition 1 (tail expressions):
//	  1. The body of a lambda expression is a tail expression.
//	  2. If (if E0 E1 E2) is a tail expression, then both E1 and E2 are
//	     tail expressions.
//	  3. Nothing else is a tail expression.
//
//	Definition 2: a tail call is a tail expression that is a procedure call.

// TailInfo records, for every expression node in a program, whether it is a
// tail expression of its enclosing lambda (or of the whole program).
type TailInfo struct {
	tail map[Expr]bool
}

// MarkTails computes tail positions for e. The top-level expression itself is
// treated as a tail expression of the program, matching the way a program
// body behaves as the body of an implicit lambda.
func MarkTails(e Expr) *TailInfo {
	info := &TailInfo{tail: make(map[Expr]bool)}
	info.mark(e, true)
	return info
}

func (t *TailInfo) mark(e Expr, isTail bool) {
	t.tail[e] = isTail
	switch x := e.(type) {
	case *Lambda:
		// Rule 1: the body of a lambda is a tail expression.
		t.mark(x.Body, true)
	case *If:
		// Rule 2: the arms inherit tailness; the test never does.
		t.mark(x.Test, false)
		t.mark(x.Then, isTail)
		t.mark(x.Else, isTail)
	case *Set:
		t.mark(x.Rhs, false)
	case *Call:
		// Rule 3: operator and operand positions are not tail expressions.
		for _, sub := range x.Exprs {
			t.mark(sub, false)
		}
	case *Mon:
		// The monitored expression is not a tail expression: the monitor
		// machines hold a pending attach frame while it runs, and the static
		// classifier must not promise more than the weakest family member.
		t.mark(x.Ctc, false)
		t.mark(x.Expr, false)
	}
}

// IsTail reports whether e is a tail expression.
func (t *TailInfo) IsTail(e Expr) bool { return t.tail[e] }

// IsTailCall reports whether e is a tail call (Definition 2).
func (t *TailInfo) IsTailCall(e Expr) bool {
	_, isCall := e.(*Call)
	return isCall && t.tail[e]
}

// Calls returns every call expression in e in syntax order.
func Calls(e Expr) []*Call {
	var out []*Call
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*Call); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}
