package ast

// WalkImmediate visits the expressions of e that evaluate during the
// evaluation of e itself: it walks like Walk but does not descend into
// Lambda bodies, whose evaluation is deferred until the closure is applied —
// with one exception: the body of an immediately applied lambda
// ((lambda ...) args), which does run as part of evaluating the redex. The
// expander's let/letrec/begin plumbing is exactly such redexes, so their
// bodies are correctly treated as immediate code. The static leak analyses
// use this walk to ask "which calls run *now*, while this continuation (and
// its environment) is live?" — code inside an operand lambda does not run
// now, so it must not count. If f returns false the subtree below that node
// is skipped.
func WalkImmediate(e Expr, f func(Expr) bool) {
	if !f(e) {
		return
	}
	switch x := e.(type) {
	case *Lambda:
		// Deferred: the body runs in a later activation.
	case *If:
		WalkImmediate(x.Test, f)
		WalkImmediate(x.Then, f)
		WalkImmediate(x.Else, f)
	case *Set:
		WalkImmediate(x.Rhs, f)
	case *Call:
		for _, sub := range x.Exprs {
			WalkImmediate(sub, f)
		}
		if lam, ok := x.Operator().(*Lambda); ok {
			WalkImmediate(lam.Body, f)
		}
	case *Mon:
		// Both subexpressions evaluate as part of evaluating the mon form
		// itself; only a lambda literal inside them defers.
		WalkImmediate(x.Ctc, f)
		WalkImmediate(x.Expr, f)
	}
}
