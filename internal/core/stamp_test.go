package core

import (
	"testing"

	"tailspace/internal/obs"
)

// TestTraceIDStampsEveryEvent: with Options.TraceID set, every event of
// the run — transitions, GCs, allocations, peaks — carries the trace ID,
// tying the engine stream to the serving request that started the run.
func TestTraceIDStampsEveryEvent(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	res := measure(t, Tail, countdownLoop, 20, func(o *Options) {
		o.Events = ring
		o.TraceID = "req-42"
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("no events emitted")
	}
	kinds := map[obs.EventType]int{}
	for i, e := range events {
		if e.Trace != "req-42" {
			t.Fatalf("event %d (%s) has trace %q, want req-42", i, e.Type, e.Trace)
		}
		kinds[e.Type]++
	}
	if kinds[obs.EventTransition] == 0 || kinds[obs.EventGC] == 0 {
		t.Fatalf("event mix %v lacks transitions or GCs", kinds)
	}
}

// TestEmptyTraceIDLeavesEventsUnstamped: the default (no trace) emits
// events with an empty Trace field, byte-identical to pre-tracing JSONL.
func TestEmptyTraceIDLeavesEventsUnstamped(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	res := measure(t, Tail, countdownLoop, 10, func(o *Options) { o.Events = ring })
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i, e := range ring.Events() {
		if e.Trace != "" {
			t.Fatalf("event %d has unexpected trace %q", i, e.Trace)
		}
	}
}
