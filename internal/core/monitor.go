package core

import (
	"tailspace/internal/value"
)

// This file implements the contract-monitoring rules shared by the naive and
// space-efficient machines. The discipline follows the latent higher-order
// contract semantics: (mon ctc e) evaluates the contract, then the
// expression, and wraps procedure values in a Guarded carrying the arrow
// contract. A guarded call checks its arguments against the domain contracts
// (wrapping higher-order arguments in place, negative position) and applies
// the underlying procedure with the codomain check pending in a mon-cod
// frame. The naive machine pushes a fresh mon-cod frame per guarded call;
// the space-efficient machine joins into an adjacent mon-cod frame and
// drops duplicate pending checks by contract identity, which is exactly
// what bounds its space on contracted tail loops.

// monApplyDoms checks a guarded call's arguments against the arrow's domain
// contracts starting at index idx: arrow domains wrap procedure arguments in
// place, flat domains apply their predicate under a mon-dom continuation
// that resumes at the next index. When every domain is satisfied the
// underlying procedure is applied with the codomain check pending.
func (m *Machine) monApplyDoms(s State, g value.Guarded, args []value.Value, idx int, k value.Cont) (State, bool, error) {
	ctc := g.Ctc
	for i := idx; i < len(args); i++ {
		switch d := ctc.Dom[i].(type) {
		case *value.ArrowContract:
			if !value.IsProcedure(args[i]) {
				return s, false, m.stuck(
					"contract violation: argument %d of %s must be a procedure (blaming the caller of %s)",
					i+1, g.Label, g.Label)
			}
			tag := m.store.Alloc(value.Unspecified{})
			args[i] = value.Guarded{Tag: tag, Proc: args[i], Ctc: d, Label: g.Label + "|neg"}
		default:
			if !value.IsProcedure(d) {
				return s, false, m.stuck("mon: %T is not a contract", d)
			}
			dk := &value.MonDom{G: g, Args: args, Idx: i, K: k}
			return m.applyProcedure(s, d, []value.Value{args[i]}, dk)
		}
	}
	return m.monApplyCod(s, g, args, k)
}

// monApplyCod applies the procedure underneath a guard with its codomain
// check pending. The naive machine always pushes a fresh mon-cod frame — on
// a contracted tail loop the frames chain up, one per call. The
// space-efficient machine joins the new check into an adjacent mon-cod
// frame instead, so the chain never grows past one frame.
func (m *Machine) monApplyCod(s State, g value.Guarded, args []value.Value, k value.Cont) (State, bool, error) {
	p := value.Pending{Ctc: g.Ctc.Cod, Src: g.Ctc, Label: g.Label}
	var cont value.Cont
	if m.variant.Monitor == MonitorJoin {
		if top, ok := k.(*value.MonCod); ok {
			cont = &value.MonCod{Pend: joinPending(top.Pend, p), K: top.K}
		}
	}
	if cont == nil {
		cont = &value.MonCod{Pend: []value.Pending{p}, K: k}
	}
	return m.applyProcedure(s, g.Proc, args, cont)
}

// joinPending adds p to pend unless a check from the same attach-time
// contract with the same blame label is already pending — the
// duplicate-dropping join that makes the space-efficient monitor
// space-efficient. The identity compared is the *source* contract's (the
// whole arrow), not the codomain predicate's: predicates are routinely
// shared (number? is one primop), so a contract rebuilt per iteration must
// still chain — only a genuinely loop-invariant monitor joins away.
// Contracts without an identity (no tag) are conservatively kept.
func joinPending(pend []value.Pending, p value.Pending) []value.Pending {
	if id, ok := value.ContractID(p.Src); ok {
		for _, q := range pend {
			if qid, qok := value.ContractID(q.Src); qok && qid == id && q.Label == p.Label {
				return pend
			}
		}
	}
	out := make([]value.Pending, len(pend)+1)
	copy(out, pend)
	out[len(pend)] = p
	return out
}

// monCheck threads v through the pending contract checks: arrow contracts
// wrap (v must be a procedure), flat contracts apply their predicate under a
// mon-chk continuation awaiting the verdict. When the list is empty the
// checked value is delivered to k.
func (m *Machine) monCheck(s State, v value.Value, pend []value.Pending, k value.Cont) (State, bool, error) {
	for len(pend) > 0 {
		p := pend[0]
		switch c := p.Ctc.(type) {
		case *value.ArrowContract:
			if !value.IsProcedure(v) {
				return s, false, m.stuck("contract violation: %s promised a procedure, got %T", p.Label, v)
			}
			tag := m.store.Alloc(value.Unspecified{})
			v = value.Guarded{Tag: tag, Proc: v, Ctc: c, Label: p.Label}
			pend = pend[1:]
		default:
			if !value.IsProcedure(c) {
				return s, false, m.stuck("mon: %T is not a contract", c)
			}
			chk := &value.MonChk{Val: v, Rest: pend[1:], Label: p.Label, K: k}
			return m.applyProcedure(s, c, []value.Value{v}, chk)
		}
	}
	return ValueState(v, s.Env, k), false, nil
}
