package core

import (
	"errors"
	"testing"
)

// --- Options.GCEvery contract -------------------------------------------

func TestMeasureWithGCOffIsAnError(t *testing.T) {
	res, err := RunApplication(countdownLoop, numInput(10), Options{
		Variant: Tail, Measure: true, GCEvery: GCEveryOff,
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !errors.Is(res.Err, ErrMeasureNeedsGC) {
		t.Fatalf("res.Err = %v, want ErrMeasureNeedsGC", res.Err)
	}
	if res.Steps != 0 || res.PeakFlat != 0 {
		t.Fatalf("rejected run still executed: steps=%d peak=%d", res.Steps, res.PeakFlat)
	}
}

func TestGCEveryZeroWithoutMeasureNeverCollects(t *testing.T) {
	res, err := RunApplication(countdownLoop, numInput(50), Options{Variant: Tail})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Collections != 0 {
		t.Fatalf("GCEvery=0 without Measure collected %d times", res.Collections)
	}
}

func TestGCEveryOffWithoutMeasureNeverCollects(t *testing.T) {
	res, err := RunApplication(countdownLoop, numInput(50), Options{
		Variant: Tail, GCEvery: GCEveryOff,
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Collections != 0 {
		t.Fatalf("GCEveryOff collected %d times", res.Collections)
	}
}

func TestGCEveryZeroWithMeasureDefaultsToEveryStep(t *testing.T) {
	// Definition 21's space-efficient computations: Measure with the default
	// GCEvery must behave exactly like an explicit collect-every-step run.
	def := measure(t, Tail, countdownLoop, 50, flatOnly, func(o *Options) { o.GCEvery = 0 })
	if def.Err != nil {
		t.Fatal(def.Err)
	}
	everyStep := measure(t, Tail, countdownLoop, 50, flatOnly)
	if def.Collections == 0 || def.Collected == 0 {
		t.Fatalf("default policy never collected (collections=%d)", def.Collections)
	}
	if def.Collections != everyStep.Collections || def.Collected != everyStep.Collected ||
		def.PeakFlat != everyStep.PeakFlat {
		t.Fatalf("default policy differs from GCEvery=1: {%d %d %d} vs {%d %d %d}",
			def.Collections, def.Collected, def.PeakFlat,
			everyStep.Collections, everyStep.Collected, everyStep.PeakFlat)
	}
}

// --- TracePoint emission -------------------------------------------------

// collectTrace runs countdown(n) under Z_tail with a trace hook installed.
func collectTrace(t *testing.T, n int, tweak ...func(*Options)) (Result, []TracePoint) {
	t.Helper()
	var trace []TracePoint
	opts := append([]func(*Options){func(o *Options) {
		o.Trace = func(p TracePoint) { trace = append(trace, p) }
	}}, tweak...)
	res := measure(t, Tail, countdownLoop, n, opts...)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res, trace
}

func TestTraceCoversEveryStepInOrder(t *testing.T) {
	res, trace := collectTrace(t, 25)
	// One sample per configuration: the initial one plus one per transition.
	if len(trace) != res.Steps+1 {
		t.Fatalf("len(trace) = %d, want Steps+1 = %d", len(trace), res.Steps+1)
	}
	for i, p := range trace {
		if p.Step != i {
			t.Fatalf("trace[%d].Step = %d: samples out of order", i, p.Step)
		}
		if !p.Measured {
			t.Fatalf("trace[%d].Measured = false on a Measure run", i)
		}
		if p.Flat <= 0 {
			t.Fatalf("trace[%d].Flat = %d, want positive", i, p.Flat)
		}
		if p.Linked <= 0 || p.Linked > p.Flat {
			t.Fatalf("trace[%d]: Linked = %d, Flat = %d, want 0 < Linked <= Flat", i, p.Linked, p.Flat)
		}
	}
	// Trace samples already include |P|, so the recorded peak is exactly the
	// max over the trace.
	peak := 0
	for _, p := range trace {
		if p.Flat > peak {
			peak = p.Flat
		}
	}
	if res.PeakFlat != peak {
		t.Fatalf("PeakFlat = %d, want max(trace.Flat) = %d", res.PeakFlat, peak)
	}
}

func TestTraceStepNumberingWithSparseGC(t *testing.T) {
	// GCEvery > 1 changes when the GC rule runs, not which configurations
	// are sampled: numbering must stay dense.
	res, trace := collectTrace(t, 25, func(o *Options) { o.GCEvery = 7 })
	if len(trace) != res.Steps+1 {
		t.Fatalf("len(trace) = %d, want %d", len(trace), res.Steps+1)
	}
	for i, p := range trace {
		if p.Step != i {
			t.Fatalf("trace[%d].Step = %d with GCEvery=7", i, p.Step)
		}
	}
	if res.Collections >= res.Steps {
		t.Fatalf("GCEvery=7 collected %d times over %d steps", res.Collections, res.Steps)
	}
}

func TestTraceFlatOnlyLeavesLinkedZero(t *testing.T) {
	_, trace := collectTrace(t, 25, flatOnly)
	for i, p := range trace {
		if p.Linked != 0 {
			t.Fatalf("trace[%d].Linked = %d under FlatOnly, want 0", i, p.Linked)
		}
		if p.Flat <= 0 {
			t.Fatalf("trace[%d].Flat = %d under FlatOnly, want positive", i, p.Flat)
		}
	}
}

func TestTraceWithoutMeasureSamplesHeapOnly(t *testing.T) {
	// The trace hook still fires without Measure — a heap/depth profile is
	// cheap — but the Figure 7/8 fields stay zero.
	var trace []TracePoint
	res, err := RunApplication(countdownLoop, numInput(10), Options{
		Variant: Tail,
		Trace:   func(p TracePoint) { trace = append(trace, p) },
	})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(trace) != res.Steps+1 {
		t.Fatalf("len(trace) = %d, want %d", len(trace), res.Steps+1)
	}
	for i, p := range trace {
		if p.Step != i {
			t.Fatalf("trace[%d].Step = %d", i, p.Step)
		}
		if p.Measured {
			t.Fatalf("trace[%d].Measured = true without Measure", i)
		}
		if p.Flat != 0 || p.Linked != 0 {
			t.Fatalf("trace[%d] measured space without Measure: flat=%d linked=%d", i, p.Flat, p.Linked)
		}
		if p.Heap <= 0 {
			t.Fatalf("trace[%d].Heap = %d, want positive (globals are live)", i, p.Heap)
		}
	}
}
