package core

import "tailspace/internal/value"

// CompressReturnChains implements the continuation half of Baker's
// Cheney-on-the-MTA collection (Section 14 of the paper): a return
// continuation whose target is another return continuation is dead weight —
// delivering a value to the outer frame restores a dead environment and
// immediately delivers the same value to the inner frame — so the collector
// collapses the chain, keeping only the innermost frame of each run.
//
// The rewrite preserves answers: the only observable difference between
// return:(ρ1, return:(ρ2, κ)) and return:(ρ2, κ) is the dead ρ1, which no
// rule dereferences. What it changes is space: the Z_gc frames that pile up
// under a tail-recursive loop collapse to a single frame at each collection,
// which is exactly why the MTA technique is properly tail recursive under
// the paper's definition while violating every syntactic one.
func CompressReturnChains(k value.Cont) value.Cont {
	switch x := k.(type) {
	case nil:
		return nil
	case value.Halt:
		return x
	case *value.Return:
		inner := CompressReturnChains(x.K)
		if r, ok := inner.(*value.Return); ok {
			return r
		}
		if inner == x.K {
			return x
		}
		return &value.Return{Env: x.Env, K: inner}
	case *value.Select:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.Select{Then: x.Then, Else: x.Else, Env: x.Env, K: inner}
		}
	case *value.Assign:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.Assign{Name: x.Name, Sym: x.Sym, Env: x.Env, K: inner, Plan: x.Plan}
		}
	case *value.Push:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.Push{
				Rest: x.Rest, RestIdx: x.RestIdx,
				Done: x.Done, DoneIdx: x.DoneIdx, CurIdx: x.CurIdx,
				Env: x.Env, K: inner, Plan: x.Plan,
			}
		}
	case *value.Call:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.Call{Args: x.Args, K: inner}
		}
	case *value.ReturnStack:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.ReturnStack{Del: x.Del, Env: x.Env, K: inner}
		}
	case *value.MonCtc:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.MonCtc{Expr: x.Expr, Label: x.Label, Env: x.Env, K: inner}
		}
	case *value.MonAttach:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.MonAttach{Ctc: x.Ctc, Label: x.Label, K: inner}
		}
	case *value.MonDom:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.MonDom{G: x.G, Args: x.Args, Idx: x.Idx, K: inner}
		}
	case *value.MonCod:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.MonCod{Pend: x.Pend, K: inner}
		}
	case *value.MonChk:
		if inner := CompressReturnChains(x.K); inner != x.K {
			return &value.MonChk{Val: x.Val, Rest: x.Rest, Label: x.Label, K: inner}
		}
	}
	return k
}
