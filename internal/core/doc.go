// This file documents the transition rules in the paper's notation and how
// each maps to the implementation; it contains no code.
//
// # Configurations (Figure 4)
//
//	Configuration ::= (v, σ)              final            State.IsFinal
//	               |  (E, ρ, κ, σ)        eval             State{Expr: E}
//	               |  (v, ρ, κ, σ)        continue         State{Val: v}
//
// # Reduction rules (Figure 5) — Machine.stepExpr
//
//	((quote c), ρ, κ, σ)  →  (c, ρ, κ, σ)
//	(I, ρ, κ, σ)          →  (σ(ρ(I)), ρ, κ, σ)
//	     stuck if I ∉ Dom ρ, ρ(I) ∉ Dom σ, or σ(ρ(I)) = UNDEFINED
//	(L, ρ, κ, σ)          →  (CLOSURE:(α, L, ρ'), ρ, κ, σ[α ↦ UNSPECIFIED])
//	     ρ' = ρ                         for Z_tail, Z_gc, Z_stack, Z_evlis
//	     ρ' = ρ | (Dom ρ ∩ FV(L))       for Z_free, Z_sfs
//	((if E0 E1 E2), ρ, κ, σ)  →  (E0, ρ, select:(E1, E2, ρ', κ), σ)
//	     ρ' = ρ, or ρ | FV(E1)∪FV(E2)   for Z_sfs
//	((set! I E0), ρ, κ, σ)    →  (E0, ρ, assign:(I, ρ', κ), σ)
//	     ρ' = ρ, or ρ | {I}             for Z_sfs
//	((E0 E1 ...), ρ, κ, σ)    →  (E0', ρ, push:((E1' ...), (), π, ρ', κ), σ)
//	     (E0', E1', ...) = reverse(π⁻¹(E0, E1, ...)); π is resolved by
//	     Machine.evalOrder (left-to-right, right-to-left, or random).
//	     ρ' = ρ; { } when no operands remain for Z_evlis; ρ | FV(rest) for Z_sfs
//
// # Continuation rules — Machine.stepValue
//
//	(v, ρ', halt, σ)                        →  (v, { }, halt, σ)  →  final (v, σ)
//	(v, ρ', select:(E1, E2, ρ, κ), σ)       →  (E1 or E2, ρ, κ, σ)   by v ≠ FALSE
//	(v, ρ', assign:(I, ρ, κ), σ)            →  (UNSPECIFIED, ρ, κ, σ[ρ(I) ↦ v])
//	(v, ρ', push:((E ...), done, π, ρ, κ))  →  next operand, or when none remain
//	                                          (v0, ρ, call:((v1 ... vn), κ), σ)
//	                                          with values permuted back by π
//
// The call rule is where the family splits (Machine.applyProcedure):
//
//	Z_tail / Z_evlis / Z_free / Z_sfs — a call is a goto:
//	  (CLOSURE:(α, L, ρ), ρ', call:((v1...vn), κ), σ)
//	    →  (E, ρ[I1...In ↦ β1...βn], κ, σ[βi ↦ vi])
//
//	Z_gc / Z_mta — every call pushes a return continuation:
//	    →  (E, ρ'', return:(ρ', κ), σ')
//
//	Z_stack — every call pushes a deleting frame:
//	    →  (E, ρ'', return:(A, ρ', κ), σ')    A ⊆ {β1, ..., βn}
//
// and correspondingly on return:
//
//	(v, ρ, return:(ρ', κ), σ)     →  (v, ρ', κ, σ)
//	(v, ρ, return:(A, ρ', κ), σ') →  (v, ρ', κ, σ' | (Dom σ' \ A))
//	     stuck (strict mode) if some β ∈ A occurs within v, ρ', κ, σ;
//	     the default resolves A as the maximal safe subset.
//
// # Garbage collection rule — Store.Collect, driven by Runner
//
//	(v, ρ, κ, σ[β ↦ v', ...])  →  (v, ρ, κ, σ)
//	     if {β, ...} are not reachable from the locations mentioned by
//	     v, ρ, and κ (State.Roots)
//
// Space-efficient computations (Definition 21) apply this rule whenever it
// is applicable; the Runner implements that as a collection after every
// transition (Options.GCEvery = 1), with larger periods available for the
// Section 12 R-factor argument. The locations in a Z_stack deletion set A
// are roots (the frame retains its variables until it pops); the saved
// environments of return continuations are charged by Figure 7 but are dead
// — see DESIGN.md for why the proofs force this reading.
//
// Z_mta (Section 14) extends the collection rule to the continuation
// itself: runs of consecutive return frames collapse to their innermost
// frame (CompressReturnChains), which is Baker's Cheney-on-the-MTA.
package core
