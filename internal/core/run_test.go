package core

import (
	"errors"
	"testing"

	"tailspace/internal/space"
)

// measure runs program applied to (quote n) under a variant with full space
// accounting and GC after every step.
func measure(t *testing.T, variant Variant, program string, n int, opts ...func(*Options)) Result {
	t.Helper()
	o := Options{Variant: variant, Measure: true, GCEvery: 1, MaxSteps: 3_000_000}
	for _, f := range opts {
		f(&o)
	}
	res, err := RunApplication(program, numInput(n), o)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return res
}

// flatOnly skips the per-step linked measurement for tests that assert only
// on PeakFlat.
func flatOnly(o *Options) { o.FlatOnly = true }

func numInput(n int) string {
	return "(quote " + itoa(n) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// countdownLoop is the Theorem 25(b) program: the iterative computation
// proper tail recursion runs in constant space.
const countdownLoop = "(define (f n) (if (zero? n) 0 (f (- n 1))))"

func TestProperTailRecursionConstantSpace(t *testing.T) {
	// Under Z_tail with fixnum costs, peak space must not grow with N.
	fixnum := func(o *Options) { o.CostModel = space.Fixnum }
	small := measure(t, Tail, countdownLoop, 10, fixnum, flatOnly)
	large := measure(t, Tail, countdownLoop, 500, fixnum, flatOnly)
	if small.Err != nil || large.Err != nil {
		t.Fatalf("errs: %v %v", small.Err, large.Err)
	}
	if large.PeakFlat != small.PeakFlat {
		t.Fatalf("Z_tail loop must run in constant space: S(10)=%d, S(500)=%d",
			small.PeakFlat, large.PeakFlat)
	}
}

func TestImproperTailRecursionLinearSpace(t *testing.T) {
	fixnum := func(o *Options) { o.CostModel = space.Fixnum }
	small := measure(t, GC, countdownLoop, 10, fixnum, flatOnly)
	large := measure(t, GC, countdownLoop, 200, fixnum, flatOnly)
	growth := float64(large.PeakFlat-small.PeakFlat) / 190.0
	if growth < 1 {
		t.Fatalf("Z_gc loop must grow linearly: S(10)=%d, S(200)=%d",
			small.PeakFlat, large.PeakFlat)
	}
}

func TestHierarchyPointwiseOnLoop(t *testing.T) {
	// Theorem 24: S_tail <= S_gc <= S_stack and
	// S_sfs <= S_evlis <= S_tail, S_sfs <= S_free <= S_tail.
	n := 50
	peak := map[string]int{}
	for _, v := range Variants {
		res := measure(t, v, countdownLoop, n, flatOnly)
		if res.Err != nil {
			t.Fatalf("[%s] %v", v, res.Err)
		}
		peak[v.Name] = res.PeakFlat
	}
	checks := [][2]string{
		{"tail", "gc"}, {"gc", "stack"},
		{"sfs", "evlis"}, {"evlis", "tail"},
		{"sfs", "free"}, {"free", "tail"},
	}
	for _, c := range checks {
		if peak[c[0]] > peak[c[1]] {
			t.Errorf("S_%s (%d) must be <= S_%s (%d)", c[0], peak[c[0]], c[1], peak[c[1]])
		}
	}
}

func TestLinkedNeverWorseThanFlat(t *testing.T) {
	// Section 13: U_X <= S_X for every implementation.
	programs := []string{
		countdownLoop,
		"(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1)))))",
		"(define (f n) (let ((v (make-vector n))) (if (zero? n) (vector-length v) (f (- n 1)))))",
	}
	for _, p := range programs {
		for _, v := range Variants {
			res := measure(t, v, p, 20)
			if res.Err != nil {
				t.Fatalf("[%s] %v", v, res.Err)
			}
			if res.PeakLinked > res.PeakFlat {
				t.Errorf("[%s] U (%d) must be <= S (%d) for %q",
					v, res.PeakLinked, res.PeakFlat, p)
			}
		}
	}
}

func TestStackStrictSticksOnEscape(t *testing.T) {
	// A closure returned out of its allocating frame dangles under strict
	// Algol-like deletion.
	src := "(((lambda (x) (lambda (y) (+ x y))) 3) 4)"
	res, err := RunProgram(src, Options{Variant: Stack, StackStrict: true})
	if err != nil {
		t.Fatal(err)
	}
	var stuck *StuckError
	if !errors.As(res.Err, &stuck) {
		t.Fatalf("strict Z_stack must stick, got %v", res.Err)
	}
	if !stuck.IsDangling() {
		t.Fatalf("reason = %q", stuck.Reason)
	}
}

func TestStackStrictRunsAlgolSubset(t *testing.T) {
	// No closure escapes here: strict deletion succeeds.
	src := "(define (f n acc) (if (zero? n) acc (f (- n 1) (+ acc n)))) (f 20 0)"
	res, err := RunProgram(src, Options{Variant: Stack, StackStrict: true})
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.Answer != "210" {
		t.Fatalf("got %s", res.Answer)
	}
}

func TestStackDeletesFrames(t *testing.T) {
	// Under Z_stack the frame locations of completed non-escaping calls are
	// deleted, so a deep non-tail recursion still holds every live frame.
	src := "(define (f n) (if (zero? n) 0 (+ 1 (f (- n 1)))))"
	res := measure(t, Stack, src, 50, flatOnly)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.PeakContDepth < 50 {
		t.Fatalf("non-tail recursion should build %d+ frames, got %d", 50, res.PeakContDepth)
	}
}

func TestGCRFactor(t *testing.T) {
	// Section 12: collecting every k steps costs at most a constant factor
	// over collecting after every step.
	every := measure(t, Tail, countdownLoop, 100, flatOnly)
	lazy := measure(t, Tail, countdownLoop, 100, flatOnly, func(o *Options) { o.GCEvery = 10 })
	if every.Err != nil || lazy.Err != nil {
		t.Fatalf("%v %v", every.Err, lazy.Err)
	}
	if lazy.PeakFlat < every.PeakFlat {
		t.Fatalf("lazier GC cannot use less space: %d < %d", lazy.PeakFlat, every.PeakFlat)
	}
	ratio := float64(lazy.PeakFlat) / float64(every.PeakFlat)
	if ratio > 4 {
		t.Fatalf("R factor too large: %.2f", ratio)
	}
}

func TestEvlisBeatsTailOnLastOperandCapture(t *testing.T) {
	// Theorem 25(d)'s program: the last operand's thunk recursion need not
	// retain the caller's environment under Z_evlis.
	src := `
(define (f n)
  (let ((v (make-vector n)))
    (if (zero? n)
        0
        ((lambda () (begin (f (- n 1)) n))))))`
	tail := measure(t, Tail, src, 12, flatOnly)
	evlis := measure(t, Evlis, src, 12, flatOnly)
	if tail.Err != nil || evlis.Err != nil {
		t.Fatalf("%v %v", tail.Err, evlis.Err)
	}
	if evlis.PeakFlat >= tail.PeakFlat {
		t.Fatalf("Z_evlis (%d) should beat Z_tail (%d) here", evlis.PeakFlat, tail.PeakFlat)
	}
}

func TestMeasureOffSkipsAccounting(t *testing.T) {
	res := runSrc(t, Tail, "(+ 1 2)")
	if res.PeakFlat != 0 || res.PeakLinked != 0 {
		t.Fatal("peaks must be zero without Measure")
	}
	if res.PeakHeap == 0 {
		t.Fatal("heap peak is always tracked")
	}
}

func TestAnswersAgreeUnderAllOrdersAndVariants(t *testing.T) {
	// Corollary 20 at small scale with π resolved three ways.
	src := `
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
(tak 6 4 2)`
	want := ""
	for _, v := range Variants {
		for _, order := range []ArgOrder{LeftToRight, RightToLeft, RandomOrder} {
			res, err := RunProgram(src, Options{Variant: v, Order: order, Seed: 99})
			if err != nil || res.Err != nil {
				t.Fatalf("[%s/%v] %v %v", v, order, err, res.Err)
			}
			if want == "" {
				want = res.Answer
			} else if res.Answer != want {
				t.Fatalf("[%s/%v] answer %s differs from %s", v, order, res.Answer, want)
			}
		}
	}
	if want != "3" {
		t.Fatalf("tak answer = %s", want)
	}
}
