package core

import (
	"errors"
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
	"tailspace/internal/prim"
	"tailspace/internal/space"
	"tailspace/internal/value"
)

// Options configures a run of a reference implementation.
type Options struct {
	// Variant selects the reference implementation; zero value is Z_tail.
	Variant Variant
	// MaxSteps bounds the computation; 0 means the default (5 million).
	MaxSteps int
	// GCEvery applies the garbage collection rule after every k-th
	// transition. 0 — the zero value — selects the default policy: collect
	// after every transition when Measure is set (the space-efficient
	// computations of Definition 21), never otherwise. GCEveryOff (-1)
	// disables the rule unconditionally; combining it with Measure is an
	// error (ErrMeasureNeedsGC), because peaks over a collection-free
	// computation would report uncollected garbage as live space. Values
	// larger than 1 model the Section 12 argument that a real collector
	// running every k steps stays within a constant factor R.
	GCEvery int
	// Order resolves the nondeterministic permutation π.
	Order ArgOrder
	// StackStrict makes Z_stack delete whole frames (A = {β1,...,βn}),
	// sticking when the deletion would create a dangling pointer. The
	// default deletes the maximal safe subset of each frame.
	StackStrict bool
	// Measure enables space accounting (it dominates run time; experiments
	// need it, answer-only runs don't).
	Measure bool
	// FlatOnly skips the Figure 8 linked measurement, whose per-step cost is
	// O(configuration); sweeps that only fit S_X set it.
	FlatOnly bool
	// NumberMode selects the integer cost model for measurement.
	NumberMode space.NumberMode
	// Meter overrides the space meter used when Measure is set. nil — the
	// default — builds a fresh space.DeltaMeter (incremental, O(cells
	// touched) per transition) for each run; pass space.NewFullMeter to
	// measure with the from-scratch recomputation oracle instead. A Meter
	// carries per-run state and must not be shared between concurrent runs.
	Meter space.Meter
	// Seed, when non-zero, reseeds the store's random source.
	Seed int64
	// Trace, when set, receives one TracePoint per transition (after the GC
	// rule has run) — the space-over-time series behind a space profile.
	Trace func(TracePoint)
}

// TracePoint is one sample of a run's space profile.
type TracePoint struct {
	Step      int
	Flat      int // Figure 7 space of the configuration (plus |P|)
	Linked    int // Figure 8 space (0 when FlatOnly)
	Heap      int // live store locations
	ContDepth int
}

const defaultMaxSteps = 5_000_000

// GCEveryOff disables the garbage collection rule unconditionally (see
// Options.GCEvery).
const GCEveryOff = -1

// Result reports a finished (or stuck) run.
type Result struct {
	// Value is the final value; nil when the run stuck or hit MaxSteps.
	Value value.Value
	// Answer is the rendered observable answer (Definition 11).
	Answer string
	// Steps counts transitions, excluding applications of the GC rule.
	Steps int
	// ProgramSize is |P|, the AST node count added by Definition 23.
	ProgramSize int
	// PeakFlat is |P| + max over configurations of Figure 7 space: the
	// program's contribution to S_X(P, D). Zero unless Options.Measure.
	PeakFlat int
	// PeakLinked is |P| + max configuration space under Figure 8: the
	// contribution to U_X(P, D). Zero unless Options.Measure.
	PeakLinked int
	// PeakHeap is the maximum number of live store locations.
	PeakHeap int
	// PeakContDepth is the maximum continuation chain length.
	PeakContDepth int
	// Collections and Collected count GC-rule applications and the
	// locations they reclaimed.
	Collections int
	Collected   int
	// Err is nil on normal termination; a *StuckError for stuck
	// computations; ErrMaxSteps when the step bound was hit.
	Err error
	// Store is the final store, for inspecting the result value.
	Store *value.Store
}

// ErrMaxSteps reports that a run exceeded its step bound.
var ErrMaxSteps = errors.New("core: maximum step count exceeded")

// ErrMeasureNeedsGC reports Options.Measure combined with GCEveryOff: space
// accounting over a computation that never collects would report uncollected
// garbage as live space, so the combination is rejected rather than silently
// re-enabling the rule.
var ErrMeasureNeedsGC = errors.New("core: Options.Measure requires the GC rule (GCEvery >= 0)")

// Runner drives a machine from an initial configuration to a final one,
// applying the garbage collection rule and recording space peaks.
type Runner struct {
	opts    Options
	machine *Machine
	meter   space.Meter
}

// NewRunner prepares a run of program expression e applied under opts. The
// initial environment and store are ρ0 and σ0 with the standard procedures.
func NewRunner(opts Options) *Runner {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	if opts.Variant.Name == "" {
		opts.Variant = Tail
	}
	meter := opts.Meter
	if meter == nil {
		meter = space.NewDeltaMeter(opts.NumberMode)
	}
	return &Runner{opts: opts, meter: meter}
}

// Run evaluates e from (E, ρ0, halt, σ0).
func (r *Runner) Run(e ast.Expr) Result {
	if r.opts.Measure && r.opts.GCEvery < 0 {
		return Result{ProgramSize: e.Size(), Err: ErrMeasureNeedsGC}
	}
	rho0, st := prim.Global()
	if r.opts.Seed != 0 {
		st.Rand.Seed(r.opts.Seed)
	}
	r.machine = NewMachine(r.opts.Variant, st)
	r.machine.SetOrder(r.opts.Order)
	r.machine.SetStackStrict(r.opts.StackStrict)
	if r.opts.Measure {
		r.meter.Attach(st)
	}

	res := Result{ProgramSize: e.Size(), Store: st}
	s := EvalState(e, rho0, value.Halt{})

	gcEvery := r.opts.GCEvery
	switch {
	case gcEvery < 0:
		// GCEveryOff: the rule never fires.
		gcEvery = 0
	case gcEvery == 0 && r.opts.Measure:
		// Default policy: space-efficient computations (Definition 21)
		// require the GC rule whenever garbage remains.
		gcEvery = 1
	}

	r.observe(&res, s, st)
	for {
		if res.Steps >= r.opts.MaxSteps {
			res.Err = ErrMaxSteps
			return res
		}
		next, done, err := r.machine.Step(s)
		if err != nil {
			res.Err = err
			return res
		}
		if done {
			res.Value = next.Val
			res.Answer = Answer(next.Val, st)
			return res
		}
		s = next
		res.Steps++
		if gcEvery > 0 && res.Steps%gcEvery == 0 {
			if r.opts.Variant.CompressFrames {
				s.K = CompressReturnChains(s.K)
			}
			collected := st.Collect(s.Roots())
			if collected > 0 {
				res.Collections++
				res.Collected += collected
			}
		}
		r.observe(&res, s, st)
	}
}

func (r *Runner) observe(res *Result, s State, st *value.Store) {
	heap := st.Size()
	if heap > res.PeakHeap {
		res.PeakHeap = heap
	}
	depth := value.Depth(s.K)
	if depth > res.PeakContDepth {
		res.PeakContDepth = depth
	}
	if !r.opts.Measure {
		if r.opts.Trace != nil {
			r.opts.Trace(TracePoint{Step: res.Steps, Heap: heap, ContDepth: depth})
		}
		return
	}
	flat := res.ProgramSize + r.meter.Flat(s.Val, s.Env, s.K, st)
	if flat > res.PeakFlat {
		res.PeakFlat = flat
	}
	linked := 0
	if !r.opts.FlatOnly {
		linked = res.ProgramSize + r.meter.Linked(s.Val, s.Env, s.K, st)
		if linked > res.PeakLinked {
			res.PeakLinked = linked
		}
	}
	if r.opts.Trace != nil {
		r.opts.Trace(TracePoint{Step: res.Steps, Flat: flat, Linked: linked, Heap: heap, ContDepth: depth})
	}
}

// RunProgram parses, expands, and runs program source text.
func RunProgram(src string, opts Options) (Result, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return Result{}, err
	}
	return NewRunner(opts).Run(e), nil
}

// RunApplication builds the Definition 23 initial configuration
// (P D) — the program applied to the input — and runs it. program must
// evaluate to a procedure of one argument; input is an expression (the paper
// uses (quote N)).
func RunApplication(program, input string, opts Options) (Result, error) {
	e, err := ApplicationExpr(program, input)
	if err != nil {
		return Result{}, err
	}
	return NewRunner(opts).Run(e), nil
}

// ApplicationExpr parses program and input sources and builds ((P) D).
func ApplicationExpr(program, input string) (ast.Expr, error) {
	p, err := expand.ParseProgram(program)
	if err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	d, err := expand.ParseExpr(input)
	if err != nil {
		return nil, fmt.Errorf("input: %w", err)
	}
	return &ast.Call{Exprs: []ast.Expr{p, d}}, nil
}
