package core

import (
	"errors"
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/compile"
	"tailspace/internal/env"
	"tailspace/internal/expand"
	"tailspace/internal/obs"
	"tailspace/internal/prim"
	"tailspace/internal/space"
	"tailspace/internal/value"
)

// Options configures a run of a reference implementation.
type Options struct {
	// Variant selects the reference implementation; zero value is Z_tail.
	Variant Variant
	// MaxSteps bounds the computation; 0 means the default (5 million).
	MaxSteps int
	// GCEvery applies the garbage collection rule after every k-th
	// transition. 0 — the zero value — selects the default policy: collect
	// after every transition when Measure is set (the space-efficient
	// computations of Definition 21), never otherwise. GCEveryOff (-1)
	// disables the rule unconditionally; combining it with Measure is an
	// error (ErrMeasureNeedsGC), because peaks over a collection-free
	// computation would report uncollected garbage as live space. Values
	// larger than 1 model the Section 12 argument that a real collector
	// running every k steps stays within a constant factor R.
	GCEvery int
	// Order resolves the nondeterministic permutation π.
	Order ArgOrder
	// StackStrict makes Z_stack delete whole frames (A = {β1,...,βn}),
	// sticking when the deletion would create a dangling pointer. The
	// default deletes the maximal safe subset of each frame.
	StackStrict bool
	// Measure enables space accounting (it dominates run time; experiments
	// need it, answer-only runs don't).
	Measure bool
	// FlatOnly skips the Figure 8 linked measurement, whose per-step cost is
	// O(configuration); sweeps that only fit S_X set it.
	FlatOnly bool
	// CostModel selects the space cost model for measurement: space.Word
	// (Figure 7/8 word counts, the default when nil), space.Fixnum
	// (fixed-precision numbers), or space.Log (logarithmic pointer costs).
	CostModel space.CostModel
	// Meter overrides the space meter used when Measure is set. nil — the
	// default — builds a fresh space.DeltaMeter (incremental, O(cells
	// touched) per transition) for each run; pass space.NewFullMeter to
	// measure with the from-scratch recomputation oracle instead. A Meter
	// carries per-run state and must not be shared between concurrent runs.
	Meter space.Meter
	// Seed, when non-zero, reseeds the store's random source.
	Seed int64
	// MapStore runs against the map-backed reference store representation
	// instead of the default arena. Both produce identical observations (the
	// differential suite pins this); the reference exists to be slow and
	// obviously correct.
	MapStore bool
	// Trace, when set, receives one TracePoint per transition (after the GC
	// rule has run) — the space-over-time series behind a space profile.
	// The hook fires with or without Measure; TracePoint.Measured tells a
	// sink whether the Flat/Linked fields were actually computed (without
	// Measure they are zero because they were never measured, not because
	// the configuration was free).
	Trace func(TracePoint)
	// Events, when set, receives the structured observability stream: one
	// transition event per step (tagged with the machine rule that fired),
	// one event per GC-rule application (with the cells it reclaimed), one
	// event per store allocation (attributed to the allocating expression),
	// and one event per peak update. A nil sink costs nothing beyond a few
	// nil checks; use an obs.Ring to keep long traces bounded-memory.
	Events obs.Sink
	// TraceID, when non-empty, stamps every emitted event with a request
	// trace identifier (Event.Trace), tying the engine's stream to the
	// serving request that started the run. It only takes effect when
	// Events is non-nil: the stamping wraps the sink once at run start, so
	// the nil-Events fast path stays allocation-free (pinned by
	// BenchmarkEventStamping).
	TraceID string
	// AttributePeak, combined with Measure, rebuilds a peak-attribution
	// snapshot whenever the flat-space peak is raised; after the run,
	// Result.Peak names the source expression, machine rule, continuation
	// chain, and live ribs of the configuration that realized S_X(P, D).
	// Each rebuild is bounded (it snapshots at most a fixed number of
	// frames), but monotonically growing runs rebuild often; leave it off
	// for plain sweeps.
	AttributePeak bool
	// Cancel, when non-nil, aborts the run when the channel is closed (or
	// receives): the step loop polls it every CancelEvery transitions with a
	// non-blocking select, so the hot path stays allocation-free, and
	// returns a Result with Err == ErrCancelled whose Steps, peaks, and
	// Metrics consistently describe the prefix of the computation that ran.
	// Pass a context's Done() channel to integrate with context
	// cancellation and deadlines.
	Cancel <-chan struct{}
	// CancelEvery is the polling period of Cancel in transitions; 0 — the
	// zero value — selects DefaultCancelEvery. Smaller values cancel more
	// promptly at the cost of one channel poll per period.
	CancelEvery int
	// Backend selects the execution engine: BackendStepper (the zero value)
	// interprets the AST directly; BackendCompiled pre-resolves variables to
	// rib coordinates and dispatches on dense opcodes, emitting identical
	// observables. Runs with Order == RandomOrder always use the stepper
	// (per-call permutations cannot be pre-resolved).
	Backend Backend
}

// TracePoint is one sample of a run's space profile.
type TracePoint struct {
	Step      int
	Flat      int // Figure 7 space of the configuration (plus |P|)
	Linked    int // Figure 8 space (0 when FlatOnly)
	Heap      int // live store locations
	ContDepth int
	// Measured distinguishes "measured as zero" from "not measured": it is
	// true iff the run had Options.Measure set, i.e. iff Flat (and, unless
	// FlatOnly, Linked) carry real Figure 7/8 measurements. Heap and
	// ContDepth are always sampled.
	Measured bool
}

const defaultMaxSteps = 5_000_000

// GCEveryOff disables the garbage collection rule unconditionally (see
// Options.GCEvery).
const GCEveryOff = -1

// Result reports a finished (or stuck) run.
type Result struct {
	// Value is the final value; nil when the run stuck or hit MaxSteps.
	Value value.Value
	// Answer is the rendered observable answer (Definition 11).
	Answer string
	// Steps counts transitions, excluding applications of the GC rule.
	Steps int
	// ProgramSize is |P|, the AST node count added by Definition 23.
	ProgramSize int
	// PeakFlat is |P| + max over configurations of Figure 7 space: the
	// program's contribution to S_X(P, D). Zero unless Options.Measure.
	PeakFlat int
	// PeakLinked is |P| + max configuration space under Figure 8: the
	// contribution to U_X(P, D). Zero unless Options.Measure.
	PeakLinked int
	// PeakHeap is the maximum number of live store locations.
	PeakHeap int
	// PeakContDepth is the maximum continuation chain length.
	PeakContDepth int
	// Collections and Collected count GC-rule applications and the
	// locations they reclaimed.
	Collections int
	Collected   int
	// Metrics is the run's counter/gauge registry: transitions by rule,
	// GC activity, allocation totals, and the peaks as gauges. It is always
	// populated (per-rule counting is a dense array increment per step);
	// the per-rule counters sum to Steps.
	Metrics *obs.Metrics
	// Peak attributes the flat-space peak; nil unless Options.AttributePeak
	// and Options.Measure were both set.
	Peak *obs.PeakReport
	// Err is nil on normal termination; a *StuckError for stuck
	// computations; ErrMaxSteps when the step bound was hit.
	Err error
	// Store is the final store, for inspecting the result value.
	Store *value.Store
}

// ErrMaxSteps reports that a run exceeded its step bound.
var ErrMaxSteps = errors.New("core: maximum step count exceeded")

// ErrCancelled reports that a run was aborted through Options.Cancel. It is
// a distinguished outcome beside ErrMaxSteps and *StuckError: the machine
// state was consistent when the run stopped (the poll sits between
// transitions), it just did not get to finish.
var ErrCancelled = errors.New("core: run cancelled")

// DefaultCancelEvery is the default Options.Cancel polling period, in
// transitions. At the corpus's measured rates (hundreds of thousands to
// millions of transitions per second) 1024 bounds the cancellation latency
// well under a millisecond while keeping the poll invisible in profiles.
const DefaultCancelEvery = 1024

// ErrMeasureNeedsGC reports Options.Measure combined with GCEveryOff: space
// accounting over a computation that never collects would report uncollected
// garbage as live space, so the combination is rejected rather than silently
// re-enabling the rule.
var ErrMeasureNeedsGC = errors.New("core: Options.Measure requires the GC rule (GCEvery >= 0)")

// Runner drives a machine from an initial configuration to a final one,
// applying the garbage collection rule, recording space peaks, and feeding
// the observability layer (per-rule counters, the event stream, and peak
// attribution).
type Runner struct {
	opts    Options
	machine *Machine
	meter   space.Meter

	ruleCounts [NumRules]int64
	peaks      space.Peaks
	// lastExpr is the most recently evaluated expression, the attribution
	// target for allocations and peaks reached in value configurations.
	lastExpr ast.Expr
	nodeIDs  map[ast.Expr]int
	tap      *allocTap
	// rootsBuf is the scratch buffer AppendRoots fills before each
	// collection; space-efficient computations collect every transition, so
	// rebuilding it from nil would dominate the allocation profile.
	rootsBuf []env.Location
	// gcSnap witnesses the configuration at the end of the last collection,
	// for the root-delta fast path (see collect).
	gcSnap gcSnapshot
	// depthK/depthVal memoize the continuation depth of the previous
	// observation. One transition moves the continuation by at most one
	// frame (push, pop, or replace-top), so the next depth is one pointer
	// compare away; only a discontinuous jump — call/cc re-entry, MTA
	// chain compression — pays the full value.Depth walk, which is
	// O(depth) per step and used to dominate deep-recursion profiles.
	depthK     value.Cont
	depthVal   int
	depthValid bool
}

// gcSnapshot captures what the last collection saw. If the next collection's
// configuration has the same continuation and environment (pointer-equal —
// Env and Cont are comparable), a location-free value register both times,
// and the store's mutation counter unchanged, then its root set is identical
// and the store holds exactly what the last collection kept — so collecting
// again is provably a no-op and the trace can be skipped.
type gcSnapshot struct {
	k        value.Cont
	env      env.Env
	valClean bool
	mut      uint64
	valid    bool
}

// NewRunner prepares a run of program expression e applied under opts. The
// initial environment and store are ρ0 and σ0 with the standard procedures.
func NewRunner(opts Options) *Runner {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = defaultMaxSteps
	}
	if opts.Variant.Name == "" {
		opts.Variant = Tail
	}
	meter := opts.Meter
	if meter == nil {
		meter = space.NewDeltaMeter(opts.CostModel)
	}
	// Trace stamping decorates the sink once here; with a nil sink
	// StampTrace returns nil and the run keeps its zero-cost path.
	opts.Events = obs.StampTrace(opts.Events, opts.TraceID)
	return &Runner{opts: opts, meter: meter}
}

// Run evaluates e from (E, ρ0, halt, σ0).
func (r *Runner) Run(e ast.Expr) (res Result) {
	if r.opts.Measure && r.opts.GCEvery < 0 {
		return Result{ProgramSize: e.Size(), Err: ErrMeasureNeedsGC}
	}
	// Expander output is already interned; this covers syntax built
	// programmatically (the CPS converter, tests) so the machine stays on the
	// integer-compare lookup path.
	ast.InternSyms(e)
	var rho0 env.Env
	var st *value.Store
	if r.opts.MapStore {
		rho0, st = prim.GlobalInto(value.NewMapStore())
	} else {
		rho0, st = prim.Global()
	}
	if r.opts.Seed != 0 {
		st.Rand.Seed(r.opts.Seed)
	}
	r.machine = NewMachine(r.opts.Variant, st)
	r.machine.SetOrder(r.opts.Order)
	r.machine.SetStackStrict(r.opts.StackStrict)
	// Engine selection. Compilation happens per run, after the globals are
	// installed, so ρ0 bindings bake to concrete locations; it is a few
	// microseconds against the runs it accelerates. A program the compiler
	// does not understand (expression forms outside package ast) falls back
	// to the stepper, as does random argument order.
	var engine stepEngine = r.machine
	runExpr := e
	if r.opts.Backend == BackendCompiled && r.opts.Order != RandomOrder {
		cfg := compile.Config{
			FreeClosures:  r.opts.Variant.FreeClosures,
			RestrictConts: r.opts.Variant.RestrictConts,
			EvlisLastEnv:  r.opts.Variant.EvlisLastEnv,
			RightToLeft:   r.opts.Order == RightToLeft,
		}
		if prog, cerr := compile.Program(e, cfg, rho0); cerr == nil {
			engine = &compiledMachine{m: r.machine}
			runExpr = prog.Root
		}
	}
	if r.opts.Measure {
		r.meter.Attach(st)
	}

	// Observability setup. The runner always counts transitions per rule
	// (a dense array increment per step); everything else is wired only on
	// request so an unobserved run pays a few nil checks.
	r.ruleCounts = [NumRules]int64{}
	r.peaks = space.Peaks{}
	r.lastExpr = e
	observing := r.opts.Events != nil
	if observing || r.opts.AttributePeak {
		r.nodeIDs = ast.Number(e)
	}
	if observing {
		r.peaks.OnUpdate = func(kind space.PeakKind, step, v int) {
			r.opts.Events.Emit(obs.Event{Type: obs.EventPeak, Step: step, Peak: kind.String(), Value: v})
		}
		// The allocation tap attributes store allocations to the allocating
		// expression; it attaches after the globals are installed, so only
		// the program's own allocations are streamed.
		r.tap = &allocTap{sink: r.opts.Events, ids: r.nodeIDs, expr: e}
		st.AddObserver(r.tap)
		defer st.RemoveObserver(r.tap)
	}
	defer func() { res.Metrics = r.buildMetrics(&res, st) }()

	res = Result{ProgramSize: e.Size(), Store: st}
	s := EvalState(runExpr, rho0, value.Halt{})

	gcEvery := r.opts.GCEvery
	switch {
	case gcEvery < 0:
		// GCEveryOff: the rule never fires.
		gcEvery = 0
	case gcEvery == 0 && r.opts.Measure:
		// Default policy: space-efficient computations (Definition 21)
		// require the GC rule whenever garbage remains.
		gcEvery = 1
	}

	cancel := r.opts.Cancel
	cancelEvery := r.opts.CancelEvery
	if cancelEvery <= 0 {
		cancelEvery = DefaultCancelEvery
	}

	r.observe(&res, s, st, RuleNone)
	for {
		if res.Steps >= r.opts.MaxSteps {
			res.Err = ErrMaxSteps
			return res
		}
		if cancel != nil && res.Steps%cancelEvery == 0 {
			select {
			case <-cancel:
				res.Err = ErrCancelled
				return res
			default:
			}
		}
		if s.Expr != nil {
			r.lastExpr = sourceExpr(s.Expr)
		}
		if r.tap != nil {
			r.tap.step = res.Steps + 1
			r.tap.expr = r.lastExpr
		}
		next, done, err := engine.Step(s)
		if err != nil {
			res.Err = err
			return res
		}
		if done {
			res.Value = next.Val
			res.Answer = Answer(next.Val, st)
			return res
		}
		s = next
		res.Steps++
		r.ruleCounts[engine.LastRule()]++
		if gcEvery > 0 && res.Steps%gcEvery == 0 {
			if r.opts.Variant.CompressFrames {
				s.K = CompressReturnChains(s.K)
			}
			collected := r.collect(s, st)
			if observing {
				r.opts.Events.Emit(obs.Event{
					Type: obs.EventGC, Step: res.Steps,
					Reclaimed: collected, Heap: st.Size(),
				})
			}
			if collected > 0 {
				res.Collections++
				res.Collected += collected
			}
		}
		r.observe(&res, s, st, engine.LastRule())
	}
}

// collect applies the garbage collection rule to the current configuration.
// The root-delta fast path: when the configuration's continuation and
// environment are the very ones the last collection traced, the value
// register mentions no locations either time, and the store has not been
// touched since, the root set and store contents are unchanged — the trace
// would keep everything it kept before, so it is skipped. Any allocation,
// set!, deletion, or continuation/environment change falls back to the full
// trace.
func (r *Runner) collect(s State, st *value.Store) int {
	snap := &r.gcSnap
	if snap.valid &&
		s.K == snap.k && s.Env == snap.env &&
		snap.valClean && valLocFree(s.Val) &&
		st.Mutations() == snap.mut {
		return 0
	}
	r.rootsBuf = s.AppendRoots(r.rootsBuf[:0])
	collected := st.Collect(r.rootsBuf)
	*snap = gcSnapshot{
		k:        s.K,
		env:      s.Env,
		valClean: valLocFree(s.Val),
		mut:      st.Mutations(),
		valid:    true,
	}
	return collected
}

// valLocFree reports whether a value register contributes no GC roots:
// value.Locations(v, nil) is empty for every case listed here.
func valLocFree(v value.Value) bool {
	switch v.(type) {
	case nil, value.Bool, value.Num, value.Sym, value.Str, value.Char,
		value.Null, value.Unspecified, value.Undefined, *value.Primop:
		return true
	}
	return false
}

// contDepth resolves value.Depth(k) through the single-frame memo.
func (r *Runner) contDepth(k value.Cont) int {
	switch {
	case r.depthValid && k == r.depthK:
		// Same continuation (tail transitions): depth unchanged.
	case r.depthValid && k != nil && k.Next() == r.depthK:
		r.depthVal++ // one frame pushed
	case r.depthValid && r.depthK != nil && r.depthK.Next() == k:
		r.depthVal-- // one frame popped
	case r.depthValid && k != nil && r.depthK != nil && k.Next() == r.depthK.Next():
		// Top frame replaced (push-next, select): depth unchanged.
	default:
		r.depthVal = value.Depth(k)
	}
	r.depthK = k
	r.depthValid = true
	return r.depthVal
}

// observe samples the configuration s that rule just produced: peaks,
// trace points, and transition events.
func (r *Runner) observe(res *Result, s State, st *value.Store, rule Rule) {
	heap := st.Size()
	depth := r.contDepth(s.K)
	r.peaks.Observe(space.PeakHeap, res.Steps, heap)
	r.peaks.Observe(space.PeakContDepth, res.Steps, depth)
	res.PeakHeap = r.peaks.Get(space.PeakHeap)
	res.PeakContDepth = r.peaks.Get(space.PeakContDepth)

	var flat, linked int
	if r.opts.Measure {
		flat = res.ProgramSize + r.meter.Flat(s.Val, s.Env, s.K, st)
		if r.peaks.Observe(space.PeakFlat, res.Steps, flat) && r.opts.AttributePeak {
			res.Peak = r.attributePeak(res.Steps, flat, s, st, rule)
		}
		res.PeakFlat = r.peaks.Get(space.PeakFlat)
		if !r.opts.FlatOnly {
			linked = res.ProgramSize + r.meter.Linked(s.Val, s.Env, s.K, st)
			r.peaks.Observe(space.PeakLinked, res.Steps, linked)
			res.PeakLinked = r.peaks.Get(space.PeakLinked)
		}
	}
	if r.opts.Trace != nil {
		r.opts.Trace(TracePoint{
			Step: res.Steps, Flat: flat, Linked: linked,
			Heap: heap, ContDepth: depth, Measured: r.opts.Measure,
		})
	}
	if r.opts.Events != nil && res.Steps > 0 {
		r.opts.Events.Emit(obs.Event{
			Type: obs.EventTransition, Step: res.Steps, Rule: rule.String(),
			Flat: flat, Linked: linked, Heap: heap, Depth: depth,
			Measured: r.opts.Measure,
		})
	}
}

// attributePeak snapshots the configuration that raised the flat peak.
func (r *Runner) attributePeak(step, flat int, s State, st *value.Store, rule Rule) *obs.PeakReport {
	expr := s.Expr
	if expr == nil {
		expr = r.lastExpr
	} else {
		expr = sourceExpr(expr)
	}
	var exprStr string
	var nodeID int
	if expr != nil {
		exprStr = expr.String()
		nodeID = r.nodeIDs[expr]
	}
	return obs.NewPeakReport(r.opts.Variant.Name, step, flat, rule.String(),
		exprStr, nodeID, s.Env, s.K, st, r.opts.CostModel)
}

// buildMetrics assembles the run's registry from the dense per-rule counts
// and the Result's accumulated totals.
func (r *Runner) buildMetrics(res *Result, st *value.Store) *obs.Metrics {
	m := obs.NewMetrics()
	m.Inc(obs.MetricSteps, int64(res.Steps))
	for rule, n := range r.ruleCounts {
		if n > 0 {
			m.Inc(obs.MetricRulePrefix+Rule(rule).String(), n)
		}
	}
	m.Inc(obs.MetricCollections, int64(res.Collections))
	m.Inc(obs.MetricReclaimed, int64(res.Collected))
	if st != nil {
		m.Inc(obs.MetricAllocs, int64(st.Allocs))
	}
	m.SetMax(obs.MetricContDepthMax, int64(res.PeakContDepth))
	m.SetMax(obs.MetricHeapPeak, int64(res.PeakHeap))
	if r.opts.Measure {
		m.SetMax(obs.MetricFlatPeak, int64(res.PeakFlat))
		if !r.opts.FlatOnly {
			m.SetMax(obs.MetricLinkedPeak, int64(res.PeakLinked))
		}
	}
	return m
}

// allocTap is the store observer behind EventAlloc: the runner points it at
// the expression being evaluated before every transition, and every
// allocation the transition performs is attributed to that expression.
type allocTap struct {
	sink obs.Sink
	ids  map[ast.Expr]int
	step int
	expr ast.Expr
}

// StoreAlloc implements value.StoreObserver.
func (t *allocTap) StoreAlloc(l env.Location, _ value.Value) {
	ev := obs.Event{Type: obs.EventAlloc, Step: t.step, Loc: int(l)}
	if t.expr != nil {
		ev.NodeID = t.ids[t.expr]
		ev.Expr = obs.Abbrev(t.expr.String(), 60)
	}
	t.sink.Emit(ev)
}

// StoreSet implements value.StoreObserver (writes are not allocation sites).
func (t *allocTap) StoreSet(env.Location, value.Value, value.Value) {}

// StoreDelete implements value.StoreObserver (reclamation is summarized by
// the GC events instead of one event per cell).
func (t *allocTap) StoreDelete(env.Location, value.Value) {}

// RunProgram parses, expands, and runs program source text.
func RunProgram(src string, opts Options) (Result, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return Result{}, err
	}
	return NewRunner(opts).Run(e), nil
}

// RunApplication builds the Definition 23 initial configuration
// (P D) — the program applied to the input — and runs it. program must
// evaluate to a procedure of one argument; input is an expression (the paper
// uses (quote N)).
func RunApplication(program, input string, opts Options) (Result, error) {
	e, err := ApplicationExpr(program, input)
	if err != nil {
		return Result{}, err
	}
	return NewRunner(opts).Run(e), nil
}

// ApplicationExpr parses program and input sources and builds ((P) D).
func ApplicationExpr(program, input string) (ast.Expr, error) {
	p, err := expand.ParseProgram(program)
	if err != nil {
		return nil, fmt.Errorf("program: %w", err)
	}
	d, err := expand.ParseExpr(input)
	if err != nil {
		return nil, fmt.Errorf("input: %w", err)
	}
	return &ast.Call{Exprs: []ast.Expr{p, d}}, nil
}
