package core

import (
	"testing"

	"tailspace/internal/corpus"
	"tailspace/internal/obs"
)

// TestRuleCountersSumToStepsAcrossCorpus is the accounting invariant behind
// the per-rule metrics: every transition is tagged with exactly one rule, so
// over the whole corpus, under every reference implementation, the per-rule
// counters must sum to Result.Steps.
func TestRuleCountersSumToStepsAcrossCorpus(t *testing.T) {
	for _, v := range Variants {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for _, p := range corpus.All() {
				res, err := RunProgram(p.Source, Options{Variant: v, MaxSteps: 8_000_000})
				if err != nil {
					t.Fatalf("%s: %v", p.Name, err)
				}
				if res.Err != nil {
					t.Fatalf("%s: %v", p.Name, res.Err)
				}
				m := res.Metrics
				if m == nil {
					t.Fatalf("%s: Result.Metrics is nil", p.Name)
				}
				if got := m.Counter(obs.MetricSteps); got != int64(res.Steps) {
					t.Errorf("%s: metric steps %d != Result.Steps %d", p.Name, got, res.Steps)
				}
				if got := m.SumCounters(obs.MetricRulePrefix); got != int64(res.Steps) {
					t.Errorf("%s: rule counters sum to %d, want Steps %d", p.Name, got, res.Steps)
				}
				if got := m.Counter(obs.MetricRulePrefix + RuleNone.String()); got != 0 {
					t.Errorf("%s: %d transitions tagged with RuleNone", p.Name, got)
				}
				if got := m.Gauge(obs.MetricHeapPeak); got != int64(res.PeakHeap) {
					t.Errorf("%s: heap gauge %d != PeakHeap %d", p.Name, got, res.PeakHeap)
				}
				if got := m.Gauge(obs.MetricContDepthMax); got != int64(res.PeakContDepth) {
					t.Errorf("%s: depth gauge %d != PeakContDepth %d", p.Name, got, res.PeakContDepth)
				}
			}
		})
	}
}

// TestTransitionEventsMatchSteps: with a sink attached, the stream carries
// exactly one transition event per step, each tagged with a real rule, in
// step order.
func TestTransitionEventsMatchSteps(t *testing.T) {
	ring := obs.NewRing(1 << 20)
	res, err := RunApplication(countdownLoop, numInput(25), Options{
		Variant: Tail, Events: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	var transitions []obs.Event
	for _, e := range ring.Events() {
		if e.Type == obs.EventTransition {
			transitions = append(transitions, e)
		}
	}
	if len(transitions) != res.Steps {
		t.Fatalf("%d transition events, want Steps = %d", len(transitions), res.Steps)
	}
	for i, e := range transitions {
		if e.Step != i+1 {
			t.Fatalf("transition %d has step %d", i, e.Step)
		}
		if e.Rule == "" || e.Rule == RuleNone.String() {
			t.Fatalf("transition %d has rule %q", i, e.Rule)
		}
		if e.Measured {
			t.Fatalf("transition %d claims Measured without Options.Measure", i)
		}
	}
}

// TestAttributePeakNamesExpressionAndRule: the peak report must name the
// source expression and machine rule of the configuration that realized the
// flat-space peak, under every reference implementation.
func TestAttributePeakNamesExpressionAndRule(t *testing.T) {
	const src = `
(define (build n) (if (zero? n) (quote ()) (cons n (build (- n 1)))))
(define (sum xs) (if (null? xs) 0 (+ (car xs) (sum (cdr xs)))))
(sum (build 12))`
	for _, v := range Variants {
		res, err := RunProgram(src, Options{
			Variant: v, Measure: true, FlatOnly: true, GCEvery: 1,
			AttributePeak: true, MaxSteps: 1_000_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Err != nil {
			t.Fatalf("[%s] %v", v, res.Err)
		}
		p := res.Peak
		if p == nil {
			t.Fatalf("[%s] AttributePeak run left Result.Peak nil", v)
		}
		if p.Flat != res.PeakFlat {
			t.Errorf("[%s] report flat %d != PeakFlat %d", v, p.Flat, res.PeakFlat)
		}
		if p.Step < 1 || p.Step > res.Steps {
			t.Errorf("[%s] peak step %d outside run of %d steps", v, p.Step, res.Steps)
		}
		if p.Rule == "" || p.Rule == RuleNone.String() {
			t.Errorf("[%s] report has no rule (%q)", v, p.Rule)
		}
		if p.Expr == "" {
			t.Errorf("[%s] report has no source expression", v)
		}
		if p.NodeID < 1 {
			t.Errorf("[%s] report has no AST node ID (%d)", v, p.NodeID)
		}
		if p.Machine != v.Name {
			t.Errorf("[%s] report names machine %q", v, p.Machine)
		}
	}
}

// TestAttributePeakOffLeavesPeakNil: attribution is opt-in.
func TestAttributePeakOffLeavesPeakNil(t *testing.T) {
	res := measure(t, Tail, countdownLoop, 10, flatOnly)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Peak != nil {
		t.Fatal("Result.Peak set without Options.AttributePeak")
	}
}

// TestAllocEventsAttributedToExpressions: allocations stream with the
// allocating expression attached, and only program allocations are streamed
// (the globals predate the tap).
func TestAllocEventsAttributedToExpressions(t *testing.T) {
	ring := obs.NewRing(1 << 20)
	_, err := RunProgram(`(cons 1 (cons 2 (quote ())))`, Options{Variant: Tail, Events: ring})
	if err != nil {
		t.Fatal(err)
	}
	allocs := 0
	for _, e := range ring.Events() {
		if e.Type != obs.EventAlloc {
			continue
		}
		allocs++
		if e.Step < 1 {
			t.Fatalf("alloc event before the first transition: %+v", e)
		}
		if e.Expr == "" || e.NodeID < 1 {
			t.Fatalf("alloc event unattributed: %+v", e)
		}
	}
	if allocs == 0 {
		t.Fatal("cons program streamed no alloc events")
	}
}
