package core

import (
	"strings"

	"tailspace/internal/env"
	"tailspace/internal/value"
)

// Answer renders the observable answer represented by a final configuration
// (v, σ) — Definition 11 of the paper. Procedures print as #<PROC>; vectors
// and pairs are chased through the store. The paper allows the answer to be
// an infinite token sequence (cyclic data); maxTokens bounds the rendering,
// appending "..." when the bound is hit.
func Answer(v value.Value, st *value.Store) string {
	var sb strings.Builder
	w := &answerWriter{st: st, budget: 100000}
	w.write(&sb, v)
	return sb.String()
}

type answerWriter struct {
	st     *value.Store
	budget int
}

func (w *answerWriter) spend(sb *strings.Builder) bool {
	if w.budget <= 0 {
		sb.WriteString("...")
		return false
	}
	w.budget--
	return true
}

func (w *answerWriter) write(sb *strings.Builder, v value.Value) {
	if !w.spend(sb) {
		return
	}
	switch x := v.(type) {
	case value.Bool:
		if bool(x) {
			sb.WriteString("#t")
		} else {
			sb.WriteString("#f")
		}
	case value.Num:
		sb.WriteString(x.Int.String())
	case value.Sym:
		sb.WriteString(string(x))
	case value.Str:
		sb.WriteByte('"')
		sb.WriteString(string(x))
		sb.WriteByte('"')
	case value.Char:
		sb.WriteString(`#\`)
		sb.WriteRune(rune(x))
	case value.Null:
		sb.WriteString("()")
	case value.Unspecified:
		sb.WriteString("#!unspecified")
	case value.Undefined:
		sb.WriteString("#!undefined")
	case value.Closure, value.Escape, *value.Primop, value.Foreign:
		sb.WriteString("#<PROC>")
	case value.Guarded:
		// A contracted procedure is observably a procedure: the monitor
		// machines' answers must match the erasing machines' token for token.
		sb.WriteString("#<PROC>")
	case *value.ArrowContract:
		sb.WriteString("#<CONTRACT>")
	case value.Vector:
		sb.WriteString("#(")
		for i, l := range x.ElemLocs {
			if i > 0 {
				sb.WriteByte(' ')
			}
			w.writeLoc(sb, l)
			if w.budget <= 0 {
				break
			}
		}
		sb.WriteByte(')')
	case value.Pair:
		sb.WriteByte('(')
		w.writePairChain(sb, x)
		sb.WriteByte(')')
	default:
		sb.WriteString("#<unknown>")
	}
}

func (w *answerWriter) writeLoc(sb *strings.Builder, l env.Location) {
	v, ok := w.st.Get(l)
	if !ok {
		sb.WriteString("#<dangling>")
		return
	}
	w.write(sb, v)
}

func (w *answerWriter) writePairChain(sb *strings.Builder, p value.Pair) {
	w.writeLoc(sb, p.CarLoc)
	cdr, ok := w.st.Get(p.CdrLoc)
	if !ok {
		sb.WriteString(" . #<dangling>")
		return
	}
	for {
		if !w.spend(sb) {
			return
		}
		switch x := cdr.(type) {
		case value.Null:
			return
		case value.Pair:
			sb.WriteByte(' ')
			w.writeLoc(sb, x.CarLoc)
			next, ok := w.st.Get(x.CdrLoc)
			if !ok {
				sb.WriteString(" . #<dangling>")
				return
			}
			cdr = next
		default:
			sb.WriteString(" . ")
			w.write(sb, cdr)
			return
		}
	}
}
