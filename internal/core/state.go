package core

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/value"
)

// State is an intermediate configuration of Figure 4: either (E, ρ, κ, σ)
// when Expr is non-nil, or (v, ρ, κ, σ) when Val is non-nil. The store σ is
// held by the Machine, not copied per state.
type State struct {
	Expr ast.Expr
	Val  value.Value
	Env  env.Env
	K    value.Cont
}

// EvalState builds an expression configuration.
func EvalState(e ast.Expr, rho env.Env, k value.Cont) State {
	return State{Expr: e, Env: rho, K: k}
}

// ValueState builds a value configuration.
func ValueState(v value.Value, rho env.Env, k value.Cont) State {
	return State{Val: v, Env: rho, K: k}
}

// IsFinal reports whether the state is a final configuration (v, σ): a value
// delivered to the halt continuation with its environment dropped.
func (s State) IsFinal() bool {
	if s.Val == nil {
		return false
	}
	_, halt := s.K.(value.Halt)
	return halt && s.Env.IsEmpty()
}

// Roots returns the locations mentioned by v/E, ρ, and κ — the roots the
// garbage collection rule traces from.
func (s State) Roots() []env.Location {
	return s.AppendRoots(nil)
}

// AppendRoots appends the state's GC roots to out; the append contract lets
// the runner reuse one scratch buffer across the per-transition collections
// of a space-efficient computation.
func (s State) AppendRoots(out []env.Location) []env.Location {
	if s.Val != nil {
		out = value.Locations(s.Val, out)
	}
	out = s.Env.AppendLocations(out)
	return value.ContLocations(s.K, out)
}

func (s State) String() string {
	if s.Expr != nil {
		return fmt.Sprintf("(eval %s |ρ|=%d depth=%d)", s.Expr, s.Env.Size(), value.Depth(s.K))
	}
	return fmt.Sprintf("(value %T |ρ|=%d depth=%d)", s.Val, s.Env.Size(), value.Depth(s.K))
}

// StuckError reports a stuck computation: a program error, or — for Z_stack —
// a stack allocation that created a dangling pointer (Definition 21).
type StuckError struct {
	Reason string
	Step   int
}

func (e *StuckError) Error() string {
	return fmt.Sprintf("stuck at step %d: %s", e.Step, e.Reason)
}

// IsDangling reports whether the computation stuck because the Z_stack
// deletion strategy would have created a dangling pointer.
func (e *StuckError) IsDangling() bool {
	return e.Reason != "" && len(e.Reason) >= len(danglingPrefix) && e.Reason[:len(danglingPrefix)] == danglingPrefix
}

const danglingPrefix = "stack deletion would dangle"
