package core

import (
	"fmt"
	"sort"
	"testing"

	"tailspace/internal/corpus"
	"tailspace/internal/obs"
	"tailspace/internal/space"
)

// sliceSink records every emitted event in order, so two runs can be compared
// observation-for-observation.
type sliceSink struct{ events []obs.Event }

func (s *sliceSink) Emit(e obs.Event) { s.events = append(s.events, e) }

// TestArenaStoreMatchesMapStoreOnCorpus is the differential suite for the
// memory-subsystem rewrite: every corpus program, under every reference
// implementation, with both meter implementations, run once on the arena
// store and once on the map-backed reference store. The two runs must agree
// on everything observable — answer, step count, flat/linked/heap peaks,
// collection totals, the whole metrics registry, and the complete event
// stream (transitions, GC applications with reclaim counts, allocations with
// their locations, and peak updates). The arena, the epoch-mark collector,
// the interned environments, and the root-delta fast path are throughput
// changes only; any semantic drift shows up here as a first-divergence diff.
func TestArenaStoreMatchesMapStoreOnCorpus(t *testing.T) {
	maxSteps := 1_200
	if testing.Short() {
		maxSteps = 500
	}
	meters := []struct {
		name string
		mk   func() space.Meter
	}{
		{"delta", func() space.Meter { return space.NewDeltaMeter(space.Fixnum) }},
		{"full", func() space.Meter { return space.NewFullMeter(space.Fixnum) }},
	}
	for _, v := range Variants {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for _, meter := range meters {
				for _, p := range corpus.All() {
					run := func(mapStore bool) (Result, []obs.Event) {
						sink := &sliceSink{}
						res, err := RunProgram(p.Source, Options{
							Variant: v, Measure: true, GCEvery: 1,
							MaxSteps: maxSteps, CostModel: space.Fixnum,
							MapStore: mapStore, Events: sink,
							Meter: meter.mk(),
						})
						if err != nil {
							t.Fatalf("%s [%s/%s] mapStore=%v: %v", p.Name, v, meter.name, mapStore, err)
						}
						return res, sink.events
					}
					arena, arenaEvents := run(false)
					ref, refEvents := run(true)
					if arena.Store.IsMapBacked() || !ref.Store.IsMapBacked() {
						t.Fatalf("%s: store representations not as requested", p.Name)
					}
					if diff := diffStoreRuns(arena, ref); diff != "" {
						t.Errorf("%s [%s/%s]: arena vs map store: %s", p.Name, v, meter.name, diff)
					}
					if diff := diffEventStreams(arenaEvents, refEvents); diff != "" {
						t.Errorf("%s [%s/%s]: event streams diverge: %s", p.Name, v, meter.name, diff)
					}
				}
			}
		})
	}
}

// diffStoreRuns extends diffResults (answers, steps, peaks) with the GC
// totals and the full metrics registry.
func diffStoreRuns(arena, ref Result) string {
	if diff := diffResults(arena, ref); diff != "" {
		return diff
	}
	if arena.PeakContDepth != ref.PeakContDepth {
		return fmt.Sprintf("PeakContDepth arena=%d map=%d", arena.PeakContDepth, ref.PeakContDepth)
	}
	if arena.Collections != ref.Collections {
		return fmt.Sprintf("Collections arena=%d map=%d", arena.Collections, ref.Collections)
	}
	if arena.Collected != ref.Collected {
		return fmt.Sprintf("Collected arena=%d map=%d", arena.Collected, ref.Collected)
	}
	a, b := arena.Metrics.Snapshot(), ref.Metrics.Snapshot()
	names := make([]string, 0, len(a)+len(b))
	for k := range a {
		names = append(names, k)
	}
	for k := range b {
		if _, dup := a[k]; !dup {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		if a[k] != b[k] {
			return fmt.Sprintf("metric %s arena=%d map=%d", k, a[k], b[k])
		}
	}
	return ""
}

// diffEventStreams reports the first index where the two observation streams
// disagree. Store representation must be invisible to observers, so the
// streams are required to be identical element-for-element.
func diffEventStreams(arena, ref []obs.Event) string {
	n := len(arena)
	if len(ref) < n {
		n = len(ref)
	}
	for i := 0; i < n; i++ {
		if arena[i] != ref[i] {
			return fmt.Sprintf("event %d: arena=%+v map=%+v", i, arena[i], ref[i])
		}
	}
	if len(arena) != len(ref) {
		return fmt.Sprintf("length arena=%d map=%d", len(arena), len(ref))
	}
	return ""
}
