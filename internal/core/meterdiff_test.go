package core

import (
	"errors"
	"fmt"
	"testing"

	"tailspace/internal/corpus"
	"tailspace/internal/space"
)

// TestDeltaMeterMatchesFullMeterOnCorpus is the differential suite for the
// metering pipeline: every corpus program under every reference
// implementation and every cost model, measured once with the incremental
// DeltaMeter and once with the from-scratch FullMeter oracle. The peaks
// must be bit-identical — the delta meter is an optimization, not an
// approximation — under LogModel too, where the charge components are
// maintained incrementally and the pointer width is applied at observation
// time (DESIGN.md §12).
//
// MaxSteps is capped well below the default: both meters observe the same
// transition prefix, so peaks stay comparable even on runs that hit the
// bound, and the full Figure 8 walk per step — O(steps × reachable cells),
// quadratic on deep-continuation programs — would otherwise dominate the
// suite's runtime.
func TestDeltaMeterMatchesFullMeterOnCorpus(t *testing.T) {
	maxSteps := 1_200
	if testing.Short() {
		maxSteps = 500
	}
	for _, v := range Variants {
		for _, model := range space.Models {
			v, model := v, model
			t.Run(v.Name+"/"+model.Name(), func(t *testing.T) {
				t.Parallel()
				for _, p := range corpus.All() {
					opts := Options{
						Variant: v, Measure: true, GCEvery: 1,
						MaxSteps: maxSteps, CostModel: model,
					}
					opts.Meter = space.NewFullMeter(model)
					full, err := RunProgram(p.Source, opts)
					if err != nil {
						t.Fatalf("%s: full meter: %v", p.Name, err)
					}
					opts.Meter = space.NewDeltaMeter(model)
					delta, err := RunProgram(p.Source, opts)
					if err != nil {
						t.Fatalf("%s: delta meter: %v", p.Name, err)
					}
					if diff := diffResults(full, delta); diff != "" {
						t.Errorf("%s [%s, %s]: meters disagree: %s", p.Name, v, model.Name(), diff)
					}
				}
			})
		}
	}
}

func diffResults(full, delta Result) string {
	if full.PeakFlat != delta.PeakFlat {
		return fmt.Sprintf("PeakFlat full=%d delta=%d", full.PeakFlat, delta.PeakFlat)
	}
	if full.PeakLinked != delta.PeakLinked {
		return fmt.Sprintf("PeakLinked full=%d delta=%d", full.PeakLinked, delta.PeakLinked)
	}
	if full.PeakHeap != delta.PeakHeap {
		return fmt.Sprintf("PeakHeap full=%d delta=%d", full.PeakHeap, delta.PeakHeap)
	}
	if full.Steps != delta.Steps {
		return fmt.Sprintf("Steps full=%d delta=%d", full.Steps, delta.Steps)
	}
	if full.Answer != delta.Answer {
		return fmt.Sprintf("Answer full=%q delta=%q", full.Answer, delta.Answer)
	}
	if !sameRunError(full.Err, delta.Err) {
		return fmt.Sprintf("Err full=%v delta=%v", full.Err, delta.Err)
	}
	return ""
}

func sameRunError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if errors.Is(a, ErrMaxSteps) && errors.Is(b, ErrMaxSteps) {
		return true
	}
	return a.Error() == b.Error()
}
