package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tailspace/internal/space"
)

func TestApplyPrimitive(t *testing.T) {
	cases := map[string]string{
		"(apply + '(1 2 3))":                     "6",
		"(apply + 1 2 '(3 4))":                   "10",
		"(apply list 1 '(2 3))":                  "(1 2 3)",
		"(apply (lambda (a b) (- a b)) '(10 3))": "7",
		"(apply apply (list + '(1 2)))":          "3",
		"(apply car '((5 6)))":                   "5",
	}
	for src, want := range cases {
		wantAnswerAll(t, src, want)
	}
}

func TestApplyErrors(t *testing.T) {
	for _, src := range []string{
		"(apply +)",
		"(apply + 1 2)",  // last argument not a list
		"(apply 5 '(1))", // non-procedure
	} {
		res := runSrc(t, Tail, src)
		if res.Err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestApplyWithCallCC(t *testing.T) {
	wantAnswerAll(t, "(+ 1 (call/cc (lambda (k) (apply k '(10)))))", "11")
}

func TestStringProgramsAllVariants(t *testing.T) {
	wantAnswerAll(t, `(string-append "a" "b" "c")`, `"abc"`)
	wantAnswerAll(t, `(string->symbol (string-append "he" "llo"))`, "hello")
	wantAnswerAll(t, `(string-length (symbol->string 'abcdef))`, "6")
}

// TestGCPeriodMonotonicity: collecting less often can only increase the
// peak, pointwise, because the computations are identical and the lazier
// store is always a superset.
func TestGCPeriodMonotonicity(t *testing.T) {
	progs := []string{
		"(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 60)",
		"(define (build n) (if (zero? n) '() (cons n (build (- n 1))))) (length (build 25))",
		"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 10)",
	}
	for _, src := range progs {
		var prev int
		for i, k := range []int{1, 4, 16} {
			res, err := RunProgram(src, Options{
				Variant: Tail, Measure: true, FlatOnly: true,
				GCEvery: k, CostModel: space.Fixnum,
			})
			if err != nil || res.Err != nil {
				t.Fatalf("%v %v", err, res.Err)
			}
			if i > 0 && res.PeakFlat < prev {
				t.Fatalf("%q: peak with k=%d (%d) below denser collection (%d)", src, k, res.PeakFlat, prev)
			}
			prev = res.PeakFlat
		}
	}
}

// TestPropertyGCNeverChangesAnswers uses testing/quick over generated
// integer programs: the GC rule is invisible to observable answers.
func TestPropertyGCNeverChangesAnswers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomIntProgram(r, 4)
		var answers []string
		for _, k := range []int{0, 1, 5} {
			res, err := RunProgram(src, Options{Variant: Tail, GCEvery: k, MaxSteps: 300_000})
			if err != nil || res.Err != nil {
				return false
			}
			answers = append(answers, res.Answer)
		}
		return answers[0] == answers[1] && answers[1] == answers[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTraceFlatMatchesPeak: the maximum of the traced series equals
// the reported peak.
func TestPropertyTraceFlatMatchesPeak(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomIntProgram(r, 3)
		maxFlat := 0
		opts := Options{
			Variant: Tail, Measure: true, FlatOnly: true, MaxSteps: 300_000,
			Trace: func(p TracePoint) {
				if p.Flat > maxFlat {
					maxFlat = p.Flat
				}
			},
		}
		res, err := RunProgram(src, opts)
		if err != nil || res.Err != nil {
			return false
		}
		return maxFlat == res.PeakFlat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomIntProgram is a tiny local generator (the full one lives in
// internal/experiments, which this package cannot import).
func randomIntProgram(r *rand.Rand, depth int) string {
	if depth <= 0 {
		return itoa(r.Intn(9))
	}
	switch r.Intn(5) {
	case 0:
		return "(+ " + randomIntProgram(r, depth-1) + " " + randomIntProgram(r, depth-1) + ")"
	case 1:
		return "(if (zero? " + randomIntProgram(r, depth-1) + ") " +
			randomIntProgram(r, depth-1) + " " + randomIntProgram(r, depth-1) + ")"
	case 2:
		return "(let ((t " + randomIntProgram(r, depth-1) + ")) (* t 2))"
	case 3:
		return "(car (cons " + randomIntProgram(r, depth-1) + " '()))"
	default:
		return "((lambda (x) (- x 1)) " + randomIntProgram(r, depth-1) + ")"
	}
}

// TestMeasureAllVariantsOnMetacircular is a heavyweight end-to-end check:
// the metacircular evaluator program runs identically on every machine with
// full metering on.
func TestMeasureAllVariantsOnMetacircular(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	src := `
(define (zip ks vs)
  (if (null? ks) '() (cons (cons (car ks) (car vs)) (zip (cdr ks) (cdr vs)))))
(define (lookup x env)
  (cond ((null? env) (error "unbound"))
        ((eqv? (caar env) x) (cdar env))
        (else (lookup x (cdr env)))))
(define (ev e env)
  (cond ((number? e) e)
        ((symbol? e) (lookup e env))
        ((eqv? (car e) 'quote) (cadr e))
        ((eqv? (car e) 'if)
         (if (ev (cadr e) env) (ev (caddr e) env) (ev (cadddr e) env)))
        ((eqv? (car e) 'lambda) (list 'closure (cadr e) (caddr e) env))
        (else (ap (ev (car e) env) (evlis (cdr e) env)))))
(define (evlis es env)
  (if (null? es) '() (cons (ev (car es) env) (evlis (cdr es) env))))
(define (ap f args)
  (if (pair? f)
      (ev (caddr f) (append (zip (cadr f) args) (cadddr f)))
      (apply f args)))
(ev '((lambda (f n) (f f n))
      (lambda (self n) (if (zero? n) 1 (* n (self self (- n 1)))))
      6)
    (list (cons 'zero? zero?) (cons '* *) (cons '- -)))`
	for _, v := range AllVariants {
		res, err := RunProgram(src, Options{Variant: v, Measure: true, MaxSteps: 3_000_000})
		if err != nil || res.Err != nil {
			t.Fatalf("[%s] %v %v", v, err, res.Err)
		}
		if res.Answer != "720" {
			t.Fatalf("[%s] answer %q", v, res.Answer)
		}
		if res.PeakLinked > res.PeakFlat {
			t.Fatalf("[%s] U > S", v)
		}
	}
}
