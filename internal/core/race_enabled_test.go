//go:build race

package core

// raceDetectorEnabled reports whether this test binary was built with
// -race. The race detector multiplies single-core runtime by ~5-10x, so
// the heaviest differential matrices subsample under it (the plain
// `go test ./...` run always covers the full matrix).
const raceDetectorEnabled = true
