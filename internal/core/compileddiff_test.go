package core

import (
	"testing"

	"tailspace/internal/corpus"
	"tailspace/internal/obs"
	"tailspace/internal/space"
)

// TestCompiledMatchesStepperOnCorpus is the differential suite for the
// compiled execution backend: every corpus program, under all seven machines
// (the six paper variants plus MTA) and every cost model, run once on the
// stepper and once compiled. The two runs must agree on everything
// observable — answer, step count, flat/linked/heap peaks, collection
// totals, the full metrics registry (per-rule transition counts included),
// and the complete event stream element-for-element (transitions with their
// rule tags and per-step space figures, GC applications with reclaim counts,
// allocations with locations and attributed source expressions, peak
// updates). Lexical addressing, opcode dispatch, and capture plans are
// throughput changes only; any semantic drift shows up here as a
// first-divergence diff.
func TestCompiledMatchesStepperOnCorpus(t *testing.T) {
	maxSteps := 1_200
	models := []space.CostModel{space.Word, space.Fixnum, space.Log}
	progs := corpus.All()
	if testing.Short() {
		maxSteps = 500
		models = []space.CostModel{space.Fixnum}
	}
	if raceDetectorEnabled {
		// A race in the compiled path shows up on any program; the full
		// matrix is the plain run's job. One model and every other
		// program keeps the -race pass inside the package timeout.
		models = []space.CostModel{space.Word}
		progs = everyOther(progs)
	}
	for _, v := range AllVariants {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for _, model := range models {
				for _, p := range progs {
					run := func(backend Backend) (Result, []obs.Event) {
						sink := &sliceSink{}
						res, err := RunProgram(p.Source, Options{
							Variant: v, Measure: true, GCEvery: 1,
							MaxSteps: maxSteps, CostModel: model,
							Events: sink, Backend: backend,
						})
						if err != nil {
							t.Fatalf("%s [%s/%s] backend=%v: %v", p.Name, v, model.Name(), backend, err)
						}
						return res, sink.events
					}
					stepper, stepperEvents := run(BackendStepper)
					compiled, compiledEvents := run(BackendCompiled)
					if diff := diffStoreRuns(compiled, stepper); diff != "" {
						t.Errorf("%s [%s/%s]: compiled vs stepper: %s", p.Name, v, model.Name(), diff)
					}
					if diff := diffEventStreams(compiledEvents, stepperEvents); diff != "" {
						t.Errorf("%s [%s/%s]: event streams diverge: %s", p.Name, v, model.Name(), diff)
					}
				}
			}
		})
	}
}

// TestCompiledFallsBackOnContracts pins the graceful-degradation contract
// for monitored programs: compile.Program rejects ast.Mon, so a contracted
// program requested under BackendCompiled silently runs on the stepper —
// it must complete with the stepper's exact answer, peaks, and event
// stream on the monitor machines (and the erasing ones), never diverge or
// get stuck on an unplanned monitor frame.
func TestCompiledFallsBackOnContracts(t *testing.T) {
	for _, name := range []string{"contracted-loop", "contracted-leak"} {
		p, ok := corpus.ByName(name)
		if !ok {
			t.Fatalf("corpus program %s missing", name)
		}
		for _, v := range []Variant{Tail, Naive, SpaceEff} {
			run := func(backend Backend) (Result, []obs.Event) {
				sink := &sliceSink{}
				res, err := RunProgram(p.Source, Options{
					Variant: v, Measure: true, GCEvery: 1,
					MaxSteps: 500_000, CostModel: space.Fixnum,
					Events: sink, Backend: backend,
				})
				if err != nil {
					t.Fatalf("%s [%s] backend=%v: %v", name, v, backend, err)
				}
				return res, sink.events
			}
			stepper, stepperEvents := run(BackendStepper)
			compiled, compiledEvents := run(BackendCompiled)
			if compiled.Err != nil || compiled.Answer != p.Answer {
				t.Errorf("%s [%s] compiled: answer %q err %v, want %q",
					name, v, compiled.Answer, compiled.Err, p.Answer)
			}
			if diff := diffStoreRuns(compiled, stepper); diff != "" {
				t.Errorf("%s [%s]: compiled vs stepper: %s", name, v, diff)
			}
			if diff := diffEventStreams(compiledEvents, stepperEvents); diff != "" {
				t.Errorf("%s [%s]: event streams diverge: %s", name, v, diff)
			}
		}
	}
}

// TestCompiledMatchesStepperRightToLeft repeats the corpus differential under
// right-to-left argument order, which exercises the compiled permutation
// plans (Reassemble) that left-to-right never builds.
func TestCompiledMatchesStepperRightToLeft(t *testing.T) {
	maxSteps := 1_200
	if testing.Short() {
		maxSteps = 500
	}
	progs := corpus.All()
	if raceDetectorEnabled {
		progs = everyOther(progs)
	}
	for _, v := range AllVariants {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for _, p := range progs {
				run := func(backend Backend) (Result, []obs.Event) {
					sink := &sliceSink{}
					res, err := RunProgram(p.Source, Options{
						Variant: v, Measure: true, GCEvery: 1,
						MaxSteps: maxSteps, CostModel: space.Fixnum,
						Order: RightToLeft, Events: sink, Backend: backend,
					})
					if err != nil {
						t.Fatalf("%s [%s] backend=%v: %v", p.Name, v, backend, err)
					}
					return res, sink.events
				}
				stepper, stepperEvents := run(BackendStepper)
				compiled, compiledEvents := run(BackendCompiled)
				if diff := diffStoreRuns(compiled, stepper); diff != "" {
					t.Errorf("%s [%s, r2l]: compiled vs stepper: %s", p.Name, v, diff)
				}
				if diff := diffEventStreams(compiledEvents, stepperEvents); diff != "" {
					t.Errorf("%s [%s, r2l]: event streams diverge: %s", p.Name, v, diff)
				}
			}
		})
	}
}

// everyOther halves a corpus slice for the -race pass.
func everyOther(ps []corpus.Program) []corpus.Program {
	out := make([]corpus.Program, 0, (len(ps)+1)/2)
	for i := 0; i < len(ps); i += 2 {
		out = append(out, ps[i])
	}
	return out
}

// TestCompiledPeakAttributionMatchesStepper pins the peak-attribution path:
// compiled nodes must unwrap to their source expressions so the report names
// the same AST node (identity, not just spelling) as the stepper's.
func TestCompiledPeakAttributionMatchesStepper(t *testing.T) {
	for _, v := range []Variant{Tail, SFS, Stack} {
		for _, p := range corpus.All()[:4] {
			run := func(backend Backend) Result {
				res, err := RunProgram(p.Source, Options{
					Variant: v, Measure: true, GCEvery: 1, MaxSteps: 1_200,
					CostModel: space.Fixnum, AttributePeak: true, Backend: backend,
				})
				if err != nil {
					t.Fatalf("%s [%s] backend=%v: %v", p.Name, v, backend, err)
				}
				return res
			}
			stepper := run(BackendStepper)
			compiled := run(BackendCompiled)
			if (stepper.Peak == nil) != (compiled.Peak == nil) {
				t.Fatalf("%s [%s]: peak report presence differs", p.Name, v)
			}
			if stepper.Peak == nil {
				continue
			}
			sp, cp := stepper.Peak, compiled.Peak
			if sp.NodeID != cp.NodeID || sp.Expr != cp.Expr || sp.Rule != cp.Rule ||
				sp.Step != cp.Step || sp.Flat != cp.Flat {
				t.Errorf("%s [%s]: peak report diverges: stepper=%+v compiled=%+v", p.Name, v, sp, cp)
			}
		}
	}
}
