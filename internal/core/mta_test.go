package core

import (
	"testing"

	"tailspace/internal/env"
	"tailspace/internal/space"
	"tailspace/internal/value"
)

func TestCompressCollapsesReturnRuns(t *testing.T) {
	rho := env.Empty().Extend([]string{"x"}, []env.Location{1})
	var k value.Cont = value.Halt{}
	inner := &value.Return{Env: rho, K: k}
	mid := &value.Return{Env: rho, K: inner}
	outer := &value.Return{Env: rho, K: mid}
	got := CompressReturnChains(outer)
	r, ok := got.(*value.Return)
	if !ok {
		t.Fatalf("got %T", got)
	}
	if _, ok := r.K.(value.Halt); !ok {
		t.Fatalf("chain of 3 must collapse to 1, inner is %T", r.K)
	}
	// The surviving frame is the innermost one.
	if r != inner {
		t.Fatal("the innermost frame must survive")
	}
}

func TestCompressPreservesInterleavedFrames(t *testing.T) {
	rho := env.Empty()
	var k value.Cont = value.Halt{}
	k = &value.Return{Env: rho, K: k}
	k = &value.Call{Args: nil, K: k}
	k = &value.Return{Env: rho, K: k}
	k = &value.Return{Env: rho, K: k}
	got := CompressReturnChains(k)
	// return return call return halt -> return call return halt
	if value.Depth(got) != 4 {
		t.Fatalf("depth = %d, want 4", value.Depth(got))
	}
}

func TestCompressIdempotentAndStableOnCleanChains(t *testing.T) {
	rho := env.Empty()
	var k value.Cont = value.Halt{}
	k = &value.Return{Env: rho, K: k}
	k = &value.Select{Then: nil, Else: nil, Env: rho, K: k}
	once := CompressReturnChains(k)
	if once != k {
		t.Fatal("a chain with no runs must be returned unchanged")
	}
}

func TestMTAComputesSameAnswers(t *testing.T) {
	programs := map[string]string{
		"(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 500)":                      "0",
		"(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)": "144",
		"(let ((x 1)) (begin (set! x 41) (+ x 1)))":                                "42",
		"(+ 1 (call/cc (lambda (k) (k 10) 99)))":                                   "11",
	}
	for src, want := range programs {
		res, err := RunProgram(src, Options{Variant: MTA, Measure: true, GCEvery: 1})
		if err != nil || res.Err != nil {
			t.Fatalf("%q: %v %v", src, err, res.Err)
		}
		if res.Answer != want {
			t.Fatalf("%q = %q, want %q", src, res.Answer, want)
		}
	}
}

// TestMTAIsProperlyTailRecursive is the Section 14 claim: the machine that
// allocates a frame for every call but collects frames too lands in
// O(S_tail) — constant space on the iterative loop — even though no
// syntactic definition of proper tail recursion admits it.
func TestMTAIsProperlyTailRecursive(t *testing.T) {
	fixnum := func(o *Options) { o.CostModel = space.Fixnum }
	small := measure(t, MTA, countdownLoop, 10, fixnum, flatOnly)
	large := measure(t, MTA, countdownLoop, 500, fixnum, flatOnly)
	if small.Err != nil || large.Err != nil {
		t.Fatalf("%v %v", small.Err, large.Err)
	}
	if large.PeakFlat != small.PeakFlat {
		t.Fatalf("MTA loop must run in constant space: S(10)=%d, S(500)=%d",
			small.PeakFlat, large.PeakFlat)
	}
	// Sanity: plain Z_gc on the same sweep is NOT constant.
	gcSmall := measure(t, GC, countdownLoop, 10, fixnum, flatOnly)
	gcLarge := measure(t, GC, countdownLoop, 500, fixnum, flatOnly)
	if gcLarge.PeakFlat <= gcSmall.PeakFlat {
		t.Fatal("control broken: Z_gc should grow")
	}
}

// TestMTAPeriodicCollectionBoundedFactor mirrors Section 12 for frames: with
// collection every k steps the frame run grows to at most O(k), a constant
// factor independent of the input.
func TestMTAPeriodicCollectionBoundedFactor(t *testing.T) {
	fixnum := func(o *Options) { o.CostModel = space.Fixnum }
	lazy := func(o *Options) { o.GCEvery = 20; o.CostModel = space.Fixnum }
	everyStep := measure(t, MTA, countdownLoop, 400, fixnum, flatOnly)
	periodic := measure(t, MTA, countdownLoop, 400, lazy, flatOnly)
	if everyStep.Err != nil || periodic.Err != nil {
		t.Fatalf("%v %v", everyStep.Err, periodic.Err)
	}
	if periodic.PeakFlat < everyStep.PeakFlat {
		t.Fatal("lazier collection cannot shrink space")
	}
	ratio := float64(periodic.PeakFlat) / float64(everyStep.PeakFlat)
	if ratio > 4 {
		t.Fatalf("frame-collection factor blew up: %.2f", ratio)
	}
	// And crucially, the periodic peak is still input-independent.
	periodicSmall := measure(t, MTA, countdownLoop, 50, lazy, flatOnly)
	if periodic.PeakFlat != periodicSmall.PeakFlat {
		t.Fatalf("periodic MTA must stay constant in n: S(50)=%d S(400)=%d",
			periodicSmall.PeakFlat, periodic.PeakFlat)
	}
}

func TestMTAEscapesSurviveCompression(t *testing.T) {
	// A continuation captured before compression must still work after
	// frames around it were collapsed.
	src := `
(define (loop n k)
  (if (zero? n) (k 'done) (loop (- n 1) k)))
(call/cc (lambda (k) (loop 100 k)))`
	res, err := RunProgram(src, Options{Variant: MTA, Measure: true, GCEvery: 3})
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.Answer != "done" {
		t.Fatalf("answer %q", res.Answer)
	}
}
