// Package core implements the family of reference implementations from the
// paper: small-step CEKS machines over Core Scheme whose only differences
// are the rules Sections 7-10 vary. The family is:
//
//	Tail   Z_tail   Figure 5: properly tail recursive; calls are gotos.
//	GC     Z_gc     Section 8: every call pushes return:(ρ',κ).
//	Stack  Z_stack  Section 8: every call pushes return:(A,ρ',κ) and returning
//	                deletes the locations in A (Algol-like stack allocation).
//	Evlis  Z_evlis  Section 9: the continuation for the last subexpression of
//	                a call holds the empty environment.
//	Free   Z_free   Section 10: closures close over free variables only.
//	SFS    Z_sfs    Section 10: Z_evlis + free-variable restriction of every
//	                environment stored in a continuation (safe for space).
package core

// MonitorStyle selects how a machine treats contract monitors (mon ctc e).
type MonitorStyle int

const (
	// MonitorNone evaluates the contract expression and then erases the
	// monitor: the monitored expression's value flows through unwrapped.
	// Contracts are never checked, so a MonitorNone machine realizes the
	// erasure semantics every monitor machine must agree with on answers.
	MonitorNone MonitorStyle = iota
	// MonitorNaive wraps contracted procedures and pushes a fresh pending
	// codomain check on every guarded call. On a contracted tail loop the
	// pending checks pile up — Θ(n) monitor frames, the classic space leak
	// of latent higher-order contracts.
	MonitorNaive
	// MonitorJoin wraps like MonitorNaive but joins a new codomain check
	// into an adjacent mon-cod frame, dropping duplicates by contract
	// identity — Greenberg's space-efficient semantics, O(1) monitor frames
	// on a contracted tail loop.
	MonitorJoin
)

// CallStyle selects the rule used when a closure is called.
type CallStyle int

const (
	// CallTail performs the call as a goto: no continuation is created
	// (the last continuation rule of Figure 5).
	CallTail CallStyle = iota
	// CallReturn pushes return:(ρ',κ) on every call (Z_gc, Section 8).
	CallReturn
	// CallStackReturn pushes return:(A,ρ',κ) with A = the freshly allocated
	// argument locations, deleted on return (Z_stack, Section 8).
	CallStackReturn
)

// Variant selects one member of the reference-implementation family.
type Variant struct {
	// Name is the paper's name for the machine.
	Name string
	// Call selects the procedure-call rule.
	Call CallStyle
	// EvlisLastEnv holds the empty environment in the continuation for the
	// last subexpression of a call (Section 9).
	EvlisLastEnv bool
	// FreeClosures closes lambdas over their free variables only
	// (Section 10).
	FreeClosures bool
	// RestrictConts restricts every environment stored in a select, assign,
	// or push continuation to the free variables of the expressions that
	// will be evaluated with it (Section 10). It subsumes EvlisLastEnv.
	RestrictConts bool
	// Monitor selects the contract-monitoring discipline: erase (the six
	// paper machines), naive wrapping, or space-efficient joining.
	Monitor MonitorStyle
	// CompressFrames extends the garbage collection rule to continuations:
	// whenever the collector runs, a return continuation whose target is
	// another return continuation is collapsed (its saved environment is
	// dead, so invoking the outer frame would just invoke the inner one).
	// This models Baker's Cheney-on-the-MTA technique that Section 14
	// describes: "allocate stack frames for all calls, but perform periodic
	// garbage collection of stack frames as well as heap nodes [Bak95]. A
	// definition of proper tail recursion that is based on asymptotic space
	// complexity allows this technique. To my knowledge, no other formal
	// definitions do."
	CompressFrames bool
}

// The six reference implementations, plus the Section 14 MTA machine.
var (
	Tail  = Variant{Name: "tail", Call: CallTail}
	GC    = Variant{Name: "gc", Call: CallReturn}
	Stack = Variant{Name: "stack", Call: CallStackReturn}
	Evlis = Variant{Name: "evlis", Call: CallTail, EvlisLastEnv: true}
	Free  = Variant{Name: "free", Call: CallTail, FreeClosures: true}
	SFS   = Variant{Name: "sfs", Call: CallTail, EvlisLastEnv: true, FreeClosures: true, RestrictConts: true}
	// MTA pushes a return frame on every call, exactly like Z_gc, but its
	// collector compresses dead frame chains; the space class collapses
	// back to O(S_tail), which is the Section 14 observation this machine
	// exists to demonstrate.
	MTA = Variant{Name: "mta", Call: CallReturn, CompressFrames: true}
	// Naive is Z_tail plus naive contract monitoring: properly tail
	// recursive until a contract intervenes, at which point every guarded
	// call leaves a pending codomain check behind.
	Naive = Variant{Name: "naive", Call: CallTail, Monitor: MonitorNaive}
	// SpaceEff is Z_tail plus space-efficient contract monitoring: adjacent
	// pending checks join and duplicates (by contract identity) are
	// dropped, restoring bounded space on contracted tail loops.
	SpaceEff = Variant{Name: "spaceff", Call: CallTail, Monitor: MonitorJoin}
)

// Variants lists the reference-implementation family in the order of
// Figure 6's hierarchy discussion, followed by the two contract-monitoring
// machines (which coincide with Z_tail on contract-free programs). MTA is
// not part of the paper's family (it is the Section 14 aside), so it is
// listed separately.
var Variants = []Variant{Stack, GC, Tail, Evlis, Free, SFS, Naive, SpaceEff}

// AllVariants includes the Section 14 MTA machine.
var AllVariants = append(append([]Variant{}, Variants...), MTA)

// ByName returns the variant with the given name (MTA included).
func ByName(name string) (Variant, bool) {
	for _, v := range AllVariants {
		if v.Name == name {
			return v, true
		}
	}
	return Variant{}, false
}

func (v Variant) String() string { return v.Name }
