package core

import (
	"errors"
	"strings"
	"testing"
)

// runSrc evaluates program source under a variant and returns the answer.
func runSrc(t *testing.T, variant Variant, src string) Result {
	t.Helper()
	res, err := RunProgram(src, Options{Variant: variant, MaxSteps: 2_000_000})
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return res
}

func wantAnswer(t *testing.T, variant Variant, src, want string) {
	t.Helper()
	res := runSrc(t, variant, src)
	if res.Err != nil {
		t.Fatalf("[%s] %q: %v", variant, src, res.Err)
	}
	if res.Answer != want {
		t.Fatalf("[%s] %q = %q, want %q", variant, src, res.Answer, want)
	}
}

func wantAnswerAll(t *testing.T, src, want string) {
	t.Helper()
	for _, v := range Variants {
		wantAnswer(t, v, src, want)
	}
}

func TestConstants(t *testing.T) {
	wantAnswerAll(t, "42", "42")
	wantAnswerAll(t, "#t", "#t")
	wantAnswerAll(t, "#f", "#f")
	wantAnswerAll(t, "'sym", "sym")
	wantAnswerAll(t, `"hi"`, `"hi"`)
	wantAnswerAll(t, "'()", "()")
}

func TestArithmeticPrograms(t *testing.T) {
	wantAnswerAll(t, "(+ 1 2 3)", "6")
	wantAnswerAll(t, "(* (+ 1 2) (- 10 4))", "18")
	wantAnswerAll(t, "(quotient 17 5)", "3")
}

func TestIf(t *testing.T) {
	wantAnswerAll(t, "(if #t 1 2)", "1")
	wantAnswerAll(t, "(if #f 1 2)", "2")
	wantAnswerAll(t, "(if 0 1 2)", "1") // only #f is false
	wantAnswerAll(t, "(if '() 1 2)", "1")
}

func TestLambdaAndApplication(t *testing.T) {
	wantAnswerAll(t, "((lambda (x) x) 7)", "7")
	wantAnswerAll(t, "((lambda (x y) (- x y)) 10 3)", "7")
	wantAnswerAll(t, "((lambda () 42))", "42")
}

func TestClosureCapture(t *testing.T) {
	wantAnswerAll(t, "(((lambda (x) (lambda (y) (+ x y))) 3) 4)", "7")
}

func TestLetForms(t *testing.T) {
	wantAnswerAll(t, "(let ((x 2) (y 3)) (* x y))", "6")
	wantAnswerAll(t, "(let* ((x 2) (y (* x x))) y)", "4")
	wantAnswerAll(t, "(letrec ((f (lambda (n) (if (zero? n) 1 (* n (f (- n 1))))))) (f 5))", "120")
}

func TestNamedLetLoop(t *testing.T) {
	wantAnswerAll(t, "(let loop ((i 0) (acc 0)) (if (= i 5) acc (loop (+ i 1) (+ acc i))))", "10")
}

func TestSetBang(t *testing.T) {
	wantAnswerAll(t, "(let ((x 1)) (begin (set! x 42) x))", "42")
}

func TestSequencing(t *testing.T) {
	wantAnswerAll(t, "(begin 1 2 3)", "3")
	wantAnswerAll(t, "(let ((x 0)) (begin (set! x (+ x 1)) (set! x (+ x 10)) x))", "11")
}

func TestMutualRecursion(t *testing.T) {
	src := `
(define (my-even? n) (if (zero? n) #t (my-odd? (- n 1))))
(define (my-odd? n) (if (zero? n) #f (my-even? (- n 1))))
(my-even? 10)`
	wantAnswerAll(t, src, "#t")
}

func TestFibonacci(t *testing.T) {
	src := `
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 10)`
	wantAnswerAll(t, src, "55")
}

func TestDataStructures(t *testing.T) {
	wantAnswerAll(t, "(cons 1 2)", "(1 . 2)")
	wantAnswerAll(t, "(list 1 2 3)", "(1 2 3)")
	wantAnswerAll(t, "'(1 (2 3) 4)", "(1 (2 3) 4)")
	wantAnswerAll(t, "(vector 1 2)", "#(1 2)")
	wantAnswerAll(t, "(make-vector 3 'a)", "#(a a a)")
	wantAnswerAll(t, "(reverse '(1 2 3))", "(3 2 1)")
	wantAnswerAll(t, "(append '(1) '(2 3))", "(1 2 3)")
}

func TestHigherOrder(t *testing.T) {
	src := `
(define (map1 f l) (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))
(map1 (lambda (x) (* x x)) '(1 2 3 4))`
	wantAnswerAll(t, src, "(1 4 9 16)")
}

func TestProcedureAnswer(t *testing.T) {
	wantAnswerAll(t, "(lambda (x) x)", "#<PROC>")
	wantAnswerAll(t, "car", "#<PROC>")
}

func TestDeepTailLoopAllVariants(t *testing.T) {
	// The headline program of Theorem 25(b); it must terminate under every
	// variant (they all compute the same answers, Corollary 20).
	src := "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 1000)"
	wantAnswerAll(t, src, "0")
}

func TestCPSStyle(t *testing.T) {
	src := `
(define (add-k a b k) (k (+ a b)))
(define (mul-k a b k) (k (* a b)))
(add-k 2 3 (lambda (s) (mul-k s 4 (lambda (p) p))))`
	wantAnswerAll(t, src, "20")
}

func TestCallCCEscape(t *testing.T) {
	wantAnswerAll(t, "(call/cc (lambda (k) (+ 1 (k 42))))", "42")
	wantAnswerAll(t, "(call/cc (lambda (k) 7))", "7")
	wantAnswerAll(t, "(+ 1 (call/cc (lambda (k) (k 10) 99)))", "11")
}

func TestCallCCStoredAndReused(t *testing.T) {
	// Re-enter a continuation captured earlier.
	src := `
(let ((saved #f) (count 0))
  (let ((x (call/cc (lambda (k) (set! saved k) 0))))
    (set! count (+ count 1))
    (if (< x 3) (saved (+ x 1)) (list x count))))`
	wantAnswerAll(t, src, "(3 4)")
}

func TestArgumentOrderPermutations(t *testing.T) {
	src := "(+ (* 2 3) (* 4 5))"
	for _, order := range []ArgOrder{LeftToRight, RightToLeft, RandomOrder} {
		res, err := RunProgram(src, Options{Variant: Tail, Order: order, Seed: 7})
		if err != nil || res.Err != nil {
			t.Fatalf("order %v: %v %v", order, err, res.Err)
		}
		if res.Answer != "26" {
			t.Fatalf("order %v: got %s", order, res.Answer)
		}
	}
}

func TestArgumentOrderWithEffects(t *testing.T) {
	// Right-to-left evaluation observes the opposite effect order; the
	// semantics permits both (rampant underspecification).
	src := `
(let ((log '()))
  (define (note! x) (begin (set! log (cons x log)) x))
  (begin ((lambda (a b) 0) (note! 1) (note! 2)) log))`
	left, _ := RunProgram(src, Options{Variant: Tail, Order: LeftToRight})
	right, _ := RunProgram(src, Options{Variant: Tail, Order: RightToLeft})
	if left.Answer != "(2 1)" {
		t.Fatalf("left-to-right log = %s", left.Answer)
	}
	if right.Answer != "(1 2)" {
		t.Fatalf("right-to-left log = %s", right.Answer)
	}
}

func TestStuckUnboundVariable(t *testing.T) {
	res := runSrc(t, Tail, "nonexistent-variable")
	var stuck *StuckError
	if !errors.As(res.Err, &stuck) {
		t.Fatalf("want StuckError, got %v", res.Err)
	}
	if !strings.Contains(stuck.Reason, "unbound") {
		t.Fatalf("reason = %q", stuck.Reason)
	}
}

func TestStuckLetrecReadBeforeInit(t *testing.T) {
	res := runSrc(t, Tail, "(letrec ((x y) (y 1)) x)")
	var stuck *StuckError
	if !errors.As(res.Err, &stuck) {
		t.Fatalf("want StuckError, got %v", res.Err)
	}
	if !strings.Contains(stuck.Reason, "before initialization") {
		t.Fatalf("reason = %q", stuck.Reason)
	}
}

func TestStuckArityMismatch(t *testing.T) {
	res := runSrc(t, Tail, "((lambda (x) x) 1 2)")
	if res.Err == nil {
		t.Fatal("expected arity error")
	}
}

func TestStuckNonProcedure(t *testing.T) {
	res := runSrc(t, Tail, "(1 2)")
	if res.Err == nil || !strings.Contains(res.Err.Error(), "non-procedure") {
		t.Fatalf("got %v", res.Err)
	}
}

func TestStuckPrimitiveError(t *testing.T) {
	res := runSrc(t, Tail, "(car 5)")
	if res.Err == nil {
		t.Fatal("expected car type error")
	}
}

func TestMaxStepsExceeded(t *testing.T) {
	res, err := RunProgram("(define (f) (f)) (f)", Options{Variant: Tail, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, ErrMaxSteps) {
		t.Fatalf("got %v", res.Err)
	}
}

func TestStepsCounted(t *testing.T) {
	res := runSrc(t, Tail, "42")
	if res.Steps == 0 {
		t.Fatal("steps must be counted")
	}
	if res.ProgramSize != 1 {
		t.Fatalf("|P| = %d, want 1", res.ProgramSize)
	}
}

func TestRunApplication(t *testing.T) {
	res, err := RunApplication(
		"(define (f n) (* n n))",
		"(quote 12)",
		Options{Variant: Tail},
	)
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.Answer != "144" {
		t.Fatalf("got %s", res.Answer)
	}
}

func TestGCDoesNotChangeAnswers(t *testing.T) {
	src := `
(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
(sum (build 30))`
	for _, gcEvery := range []int{0, 1, 7} {
		res, err := RunProgram(src, Options{Variant: Tail, GCEvery: gcEvery})
		if err != nil || res.Err != nil {
			t.Fatalf("gcEvery=%d: %v %v", gcEvery, err, res.Err)
		}
		if res.Answer != "465" {
			t.Fatalf("gcEvery=%d: got %s", gcEvery, res.Answer)
		}
	}
}

func TestGCCollectsGarbage(t *testing.T) {
	src := "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 200)"
	res, err := RunProgram(src, Options{Variant: Tail, GCEvery: 1})
	if err != nil || res.Err != nil {
		t.Fatalf("%v %v", err, res.Err)
	}
	if res.Collections == 0 || res.Collected == 0 {
		t.Fatal("the loop must generate collectable garbage")
	}
}

func TestVariantLookupByName(t *testing.T) {
	for _, v := range Variants {
		got, ok := ByName(v.Name)
		if !ok || got.Name != v.Name {
			t.Fatalf("ByName(%q) failed", v.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name must fail")
	}
}

func TestCaseExpressionRuns(t *testing.T) {
	wantAnswerAll(t, "(case (+ 1 1) ((1) 'one) ((2) 'two) (else 'many))", "two")
}

func TestCondRuns(t *testing.T) {
	wantAnswerAll(t, "(cond ((= 1 2) 'no) ((= 1 1) 'yes) (else 'fallback))", "yes")
	wantAnswerAll(t, "(cond ((memv 2 '(1 2 3)) => car) (else 'no))", "2")
}

func TestDoLoopRuns(t *testing.T) {
	wantAnswerAll(t, "(do ((i 0 (+ i 1)) (acc 1 (* acc 2))) ((= i 8) acc))", "256")
}

func TestBigIntegers(t *testing.T) {
	// 2^100: unlimited precision arithmetic.
	wantAnswer(t, Tail, "(expt 2 100)", "1267650600228229401496703205376")
	src := "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 25)"
	wantAnswer(t, Tail, src, "15511210043330985984000000")
}

func TestShadowingSemantics(t *testing.T) {
	wantAnswerAll(t, "(let ((x 1)) (let ((x 2)) x))", "2")
	wantAnswerAll(t, "(let ((x 1)) ((lambda (x) x) 99))", "99")
}

func TestFreeVariantClosesOverFreeOnly(t *testing.T) {
	// Behaviour must be identical even though the closure environment is
	// smaller under Z_free.
	src := "(let ((a 1) (b 2) (c 3)) ((lambda (x) (+ x b)) 10))"
	wantAnswer(t, Free, src, "12")
	wantAnswer(t, SFS, src, "12")
}

func TestFindLeftmostExample(t *testing.T) {
	// The Section 4 example, with trees as nested vectors: a leaf is a
	// number; an interior node is (vector left right).
	src := `
(define (leaf? t) (number? t))
(define (left-child t) (vector-ref t 0))
(define (right-child t) (vector-ref t 1))
(define (find-leftmost predicate? tree fail)
  (if (leaf? tree)
      (if (predicate? tree)
          tree
          (fail))
      (let ((continuation
             (lambda ()
               (find-leftmost predicate?
                              (right-child tree)
                              fail))))
        (find-leftmost predicate? (left-child tree) continuation))))
(find-leftmost (lambda (x) (> x 2))
               (vector (vector 1 2) (vector 3 4))
               (lambda () 'none))`
	wantAnswerAll(t, src, "3")
}

func TestFindLeftmostFailure(t *testing.T) {
	src := `
(define (leaf? t) (number? t))
(define (find-leftmost predicate? tree fail)
  (if (leaf? tree)
      (if (predicate? tree) tree (fail))
      (let ((k (lambda () (find-leftmost predicate? (vector-ref tree 1) fail))))
        (find-leftmost predicate? (vector-ref tree 0) k))))
(find-leftmost (lambda (x) (> x 100)) (vector 1 (vector 2 3)) (lambda () 'none))`
	wantAnswerAll(t, src, "none")
}
