package core

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/compile"
	"tailspace/internal/env"
	"tailspace/internal/prim"
	"tailspace/internal/value"
)

// Backend selects the execution engine for a run.
type Backend int

const (
	// BackendStepper interprets the AST directly: the reference
	// implementation, one type switch and rib scan at a time.
	BackendStepper Backend = iota
	// BackendCompiled lowers the program through internal/compile first:
	// lexical addressing plus opcode dispatch, emitting bit-identical rule
	// tags, events, metrics, and space peaks (the differential suite pins
	// this). Runs under Order == RandomOrder fall back to the stepper — the
	// permutation is drawn per call, so there is nothing to pre-resolve.
	BackendCompiled
)

// String names the backend as the CLIs and the service spell it.
func (b Backend) String() string {
	if b == BackendCompiled {
		return "compiled"
	}
	return "stepper"
}

// ParseBackend resolves a backend name; the empty string is the default
// stepper.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "stepper":
		return BackendStepper, nil
	case "compiled":
		return BackendCompiled, nil
	}
	return 0, fmt.Errorf("unknown backend %q (want stepper or compiled)", name)
}

// stepEngine is what the runner drives: the stepper machine or the compiled
// executor, interchangeably.
type stepEngine interface {
	Step(s State) (next State, done bool, err error)
	LastRule() Rule
}

// sourceExpr unwraps a compiled node to the source expression it was
// compiled from; stepper expressions pass through. Attribution maps
// (ast.Number) are keyed by source node identity, so every expression that
// reaches the observability layer goes through here.
func sourceExpr(e ast.Expr) ast.Expr {
	if n, ok := e.(interface{ Source() ast.Expr }); ok {
		return n.Source()
	}
	return e
}

// compiledMachine executes a compiled program. It wraps the stepper machine
// rather than replacing it: the store, step counter, rule tag, stuck errors,
// and the whole Z_stack return path are shared, and any artifact the
// executor meets without compiled metadata — a frame copied by MTA chain
// compression before plans were preserved, a closure minted outside this
// run — is delegated to the stepper, whose semantics are identical by
// construction.
type compiledMachine struct {
	m *Machine
}

// LastRule mirrors Machine.LastRule.
func (c *compiledMachine) LastRule() Rule { return c.m.lastRule }

// Step performs one transition, exactly mirroring Machine.Step: same rule
// tags (set before any stuck return), same stuck messages, same allocation
// order, same frame and environment identity flow.
func (c *compiledMachine) Step(s State) (next State, done bool, err error) {
	c.m.steps++
	c.m.lastRule = RuleNone
	if s.Expr != nil {
		return c.stepNode(s)
	}
	return c.stepValue(s)
}

// stepNode is the compiled counterpart of stepExpr: a dense opcode switch
// instead of a type switch over AST forms. The default arm is unreachable —
// the compiler only emits the opcodes above NumOps — and framecheck verifies
// every opcode below NumOps has a case.
func (c *compiledMachine) stepNode(s State) (State, bool, error) {
	m := c.m
	n, ok := s.Expr.(*compile.Node)
	if !ok {
		// A raw AST expression (never produced by compiled transitions, but
		// semantically fine): the stepper handles it.
		return m.stepExpr(s)
	}

	switch n.Op {
	case compile.OpConst:
		m.lastRule = RuleConst
		return ValueState(n.Const, s.Env, s.K), false, nil

	case compile.OpLocal:
		m.lastRule = RuleVar
		return c.readVar(s, n, s.Env.LocAt(n.Ref.Depth, n.Ref.Index))

	case compile.OpGlobal:
		m.lastRule = RuleVar
		return c.readVar(s, n, n.Ref.Loc)

	case compile.OpUnbound:
		m.lastRule = RuleVar
		return s, false, m.stuck("unbound variable %s", n.Name)

	case compile.OpLambda:
		m.lastRule = RuleLambda
		code := n.Code
		clEnv := s.Env
		if code.Cap != nil {
			clEnv = code.Cap.Build(s.Env)
		}
		tag := m.store.Alloc(value.Unspecified{})
		return ValueState(value.Closure{Tag: tag, Lam: code.Lam, Env: clEnv, Code: code}, s.Env, s.K), false, nil

	case compile.OpIf:
		m.lastRule = RuleIf
		contEnv := s.Env
		if n.Cap != nil {
			contEnv = n.Cap.Build(s.Env)
		}
		k := &value.Select{Then: n.Then, Else: n.Else, Env: contEnv, K: s.K}
		return EvalState(n.Test, s.Env, k), false, nil

	case compile.OpSet:
		m.lastRule = RuleSet
		contEnv := s.Env
		if n.Restrict {
			if n.Syms == nil {
				contEnv = env.Empty()
			} else {
				contEnv = env.Flat(n.Syms, []env.Location{c.refLoc(s.Env, n.Ref)})
			}
		}
		k := &value.Assign{Name: n.Name, Sym: n.Sym, Env: contEnv, K: s.K, Plan: n.Plan}
		return EvalState(n.Rhs, s.Env, k), false, nil

	case compile.OpCall:
		m.lastRule = RuleCall
		q := n.Call
		k := &value.Push{
			Rest:    q.Rest,
			RestIdx: q.RestIdx,
			CurIdx:  q.CurIdx,
			Env:     c.pushEnv(s.Env, q),
			K:       s.K,
			Plan:    q,
		}
		return EvalState(q.Eval, s.Env, k), false, nil

	default:
		panic(fmt.Sprintf("core: unknown opcode %v", n.Op))
	}
}

// readVar finishes an identifier read at a resolved location, with the
// stepper's exact stuck messages.
func (c *compiledMachine) readVar(s State, n *compile.Node, loc env.Location) (State, bool, error) {
	m := c.m
	v, ok := m.store.Get(loc)
	if !ok {
		return s, false, m.stuck("variable %s refers to a deleted location (dangling pointer)", n.Name)
	}
	if _, undef := v.(value.Undefined); undef {
		return s, false, m.stuck("variable %s read before initialization", n.Name)
	}
	return ValueState(v, s.Env, s.K), false, nil
}

// refLoc resolves a bound reference against rho. RefUnbound never reaches
// here (callers branch on it first).
func (c *compiledMachine) refLoc(rho env.Env, ref compile.Ref) env.Location {
	if ref.Kind == compile.RefGlobal {
		return ref.Loc
	}
	return rho.LocAt(ref.Depth, ref.Index)
}

// pushEnv instantiates a push step's environment mode against the
// environment the frame is built from.
func (c *compiledMachine) pushEnv(rho env.Env, q *compile.PushStep) env.Env {
	switch {
	case q.Cap != nil:
		return q.Cap.Build(rho)
	case q.EnvEmpty:
		return env.Empty()
	default:
		return rho
	}
}

// stepValue mirrors Machine.stepValue. Frames carrying compiled plans take
// the pre-resolved path; plan-less frames (MTA chain compression used to
// drop plans; defensive completeness keeps the fallback) replay the
// stepper's logic over the nodes' source expressions.
func (c *compiledMachine) stepValue(s State) (State, bool, error) {
	m := c.m
	switch k := s.K.(type) {
	case value.Halt:
		if !s.Env.IsEmpty() {
			m.lastRule = RuleHaltEnv
			return ValueState(s.Val, env.Empty(), k), false, nil
		}
		return s, true, nil

	case *value.Select:
		m.lastRule = RuleSelect
		if value.Truthy(s.Val) {
			return EvalState(k.Then, k.Env, k.K), false, nil
		}
		return EvalState(k.Else, k.Env, k.K), false, nil

	case *value.Assign:
		m.lastRule = RuleAssign
		plan, ok := k.Plan.(*compile.AssignPlan)
		if !ok {
			return m.stepValue(s)
		}
		if plan.Ref.Kind == compile.RefUnbound {
			return s, false, m.stuck("assignment to unbound variable %s", k.Name)
		}
		if !m.store.Set(c.refLoc(k.Env, plan.Ref), s.Val) {
			return s, false, m.stuck("assignment to %s hits a deleted location (dangling pointer)", k.Name)
		}
		return ValueState(value.Unspecified{}, k.Env, k.K), false, nil

	case *value.Push:
		plan, ok := k.Plan.(*compile.PushStep)
		if !ok {
			return c.pushFallback(s, k)
		}
		done := make([]value.Value, len(k.Done)+1)
		copy(done, k.Done)
		done[len(k.Done)] = s.Val
		doneIdx := make([]int, len(k.DoneIdx)+1)
		copy(doneIdx, k.DoneIdx)
		doneIdx[len(k.DoneIdx)] = k.CurIdx

		if q := plan.Next; q != nil {
			m.lastRule = RulePushNext
			nk := &value.Push{
				Rest:    q.Rest,
				RestIdx: q.RestIdx,
				Done:    done,
				DoneIdx: doneIdx,
				CurIdx:  q.CurIdx,
				Env:     c.pushEnv(k.Env, q),
				K:       k.K,
				Plan:    q,
			}
			return EvalState(q.Eval, k.Env, nk), false, nil
		}

		m.lastRule = RulePushCall
		if plan.Reassemble == nil {
			// Evaluation order was source order: done is already in place.
			return ValueState(done[0], k.Env, &value.Call{Args: done[1:], K: k.K}), false, nil
		}
		vals := make([]value.Value, len(done))
		for i, idx := range plan.Reassemble {
			vals[idx] = done[i]
		}
		return ValueState(vals[0], k.Env, &value.Call{Args: vals[1:], K: k.K}), false, nil

	case *value.Call:
		return c.applyProcedure(s, s.Val, k.Args, k.K)

	case *value.Return:
		m.lastRule = RuleReturn
		return ValueState(s.Val, k.Env, k.K), false, nil

	case *value.ReturnStack:
		m.lastRule = RuleReturnStack
		return m.stackReturn(s, k)

	case *value.MonCtc, *value.MonAttach, *value.MonDom, *value.MonCod, *value.MonChk:
		// Monitor frames carry no compiled plans: a program containing a
		// monitor never compiles (compile.Program rejects ast.Mon, so the
		// whole run falls back to the stepper), but a frame reaching this
		// executor anyway is delegated like any other plan-less artifact.
		return m.stepValue(s)
	}
	return s, false, m.stuck("unknown continuation form %T", s.K)
}

// pushFallback replays the stepper's push rule for a frame without a plan.
// The frame's Rest holds compiled nodes; the Z_sfs restriction works on
// their source expressions so the free-variable sets match the stepper's.
func (c *compiledMachine) pushFallback(s State, k *value.Push) (State, bool, error) {
	m := c.m
	done := make([]value.Value, len(k.Done)+1)
	copy(done, k.Done)
	done[len(k.Done)] = s.Val
	doneIdx := make([]int, len(k.DoneIdx)+1)
	copy(doneIdx, k.DoneIdx)
	doneIdx[len(k.DoneIdx)] = k.CurIdx

	if len(k.Rest) > 0 {
		m.lastRule = RulePushNext
		nextExpr := k.Rest[0]
		rest := k.Rest[1:]
		nk := &value.Push{
			Rest:    rest,
			RestIdx: k.RestIdx[1:],
			Done:    done,
			DoneIdx: doneIdx,
			CurIdx:  k.RestIdx[0],
			Env:     c.pushEnvFallback(k.Env, rest),
			K:       k.K,
		}
		return EvalState(nextExpr, k.Env, nk), false, nil
	}

	m.lastRule = RulePushCall
	vals := make([]value.Value, len(done))
	for i, idx := range doneIdx {
		vals[idx] = done[i]
	}
	return ValueState(vals[0], k.Env, &value.Call{Args: vals[1:], K: k.K}), false, nil
}

// pushEnvFallback is pushEnvStep over possibly-compiled rest expressions.
func (c *compiledMachine) pushEnvFallback(rho env.Env, rest []ast.Expr) env.Env {
	m := c.m
	switch {
	case m.variant.RestrictConts:
		src := make([]ast.Expr, len(rest))
		for i, e := range rest {
			src[i] = sourceExpr(e)
		}
		return rho.RestrictSyms(m.fv.FreeSymsOfAll(src))
	case m.variant.EvlisLastEnv && len(rest) == 0:
		return env.Empty()
	default:
		return rho
	}
}

// applyProcedure mirrors Machine.applyProcedure; closures without compiled
// code delegate to the stepper, which interprets their bodies from source.
func (c *compiledMachine) applyProcedure(s State, op value.Value, args []value.Value, k value.Cont) (State, bool, error) {
	m := c.m
	switch proc := op.(type) {
	case value.Closure:
		code, ok := proc.Code.(*compile.LambdaCode)
		if !ok {
			return m.applyProcedure(s, op, args, k)
		}
		lam := code.Lam
		if len(args) != len(lam.Params) {
			return s, false, m.stuck("procedure %s expects %d arguments, got %d",
				lamName(lam), len(lam.Params), len(args))
		}
		locs := m.store.AllocN(args)
		bodyEnv := proc.Env
		if len(code.Params) > 0 {
			bodyEnv = proc.Env.ExtendSized(code.Params, locs, code.Fresh)
		}
		var cont value.Cont
		switch m.variant.Call {
		case CallTail:
			m.lastRule = RuleApplyTail
			cont = k
		case CallReturn:
			m.lastRule = RuleApplyReturn
			cont = &value.Return{Env: s.Env, K: k}
		case CallStackReturn:
			m.lastRule = RuleApplyStack
			del := make([]env.Location, len(locs))
			copy(del, locs)
			cont = &value.ReturnStack{Del: del, Env: s.Env, K: k}
		}
		return EvalState(code.Body, bodyEnv, cont), false, nil

	case value.Guarded:
		// Guarded procedures only arise in monitored runs, which never
		// compile; the stepper's monitor rules handle them from source.
		return m.applyProcedure(s, op, args, k)

	case value.Escape:
		m.lastRule = RuleApplyEscape
		if len(args) != 1 {
			return s, false, m.stuck("continuation invoked with %d arguments, want 1", len(args))
		}
		return ValueState(args[0], env.Empty(), proc.K), false, nil

	case *value.Primop:
		m.lastRule = RuleApplyPrimop
		if proc.CallCC {
			if len(args) != 1 {
				return s, false, m.stuck("%s expects 1 argument, got %d", proc.Name, len(args))
			}
			tag := m.store.Alloc(value.Unspecified{})
			esc := value.Escape{Tag: tag, K: k}
			return c.applyProcedure(s, args[0], []value.Value{esc}, k)
		}
		if proc.Spread {
			if len(args) < 2 {
				return s, false, m.stuck("%s needs a procedure and an argument list", proc.Name)
			}
			spread, ok := prim.ListElements(m.store, args[len(args)-1])
			if !ok {
				return s, false, m.stuck("%s: last argument is not a proper list", proc.Name)
			}
			full := append(append([]value.Value{}, args[1:len(args)-1]...), spread...)
			return c.applyProcedure(s, args[0], full, k)
		}
		if proc.Arity >= 0 && len(args) != proc.Arity {
			return s, false, m.stuck("%s expects %d arguments, got %d", proc.Name, proc.Arity, len(args))
		}
		result, err := proc.Apply(m.store, args)
		if err != nil {
			return s, false, m.stuck("%v", err)
		}
		return ValueState(result, s.Env, k), false, nil
	}
	return s, false, m.stuck("call of non-procedure %T", op)
}
