package core

// Rule tags a transition with the reduction or continuation rule that
// fired — Figure 5 plus the §8–10 variant rules. The machine records the
// rule of its most recent Step; the runner counts transitions per rule and
// the event stream carries the tag, so a space profile can be read as
// "which rules were running when".
type Rule uint8

const (
	// RuleNone is the zero tag: no transition has fired (the initial
	// configuration, or a stuck step).
	RuleNone Rule = iota
	// Expression rules (Figure 5, left column).
	RuleConst  // (quote c) evaluates to its constant
	RuleVar    // an identifier evaluates to its R-value
	RuleLambda // a lambda evaluates to a closure tagged by a fresh location
	RuleIf     // an if pushes a select continuation
	RuleSet    // a set! pushes an assign continuation
	RuleCall   // a call pushes a push continuation for its subexpressions
	// Continuation rules (Figure 5, right column, and the §8 call variants).
	RuleHaltEnv     // (v, ρ', halt) → (v, { }, halt): the final env drop
	RuleSelect      // a select continuation branches on the test value
	RuleAssign      // an assign continuation writes the store
	RulePushNext    // a push continuation advances to the next subexpression
	RulePushCall    // all subexpressions done: deliver operator to a call cont
	RuleApplyTail   // closure call as a goto (Z_tail family)
	RuleApplyReturn // closure call pushing return:(ρ',κ) (Z_gc, MTA)
	RuleApplyStack  // closure call pushing return:(A,ρ',κ) (Z_stack)
	RuleApplyEscape // invocation of a captured continuation
	RuleApplyPrimop // application of a standard procedure
	RuleReturn      // return:(ρ',κ) restores ρ'
	RuleReturnStack // return:(A,ρ',κ) deletes A and restores ρ'
	// Contract-monitoring rules (the naive and spaceff machines; erasing
	// machines fire only the first two).
	RuleMon       // (mon ctc e) pushes a mon-ctc continuation for the contract
	RuleMonCtc    // contract value arrived: erase, or push mon-attach
	RuleMonAttach // monitored value arrived: wrap in the contract (or check it)
	RuleMonDom    // a guarded call checks its domain contracts
	RuleMonCod    // a result reached the pending codomain checks
	RuleMonChk    // a flat predicate answered for a checked value

	// NumRules sizes dense per-rule accounting arrays.
	NumRules
)

var ruleNames = [NumRules]string{
	RuleNone:        "none",
	RuleConst:       "const",
	RuleVar:         "var",
	RuleLambda:      "lambda",
	RuleIf:          "if",
	RuleSet:         "set!",
	RuleCall:        "call",
	RuleHaltEnv:     "halt-env",
	RuleSelect:      "select",
	RuleAssign:      "assign",
	RulePushNext:    "push-next",
	RulePushCall:    "push-call",
	RuleApplyTail:   "apply-tail",
	RuleApplyReturn: "apply-return",
	RuleApplyStack:  "apply-stack",
	RuleApplyEscape: "apply-escape",
	RuleApplyPrimop: "apply-primop",
	RuleReturn:      "return",
	RuleReturnStack: "return-stack",
	RuleMon:         "mon",
	RuleMonCtc:      "mon-ctc",
	RuleMonAttach:   "mon-attach",
	RuleMonDom:      "mon-dom",
	RuleMonCod:      "mon-cod",
	RuleMonChk:      "mon-chk",
}

// String is the stable tag used in metric names and the event stream.
func (r Rule) String() string {
	if int(r) < len(ruleNames) {
		return ruleNames[r]
	}
	return "unknown"
}

// Rules lists every real rule (RuleNone excluded), for iteration.
func Rules() []Rule {
	out := make([]Rule, 0, NumRules-1)
	for r := RuleConst; r < NumRules; r++ {
		out = append(out, r)
	}
	return out
}
