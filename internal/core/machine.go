package core

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/prim"
	"tailspace/internal/value"
)

// ArgOrder is the permutation π a procedure call chooses, nondeterministically
// in the paper, for evaluating its operator and operand expressions.
type ArgOrder int

const (
	// LeftToRight evaluates operator then operands in source order.
	LeftToRight ArgOrder = iota
	// RightToLeft evaluates the last operand first.
	RightToLeft
	// RandomOrder draws a fresh permutation from the store's random source
	// for every call, exercising the nondeterminism of the semantics.
	RandomOrder
)

// Machine is one reference implementation: a variant plus the policies that
// resolve the semantics' nondeterminism.
type Machine struct {
	variant Variant
	store   *value.Store
	fv      *ast.FreeVarCache
	order   ArgOrder
	// stackStrict makes Z_stack choose A = {β1,...,βn} unconditionally, so a
	// return whose deletion would dangle sticks the machine. The default
	// (false) resolves the nondeterministic choice of A ⊆ {β1,...,βn} in the
	// program's favour: the maximal subset whose deletion is safe. On the
	// Algol-like subset the two coincide and both realize S_stack.
	stackStrict bool
	steps       int
	// lastRule tags the rule the most recent Step fired, for per-rule
	// accounting and the observability event stream.
	lastRule Rule
	// occScratch is reused across stackReturn occurs-checks.
	occScratch []env.Location
}

// NewMachine builds a machine over the given store.
func NewMachine(v Variant, store *value.Store) *Machine {
	return &Machine{
		variant: v,
		store:   store,
		fv:      ast.NewFreeVarCache(),
	}
}

// SetOrder selects the argument evaluation order policy.
func (m *Machine) SetOrder(o ArgOrder) { m.order = o }

// SetStackStrict selects the A = {β1,...,βn} mode for Z_stack, under which
// a return whose deletion would create a dangling pointer sticks the machine.
func (m *Machine) SetStackStrict(b bool) { m.stackStrict = b }

// Store returns the machine's store.
func (m *Machine) Store() *value.Store { return m.store }

// Variant returns the machine's variant.
func (m *Machine) Variant() Variant { return m.variant }

func (m *Machine) stuck(format string, args ...any) error {
	return &StuckError{Reason: fmt.Sprintf(format, args...), Step: m.steps}
}

// LastRule reports which rule the most recent Step fired: RuleNone before
// the first step and when Step reported done; when Step returned an error
// the tag names the rule that stuck.
func (m *Machine) LastRule() Rule { return m.lastRule }

// Step performs one transition. It returns the next state; done is true when
// s was already final (in which case next == s).
func (m *Machine) Step(s State) (next State, done bool, err error) {
	m.steps++
	m.lastRule = RuleNone
	if s.Expr != nil {
		return m.stepExpr(s)
	}
	return m.stepValue(s)
}

// stepExpr implements the six reduction rules of Figure 5 (with the Z_free /
// Z_sfs replacements of Section 10).
func (m *Machine) stepExpr(s State) (State, bool, error) {
	switch e := s.Expr.(type) {
	case *ast.Const:
		m.lastRule = RuleConst
		return ValueState(constValue(e.Value), s.Env, s.K), false, nil

	case *ast.Var:
		m.lastRule = RuleVar
		// An identifier evaluates to its R-value; if I ∉ Dom ρ,
		// ρ(I) ∉ Dom σ, or σ(ρ(I)) = UNDEFINED, the computation sticks.
		var loc env.Location
		var ok bool
		if e.Sym != 0 {
			loc, ok = s.Env.LookupSym(e.Sym)
		} else {
			loc, ok = s.Env.Lookup(e.Name)
		}
		if !ok {
			return s, false, m.stuck("unbound variable %s", e.Name)
		}
		v, ok := m.store.Get(loc)
		if !ok {
			return s, false, m.stuck("variable %s refers to a deleted location (dangling pointer)", e.Name)
		}
		if _, undef := v.(value.Undefined); undef {
			return s, false, m.stuck("variable %s read before initialization", e.Name)
		}
		return ValueState(v, s.Env, s.K), false, nil

	case *ast.Lambda:
		// A lambda evaluates to a closure tagged by a fresh location α.
		m.lastRule = RuleLambda
		clEnv := s.Env
		if m.variant.FreeClosures {
			clEnv = s.Env.RestrictSyms(m.fv.FreeSyms(e))
		}
		tag := m.store.Alloc(value.Unspecified{})
		return ValueState(value.Closure{Tag: tag, Lam: e, Env: clEnv}, s.Env, s.K), false, nil

	case *ast.If:
		m.lastRule = RuleIf
		contEnv := s.Env
		if m.variant.RestrictConts {
			contEnv = s.Env.RestrictSyms(m.fv.FreeSymsUnion(e.Then, e.Else))
		}
		k := &value.Select{Then: e.Then, Else: e.Else, Env: contEnv, K: s.K}
		return EvalState(e.Test, s.Env, k), false, nil

	case *ast.Set:
		m.lastRule = RuleSet
		sym := e.Sym
		if sym == 0 {
			sym = env.Intern(e.Name)
		}
		contEnv := s.Env
		if m.variant.RestrictConts {
			contEnv = s.Env.RestrictToSym(sym)
		}
		k := &value.Assign{Name: e.Name, Sym: sym, Env: contEnv, K: s.K}
		return EvalState(e.Rhs, s.Env, k), false, nil

	case *ast.Call:
		m.lastRule = RuleCall
		order := m.evalOrder(len(e.Exprs))
		first := order[0]
		rest := make([]ast.Expr, len(order)-1)
		restIdx := make([]int, len(order)-1)
		for i, idx := range order[1:] {
			rest[i] = e.Exprs[idx]
			restIdx[i] = idx
		}
		k := &value.Push{
			Rest:    rest,
			RestIdx: restIdx,
			CurIdx:  first,
			Env:     m.pushEnv(s.Env, rest),
			K:       s.K,
		}
		return EvalState(e.Exprs[first], s.Env, k), false, nil

	case *ast.Mon:
		// (mon ctc e): evaluate the contract first; the mon-ctc frame
		// remembers the monitored expression. Every machine — erasing or
		// monitoring — evaluates the contract, so allocation histories and
		// answers stay aligned across the family.
		m.lastRule = RuleMon
		contEnv := s.Env
		if m.variant.RestrictConts {
			contEnv = s.Env.RestrictSyms(m.fv.FreeSyms(e.Expr))
		}
		k := &value.MonCtc{Expr: e.Expr, Label: e.Label, Env: contEnv, K: s.K}
		return EvalState(e.Ctc, s.Env, k), false, nil
	}
	return s, false, m.stuck("unknown expression form %T", s.Expr)
}

// pushEnv chooses the environment stored in a push continuation: the full ρ
// for Z_tail; the empty environment when no expressions remain for Z_evlis;
// ρ restricted to the free variables of the remaining expressions for Z_sfs.
func (m *Machine) pushEnv(rho env.Env, rest []ast.Expr) env.Env {
	switch {
	case m.variant.RestrictConts:
		return rho.RestrictSyms(m.fv.FreeSymsOfAll(rest))
	case m.variant.EvlisLastEnv && len(rest) == 0:
		return env.Empty()
	default:
		return rho
	}
}

// stepValue implements the continuation rules.
func (m *Machine) stepValue(s State) (State, bool, error) {
	switch k := s.K.(type) {
	case value.Halt:
		if !s.Env.IsEmpty() {
			// (v, ρ', halt, σ) → (v, { }, halt, σ)
			m.lastRule = RuleHaltEnv
			return ValueState(s.Val, env.Empty(), k), false, nil
		}
		return s, true, nil

	case *value.Select:
		m.lastRule = RuleSelect
		if value.Truthy(s.Val) {
			return EvalState(k.Then, k.Env, k.K), false, nil
		}
		return EvalState(k.Else, k.Env, k.K), false, nil

	case *value.Assign:
		m.lastRule = RuleAssign
		var loc env.Location
		var ok bool
		if k.Sym != 0 {
			loc, ok = k.Env.LookupSym(k.Sym)
		} else {
			loc, ok = k.Env.Lookup(k.Name)
		}
		if !ok {
			return s, false, m.stuck("assignment to unbound variable %s", k.Name)
		}
		if !m.store.Set(loc, s.Val) {
			return s, false, m.stuck("assignment to %s hits a deleted location (dangling pointer)", k.Name)
		}
		return ValueState(value.Unspecified{}, k.Env, k.K), false, nil

	case *value.Push:
		done := make([]value.Value, len(k.Done)+1)
		copy(done, k.Done)
		done[len(k.Done)] = s.Val
		doneIdx := make([]int, len(k.DoneIdx)+1)
		copy(doneIdx, k.DoneIdx)
		doneIdx[len(k.DoneIdx)] = k.CurIdx

		if len(k.Rest) > 0 {
			m.lastRule = RulePushNext
			nextExpr := k.Rest[0]
			rest := k.Rest[1:]
			nk := &value.Push{
				Rest:    rest,
				RestIdx: k.RestIdx[1:],
				Done:    done,
				DoneIdx: doneIdx,
				CurIdx:  k.RestIdx[0],
				Env:     m.pushEnvStep(k.Env, rest),
				K:       k.K,
			}
			return EvalState(nextExpr, k.Env, nk), false, nil
		}

		// All subexpressions evaluated: reassemble in source order and
		// deliver the operator with a call continuation.
		m.lastRule = RulePushCall
		vals := make([]value.Value, len(done))
		for i, idx := range doneIdx {
			vals[idx] = done[i]
		}
		return ValueState(vals[0], k.Env, &value.Call{Args: vals[1:], K: k.K}), false, nil

	case *value.Call:
		return m.applyProcedure(s, s.Val, k.Args, k.K)

	case *value.Return:
		// (v, ρ, return:(ρ',κ), σ) → (v, ρ', κ, σ)
		m.lastRule = RuleReturn
		return ValueState(s.Val, k.Env, k.K), false, nil

	case *value.ReturnStack:
		m.lastRule = RuleReturnStack
		return m.stackReturn(s, k)

	case *value.MonCtc:
		// The contract value arrived. Erasing machines drop it and evaluate
		// the monitored expression straight into the saved continuation;
		// monitor machines hold it in a mon-attach frame until the
		// expression's value is there to wrap.
		m.lastRule = RuleMonCtc
		if m.variant.Monitor == MonitorNone {
			return EvalState(k.Expr, k.Env, k.K), false, nil
		}
		return EvalState(k.Expr, k.Env, &value.MonAttach{Ctc: s.Val, Label: k.Label, K: k.K}), false, nil

	case *value.MonAttach:
		m.lastRule = RuleMonAttach
		return m.monCheck(s, s.Val, []value.Pending{{Ctc: k.Ctc, Src: k.Ctc, Label: k.Label}}, k.K)

	case *value.MonDom:
		// The verdict of a flat domain predicate for argument Idx.
		m.lastRule = RuleMonDom
		if !value.Truthy(s.Val) {
			return s, false, m.stuck(
				"contract violation: argument %d of %s rejected by its domain contract (blaming the caller of %s)",
				k.Idx+1, k.G.Label, k.G.Label)
		}
		return m.monApplyDoms(s, k.G, k.Args, k.Idx+1, k.K)

	case *value.MonCod:
		// A result reached its pending codomain checks.
		m.lastRule = RuleMonCod
		return m.monCheck(s, s.Val, k.Pend, k.K)

	case *value.MonChk:
		// The verdict of a flat check on the held value.
		m.lastRule = RuleMonChk
		if !value.Truthy(s.Val) {
			return s, false, m.stuck("contract violation: %s broke its contract (flat check failed)", k.Label)
		}
		return m.monCheck(s, k.Val, k.Rest, k.K)
	}
	return s, false, m.stuck("unknown continuation form %T", s.K)
}

// pushEnvStep further restricts the continuation environment as evaluation
// proceeds through a call's subexpressions.
func (m *Machine) pushEnvStep(rho env.Env, rest []ast.Expr) env.Env {
	switch {
	case m.variant.RestrictConts:
		return rho.RestrictSyms(m.fv.FreeSymsOfAll(rest))
	case m.variant.EvlisLastEnv && len(rest) == 0:
		return env.Empty()
	default:
		return rho
	}
}

// applyProcedure implements the call rules for closures, escapes, and
// primitives. callerEnv is the ρ' the improper variants save in their return
// continuations.
func (m *Machine) applyProcedure(s State, op value.Value, args []value.Value, k value.Cont) (State, bool, error) {
	switch proc := op.(type) {
	case value.Closure:
		lam := proc.Lam
		if len(args) != len(lam.Params) {
			return s, false, m.stuck("procedure %s expects %d arguments, got %d",
				lamName(lam), len(lam.Params), len(args))
		}
		locs := m.store.AllocN(args)
		var bodyEnv env.Env
		if lam.ParamSyms != nil {
			bodyEnv = proc.Env.ExtendSyms(lam.ParamSyms, locs)
		} else {
			bodyEnv = proc.Env.Extend(lam.Params, locs)
		}
		var cont value.Cont
		switch m.variant.Call {
		case CallTail:
			// A procedure call is just a goto that changes the environment
			// register: no continuation is created.
			m.lastRule = RuleApplyTail
			cont = k
		case CallReturn:
			m.lastRule = RuleApplyReturn
			cont = &value.Return{Env: s.Env, K: k}
		case CallStackReturn:
			m.lastRule = RuleApplyStack
			del := make([]env.Location, len(locs))
			copy(del, locs)
			cont = &value.ReturnStack{Del: del, Env: s.Env, K: k}
		}
		return EvalState(lam.Body, bodyEnv, cont), false, nil

	case value.Guarded:
		// A guarded call: check the domains, then apply the underlying
		// procedure with the codomain check pending. Any delegated
		// predicate application overwrites the tag, exactly as call/cc and
		// apply do below.
		m.lastRule = RuleMonDom
		if len(args) != len(proc.Ctc.Dom) {
			return s, false, m.stuck("contracted procedure %s expects %d arguments, got %d",
				proc.Label, len(proc.Ctc.Dom), len(args))
		}
		owned := make([]value.Value, len(args))
		copy(owned, args)
		return m.monApplyDoms(s, proc, owned, 0, k)

	case value.Escape:
		m.lastRule = RuleApplyEscape
		if len(args) != 1 {
			return s, false, m.stuck("continuation invoked with %d arguments, want 1", len(args))
		}
		// (ESCAPE:(α,κ'), ρ', call:((v1),κ), σ) → (v1, { }, κ', σ)
		return ValueState(args[0], env.Empty(), proc.K), false, nil

	case *value.Primop:
		// call/cc and apply recurse into applyProcedure, so the tag they
		// leave behind is the rule of the application they end in.
		m.lastRule = RuleApplyPrimop
		if proc.CallCC {
			if len(args) != 1 {
				return s, false, m.stuck("%s expects 1 argument, got %d", proc.Name, len(args))
			}
			tag := m.store.Alloc(value.Unspecified{})
			esc := value.Escape{Tag: tag, K: k}
			return m.applyProcedure(s, args[0], []value.Value{esc}, k)
		}
		if proc.Spread {
			if len(args) < 2 {
				return s, false, m.stuck("%s needs a procedure and an argument list", proc.Name)
			}
			spread, ok := prim.ListElements(m.store, args[len(args)-1])
			if !ok {
				return s, false, m.stuck("%s: last argument is not a proper list", proc.Name)
			}
			full := append(append([]value.Value{}, args[1:len(args)-1]...), spread...)
			return m.applyProcedure(s, args[0], full, k)
		}
		if proc.Arity >= 0 && len(args) != proc.Arity {
			return s, false, m.stuck("%s expects %d arguments, got %d", proc.Name, proc.Arity, len(args))
		}
		result, err := proc.Apply(m.store, args)
		if err != nil {
			return s, false, m.stuck("%v", err)
		}
		return ValueState(result, s.Env, k), false, nil
	}
	return s, false, m.stuck("call of non-procedure %T", op)
}

// stackReturn implements the Z_stack return rule: delete the locations in A
// from the store. By default A is the maximal safe subset of the frame's
// locations — the paper's nondeterministic choice "A ⊆ {β1,...,βn}" resolved
// so that the computation is not stuck. In strict mode A is the whole frame
// and a return whose deletion would dangle sticks the machine.
func (m *Machine) stackReturn(s State, k *value.ReturnStack) (State, bool, error) {
	dels := make(map[env.Location]bool, len(k.Del))
	for _, l := range k.Del {
		if _, live := m.store.Get(l); live {
			dels[l] = true
		}
	}
	if len(dels) > 0 {
		// Occurrences outside the store: the value being returned and the
		// live locations of the rest of the continuation. The frame's own
		// saved environment is dead (never dereferenced), so it does not
		// block deletion.
		var outside []env.Location
		outside = value.Locations(s.Val, outside)
		outside = value.ContLocations(k.K, outside)

		unsafe := make(map[env.Location]bool)
		for _, l := range outside {
			if dels[l] {
				unsafe[l] = true
			}
		}
		if len(unsafe) < len(dels) {
			// Occurrences through the remaining store, checked against the
			// still-candidate deletions.
			candidates := make(map[env.Location]bool, len(dels))
			for l := range dels {
				if !unsafe[l] {
					candidates[l] = true
				}
			}
			m.markStoreOccurrences(candidates, dels, unsafe)
		}

		if len(unsafe) > 0 && m.stackStrict {
			return s, false, m.stuck("%s: %d of %d frame locations still referenced",
				danglingPrefix, len(unsafe), len(dels))
		}
		for l := range dels {
			if !unsafe[l] {
				m.store.Delete(l)
			}
		}
	}
	return ValueState(s.Val, k.Env, k.K), false, nil
}

// markStoreOccurrences walks the remaining store (excluding the deletion
// candidates themselves) and moves any candidate that occurs within it into
// unsafe.
func (m *Machine) markStoreOccurrences(candidates, dels map[env.Location]bool, unsafe map[env.Location]bool) {
	scratch := m.occScratch
	m.store.Each(func(l env.Location, v value.Value) {
		if dels[l] {
			return
		}
		scratch = value.Locations(v, scratch[:0])
		for _, ref := range scratch {
			if candidates[ref] {
				unsafe[ref] = true
				delete(candidates, ref)
			}
		}
	})
	m.occScratch = scratch[:0]
}

// evalOrder chooses the permutation π for a call with n subexpressions.
func (m *Machine) evalOrder(n int) []int {
	order := make([]int, n)
	switch m.order {
	case RightToLeft:
		for i := range order {
			order[i] = n - 1 - i
		}
	case RandomOrder:
		for i := range order {
			order[i] = i
		}
		m.store.Rand.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	default:
		for i := range order {
			order[i] = i
		}
	}
	return order
}

// constValue converts a quoted constant to its runtime value. None of these
// allocate: simple constants carry no locations (Section 12).
func constValue(c ast.ConstValue) value.Value {
	switch x := c.(type) {
	case ast.BoolConst:
		return value.Bool(bool(x))
	case ast.NumConst:
		return value.Num{Int: x.Int}
	case ast.SymConst:
		return value.Sym(string(x))
	case ast.StrConst:
		return value.Str(string(x))
	case ast.CharConst:
		return value.Char(rune(x))
	case ast.NilConst:
		return value.Null{}
	case ast.UnspecifiedConst:
		return value.Unspecified{}
	}
	panic(fmt.Sprintf("core: unknown constant %T", c))
}

func lamName(l *ast.Lambda) string {
	if l.Label != "" {
		return l.Label
	}
	return "(anonymous)"
}
