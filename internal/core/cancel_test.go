package core

import (
	"errors"
	"testing"
	"time"

	"tailspace/internal/obs"
)

// infiniteLoop diverges under every machine: a self-application that never
// allocates unboundedly under Z_tail, so only cancellation (or MaxSteps)
// can end the run.
const infiniteLoop = "((lambda (f) (f f)) (lambda (f) (f f)))"

// TestCancelMidRun cancels an infinite Tail-machine loop mid-computation
// and asserts that ErrCancelled comes back promptly with a consistent
// result: transitions were counted, the per-rule counters sum to Steps, and
// the metrics registry was still assembled.
func TestCancelMidRun(t *testing.T) {
	cancel := make(chan struct{})
	done := make(chan Result, 1)
	go func() {
		res, err := RunProgram(infiniteLoop, Options{
			Variant:     Tail,
			Cancel:      cancel,
			CancelEvery: 64,
			MaxSteps:    1 << 30, // far beyond what the test allows to run
		})
		if err != nil {
			t.Errorf("parse: %v", err)
		}
		done <- res
	}()

	// Let the loop get going, then cancel and require a prompt return.
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	var res Result
	select {
	case res = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return within 5s of cancellation")
	}

	if !errors.Is(res.Err, ErrCancelled) {
		t.Fatalf("Err = %v, want ErrCancelled", res.Err)
	}
	if res.Value != nil || res.Answer != "" {
		t.Errorf("cancelled run produced a value %v / answer %q", res.Value, res.Answer)
	}
	if res.Steps == 0 {
		t.Error("cancelled before the first transition; expected a running prefix")
	}
	if res.Metrics == nil {
		t.Fatal("Metrics not assembled for a cancelled run")
	}
	if got := res.Metrics.Counter(obs.MetricSteps); got != int64(res.Steps) {
		t.Errorf("metrics steps = %d, want %d", got, res.Steps)
	}
	if got := res.Metrics.SumCounters(obs.MetricRulePrefix); got != int64(res.Steps) {
		t.Errorf("per-rule counters sum to %d, want Steps = %d", got, res.Steps)
	}
}

// TestCancelBeforeFirstStep covers the already-cancelled channel: the poll
// at step 0 returns before any transition fires.
func TestCancelBeforeFirstStep(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	res, err := RunProgram(infiniteLoop, Options{Variant: Tail, Cancel: cancel})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !errors.Is(res.Err, ErrCancelled) {
		t.Fatalf("Err = %v, want ErrCancelled", res.Err)
	}
	if res.Steps != 0 {
		t.Errorf("Steps = %d, want 0", res.Steps)
	}
}

// TestNilCancelFinishes pins that runs without a Cancel channel are
// untouched by the new plumbing.
func TestNilCancelFinishes(t *testing.T) {
	res, err := RunProgram("(+ 1 2)", Options{Variant: Tail})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("Err = %v", res.Err)
	}
	if res.Answer != "3" {
		t.Fatalf("Answer = %q, want 3", res.Answer)
	}
}
