package space

import (
	"fmt"

	"tailspace/internal/env"
	"tailspace/internal/value"
)

// This file implements the linked-environment accounting of Figure 8: each
// binding (an identifier paired with a location) is counted once per
// configuration, no matter how many environments contain it. The bindings
// reachable from the configuration — through the environment register, the
// continuation's saved environments, and the closures and escapes held in
// continuations and in the store — form one global set whose cardinality is
// charged once (at the model's Binding price); every other component is
// charged as in Figure 7 minus its |Dom ρ| terms, and closures cost a
// single word.

// binding is one element of graph(ρ) keyed by interned identifier — cheaper
// to hash than the string-keyed env.Binding, with the same set cardinality
// (interning is injective on spellings).
type binding struct {
	sym env.Symbol
	loc env.Location
}

// linkedWalker accumulates the global binding set while measuring. The same
// environment reaches addEnv many times per configuration (each frame's saved
// ρ, every closure in the store and in Done lists), and distinct environments
// share rib suffixes, so two exact dedup layers keep the walk near-linear:
// seenEnv skips environments already folded in (equal Envs share one rib
// chain, hence bind identically), and ribs skips shared shadow-free suffixes
// across different environments. Neither changes the resulting set — they
// only elide duplicate inserts.
type linkedWalker struct {
	md       CostModel
	bindings map[binding]struct{}
	seenEnv  map[env.Env]bool
	ribs     *env.RibSet
	seenCont map[value.Cont]bool
}

func newLinkedWalker(md CostModel) *linkedWalker {
	return &linkedWalker{
		md:       md,
		bindings: make(map[binding]struct{}),
		seenEnv:  make(map[env.Env]bool),
		ribs:     env.NewRibSet(),
		seenCont: make(map[value.Cont]bool),
	}
}

func (w *linkedWalker) addEnv(e env.Env) {
	if w.seenEnv[e] {
		return
	}
	w.seenEnv[e] = true
	e.EachSymShared(w.ribs, func(s env.Symbol, loc env.Location) {
		w.bindings[binding{sym: s, loc: loc}] = struct{}{}
	})
}

// valueSpace is the linked space of a value: like Figure 7 but closures cost
// one word (their bindings enter the global set) and escapes cost one word
// plus the linked frame space of their continuation.
func (w *linkedWalker) valueSpace(v value.Value) Cost {
	switch x := v.(type) {
	case value.Closure:
		w.addEnv(x.Env)
		return Cost{Units: 1}
	case value.Escape:
		return Cost{Units: 1}.Add(w.contSpace(x.K))
	case *value.ArrowContract:
		c := Cost{Units: 1, Ptrs: 1 + len(x.Dom)}
		for _, d := range x.Dom {
			c = c.Add(w.valueSpace(d))
		}
		return c.Add(w.valueSpace(x.Cod))
	case value.Guarded:
		return Cost{Units: 1, Ptrs: 2}.Add(w.valueSpace(x.Proc)).Add(w.valueSpace(x.Ctc))
	default:
		return w.md.Value(v)
	}
}

// contSpace is the linked space of a continuation: Figure 8's frame costs,
// with every saved environment folded into the global binding set. Shared
// continuations (an escape captured twice, or an escape whose continuation
// is a prefix of the live one) are counted once.
func (w *linkedWalker) contSpace(k value.Cont) Cost {
	var total Cost
	for k != nil {
		if w.seenCont[k] {
			return total
		}
		w.seenCont[k] = true
		switch x := k.(type) {
		case value.Halt:
			return total.Add(Cost{Units: 1})
		case *value.Select:
			w.addEnv(x.Env)
			total = total.Add(Cost{Units: 1})
		case *value.Assign:
			w.addEnv(x.Env)
			total = total.Add(Cost{Units: 1})
		case *value.Push:
			w.addEnv(x.Env)
			total = total.Add(Cost{Units: 1 + len(x.Rest), Ptrs: len(x.Done)})
			for _, v := range x.Done {
				total = total.Add(w.heldValueSpace(v))
			}
		case *value.Call:
			total = total.Add(Cost{Units: 1, Ptrs: len(x.Args)})
			for _, v := range x.Args {
				total = total.Add(w.heldValueSpace(v))
			}
		case *value.Return:
			w.addEnv(x.Env)
			total = total.Add(Cost{Units: 1})
		case *value.ReturnStack:
			w.addEnv(x.Env)
			total = total.Add(Cost{Units: 1})
		case *value.MonCtc:
			w.addEnv(x.Env)
			total = total.Add(Cost{Units: 2})
		case *value.MonAttach:
			total = total.Add(Cost{Units: 1, Ptrs: 1}).Add(w.heldValueSpace(x.Ctc))
		case *value.MonDom:
			total = total.Add(Cost{Units: 2, Ptrs: 1 + len(x.Args)}).Add(w.heldValueSpace(x.G))
			for _, v := range x.Args {
				total = total.Add(w.heldValueSpace(v))
			}
		case *value.MonCod:
			total = total.Add(Cost{Units: 1 + len(x.Pend), Ptrs: len(x.Pend)})
			for _, p := range x.Pend {
				total = total.Add(w.heldValueSpace(p.Ctc))
				total = total.Add(w.heldValueSpace(p.Src))
			}
		case *value.MonChk:
			total = total.Add(Cost{Units: 1 + len(x.Rest), Ptrs: 1 + len(x.Rest)}).Add(w.heldValueSpace(x.Val))
			for _, p := range x.Rest {
				total = total.Add(w.heldValueSpace(p.Ctc))
				total = total.Add(w.heldValueSpace(p.Src))
			}
		default:
			panic(fmt.Sprintf("space: unpriced continuation frame %T — every frame kind must be charged", k))
		}
		k = k.Next()
	}
	return total
}

// heldValueSpace records the bindings of a value held by reference (in a
// continuation) and returns the extra space it retains: its reference word
// is already charged by the frame's m+n term, but the frames an escape
// retains occupy real space (counted once — seenCont dedups).
func (w *linkedWalker) heldValueSpace(v value.Value) Cost {
	switch x := v.(type) {
	case value.Closure:
		w.addEnv(x.Env)
		return Cost{}
	case value.Escape:
		return w.contSpace(x.K)
	case *value.ArrowContract:
		var c Cost
		for _, d := range x.Dom {
			c = c.Add(w.heldValueSpace(d))
		}
		return c.Add(w.heldValueSpace(x.Cod))
	case value.Guarded:
		return w.heldValueSpace(x.Proc).Add(w.heldValueSpace(x.Ctc))
	}
	return Cost{}
}

// Linked computes the linked-environment space of a configuration
// (Figure 8): the U_x counterpart of Flat, collapsed at the model's pointer
// width for the live store.
func (m Measurer) Linked(val value.Value, rho env.Env, k value.Cont, st *value.Store) int {
	md := m.model()
	w := newLinkedWalker(md)
	var total Cost
	if val != nil {
		total = total.Add(w.valueSpace(val))
	}
	w.addEnv(rho)
	total = total.Add(w.contSpace(k))
	st.Each(func(_ env.Location, v value.Value) {
		total = total.Add(md.Cell()).Add(w.valueSpace(v))
	})
	total = total.AddScaled(md.Binding(), len(w.bindings))
	return total.At(m.PtrWidth(st))
}
