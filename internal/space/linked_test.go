package space

import (
	"testing"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/value"
)

func TestLinkedValueCosts(t *testing.T) {
	st := value.NewStore()
	w := newLinkedWalker(Word)
	if got := w.valueSpace(value.NewNum(1024)).At(1); got != 12 {
		t.Fatalf("num = %d", got)
	}
	if got := w.valueSpace(value.Str("abc")).At(1); got != 4 {
		t.Fatalf("str = %d", got)
	}
	if got := w.valueSpace(value.Pair{}).At(1); got != 3 {
		t.Fatalf("pair = %d", got)
	}
	if got := w.valueSpace(value.Vector{ElemLocs: make([]env.Location, 4)}).At(1); got != 5 {
		t.Fatalf("vec = %d", got)
	}
	if got := w.valueSpace(value.Bool(true)).At(1); got != 1 {
		t.Fatalf("bool = %d", got)
	}
	_ = st
}

func TestLinkedClosureCostsOneWord(t *testing.T) {
	rho := env.Empty().Extend([]string{"a", "b"}, []env.Location{1, 2})
	w := newLinkedWalker(Word)
	cl := value.Closure{Lam: &ast.Lambda{}, Env: rho}
	if got := w.valueSpace(cl).At(1); got != 1 {
		t.Fatalf("closure = %d, want 1 (bindings are global)", got)
	}
	if len(w.bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(w.bindings))
	}
}

func TestLinkedContFrameCosts(t *testing.T) {
	rho := env.Empty().Extend([]string{"x"}, []env.Location{9})
	w := newLinkedWalker(Word)
	var k value.Cont = value.Halt{}
	k = &value.Assign{Name: "x", Env: rho, K: k}
	k = &value.Select{Then: &ast.Var{Name: "a"}, Else: &ast.Var{Name: "b"}, Env: rho, K: k}
	k = &value.ReturnStack{Del: []env.Location{3}, Env: rho, K: k}
	k = &value.Return{Env: rho, K: k}
	k = &value.Call{Args: []value.Value{value.Bool(true)}, K: k}
	// call(1+1) + return(1) + return-stack(1) + select(1) + assign(1) + halt(1)
	if got := w.contSpace(k).At(1); got != 7 {
		t.Fatalf("cont = %d, want 7", got)
	}
	// One shared binding across the four environments.
	if len(w.bindings) != 1 {
		t.Fatalf("bindings = %d, want 1", len(w.bindings))
	}
}

func TestLinkedPushHoldsClosuresByReference(t *testing.T) {
	rho := env.Empty().Extend([]string{"v"}, []env.Location{5})
	cl := value.Closure{Lam: &ast.Lambda{}, Env: rho}
	w := newLinkedWalker(Word)
	k := &value.Push{
		Rest: []ast.Expr{&ast.Var{Name: "e"}}, RestIdx: []int{1},
		Done: []value.Value{cl}, DoneIdx: []int{0},
		Env: env.Empty(), K: value.Halt{},
	}
	// push: 1 + m(1) + n(1), halt: 1; the closure's payload is not charged
	// again but its bindings enter the global set.
	if got := w.contSpace(k).At(1); got != 4 {
		t.Fatalf("push = %d, want 4", got)
	}
	if len(w.bindings) != 1 {
		t.Fatalf("bindings = %d, want 1", len(w.bindings))
	}
}

func TestLinkedEscapeHeldInContinuationChargesFrames(t *testing.T) {
	rho := env.Empty().Extend([]string{"x"}, []env.Location{5})
	esc := value.Escape{K: &value.Return{Env: rho, K: value.Halt{}}}
	w := newLinkedWalker(Word)
	k := &value.Call{Args: []value.Value{esc}, K: value.Halt{}}
	// call: 1 + 1, halt: 1, plus the escape's return frame: 1. The escape's
	// halt is THE halt — all halts are one continuation — so it dedups.
	if got := w.contSpace(k).At(1); got != 4 {
		t.Fatalf("cont with escape = %d, want 4", got)
	}
}

func TestDeltaMeterStoreAccountStaysExact(t *testing.T) {
	st := value.NewStore()
	st.Alloc(value.NewNum(7))
	d := NewDeltaMeter(Word)
	d.Attach(st)
	if got, walked := d.total, word.Store(st); got != walked {
		t.Fatalf("attached store account %+v != walked %+v", got, walked)
	}
	// Mutations keep the account exact.
	l := st.Alloc(value.Str("abcdef"))
	st.Set(l, value.NewNum(3))
	st.Delete(l)
	st.Alloc(value.Pair{})
	if got, walked := d.total, word.Store(st); got != walked {
		t.Fatalf("account drifted: %+v != %+v", got, walked)
	}
}

func TestStoreWalkWithoutSizer(t *testing.T) {
	st := value.NewStore()
	st.Alloc(value.NewNum(1)) // 1 + 2
	st.Alloc(value.Pair{})    // 1 + 3
	if got := w1(word.Store(st)); got != 7 {
		t.Fatalf("walked store = %d, want 7", got)
	}
}

func TestForeignValueCost(t *testing.T) {
	if got := w1(word.Value(value.Foreign{Tag: "x"})); got != 1 {
		t.Fatalf("foreign = %d, want 1", got)
	}
	w := newLinkedWalker(Word)
	if got := w.valueSpace(value.Foreign{Tag: "x"}).At(1); got != 1 {
		t.Fatalf("linked foreign = %d, want 1", got)
	}
}
