// Package space implements the space consumed by a configuration: Figure 7
// of the paper (flat, copied environments — the functions S_x) and Figure 8
// (linked, shared environments — the functions U_x), priced through a
// pluggable CostModel (see costmodel.go).
//
// Entities the figures omit are charged their natural word counts and noted
// here: UNSPECIFIED, UNDEFINED, PRIMOP, the empty list, and characters cost
// 1; strings cost 1+length; pairs cost 3 (a header and two location words);
// escape procedures cost 1 plus the space of the continuation they retain.
// Values held inside push and call continuations cost one word each (they
// are references; their payloads are charged in the store), exactly as
// Figure 7's 1+m+n accounting prescribes. Those per-entity charges are the
// WordModel; FixnumModel and LogModel reprice numbers and pointers.
//
// Measurer methods return Cost — a (unit words, pointer words) pair — and
// the configuration-level Flat and Linked collapse it to an integer at the
// model's pointer width for the current live store.
package space

import (
	"tailspace/internal/env"
	"tailspace/internal/value"
)

// Measurer computes configuration space under a chosen cost model. The zero
// Measurer uses the default WordModel.
type Measurer struct {
	Model CostModel
}

// NewMeasurer returns a Measurer over model (nil means WordModel).
func NewMeasurer(model CostModel) Measurer {
	return Measurer{Model: modelOrDefault(model)}
}

func (m Measurer) model() CostModel { return modelOrDefault(m.Model) }

// Num is the space of NUM:z.
func (m Measurer) Num(n value.Num) Cost { return m.model().Num(n) }

// Value is Figure 7's space(v). Unlike CostModel.Value, an escape procedure
// here includes the continuation it retains, matching the figure.
func (m Measurer) Value(v value.Value) Cost {
	md := m.model()
	if esc, ok := v.(value.Escape); ok {
		return md.Value(esc).Add(m.Cont(esc.K))
	}
	if g, ok := v.(value.Guarded); ok {
		// The model prices the wrapper and its wrapped procedure's shell;
		// an escape underneath still retains its continuation.
		if esc, ok := g.Proc.(value.Escape); ok {
			return md.Value(g).Add(m.Cont(esc.K))
		}
	}
	return md.Value(v)
}

// Cont is Figure 7's space(κ): the sum of the per-frame charges.
func (m Measurer) Cont(k value.Cont) Cost {
	md := m.model()
	var total Cost
	for k != nil {
		total = total.Add(md.Frame(k))
		k = k.Next()
	}
	return total
}

// Frame is the charge of a single continuation frame — the per-frame
// increment of Cont. DeltaMeter's memo and the peak-attribution reports both
// price frames through this single definition. Unknown frame kinds panic.
func (m Measurer) Frame(k value.Cont) Cost { return m.model().Frame(k) }

// Store is Figure 7's space(σ) = Σ over α ∈ σ of (1 + space(σ(α))),
// computed by a full walk. DeltaMeter maintains the same sum incrementally
// through the store's mutation hooks.
func (m Measurer) Store(st *value.Store) Cost {
	md := m.model()
	var total Cost
	st.Each(func(_ env.Location, v value.Value) {
		total = total.Add(md.Cell()).Add(m.Value(v))
	})
	return total
}

// PtrWidth is the model's pointer width for the live store st.
func (m Measurer) PtrWidth(st *value.Store) int {
	if st == nil {
		return m.model().PtrWidth(0)
	}
	return m.model().PtrWidth(st.Size())
}

// Flat computes the flat-environment space of a configuration (Figure 7),
// collapsed at the model's pointer width for the live store. For an
// expression configuration pass val == nil; the expression itself is charged
// once per program by the |P| term of Definition 23, not per configuration.
func (m Measurer) Flat(val value.Value, rho env.Env, k value.Cont, st *value.Store) int {
	md := m.model()
	total := Cost{}.AddScaled(md.Binding(), rho.Size()).Add(m.Cont(k)).Add(m.Store(st))
	if val != nil {
		total = total.Add(m.Value(val))
	}
	return total.At(m.PtrWidth(st))
}
