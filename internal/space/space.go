// Package space implements the space consumed by a configuration: Figure 7
// of the paper (flat, copied environments — the functions S_x) and Figure 8
// (linked, shared environments — the functions U_x).
//
// Entities the figures omit are charged their natural word counts and noted
// here: UNSPECIFIED, UNDEFINED, PRIMOP, the empty list, and characters cost
// 1; strings cost 1+length; pairs cost 3 (a header and two location words);
// escape procedures cost 1 plus the space of the continuation they retain.
// Values held inside push and call continuations cost one word each (they
// are references; their payloads are charged in the store), exactly as
// Figure 7's 1+m+n accounting prescribes.
package space

import (
	"tailspace/internal/env"
	"tailspace/internal/value"
)

// NumberMode selects the cost model for exact integers.
type NumberMode int

const (
	// Logarithmic charges NUM:z one word plus one word per bit, the
	// unlimited-precision model of Figure 7 (1 + log2 z).
	Logarithmic NumberMode = iota
	// Fixnum charges every number two words, the fixed-precision model the
	// paper appeals to when it says the linear programs "would be O(N) with
	// fixed precision arithmetic".
	Fixnum
)

// Measurer computes configuration space under a chosen number cost model.
type Measurer struct {
	Mode NumberMode
}

// Num is the space of NUM:z.
func (m Measurer) Num(n value.Num) int {
	if m.Mode == Fixnum {
		return 2
	}
	return 1 + n.Int.BitLen()
}

// Value is Figure 7's space(v).
func (m Measurer) Value(v value.Value) int {
	switch x := v.(type) {
	case value.Bool, value.Sym, value.Null, value.Char,
		value.Unspecified, value.Undefined:
		return 1
	case *value.Primop:
		return 1
	case value.Num:
		return m.Num(x)
	case value.Str:
		return 1 + len(x)
	case value.Pair:
		return 3
	case value.Vector:
		return 1 + len(x.ElemLocs)
	case value.Closure:
		return 1 + x.Env.Size()
	case value.Escape:
		return 1 + m.Cont(x.K)
	}
	return 1
}

// Cont is Figure 7's space(κ): the sum of the per-frame charges.
func (m Measurer) Cont(k value.Cont) int {
	total := 0
	for k != nil {
		total += m.Frame(k)
		k = k.Next()
	}
	return total
}

// Frame is the Figure 7 charge of a single continuation frame — the
// per-frame increment of Cont. Values held in push and call continuations
// cost one word each through the m+n terms; their payloads are charged in
// the store. DeltaMeter's memo and the peak-attribution reports both price
// frames through this single definition.
func (m Measurer) Frame(k value.Cont) int {
	switch x := k.(type) {
	case value.Halt:
		return 1
	case *value.Select:
		return 1 + x.Env.Size()
	case *value.Assign:
		return 1 + x.Env.Size()
	case *value.Push:
		return 1 + len(x.Rest) + len(x.Done) + x.Env.Size()
	case *value.Call:
		return 1 + len(x.Args)
	case *value.Return:
		return 1 + x.Env.Size()
	case *value.ReturnStack:
		return 1 + x.Env.Size()
	}
	return 0
}

// Store is Figure 7's space(σ) = Σ over α ∈ σ of (1 + space(σ(α))),
// computed by a full walk. DeltaMeter maintains the same sum incrementally
// through the store's mutation hooks.
func (m Measurer) Store(st *value.Store) int {
	total := 0
	st.Each(func(_ env.Location, v value.Value) {
		total += 1 + m.Value(v)
	})
	return total
}

// Flat computes the flat-environment space of a configuration (Figure 7).
// For an expression configuration pass val == nil; the expression itself is
// charged once per program by the |P| term of Definition 23, not per
// configuration.
func (m Measurer) Flat(val value.Value, rho env.Env, k value.Cont, st *value.Store) int {
	total := rho.Size() + m.Cont(k) + m.Store(st)
	if val != nil {
		total += m.Value(val)
	}
	return total
}
