package space

import (
	"math/big"
	"testing"
	"testing/quick"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/value"
)

var log = Measurer{Mode: Logarithmic}
var fix = Measurer{Mode: Fixnum}

func TestAtomCosts(t *testing.T) {
	for _, v := range []value.Value{
		value.Bool(true), value.Bool(false), value.Sym("x"),
		value.Null{}, value.Char('a'), value.Unspecified{}, value.Undefined{},
	} {
		if got := log.Value(v); got != 1 {
			t.Errorf("space(%#v) = %d, want 1", v, got)
		}
	}
}

func TestNumberCosts(t *testing.T) {
	// Figure 7: space(NUM:z) = 1 + log2 z.
	cases := map[int64]int{
		0:    1,
		1:    2,
		2:    3, // bitlen 2
		1024: 12,
	}
	for z, want := range cases {
		if got := log.Value(value.NewNum(z)); got != want {
			t.Errorf("space(NUM:%d) = %d, want %d", z, got, want)
		}
	}
	// Fixnum mode charges every number the same.
	if fix.Value(value.NewNum(7)) != fix.Value(value.Num{Int: new(big.Int).Lsh(big.NewInt(1), 500)}) {
		t.Error("fixnum mode must be size-independent")
	}
}

func TestVectorCost(t *testing.T) {
	v := value.Vector{ElemLocs: make([]env.Location, 5)}
	if got := log.Value(v); got != 6 {
		t.Fatalf("space(VEC:5) = %d, want 6", got)
	}
}

func TestClosureCost(t *testing.T) {
	// Figure 7: space(CLOSURE:(α,L,ρ)) = 1 + |Dom ρ|.
	rho := env.Empty().Extend([]string{"a", "b", "c"}, []env.Location{1, 2, 3})
	cl := value.Closure{Tag: 0, Lam: &ast.Lambda{}, Env: rho}
	if got := log.Value(cl); got != 4 {
		t.Fatalf("space(closure) = %d, want 4", got)
	}
}

func TestPairAndStringCosts(t *testing.T) {
	if got := log.Value(value.Pair{}); got != 3 {
		t.Fatalf("pair = %d, want 3", got)
	}
	if got := log.Value(value.Str("abcd")); got != 5 {
		t.Fatalf("string = %d, want 5", got)
	}
}

func TestContCosts(t *testing.T) {
	rho2 := env.Empty().Extend([]string{"x", "y"}, []env.Location{1, 2})
	var k value.Cont = value.Halt{}
	if got := log.Cont(k); got != 1 {
		t.Fatalf("halt = %d", got)
	}
	k = &value.Select{Then: &ast.Var{Name: "a"}, Else: &ast.Var{Name: "b"}, Env: rho2, K: k}
	// 1 + |Dom ρ| + space(halt) = 1 + 2 + 1
	if got := log.Cont(k); got != 4 {
		t.Fatalf("select = %d, want 4", got)
	}
	k = &value.Push{
		Rest: []ast.Expr{&ast.Var{Name: "e"}}, RestIdx: []int{1},
		Done: []value.Value{value.Bool(true), value.Bool(false)}, DoneIdx: []int{0, 2},
		Env: rho2, K: k,
	}
	// 1 + m(1) + n(2) + 2 + 4
	if got := log.Cont(k); got != 10 {
		t.Fatalf("push = %d, want 10", got)
	}
	k2 := &value.Call{Args: []value.Value{value.Bool(true)}, K: value.Halt{}}
	// 1 + 1 + 1
	if got := log.Cont(k2); got != 3 {
		t.Fatalf("call = %d, want 3", got)
	}
	k3 := &value.Return{Env: rho2, K: value.Halt{}}
	if got := log.Cont(k3); got != 4 {
		t.Fatalf("return = %d, want 4", got)
	}
	k4 := &value.ReturnStack{Del: []env.Location{9}, Env: rho2, K: value.Halt{}}
	if got := log.Cont(k4); got != 4 {
		t.Fatalf("return-stack = %d, want 4", got)
	}
}

func TestStoreCost(t *testing.T) {
	st := value.NewStore()
	st.Alloc(value.NewNum(1)) // 1 + 2
	st.Alloc(value.Null{})    // 1 + 1
	if got := log.Store(st); got != 5 {
		t.Fatalf("store = %d, want 5", got)
	}
}

func TestFlatConfig(t *testing.T) {
	st := value.NewStore()
	loc := st.Alloc(value.NewNum(3)) // store: 1 + 3 = 4... bitlen(3)=2 → value 3, slot 4
	rho := env.Empty().Extend([]string{"x"}, []env.Location{loc})
	// Expression configuration: |Dom ρ| + space(halt) + space(σ) = 1 + 1 + 4.
	if got := log.Flat(nil, rho, value.Halt{}, st); got != 6 {
		t.Fatalf("flat expr config = %d, want 6", got)
	}
	// Value configuration adds space(v).
	if got := log.Flat(value.Bool(true), rho, value.Halt{}, st); got != 7 {
		t.Fatalf("flat value config = %d, want 7", got)
	}
}

func TestEscapeCostIncludesContinuation(t *testing.T) {
	rho := env.Empty().Extend([]string{"x"}, []env.Location{1})
	esc := value.Escape{Tag: 0, K: &value.Return{Env: rho, K: value.Halt{}}}
	// 1 + (1 + 1 + 1)
	if got := log.Value(esc); got != 4 {
		t.Fatalf("escape = %d, want 4", got)
	}
}

func TestLinkedCountsSharedBindingsOnce(t *testing.T) {
	// Two closures over the same environment: flat charges the bindings
	// twice, linked once.
	st := value.NewStore()
	x := st.Alloc(value.NewNum(1))
	y := st.Alloc(value.NewNum(2))
	rho := env.Empty().Extend([]string{"x", "y"}, []env.Location{x, y})
	lam := &ast.Lambda{Body: &ast.Var{Name: "x"}}
	t1 := st.Alloc(value.Unspecified{})
	t2 := st.Alloc(value.Unspecified{})
	st.Alloc(value.Closure{Tag: t1, Lam: lam, Env: rho})
	st.Alloc(value.Closure{Tag: t2, Lam: lam, Env: rho})

	flat := log.Flat(nil, env.Empty(), value.Halt{}, st)
	linked := log.Linked(nil, env.Empty(), value.Halt{}, st)
	if linked >= flat {
		t.Fatalf("linked (%d) must beat flat (%d) on shared environments", linked, flat)
	}
	// Flat: closures cost (1+2) each; linked: 1 each plus 2 shared bindings.
	if flat-linked != 2 {
		t.Fatalf("expected exactly 2 words saved, got %d (flat=%d linked=%d)", flat-linked, flat, linked)
	}
}

func TestLinkedDistinctBindingsNotShared(t *testing.T) {
	st := value.NewStore()
	x1 := st.Alloc(value.NewNum(1))
	x2 := st.Alloc(value.NewNum(2))
	rho1 := env.Empty().Extend([]string{"x"}, []env.Location{x1})
	rho2 := env.Empty().Extend([]string{"x"}, []env.Location{x2})
	lam := &ast.Lambda{Body: &ast.Var{Name: "x"}}
	st.Alloc(value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: rho1})
	st.Alloc(value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: rho2})
	linked := log.Linked(nil, env.Empty(), value.Halt{}, st)
	flat := log.Flat(nil, env.Empty(), value.Halt{}, st)
	// Same identifier, different locations: two distinct bindings, no saving.
	if linked != flat {
		t.Fatalf("distinct bindings must not be merged: linked=%d flat=%d", linked, flat)
	}
}

func TestLinkedConfigEnvShared(t *testing.T) {
	// The configuration register and a continuation frame share an
	// environment: linked counts it once.
	st := value.NewStore()
	x := st.Alloc(value.NewNum(1))
	rho := env.Empty().Extend([]string{"x"}, []env.Location{x})
	k := &value.Return{Env: rho, K: value.Halt{}}
	flat := log.Flat(nil, rho, k, st)
	linked := log.Linked(nil, rho, k, st)
	if flat-linked != 1 {
		t.Fatalf("one shared binding should save one word: flat=%d linked=%d", flat, linked)
	}
}

func TestLinkedSharedEscapeContinuationCountedOnce(t *testing.T) {
	// An escape whose continuation is the live continuation must not double
	// count the frames.
	st := value.NewStore()
	rho := env.Empty().Extend([]string{"x"}, []env.Location{st.Alloc(value.NewNum(1))})
	var live value.Cont = &value.Return{Env: rho, K: value.Halt{}}
	st.Alloc(value.Escape{Tag: st.Alloc(value.Unspecified{}), K: live})
	withEscape := log.Linked(nil, env.Empty(), live, st)

	st2 := value.NewStore()
	rho2 := env.Empty().Extend([]string{"x"}, []env.Location{st2.Alloc(value.NewNum(1))})
	var live2 value.Cont = &value.Return{Env: rho2, K: value.Halt{}}
	st2.Alloc(value.Unspecified{}) // tag placeholder for comparability
	st2.Alloc(value.Unspecified{}) // escape replaced by an atom
	withoutEscape := log.Linked(nil, env.Empty(), live2, st2)

	// The escape adds its own word, but the shared frames add nothing.
	if withEscape-withoutEscape > 1 {
		t.Fatalf("shared continuation double-counted: with=%d without=%d", withEscape, withoutEscape)
	}
}

func TestPropertyLinkedNeverExceedsFlat(t *testing.T) {
	// Build random configurations and check U <= S pointwise.
	f := func(names []string, numVals []int64, depth uint8) bool {
		st := value.NewStore()
		var locs []env.Location
		for _, n := range numVals {
			locs = append(locs, st.Alloc(value.NewNum(n)))
		}
		if len(locs) == 0 {
			locs = append(locs, st.Alloc(value.Null{}))
		}
		clean := make([]string, 0, len(names))
		for _, n := range names {
			if n != "" {
				clean = append(clean, n)
			}
		}
		used := make([]env.Location, len(clean))
		for i := range clean {
			used[i] = locs[i%len(locs)]
		}
		rho := env.Empty().Extend(clean, used)
		var k value.Cont = value.Halt{}
		for i := 0; i < int(depth%5); i++ {
			k = &value.Return{Env: rho, K: k}
		}
		lam := &ast.Lambda{Body: &ast.Var{Name: "x"}}
		st.Alloc(value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: rho})
		flat := log.Flat(nil, rho, k, st)
		linked := log.Linked(nil, rho, k, st)
		return linked <= flat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFixnumNeverExceedsLogForBigNums(t *testing.T) {
	f := func(raw int64) bool {
		z := raw
		if z < 0 {
			z = -z
		}
		n := value.Num{Int: big.NewInt(z | (1 << 40))} // force bignum-sized
		return fix.Value(n) <= log.Value(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
