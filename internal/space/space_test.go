package space

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/value"
)

var word = Measurer{Model: Word}
var fix = Measurer{Model: Fixnum}
var logm = Measurer{Model: Log}

// w1 collapses a Cost at pointer width one — the WordModel/FixnumModel
// reading, where the Cost components just sum.
func w1(c Cost) int { return c.At(1) }

func TestAtomCosts(t *testing.T) {
	for _, v := range []value.Value{
		value.Bool(true), value.Bool(false), value.Sym("x"),
		value.Null{}, value.Char('a'), value.Unspecified{}, value.Undefined{},
	} {
		if got := w1(word.Value(v)); got != 1 {
			t.Errorf("space(%#v) = %d, want 1", v, got)
		}
	}
}

func TestNumberCosts(t *testing.T) {
	// Figure 7: space(NUM:z) = 1 + log2 z.
	cases := map[int64]int{
		0:    1,
		1:    2,
		2:    3, // bitlen 2
		1024: 12,
	}
	for z, want := range cases {
		if got := w1(word.Value(value.NewNum(z))); got != want {
			t.Errorf("space(NUM:%d) = %d, want %d", z, got, want)
		}
	}
	// The fixnum model charges every number the same.
	if fix.Value(value.NewNum(7)) != fix.Value(value.Num{Int: new(big.Int).Lsh(big.NewInt(1), 500)}) {
		t.Error("fixnum model must be size-independent")
	}
	// The log model agrees with the word model on numbers.
	if logm.Value(value.NewNum(1024)) != word.Value(value.NewNum(1024)) {
		t.Error("log model must price numbers as 1 + log2 z")
	}
}

func TestVectorCost(t *testing.T) {
	// Flat: a header word plus one location word per element. The element
	// words are pointers into the store, so they are Ptrs, not Units.
	v := value.Vector{ElemLocs: make([]env.Location, 5)}
	got := word.Value(v)
	if got != (Cost{Units: 1, Ptrs: 5}) {
		t.Fatalf("space(VEC:5) = %+v, want {Units:1 Ptrs:5}", got)
	}
	if w1(got) != 6 {
		t.Fatalf("space(VEC:5) at width 1 = %d, want 6", w1(got))
	}
	// Under LogModel the five element pointers widen with the live store.
	if at3 := got.At(3); at3 != 16 {
		t.Fatalf("space(VEC:5) at width 3 = %d, want 16", at3)
	}
}

func TestVectorCostLinked(t *testing.T) {
	// Linked (Figure 8) accounting prices a vector exactly as flat does —
	// vectors hold locations, not environments, so nothing is shareable.
	v := value.Vector{ElemLocs: make([]env.Location, 5)}
	w := newLinkedWalker(Word)
	if got := w.valueSpace(v); got != word.Value(v) {
		t.Fatalf("linked vector = %+v, flat = %+v; want equal", got, word.Value(v))
	}
	if len(w.bindings) != 0 {
		t.Fatalf("a vector must not contribute bindings, got %d", len(w.bindings))
	}
}

func TestClosureCost(t *testing.T) {
	// Figure 7: space(CLOSURE:(α,L,ρ)) = 1 + |Dom ρ|.
	rho := env.Empty().Extend([]string{"a", "b", "c"}, []env.Location{1, 2, 3})
	cl := value.Closure{Tag: 0, Lam: &ast.Lambda{}, Env: rho}
	if got := w1(word.Value(cl)); got != 4 {
		t.Fatalf("space(closure) = %d, want 4", got)
	}
}

func TestPairAndStringCosts(t *testing.T) {
	if got := w1(word.Value(value.Pair{})); got != 3 {
		t.Fatalf("pair = %d, want 3", got)
	}
	if got := w1(word.Value(value.Str("abcd"))); got != 5 {
		t.Fatalf("string = %d, want 5", got)
	}
}

func TestContCosts(t *testing.T) {
	rho2 := env.Empty().Extend([]string{"x", "y"}, []env.Location{1, 2})
	var k value.Cont = value.Halt{}
	if got := w1(word.Cont(k)); got != 1 {
		t.Fatalf("halt = %d", got)
	}
	k = &value.Select{Then: &ast.Var{Name: "a"}, Else: &ast.Var{Name: "b"}, Env: rho2, K: k}
	// 1 + |Dom ρ| + space(halt) = 1 + 2 + 1
	if got := w1(word.Cont(k)); got != 4 {
		t.Fatalf("select = %d, want 4", got)
	}
	k = &value.Push{
		Rest: []ast.Expr{&ast.Var{Name: "e"}}, RestIdx: []int{1},
		Done: []value.Value{value.Bool(true), value.Bool(false)}, DoneIdx: []int{0, 2},
		Env: rho2, K: k,
	}
	// 1 + m(1) + n(2) + 2 + 4
	if got := w1(word.Cont(k)); got != 10 {
		t.Fatalf("push = %d, want 10", got)
	}
	k2 := &value.Call{Args: []value.Value{value.Bool(true)}, K: value.Halt{}}
	// 1 + 1 + 1
	if got := w1(word.Cont(k2)); got != 3 {
		t.Fatalf("call = %d, want 3", got)
	}
	k3 := &value.Return{Env: rho2, K: value.Halt{}}
	if got := w1(word.Cont(k3)); got != 4 {
		t.Fatalf("return = %d, want 4", got)
	}
	k4 := &value.ReturnStack{Del: []env.Location{9}, Env: rho2, K: value.Halt{}}
	if got := w1(word.Cont(k4)); got != 4 {
		t.Fatalf("return-stack = %d, want 4", got)
	}
}

// bogusCont is a continuation kind no model knows how to price; embedding
// Halt supplies the unexported marker method.
type bogusCont struct{ value.Halt }

func TestUnknownFrameKindPanics(t *testing.T) {
	check := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: unknown frame kind must panic, not be priced 0", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "unpriced continuation frame") {
				t.Fatalf("%s: unexpected panic %v", name, r)
			}
		}()
		f()
	}
	check("flat", func() { word.Frame(bogusCont{}) })
	check("linked", func() { newLinkedWalker(Word).contSpace(bogusCont{}) })
}

func TestStoreCost(t *testing.T) {
	st := value.NewStore()
	st.Alloc(value.NewNum(1)) // 1 + 2
	st.Alloc(value.Null{})    // 1 + 1
	if got := w1(word.Store(st)); got != 5 {
		t.Fatalf("store = %d, want 5", got)
	}
}

func TestFlatConfig(t *testing.T) {
	st := value.NewStore()
	loc := st.Alloc(value.NewNum(3)) // store: 1 + 3 = 4... bitlen(3)=2 → value 3, slot 4
	rho := env.Empty().Extend([]string{"x"}, []env.Location{loc})
	// Expression configuration: |Dom ρ| + space(halt) + space(σ) = 1 + 1 + 4.
	if got := word.Flat(nil, rho, value.Halt{}, st); got != 6 {
		t.Fatalf("flat expr config = %d, want 6", got)
	}
	// Value configuration adds space(v).
	if got := word.Flat(value.Bool(true), rho, value.Halt{}, st); got != 7 {
		t.Fatalf("flat value config = %d, want 7", got)
	}
}

func TestEscapeCostIncludesContinuation(t *testing.T) {
	rho := env.Empty().Extend([]string{"x"}, []env.Location{1})
	esc := value.Escape{Tag: 0, K: &value.Return{Env: rho, K: value.Halt{}}}
	// 1 + (1 + 1 + 1)
	if got := w1(word.Value(esc)); got != 4 {
		t.Fatalf("escape = %d, want 4", got)
	}
	// The model prices only the one-word shell; the Measurer adds the
	// retained continuation (so the DeltaMeter can memoize it).
	if got := Word.Value(esc); got != (Cost{Units: 1}) {
		t.Fatalf("model escape shell = %+v, want {Units:1}", got)
	}
}

func TestEscapeCostLinked(t *testing.T) {
	// Linked: the escape costs its shell plus its retained frames, with the
	// saved environment folded into the global binding set instead of being
	// charged per frame.
	rho := env.Empty().Extend([]string{"x", "y"}, []env.Location{1, 2})
	esc := value.Escape{Tag: 0, K: &value.Return{Env: rho, K: value.Halt{}}}
	w := newLinkedWalker(Word)
	// shell 1 + return 1 + halt 1; the two bindings go to the global set.
	if got := w.valueSpace(esc); got != (Cost{Units: 3}) {
		t.Fatalf("linked escape = %+v, want {Units:3}", got)
	}
	if len(w.bindings) != 2 {
		t.Fatalf("escape env must contribute 2 bindings, got %d", len(w.bindings))
	}
}

func TestLogModelPtrWidth(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for live, want := range cases {
		if got := Log.PtrWidth(live); got != want {
			t.Errorf("PtrWidth(%d) = %d, want %d", live, got, want)
		}
	}
	if Word.PtrWidth(1<<20) != 1 || Fixnum.PtrWidth(1<<20) != 1 {
		t.Error("word and fixnum pointers must stay one word")
	}
}

func TestLogModelFlatScalesWithLiveStore(t *testing.T) {
	// A store of n pairs holds 2n pointer words; under LogModel each costs
	// ⌈log2 n'⌉ where n' is the live cell count, so the flat total must
	// exceed the word-model total once the store outgrows 2 cells.
	st := value.NewStore()
	for i := 0; i < 64; i++ {
		st.Alloc(value.Pair{})
	}
	logFlat := logm.Flat(nil, env.Empty(), value.Halt{}, st)
	wordFlat := word.Flat(nil, env.Empty(), value.Halt{}, st)
	// 64 cells → width 7: store = 64·(1 + 1 + 2·7) = 1024, + halt 1.
	if logFlat != 1025 {
		t.Fatalf("log flat = %d, want 1025", logFlat)
	}
	if wordFlat != 64*4+1 {
		t.Fatalf("word flat = %d, want 257", wordFlat)
	}
}

func TestModelByName(t *testing.T) {
	for name, want := range map[string]CostModel{
		"": Word, "word": Word, "fixnum": Fixnum, "log": Log,
	} {
		got, err := ModelByName(name)
		if err != nil || got != want {
			t.Errorf("ModelByName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ModelByName("logarithmic"); err == nil {
		t.Error("ModelByName must reject unknown names")
	}
	for _, m := range Models {
		if got, err := ModelByName(m.Name()); err != nil || got != m {
			t.Errorf("round trip %q failed: %v, %v", m.Name(), got, err)
		}
	}
}

func TestLinkedCountsSharedBindingsOnce(t *testing.T) {
	// Two closures over the same environment: flat charges the bindings
	// twice, linked once.
	st := value.NewStore()
	x := st.Alloc(value.NewNum(1))
	y := st.Alloc(value.NewNum(2))
	rho := env.Empty().Extend([]string{"x", "y"}, []env.Location{x, y})
	lam := &ast.Lambda{Body: &ast.Var{Name: "x"}}
	t1 := st.Alloc(value.Unspecified{})
	t2 := st.Alloc(value.Unspecified{})
	st.Alloc(value.Closure{Tag: t1, Lam: lam, Env: rho})
	st.Alloc(value.Closure{Tag: t2, Lam: lam, Env: rho})

	flat := word.Flat(nil, env.Empty(), value.Halt{}, st)
	linked := word.Linked(nil, env.Empty(), value.Halt{}, st)
	if linked >= flat {
		t.Fatalf("linked (%d) must beat flat (%d) on shared environments", linked, flat)
	}
	// Flat: closures cost (1+2) each; linked: 1 each plus 2 shared bindings.
	if flat-linked != 2 {
		t.Fatalf("expected exactly 2 words saved, got %d (flat=%d linked=%d)", flat-linked, flat, linked)
	}
}

func TestLinkedDistinctBindingsNotShared(t *testing.T) {
	st := value.NewStore()
	x1 := st.Alloc(value.NewNum(1))
	x2 := st.Alloc(value.NewNum(2))
	rho1 := env.Empty().Extend([]string{"x"}, []env.Location{x1})
	rho2 := env.Empty().Extend([]string{"x"}, []env.Location{x2})
	lam := &ast.Lambda{Body: &ast.Var{Name: "x"}}
	st.Alloc(value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: rho1})
	st.Alloc(value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: rho2})
	linked := word.Linked(nil, env.Empty(), value.Halt{}, st)
	flat := word.Flat(nil, env.Empty(), value.Halt{}, st)
	// Same identifier, different locations: two distinct bindings, no saving.
	if linked != flat {
		t.Fatalf("distinct bindings must not be merged: linked=%d flat=%d", linked, flat)
	}
}

func TestLinkedConfigEnvShared(t *testing.T) {
	// The configuration register and a continuation frame share an
	// environment: linked counts it once.
	st := value.NewStore()
	x := st.Alloc(value.NewNum(1))
	rho := env.Empty().Extend([]string{"x"}, []env.Location{x})
	k := &value.Return{Env: rho, K: value.Halt{}}
	flat := word.Flat(nil, rho, k, st)
	linked := word.Linked(nil, rho, k, st)
	if flat-linked != 1 {
		t.Fatalf("one shared binding should save one word: flat=%d linked=%d", flat, linked)
	}
}

func TestLinkedSharedEscapeContinuationCountedOnce(t *testing.T) {
	// An escape whose continuation is the live continuation must not double
	// count the frames.
	st := value.NewStore()
	rho := env.Empty().Extend([]string{"x"}, []env.Location{st.Alloc(value.NewNum(1))})
	var live value.Cont = &value.Return{Env: rho, K: value.Halt{}}
	st.Alloc(value.Escape{Tag: st.Alloc(value.Unspecified{}), K: live})
	withEscape := word.Linked(nil, env.Empty(), live, st)

	st2 := value.NewStore()
	rho2 := env.Empty().Extend([]string{"x"}, []env.Location{st2.Alloc(value.NewNum(1))})
	var live2 value.Cont = &value.Return{Env: rho2, K: value.Halt{}}
	st2.Alloc(value.Unspecified{}) // tag placeholder for comparability
	st2.Alloc(value.Unspecified{}) // escape replaced by an atom
	withoutEscape := word.Linked(nil, env.Empty(), live2, st2)

	// The escape adds its own word, but the shared frames add nothing.
	if withEscape-withoutEscape > 1 {
		t.Fatalf("shared continuation double-counted: with=%d without=%d", withEscape, withoutEscape)
	}
}

func TestPropertyLinkedNeverExceedsFlat(t *testing.T) {
	// Build random configurations and check U <= S pointwise — under every
	// cost model (linked only elides binding copies; it can never add).
	for _, m := range Models {
		meas := NewMeasurer(m)
		f := func(names []string, numVals []int64, depth uint8) bool {
			st := value.NewStore()
			var locs []env.Location
			for _, n := range numVals {
				locs = append(locs, st.Alloc(value.NewNum(n)))
			}
			if len(locs) == 0 {
				locs = append(locs, st.Alloc(value.Null{}))
			}
			clean := make([]string, 0, len(names))
			for _, n := range names {
				if n != "" {
					clean = append(clean, n)
				}
			}
			used := make([]env.Location, len(clean))
			for i := range clean {
				used[i] = locs[i%len(locs)]
			}
			rho := env.Empty().Extend(clean, used)
			var k value.Cont = value.Halt{}
			for i := 0; i < int(depth%5); i++ {
				k = &value.Return{Env: rho, K: k}
			}
			lam := &ast.Lambda{Body: &ast.Var{Name: "x"}}
			st.Alloc(value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: rho})
			flat := meas.Flat(nil, rho, k, st)
			linked := meas.Linked(nil, rho, k, st)
			return linked <= flat
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("model %s: %v", m.Name(), err)
		}
	}
}

func TestPropertyFixnumNeverExceedsWordForBigNums(t *testing.T) {
	f := func(raw int64) bool {
		z := raw
		if z < 0 {
			z = -z
		}
		n := value.Num{Int: big.NewInt(z | (1 << 40))} // force bignum-sized
		return w1(fix.Value(n)) <= w1(word.Value(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
