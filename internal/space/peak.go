package space

// PeakKind identifies one of the running maxima a run tracks: the paper's
// S_X and U_X samples plus the heap and control-depth diagnostics.
type PeakKind uint8

const (
	// PeakFlat is |P| + Figure 7 space — the S_X(P, D) sample.
	PeakFlat PeakKind = iota
	// PeakLinked is |P| + Figure 8 space — the U_X(P, D) sample.
	PeakLinked
	// PeakHeap is the live-location count |Dom σ|.
	PeakHeap
	// PeakContDepth is the continuation chain length.
	PeakContDepth
	numPeakKinds
)

// String names the kind as the event stream spells it.
func (k PeakKind) String() string {
	switch k {
	case PeakFlat:
		return "flat"
	case PeakLinked:
		return "linked"
	case PeakHeap:
		return "heap"
	case PeakContDepth:
		return "depth"
	}
	return "unknown"
}

// Peaks tracks the running maxima of a run and notifies an optional
// callback whenever one is raised — the hook the observability layer uses
// for peak-update events and peak attribution. The zero value is ready to
// use; both meters' measurements flow through Observe.
type Peaks struct {
	// OnUpdate, when set, fires after a maximum is raised, with the kind,
	// the step that raised it, and the new value.
	OnUpdate func(kind PeakKind, step, value int)

	vals [numPeakKinds]int
}

// Observe offers a sample and reports whether it raised the maximum.
func (p *Peaks) Observe(kind PeakKind, step, value int) bool {
	if value <= p.vals[kind] {
		return false
	}
	p.vals[kind] = value
	if p.OnUpdate != nil {
		p.OnUpdate(kind, step, value)
	}
	return true
}

// Get reads the current maximum for kind (0 before any observation).
func (p *Peaks) Get(kind PeakKind) int { return p.vals[kind] }
