package space

import (
	"testing"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/value"
)

// buildConfig assembles a configuration with every frame kind, an escape in
// the store, and a value register, over a small populated store.
func buildConfig() (value.Value, env.Env, value.Cont, *value.Store) {
	st := value.NewStore()
	a := st.Alloc(value.NewNum(7))
	b := st.Alloc(value.Str("hello"))
	st.Alloc(value.Pair{CarLoc: a, CdrLoc: b})

	rho := env.Empty().Extend([]string{"x", "y"}, []env.Location{a, b})
	var k value.Cont = value.Halt{}
	k = &value.Return{Env: rho, K: k}
	k = &value.Call{Args: []value.Value{value.NewNum(3)}, K: k}
	k = &value.Push{
		Rest: []ast.Expr{&ast.Var{Name: "e"}}, RestIdx: []int{1},
		Done: []value.Value{value.Bool(true)}, DoneIdx: []int{0},
		Env: rho, K: k,
	}
	st.Alloc(value.Escape{K: k})
	k = &value.Select{Then: &ast.Var{Name: "a"}, Else: &ast.Var{Name: "b"}, Env: rho, K: k}

	return value.Closure{Lam: &ast.Lambda{}, Env: rho}, rho, k, st
}

func TestDeltaMeterMatchesOracleOnStaticConfig(t *testing.T) {
	for _, model := range Models {
		val, rho, k, st := buildConfig()
		full := NewFullMeter(model)
		delta := NewDeltaMeter(model)
		delta.Attach(st)
		if got, want := delta.Flat(val, rho, k, st), full.Flat(val, rho, k, st); got != want {
			t.Errorf("model %s: delta flat %d != oracle %d", model.Name(), got, want)
		}
		if got, want := delta.Flat(nil, rho, k, st), full.Flat(nil, rho, k, st); got != want {
			t.Errorf("model %s: delta flat (expr config) %d != oracle %d", model.Name(), got, want)
		}
		if got, want := delta.Linked(val, rho, k, st), full.Linked(val, rho, k, st); got != want {
			t.Errorf("model %s: delta linked %d != oracle %d", model.Name(), got, want)
		}
	}
}

func TestDeltaMeterTracksMutationsExactly(t *testing.T) {
	val, rho, k, st := buildConfig()
	full := NewFullMeter(Fixnum)
	delta := NewDeltaMeter(Fixnum)
	delta.Attach(st)

	check := func(stage string) {
		t.Helper()
		if got, want := delta.Flat(val, rho, k, st), full.Flat(val, rho, k, st); got != want {
			t.Fatalf("%s: delta %d != oracle %d", stage, got, want)
		}
	}
	check("initial")
	l := st.Alloc(value.Str("mutate me"))
	check("after alloc")
	st.Set(l, value.NewNum(12))
	check("after set")
	st.Delete(l)
	check("after delete")
	st.Collect(rho.Locations())
	check("after collect")
}

// TestDeltaMeterContMemoSurvivesPruning forces the memo over its limit and
// checks the recomputed chain totals stay identical to the oracle walk.
func TestDeltaMeterContMemoSurvivesPruning(t *testing.T) {
	st := value.NewStore()
	rho := env.Empty()
	delta := NewDeltaMeter(Fixnum)
	delta.Attach(st)
	m := Measurer{Model: Fixnum}

	var k value.Cont = value.Halt{}
	for i := 0; i < 64; i++ {
		k = &value.Return{Env: rho, K: k}
	}
	if got, want := delta.contSpace(k), m.Cont(k); got != want {
		t.Fatalf("before pruning: %+v != %+v", got, want)
	}
	delta.contMemo = make(map[value.Cont]Cost, deltaMemoLimit+2)
	for i := 0; i < deltaMemoLimit+1; i++ {
		delta.contMemo[&value.Return{Env: rho}] = Cost{Units: i}
	}
	if got, want := delta.contSpace(&value.Select{Env: rho, K: k}), (Cost{Units: 1}).Add(m.Cont(k)); got != want {
		t.Fatalf("after pruning: %+v != %+v", got, want)
	}
	if len(delta.contMemo) > 70 {
		t.Fatalf("memo was not pruned: %d entries", len(delta.contMemo))
	}
}

// TestDeltaMeterReattachResets re-attaches one meter to a second store and
// checks the account restarts from that store's contents.
func TestDeltaMeterReattachResets(t *testing.T) {
	st1 := value.NewStore()
	st1.Alloc(value.Str("old"))
	delta := NewDeltaMeter(Fixnum)
	delta.Attach(st1)

	st2 := value.NewStore()
	st2.Alloc(value.NewNum(1))
	delta.Attach(st2)
	m := Measurer{Model: Fixnum}
	if got, want := delta.total, m.Store(st2); got != want {
		t.Fatalf("after re-attach: account %+v != new store %+v", got, want)
	}
	// The first store no longer notifies the meter.
	st1.Alloc(value.Str("should not count"))
	if got, want := delta.total, m.Store(st2); got != want {
		t.Fatalf("old store still observed: %+v != %+v", got, want)
	}
	// Re-attaching to the current store is a no-op, not a double count.
	delta.Attach(st2)
	st2.Alloc(value.NewNum(2))
	if got, want := delta.total, m.Store(st2); got != want {
		t.Fatalf("double registration: %+v != %+v", got, want)
	}
}
