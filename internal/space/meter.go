package space

import (
	"tailspace/internal/env"
	"tailspace/internal/value"
)

// Meter prices configurations during a run. The Runner calls Attach once per
// run (before the first observation) and then Flat — and, unless the run is
// flat-only, Linked — on every transition.
//
// Two implementations exist. FullMeter recomputes Figure 7/8 space from
// scratch on every observation: O(configuration) per transition, kept as the
// oracle. DeltaMeter maintains the Figure 7 account incrementally through
// the store's alloc/write/delete hooks and a continuation memo, so a
// transition costs O(cells touched). The two are differentially tested to
// produce bit-identical peaks over the whole corpus, under every cost model.
//
// A Meter instance carries per-run state and must not be shared between
// concurrent runs; the Runner builds a fresh one per run unless the caller
// supplies their own.
type Meter interface {
	// Attach prepares the meter to measure a run over st, resetting any
	// per-run state and installing whatever store hooks it needs.
	Attach(st *value.Store)
	// Flat is the Figure 7 (flat-environment) space of the configuration;
	// val is nil for expression configurations.
	Flat(val value.Value, rho env.Env, k value.Cont, st *value.Store) int
	// Linked is the Figure 8 (linked-environment) space of the configuration.
	Linked(val value.Value, rho env.Env, k value.Cont, st *value.Store) int
}

// FullMeter is the oracle: every observation recomputes the configuration
// space from scratch by walking the environment, the continuation, and the
// whole store. It holds no state, costs O(configuration) per transition, and
// exists to guard DeltaMeter — and any future meter — differentially.
type FullMeter struct {
	M Measurer
}

// NewFullMeter returns the from-scratch recomputation oracle under model
// (nil means WordModel).
func NewFullMeter(model CostModel) *FullMeter {
	return &FullMeter{M: NewMeasurer(model)}
}

// Attach is a no-op: the oracle keeps no per-run state.
func (f *FullMeter) Attach(*value.Store) {}

// Flat recomputes Figure 7 space with a full walk.
func (f *FullMeter) Flat(val value.Value, rho env.Env, k value.Cont, st *value.Store) int {
	return f.M.Flat(val, rho, k, st)
}

// Linked recomputes Figure 8 space with a full walk.
func (f *FullMeter) Linked(val value.Value, rho env.Env, k value.Cont, st *value.Store) int {
	return f.M.Linked(val, rho, k, st)
}

// deltaMemoLimit bounds the continuation memo. Continuation frames are
// immutable, so entries never go stale — the limit only bounds memory on
// very long runs. When it trips, the memo is rebuilt lazily along the live
// chain; peaks are unaffected.
const deltaMemoLimit = 1 << 17

// DeltaMeter maintains the Figure 7 account incrementally:
//
//   - the store term Σ (1 + space(σ(α))) is kept as a running total updated
//     through the StoreObserver hooks, so it is O(1) to read and O(cells
//     touched) to maintain;
//   - the continuation term space(κ) is memoized per frame: frames are
//     immutable and chain through Next(), so the cumulative space below any
//     frame is computed once, making the per-transition cost O(frames pushed
//     since the last observation) — amortized O(1);
//   - the environment term |Dom ρ| reads the rib-size account cached by
//     internal/env at construction.
//
// The running totals and the memo are Cost values — (unit words, pointer
// words) pairs — not collapsed integers. That makes the meter exact under
// LogModel, where the pointer width depends on the live-store size at
// observation time: the components are maintained incrementally (they are
// plain sums, so deltas are exact) and the width is applied only in Flat.
// No approximation or re-pricing epoch is needed; see DESIGN.md §12.
//
// Linked (Figure 8) space is a whole-configuration union of binding sets and
// remains a full walk in both meters; runs that need speed set FlatOnly.
type DeltaMeter struct {
	M Measurer

	st       *value.Store
	total    Cost // Σ over α ∈ σ of (Cell + space(σ(α))), maintained via hooks
	contMemo map[value.Cont]Cost
	scratch  []value.Cont
}

// NewDeltaMeter returns an incremental Figure 7 meter under model (nil means
// WordModel).
func NewDeltaMeter(model CostModel) *DeltaMeter {
	return &DeltaMeter{M: NewMeasurer(model)}
}

// Attach resets the meter's account to st's current contents and registers
// for its mutation hooks. Attaching to the store the meter already watches
// is a no-op.
func (d *DeltaMeter) Attach(st *value.Store) {
	if d.st == st {
		return
	}
	if d.st != nil {
		d.st.RemoveObserver(d)
	}
	d.st = st
	d.contMemo = make(map[value.Cont]Cost)
	d.total = Cost{}
	cell := d.M.model().Cell()
	st.Each(func(_ env.Location, v value.Value) {
		d.total = d.total.Add(cell).Add(d.valueSpace(v))
	})
	st.AddObserver(d)
}

// StoreAlloc implements value.StoreObserver.
func (d *DeltaMeter) StoreAlloc(_ env.Location, v value.Value) {
	d.total = d.total.Add(d.M.model().Cell()).Add(d.valueSpace(v))
}

// StoreSet implements value.StoreObserver.
func (d *DeltaMeter) StoreSet(_ env.Location, old, v value.Value) {
	d.total = d.total.Add(d.valueSpace(v)).Sub(d.valueSpace(old))
}

// StoreDelete implements value.StoreObserver.
func (d *DeltaMeter) StoreDelete(_ env.Location, v value.Value) {
	d.total = d.total.Sub(d.M.model().Cell()).Sub(d.valueSpace(v))
}

// Flat assembles Figure 7 space from the incremental accounts and collapses
// it at the model's pointer width for the live store. It must be
// bit-identical to FullMeter.Flat: same value pricing, same frame charges,
// same store sum — only the evaluation strategy differs.
func (d *DeltaMeter) Flat(val value.Value, rho env.Env, k value.Cont, st *value.Store) int {
	md := d.M.model()
	total := Cost{}.AddScaled(md.Binding(), rho.Size()).Add(d.contSpace(k)).Add(d.total)
	if val != nil {
		total = total.Add(d.valueSpace(val))
	}
	if st == nil {
		st = d.st
	}
	return total.At(d.M.PtrWidth(st))
}

// Linked delegates to the shared Figure 8 walk (see the type comment).
func (d *DeltaMeter) Linked(val value.Value, rho env.Env, k value.Cont, st *value.Store) int {
	return d.M.Linked(val, rho, k, st)
}

// valueSpace prices a value exactly as Measurer.Value, except that escape
// procedures read the continuation memo instead of walking their retained
// frames.
func (d *DeltaMeter) valueSpace(v value.Value) Cost {
	if esc, ok := v.(value.Escape); ok {
		return Cost{Units: 1}.Add(d.contSpace(esc.K))
	}
	return d.M.Value(v)
}

// contSpace returns Figure 7's space(κ) from the memo, computing and caching
// the cumulative space of any unmemoized suffix. Frames are immutable, so a
// cached cumulative total never changes.
func (d *DeltaMeter) contSpace(k value.Cont) Cost {
	if k == nil {
		return Cost{}
	}
	if total, ok := d.contMemo[k]; ok {
		return total
	}
	if len(d.contMemo) > deltaMemoLimit {
		d.contMemo = make(map[value.Cont]Cost)
	}
	stack := d.scratch[:0]
	var base Cost
	for cur := k; cur != nil; cur = cur.Next() {
		if total, ok := d.contMemo[cur]; ok {
			base = total
			break
		}
		stack = append(stack, cur)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		base = base.Add(d.frameSpace(stack[i]))
		d.contMemo[stack[i]] = base
	}
	d.scratch = stack[:0]
	return base
}

// frameSpace is the charge of a single continuation frame, shared with the
// oracle through Measurer.Frame so the two meters can never disagree on
// per-frame pricing.
func (d *DeltaMeter) frameSpace(k value.Cont) Cost {
	return d.M.Frame(k)
}
