package space

import "testing"

func TestPeaksObserveRaisesAndNotifies(t *testing.T) {
	var p Peaks
	type update struct {
		kind        PeakKind
		step, value int
	}
	var got []update
	p.OnUpdate = func(kind PeakKind, step, value int) {
		got = append(got, update{kind, step, value})
	}
	if !p.Observe(PeakFlat, 1, 10) {
		t.Fatal("first observation must raise the maximum")
	}
	if p.Observe(PeakFlat, 2, 10) || p.Observe(PeakFlat, 3, 4) {
		t.Fatal("equal or lower samples must not raise the maximum")
	}
	if !p.Observe(PeakFlat, 4, 11) {
		t.Fatal("larger sample must raise the maximum")
	}
	p.Observe(PeakHeap, 5, 3)
	if p.Get(PeakFlat) != 11 || p.Get(PeakHeap) != 3 || p.Get(PeakLinked) != 0 {
		t.Fatalf("maxima flat=%d heap=%d linked=%d", p.Get(PeakFlat), p.Get(PeakHeap), p.Get(PeakLinked))
	}
	want := []update{{PeakFlat, 1, 10}, {PeakFlat, 4, 11}, {PeakHeap, 5, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d updates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("update %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestPeakKindStrings(t *testing.T) {
	names := map[PeakKind]string{
		PeakFlat: "flat", PeakLinked: "linked", PeakHeap: "heap", PeakContDepth: "depth",
	}
	for kind, want := range names {
		if kind.String() != want {
			t.Fatalf("%d.String() = %q, want %q", kind, kind.String(), want)
		}
	}
}
