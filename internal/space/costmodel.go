package space

import (
	"fmt"
	"math/bits"

	"tailspace/internal/value"
)

// This file defines the cost-model axis: every per-entity charge the
// Figure 7/8 accounting makes — a value's cells, a number's digits, a
// continuation frame, a rib binding, a store cell, a linked-walk binding
// node — is priced by a CostModel instead of being hard-coded in the
// Measurer. Three models ship:
//
//   - WordModel: the paper's Figure 7/8 word counts (the default). Numbers
//     cost 1 + log2|z| (unlimited precision), every pointer costs one word.
//   - FixnumModel: WordModel with fixed-precision numbers (every number
//     costs two words) — the model the paper appeals to when it says the
//     linear programs "would be O(N) with fixed precision arithmetic".
//   - LogModel: logarithmic space accounting after Accattoli/Dal Lago/
//     Vanoni ("Reasonable Space for the λ-Calculus, Logarithmically"):
//     unit cost per node/cell, 1 + log2|z| per number, and every pointer
//     into the store costs the width of a live-store address, ⌈log2 |σ|⌉
//     bits, instead of one constant word.
//
// Charges are two-component Costs so the incremental DeltaMeter stays exact
// under LogModel: the pointer width is a run-time quantity (it grows with
// the live store), so a charge is kept as (unit words, pointer words) and
// collapsed to an integer only at observation time.

// Cost is one space charge, split into Units — words every model prices at
// width one — and Ptrs — store-pointer words whose width the model may
// scale with the live-store size. The components are summed independently;
// At collapses them once the pointer width is known.
type Cost struct {
	Units int
	Ptrs  int
}

// At collapses the charge at pointer width w: Units + Ptrs·w.
func (c Cost) At(w int) int { return c.Units + c.Ptrs*w }

// Add returns c + o, component-wise.
func (c Cost) Add(o Cost) Cost { return Cost{c.Units + o.Units, c.Ptrs + o.Ptrs} }

// Sub returns c − o, component-wise.
func (c Cost) Sub(o Cost) Cost { return Cost{c.Units - o.Units, c.Ptrs - o.Ptrs} }

// AddScaled returns c + n·o, component-wise.
func (c Cost) AddScaled(o Cost, n int) Cost {
	return Cost{c.Units + n*o.Units, c.Ptrs + n*o.Ptrs}
}

// refCost is the charge of one reference word: a value held in a push or
// call continuation, a pair's two location words, a vector slot. References
// point into the store, so they are pointer words in every model (WordModel
// and FixnumModel price pointer words at width one).
var refCost = Cost{Ptrs: 1}

// CostModel prices every entity the space semantics charges. Implementations
// must be stateless values: a model is shared between meters, hashed into
// service cache keys by Name, and compared by interface equality.
type CostModel interface {
	// Name is the canonical model name ("word", "fixnum", "log") — the wire
	// name the service hashes into cache keys and the -cost-model flag spelling.
	Name() string
	// PtrWidth is the cost of one pointer word when the live store holds
	// live cells. Models without pointer scaling return 1.
	PtrWidth(live int) int
	// Num prices the number NUM:z.
	Num(n value.Num) Cost
	// Value prices a value's own cells under flat (Figure 7) accounting.
	// Escape procedures are priced as their one-word shell only — the
	// retained continuation is charged by the caller (the Measurer walks it,
	// the DeltaMeter reads its memo) — and closures include their copied
	// environment as Env.Size() bindings.
	Value(v value.Value) Cost
	// Frame prices a single continuation frame (the per-frame increment of
	// space(κ)): a one-word header, one reference word per held value, and
	// one binding per entry of the saved environment. Unknown frame kinds
	// panic — a new continuation constructor must be priced explicitly, not
	// silently given weight zero.
	Frame(k value.Cont) Cost
	// Binding prices one identifier×location binding: a rib entry of a flat
	// environment, or one element of the global binding set of the linked
	// (Figure 8) walk.
	Binding() Cost
	// Cell prices a store location's own overhead — the "1 +" of Figure 7's
	// space(σ) = Σ (1 + space(σ(α))); the cell's contents are priced by Value.
	Cell() Cost
}

// The three models, as shareable singletons.
var (
	// Word is the default: the paper's Figure 7/8 word counts.
	Word CostModel = WordModel{}
	// Fixnum is WordModel with constant-cost (fixed-precision) numbers.
	Fixnum CostModel = FixnumModel{}
	// Log is the logarithmic accounting of Accattoli et al.
	Log CostModel = LogModel{}
)

// Models lists every cost model, in canonical order.
var Models = []CostModel{Word, Fixnum, Log}

// ModelByName resolves a cost-model name; the empty string means the
// default WordModel.
func ModelByName(name string) (CostModel, error) {
	switch name {
	case "", "word":
		return Word, nil
	case "fixnum":
		return Fixnum, nil
	case "log":
		return Log, nil
	}
	return nil, fmt.Errorf("space: unknown cost model %q (want word|fixnum|log)", name)
}

// modelOrDefault maps nil to the default WordModel so a zero Options or
// zero Measurer keeps the paper's accounting.
func modelOrDefault(m CostModel) CostModel {
	if m == nil {
		return Word
	}
	return m
}

// modelValue is the shared flat (Figure 7) value pricing every model
// delegates to; the model supplies the number and binding charges. See
// CostModel.Value for the escape-procedure contract.
func modelValue(m CostModel, v value.Value) Cost {
	switch x := v.(type) {
	case value.Num:
		return m.Num(x)
	case value.Str:
		return Cost{Units: 1 + len(x)}
	case value.Pair:
		// A header word and two location words.
		return Cost{Units: 1, Ptrs: 2}
	case value.Vector:
		return Cost{Units: 1, Ptrs: len(x.ElemLocs)}
	case value.Closure:
		// Flat environments are copied: 1 + |Dom ρ| bindings.
		return Cost{Units: 1}.AddScaled(m.Binding(), x.Env.Size())
	case value.Escape:
		return Cost{Units: 1}
	case *value.ArrowContract:
		// A header word plus one reference word per component contract; the
		// components are values with their own store presence.
		return Cost{Units: 1, Ptrs: 1 + len(x.Dom)}
	case value.Guarded:
		// A wrapper shell: header plus references to the wrapped procedure
		// and the contract. The wrapped procedure's own cells (its copied
		// environment included) are priced where that value is charged.
		return Cost{Units: 1, Ptrs: 2}.Add(modelValue(m, x.Proc))
	default:
		// BOOL, SYM, CHAR, the empty list, UNSPECIFIED, UNDEFINED, PRIMOP.
		return Cost{Units: 1}
	}
}

// modelFrame is the shared per-frame pricing: a one-word header, one
// reference word per held value (Figure 7's m+n terms — the payloads are
// charged in the store), one unit word per pending expression slot (code
// pointers address the static program, not the store), and one binding per
// saved-environment entry.
func modelFrame(m CostModel, k value.Cont) Cost {
	b := m.Binding()
	switch x := k.(type) {
	case value.Halt:
		return Cost{Units: 1}
	case *value.Select:
		return Cost{Units: 1}.AddScaled(b, x.Env.Size())
	case *value.Assign:
		return Cost{Units: 1}.AddScaled(b, x.Env.Size())
	case *value.Push:
		return Cost{Units: 1 + len(x.Rest), Ptrs: len(x.Done)}.AddScaled(b, x.Env.Size())
	case *value.Call:
		return Cost{Units: 1, Ptrs: len(x.Args)}
	case *value.Return:
		return Cost{Units: 1}.AddScaled(b, x.Env.Size())
	case *value.ReturnStack:
		return Cost{Units: 1}.AddScaled(b, x.Env.Size())
	case *value.MonCtc:
		// Header plus the pending-expression slot (a code pointer, unit
		// priced like Push's Rest slots) plus the saved environment.
		return Cost{Units: 2}.AddScaled(b, x.Env.Size())
	case *value.MonAttach:
		return Cost{Units: 1, Ptrs: 1}
	case *value.MonDom:
		return Cost{Units: 2, Ptrs: 1 + len(x.Args)}
	case *value.MonCod:
		// One unit (the label, static program text) and one reference word
		// per pending check: the frame's cost is linear in its check list,
		// which is what separates the naive monitor's Θ(n) frame chain from
		// the space-efficient monitor's single joined frame.
		return Cost{Units: 1 + len(x.Pend), Ptrs: len(x.Pend)}
	case *value.MonChk:
		return Cost{Units: 1 + len(x.Rest), Ptrs: 1 + len(x.Rest)}
	default:
		panic(fmt.Sprintf("space: unpriced continuation frame %T — every frame kind must be charged", k))
	}
}

// WordModel is the paper's accounting: every word — pointer or not — costs
// one, numbers cost 1 + log2|z| (Figure 7's unlimited-precision NUM rule).
type WordModel struct{}

// Name implements CostModel.
func (WordModel) Name() string { return "word" }

// PtrWidth implements CostModel: pointers are one word.
func (WordModel) PtrWidth(int) int { return 1 }

// Num implements CostModel: 1 + log2|z|.
func (WordModel) Num(n value.Num) Cost { return Cost{Units: 1 + n.Int.BitLen()} }

// Binding implements CostModel: one location word per binding.
func (WordModel) Binding() Cost { return Cost{Ptrs: 1} }

// Cell implements CostModel: one header word per store cell.
func (WordModel) Cell() Cost { return Cost{Units: 1} }

// Value implements CostModel.
func (m WordModel) Value(v value.Value) Cost { return modelValue(m, v) }

// Frame implements CostModel.
func (m WordModel) Frame(k value.Cont) Cost { return modelFrame(m, k) }

// FixnumModel is WordModel with fixed-precision numbers: every number costs
// two words regardless of magnitude. It absorbs the former NumberMode knob.
type FixnumModel struct{}

// Name implements CostModel.
func (FixnumModel) Name() string { return "fixnum" }

// PtrWidth implements CostModel: pointers are one word.
func (FixnumModel) PtrWidth(int) int { return 1 }

// Num implements CostModel: a tag word and a payload word.
func (FixnumModel) Num(value.Num) Cost { return Cost{Units: 2} }

// Binding implements CostModel.
func (FixnumModel) Binding() Cost { return Cost{Ptrs: 1} }

// Cell implements CostModel.
func (FixnumModel) Cell() Cost { return Cost{Units: 1} }

// Value implements CostModel.
func (m FixnumModel) Value(v value.Value) Cost { return modelValue(m, v) }

// Frame implements CostModel.
func (m FixnumModel) Frame(k value.Cont) Cost { return modelFrame(m, k) }

// LogModel is logarithmic space accounting: unit cost per node/cell and per
// binding, 1 + log2|z| per number, and pointers into the store cost the
// width of a live-store address — ⌈log2(live+1)⌉ bits, at least one — so a
// configuration with n live cells pays Θ(log n) per retained reference.
// Under this model a program whose live store grows linearly occupies
// Θ(n log n), not Θ(n): the space-class separations of Theorem 25 must be
// re-derived, which is exactly what the cost-model sweep does.
type LogModel struct{}

// Name implements CostModel.
func (LogModel) Name() string { return "log" }

// PtrWidth implements CostModel: the bit width of a live-store address.
func (LogModel) PtrWidth(live int) int {
	if live <= 1 {
		return 1
	}
	return bits.Len(uint(live))
}

// Num implements CostModel: 1 + log2|z|, as in WordModel — the logarithmic
// model and Figure 7 agree on numbers; they differ on pointers.
func (LogModel) Num(n value.Num) Cost { return Cost{Units: 1 + n.Int.BitLen()} }

// Binding implements CostModel: a unit node plus one store pointer.
func (LogModel) Binding() Cost { return Cost{Units: 1, Ptrs: 1} }

// Cell implements CostModel: unit cost per cell (the cell's contents carry
// their own pointer charges).
func (LogModel) Cell() Cost { return Cost{Units: 1} }

// Value implements CostModel.
func (m LogModel) Value(v value.Value) Cost { return modelValue(m, v) }

// Frame implements CostModel.
func (m LogModel) Frame(k value.Cont) Cost { return modelFrame(m, k) }
