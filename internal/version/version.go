// Package version is the shared -version implementation for every command
// in this module: one line built from the binary's embedded build info, so
// it needs no ldflags and stays correct under plain `go build`/`go run`.
package version

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// String renders "cmd version (go1.xx os/arch) [vcs rev]" for the running
// binary. Module version is "(devel)" for in-tree builds; when the binary
// was built from a VCS checkout the revision and dirty flag are appended.
func String(cmd string) string {
	mod, rev, dirty := "(devel)", "", false
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			mod = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
	}
	out := fmt.Sprintf("%s %s (%s %s/%s)", cmd, mod, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " " + rev
		if dirty {
			out += "+dirty"
		}
	}
	return out
}

// Print writes the version line — the body of every command's -version
// flag.
func Print(w io.Writer, cmd string) {
	fmt.Fprintln(w, String(cmd))
}
