package corpus

// Additional corpus programs exercising apply, strings, characters, and —
// the classic stress test — a metacircular evaluator interpreting Scheme in
// Scheme.

func init() {
	programs = append(programs,
		Program{
			Name:        "apply-spread",
			Description: "apply with leading arguments and a spread list",
			Answer:      "21",
			Source: `
(define (add5 a b c d e) (+ a b c d e))
(apply add5 1 2 '(3 4 5))
(apply + 1 2 (list 3 4 5))
(+ (apply max '(3 9 4)) (apply min 2 '(7 12)))
(apply + (apply list 1 2 '(3 4 5)))
(+ (apply * '(2 3)) (apply - 20 '(5)))`,
		},
		Program{
			Name:        "string-builder",
			Description: "string and character processing",
			Answer:      `"X:abc-abc (3)"`,
			Source: `
(define (join a b) (string-append a "-" b))
(define s "abc")
(string-append "X:" (join s s)
               " (" (number->string (string-length s)) ")")`,
		},
		Program{
			Name:        "char-caesar",
			Description: "character arithmetic: a Caesar cipher over a list of chars",
			Answer:      `"khoor"`,
			Source: `
(define (shift c n)
  (integer->char (+ 97 (remainder (+ (- (char->integer c) 97) n) 26))))
(define (caesar l n)
  (if (null? l) '() (cons (shift (car l) n) (caesar (cdr l) n))))
(list->string (caesar (string->list "hello") 3))`,
		},
		Program{
			Name:        "fold-apply",
			Description: "higher-order code combining fold with apply",
			Answer:      "3628800",
			Source: `
(define (iota n)
  (let loop ((i n) (acc '()))
    (if (zero? i) acc (loop (- i 1) (cons i acc)))))
(apply * (iota 10))`,
		},
		Program{
			Name:        "metacircular",
			Description: "a metacircular evaluator interpreting a recursive Scheme program",
			Answer:      "120",
			Source:      metacircular,
		},
		Program{
			Name:        "metacircular-tail-loop",
			Description: "the metacircular evaluator running the paper's countdown loop",
			Answer:      "0",
			Source:      metacircularLoop,
		},
		Program{
			Name:        "regex-derivatives",
			Description: "Brzozowski-derivative regular-expression matcher over char lists",
			Answer:      "(#t #f #t)",
			Source: `
;; Regexes are tagged lists: (empty), (eps), (chr c), (cat r s), (alt r s), (star r).
(define (tag r) (car r))
(define (nullable? r)
  (case (tag r)
    ((empty) #f)
    ((eps) #t)
    ((chr) #f)
    ((cat) (and (nullable? (cadr r)) (nullable? (caddr r))))
    ((alt) (or (nullable? (cadr r)) (nullable? (caddr r))))
    ((star) #t)))
(define (deriv r c)
  (case (tag r)
    ((empty) '(empty))
    ((eps) '(empty))
    ((chr) (if (char=? (cadr r) c) '(eps) '(empty)))
    ((cat)
     (let ((left (list 'cat (deriv (cadr r) c) (caddr r))))
       (if (nullable? (cadr r))
           (list 'alt left (deriv (caddr r) c))
           left)))
    ((alt) (list 'alt (deriv (cadr r) c) (deriv (caddr r) c)))
    ((star) (list 'cat (deriv (cadr r) c) r))))
(define (matches? r cs)
  (if (null? cs)
      (nullable? r)
      (matches? (deriv r (car cs)) (cdr cs))))
(define (match? r s) (matches? r (string->list s)))
;; (a|b)*c
(define re (list 'cat (list 'star (list 'alt '(chr #\a) '(chr #\b))) '(chr #\c)))
(list (match? re "ababc") (match? re "abad") (match? re "c"))`,
		},
		Program{
			Name:        "nqueens",
			Description: "n-queens counting solutions with list-based backtracking",
			Answer:      "10",
			Source: `
(define (safe? q qs d)
  (cond ((null? qs) #t)
        ((= q (car qs)) #f)
        ((= (abs (- q (car qs))) d) #f)
        (else (safe? q (cdr qs) (+ d 1)))))
(define (count-queens n)
  (define (place row qs)
    (if (= row n)
        1
        (let loop ((col 0) (acc 0))
          (cond ((= col n) acc)
                ((safe? col qs 1)
                 (loop (+ col 1) (+ acc (place (+ row 1) (cons col qs)))))
                (else (loop (+ col 1) acc))))))
  (place 0 '()))
(count-queens 5)`,
		},
		Program{
			Name:        "church-pred",
			Description: "Church-numeral predecessor via pairs (the hard one)",
			Answer:      "4",
			Source: `
;; Predecessor computed the Church way: fold n times over pairs
;; (k-1, k), then project — the trick Kleene found at the dentist.
(define (pred-via-pairs n)
  (car (let loop ((i n) (p (cons 0 0)))
         (if (zero? i) p (loop (- i 1) (cons (cdr p) (+ (cdr p) 1)))))))
(pred-via-pairs 5)`,
		},
		Program{
			Name:        "stream-fibs",
			Description: "lazy streams via thunks: take 10 Fibonacci numbers",
			Answer:      "(0 1 1 2 3 5 8 13 21 34)",
			Source: `
(define (scons a thunk) (cons a thunk))
(define (shead s) (car s))
(define (stail s) ((cdr s)))
(define (fibs a b) (scons a (lambda () (fibs b (+ a b)))))
(define (stake s n)
  (if (zero? n) '() (cons (shead s) (stake (stail s) (- n 1)))))
(stake (fibs 0 1) 10)`,
		},
	)
}

// metacircular is a small but honest metacircular evaluator: environments
// are assoc lists of (symbol . value) pairs, closures are tagged lists, and
// the interpreted language supports quote, if, lambda, define-free letrec
// via explicit Y-less self passing, and primitive arithmetic.
const metacircular = `
(define (zip ks vs)
  (if (null? ks) '() (cons (cons (car ks) (car vs)) (zip (cdr ks) (cdr vs)))))
(define (lookup x env)
  (cond ((null? env) (error "unbound"))
        ((eqv? (caar env) x) (cdar env))
        (else (lookup x (cdr env)))))
(define (ev e env)
  (cond ((number? e) e)
        ((symbol? e) (lookup e env))
        ((eqv? (car e) 'quote) (cadr e))
        ((eqv? (car e) 'if)
         (if (ev (cadr e) env) (ev (caddr e) env) (ev (cadddr e) env)))
        ((eqv? (car e) 'lambda)
         (list 'closure (cadr e) (caddr e) env))
        (else
         (ap (ev (car e) env)
             (evlis (cdr e) env)))))
(define (evlis es env)
  (if (null? es) '() (cons (ev (car es) env) (evlis (cdr es) env))))
(define (ap f args)
  (if (pair? f)
      (ev (caddr f) (append (zip (cadr f) args) (cadddr f)))
      (apply f args)))
;; Interpret factorial, with recursion by self-passing.
(define prog
  '((lambda (fact n) (fact fact n))
    (lambda (self n) (if (zero? n) 1 (* n (self self (- n 1)))))
    5))
(define base-env
  (list (cons 'zero? zero?) (cons '* *) (cons '- -)))
(ev prog base-env)`

// metacircularLoop runs the paper's countdown loop inside the interpreted
// language — two levels of tail calls deep.
const metacircularLoop = `
(define (zip ks vs)
  (if (null? ks) '() (cons (cons (car ks) (car vs)) (zip (cdr ks) (cdr vs)))))
(define (lookup x env)
  (cond ((null? env) (error "unbound"))
        ((eqv? (caar env) x) (cdar env))
        (else (lookup x (cdr env)))))
(define (ev e env)
  (cond ((number? e) e)
        ((symbol? e) (lookup e env))
        ((eqv? (car e) 'quote) (cadr e))
        ((eqv? (car e) 'if)
         (if (ev (cadr e) env) (ev (caddr e) env) (ev (cadddr e) env)))
        ((eqv? (car e) 'lambda)
         (list 'closure (cadr e) (caddr e) env))
        (else
         (ap (ev (car e) env)
             (evlis (cdr e) env)))))
(define (evlis es env)
  (if (null? es) '() (cons (ev (car es) env) (evlis (cdr es) env))))
(define (ap f args)
  (if (pair? f)
      (ev (caddr f) (append (zip (cadr f) args) (cadddr f)))
      (apply f args)))
(define prog
  '((lambda (loop n) (loop loop n))
    (lambda (self n) (if (zero? n) 0 (self self (- n 1))))
    40))
(ev prog (list (cons 'zero? zero?) (cons '- -)))`
