package corpus

// Parametric programs: one-argument versions of corpus idioms and the
// bundled leak examples, as pure define-form sources whose value is a
// procedure of n. They exist to be swept over input ladders — the
// differential leak grid (internal/experiments) applies each one to
// growing inputs on every certified machine and checks the measured growth
// classes against the static analyzer's per-machine-pair verdicts.
type Parametric struct {
	Name   string
	Source string
	// Quadratic marks programs expected to reach a quadratic class on some
	// machine; sweeps keep their input ladders small.
	Quadratic bool
	// Description says what leak structure (or absence) the program carries.
	Description string
}

// ParametricPrograms returns the sweepable subjects.
func ParametricPrograms() []Parametric {
	return []Parametric{
		{
			Name:        "sum-iter",
			Description: "accumulator loop: no leak anywhere; properly tail recursive machines stay constant",
			Source: `
(define (sum n acc) (if (zero? n) acc (sum (- n 1) (+ acc n))))
(define (f n) (sum n 0))`,
		},
		{
			Name:        "sum-rec",
			Description: "non-tail recursion: control grows on every machine alike, no environment leak",
			Source: `
(define (f n) (if (zero? n) 0 (+ n (f (- n 1)))))`,
		},
		{
			Name:        "even-odd",
			Description: "mutual tail recursion: constant on properly tail recursive machines",
			Source: `
(define (ev n) (if (zero? n) 1 (od (- n 1))))
(define (od n) (if (zero? n) 0 (ev (- n 1))))
(define (f n) (ev n))`,
		},
		{
			Name:        "retained-closure",
			Quadratic:   true,
			Description: "examples/retained-closure.scm: whole-environment capture retains a dead vector per level",
			Source: `
(define (leak n)
  (let ((v (make-vector (* 8 n))))
    (if (zero? n)
        0
        ((lambda ()
           (begin (leak (- n 1)) n))))))
(define (f n) (leak n))`,
		},
		{
			Name:        "contracted-loop",
			Description: "examples/contracted-loop.scm: loop-invariant contract — naive monitor chains pending checks, spaceff joins them",
			Source: `
(define/contract (loop n) (-> number? number?)
  (if (zero? n)
      0
      (loop (- n 1))))
(define (f n) (loop n))`,
		},
		{
			Name:        "contracted-leak",
			Description: "examples/contracted-leak.scm: per-iteration contract identity defeats the join — both monitors chain",
			Source: `
(define (loop n)
  (if (zero? n)
      0
      ((mon (-> number? number?)
            (lambda (m) (loop m)))
       (- n 1))))
(define (f n) (loop n))`,
		},
		{
			Name:        "evlis-leak",
			Quadratic:   true,
			Description: "examples/evlis-leak.scm: a pending continuation parks a dead vector across recursion",
			Source: `
(define (leak n)
  (define (rest)
    (begin (leak (- n 1))
           (lambda () n)))
  (let ((v (make-vector (* 8 n))))
    (if (zero? n)
        0
        ((rest)))))
(define (f n) (leak n))`,
		},
	}
}
