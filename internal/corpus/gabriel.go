package corpus

// Gabriel-style benchmarks: the program shapes the classic Lisp/Scheme
// performance suites (and Figure 2's Twobit measurements) are built from.

func init() {
	programs = append(programs,
		Program{
			Name:        "deriv",
			Description: "symbolic differentiation over s-expressions (Gabriel's deriv)",
			Answer:      "(+ (+ (* x (+ x x)) (* x x)) (+ x x) 1 0)",
			Source: `
(define (deriv-sum es)
  (if (null? es) '() (cons (deriv (car es)) (deriv-sum (cdr es)))))
(define (deriv e)
  (cond ((symbol? e) (if (eqv? e 'x) 1 0))
        ((number? e) 0)
        ((eqv? (car e) '+) (cons '+ (deriv-sum (cdr e))))
        ((eqv? (car e) '*)
         (list '+
               (list '* (cadr e) (deriv (caddr e)))
               (list '* (caddr e) (deriv (cadr e)))))
        (else (error "unknown"))))
(define (simplify e)
  (cond ((not (pair? e)) e)
        ((eqv? (car e) '*)
         (let ((a (simplify (cadr e))) (b (simplify (caddr e))))
           (cond ((eqv? a 0) 0)
                 ((eqv? b 0) 0)
                 ((eqv? a 1) b)
                 ((eqv? b 1) a)
                 (else (list '* a b)))))
        (else (cons (car e) (simplify-all (cdr e))))))
(define (simplify-all es)
  (if (null? es) '() (cons (simplify (car es)) (simplify-all (cdr es)))))
;; d/dx of x^3 + x^2 + x + 1, written with explicit products.
(simplify (deriv '(+ (* x (* x x)) (* x x) x 1)))`,
		},
		Program{
			Name:        "div-iter",
			Description: "Gabriel's div benchmark, iterative version",
			Answer:      "200",
			Source: `
(define (create-n n)
  (do ((n n (- n 1)) (a '() (cons '() a)))
      ((= n 0) a)))
(define (iterative-div2 l)
  (do ((l l (cddr l)) (a '() (cons (car l) a)))
      ((null? l) a)))
(length (iterative-div2 (create-n 400)))`,
		},
		Program{
			Name:        "div-rec",
			Description: "Gabriel's div benchmark, recursive version",
			Answer:      "200",
			Source: `
(define (create-n n)
  (if (zero? n) '() (cons '() (create-n (- n 1)))))
(define (recursive-div2 l)
  (if (null? l) '() (cons (car l) (recursive-div2 (cddr l)))))
(length (recursive-div2 (create-n 400)))`,
		},
		Program{
			Name:        "graph-reach",
			Description: "depth-first reachability over an adjacency list with an explicit worklist",
			Answer:      "(a b d f c)",
			Source: `
(define graph
  '((a b c) (b d) (c d) (d f) (e c) (f)))
(define (neighbors v)
  (let ((entry (assv v graph)))
    (if entry (cdr entry) '())))
(define (visit worklist seen)
  (cond ((null? worklist) (reverse seen))
        ((memv (car worklist) seen) (visit (cdr worklist) seen))
        (else
         (visit (append (neighbors (car worklist)) (cdr worklist))
                (cons (car worklist) seen)))))
(visit '(a) '())`,
		},
		Program{
			Name:        "destruct",
			Description: "destructive list surgery with set-car!/set-cdr!",
			Answer:      "(1 99 3)",
			Source: `
(define l (list 1 2 3))
(begin
  (set-car! (cdr l) 99)
  (set-cdr! (cdr l) (cddr l))
  l)`,
		},
	)
}
