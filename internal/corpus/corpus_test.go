package corpus

import (
	"testing"

	"tailspace/internal/analysis"
	"tailspace/internal/core"
)

func TestAllProgramsHaveExpectedAnswersUnderTail(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := core.RunProgram(p.Source, core.Options{Variant: core.Tail, MaxSteps: 3_000_000})
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if res.Err != nil {
				t.Fatalf("run: %v", res.Err)
			}
			if res.Answer != p.Answer {
				t.Fatalf("answer = %q, want %q", res.Answer, p.Answer)
			}
		})
	}
}

// TestCorollary20AllVariantsAgree is the differential suite: all of the
// reference implementations compute the same answers on the whole corpus.
func TestCorollary20AllVariantsAgree(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for _, v := range core.Variants {
				res, err := core.RunProgram(p.Source, core.Options{Variant: v, MaxSteps: 3_000_000})
				if err != nil {
					t.Fatalf("[%s] parse: %v", v, err)
				}
				if res.Err != nil {
					t.Fatalf("[%s] run: %v", v, res.Err)
				}
				if res.Answer != p.Answer {
					t.Fatalf("[%s] answer = %q, want %q", v, res.Answer, p.Answer)
				}
			}
		})
	}
}

func TestCorpusIsAnalyzable(t *testing.T) {
	var total analysis.CallStats
	for _, p := range All() {
		s, err := analysis.AnalyzeSource(p.Name, p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if s.Calls == 0 {
			t.Fatalf("%s: no call sites found", p.Name)
		}
		total.Add(s)
	}
	// The paper's Figure 2 point: tail calls far outnumber self-tail calls,
	// and a sizeable fraction of calls are tail calls.
	if total.Tail() <= total.SelfTail {
		t.Fatalf("tail (%d) must exceed self-tail (%d)", total.Tail(), total.SelfTail)
	}
	if total.Tail() == 0 || total.NonTail == 0 {
		t.Fatalf("degenerate corpus: %+v", total)
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("tak")
	if !ok || p.Name != "tak" {
		t.Fatal("tak missing")
	}
	if _, ok := ByName("no-such"); ok {
		t.Fatal("unknown program must not resolve")
	}
}

func TestNamesUniqueAndDescribed(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name] {
			t.Fatalf("duplicate program name %s", p.Name)
		}
		seen[p.Name] = true
		if p.Description == "" || p.Answer == "" {
			t.Fatalf("%s: missing metadata", p.Name)
		}
	}
	if len(seen) < 20 {
		t.Fatalf("corpus too small: %d programs", len(seen))
	}
}
