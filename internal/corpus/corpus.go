// Package corpus bundles the Scheme benchmark programs used by the Figure 2
// static scan, the Corollary 20 differential suite, and the Theorem 24
// hierarchy sweep. Each program is self-contained and carries its expected
// answer so the suite doubles as an end-to-end correctness oracle. The
// programs mirror the styles the paper discusses: iterative loops,
// syntactically recursive iterations, deep recursion, continuation-passing
// style, higher-order list processing, and explicit failure continuations.
package corpus

// Program is one benchmark: source text and its expected observable answer
// (Definition 11 rendering).
type Program struct {
	Name   string
	Source string
	Answer string
	// Description says what style of code the program exercises.
	Description string
}

// All returns every corpus program.
func All() []Program { return programs }

// ByName returns the named program.
func ByName(name string) (Program, bool) {
	for _, p := range programs {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

var programs = []Program{
	{
		Name:        "countdown",
		Description: "the paper's iterative computation described by a syntactically recursive procedure",
		Answer:      "0",
		Source: `
(define (f n) (if (zero? n) 0 (f (- n 1))))
(f 100)`,
	},
	{
		Name:        "sum-iter",
		Description: "accumulator-style tail-recursive summation",
		Answer:      "5050",
		Source: `
(define (sum n acc) (if (zero? n) acc (sum (- n 1) (+ acc n))))
(sum 100 0)`,
	},
	{
		Name:        "sum-rec",
		Description: "non-tail recursive summation (builds control stack)",
		Answer:      "5050",
		Source: `
(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1)))))
(sum 100)`,
	},
	{
		Name:        "fact",
		Description: "non-tail factorial with unlimited-precision results",
		Answer:      "2432902008176640000",
		Source: `
(define (fact n) (if (zero? n) 1 (* n (fact (- n 1)))))
(fact 20)`,
	},
	{
		Name:        "fib",
		Description: "doubly recursive Fibonacci",
		Answer:      "610",
		Source: `
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 15)`,
	},
	{
		Name:        "tak",
		Description: "Takeuchi function: heavy non-tail call traffic",
		Answer:      "5",
		Source: `
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(tak 12 8 4)`,
	},
	{
		Name:        "ackermann",
		Description: "deeply recursive Ackermann function",
		Answer:      "15",
		Source: `
(define (ack m n)
  (cond ((zero? m) (+ n 1))
        ((zero? n) (ack (- m 1) 1))
        (else (ack (- m 1) (ack m (- n 1))))))
(ack 2 6)`,
	},
	{
		Name:        "even-odd",
		Description: "mutual tail recursion",
		Answer:      "#t",
		Source: `
(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
(even2? 500)`,
	},
	{
		Name:        "cps-factorial",
		Description: "pure continuation-passing style: every call is a tail call",
		Answer:      "3628800",
		Source: `
(define (fact-k n k)
  (if (zero? n)
      (k 1)
      (fact-k (- n 1) (lambda (r) (k (* n r))))))
(fact-k 10 (lambda (x) x))`,
	},
	{
		Name:        "cps-fib",
		Description: "CPS Fibonacci: continuations as explicit closures",
		Answer:      "55",
		Source: `
(define (fib-k n k)
  (if (< n 2)
      (k n)
      (fib-k (- n 1)
             (lambda (a)
               (fib-k (- n 2)
                      (lambda (b) (k (+ a b))))))))
(fib-k 10 (lambda (x) x))`,
	},
	{
		Name:        "find-leftmost",
		Description: "the Section 4 example: explicit failure continuations over a binary tree",
		Answer:      "12",
		Source: `
(define (leaf? t) (number? t))
(define (left-child t) (car t))
(define (right-child t) (cdr t))
(define (find-leftmost predicate? tree fail)
  (if (leaf? tree)
      (if (predicate? tree)
          tree
          (fail))
      (let ((continuation
             (lambda ()
               (find-leftmost predicate?
                              (right-child tree)
                              fail))))
        (find-leftmost predicate? (left-child tree) continuation))))
(define (node l r) (cons l r))
(find-leftmost (lambda (x) (> x 10))
               (node (node 1 (node 2 3)) (node (node 4 12) 9))
               (lambda () 'not-found))`,
	},
	{
		Name:        "list-library",
		Description: "higher-order list processing: map, filter, fold",
		Answer:      "(220 . 20)",
		Source: `
(define (map1 f l)
  (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))
(define (filter1 p l)
  (cond ((null? l) '())
        ((p (car l)) (cons (car l) (filter1 p (cdr l))))
        (else (filter1 p (cdr l)))))
(define (foldl f acc l)
  (if (null? l) acc (foldl f (f acc (car l)) (cdr l))))
(define (iota n)
  (let loop ((i n) (acc '()))
    (if (zero? i) acc (loop (- i 1) (cons i acc)))))
(define nums (iota 20))
(cons (foldl + 0 (map1 (lambda (x) (* 2 x)) (filter1 even? nums)))
      (length nums))`,
	},
	{
		Name:        "sieve",
		Description: "sieve of Eratosthenes over lists",
		Answer:      "(2 3 5 7 11 13 17 19 23 29)",
		Source: `
(define (iota-from a n)
  (if (zero? n) '() (cons a (iota-from (+ a 1) (- n 1)))))
(define (remove-multiples p l)
  (cond ((null? l) '())
        ((zero? (remainder (car l) p)) (remove-multiples p (cdr l)))
        (else (cons (car l) (remove-multiples p (cdr l))))))
(define (sieve l)
  (if (null? l)
      '()
      (cons (car l) (sieve (remove-multiples (car l) (cdr l))))))
(sieve (iota-from 2 29))`,
	},
	{
		Name:        "mergesort",
		Description: "top-down merge sort over lists",
		Answer:      "(1 2 3 4 5 6 7 8 9)",
		Source: `
(define (take l n) (if (zero? n) '() (cons (car l) (take (cdr l) (- n 1)))))
(define (drop l n) (if (zero? n) l (drop (cdr l) (- n 1))))
(define (merge a b)
  (cond ((null? a) b)
        ((null? b) a)
        ((< (car a) (car b)) (cons (car a) (merge (cdr a) b)))
        (else (cons (car b) (merge a (cdr b))))))
(define (msort l)
  (let ((n (length l)))
    (if (< n 2)
        l
        (merge (msort (take l (quotient n 2)))
               (msort (drop l (quotient n 2)))))))
(msort '(5 3 8 1 9 2 7 4 6))`,
	},
	{
		Name:        "quicksort",
		Description: "quicksort with accumulator-passing partition",
		Answer:      "(1 1 2 3 4 5 5 6 9)",
		Source: `
(define (append2 a b)
  (if (null? a) b (cons (car a) (append2 (cdr a) b))))
(define (qsort l)
  (if (null? l)
      '()
      (let ((pivot (car l)) (rest (cdr l)))
        (define (part l less more)
          (cond ((null? l)
                 (append2 (qsort less) (cons pivot (qsort more))))
                ((< (car l) pivot)
                 (part (cdr l) (cons (car l) less) more))
                (else
                 (part (cdr l) less (cons (car l) more)))))
        (part rest '() '()))))
(qsort '(3 1 4 1 5 9 2 6 5))`,
	},
	{
		Name:        "vector-sum",
		Description: "imperative vector loop with do",
		Answer:      "285",
		Source: `
(define (square-fill! v n)
  (do ((i 0 (+ i 1)))
      ((= i n) v)
    (vector-set! v i (* i i))))
(define (vector-sum v n)
  (let loop ((i 0) (acc 0))
    (if (= i n) acc (loop (+ i 1) (+ acc (vector-ref v i))))))
(vector-sum (square-fill! (make-vector 10) 10) 10)`,
	},
	{
		Name:        "state-machine",
		Description: "dispatch table of mutually tail-calling states",
		Answer:      "(accept 3)",
		Source: `
(define (run input)
  (define (state-a l count)
    (cond ((null? l) (list 'accept count))
          ((eqv? (car l) 0) (state-a (cdr l) count))
          (else (state-b (cdr l) (+ count 1)))))
  (define (state-b l count)
    (cond ((null? l) (list 'reject count))
          ((eqv? (car l) 1) (state-b (cdr l) count))
          (else (state-a (cdr l) count))))
  (state-a input 0))
(run '(0 1 2 0 1 2 0 1 2 0))`,
	},
	{
		Name:        "church",
		Description: "Church numerals: arithmetic with closures only",
		Answer:      "12",
		Source: `
(define zero (lambda (f) (lambda (x) x)))
(define (succ n) (lambda (f) (lambda (x) (f ((n f) x)))))
(define (plus a b) (lambda (f) (lambda (x) ((a f) ((b f) x)))))
(define (times a b) (lambda (f) (a (b f))))
(define (church->int n) ((n (lambda (k) (+ k 1))) 0))
(define three (succ (succ (succ zero))))
(define four (succ three))
(church->int (times three four))`,
	},
	{
		Name:        "assoc-env",
		Description: "interpreter-style association-list environment",
		Answer:      "42",
		Source: `
(define (lookup k env)
  (cond ((null? env) 'unbound)
        ((eqv? (caar env) k) (cdar env))
        (else (lookup k (cdr env)))))
(define (extend k v env) (cons (cons k v) env))
(define e0 (extend 'x 10 (extend 'y 30 '())))
(define e1 (extend 'x 12 e0))
(+ (lookup 'x e1) (lookup 'y e1))`,
	},
	{
		Name:        "callcc-product",
		Description: "call/cc early exit from a list product",
		Answer:      "0",
		Source: `
(define (product l)
  (call/cc
   (lambda (return)
     (let loop ((l l) (acc 1))
       (cond ((null? l) acc)
             ((zero? (car l)) (return 0))
             (else (loop (cdr l) (* acc (car l)))))))))
(product '(1 2 3 0 4 5))`,
	},
	{
		Name:        "generator",
		Description: "call/cc coroutine-style generator",
		Answer:      "(1 2 3)",
		Source: `
(define (make-three)
  (let ((resume #f) (produced '()))
    (define (emit x)
      (set! produced (cons x produced)))
    (begin (emit 1) (emit 2) (emit 3) (reverse produced))))
(make-three)`,
	},
	{
		Name:        "deep-list",
		Description: "build and fold a long list (allocation pressure)",
		Answer:      "500500",
		Source: `
(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
(define (sum l acc) (if (null? l) acc (sum (cdr l) (+ acc (car l)))))
(sum (build 1000) 0)`,
	},
	{
		Name:        "tree-fold",
		Description: "fold over a balanced binary tree of pairs",
		Answer:      "36",
		Source: `
(define (tree-sum t)
  (if (pair? t)
      (+ (tree-sum (car t)) (tree-sum (cdr t)))
      t))
(tree-sum (cons (cons (cons 1 2) (cons 3 4))
                (cons (cons 5 6) (cons 7 8))))`,
	},
	{
		Name:        "string-symbols",
		Description: "symbol and equality driven dispatch",
		Answer:      "(yes no yes)",
		Source: `
(define (classify x)
  (case x
    ((a e i o u) 'yes)
    (else 'no)))
(list (classify 'a) (classify 'b) (classify 'u))`,
	},
	{
		Name:        "contracted-loop",
		Description: "the countdown loop under a loop-invariant arrow contract (erased on non-monitor machines)",
		Answer:      "0",
		Source: `
(define/contract (f n) (-> number? number?)
  (if (zero? n)
      0
      (f (- n 1))))
(f 100)`,
	},
	{
		Name:        "contracted-leak",
		Description: "a per-iteration arrow contract whose fresh identity defeats the duplicate-dropping join",
		Answer:      "0",
		Source: `
(define (f n)
  (if (zero? n)
      0
      ((mon (-> number? number?)
            (lambda (m) (f m)))
       (- n 1))))
(f 100)`,
	},
}
