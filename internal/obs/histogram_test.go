package obs

import (
	"math"
	"testing"
)

// TestHistogramLayoutIsPinned pins the bucket layout byte-for-byte. The
// bounds are an observability contract: Prometheus scrapes, stored CI
// artifacts, and dashboards all assume they never move, so any change here
// must be deliberate and versioned.
func TestHistogramLayoutIsPinned(t *testing.T) {
	const want = "le=" +
		"1,2,4,8,16,32,64,128,256,512," +
		"1024,2048,4096,8192,16384,32768,65536,131072,262144,524288," +
		"1048576,2097152,4194304,8388608,16777216,33554432,67108864,134217728,268435456,536870912," +
		"1073741824,2147483648,4294967296,8589934592,17179869184,34359738368,68719476736,137438953472,274877906944,549755813888" +
		",+Inf"
	if got := HistogramLayout(); got != want {
		t.Fatalf("bucket layout changed:\n got %s\nwant %s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the boundary rule: bucket i holds
// (2^(i-1), 2^i], bucket 0 holds everything at or below 1, and values past
// the last finite bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{1024, 10}, {1025, 11},
		{HistogramBound(NumHistogramBuckets - 1), NumHistogramBuckets - 1},
		{HistogramBound(NumHistogramBuckets-1) + 1, NumHistogramBuckets},
		{math.MaxInt64, NumHistogramBuckets},
	}
	for _, tc := range cases {
		v := tc.v
		if v < 0 {
			v = 0 // Observe clamps; the bucket function sees the clamp
		}
		if got := histogramBucket(v); got != tc.want {
			t.Errorf("histogramBucket(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zero quantiles")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Sum() != 500500 || h.Max() != 1000 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	// The 500th observation is 500, which lands in bucket (256, 512].
	if got := h.Quantile(0.5); got != 512 {
		t.Errorf("p50 = %d, want bucket bound 512", got)
	}
	// p99 and p100 land in the last occupied bucket (512, 1024], whose
	// bound exceeds the true max — the exact max is reported instead.
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want exact max 1000", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
}

func TestHistogramNegativeObservationsCountAsZero(t *testing.T) {
	var h Histogram
	h.Observe(-17)
	if h.Count() != 1 || h.Sum() != 0 || h.BucketCount(0) != 1 {
		t.Fatalf("count=%d sum=%d bucket0=%d", h.Count(), h.Sum(), h.BucketCount(0))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(100)
	b.Observe(1000)
	a.Merge(&b)
	a.Merge(nil)
	if a.Count() != 3 || a.Sum() != 1101 || a.Max() != 1000 {
		t.Fatalf("merged count=%d sum=%d max=%d", a.Count(), a.Sum(), a.Max())
	}
}

// TestMetricsHistogramSnapshot checks the flat-snapshot projection: five
// derived entries per histogram, usable by the JSON /metrics rendering and
// spacectl top without a schema change.
func TestMetricsHistogramSnapshot(t *testing.T) {
	m := NewMetrics()
	for i := int64(1); i <= 100; i++ {
		m.Observe("req.us", i*10)
	}
	snap := m.Snapshot()
	if snap["req.us.count"] != 100 || snap["req.us.sum"] != 50500 {
		t.Fatalf("snapshot %v", snap)
	}
	for _, q := range []string{"req.us.p50", "req.us.p90", "req.us.p99"} {
		if snap[q] < 1 {
			t.Errorf("snapshot[%s] = %d, want > 0", q, snap[q])
		}
	}
	if snap["req.us.p50"] > snap["req.us.p99"] {
		t.Errorf("p50 %d > p99 %d", snap["req.us.p50"], snap["req.us.p99"])
	}
}

// TestMetricsMergeHistograms checks the grid aggregation rule extends to
// distributions: bucket counts add.
func TestMetricsMergeHistograms(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Observe("steps", 10)
	b.Observe("steps", 20)
	b.Observe("other", 5)
	a.Merge(b)
	if got := a.Histogram("steps").Count(); got != 2 {
		t.Errorf("merged steps count = %d, want 2", got)
	}
	if got := a.Histogram("other").Count(); got != 1 {
		t.Errorf("merged new histogram count = %d, want 1", got)
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("req.us"); got != "req.us" {
		t.Errorf("no labels: %q", got)
	}
	got := Labeled("req.us", "endpoint", "/v1/measure", "machine", "tail")
	if got != `req.us{endpoint="/v1/measure",machine="tail"}` {
		t.Errorf("Labeled = %q", got)
	}
	if got := Labeled("m", "k", `a"b\c`); got != `m{k="a\"b\\c"}` {
		t.Errorf("escaped = %q", got)
	}
}
