package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition, hand-rolled (format version 0.0.4; no
// client-library dependency). Registry names map onto Prometheus names by
// sanitization — every character outside [a-zA-Z0-9_] becomes '_', so
// "machine.rule.apply-tail" exposes as machine_rule_apply_tail — and a
// {k="v"} suffix built with Labeled passes through as a label set.
// Counters expose as counters, gauges as gauges, and histograms as
// classic cumulative-bucket histograms (name_bucket{le="..."}, name_sum,
// name_count) over the fixed layout in HistogramLayout. Output is
// deterministic: families and series are written in sorted registry-name
// order.

// PromContentType is the Content-Type of the text exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	ew := &errWriter{w: w}
	writePromSection(ew, m.counters, "counter")
	writePromSection(ew, m.gauges, "gauge")

	names := m.HistogramNames()
	lastFamily := ""
	for _, name := range names {
		base, labels := splitPromName(name)
		family := promName(base)
		if family != lastFamily {
			ew.printf("# TYPE %s histogram\n", family)
			lastFamily = family
		}
		h := m.histograms[name]
		var cum int64
		for i := 0; i < NumHistogramBuckets; i++ {
			cum += h.BucketCount(i)
			ew.printf("%s_bucket%s %d\n", family, promLabels(labels, fmt.Sprintf("%d", HistogramBound(i))), cum)
		}
		cum += h.BucketCount(NumHistogramBuckets)
		ew.printf("%s_bucket%s %d\n", family, promLabels(labels, "+Inf"), cum)
		ew.printf("%s_sum%s %d\n", family, labels, h.Sum())
		ew.printf("%s_count%s %d\n", family, labels, h.Count())
	}
	return ew.err
}

// writePromSection renders one kind of scalar metric, sorted, with a TYPE
// line per family (label variants of one base share a family).
func writePromSection(ew *errWriter, series map[string]int64, kind string) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	lastFamily := ""
	for _, name := range names {
		base, labels := splitPromName(name)
		family := promName(base)
		if family != lastFamily {
			ew.printf("# TYPE %s %s\n", family, kind)
			lastFamily = family
		}
		ew.printf("%s%s %d\n", family, labels, series[name])
	}
}

// splitPromName separates a registry name from its Labeled suffix.
func splitPromName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// promLabels merges an existing label suffix with the le bucket label.
func promLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// promName sanitizes a registry name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
