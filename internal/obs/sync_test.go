package obs

import (
	"sync"
	"testing"
)

// TestSyncMetricsConcurrentWriters hammers one registry from many
// goroutines — counters, level gauges, max gauges, histograms, merges, and
// snapshots together. The race detector checks the locking; the totals
// check that no increment was lost.
func TestSyncMetricsConcurrentWriters(t *testing.T) {
	m := NewSyncMetrics()
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m.Inc("c", 1)
				m.Add("level", 1)
				m.Add("level", -1)
				m.SetMax("peak", int64(w*perWriter+i))
				m.Observe("h", int64(i+1))
				if i%100 == 0 {
					per := NewMetrics()
					per.Inc("merged", 1)
					m.Merge(per)
					m.Snapshot()
					m.Histogram("h")
				}
			}
		}(w)
	}
	wg.Wait()

	if got := m.Counter("c"); got != writers*perWriter {
		t.Errorf("counter c = %d, want %d", got, writers*perWriter)
	}
	if got := m.Gauge("level"); got != 0 {
		t.Errorf("level gauge = %d, want 0 after balanced add/sub", got)
	}
	if got := m.Gauge("peak"); got != writers*perWriter-1 {
		t.Errorf("peak gauge = %d, want %d", got, writers*perWriter-1)
	}
	if got := m.Counter("merged"); got != writers*(perWriter/100) {
		t.Errorf("merged = %d, want %d", got, writers*(perWriter/100))
	}
	h := m.Histogram("h")
	if h == nil || h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %v, want %d", h, writers*perWriter)
	}
	// The returned histogram is a copy: mutating it must not touch the
	// registry.
	h.Observe(1)
	if got := m.Histogram("h").Count(); got != writers*perWriter {
		t.Errorf("registry histogram mutated through the copy: count = %d", got)
	}
}

// TestSyncMetricsWritePrometheusUnderLoad scrapes while writers run; the
// race detector is the assertion.
func TestSyncMetricsWritePrometheusUnderLoad(t *testing.T) {
	m := NewSyncMetrics()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				m.Inc("c", 1)
				m.Observe("h", 7)
			}
		}
	}()
	for i := 0; i < 20; i++ {
		if err := m.WritePrometheus(discard{}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
