package obs

// DefaultRingCapacity is the ring size used when a caller passes a
// non-positive capacity: large enough to hold an entire medium run, small
// enough that a 5M-step trace stays bounded.
const DefaultRingCapacity = 1 << 16

// Ring is a bounded in-memory event buffer implementing Sink: it retains
// the most recent events and overwrites the oldest once full, so attaching
// it to a multi-million-step run costs O(capacity) memory, not O(steps).
// Exporters drain the retained tail after the run finishes.
type Ring struct {
	buf   []Event
	next  int // index the next event lands in
	total int // events ever emitted
}

// NewRing returns a ring retaining the last capacity events
// (DefaultRingCapacity when capacity < 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Capacity is the maximum number of events retained.
func (r *Ring) Capacity() int { return cap(r.buf) }

// Len is the number of events currently retained.
func (r *Ring) Len() int { return len(r.buf) }

// Total is the number of events ever emitted.
func (r *Ring) Total() int { return r.total }

// Dropped is the number of emitted events the ring has overwritten.
func (r *Ring) Dropped() int { return r.total - len(r.buf) }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.total > len(r.buf) {
		// Full: oldest entry is at next.
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// Drain emits the retained events, oldest first, into another sink.
func (r *Ring) Drain(s Sink) {
	for _, e := range r.Events() {
		s.Emit(e)
	}
}
