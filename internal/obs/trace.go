package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Request tracing. A TraceContext identifies one request of a long-lived
// process (the spaced daemon): a process-unique trace ID plus a span
// sequence. The HTTP middleware mints one per request; every span the
// request produces — queue-wait, cache-lookup, expand, run, measure — and
// every engine event of a run it started carries the trace ID, so a single
// POST /v1/measure can be followed from the access log through the worker
// pool into the machine's own transition stream.

// TraceContext is one request's tracing identity. Create with
// NewTraceContext; the zero value is unusable (empty trace ID).
type TraceContext struct {
	// ID is the trace (request) identifier, propagated into spans, engine
	// events, and access-log entries.
	ID string
	// seq numbers the spans of this trace; NextSpanID is safe for
	// concurrent use (grid cells of one request fan out).
	seq atomic.Int64
}

// NewTraceContext builds a trace context around id (minting a fresh ID
// when id is empty).
func NewTraceContext(id string) *TraceContext {
	if id == "" {
		id = NewTraceID()
	}
	return &TraceContext{ID: id}
}

// NextSpanID returns the next span sequence number of this trace (1, 2, …).
func (t *TraceContext) NextSpanID() int {
	return int(t.seq.Add(1))
}

// Span builds a finished-span event: name over [start, start+dur], stamped
// with this trace's ID and the next span sequence number.
func (t *TraceContext) Span(name string, start time.Time, dur time.Duration) Event {
	us := dur.Microseconds()
	if us < 1 {
		us = 1 // a span that measured under the clock resolution still ran
	}
	return Event{
		Type:    EventSpan,
		Trace:   t.ID,
		Span:    name,
		SpanID:  t.NextSpanID(),
		StartUS: start.UnixMicro(),
		DurUS:   us,
	}
}

// traceFallback numbers trace IDs when the system's randomness source
// fails; the IDs stay process-unique, just not globally random.
var traceFallback atomic.Int64

// NewTraceID mints a 16-hex-digit random trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", traceFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// stampSink decorates a Sink with a trace ID: every event passing through
// gains the ID unless it already carries one.
type stampSink struct {
	sink  Sink
	trace string
}

// StampTrace wraps sink so every emitted event carries trace. A nil sink
// or empty trace returns sink unchanged, so the caller's nil-sink fast
// path (and its zero allocation cost) is preserved.
func StampTrace(sink Sink, trace string) Sink {
	if sink == nil || trace == "" {
		return sink
	}
	return &stampSink{sink: sink, trace: trace}
}

// Emit implements Sink.
func (s *stampSink) Emit(e Event) {
	if e.Trace == "" {
		e.Trace = s.trace
	}
	s.sink.Emit(e)
}
