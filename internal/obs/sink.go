package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONLSink streams events to a writer as one JSON object per line — the
// interchange format for ad-hoc tooling (jq, pandas). It buffers nothing, so
// it is bounded-memory on its own; put a Ring in front when only the tail of
// a long run is wanted.
type JSONLSink struct {
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink. The first write error is retained and later emits
// become no-ops; check Err after the run.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// WriteJSONL writes events as JSON lines.
func WriteJSONL(w io.Writer, events []Event) error {
	s := NewJSONLSink(w)
	for _, e := range events {
		s.Emit(e)
	}
	return s.Err()
}

// WriteChromeTrace renders events in the Chrome trace_event JSON format, so
// a run's space profile loads directly in chrome://tracing or Perfetto. The
// mapping, with one microsecond of trace time per machine step:
//
//   - each transition becomes a 1µs complete event ("ph":"X") named after
//     its rule, on the "machine" thread, plus counter events ("ph":"C")
//     for the space series (flat/linked) and the live series (heap/depth);
//   - each garbage collection becomes an instant event ("ph":"i") named
//     "gc" carrying the reclaimed cell count;
//   - each allocation becomes an instant event named "alloc" carrying the
//     location and the allocating expression;
//   - each peak update becomes an instant event "peak <kind>" with the new
//     value.
//
// Span events (EventSpan) from a traced service request render as
// complete events on a separate "service" thread, with the trace ID and
// span sequence in args and real wall-clock microseconds as ts — so a
// request's queue-wait/run/measure spans load in the same viewers.
//
// label names the process (conventionally "tailspace (<machine>)"). The
// output is deterministic: events are written in stream order with stable
// field ordering.
func WriteChromeTrace(w io.Writer, label string, events []Event) error {
	bw := &errWriter{w: w}
	bw.printf(`{"traceEvents":[`)
	bw.printf("\n"+` {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":%s}}`, jstr(label))
	bw.printf(",\n" + ` {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"machine"}}`)
	// The service thread's metadata appears only in traces that carry
	// spans, so machine-only exports stay byte-identical to before spans
	// existed.
	for _, e := range events {
		if e.Type == EventSpan {
			bw.printf(",\n" + ` {"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"service"}}`)
			break
		}
	}
	for _, e := range events {
		switch e.Type {
		case EventTransition:
			bw.printf(",\n"+` {"name":%s,"cat":"rule","ph":"X","ts":%d,"dur":1,"pid":1,"tid":1}`,
				jstr(e.Rule), e.Step)
			if e.Measured {
				bw.printf(",\n"+` {"name":"space","ph":"C","ts":%d,"pid":1,"args":{"flat":%d,"linked":%d}}`,
					e.Step, e.Flat, e.Linked)
			}
			bw.printf(",\n"+` {"name":"live","ph":"C","ts":%d,"pid":1,"args":{"heap":%d,"depth":%d}}`,
				e.Step, e.Heap, e.Depth)
		case EventGC:
			bw.printf(",\n"+` {"name":"gc","cat":"gc","ph":"i","ts":%d,"pid":1,"tid":1,"s":"t","args":{"reclaimed":%d,"heap":%d}}`,
				e.Step, e.Reclaimed, e.Heap)
		case EventAlloc:
			bw.printf(",\n"+` {"name":"alloc","cat":"alloc","ph":"i","ts":%d,"pid":1,"tid":1,"s":"t","args":{"loc":%d,"node":%d,"expr":%s}}`,
				e.Step, e.Loc, e.NodeID, jstr(e.Expr))
		case EventPeak:
			bw.printf(",\n"+` {"name":%s,"cat":"peak","ph":"i","ts":%d,"pid":1,"tid":1,"s":"t","args":{"value":%d}}`,
				jstr("peak "+e.Peak), e.Step, e.Value)
		case EventSpan:
			bw.printf(",\n"+` {"name":%s,"cat":"span","ph":"X","ts":%d,"dur":%d,"pid":1,"tid":2,"args":{"trace":%s,"spanId":%d}}`,
				jstr(e.Span), e.StartUS, e.DurUS, jstr(e.Trace), e.SpanID)
		}
	}
	bw.printf("\n]}\n")
	return bw.err
}

// jstr renders a string as a JSON literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `"?"`
	}
	return string(b)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
