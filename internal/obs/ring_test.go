package obs

import "testing"

func TestRingBelowCapacityRetainsEverything(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Type: EventTransition, Step: i})
	}
	if r.Len() != 5 || r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d total=%d dropped=%d, want 5/5/0", r.Len(), r.Total(), r.Dropped())
	}
	for i, e := range r.Events() {
		if e.Step != i {
			t.Fatalf("event %d has step %d", i, e.Step)
		}
	}
}

func TestRingOverflowDropsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Emit(Event{Type: EventTransition, Step: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", r.Len())
	}
	if r.Total() != 11 || r.Dropped() != 7 {
		t.Fatalf("total=%d dropped=%d, want 11/7", r.Total(), r.Dropped())
	}
	got := r.Events()
	// The retained tail is the newest four events, oldest first, even though
	// the write cursor is mid-buffer.
	want := []int{7, 8, 9, 10}
	for i, e := range got {
		if e.Step != want[i] {
			t.Fatalf("Events()[%d].Step = %d, want %d (got %v)", i, e.Step, want[i], steps(got))
		}
	}
}

// TestRingOverflowManyWraps wraps the buffer many times over and at exact
// capacity multiples, where the write cursor sits at index 0 — the
// boundary case for the oldest-first reconstruction in Events.
func TestRingOverflowManyWraps(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 400; i++ {
		r.Emit(Event{Step: i})
	}
	// 400 = 100 full wraps: cursor back at 0, oldest retained is 396.
	if r.Total() != 400 || r.Dropped() != 396 || r.Len() != 4 {
		t.Fatalf("total=%d dropped=%d len=%d", r.Total(), r.Dropped(), r.Len())
	}
	got := steps(r.Events())
	for i, want := range []int{396, 397, 398, 399} {
		if got[i] != want {
			t.Fatalf("Events() = %v, want [396 397 398 399]", got)
		}
	}
	r.Emit(Event{Step: 400})
	got = steps(r.Events())
	for i, want := range []int{397, 398, 399, 400} {
		if got[i] != want {
			t.Fatalf("after one more emit: %v, want [397 398 399 400]", got)
		}
	}
}

func TestRingCapacityOne(t *testing.T) {
	r := NewRing(1)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Step: i})
	}
	got := steps(r.Events())
	if len(got) != 1 || got[0] != 2 || r.Dropped() != 2 {
		t.Fatalf("capacity-1 ring: events=%v dropped=%d", got, r.Dropped())
	}
}

func TestRingDrainPreservesOrder(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 7; i++ {
		r.Emit(Event{Step: i})
	}
	var dst Ring
	dst.buf = make([]Event, 0, 16)
	r.Drain(&dst)
	got := steps(dst.Events())
	if len(got) != 3 || got[0] != 4 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("drained steps %v, want [4 5 6]", got)
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	if c := NewRing(0).Capacity(); c != DefaultRingCapacity {
		t.Fatalf("NewRing(0).Capacity() = %d, want %d", c, DefaultRingCapacity)
	}
	if c := NewRing(-3).Capacity(); c != DefaultRingCapacity {
		t.Fatalf("NewRing(-3).Capacity() = %d, want %d", c, DefaultRingCapacity)
	}
}

func steps(events []Event) []int {
	out := make([]int, len(events))
	for i, e := range events {
		out[i] = e.Step
	}
	return out
}
