package obs

import (
	"sync"
	"testing"
)

func TestFanoutDeliversToSubscribers(t *testing.T) {
	f := NewFanout(8)
	sub := f.Subscribe(16)
	for i := 0; i < 5; i++ {
		f.Emit(Event{Step: i})
	}
	f.Close()
	var got []int
	for e := range sub.Events() {
		got = append(got, e.Step)
	}
	if len(got) != 5 {
		t.Fatalf("received %v, want 5 events", got)
	}
	for i, step := range got {
		if step != i {
			t.Fatalf("event %d has step %d", i, step)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", sub.Dropped())
	}
}

// TestFanoutLateSubscriberGetsRingReplay: a subscriber attaching after
// events were emitted — even after Close — receives the retained tail.
func TestFanoutLateSubscriberGetsRingReplay(t *testing.T) {
	f := NewFanout(4)
	for i := 0; i < 10; i++ {
		f.Emit(Event{Step: i})
	}
	f.Close()
	sub := f.Subscribe(1)
	var got []int
	for e := range sub.Events() {
		got = append(got, e.Step)
	}
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("replay %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay %v, want %v", got, want)
		}
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}
}

// TestFanoutSlowSubscriberDropsNotBlocks: a full subscriber channel loses
// events (counted) instead of stalling Emit — the engine never waits on a
// consumer.
func TestFanoutSlowSubscriberDropsNotBlocks(t *testing.T) {
	f := NewFanout(4)
	sub := f.Subscribe(2) // not draining; fills after 2 events
	for i := 0; i < 10; i++ {
		f.Emit(Event{Step: i}) // must not block
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("dropped = %d, want 8", got)
	}
	f.Close()
	n := 0
	for range sub.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("delivered = %d, want the 2 buffered", n)
	}
}

func TestFanoutCancelDetaches(t *testing.T) {
	f := NewFanout(4)
	sub := f.Subscribe(4)
	sub.Cancel()
	sub.Cancel() // idempotent
	f.Emit(Event{Step: 1})
	if _, ok := <-sub.Events(); ok {
		t.Fatal("cancelled subscriber still received an event")
	}
	f.Close() // must not double-close the cancelled subscriber's channel
}

// TestFanoutConcurrentEmitSubscribe runs emitters, subscribers, and
// cancellations together; the race detector is the assertion.
func TestFanoutConcurrentEmitSubscribe(t *testing.T) {
	f := NewFanout(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Emit(Event{Step: i})
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := f.Subscribe(8)
			for i := 0; i < 20; i++ {
				// Non-blocking: emitters may already be done.
				select {
				case <-sub.Events():
				default:
				}
			}
			sub.Dropped()
			sub.Cancel()
		}()
	}
	wg.Wait()
	f.Close()
}
