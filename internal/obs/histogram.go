package obs

import (
	"fmt"
	"math/bits"
	"strings"
)

// NumHistogramBuckets is the number of finite histogram buckets. The
// bucket layout is fixed and deterministic: bucket i holds observations in
// (2^(i-1), 2^i] (bucket 0 holds v <= 1), and one overflow bucket past
// 2^(NumHistogramBuckets-1) catches the rest. Forty power-of-two buckets
// span 1 .. 2^39 ≈ 5.5e11, which covers microsecond latencies out to six
// days and peak sizes out to half a trillion words, at a relative
// resolution of 2× — enough to read distribution shape and tail quantiles
// without any configuration knob that could silently change the layout
// between runs.
const NumHistogramBuckets = 40

// Histogram is a fixed-log-bucket distribution: deterministic power-of-two
// bucket bounds, a count, a sum, and an exact maximum. Like Metrics it is
// not safe for concurrent use on its own; SyncMetrics serializes access
// for long-lived processes. The zero value is ready to use.
type Histogram struct {
	counts [NumHistogramBuckets + 1]int64 // +1: overflow bucket
	count  int64
	sum    int64
	max    int64
}

// HistogramBound returns the inclusive upper bound of finite bucket i.
func HistogramBound(i int) int64 { return 1 << i }

// histogramBucket maps an observation to its bucket index.
func histogramBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b > NumHistogramBuckets {
		b = NumHistogramBuckets
	}
	return b
}

// Observe records one value. Negative observations count as zero (they
// land in the first bucket) rather than corrupting the sum.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histogramBucket(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum is the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Max is the largest observation (exact, not a bucket bound).
func (h *Histogram) Max() int64 { return h.max }

// BucketCount returns the count of bucket i (NumHistogramBuckets is the
// overflow bucket).
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i] }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// bound of the bucket in which the q·count-th observation landed, or the
// exact maximum when it landed in the overflow bucket. Zero observations
// yield zero. The estimate is deterministic and within the 2× bucket
// resolution of the true value.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum int64
	for i := 0; i < NumHistogramBuckets; i++ {
		cum += h.counts[i]
		if cum >= target {
			bound := HistogramBound(i)
			if bound > h.max {
				return h.max // the bucket's occupants never exceed the max
			}
			return bound
		}
	}
	return h.max
}

// Merge folds other into h: bucket counts, count, and sum add; max takes
// the maximum. This is the grid aggregation rule for distributions.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Clone returns an independent copy (SyncMetrics snapshots hand these out).
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// HistogramLayout renders the bucket bounds as one canonical string. The
// layout is part of the observability contract — dashboards, the
// Prometheus exposition, and stored scrapes all depend on bounds never
// moving — so a test pins this string byte-for-byte.
func HistogramLayout() string {
	var b strings.Builder
	b.WriteString("le=")
	for i := 0; i < NumHistogramBuckets; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", HistogramBound(i))
	}
	b.WriteString(",+Inf")
	return b.String()
}

// Labeled builds a registry name carrying a label set: name{k1="v1",…}.
// The JSON snapshot uses the full string as its key; the Prometheus writer
// splits the base name from the labels. Values are escaped the way the
// Prometheus text format requires. Keys must be valid label names
// ([a-zA-Z_][a-zA-Z0-9_]*); call sites use literal keys.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// Prometheus text exposition rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
