package obs

import (
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDIsUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceContextSpans(t *testing.T) {
	tc := NewTraceContext("req-1")
	start := time.Now()
	a := tc.Span("queue-wait", start, 2*time.Millisecond)
	b := tc.Span("run", start, 0) // sub-resolution durations still render
	if a.Type != EventSpan || a.Trace != "req-1" || a.Span != "queue-wait" {
		t.Fatalf("span a = %+v", a)
	}
	if a.DurUS != 2000 || b.DurUS != 1 {
		t.Fatalf("durations %d / %d, want 2000 / 1", a.DurUS, b.DurUS)
	}
	if a.SpanID == b.SpanID || a.SpanID < 1 || b.SpanID < 1 {
		t.Fatalf("span IDs %d / %d must be distinct positive", a.SpanID, b.SpanID)
	}
	if NewTraceContext("").ID == "" {
		t.Fatal("empty ID must mint a fresh one")
	}
}

func TestStampTrace(t *testing.T) {
	ring := NewRing(8)
	s := StampTrace(ring, "abc")
	s.Emit(Event{Type: EventTransition, Step: 1})
	s.Emit(Event{Type: EventSpan, Trace: "other"}) // existing IDs are kept
	events := ring.Events()
	if events[0].Trace != "abc" || events[1].Trace != "other" {
		t.Fatalf("stamped traces %q / %q", events[0].Trace, events[1].Trace)
	}
	// The nil-sink and empty-trace fast paths return the input unchanged.
	if StampTrace(nil, "abc") != nil {
		t.Fatal("StampTrace(nil, id) must stay nil")
	}
	if got := StampTrace(ring, ""); got != Sink(ring) {
		t.Fatal("StampTrace(sink, \"\") must return the sink unchanged")
	}
}

// TestChromeTraceRendersSpans: span events export as complete events on
// the service thread, with the thread metadata emitted only when spans
// are present (machine-only traces stay byte-identical).
func TestChromeTraceRendersSpans(t *testing.T) {
	tc := NewTraceContext("deadbeef")
	events := []Event{
		{Type: EventTransition, Step: 1, Rule: "var"},
		tc.Span("queue-wait", time.UnixMicro(1000), 500*time.Microsecond),
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, "svc", events); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`"name":"queue-wait","cat":"span","ph":"X","ts":1000,"dur":500`,
		`"trace":"deadbeef"`,
		`{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"service"}}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q:\n%s", want, out)
		}
	}

	var noSpans strings.Builder
	if err := WriteChromeTrace(&noSpans, "svc", events[:1]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noSpans.String(), `"tid":2`) {
		t.Error("span-free trace must not mention the service thread")
	}
}
