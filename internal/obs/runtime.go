package obs

import (
	"runtime"
	"time"
)

// Process runtime gauges: the Go runtime's own health signals, sampled
// into the serving registry so /metrics (JSON and Prometheus alike)
// reports them beside the engine totals.
const (
	MetricGoroutines  = "runtime.goroutines"
	MetricHeapAlloc   = "runtime.heap.alloc.bytes"
	MetricHeapObjects = "runtime.heap.objects"
	MetricGCCount     = "runtime.gc.count"
	MetricGCPauseUS   = "runtime.gc.pause.total.us"
)

// SampleRuntime takes one sample of the process runtime stats into m.
func SampleRuntime(m *SyncMetrics) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Set(MetricGoroutines, int64(runtime.NumGoroutine()))
	m.Set(MetricHeapAlloc, int64(ms.HeapAlloc))
	m.Set(MetricHeapObjects, int64(ms.HeapObjects))
	m.Set(MetricGCCount, int64(ms.NumGC))
	m.Set(MetricGCPauseUS, int64(ms.PauseTotalNs/1000))
}

// StartRuntimeSampler samples the runtime stats into m every interval
// (5s when interval <= 0) until the returned stop function is called. One
// sample is taken synchronously before it returns, so the gauges exist
// from the first scrape.
func StartRuntimeSampler(m *SyncMetrics, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	SampleRuntime(m)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime(m)
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}
