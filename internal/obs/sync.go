package obs

import (
	"io"
	"sync"
)

// SyncMetrics is a concurrency-safe registry for long-lived processes. The
// per-run Metrics is deliberately lock-free (a run owns its registry); a
// server aggregating many concurrent runs needs the same names and
// snapshot/merge semantics behind a mutex. The zero value is not usable;
// call NewSyncMetrics.
type SyncMetrics struct {
	mu sync.Mutex
	m  *Metrics
}

// NewSyncMetrics returns an empty concurrency-safe registry.
func NewSyncMetrics() *SyncMetrics {
	return &SyncMetrics{m: NewMetrics()}
}

// Inc adds delta to the named counter.
func (s *SyncMetrics) Inc(name string, delta int64) {
	s.mu.Lock()
	s.m.Inc(name, delta)
	s.mu.Unlock()
}

// Set writes the named gauge.
func (s *SyncMetrics) Set(name string, v int64) {
	s.mu.Lock()
	s.m.Set(name, v)
	s.mu.Unlock()
}

// SetMax raises the named gauge to v if v is larger.
func (s *SyncMetrics) SetMax(name string, v int64) {
	s.mu.Lock()
	s.m.SetMax(name, v)
	s.mu.Unlock()
}

// Add shifts the named gauge by delta — the increment/decrement pair behind
// level gauges like in-flight request counts.
func (s *SyncMetrics) Add(name string, delta int64) {
	s.mu.Lock()
	s.m.Set(name, s.m.Gauge(name)+delta)
	s.mu.Unlock()
}

// Observe records one observation in the named histogram.
func (s *SyncMetrics) Observe(name string, v int64) {
	s.mu.Lock()
	s.m.Observe(name, v)
	s.mu.Unlock()
}

// Histogram returns an independent copy of the named histogram (nil when
// absent), safe to read without further locking.
func (s *SyncMetrics) Histogram(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.m.Histogram(name)
	if h == nil {
		return nil
	}
	return h.Clone()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format under the lock, so a scrape sees one consistent point in time.
func (s *SyncMetrics) WritePrometheus(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.WritePrometheus(w)
}

// Counter reads a counter (0 when absent).
func (s *SyncMetrics) Counter(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Counter(name)
}

// Gauge reads a gauge (0 when absent).
func (s *SyncMetrics) Gauge(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Gauge(name)
}

// Merge folds a finished per-run registry into the shared one: counters
// add, gauges take the maximum — the same aggregation rule the experiment
// grids use, so a server's /metrics reports corpus-style totals.
func (s *SyncMetrics) Merge(other *Metrics) {
	if other == nil {
		return
	}
	s.mu.Lock()
	s.m.Merge(other)
	s.mu.Unlock()
}

// Snapshot returns a point-in-time copy of every metric.
func (s *SyncMetrics) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Snapshot()
}

// Names returns every metric name in sorted order.
func (s *SyncMetrics) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Names()
}
