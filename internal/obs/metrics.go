package obs

import (
	"encoding/json"
	"sort"
	"strings"
)

// Canonical metric names. Counters accumulate over a run (and sum across a
// grid); gauges are maxima (and take the max across a grid).
const (
	// MetricSteps counts machine transitions (excluding GC-rule
	// applications), equal to Result.Steps.
	MetricSteps = "machine.steps"
	// MetricRulePrefix prefixes one counter per transition rule, e.g.
	// "machine.rule.apply-tail". Their sum equals MetricSteps.
	MetricRulePrefix = "machine.rule."
	// MetricCollections and MetricReclaimed count GC-rule applications that
	// reclaimed at least one cell, and the cells they reclaimed.
	MetricCollections = "gc.collections"
	MetricReclaimed   = "gc.reclaimed"
	// MetricAllocs counts store allocations (monotone, GC-independent).
	MetricAllocs = "store.allocs"
	// Gauges: the run's peaks.
	MetricContDepthMax = "cont.depth.max"
	MetricFlatPeak     = "space.flat.peak"
	MetricLinkedPeak   = "space.linked.peak"
	MetricHeapPeak     = "space.heap.peak"
)

// Metrics is a per-run registry of named counters, gauges, and histograms.
// It is not safe for concurrent use; a run owns its registry, and grid
// aggregation merges finished registries sequentially.
type Metrics struct {
	counters   map[string]int64
	gauges     map[string]int64
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   map[string]int64{},
		gauges:     map[string]int64{},
		histograms: map[string]*Histogram{},
	}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) { m.counters[name] += delta }

// SetMax raises the named gauge to v if v is larger.
func (m *Metrics) SetMax(name string, v int64) {
	if cur, ok := m.gauges[name]; !ok || v > cur {
		m.gauges[name] = v
	}
}

// Set writes the named gauge unconditionally — for level gauges (in-flight
// requests, cache residency) whose current value, not maximum, is the
// interesting number.
func (m *Metrics) Set(name string, v int64) { m.gauges[name] = v }

// Observe records one observation in the named histogram, creating it on
// first use. Histogram names may carry a label suffix built with Labeled.
func (m *Metrics) Observe(name string, v int64) {
	h := m.histograms[name]
	if h == nil {
		h = &Histogram{}
		m.histograms[name] = h
	}
	h.Observe(v)
}

// Histogram reads the named histogram (nil when absent). The returned
// pointer is the registry's own: callers must not retain it past the
// registry's single-goroutine discipline.
func (m *Metrics) Histogram(name string) *Histogram { return m.histograms[name] }

// HistogramNames returns every histogram name in sorted order.
func (m *Metrics) HistogramNames() []string {
	out := make([]string, 0, len(m.histograms))
	for name := range m.histograms {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counter reads a counter (0 when absent).
func (m *Metrics) Counter(name string) int64 { return m.counters[name] }

// Gauge reads a gauge (0 when absent).
func (m *Metrics) Gauge(name string) int64 { return m.gauges[name] }

// SumCounters sums every counter whose name starts with prefix.
func (m *Metrics) SumCounters(prefix string) int64 {
	var total int64
	for name, v := range m.counters {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// Merge folds other into m: counters add, gauges take the maximum. This is
// the per-grid aggregation rule — transition totals accumulate across cells
// while peaks report the worst cell.
func (m *Metrics) Merge(other *Metrics) {
	if other == nil {
		return
	}
	for name, v := range other.counters {
		m.counters[name] += v
	}
	for name, v := range other.gauges {
		m.SetMax(name, v)
	}
	for name, h := range other.histograms {
		mine := m.histograms[name]
		if mine == nil {
			mine = &Histogram{}
			m.histograms[name] = mine
		}
		mine.Merge(h)
	}
}

// Snapshot returns every metric in one map (counters and gauges share the
// namespace by construction). Each histogram contributes five derived
// entries — name.count, name.sum, name.p50, name.p90, name.p99 — so the
// flat JSON rendering of /metrics carries latency quantiles without a
// schema change; the full bucket series is only in the Prometheus
// exposition.
func (m *Metrics) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(m.counters)+len(m.gauges)+5*len(m.histograms))
	for name, v := range m.counters {
		out[name] = v
	}
	for name, v := range m.gauges {
		out[name] = v
	}
	for name, h := range m.histograms {
		out[name+".count"] = h.Count()
		out[name+".sum"] = h.Sum()
		out[name+".p50"] = h.Quantile(0.50)
		out[name+".p90"] = h.Quantile(0.90)
		out[name+".p99"] = h.Quantile(0.99)
	}
	return out
}

// Names returns every metric name in sorted order, for deterministic
// rendering.
func (m *Metrics) Names() []string {
	out := make([]string, 0, len(m.counters)+len(m.gauges))
	for name := range m.counters {
		out = append(out, name)
	}
	for name := range m.gauges {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MarshalJSON encodes the snapshot, so a Result (or an aggregated grid)
// serializes its metrics as a flat name→value object.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}
