package obs

import "sync"

// Fanout is a concurrency-safe, bounded, drop-counting event fan-out: the
// Sink a live-streamed run emits into. It retains a bounded ring of recent
// events (replayed to late subscribers, so a stream opened just after a
// short run finishes still sees its tail) and forwards each event to every
// subscriber's bounded channel with a non-blocking send — a slow consumer
// loses events (counted per subscriber) rather than stalling the machine.
// This is the streaming backpressure policy: the engine never waits on a
// network peer.
type Fanout struct {
	mu     sync.Mutex
	ring   *Ring
	subs   map[*Subscriber]struct{}
	closed bool
}

// NewFanout returns a fan-out retaining the last ringCap events
// (DefaultRingCapacity when ringCap < 1).
func NewFanout(ringCap int) *Fanout {
	return &Fanout{
		ring: NewRing(ringCap),
		subs: map[*Subscriber]struct{}{},
	}
}

// Emit implements Sink. Emissions after Close are dropped.
func (f *Fanout) Emit(e Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.ring.Emit(e)
	for s := range f.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped++
		}
	}
}

// Subscribe attaches a consumer with a channel buffer of at least buf
// (256 when buf < 1) plus room for the replayed ring tail, which is
// delivered first. Subscribing to a closed fan-out still replays the
// retained tail; the channel is then already closed.
func (f *Fanout) Subscribe(buf int) *Subscriber {
	if buf < 1 {
		buf = 256
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	replay := f.ring.Events()
	s := &Subscriber{f: f, ch: make(chan Event, buf+len(replay))}
	for _, e := range replay {
		s.ch <- e // fits: the buffer was sized for the replay
	}
	if f.closed {
		close(s.ch)
	} else {
		f.subs[s] = struct{}{}
	}
	return s
}

// Close ends the stream: every subscriber's channel is closed after its
// buffered events drain, and later Emit calls are dropped. Idempotent.
func (f *Fanout) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for s := range f.subs {
		close(s.ch)
	}
	f.subs = map[*Subscriber]struct{}{}
}

// Total is the number of events ever emitted (retained or not).
func (f *Fanout) Total() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Total()
}

// Subscriber is one consumer of a Fanout.
type Subscriber struct {
	f       *Fanout
	ch      chan Event
	dropped int64 // under f.mu
}

// Events is the subscriber's channel: replayed tail, then live events; it
// closes when the fan-out closes or the subscriber cancels.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped is the number of events this subscriber lost to backpressure.
func (s *Subscriber) Dropped() int64 {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	return s.dropped
}

// Cancel detaches the subscriber and closes its channel. Idempotent, and
// a no-op after the fan-out closed (the channel is already closed).
func (s *Subscriber) Cancel() {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	if _, ok := s.f.subs[s]; ok {
		delete(s.f.subs, s)
		close(s.ch)
	}
}
