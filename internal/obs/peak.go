package obs

import (
	"fmt"
	"strings"

	"tailspace/internal/env"
	"tailspace/internal/space"
	"tailspace/internal/value"
)

// maxReportFrames bounds the continuation frames a PeakReport snapshots, so
// attribution stays O(1)-ish per peak update even when the chain is deep;
// FramesTotal still records the full depth.
const maxReportFrames = 16

// maxReportRibs bounds the identifiers listed per environment rib.
const maxReportRibs = 8

// Frame summarizes one continuation frame live at a peak.
type Frame struct {
	// Kind is the continuation constructor ("select", "assign", "push",
	// "call", "return", "return-stack", "halt").
	Kind string `json:"kind"`
	// Charge is the frame's contribution to space(κ) under the run's cost
	// model, collapsed at the pointer width of the live store at the peak.
	Charge int `json:"charge"`
	// EnvSize is |Dom ρ| of the frame's saved environment (0 when the frame
	// carries none).
	EnvSize int `json:"env_size,omitempty"`
	// Pending is the source the frame will evaluate or deliver next, when it
	// has one (abbreviated).
	Pending string `json:"pending,omitempty"`
	// Ribs lists identifiers of the saved environment's rib — the live-rib
	// provenance of the frame's charge (capped; "…" marks a cut).
	Ribs []string `json:"ribs,omitempty"`
}

// PeakReport attributes a flat-space peak: which machine rule produced the
// peak configuration, which source expression was being evaluated, and what
// the continuation chain and live ribs were retaining when the supremum was
// hit. The runner rebuilds it on every flat-peak update, so after the run it
// describes the configuration that realized S_X(P, D).
type PeakReport struct {
	// Machine is the variant name; Step the transition count; Flat the peak
	// |P| + Figure 7 space it attributes.
	Machine string `json:"machine"`
	Step    int    `json:"step"`
	Flat    int    `json:"flat"`
	// Rule is the transition rule that produced the peak configuration
	// ("none" for the initial configuration).
	Rule string `json:"rule"`
	// Expr is the source expression live at the peak (the configuration's
	// expression, or the most recently evaluated one for value
	// configurations) and NodeID its pre-order AST node ID (0 when unknown).
	Expr   string `json:"expr"`
	NodeID int    `json:"node,omitempty"`
	// EnvSize and EnvRibs describe the configuration's own environment.
	EnvSize int      `json:"env_size"`
	EnvRibs []string `json:"env_ribs,omitempty"`
	// Frames is the top of the continuation chain (at most maxReportFrames
	// entries); FramesTotal is the whole chain's length and ContCharge its
	// full Figure 7 space(κ).
	Frames      []Frame `json:"frames"`
	FramesTotal int     `json:"frames_total"`
	ContCharge  int     `json:"cont_charge"`
	// StoreCells is |Dom σ| at the peak.
	StoreCells int `json:"store_cells"`
}

// NewPeakReport snapshots the configuration (rho, k, st) into an
// attribution report. rule and expr describe the transition that produced
// the configuration; model selects the cost model for frame charges (nil
// means the default WordModel).
func NewPeakReport(machine string, step, flat int, rule, expr string, nodeID int,
	rho env.Env, k value.Cont, st *value.Store, model space.CostModel) *PeakReport {
	m := space.NewMeasurer(model)
	width := m.PtrWidth(st)
	r := &PeakReport{
		Machine: machine,
		Step:    step,
		Flat:    flat,
		Rule:    rule,
		Expr:    Abbrev(expr, 80),
		NodeID:  nodeID,
		EnvSize: rho.Size(),
		EnvRibs: ribs(rho),
	}
	if st != nil {
		r.StoreCells = st.Size()
	}
	for cur := k; cur != nil; cur = cur.Next() {
		r.FramesTotal++
		charge := m.Frame(cur).At(width)
		r.ContCharge += charge
		if len(r.Frames) < maxReportFrames {
			r.Frames = append(r.Frames, snapshotFrame(cur, charge))
		}
	}
	return r
}

// snapshotFrame summarizes one continuation frame.
func snapshotFrame(k value.Cont, charge int) Frame {
	f := Frame{Charge: charge}
	switch x := k.(type) {
	case value.Halt:
		f.Kind = "halt"
	case *value.Select:
		f.Kind = "select"
		f.EnvSize = x.Env.Size()
		f.Ribs = ribs(x.Env)
		f.Pending = Abbrev("(if · "+x.Then.String()+" "+x.Else.String()+")", 60)
	case *value.Assign:
		f.Kind = "assign"
		f.EnvSize = x.Env.Size()
		f.Ribs = ribs(x.Env)
		f.Pending = Abbrev("(set! "+x.Name+" ·)", 60)
	case *value.Push:
		f.Kind = "push"
		f.EnvSize = x.Env.Size()
		f.Ribs = ribs(x.Env)
		if len(x.Rest) > 0 {
			f.Pending = Abbrev(x.Rest[0].String(), 60)
		}
	case *value.Call:
		f.Kind = "call"
	case *value.Return:
		f.Kind = "return"
		f.EnvSize = x.Env.Size()
		f.Ribs = ribs(x.Env)
	case *value.ReturnStack:
		f.Kind = "return-stack"
		f.EnvSize = x.Env.Size()
		f.Ribs = ribs(x.Env)
	case *value.MonCtc:
		f.Kind = "mon-ctc"
		f.EnvSize = x.Env.Size()
		f.Ribs = ribs(x.Env)
		f.Pending = Abbrev("(mon · "+x.Expr.String()+")", 60)
	case *value.MonAttach:
		f.Kind = "mon-attach"
	case *value.MonDom:
		f.Kind = "mon-dom"
		f.Pending = Abbrev(fmt.Sprintf("(check dom %d of %s)", x.Idx, x.G.Label), 60)
	case *value.MonCod:
		f.Kind = "mon-cod"
		f.Pending = Abbrev(fmt.Sprintf("(%d pending cod checks)", len(x.Pend)), 60)
	case *value.MonChk:
		f.Kind = "mon-chk"
	default:
		f.Kind = fmt.Sprintf("%T", k)
	}
	return f
}

// ribs lists the rib's identifiers, lexically sorted and capped.
func ribs(rho env.Env) []string {
	dom := rho.Domain()
	if len(dom) > maxReportRibs {
		dom = append(dom[:maxReportRibs:maxReportRibs], "…")
	}
	return dom
}

// Render lays the report out for the terminal (the spacelab -explain-peak
// output).
func (r *PeakReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "peak S_%s = %d at step %d — rule %s\n", r.Machine, r.Flat, r.Step, r.Rule)
	fmt.Fprintf(&sb, "  source expression: %s", r.Expr)
	if r.NodeID > 0 {
		fmt.Fprintf(&sb, "   [node %d]", r.NodeID)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  environment: |ρ|=%d", r.EnvSize)
	if len(r.EnvRibs) > 0 {
		fmt.Fprintf(&sb, "  ribs: %s", strings.Join(r.EnvRibs, " "))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  store: %d cells\n", r.StoreCells)
	fmt.Fprintf(&sb, "  continuation: depth %d, space(κ)=%d", r.FramesTotal, r.ContCharge)
	if r.FramesTotal > len(r.Frames) {
		fmt.Fprintf(&sb, " (showing top %d frames)", len(r.Frames))
	}
	sb.WriteByte('\n')
	for i, f := range r.Frames {
		fmt.Fprintf(&sb, "    #%-3d %-12s charge=%-4d", i, f.Kind, f.Charge)
		if f.EnvSize > 0 {
			fmt.Fprintf(&sb, " |ρ|=%-3d", f.EnvSize)
		}
		if len(f.Ribs) > 0 {
			fmt.Fprintf(&sb, " ribs: %s", strings.Join(f.Ribs, " "))
		}
		if f.Pending != "" {
			fmt.Fprintf(&sb, " pending: %s", f.Pending)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
