// Package obs is the observability layer over the reference
// implementations: a structured event stream (transitions tagged with the
// machine rule that fired, garbage collections with the cells they
// reclaimed, store allocations attributed to the allocating expression, and
// peak updates), a per-run metrics registry, and peak attribution reports
// that name the source expression and machine rule live when a space
// supremum was reached.
//
// The paper's claims are statements about peaks — S_X(P, D) is a sup over
// the configurations of a computation — and this package answers the
// question the raw peak value cannot: *where* the sup came from. Events flow
// from the runner into a pluggable Sink; the bundled Ring keeps the stream
// bounded-memory on multi-million-step runs, and the JSONL and Chrome
// trace_event exporters turn a retained stream into files that external
// tools (jq, chrome://tracing, Perfetto) can load.
package obs

// EventType discriminates the entries of the event stream.
type EventType string

const (
	// EventTransition is one machine transition: the rule that fired plus
	// the space sample of the configuration it produced.
	EventTransition EventType = "transition"
	// EventGC is one application of the garbage collection rule.
	EventGC EventType = "gc"
	// EventAlloc is one store allocation, attributed to the source
	// expression whose evaluation performed it.
	EventAlloc EventType = "alloc"
	// EventPeak records that a running maximum (flat, linked, heap, or
	// continuation depth) was raised.
	EventPeak EventType = "peak"
	// EventRequest is one served request of a long-lived process (the
	// spaced daemon): method, path, status, duration, and how the result
	// cache disposed of it. Request events flow through the same Sink
	// plumbing as machine events, so JSONL export and rings apply.
	EventRequest EventType = "request"
	// EventSpan is one finished span of a traced request: a named interval
	// (queue-wait, cache-lookup, expand, run, measure, request) with a
	// wall-clock start and duration, tied to its request by Trace.
	EventSpan EventType = "span"
)

// Event is one entry of the structured event stream. Only the fields
// relevant to its Type are populated; zero-valued fields are omitted from
// the JSONL encoding.
type Event struct {
	Type EventType `json:"type"`
	// Step is the transition count when the event fired (0 is the initial
	// configuration).
	Step int `json:"step"`

	// Rule tags a transition with the Figure 5 / §8–10 rule that fired.
	Rule string `json:"rule,omitempty"`
	// Flat and Linked are the Figure 7 / Figure 8 space samples of the
	// configuration (including |P|); Heap is the live-location count and
	// Depth the continuation chain length. Measured distinguishes "zero" from
	// "not measured": without space accounting Flat and Linked were never
	// computed.
	Flat     int  `json:"flat,omitempty"`
	Linked   int  `json:"linked,omitempty"`
	Heap     int  `json:"heap,omitempty"`
	Depth    int  `json:"depth,omitempty"`
	Measured bool `json:"measured,omitempty"`

	// Reclaimed is the number of locations a garbage collection removed.
	Reclaimed int `json:"reclaimed,omitempty"`

	// Loc is the allocated store location; NodeID and Expr identify the
	// allocating expression (pre-order AST node ID and abbreviated source).
	Loc    int    `json:"loc,omitempty"`
	NodeID int    `json:"node,omitempty"`
	Expr   string `json:"expr,omitempty"`

	// Peak names the raised maximum ("flat", "linked", "heap", "depth") and
	// Value its new value.
	Peak  string `json:"peak,omitempty"`
	Value int    `json:"value,omitempty"`

	// Request-event fields (EventRequest): the HTTP method and path, the
	// response status, the wall-clock duration in microseconds, and the
	// request's outcome — how the result cache disposed of it ("hit",
	// "miss", "join") or why it did not get that far ("shed" for
	// load-shedding, "cancel" for a client disconnect, "timeout" for the
	// per-request deadline; empty for uncached endpoints).
	Method string `json:"method,omitempty"`
	Path   string `json:"path,omitempty"`
	Status int    `json:"status,omitempty"`
	DurUS  int64  `json:"durUs,omitempty"`
	Cache  string `json:"cache,omitempty"`

	// Trace ties an event to the request that produced it: the middleware
	// mints a trace ID per request, the runner stamps it onto every engine
	// event of runs the request started (Options.TraceID), and spans and
	// access-log entries carry it natively.
	Trace string `json:"trace,omitempty"`
	// Span-event fields (EventSpan): the span name, its sequence number
	// within the trace, and the wall-clock start in Unix microseconds
	// (DurUS above is the duration).
	Span    string `json:"span,omitempty"`
	SpanID  int    `json:"spanId,omitempty"`
	StartUS int64  `json:"startUs,omitempty"`
}

// Sink receives events as the run produces them. Implementations must be
// cheap: Emit is called once or more per transition. A nil Sink in the
// runner's options disables the stream entirely (zero overhead beyond a nil
// check).
type Sink interface {
	Emit(Event)
}

// Abbrev truncates a source rendering to at most n runes, marking the cut
// with an ellipsis, so events and reports stay one-line readable.
func Abbrev(s string, n int) string {
	if n <= 0 || len(s) <= n {
		return s
	}
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}
