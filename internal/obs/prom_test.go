package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusRendering pins the shape of the text exposition:
// sanitized names, TYPE lines per family, label pass-through — including
// the brace-carrying {id} route patterns, which must ride inside label
// values, never in metric names — and the classic cumulative histogram
// triple. Every emitted line must also parse under the exposition grammar
// (a single bad line makes a scraper reject the whole body).
func TestWritePrometheusRendering(t *testing.T) {
	m := NewMetrics()
	m.Inc(Labeled("http.requests", "endpoint", "/v1/eval"), 3)
	m.Inc(Labeled("http.requests", "endpoint", "/v1/runs/{id}/events"), 1)
	m.Inc(Labeled("http.requests", "endpoint", "/v1/traces/{id}"), 1)
	m.Inc("machine.rule.apply-tail", 7)
	m.Set("pool.busy", 2)
	m.Observe(Labeled("http.request.us", "endpoint", "/v1/measure"), 100)
	m.Observe(Labeled("http.request.us", "endpoint", "/v1/measure"), 3)
	m.Observe(Labeled("http.request.us", "endpoint", "/v1/runs/{id}/events"), 5)

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE http_requests counter\n",
		`http_requests{endpoint="/v1/eval"} 3` + "\n",
		`http_requests{endpoint="/v1/runs/{id}/events"} 1` + "\n",
		`http_requests{endpoint="/v1/traces/{id}"} 1` + "\n",
		"# TYPE machine_rule_apply_tail counter\n",
		"machine_rule_apply_tail 7\n",
		"# TYPE pool_busy gauge\n",
		"pool_busy 2\n",
		"# TYPE http_request_us histogram\n",
		`http_request_us_bucket{endpoint="/v1/measure",le="4"} 1` + "\n",
		`http_request_us_bucket{endpoint="/v1/measure",le="128"} 2` + "\n",
		`http_request_us_bucket{endpoint="/v1/measure",le="+Inf"} 2` + "\n",
		`http_request_us_sum{endpoint="/v1/measure"} 103` + "\n",
		`http_request_us_count{endpoint="/v1/measure"} 2` + "\n",
		`http_request_us_count{endpoint="/v1/runs/{id}/events"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineValid(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

// promLineValid checks one sample line against the text exposition grammar:
// metric-name, optional {label="value",...} block (values may contain any
// character except an unescaped quote), a space, and an integer value.
func promLineValid(line string) bool {
	i := 0
	nameChar := func(c byte, first bool) bool {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			return true
		case c >= '0' && c <= '9':
			return !first
		}
		return false
	}
	for i < len(line) && nameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return false
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			start := i
			for i < len(line) && nameChar(line[i], i == start) {
				i++
			}
			if i == start || i+1 >= len(line) || line[i] != '=' || line[i+1] != '"' {
				return false
			}
			i += 2
			for i < len(line) && line[i] != '"' {
				if line[i] == '\\' {
					i++ // escaped character
				}
				i++
			}
			if i >= len(line) {
				return false
			}
			i++ // closing quote
			if i < len(line) && line[i] == ',' {
				i++
				continue
			}
			break
		}
		if i >= len(line) || line[i] != '}' {
			return false
		}
		i++
	}
	if i >= len(line) || line[i] != ' ' {
		return false
	}
	i++
	start := i
	if i < len(line) && line[i] == '-' {
		i++
	}
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		i++
	}
	return i > start && i == len(line)
}

// TestWritePrometheusDeterministic: two renderings of the same registry
// are byte-identical (scrape diffing depends on it).
func TestWritePrometheusDeterministic(t *testing.T) {
	m := NewMetrics()
	for _, name := range []string{"b.two", "a.one", "c.three"} {
		m.Inc(name, 1)
		m.Set(name+".g", 2)
		m.Observe(name+".h", 3)
	}
	var x, y strings.Builder
	if err := m.WritePrometheus(&x); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatalf("renderings differ:\n%s\nvs\n%s", x.String(), y.String())
	}
	if !strings.HasPrefix(x.String(), "# TYPE a_one counter\n") {
		t.Fatalf("families not sorted:\n%s", x.String())
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"machine.steps":        "machine_steps",
		"http.status.2xx":      "http_status_2xx",
		"2weird":               "_2weird",
		"rule.apply-tail":      "rule_apply_tail",
		"http.requests./v1/x":  "http_requests__v1_x",
		"already_fine_name_42": "already_fine_name_42",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
