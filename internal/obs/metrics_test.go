package obs

import (
	"encoding/json"
	"testing"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Inc(MetricRulePrefix+"var", 3)
	m.Inc(MetricRulePrefix+"var", 2)
	m.Inc(MetricRulePrefix+"if", 1)
	m.Inc(MetricSteps, 6)
	m.SetMax(MetricFlatPeak, 10)
	m.SetMax(MetricFlatPeak, 7) // lower: must not regress
	if got := m.Counter(MetricRulePrefix + "var"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := m.SumCounters(MetricRulePrefix); got != 6 {
		t.Fatalf("SumCounters(rule) = %d, want 6", got)
	}
	if got := m.Gauge(MetricFlatPeak); got != 10 {
		t.Fatalf("gauge = %d, want max 10", got)
	}
}

func TestMetricsMerge(t *testing.T) {
	a := NewMetrics()
	a.Inc(MetricSteps, 10)
	a.SetMax(MetricHeapPeak, 4)
	b := NewMetrics()
	b.Inc(MetricSteps, 5)
	b.SetMax(MetricHeapPeak, 9)
	b.SetMax(MetricContDepthMax, 2)
	a.Merge(b)
	a.Merge(nil) // nil registries (e.g. a cell that never ran) are ignored
	if got := a.Counter(MetricSteps); got != 15 {
		t.Fatalf("merged counter = %d, want sum 15", got)
	}
	if got := a.Gauge(MetricHeapPeak); got != 9 {
		t.Fatalf("merged gauge = %d, want max 9", got)
	}
	if got := a.Gauge(MetricContDepthMax); got != 2 {
		t.Fatalf("merged new gauge = %d, want 2", got)
	}
}

func TestMetricsMarshalJSONIsFlat(t *testing.T) {
	m := NewMetrics()
	m.Inc(MetricSteps, 3)
	m.SetMax(MetricHeapPeak, 8)
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[MetricSteps] != 3 || decoded[MetricHeapPeak] != 8 {
		t.Fatalf("decoded %v", decoded)
	}
}
