package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tailspace/internal/core"
	"tailspace/internal/obs"
	"tailspace/internal/space"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden pins the exact Chrome trace_event bytes produced for
// a small countdown run: the export is deterministic (seeded store, stable
// field ordering), so any drift in the event stream or the format shows up as
// a diff. Regenerate with: go test ./internal/obs -run ChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	const src = `(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 3)`
	ring := obs.NewRing(0)
	res, err := core.RunProgram(src, core.Options{
		Variant: core.Tail, Measure: true, GCEvery: 1,
		CostModel: space.Fixnum, Events: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events on a tiny run", ring.Dropped())
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, "countdown [tail]", ring.Events()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	gcs := 0
	for _, e := range doc.TraceEvents {
		if e["name"] == "gc" {
			gcs++
		}
	}
	if gcs != res.Steps {
		t.Fatalf("GC-rule events %d, want one per step %d", gcs, res.Steps)
	}

	golden := filepath.Join("testdata", "chrome_countdown.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from golden file %s (re-run with -update if intended)\ngot %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestJSONLRoundTrip checks the JSONL export decodes back to the emitted
// events, field for field.
func TestJSONLRoundTrip(t *testing.T) {
	events := []obs.Event{
		{Type: obs.EventTransition, Step: 1, Rule: "call", Flat: 10, Linked: 8, Heap: 3, Depth: 2, Measured: true},
		{Type: obs.EventGC, Step: 2, Reclaimed: 4, Heap: 2},
		{Type: obs.EventAlloc, Step: 3, Loc: 17, NodeID: 5, Expr: "(cons x y)"},
		{Type: obs.EventPeak, Step: 3, Peak: "flat", Value: 42},
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	for i, want := range events {
		var got obs.Event
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("line %d: round-tripped %+v, want %+v", i, got, want)
		}
	}
}
