// Package cps implements continuation-passing-style conversion for Core
// Scheme. The IEEE standard's requirement of proper tail recursion cites
// Steele's Rabbit compiler [Ste78], which "uses CPS-conversion to explain
// what proper tail recursion meant": after conversion every user-procedure
// call is a tail call, so an implementation that compiles calls as gotos
// needs no control stack at all.
//
// The converter is one-pass with meta-continuations (in the style of Danvy
// and Filinski): administrative redexes are not generated, and `if` forms
// bind a join-point continuation instead of duplicating their context, so
// output size stays linear in input size.
//
// Design choices, all standard for CPS compilers:
//
//   - User lambdas gain a final continuation parameter; calls to unknown
//     procedures pass their (reified) continuation and are always emitted
//     in tail position.
//   - Calls whose operator is a lexically unshadowed standard procedure are
//     kept direct ("primops"): (+ e1 e2) converts its operands and applies
//   - inside the continuation, since primitives return immediately.
//   - call-with-current-continuation disappears: (call/cc f) becomes
//     (f (lambda (v k2) (k v)) k) — first-class continuations are ordinary
//     closures in CPS, which is itself a faithful rendition of the paper's
//     Section 4 discussion.
//
// The result of converting a whole program is again a Core Scheme program
// computing the same observable answer, so every reference implementation
// (and the space meter) runs it unchanged.
package cps

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
	"tailspace/internal/prim"
)

// Converter rewrites Core Scheme into CPS.
type Converter struct {
	fresh int
}

// New returns a Converter.
func New() *Converter { return &Converter{} }

func (c *Converter) gensym(hint string) string {
	c.fresh++
	return fmt.Sprintf("%%cps-%s:%d", hint, c.fresh)
}

// metaK is a compile-time continuation: it receives a trivial expression (an
// atom: variable, constant, lambda, or direct primitive application) for the
// value of the term being converted and produces the rest of the program.
// When the continuation is already bound to a variable in the output, Var
// names it, so reification does not eta-expand.
type metaK struct {
	apply func(atom ast.Expr) ast.Expr
	// varName, when non-empty, names an output variable already bound to
	// this continuation.
	varName string
}

// reify turns a meta-continuation into an output-language expression.
func (c *Converter) reify(k metaK) ast.Expr {
	if k.varName != "" {
		return &ast.Var{Name: k.varName}
	}
	v := c.gensym("v")
	return &ast.Lambda{
		Params: []string{v},
		Body:   k.apply(&ast.Var{Name: v}),
		Label:  c.gensym("cont"),
	}
}

// varK wraps an output continuation variable as a meta-continuation.
func varK(name string) metaK {
	return metaK{
		apply: func(atom ast.Expr) ast.Expr {
			return &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: name}, atom}}
		},
		varName: name,
	}
}

// boundSet tracks lexically bound identifiers so primitive names that the
// program shadows are treated as unknown procedures.
type boundSet map[string]bool

func (b boundSet) with(names []string) boundSet {
	out := make(boundSet, len(b)+len(names))
	for k := range b {
		out[k] = true
	}
	for _, n := range names {
		out[n] = true
	}
	return out
}

// isPrimitive reports whether name denotes a standard procedure that can be
// applied directly in CPS output (call/cc and apply need the continuation
// and are handled separately).
func isPrimitive(name string, bound boundSet) bool {
	if bound[name] {
		return false
	}
	p, ok := prim.Lookup(name)
	return ok && !p.CallCC && !p.Spread
}

func isCallCC(name string, bound boundSet) bool {
	if bound[name] {
		return false
	}
	p, ok := prim.Lookup(name)
	return ok && p.CallCC
}

// Convert rewrites a whole program: the top-level continuation is the
// identity, so the converted program computes the same answer.
func (c *Converter) Convert(e ast.Expr) ast.Expr {
	return c.cps(e, boundSet{}, metaK{apply: func(atom ast.Expr) ast.Expr { return atom }})
}

// ConvertSource parses, expands, converts, and returns the CPS program.
func ConvertSource(src string) (ast.Expr, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return New().Convert(e), nil
}

// cps converts e and hands its value (as a trivial expression) to k.
func (c *Converter) cps(e ast.Expr, bound boundSet, k metaK) ast.Expr {
	switch x := e.(type) {
	case *ast.Const:
		return k.apply(x)

	case *ast.Var:
		// A primitive referenced as a value must be eta-expanded into the
		// CPS calling convention, or downstream unknown calls would pass it
		// a continuation it cannot accept.
		if w, ok := c.etaPrimitive(x.Name, bound); ok {
			return k.apply(w)
		}
		return k.apply(x)

	case *ast.Lambda:
		kv := c.gensym("k")
		inner := x.Body
		body := c.cps(inner, bound.with(x.Params).with([]string{kv}), varK(kv))
		lam := &ast.Lambda{
			Params: append(append([]string{}, x.Params...), kv),
			Body:   body,
			Label:  x.Label,
		}
		return k.apply(lam)

	case *ast.If:
		// Bind a join point so the context is not duplicated across arms:
		//   ((lambda (j) [[test]] (λvt. (if vt [[then]]j [[else]]j)))
		//    (reify k))
		// When k is already a variable, use it directly.
		emit := func(jname string) ast.Expr {
			return c.cps(x.Test, bound, metaK{apply: func(vt ast.Expr) ast.Expr {
				return &ast.If{
					Test: vt,
					Then: c.cps(x.Then, bound, varK(jname)),
					Else: c.cps(x.Else, bound, varK(jname)),
				}
			}})
		}
		if k.varName != "" {
			return emit(k.varName)
		}
		j := c.gensym("j")
		return &ast.Call{Exprs: []ast.Expr{
			&ast.Lambda{Params: []string{j}, Body: emit(j), Label: c.gensym("join")},
			c.reify(k),
		}}

	case *ast.Set:
		return c.cps(x.Rhs, bound, metaK{apply: func(v ast.Expr) ast.Expr {
			// Perform the assignment, then continue with UNSPECIFIED:
			//   ((lambda (ign) k(#!unspecified)) (set! x v))
			ign := c.gensym("ign")
			return &ast.Call{Exprs: []ast.Expr{
				&ast.Lambda{
					Params: []string{ign},
					Body:   k.apply(&ast.Const{Value: ast.UnspecifiedConst{}}),
					Label:  c.gensym("after-set"),
				},
				&ast.Set{Name: x.Name, Rhs: v},
			}}
		}})

	case *ast.Call:
		return c.cpsCall(x, bound, k)

	case *ast.Mon:
		// Contract erasure: CPS output runs on the erasing machines, where
		// (mon ctc E) evaluates the contract, discards its value, and passes
		// E's value through unchecked (the mon-attach pass-through rule).
		// Binding the contract atom keeps any effect or error it carries:
		//   ((lambda (ign) [[E]]k) [[ctc]])
		return c.cps(x.Ctc, bound, metaK{apply: func(ctc ast.Expr) ast.Expr {
			ign := c.gensym("ign")
			return &ast.Call{Exprs: []ast.Expr{
				&ast.Lambda{
					Params: []string{ign},
					Body:   c.cps(x.Expr, bound.with([]string{ign}), k),
					Label:  c.gensym("after-ctc"),
				},
				ctc,
			}}
		}})
	}
	panic(fmt.Sprintf("cps: unknown expression %T", e))
}

// cpsCall converts a procedure call.
func (c *Converter) cpsCall(call *ast.Call, bound boundSet, k metaK) ast.Expr {
	// (call/cc f) => (f (λ(v k2). k(v)) k): in CPS the current continuation
	// is an ordinary value, so call/cc needs no machine support at all. The
	// continuation is bound to a variable first so it is never duplicated.
	if op, ok := call.Operator().(*ast.Var); ok && isCallCC(op.Name, bound) && len(call.Operands()) == 1 {
		emit := func(kname string) ast.Expr {
			return c.cps(call.Operands()[0], bound, metaK{apply: func(vf ast.Expr) ast.Expr {
				v := c.gensym("v")
				k2 := c.gensym("k")
				escape := &ast.Lambda{
					Params: []string{v, k2},
					Body: &ast.Call{Exprs: []ast.Expr{
						&ast.Var{Name: kname},
						&ast.Var{Name: v},
					}},
					Label: c.gensym("escape"),
				}
				return &ast.Call{Exprs: []ast.Expr{vf, escape, &ast.Var{Name: kname}}}
			}})
		}
		if k.varName != "" {
			return emit(k.varName)
		}
		kb := c.gensym("k")
		return &ast.Call{Exprs: []ast.Expr{
			&ast.Lambda{Params: []string{kb}, Body: emit(kb), Label: c.gensym("bind-k")},
			c.reify(k),
		}}
	}

	// Known primitive: stay direct.
	if op, ok := call.Operator().(*ast.Var); ok && isPrimitive(op.Name, bound) {
		return c.cpsArgs(call.Operands(), bound, nil, func(atoms []ast.Expr) ast.Expr {
			return k.apply(&ast.Call{Exprs: append([]ast.Expr{op}, atoms...)})
		})
	}

	// Unknown procedure: convert operator and operands, then emit the call
	// in tail position with the reified continuation as the last argument.
	all := call.Exprs
	return c.cpsArgs(all, bound, nil, func(atoms []ast.Expr) ast.Expr {
		exprs := append(append([]ast.Expr{}, atoms...), c.reify(k))
		return &ast.Call{Exprs: exprs}
	})
}

// etaPrimitive wraps a standard procedure referenced in value position into
// the CPS calling convention:
//
//   - =>  (lambda (a1 a2 k) (k (+ a1 a2)))
//     call/cc => (lambda (f k) (f (lambda (v k2) (k v)) k))
//
// Fixed-arity primitives get exact wrappers. Variadic primitives get binary
// wrappers — Core Scheme's lambdas have fixed arity (Figure 1), and two
// arguments covers the idiomatic fold/compare uses; a production CPS
// compiler would carry a full CPS standard library instead (documented
// limitation, like `apply`).
func (c *Converter) etaPrimitive(name string, bound boundSet) (ast.Expr, bool) {
	if bound[name] {
		return nil, false
	}
	p, ok := prim.Lookup(name)
	if !ok {
		return nil, false
	}
	if p.Spread {
		return nil, false // apply: see package comment
	}
	kv := c.gensym("k")
	if p.CallCC {
		f := c.gensym("f")
		v := c.gensym("v")
		k2 := c.gensym("k")
		escape := &ast.Lambda{
			Params: []string{v, k2},
			Body:   &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: kv}, &ast.Var{Name: v}}},
			Label:  c.gensym("escape"),
		}
		return &ast.Lambda{
			Params: []string{f, kv},
			Body:   &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: f}, escape, &ast.Var{Name: kv}}},
			Label:  c.gensym("callcc-wrapper"),
		}, true
	}
	n := p.Arity
	if n < 0 {
		n = 2
	}
	params := make([]string, 0, n+1)
	inner := []ast.Expr{&ast.Var{Name: name}}
	for i := 0; i < n; i++ {
		a := c.gensym("a")
		params = append(params, a)
		inner = append(inner, &ast.Var{Name: a})
	}
	params = append(params, kv)
	return &ast.Lambda{
		Params: params,
		Body:   &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: kv}, &ast.Call{Exprs: inner}}},
		Label:  c.gensym("prim-wrapper"),
	}, true
}

// cpsArgs converts a sequence of expressions left to right, accumulating
// trivial atoms, and hands the full list to done.
func (c *Converter) cpsArgs(exprs []ast.Expr, bound boundSet, acc []ast.Expr, done func([]ast.Expr) ast.Expr) ast.Expr {
	if len(exprs) == 0 {
		return done(acc)
	}
	return c.cps(exprs[0], bound, metaK{apply: func(atom ast.Expr) ast.Expr {
		return c.cpsArgs(exprs[1:], bound, append(acc, atom), done)
	}})
}
