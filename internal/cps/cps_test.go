package cps_test

import (
	"math/rand"
	"testing"

	"tailspace/internal/ast"
	"tailspace/internal/core"
	"tailspace/internal/corpus"
	"tailspace/internal/cps"
	"tailspace/internal/experiments"
	"tailspace/internal/prim"
	"tailspace/internal/space"
)

// runAST evaluates an already-built Core Scheme expression.
func runAST(t *testing.T, e ast.Expr, variant core.Variant) core.Result {
	t.Helper()
	return core.NewRunner(core.Options{Variant: variant, MaxSteps: 8_000_000}).Run(e)
}

func convert(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := cps.ConvertSource(src)
	if err != nil {
		t.Fatalf("ConvertSource(%q): %v", src, err)
	}
	return e
}

func wantCPSAnswer(t *testing.T, src, want string) {
	t.Helper()
	res := runAST(t, convert(t, src), core.Tail)
	if res.Err != nil {
		t.Fatalf("%q (CPS): %v", src, res.Err)
	}
	if res.Answer != want {
		t.Fatalf("%q (CPS) = %q, want %q", src, res.Answer, want)
	}
}

func TestConvertAtoms(t *testing.T) {
	wantCPSAnswer(t, "42", "42")
	wantCPSAnswer(t, "#t", "#t")
	wantCPSAnswer(t, "'sym", "sym")
}

func TestConvertPrimitiveCalls(t *testing.T) {
	wantCPSAnswer(t, "(+ 1 2)", "3")
	wantCPSAnswer(t, "(* (+ 1 2) (- 10 4))", "18")
	wantCPSAnswer(t, "(cons 1 (cons 2 '()))", "(1 2)")
}

func TestConvertLambdaCalls(t *testing.T) {
	wantCPSAnswer(t, "((lambda (x) x) 7)", "7")
	wantCPSAnswer(t, "((lambda (x y) (- x y)) 10 3)", "7")
	wantCPSAnswer(t, "(((lambda (x) (lambda (y) (+ x y))) 3) 4)", "7")
}

func TestConvertIf(t *testing.T) {
	wantCPSAnswer(t, "(if (< 1 2) 'yes 'no)", "yes")
	wantCPSAnswer(t, "(if (< 2 1) 'yes 'no)", "no")
	// Nested ifs exercise the join points.
	wantCPSAnswer(t, "(if (zero? 0) (if (zero? 1) 1 2) 3)", "2")
}

func TestConvertSet(t *testing.T) {
	wantCPSAnswer(t, "(let ((x 1)) (begin (set! x 42) x))", "42")
}

func TestConvertRecursion(t *testing.T) {
	wantCPSAnswer(t, "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)", "3628800")
	wantCPSAnswer(t, "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 100)", "0")
}

func TestConvertShadowedPrimitive(t *testing.T) {
	// A rebound + is an unknown procedure and must receive a continuation.
	wantCPSAnswer(t, "((lambda (+) (+ 7)) (lambda (x) x))", "7")
}

func TestConvertCallCC(t *testing.T) {
	wantCPSAnswer(t, "(call/cc (lambda (k) (+ 1 (k 42))))", "42")
	wantCPSAnswer(t, "(+ 1 (call/cc (lambda (k) (k 10) 99)))", "11")
	wantCPSAnswer(t, "(call/cc (lambda (k) 7))", "7")
}

// TestCallCCNeedsNoMachineSupport: the converted program contains no
// reference to call/cc at all.
func TestCallCCNeedsNoMachineSupport(t *testing.T) {
	e := convert(t, "(call/cc (lambda (k) (k 1)))")
	ast.Walk(e, func(x ast.Expr) bool {
		if v, ok := x.(*ast.Var); ok {
			if v.Name == "call/cc" || v.Name == "call-with-current-continuation" {
				t.Fatalf("call/cc survived conversion: %s", e)
			}
		}
		return true
	})
}

// TestCPSInvariantOnlyPrimitiveCallsAreNonTail is the [Ste78] property: in
// converted code every call to an unknown (user or continuation) procedure
// sits in tail position; only direct primitive applications may be non-tail.
func TestCPSInvariantOnlyPrimitiveCallsAreNonTail(t *testing.T) {
	for _, p := range corpus.All() {
		e, err := cps.ConvertSource(p.Source)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		info := ast.MarkTails(e)
		ast.Walk(e, func(x ast.Expr) bool {
			call, ok := x.(*ast.Call)
			if !ok || info.IsTail(call) {
				return true
			}
			op, ok := call.Operator().(*ast.Var)
			if !ok {
				t.Errorf("%s: non-tail call with non-variable operator %s", p.Name, call)
				return true
			}
			if _, isPrim := prim.Lookup(op.Name); !isPrim {
				t.Errorf("%s: non-tail call to unknown procedure %s", p.Name, op.Name)
			}
			return true
		})
	}
}

// TestCPSCorrectnessOnCorpus: conversion preserves every corpus answer under
// the properly tail recursive machine.
func TestCPSCorrectnessOnCorpus(t *testing.T) {
	for _, p := range corpus.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if p.Name == "apply-spread" || p.Name == "fold-apply" ||
				p.Name == "metacircular" || p.Name == "metacircular-tail-loop" {
				// `apply` requires the machine's spread support, which direct
				// calls in CPS code cannot route through; a CPS compiler
				// would open-code apply. Documented limitation.
				t.Skip("apply is not CPS-convertible without open-coding")
			}
			e := convert(t, p.Source)
			res := runAST(t, e, core.Tail)
			if res.Err != nil {
				t.Fatalf("CPS run: %v", res.Err)
			}
			if res.Answer != p.Answer {
				t.Fatalf("CPS answer %q, want %q", res.Answer, p.Answer)
			}
		})
	}
}

func TestCPSCorrectnessOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		src := experiments.RandomProgram(r, 4)
		direct, err := core.RunProgram(src, core.Options{Variant: core.Tail, MaxSteps: 500_000})
		if err != nil || direct.Err != nil {
			t.Fatalf("direct %q: %v %v", src, err, direct.Err)
		}
		res := runAST(t, convert(t, src), core.Tail)
		if res.Err != nil {
			t.Fatalf("CPS %q: %v", src, res.Err)
		}
		if res.Answer != direct.Answer {
			t.Fatalf("%q: CPS %q, direct %q", src, res.Answer, direct.Answer)
		}
	}
}

// TestCPSLoopStaysConstantSpace: conversion must not destroy proper tail
// recursion — the countdown loop remains O(1) under Z_tail after CPS.
func TestCPSLoopStaysConstantSpace(t *testing.T) {
	loop := "(define (f n) (if (zero? n) 0 (f (- n 1))))"
	measureCPS := func(n int) int {
		src := loop + "\n(f " + itoa(n) + ")"
		e := convert(t, src)
		res := core.NewRunner(core.Options{
			Variant: core.Tail, Measure: true, FlatOnly: true,
			GCEvery: 1, CostModel: space.Fixnum, MaxSteps: 8_000_000,
		}).Run(e)
		if res.Err != nil {
			t.Fatalf("n=%d: %v", n, res.Err)
		}
		return res.PeakFlat
	}
	small := measureCPS(10)
	large := measureCPS(400)
	// |P| differs by the digits of n only; compare the peaks beyond that.
	if large-small > 4 {
		t.Fatalf("CPS loop must stay constant: S(10)=%d S(400)=%d", small, large)
	}
}

// TestCPSOutputSizeLinear guards against join-point regressions: conversion
// must not blow up nested conditionals.
func TestCPSOutputSizeLinear(t *testing.T) {
	deep := "(define (f x) (cond "
	for i := 0; i < 30; i++ {
		deep += "((= x " + itoa(i) + ") " + itoa(i) + ") "
	}
	deep += "(else -1))) (f 29)"
	e := convert(t, deep)
	if size := e.Size(); size > 3000 {
		t.Fatalf("CPS output blew up: %d nodes", size)
	}
	res := runAST(t, e, core.Tail)
	if res.Err != nil || res.Answer != "29" {
		t.Fatalf("%v %q", res.Err, res.Answer)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
