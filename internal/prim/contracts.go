package prim

import "tailspace/internal/value"

// registerContracts installs the contract combinators. The expander rewrites
// the surface form (-> dom... cod) to a call of %->, so arrow contracts are
// ordinary values on every machine — erasing machines evaluate them and drop
// them, monitor machines wrap procedures in them. The allocated tag location
// gives each arrow contract the identity the space-efficient monitor dedups
// by: a contract built once (at a define/contract) joins with itself across
// every call it guards.
func registerContracts() {
	register(&value.Primop{Name: "%->", Arity: -1,
		Apply: func(st *value.Store, args []value.Value) (value.Value, error) {
			if len(args) < 1 {
				return nil, errf("%->", "needs a codomain contract")
			}
			dom := make([]value.Value, len(args)-1)
			copy(dom, args[:len(args)-1])
			return &value.ArrowContract{
				Tag: st.Alloc(value.Unspecified{}),
				Dom: dom,
				Cod: args[len(args)-1],
			}, nil
		}})

	def("contract?", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		if _, ok := args[0].(*value.ArrowContract); ok {
			return boolVal(true), nil
		}
		return boolVal(value.IsProcedure(args[0])), nil
	})
}
