package prim

import (
	"math/big"
	"testing"

	"tailspace/internal/value"
)

func apply(t *testing.T, name string, args ...value.Value) value.Value {
	t.Helper()
	st := value.NewStore()
	return applyIn(t, st, name, args...)
}

func applyIn(t *testing.T, st *value.Store, name string, args ...value.Value) value.Value {
	t.Helper()
	p, ok := Lookup(name)
	if !ok {
		t.Fatalf("primitive %s not registered", name)
	}
	v, err := p.Apply(st, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func applyErr(t *testing.T, name string, args ...value.Value) error {
	t.Helper()
	st := value.NewStore()
	p, ok := Lookup(name)
	if !ok {
		t.Fatalf("primitive %s not registered", name)
	}
	_, err := p.Apply(st, args)
	if err == nil {
		t.Fatalf("%s: expected error", name)
	}
	return err
}

func num(v int64) value.Num { return value.NewNum(v) }

func wantInt(t *testing.T, v value.Value, want int64) {
	t.Helper()
	n, ok := v.(value.Num)
	if !ok {
		t.Fatalf("got %T, want Num", v)
	}
	if n.Int.Int64() != want {
		t.Fatalf("got %v, want %d", n.Int, want)
	}
}

func wantBool(t *testing.T, v value.Value, want bool) {
	t.Helper()
	b, ok := v.(value.Bool)
	if !ok || bool(b) != want {
		t.Fatalf("got %#v, want %v", v, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantInt(t, apply(t, "+"), 0)
	wantInt(t, apply(t, "+", num(1), num(2), num(3)), 6)
	wantInt(t, apply(t, "-", num(10), num(3)), 7)
	wantInt(t, apply(t, "-", num(5)), -5)
	wantInt(t, apply(t, "*", num(4), num(5)), 20)
	wantInt(t, apply(t, "*"), 1)
	wantInt(t, apply(t, "quotient", num(17), num(5)), 3)
	wantInt(t, apply(t, "remainder", num(17), num(5)), 2)
	wantInt(t, apply(t, "remainder", num(-17), num(5)), -2)
	wantInt(t, apply(t, "modulo", num(-17), num(5)), 3)
	wantInt(t, apply(t, "modulo", num(17), num(-5)), -3)
	wantInt(t, apply(t, "abs", num(-9)), 9)
	wantInt(t, apply(t, "expt", num(2), num(10)), 1024)
	wantInt(t, apply(t, "min", num(3), num(1), num(2)), 1)
	wantInt(t, apply(t, "max", num(3), num(7), num(2)), 7)
}

func TestBignumArithmetic(t *testing.T) {
	big1, _ := new(big.Int).SetString("99999999999999999999999999", 10)
	v := apply(t, "*", value.Num{Int: big1}, value.Num{Int: big1})
	n := v.(value.Num)
	want := new(big.Int).Mul(big1, big1)
	if n.Int.Cmp(want) != 0 {
		t.Fatalf("got %v", n.Int)
	}
}

func TestDivisionByZero(t *testing.T) {
	applyErr(t, "quotient", num(1), num(0))
	applyErr(t, "remainder", num(1), num(0))
	applyErr(t, "modulo", num(1), num(0))
}

func TestComparisons(t *testing.T) {
	wantBool(t, apply(t, "=", num(2), num(2), num(2)), true)
	wantBool(t, apply(t, "=", num(2), num(3)), false)
	wantBool(t, apply(t, "<", num(1), num(2), num(3)), true)
	wantBool(t, apply(t, "<", num(1), num(3), num(2)), false)
	wantBool(t, apply(t, ">", num(3), num(2)), true)
	wantBool(t, apply(t, "<=", num(2), num(2)), true)
	wantBool(t, apply(t, ">=", num(2), num(3)), false)
}

func TestNumericPredicates(t *testing.T) {
	wantBool(t, apply(t, "zero?", num(0)), true)
	wantBool(t, apply(t, "zero?", num(1)), false)
	wantBool(t, apply(t, "positive?", num(5)), true)
	wantBool(t, apply(t, "negative?", num(-5)), true)
	wantBool(t, apply(t, "even?", num(4)), true)
	wantBool(t, apply(t, "odd?", num(4)), false)
}

func TestTypePredicates(t *testing.T) {
	st := value.NewStore()
	pair := consOf(st, num(1), value.Null{})
	wantBool(t, applyIn(t, st, "pair?", pair), true)
	wantBool(t, applyIn(t, st, "null?", value.Null{}), true)
	wantBool(t, applyIn(t, st, "null?", pair), false)
	wantBool(t, applyIn(t, st, "number?", num(3)), true)
	wantBool(t, applyIn(t, st, "symbol?", value.Sym("a")), true)
	wantBool(t, applyIn(t, st, "string?", value.Str("s")), true)
	wantBool(t, applyIn(t, st, "char?", value.Char('c')), true)
	wantBool(t, applyIn(t, st, "boolean?", value.Bool(true)), true)
	wantBool(t, applyIn(t, st, "vector?", value.Vector{}), true)
	p, _ := Lookup("+")
	wantBool(t, applyIn(t, st, "procedure?", p), true)
}

func TestNot(t *testing.T) {
	wantBool(t, apply(t, "not", value.Bool(false)), true)
	wantBool(t, apply(t, "not", num(0)), false)
}

func TestConsCarCdr(t *testing.T) {
	st := value.NewStore()
	p := applyIn(t, st, "cons", num(1), num(2))
	wantInt(t, applyIn(t, st, "car", p), 1)
	wantInt(t, applyIn(t, st, "cdr", p), 2)
}

func TestSetCarCdr(t *testing.T) {
	st := value.NewStore()
	p := applyIn(t, st, "cons", num(1), num(2))
	applyIn(t, st, "set-car!", p, num(10))
	applyIn(t, st, "set-cdr!", p, num(20))
	wantInt(t, applyIn(t, st, "car", p), 10)
	wantInt(t, applyIn(t, st, "cdr", p), 20)
}

func TestCxrCompositions(t *testing.T) {
	st := value.NewStore()
	l := applyIn(t, st, "list", num(1), num(2), num(3), num(4))
	wantInt(t, applyIn(t, st, "cadr", l), 2)
	wantInt(t, applyIn(t, st, "caddr", l), 3)
	wantInt(t, applyIn(t, st, "cadddr", l), 4)
	inner := applyIn(t, st, "cons", applyIn(t, st, "cons", num(7), num(8)), num(9))
	wantInt(t, applyIn(t, st, "caar", inner), 7)
	wantInt(t, applyIn(t, st, "cdar", inner), 8)
}

func TestListLengthRef(t *testing.T) {
	st := value.NewStore()
	l := applyIn(t, st, "list", num(10), num(20), num(30))
	wantInt(t, applyIn(t, st, "length", l), 3)
	wantInt(t, applyIn(t, st, "list-ref", l, num(0)), 10)
	wantInt(t, applyIn(t, st, "list-ref", l, num(2)), 30)
	wantInt(t, applyIn(t, st, "length", value.Null{}), 0)
}

func TestListTail(t *testing.T) {
	st := value.NewStore()
	l := applyIn(t, st, "list", num(1), num(2), num(3))
	tail := applyIn(t, st, "list-tail", l, num(2))
	wantInt(t, applyIn(t, st, "car", tail), 3)
}

func TestAppendReverse(t *testing.T) {
	st := value.NewStore()
	a := applyIn(t, st, "list", num(1), num(2))
	b := applyIn(t, st, "list", num(3))
	ab := applyIn(t, st, "append", a, b)
	wantInt(t, applyIn(t, st, "length", ab), 3)
	wantInt(t, applyIn(t, st, "list-ref", ab, num(2)), 3)
	r := applyIn(t, st, "reverse", ab)
	wantInt(t, applyIn(t, st, "list-ref", r, num(0)), 3)
	if _, ok := applyIn(t, st, "append").(value.Null); !ok {
		t.Fatal("(append) should be ()")
	}
}

func TestMemv(t *testing.T) {
	st := value.NewStore()
	l := applyIn(t, st, "list", num(1), num(2), num(3))
	hit := applyIn(t, st, "memv", num(2), l)
	wantInt(t, applyIn(t, st, "car", hit), 2)
	wantBool(t, applyIn(t, st, "memv", num(9), l), false)
}

func TestAssv(t *testing.T) {
	st := value.NewStore()
	e1 := applyIn(t, st, "cons", num(1), value.Sym("one"))
	e2 := applyIn(t, st, "cons", num(2), value.Sym("two"))
	al := applyIn(t, st, "list", e1, e2)
	hit := applyIn(t, st, "assv", num(2), al)
	if s, ok := applyIn(t, st, "cdr", hit).(value.Sym); !ok || s != "two" {
		t.Fatalf("got %#v", hit)
	}
	wantBool(t, applyIn(t, st, "assv", num(3), al), false)
}

func TestVectorOps(t *testing.T) {
	st := value.NewStore()
	v := applyIn(t, st, "make-vector", num(3))
	wantInt(t, applyIn(t, st, "vector-length", v), 3)
	wantInt(t, applyIn(t, st, "vector-ref", v, num(0)), 0)
	applyIn(t, st, "vector-set!", v, num(1), num(99))
	wantInt(t, applyIn(t, st, "vector-ref", v, num(1)), 99)
	applyIn(t, st, "vector-fill!", v, num(7))
	wantInt(t, applyIn(t, st, "vector-ref", v, num(2)), 7)
}

func TestMakeVectorWithFill(t *testing.T) {
	st := value.NewStore()
	v := applyIn(t, st, "make-vector", num(2), value.Sym("x"))
	if s, ok := applyIn(t, st, "vector-ref", v, num(1)).(value.Sym); !ok || s != "x" {
		t.Fatal("fill value lost")
	}
}

func TestVectorListConversions(t *testing.T) {
	st := value.NewStore()
	v := applyIn(t, st, "vector", num(1), num(2))
	l := applyIn(t, st, "vector->list", v)
	wantInt(t, applyIn(t, st, "length", l), 2)
	v2 := applyIn(t, st, "list->vector", l)
	wantInt(t, applyIn(t, st, "vector-ref", v2, num(0)), 1)
}

func TestVectorErrors(t *testing.T) {
	applyErr(t, "vector-ref", value.Vector{}, num(0))
	applyErr(t, "make-vector", num(-1))
	applyErr(t, "vector-length", num(3))
}

func TestEqv(t *testing.T) {
	st := value.NewStore()
	wantBool(t, applyIn(t, st, "eqv?", num(3), num(3)), true)
	wantBool(t, applyIn(t, st, "eqv?", value.Sym("a"), value.Sym("a")), true)
	wantBool(t, applyIn(t, st, "eqv?", value.Sym("a"), value.Sym("b")), false)
	p1 := applyIn(t, st, "cons", num(1), num(2))
	p2 := applyIn(t, st, "cons", num(1), num(2))
	wantBool(t, applyIn(t, st, "eqv?", p1, p2), false)
	wantBool(t, applyIn(t, st, "eqv?", p1, p1), true)
}

func TestEqual(t *testing.T) {
	st := value.NewStore()
	p1 := applyIn(t, st, "list", num(1), applyIn(t, st, "list", num(2)))
	p2 := applyIn(t, st, "list", num(1), applyIn(t, st, "list", num(2)))
	wantBool(t, applyIn(t, st, "equal?", p1, p2), true)
	p3 := applyIn(t, st, "list", num(1), num(3))
	wantBool(t, applyIn(t, st, "equal?", p1, p3), false)
}

func TestEqualOnCycle(t *testing.T) {
	st := value.NewStore()
	p := applyIn(t, st, "cons", num(1), value.Null{})
	applyIn(t, st, "set-cdr!", p, p) // cycle
	// Must terminate.
	applyIn(t, st, "equal?", p, p)
}

func TestRandomDeterministicAndBounded(t *testing.T) {
	st := value.NewStore()
	for i := 0; i < 50; i++ {
		v := applyIn(t, st, "random", num(10))
		n := v.(value.Num).Int.Int64()
		if n < 0 || n >= 10 {
			t.Fatalf("random out of range: %d", n)
		}
	}
	applyErr(t, "random", num(0))
}

func TestUndefPrimitive(t *testing.T) {
	v := apply(t, "%undef")
	if _, ok := v.(value.Undefined); !ok {
		t.Fatalf("got %T", v)
	}
}

func TestCallCCFlag(t *testing.T) {
	for _, name := range []string{"call-with-current-continuation", "call/cc"} {
		p, ok := Lookup(name)
		if !ok || !p.CallCC {
			t.Fatalf("%s must be registered with the CallCC flag", name)
		}
	}
}

func TestErrorPrimitive(t *testing.T) {
	err := applyErr(t, "error", value.Str("boom"))
	if err.Error() != "error: boom" {
		t.Fatalf("got %q", err.Error())
	}
}

func TestGlobalBindsEverything(t *testing.T) {
	rho, st := Global()
	if rho.Size() != len(Names()) {
		t.Fatalf("rho0 has %d bindings, want %d", rho.Size(), len(Names()))
	}
	loc, ok := rho.Lookup("+")
	if !ok {
		t.Fatal("+ unbound in rho0")
	}
	v, ok := st.Get(loc)
	if !ok {
		t.Fatal("+ location missing from sigma0")
	}
	if p, ok := v.(*value.Primop); !ok || p.Name != "+" {
		t.Fatalf("got %#v", v)
	}
}

func TestTypeErrors(t *testing.T) {
	applyErr(t, "+", value.Sym("x"))
	applyErr(t, "car", num(1))
	applyErr(t, "length", num(1))
	applyErr(t, "list-ref", value.Null{}, num(0))
	applyErr(t, "<", num(1))
}
