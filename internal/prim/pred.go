package prim

import (
	"tailspace/internal/env"
	"tailspace/internal/value"
)

func registerPredicates() {
	def("not", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		return boolVal(!value.Truthy(args[0])), nil
	})

	typePred := func(name string, ok func(value.Value) bool) {
		def(name, 1, func(st *value.Store, args []value.Value) (value.Value, error) {
			return boolVal(ok(args[0])), nil
		})
	}
	typePred("null?", func(v value.Value) bool { _, ok := v.(value.Null); return ok })
	typePred("pair?", func(v value.Value) bool { _, ok := v.(value.Pair); return ok })
	typePred("number?", func(v value.Value) bool { _, ok := v.(value.Num); return ok })
	typePred("integer?", func(v value.Value) bool { _, ok := v.(value.Num); return ok })
	typePred("symbol?", func(v value.Value) bool { _, ok := v.(value.Sym); return ok })
	typePred("string?", func(v value.Value) bool { _, ok := v.(value.Str); return ok })
	typePred("char?", func(v value.Value) bool { _, ok := v.(value.Char); return ok })
	typePred("boolean?", func(v value.Value) bool { _, ok := v.(value.Bool); return ok })
	typePred("vector?", func(v value.Value) bool { _, ok := v.(value.Vector); return ok })
	typePred("procedure?", value.IsProcedure)

	def("eq?", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		return boolVal(eqv(args[0], args[1])), nil
	})
	def("eqv?", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		return boolVal(eqv(args[0], args[1])), nil
	})
	def("equal?", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		return boolVal(equalValues(st, args[0], args[1])), nil
	})
}

// eqv implements eqv? (and eq?, which we give the same, permitted,
// behaviour): identity for allocated objects, value equality for atoms.
// The closure tag location α — "a bug in the design of Scheme requires that
// a location α be allocated to tag the closure [Ram94]" — is exactly what
// gives closures their identity here.
func eqv(a, b value.Value) bool {
	switch x := a.(type) {
	case value.Bool:
		y, ok := b.(value.Bool)
		return ok && x == y
	case value.Num:
		y, ok := b.(value.Num)
		return ok && x.Int.Cmp(y.Int) == 0
	case value.Sym:
		y, ok := b.(value.Sym)
		return ok && x == y
	case value.Char:
		y, ok := b.(value.Char)
		return ok && x == y
	case value.Null:
		_, ok := b.(value.Null)
		return ok
	case value.Str:
		y, ok := b.(value.Str)
		return ok && x == y
	case value.Unspecified:
		_, ok := b.(value.Unspecified)
		return ok
	case value.Undefined:
		_, ok := b.(value.Undefined)
		return ok
	case value.Pair:
		y, ok := b.(value.Pair)
		return ok && x.CarLoc == y.CarLoc && x.CdrLoc == y.CdrLoc
	case value.Vector:
		y, ok := b.(value.Vector)
		if !ok || len(x.ElemLocs) != len(y.ElemLocs) {
			return false
		}
		if len(x.ElemLocs) == 0 {
			return true
		}
		return x.ElemLocs[0] == y.ElemLocs[0]
	case value.Closure:
		y, ok := b.(value.Closure)
		return ok && x.Tag == y.Tag
	case value.Escape:
		y, ok := b.(value.Escape)
		return ok && x.Tag == y.Tag
	case *value.Primop:
		y, ok := b.(*value.Primop)
		return ok && x == y
	case value.Guarded:
		y, ok := b.(value.Guarded)
		return ok && x.Tag == y.Tag
	case *value.ArrowContract:
		y, ok := b.(*value.ArrowContract)
		return ok && x.Tag == y.Tag
	}
	return false
}

// equalValues implements equal? between two values in st.
func equalValues(st *value.Store, a, b value.Value) bool {
	return structurallyEqual(st, a, b, make(map[[2]env.Location]bool))
}

// structurallyEqual implements equal?: recursive structural comparison
// through the store. The seen set guards against cyclic structures.
func structurallyEqual(st *value.Store, a, b value.Value, seen map[[2]env.Location]bool) bool {
	if pa, ok := a.(value.Pair); ok {
		pb, ok := b.(value.Pair)
		if !ok {
			return false
		}
		key := [2]env.Location{pa.CarLoc, pb.CarLoc}
		if seen[key] {
			return true
		}
		seen[key] = true
		ca, _ := st.Get(pa.CarLoc)
		cb, _ := st.Get(pb.CarLoc)
		da, _ := st.Get(pa.CdrLoc)
		db, _ := st.Get(pb.CdrLoc)
		return structurallyEqual(st, ca, cb, seen) && structurallyEqual(st, da, db, seen)
	}
	if va, ok := a.(value.Vector); ok {
		vb, ok := b.(value.Vector)
		if !ok || len(va.ElemLocs) != len(vb.ElemLocs) {
			return false
		}
		for i := range va.ElemLocs {
			key := [2]env.Location{va.ElemLocs[i], vb.ElemLocs[i]}
			if seen[key] {
				continue
			}
			seen[key] = true
			ea, _ := st.Get(va.ElemLocs[i])
			eb, _ := st.Get(vb.ElemLocs[i])
			if !structurallyEqual(st, ea, eb, seen) {
				return false
			}
		}
		return true
	}
	return eqv(a, b)
}
