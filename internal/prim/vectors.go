package prim

import (
	"math/big"

	"tailspace/internal/env"
	"tailspace/internal/value"
)

func registerVectors() {
	def("vector", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		return value.Vector{ElemLocs: st.AllocN(args)}, nil
	})

	def("make-vector", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, errf("make-vector", "takes a length and an optional fill")
		}
		n, err := wantNum("make-vector", args[0])
		if err != nil {
			return nil, err
		}
		if n.Int.Sign() < 0 || !n.Int.IsInt64() || n.Int.Int64() > 1<<26 {
			return nil, errf("make-vector", "bad length %s", n.Int)
		}
		var fill value.Value = value.Num{Int: big.NewInt(0)}
		if len(args) == 2 {
			fill = args[1]
		}
		size := int(n.Int.Int64())
		locs := make([]env.Location, size)
		for i := range locs {
			locs[i] = st.Alloc(fill)
		}
		return value.Vector{ElemLocs: locs}, nil
	})

	def("vector-length", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		v, err := wantVector("vector-length", args[0])
		if err != nil {
			return nil, err
		}
		return value.NewNum(int64(len(v.ElemLocs))), nil
	})

	def("vector-ref", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		v, err := wantVector("vector-ref", args[0])
		if err != nil {
			return nil, err
		}
		i, err := wantIndex("vector-ref", args[1], len(v.ElemLocs))
		if err != nil {
			return nil, err
		}
		el, ok := st.Get(v.ElemLocs[i])
		if !ok {
			return nil, errf("vector-ref", "dangling element location")
		}
		return el, nil
	})

	def("vector-set!", 3, func(st *value.Store, args []value.Value) (value.Value, error) {
		v, err := wantVector("vector-set!", args[0])
		if err != nil {
			return nil, err
		}
		i, err := wantIndex("vector-set!", args[1], len(v.ElemLocs))
		if err != nil {
			return nil, err
		}
		if !st.Set(v.ElemLocs[i], args[2]) {
			return nil, errf("vector-set!", "dangling element location")
		}
		return value.Unspecified{}, nil
	})

	def("vector-fill!", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		v, err := wantVector("vector-fill!", args[0])
		if err != nil {
			return nil, err
		}
		for _, l := range v.ElemLocs {
			if !st.Set(l, args[1]) {
				return nil, errf("vector-fill!", "dangling element location")
			}
		}
		return value.Unspecified{}, nil
	})

	def("vector->list", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		v, err := wantVector("vector->list", args[0])
		if err != nil {
			return nil, err
		}
		items := make([]value.Value, len(v.ElemLocs))
		for i, l := range v.ElemLocs {
			el, ok := st.Get(l)
			if !ok {
				return nil, errf("vector->list", "dangling element location")
			}
			items[i] = el
		}
		return listOf(st, items), nil
	})

	def("list->vector", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		items, ok := elements(st, args[0])
		if !ok {
			return nil, errf("list->vector", "not a proper list")
		}
		return value.Vector{ElemLocs: st.AllocN(items)}, nil
	})
}
