package prim

import (
	"math/big"
	"strings"

	"tailspace/internal/value"
)

func wantStr(name string, v value.Value) (value.Str, error) {
	s, ok := v.(value.Str)
	if !ok {
		return "", errf(name, "expected a string, got %T", v)
	}
	return s, nil
}

func wantChar(name string, v value.Value) (value.Char, error) {
	c, ok := v.(value.Char)
	if !ok {
		return 0, errf(name, "expected a character, got %T", v)
	}
	return c, nil
}

func wantSym(name string, v value.Value) (value.Sym, error) {
	s, ok := v.(value.Sym)
	if !ok {
		return "", errf(name, "expected a symbol, got %T", v)
	}
	return s, nil
}

func registerStrings() {
	def("string-length", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		s, err := wantStr("string-length", args[0])
		if err != nil {
			return nil, err
		}
		return value.NewNum(int64(len([]rune(string(s))))), nil
	})

	def("string-ref", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		s, err := wantStr("string-ref", args[0])
		if err != nil {
			return nil, err
		}
		runes := []rune(string(s))
		i, err := wantIndex("string-ref", args[1], len(runes))
		if err != nil {
			return nil, err
		}
		return value.Char(runes[i]), nil
	})

	def("string-append", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		var sb strings.Builder
		for _, a := range args {
			s, err := wantStr("string-append", a)
			if err != nil {
				return nil, err
			}
			sb.WriteString(string(s))
		}
		return value.Str(sb.String()), nil
	})

	def("substring", 3, func(st *value.Store, args []value.Value) (value.Value, error) {
		s, err := wantStr("substring", args[0])
		if err != nil {
			return nil, err
		}
		runes := []rune(string(s))
		from, err := wantIndex("substring", args[1], len(runes)+1)
		if err != nil {
			return nil, err
		}
		to, err := wantIndex("substring", args[2], len(runes)+1)
		if err != nil {
			return nil, err
		}
		if from > to {
			return nil, errf("substring", "start %d after end %d", from, to)
		}
		return value.Str(string(runes[from:to])), nil
	})

	strCompare := func(name string, ok func(int) bool) {
		def(name, 2, func(st *value.Store, args []value.Value) (value.Value, error) {
			a, err := wantStr(name, args[0])
			if err != nil {
				return nil, err
			}
			b, err := wantStr(name, args[1])
			if err != nil {
				return nil, err
			}
			return boolVal(ok(strings.Compare(string(a), string(b)))), nil
		})
	}
	strCompare("string=?", func(c int) bool { return c == 0 })
	strCompare("string<?", func(c int) bool { return c < 0 })
	strCompare("string>?", func(c int) bool { return c > 0 })
	strCompare("string<=?", func(c int) bool { return c <= 0 })
	strCompare("string>=?", func(c int) bool { return c >= 0 })

	def("string->symbol", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		s, err := wantStr("string->symbol", args[0])
		if err != nil {
			return nil, err
		}
		return value.Sym(string(s)), nil
	})

	def("symbol->string", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		s, err := wantSym("symbol->string", args[0])
		if err != nil {
			return nil, err
		}
		return value.Str(string(s)), nil
	})

	def("string->list", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		s, err := wantStr("string->list", args[0])
		if err != nil {
			return nil, err
		}
		items := make([]value.Value, 0, len(s))
		for _, r := range string(s) {
			items = append(items, value.Char(r))
		}
		return listOf(st, items), nil
	})

	def("list->string", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		items, ok := elements(st, args[0])
		if !ok {
			return nil, errf("list->string", "not a proper list")
		}
		var sb strings.Builder
		for _, it := range items {
			c, err := wantChar("list->string", it)
			if err != nil {
				return nil, err
			}
			sb.WriteRune(rune(c))
		}
		return value.Str(sb.String()), nil
	})

	def("number->string", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("number->string", args[0])
		if err != nil {
			return nil, err
		}
		return value.Str(n.Int.String()), nil
	})

	def("string->number", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		s, err := wantStr("string->number", args[0])
		if err != nil {
			return nil, err
		}
		n, ok := new(big.Int).SetString(string(s), 10)
		if !ok {
			return boolVal(false), nil
		}
		return value.Num{Int: n}, nil
	})

	def("char->integer", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		c, err := wantChar("char->integer", args[0])
		if err != nil {
			return nil, err
		}
		return value.NewNum(int64(c)), nil
	})

	def("integer->char", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("integer->char", args[0])
		if err != nil {
			return nil, err
		}
		if !n.Int.IsInt64() || n.Int.Int64() < 0 || n.Int.Int64() > 0x10FFFF {
			return nil, errf("integer->char", "code point out of range")
		}
		return value.Char(rune(n.Int.Int64())), nil
	})

	charCompare := func(name string, ok func(int) bool) {
		def(name, 2, func(st *value.Store, args []value.Value) (value.Value, error) {
			a, err := wantChar(name, args[0])
			if err != nil {
				return nil, err
			}
			b, err := wantChar(name, args[1])
			if err != nil {
				return nil, err
			}
			cmp := 0
			if a < b {
				cmp = -1
			} else if a > b {
				cmp = 1
			}
			return boolVal(ok(cmp)), nil
		})
	}
	charCompare("char=?", func(c int) bool { return c == 0 })
	charCompare("char<?", func(c int) bool { return c < 0 })
	charCompare("char>?", func(c int) bool { return c > 0 })

	def("gcd", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		acc := new(big.Int)
		for _, a := range args {
			n, err := wantNum("gcd", a)
			if err != nil {
				return nil, err
			}
			acc.GCD(nil, nil, acc, new(big.Int).Abs(n.Int))
		}
		return value.Num{Int: acc}, nil
	})

	def("lcm", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		acc := big.NewInt(1)
		for _, a := range args {
			n, err := wantNum("lcm", a)
			if err != nil {
				return nil, err
			}
			abs := new(big.Int).Abs(n.Int)
			if abs.Sign() == 0 {
				return value.NewNum(0), nil
			}
			g := new(big.Int).GCD(nil, nil, acc, abs)
			acc.Div(acc.Mul(acc, abs), g)
		}
		return value.Num{Int: acc}, nil
	})
}
