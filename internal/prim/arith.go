package prim

import (
	"math/big"

	"tailspace/internal/value"
)

func registerArith() {
	def("+", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		sum := new(big.Int)
		for _, a := range args {
			n, err := wantNum("+", a)
			if err != nil {
				return nil, err
			}
			sum.Add(sum, n.Int)
		}
		return value.Num{Int: sum}, nil
	})

	def("-", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		if len(args) == 0 {
			return nil, errf("-", "needs at least one argument")
		}
		first, err := wantNum("-", args[0])
		if err != nil {
			return nil, err
		}
		if len(args) == 1 {
			return value.Num{Int: new(big.Int).Neg(first.Int)}, nil
		}
		acc := new(big.Int).Set(first.Int)
		for _, a := range args[1:] {
			n, err := wantNum("-", a)
			if err != nil {
				return nil, err
			}
			acc.Sub(acc, n.Int)
		}
		return value.Num{Int: acc}, nil
	})

	def("*", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		prod := big.NewInt(1)
		for _, a := range args {
			n, err := wantNum("*", a)
			if err != nil {
				return nil, err
			}
			prod.Mul(prod, n.Int)
		}
		return value.Num{Int: prod}, nil
	})

	def("quotient", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		a, err := wantNum("quotient", args[0])
		if err != nil {
			return nil, err
		}
		b, err := wantNum("quotient", args[1])
		if err != nil {
			return nil, err
		}
		if b.Int.Sign() == 0 {
			return nil, errf("quotient", "division by zero")
		}
		return value.Num{Int: new(big.Int).Quo(a.Int, b.Int)}, nil
	})

	def("remainder", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		a, err := wantNum("remainder", args[0])
		if err != nil {
			return nil, err
		}
		b, err := wantNum("remainder", args[1])
		if err != nil {
			return nil, err
		}
		if b.Int.Sign() == 0 {
			return nil, errf("remainder", "division by zero")
		}
		return value.Num{Int: new(big.Int).Rem(a.Int, b.Int)}, nil
	})

	def("modulo", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		a, err := wantNum("modulo", args[0])
		if err != nil {
			return nil, err
		}
		b, err := wantNum("modulo", args[1])
		if err != nil {
			return nil, err
		}
		if b.Int.Sign() == 0 {
			return nil, errf("modulo", "division by zero")
		}
		m := new(big.Int).Mod(a.Int, b.Int) // Go's Mod is Euclidean for positive divisors
		if m.Sign() != 0 && (m.Sign() < 0) != (b.Int.Sign() < 0) {
			m.Add(m, b.Int)
		}
		return value.Num{Int: m}, nil
	})

	def("abs", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("abs", args[0])
		if err != nil {
			return nil, err
		}
		return value.Num{Int: new(big.Int).Abs(n.Int)}, nil
	})

	def("expt", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		a, err := wantNum("expt", args[0])
		if err != nil {
			return nil, err
		}
		b, err := wantNum("expt", args[1])
		if err != nil {
			return nil, err
		}
		if b.Int.Sign() < 0 || !b.Int.IsInt64() {
			return nil, errf("expt", "exponent must be a small non-negative integer")
		}
		return value.Num{Int: new(big.Int).Exp(a.Int, b.Int, nil)}, nil
	})

	compare := func(name string, ok func(cmp int) bool) {
		def(name, -1, func(st *value.Store, args []value.Value) (value.Value, error) {
			if len(args) < 2 {
				return nil, errf(name, "needs at least two arguments")
			}
			prev, err := wantNum(name, args[0])
			if err != nil {
				return nil, err
			}
			for _, a := range args[1:] {
				n, err := wantNum(name, a)
				if err != nil {
					return nil, err
				}
				if !ok(prev.Int.Cmp(n.Int)) {
					return boolVal(false), nil
				}
				prev = n
			}
			return boolVal(true), nil
		})
	}
	compare("=", func(c int) bool { return c == 0 })
	compare("<", func(c int) bool { return c < 0 })
	compare(">", func(c int) bool { return c > 0 })
	compare("<=", func(c int) bool { return c <= 0 })
	compare(">=", func(c int) bool { return c >= 0 })

	def("zero?", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("zero?", args[0])
		if err != nil {
			return nil, err
		}
		return boolVal(n.Int.Sign() == 0), nil
	})

	def("positive?", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("positive?", args[0])
		if err != nil {
			return nil, err
		}
		return boolVal(n.Int.Sign() > 0), nil
	})

	def("negative?", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("negative?", args[0])
		if err != nil {
			return nil, err
		}
		return boolVal(n.Int.Sign() < 0), nil
	})

	def("even?", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("even?", args[0])
		if err != nil {
			return nil, err
		}
		return boolVal(n.Int.Bit(0) == 0), nil
	})

	def("odd?", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("odd?", args[0])
		if err != nil {
			return nil, err
		}
		return boolVal(n.Int.Bit(0) == 1), nil
	})

	def("min", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		return extremum("min", args, func(c int) bool { return c < 0 })
	})
	def("max", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		return extremum("max", args, func(c int) bool { return c > 0 })
	})

	def("random", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("random", args[0])
		if err != nil {
			return nil, err
		}
		if n.Int.Sign() <= 0 || !n.Int.IsInt64() {
			return nil, errf("random", "bound must be a positive fixnum")
		}
		return value.NewNum(st.Rand.Int63n(n.Int.Int64())), nil
	})
}

func extremum(name string, args []value.Value, better func(cmp int) bool) (value.Value, error) {
	if len(args) == 0 {
		return nil, errf(name, "needs at least one argument")
	}
	best, err := wantNum(name, args[0])
	if err != nil {
		return nil, err
	}
	for _, a := range args[1:] {
		n, err := wantNum(name, a)
		if err != nil {
			return nil, err
		}
		if better(n.Int.Cmp(best.Int)) {
			best = n
		}
	}
	return best, nil
}
