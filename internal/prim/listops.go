package prim

import (
	"tailspace/internal/value"
)

// consOf allocates a fresh pair holding car and cdr.
func consOf(st *value.Store, car, cdr value.Value) value.Pair {
	return value.Pair{CarLoc: st.Alloc(car), CdrLoc: st.Alloc(cdr)}
}

// listOf allocates a proper list of the given values.
func listOf(st *value.Store, items []value.Value) value.Value {
	var out value.Value = value.Null{}
	for i := len(items) - 1; i >= 0; i-- {
		out = consOf(st, items[i], out)
	}
	return out
}

// ListElements walks a proper list, returning its values; ok is false for an
// improper or cyclic "list". The machine uses it to spread `apply`'s last
// argument.
func ListElements(st *value.Store, v value.Value) ([]value.Value, bool) {
	return elements(st, v)
}

// elements walks a proper list, returning its values; ok is false for an
// improper or cyclic "list".
func elements(st *value.Store, v value.Value) (items []value.Value, ok bool) {
	steps := 0
	for {
		switch x := v.(type) {
		case value.Null:
			return items, true
		case value.Pair:
			car, found := st.Get(x.CarLoc)
			if !found {
				return nil, false
			}
			items = append(items, car)
			cdr, found := st.Get(x.CdrLoc)
			if !found {
				return nil, false
			}
			v = cdr
			steps++
			if steps > st.Size()+1 {
				return nil, false // cyclic
			}
		default:
			return nil, false
		}
	}
}

func registerLists() {
	def("cons", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		return consOf(st, args[0], args[1]), nil
	})

	def("car", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		p, err := wantPair("car", args[0])
		if err != nil {
			return nil, err
		}
		v, ok := st.Get(p.CarLoc)
		if !ok {
			return nil, errf("car", "dangling car location")
		}
		return v, nil
	})

	def("cdr", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		p, err := wantPair("cdr", args[0])
		if err != nil {
			return nil, err
		}
		v, ok := st.Get(p.CdrLoc)
		if !ok {
			return nil, errf("cdr", "dangling cdr location")
		}
		return v, nil
	})

	def("set-car!", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		p, err := wantPair("set-car!", args[0])
		if err != nil {
			return nil, err
		}
		if !st.Set(p.CarLoc, args[1]) {
			return nil, errf("set-car!", "dangling car location")
		}
		return value.Unspecified{}, nil
	})

	def("set-cdr!", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		p, err := wantPair("set-cdr!", args[0])
		if err != nil {
			return nil, err
		}
		if !st.Set(p.CdrLoc, args[1]) {
			return nil, errf("set-cdr!", "dangling cdr location")
		}
		return value.Unspecified{}, nil
	})

	// Compositions caar...cdddr used by the corpus.
	access := func(name, path string) {
		def(name, 1, func(st *value.Store, args []value.Value) (value.Value, error) {
			v := args[0]
			// Apply the path right-to-left: (cadr x) = (car (cdr x)).
			for i := len(path) - 1; i >= 0; i-- {
				p, err := wantPair(name, v)
				if err != nil {
					return nil, err
				}
				var loc = p.CdrLoc
				if path[i] == 'a' {
					loc = p.CarLoc
				}
				next, ok := st.Get(loc)
				if !ok {
					return nil, errf(name, "dangling location")
				}
				v = next
			}
			return v, nil
		})
	}
	access("caar", "aa")
	access("cadr", "ad")
	access("cdar", "da")
	access("cddr", "dd")
	access("caddr", "add")
	access("cadddr", "addd")

	def("list", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		return listOf(st, args), nil
	})

	def("length", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		items, ok := elements(st, args[0])
		if !ok {
			return nil, errf("length", "not a proper list")
		}
		return value.NewNum(int64(len(items))), nil
	})

	def("list-ref", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		items, ok := elements(st, args[0])
		if !ok {
			return nil, errf("list-ref", "not a proper list")
		}
		i, err := wantIndex("list-ref", args[1], len(items))
		if err != nil {
			return nil, err
		}
		return items[i], nil
	})

	def("list-tail", 2, func(st *value.Store, args []value.Value) (value.Value, error) {
		n, err := wantNum("list-tail", args[1])
		if err != nil {
			return nil, err
		}
		if !n.Int.IsInt64() || n.Int.Sign() < 0 {
			return nil, errf("list-tail", "bad index")
		}
		v := args[0]
		for i := int64(0); i < n.Int.Int64(); i++ {
			p, err := wantPair("list-tail", v)
			if err != nil {
				return nil, err
			}
			next, ok := st.Get(p.CdrLoc)
			if !ok {
				return nil, errf("list-tail", "dangling location")
			}
			v = next
		}
		return v, nil
	})

	def("append", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		if len(args) == 0 {
			return value.Null{}, nil
		}
		var all []value.Value
		for _, a := range args[:len(args)-1] {
			items, ok := elements(st, a)
			if !ok {
				return nil, errf("append", "not a proper list")
			}
			all = append(all, items...)
		}
		// The final argument is shared, not copied, per R5RS.
		out := args[len(args)-1]
		for i := len(all) - 1; i >= 0; i-- {
			out = consOf(st, all[i], out)
		}
		return out, nil
	})

	def("reverse", 1, func(st *value.Store, args []value.Value) (value.Value, error) {
		items, ok := elements(st, args[0])
		if !ok {
			return nil, errf("reverse", "not a proper list")
		}
		var out value.Value = value.Null{}
		for _, it := range items {
			out = consOf(st, it, out)
		}
		return out, nil
	})

	search := func(name string, match func(st *value.Store, want, have value.Value) bool, returnPair bool) {
		def(name, 2, func(st *value.Store, args []value.Value) (value.Value, error) {
			v := args[1]
			steps := 0
			for {
				switch x := v.(type) {
				case value.Null:
					return boolVal(false), nil
				case value.Pair:
					car, ok := st.Get(x.CarLoc)
					if !ok {
						return nil, errf(name, "dangling location")
					}
					if returnPair {
						// assq family: car is itself a pair whose car is compared.
						if entry, ok := car.(value.Pair); ok {
							key, ok := st.Get(entry.CarLoc)
							if ok && match(st, args[0], key) {
								return car, nil
							}
						}
					} else if match(st, args[0], car) {
						return x, nil
					}
					cdr, ok := st.Get(x.CdrLoc)
					if !ok {
						return nil, errf(name, "dangling location")
					}
					v = cdr
					steps++
					if steps > st.Size()+1 {
						return nil, errf(name, "cyclic list")
					}
				default:
					return nil, errf(name, "not a proper list")
				}
			}
		})
	}
	eqvMatch := func(st *value.Store, a, b value.Value) bool { return eqv(a, b) }
	search("memq", eqvMatch, false)
	search("memv", eqvMatch, false)
	search("member", equalValues, false)
	search("assq", eqvMatch, true)
	search("assv", eqvMatch, true)
	search("assoc", equalValues, true)
}
