package prim

import (
	"testing"

	"tailspace/internal/value"
)

func TestStringLength(t *testing.T) {
	wantInt(t, apply(t, "string-length", value.Str("hello")), 5)
	wantInt(t, apply(t, "string-length", value.Str("")), 0)
}

func TestStringRef(t *testing.T) {
	v := apply(t, "string-ref", value.Str("abc"), num(1))
	if c, ok := v.(value.Char); !ok || c != 'b' {
		t.Fatalf("got %#v", v)
	}
	applyErr(t, "string-ref", value.Str("abc"), num(3))
}

func TestStringAppendAndSubstring(t *testing.T) {
	v := apply(t, "string-append", value.Str("foo"), value.Str("bar"))
	if s := v.(value.Str); s != "foobar" {
		t.Fatalf("got %q", s)
	}
	if v := apply(t, "string-append"); v.(value.Str) != "" {
		t.Fatal("(string-append) should be empty")
	}
	v = apply(t, "substring", value.Str("hello"), num(1), num(4))
	if s := v.(value.Str); s != "ell" {
		t.Fatalf("got %q", s)
	}
	applyErr(t, "substring", value.Str("hi"), num(2), num(1))
}

func TestStringComparisons(t *testing.T) {
	wantBool(t, apply(t, "string=?", value.Str("a"), value.Str("a")), true)
	wantBool(t, apply(t, "string<?", value.Str("a"), value.Str("b")), true)
	wantBool(t, apply(t, "string>?", value.Str("a"), value.Str("b")), false)
	wantBool(t, apply(t, "string<=?", value.Str("a"), value.Str("a")), true)
	wantBool(t, apply(t, "string>=?", value.Str("b"), value.Str("a")), true)
}

func TestSymbolStringConversions(t *testing.T) {
	if s := apply(t, "symbol->string", value.Sym("abc")).(value.Str); s != "abc" {
		t.Fatalf("got %q", s)
	}
	if s := apply(t, "string->symbol", value.Str("abc")).(value.Sym); s != "abc" {
		t.Fatalf("got %q", s)
	}
}

func TestStringListConversions(t *testing.T) {
	st := value.NewStore()
	l := applyIn(t, st, "string->list", value.Str("ab"))
	wantInt(t, applyIn(t, st, "length", l), 2)
	s := applyIn(t, st, "list->string", l)
	if s.(value.Str) != "ab" {
		t.Fatalf("got %#v", s)
	}
}

func TestNumberStringConversions(t *testing.T) {
	if s := apply(t, "number->string", num(-42)).(value.Str); s != "-42" {
		t.Fatalf("got %q", s)
	}
	wantInt(t, apply(t, "string->number", value.Str("123")), 123)
	wantBool(t, apply(t, "string->number", value.Str("abc")), false)
}

func TestCharConversions(t *testing.T) {
	wantInt(t, apply(t, "char->integer", value.Char('A')), 65)
	if c := apply(t, "integer->char", num(97)).(value.Char); c != 'a' {
		t.Fatalf("got %q", c)
	}
	applyErr(t, "integer->char", num(-1))
}

func TestCharComparisons(t *testing.T) {
	wantBool(t, apply(t, "char=?", value.Char('a'), value.Char('a')), true)
	wantBool(t, apply(t, "char<?", value.Char('a'), value.Char('b')), true)
	wantBool(t, apply(t, "char>?", value.Char('a'), value.Char('b')), false)
}

func TestGcdLcm(t *testing.T) {
	wantInt(t, apply(t, "gcd", num(12), num(18)), 6)
	wantInt(t, apply(t, "gcd"), 0)
	wantInt(t, apply(t, "gcd", num(-4), num(6)), 2)
	wantInt(t, apply(t, "lcm", num(4), num(6)), 12)
	wantInt(t, apply(t, "lcm", num(0), num(5)), 0)
}

func TestApplyPrimRegistered(t *testing.T) {
	p, ok := Lookup("apply")
	if !ok || !p.Spread {
		t.Fatal("apply must be registered with the Spread flag")
	}
}
