package prim

import (
	"testing"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/value"
)

func TestEqvAtomKinds(t *testing.T) {
	st := value.NewStore()
	cases := []struct {
		a, b value.Value
		want bool
	}{
		{value.Bool(true), value.Bool(true), true},
		{value.Bool(true), value.Bool(false), false},
		{value.Bool(true), value.NewNum(1), false},
		{value.Char('a'), value.Char('a'), true},
		{value.Char('a'), value.Char('b'), false},
		{value.Str("x"), value.Str("x"), true},
		{value.Str("x"), value.Str("y"), false},
		{value.Null{}, value.Null{}, true},
		{value.Null{}, value.Bool(false), false},
		{value.Unspecified{}, value.Unspecified{}, true},
		{value.Undefined{}, value.Undefined{}, true},
		{value.Unspecified{}, value.Undefined{}, false},
	}
	for _, c := range cases {
		wantBool(t, applyIn(t, st, "eqv?", c.a, c.b), c.want)
	}
}

func TestEqvVectors(t *testing.T) {
	st := value.NewStore()
	v1 := applyIn(t, st, "vector", num(1), num(2))
	v2 := applyIn(t, st, "vector", num(1), num(2))
	wantBool(t, applyIn(t, st, "eqv?", v1, v2), false) // distinct allocations
	wantBool(t, applyIn(t, st, "eqv?", v1, v1), true)
	e1 := applyIn(t, st, "vector")
	e2 := applyIn(t, st, "vector")
	wantBool(t, applyIn(t, st, "eqv?", e1, e2), true) // empty vectors are indistinguishable
}

func TestEqvClosuresByTag(t *testing.T) {
	st := value.NewStore()
	lam := &ast.Lambda{Body: &ast.Var{Name: "x"}}
	c1 := value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: env.Empty()}
	c2 := value.Closure{Tag: st.Alloc(value.Unspecified{}), Lam: lam, Env: env.Empty()}
	wantBool(t, applyIn(t, st, "eqv?", c1, c2), false)
	wantBool(t, applyIn(t, st, "eqv?", c1, c1), true)
}

func TestEqvEscapesByTag(t *testing.T) {
	st := value.NewStore()
	e1 := value.Escape{Tag: st.Alloc(value.Unspecified{}), K: value.Halt{}}
	e2 := value.Escape{Tag: st.Alloc(value.Unspecified{}), K: value.Halt{}}
	wantBool(t, applyIn(t, st, "eqv?", e1, e2), false)
	wantBool(t, applyIn(t, st, "eqv?", e1, e1), true)
}

func TestEqvPrimopsByIdentity(t *testing.T) {
	st := value.NewStore()
	plus, _ := Lookup("+")
	minus, _ := Lookup("-")
	wantBool(t, applyIn(t, st, "eqv?", plus, plus), true)
	wantBool(t, applyIn(t, st, "eqv?", plus, minus), false)
}

func TestEqualVectors(t *testing.T) {
	st := value.NewStore()
	v1 := applyIn(t, st, "vector", num(1), applyIn(t, st, "list", num(2)))
	v2 := applyIn(t, st, "vector", num(1), applyIn(t, st, "list", num(2)))
	wantBool(t, applyIn(t, st, "equal?", v1, v2), true)
	v3 := applyIn(t, st, "vector", num(1), num(9))
	wantBool(t, applyIn(t, st, "equal?", v1, v3), false)
	short := applyIn(t, st, "vector", num(1))
	wantBool(t, applyIn(t, st, "equal?", v1, short), false)
}

func TestEqualMixedTypes(t *testing.T) {
	st := value.NewStore()
	p := applyIn(t, st, "cons", num(1), num(2))
	wantBool(t, applyIn(t, st, "equal?", p, num(1)), false)
	wantBool(t, applyIn(t, st, "equal?", value.Vector{}, p), false)
	wantBool(t, applyIn(t, st, "equal?", value.Str("a"), value.Str("a")), true)
}

func TestListElementsExported(t *testing.T) {
	st := value.NewStore()
	l := applyIn(t, st, "list", num(1), num(2), num(3))
	items, ok := ListElements(st, l)
	if !ok || len(items) != 3 {
		t.Fatalf("items=%v ok=%v", items, ok)
	}
	if _, ok := ListElements(st, num(5)); ok {
		t.Fatal("non-list must fail")
	}
	improper := applyIn(t, st, "cons", num(1), num(2))
	if _, ok := ListElements(st, improper); ok {
		t.Fatal("improper list must fail")
	}
}

func TestMemberAndAssocUseEqual(t *testing.T) {
	st := value.NewStore()
	inner1 := applyIn(t, st, "list", num(1), num(2))
	inner2 := applyIn(t, st, "list", num(1), num(2))
	l := applyIn(t, st, "list", inner1)
	hit := applyIn(t, st, "member", inner2, l)
	if _, isPair := hit.(value.Pair); !isPair {
		t.Fatalf("member with equal? should hit: %#v", hit)
	}
	// memv uses eqv?: distinct allocations miss.
	wantBool(t, applyIn(t, st, "memv", inner2, l), false)

	entry := applyIn(t, st, "cons", inner1, value.Sym("v"))
	al := applyIn(t, st, "list", entry)
	got := applyIn(t, st, "assoc", inner2, al)
	if _, isPair := got.(value.Pair); !isPair {
		t.Fatalf("assoc with equal? should hit: %#v", got)
	}
	wantBool(t, applyIn(t, st, "assv", inner2, al), false)
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	register(&value.Primop{Name: "+"})
}
