// Package prim implements the standard procedures of the initial
// environment ρ0 and store σ0 (Section 12 of the paper refers to Section 6
// of the IEEE standard for their behaviour). The rules for primitive
// procedures are the "additional rules" Figure 5 leaves unspecified.
package prim

import (
	"fmt"
	"sort"

	"tailspace/internal/env"
	"tailspace/internal/value"
)

// Error reports a primitive applied to bad arguments; the machine treats it
// as a stuck computation.
type Error struct {
	Name string
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Name, e.Msg) }

func errf(name, format string, args ...any) error {
	return &Error{Name: name, Msg: fmt.Sprintf(format, args...)}
}

// registry is built once; primitives are stateless (the store carries any
// state they need, including the random source).
var registry = map[string]*value.Primop{}

func register(p *value.Primop) {
	if _, dup := registry[p.Name]; dup {
		panic("prim: duplicate primitive " + p.Name)
	}
	registry[p.Name] = p
}

func def(name string, arity int, apply func(st *value.Store, args []value.Value) (value.Value, error)) {
	register(&value.Primop{Name: name, Arity: arity, Apply: apply})
}

func init() {
	registerArith()
	registerPredicates()
	registerLists()
	registerVectors()
	registerControl()
	registerStrings()
	registerContracts()
}

// Lookup returns the primitive with the given name.
func Lookup(name string) (*value.Primop, bool) {
	p, ok := registry[name]
	return p, ok
}

// Names returns every primitive name (unordered).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	return out
}

// Global builds the initial environment ρ0 and store σ0 containing the
// standard procedures.
func Global() (env.Env, *value.Store) {
	return GlobalInto(value.NewStore())
}

// GlobalInto installs the standard procedures into an empty store (arena or
// map backed) and returns ρ0 with it. Primitives are allocated in sorted name
// order so two runs — and two store representations — number ρ0's locations
// identically; whole-run reproducibility starts here.
func GlobalInto(st *value.Store) (env.Env, *value.Store) {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	locs := make([]env.Location, len(names))
	for i, n := range names {
		locs[i] = st.Alloc(registry[n])
	}
	return env.Empty().Extend(names, locs), st
}

// Argument helpers shared by the primitive implementations.

func wantNum(name string, v value.Value) (value.Num, error) {
	n, ok := v.(value.Num)
	if !ok {
		return value.Num{}, errf(name, "expected a number, got %T", v)
	}
	return n, nil
}

func wantPair(name string, v value.Value) (value.Pair, error) {
	p, ok := v.(value.Pair)
	if !ok {
		return value.Pair{}, errf(name, "expected a pair, got %T", v)
	}
	return p, nil
}

func wantVector(name string, v value.Value) (value.Vector, error) {
	vec, ok := v.(value.Vector)
	if !ok {
		return value.Vector{}, errf(name, "expected a vector, got %T", v)
	}
	return vec, nil
}

func wantIndex(name string, v value.Value, limit int) (int, error) {
	n, err := wantNum(name, v)
	if err != nil {
		return 0, err
	}
	if !n.Int.IsInt64() {
		return 0, errf(name, "index out of range")
	}
	i := n.Int.Int64()
	if i < 0 || i >= int64(limit) {
		return 0, errf(name, "index %d out of range [0,%d)", i, limit)
	}
	return int(i), nil
}

func boolVal(b bool) value.Value { return value.Bool(b) }
