package prim

import (
	"tailspace/internal/value"
)

func registerControl() {
	// %undef is the expander's letrec support: it returns the UNDEFINED
	// value, so reading a letrec variable before its set! runs sticks the
	// machine, matching the R5RS letrec restriction.
	def("%undef", 0, func(st *value.Store, args []value.Value) (value.Value, error) {
		return value.Undefined{}, nil
	})

	// call-with-current-continuation is flagged: the machine itself builds
	// the ESCAPE:(α,κ) value and applies the receiver to it, because no
	// primitive can see the continuation register.
	callcc := &value.Primop{Name: "call-with-current-continuation", Arity: 1, CallCC: true}
	register(callcc)
	register(&value.Primop{Name: "call/cc", Arity: 1, CallCC: true})

	// apply re-dispatches through the evaluator: (apply f a b '(c d)) calls
	// f with a b c d. Like call/cc it is flagged, because only the machine
	// can perform the call.
	register(&value.Primop{Name: "apply", Arity: -1, Spread: true})

	// error sticks the machine with a message.
	def("error", -1, func(st *value.Store, args []value.Value) (value.Value, error) {
		msg := "error"
		if len(args) > 0 {
			if s, ok := args[0].(value.Str); ok {
				msg = string(s)
			} else if s, ok := args[0].(value.Sym); ok {
				msg = string(s)
			}
		}
		return nil, errf("error", "%s", msg)
	})
}
