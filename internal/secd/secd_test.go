package secd

import (
	"strings"
	"testing"

	"tailspace/internal/corpus"
)

func runBoth(t *testing.T, src string) (classic, tailrec Result) {
	t.Helper()
	code, err := CompileSource(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	classic = Run(code, Classic, 8_000_000)
	tailrec = Run(code, TailRecursive, 8_000_000)
	return classic, tailrec
}

func wantBoth(t *testing.T, src, want string) {
	t.Helper()
	classic, tailrec := runBoth(t, src)
	if classic.Err != nil {
		t.Fatalf("[classic] %q: %v", src, classic.Err)
	}
	if tailrec.Err != nil {
		t.Fatalf("[tail] %q: %v", src, tailrec.Err)
	}
	if classic.Answer != want || tailrec.Answer != want {
		t.Fatalf("%q: classic=%q tail=%q want %q", src, classic.Answer, tailrec.Answer, want)
	}
}

func TestConstantsAndArith(t *testing.T) {
	wantBoth(t, "42", "42")
	wantBoth(t, "(+ 1 2 3)", "6")
	wantBoth(t, "(* (+ 1 2) (- 10 4))", "18")
	wantBoth(t, "'sym", "sym")
	wantBoth(t, "#t", "#t")
}

func TestLambdaApplication(t *testing.T) {
	wantBoth(t, "((lambda (x) x) 7)", "7")
	wantBoth(t, "((lambda (x y) (- x y)) 10 3)", "7")
	wantBoth(t, "(((lambda (x) (lambda (y) (+ x y))) 3) 4)", "7")
}

func TestConditionals(t *testing.T) {
	wantBoth(t, "(if (< 1 2) 'yes 'no)", "yes")
	wantBoth(t, "(+ 1 (if #f 10 20))", "21") // non-tail if: SEL/JOIN
	wantBoth(t, "(if (if #t #f #t) 1 2)", "2")
}

func TestLetAndSet(t *testing.T) {
	wantBoth(t, "(let ((x 2) (y 3)) (* x y))", "6")
	wantBoth(t, "(let ((x 1)) (begin (set! x 42) x))", "42")
}

func TestRecursion(t *testing.T) {
	wantBoth(t, "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)", "3628800")
	wantBoth(t, "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 200)", "0")
	wantBoth(t, `
(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
(even2? 100)`, "#t")
}

func TestLetrecReadBeforeInit(t *testing.T) {
	code, err := CompileSource("(letrec ((x y) (y 1)) x)")
	if err != nil {
		t.Fatal(err)
	}
	res := Run(code, TailRecursive, 100000)
	if res.Err == nil || !strings.Contains(res.Err.Error(), "before initialization") {
		t.Fatalf("got %v", res.Err)
	}
}

func TestHigherOrderPrimitiveValue(t *testing.T) {
	wantBoth(t, `
(define (twice f x) (f (f x)))
(twice abs -5)`, "5")
}

func TestDataStructures(t *testing.T) {
	wantBoth(t, "(cons 1 2)", "(1 . 2)")
	wantBoth(t, "'(1 (2 3))", "(1 (2 3))")
	wantBoth(t, "(vector 1 2)", "#(1 2)")
}

func TestRejectsCallCCAndApply(t *testing.T) {
	for _, src := range []string{
		"(call/cc (lambda (k) (k 1)))",
		"(apply + '(1 2))",
	} {
		if _, err := CompileSource(src); err == nil {
			t.Errorf("CompileSource(%q): expected error", src)
		}
	}
}

func TestRejectsUnbound(t *testing.T) {
	if _, err := CompileSource("nonexistent"); err == nil {
		t.Fatal("expected error")
	}
}

// TestTailRecursiveDumpBounded is the [Ram97] point: the classic machine's
// dump grows linearly on the iterative loop, Ramsdell's stays flat.
func TestTailRecursiveDumpBounded(t *testing.T) {
	loop := func(n string) string {
		return "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f " + n + ")"
	}
	classicSmall, tailSmall := runBoth(t, loop("20"))
	classicLarge, tailLarge := runBoth(t, loop("400"))
	if tailLarge.PeakDump != tailSmall.PeakDump {
		t.Fatalf("tail-recursive dump must be constant: %d vs %d",
			tailSmall.PeakDump, tailLarge.PeakDump)
	}
	if classicLarge.PeakDump-classicSmall.PeakDump < 300 {
		t.Fatalf("classic dump must grow linearly: %d vs %d",
			classicSmall.PeakDump, classicLarge.PeakDump)
	}
}

// TestTailRecursiveStateBounded checks the full machine-state size, not just
// the dump count.
func TestTailRecursiveStateBounded(t *testing.T) {
	loop := func(n string) string {
		return "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f " + n + ")"
	}
	_, tailSmall := runBoth(t, loop("20"))
	_, tailLarge := runBoth(t, loop("400"))
	if tailLarge.PeakState != tailSmall.PeakState {
		t.Fatalf("tail-recursive machine state must be constant: %d vs %d",
			tailSmall.PeakState, tailLarge.PeakState)
	}
}

// TestCorpusSubsetOnSECD runs every compilable corpus program on both
// machines and checks the answers.
func TestCorpusSubsetOnSECD(t *testing.T) {
	skip := map[string]bool{
		"callcc-product": true, "generator": true, // call/cc
		"apply-spread": true, "fold-apply": true, // apply
		"metacircular": true, "metacircular-tail-loop": true, // apply
		"church": true, // procedure? on SECD closures
		"contracted-loop": true, "contracted-leak": true, // contract monitors
	}
	ran := 0
	for _, p := range corpus.All() {
		if skip[p.Name] {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			wantBoth(t, p.Source, p.Answer)
		})
		ran++
	}
	if ran < 20 {
		t.Fatalf("only %d corpus programs compiled for SECD", ran)
	}
}

func TestCodeSize(t *testing.T) {
	code, err := CompileSource("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 1)")
	if err != nil {
		t.Fatal(err)
	}
	if CodeSize(code) < 10 {
		t.Fatalf("suspiciously small code: %d", CodeSize(code))
	}
}

func TestInstructionStrings(t *testing.T) {
	for _, i := range []Instr{
		{Op: LDC}, {Op: LD, Depth: 1, Index: 2}, {Op: LDG, Name: "+"},
		{Op: LDF}, {Op: AP, N: 2}, {Op: TAP, N: 1}, {Op: RTN},
		{Op: SEL}, {Op: TSEL}, {Op: JOIN}, {Op: PRIM, Name: "car", N: 1},
		{Op: STE},
	} {
		if i.String() == "?" || i.Op.String() == "?" {
			t.Fatalf("unprintable instruction %v", i.Op)
		}
	}
}
