package secd

import (
	"errors"
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/core"
	"tailspace/internal/prim"
	"tailspace/internal/value"
)

// Mode selects the machine variant.
type Mode int

const (
	// Classic treats every application as AP: the dump grows on every call,
	// tail or not — Landin's original machine, improperly tail recursive.
	Classic Mode = iota
	// TailRecursive honours TAP: a tail application reuses the dump entry,
	// so iterative programs run with a bounded dump — Ramsdell's machine.
	TailRecursive
)

func (m Mode) String() string {
	if m == Classic {
		return "classic"
	}
	return "tail-recursive"
}

// frame is a runtime environment frame of mutable slots.
type frame struct {
	slots []value.Value
}

// renv is the runtime environment: innermost frame first.
type renv struct {
	f      *frame
	parent *renv
}

func (e *renv) at(depth, index int) (*frame, error) {
	for ; depth > 0; depth-- {
		if e == nil {
			return nil, errors.New("secd: bad lexical depth")
		}
		e = e.parent
	}
	if e == nil || index >= len(e.f.slots) {
		return nil, errors.New("secd: bad lexical address")
	}
	return e.f, nil
}

// closure is an SECD closure: code plus captured environment. It is carried
// through the shared value domain as a Foreign value.
type closure struct {
	code  []Instr
	env   *renv
	arity int
	label string
}

// dumpEntry is one saved (stack, environment, control) triple.
type dumpEntry struct {
	s []value.Value
	e *renv
	c []Instr
}

// Machine is an SECD machine instance.
type Machine struct {
	mode  Mode
	store *value.Store // backs pairs/vectors via the standard procedures

	s []value.Value
	e *renv
	c []Instr
	d []dumpEntry

	steps int
	// peaks
	peakDump  int
	peakState int
}

// Result reports an SECD run.
type Result struct {
	Answer string
	Steps  int
	// PeakDump is the deepest dump (the machine's control stack).
	PeakDump int
	// PeakState is the largest machine-state size in words: stack + control
	// + environment chains + dump entries, values counted as references.
	PeakState int
	Err       error
}

// Run compiles nothing — it executes already-compiled code.
func Run(code []Instr, mode Mode, maxSteps int) Result {
	m := &Machine{mode: mode, store: value.NewStore(), c: code}
	if maxSteps <= 0 {
		maxSteps = 5_000_000
	}
	for {
		if m.steps >= maxSteps {
			return Result{Steps: m.steps, Err: errors.New("secd: step budget exceeded")}
		}
		done, err := m.step()
		if err != nil {
			return Result{Steps: m.steps, PeakDump: m.peakDump, PeakState: m.peakState, Err: err}
		}
		if done {
			answer := core.Answer(m.s[len(m.s)-1], m.store)
			return Result{
				Answer: answer, Steps: m.steps,
				PeakDump: m.peakDump, PeakState: m.peakState,
			}
		}
	}
}

// RunSource compiles and runs program text.
func RunSource(src string, mode Mode, maxSteps int) (Result, error) {
	code, err := CompileSource(src)
	if err != nil {
		return Result{}, err
	}
	return Run(code, mode, maxSteps), nil
}

func (m *Machine) step() (bool, error) {
	m.steps++
	m.observe()

	if len(m.c) == 0 {
		if len(m.d) == 0 {
			if len(m.s) == 0 {
				return false, errors.New("secd: empty stack at halt")
			}
			return true, nil
		}
		return false, errors.New("secd: control exhausted with a non-empty dump")
	}
	inst := m.c[0]
	m.c = m.c[1:]

	switch inst.Op {
	case LDC:
		m.push(constValue(inst.Const))

	case LD:
		f, err := m.e.at(inst.Depth, inst.Index)
		if err != nil {
			return false, err
		}
		v := f.slots[inst.Index]
		if _, undef := v.(value.Undefined); undef {
			return false, errors.New("secd: variable read before initialization")
		}
		m.push(v)

	case LDG:
		p, ok := prim.Lookup(inst.Name)
		if !ok {
			return false, fmt.Errorf("secd: unknown global %s", inst.Name)
		}
		m.push(p)

	case LDF:
		m.push(value.Foreign{Tag: "secd-closure", Data: closure{
			code: inst.Code, env: m.e, arity: inst.N, label: inst.Name,
		}})

	case STE:
		f, err := m.e.at(inst.Depth, inst.Index)
		if err != nil {
			return false, err
		}
		f.slots[inst.Index] = m.pop()
		m.push(value.Unspecified{})

	case PRIM:
		p, ok := prim.Lookup(inst.Name)
		if !ok {
			return false, fmt.Errorf("secd: unknown primitive %s", inst.Name)
		}
		args := m.popN(inst.N)
		if p.Arity >= 0 && len(args) != p.Arity {
			return false, fmt.Errorf("secd: %s expects %d arguments, got %d", p.Name, p.Arity, len(args))
		}
		v, err := p.Apply(m.store, args)
		if err != nil {
			return false, fmt.Errorf("secd: %w", err)
		}
		m.push(v)

	case SEL:
		test := m.pop()
		m.d = append(m.d, dumpEntry{c: m.c})
		if value.Truthy(test) {
			m.c = inst.Then
		} else {
			m.c = inst.Else
		}

	case TSEL:
		test := m.pop()
		if value.Truthy(test) {
			m.c = inst.Then
		} else {
			m.c = inst.Else
		}

	case JOIN:
		if len(m.d) == 0 {
			return false, errors.New("secd: JOIN with empty dump")
		}
		top := m.d[len(m.d)-1]
		m.d = m.d[:len(m.d)-1]
		m.c = top.c

	case AP:
		return false, m.apply(inst.N, false)

	case TAP:
		// Ramsdell's machine performs the call as a goto. The classic
		// machine has no such instruction: a tail call is an ordinary AP
		// whose only continuation is to return, so it executes TAP as
		// "AP; RTN" — pushing a frame that does nothing but pop itself.
		// Same code, different machine, exactly as the paper compares one
		// program across reference implementations.
		if m.mode == TailRecursive {
			return false, m.apply(inst.N, true)
		}
		m.c = []Instr{{Op: RTN}}
		return false, m.apply(inst.N, false)

	case RTN:
		if len(m.d) == 0 {
			return false, errors.New("secd: RTN with empty dump")
		}
		v := m.pop()
		top := m.d[len(m.d)-1]
		m.d = m.d[:len(m.d)-1]
		m.s = append(top.s, v)
		m.e = top.e
		m.c = top.c

	default:
		return false, fmt.Errorf("secd: unknown opcode %v", inst.Op)
	}
	return false, nil
}

func (m *Machine) apply(n int, tailCall bool) error {
	opVal := m.pop()
	args := m.popN(n)
	switch proc := opVal.(type) {
	case value.Foreign:
		cl, ok := proc.Data.(closure)
		if !ok {
			return fmt.Errorf("secd: call of non-procedure %s", proc.Tag)
		}
		if len(args) != cl.arity {
			return fmt.Errorf("secd: %s expects %d arguments, got %d", cl.label, cl.arity, len(args))
		}
		if !tailCall {
			m.d = append(m.d, dumpEntry{s: m.s, e: m.e, c: m.c})
		}
		m.s = nil
		m.e = &renv{f: &frame{slots: args}, parent: cl.env}
		m.c = cl.code
		return nil
	case *value.Primop:
		// A standard procedure that reached the stack as a value (e.g.
		// passed to a higher-order function). No dump is needed: it returns
		// immediately.
		if proc.CallCC || proc.Spread {
			return fmt.Errorf("secd: %s is not supported on the SECD machine", proc.Name)
		}
		if proc.Arity >= 0 && len(args) != proc.Arity {
			return fmt.Errorf("secd: %s expects %d arguments, got %d", proc.Name, proc.Arity, len(args))
		}
		v, err := proc.Apply(m.store, args)
		if err != nil {
			return fmt.Errorf("secd: %w", err)
		}
		m.push(v)
		if tailCall {
			// The value must still be returned to the caller.
			return m.returnFromTailPrim()
		}
		return nil
	}
	return fmt.Errorf("secd: call of non-procedure %T", opVal)
}

// returnFromTailPrim handles (f x) in tail position where f turned out to be
// a primitive: the TAP consumed the frame, so the result returns through the
// dump exactly like RTN.
func (m *Machine) returnFromTailPrim() error {
	if len(m.d) == 0 {
		// Top level: leave the value on the stack; control will empty.
		m.c = nil
		return nil
	}
	v := m.pop()
	top := m.d[len(m.d)-1]
	m.d = m.d[:len(m.d)-1]
	m.s = append(top.s, v)
	m.e = top.e
	m.c = top.c
	return nil
}

func (m *Machine) push(v value.Value) { m.s = append(m.s, v) }

func (m *Machine) pop() value.Value {
	v := m.s[len(m.s)-1]
	m.s = m.s[:len(m.s)-1]
	return v
}

func (m *Machine) popN(n int) []value.Value {
	args := make([]value.Value, n)
	copy(args, m.s[len(m.s)-n:])
	m.s = m.s[:len(m.s)-n]
	return args
}

// observe tracks the dump depth and machine-state size peaks.
func (m *Machine) observe() {
	if len(m.d) > m.peakDump {
		m.peakDump = len(m.d)
	}
	size := len(m.s) + len(m.c)
	seen := map[*frame]bool{}
	size += envSize(m.e, seen)
	for _, de := range m.d {
		size += len(de.s) + len(de.c) + 1
		size += envSize(de.e, seen)
	}
	if size > m.peakState {
		m.peakState = size
	}
}

func envSize(e *renv, seen map[*frame]bool) int {
	n := 0
	for ; e != nil; e = e.parent {
		if seen[e.f] {
			return n
		}
		seen[e.f] = true
		n += len(e.f.slots) + 1
	}
	return n
}

func constValue(c ast.ConstValue) value.Value {
	switch x := c.(type) {
	case ast.BoolConst:
		return value.Bool(bool(x))
	case ast.NumConst:
		return value.Num{Int: x.Int}
	case ast.SymConst:
		return value.Sym(string(x))
	case ast.StrConst:
		return value.Str(string(x))
	case ast.CharConst:
		return value.Char(rune(x))
	case ast.NilConst:
		return value.Null{}
	case ast.UnspecifiedConst:
		return value.Unspecified{}
	}
	panic(fmt.Sprintf("secd: unknown constant %T", c))
}
