// Package secd implements a compiler from Core Scheme to SECD machine code
// and the SECD machine itself, in two variants:
//
//   - Classic: Landin's machine, where every application AP pushes the
//     (stack, environment, control) triple onto the dump — the structural
//     twin of Z_gc's return continuations.
//   - TailRecursive: Ramsdell's "tail recursive SECD machine" [Ram97], the
//     §15 reference: tail applications compile to TAP, which reuses the
//     current dump entry, and tail conditionals to TSEL, which does not
//     push a join; the dump therefore stays bounded on iterative programs.
//
// The pair demonstrates at the compiled-code level exactly what the paper's
// Z_gc / Z_tail pair demonstrates at the semantics level, and the same
// asymptotic space test separates them.
package secd

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
	"tailspace/internal/prim"
)

// Op is an SECD opcode.
type Op int

const (
	// LDC pushes a constant.
	LDC Op = iota
	// LD pushes the value at lexical address (Depth, Index).
	LD
	// LDG pushes a global (a standard procedure).
	LDG
	// LDF pushes a closure over the current environment.
	LDF
	// AP applies: pops a closure and N arguments, pushes (S,E,C) on the
	// dump, and enters the closure body.
	AP
	// TAP is Ramsdell's tail application: like AP but the dump is reused —
	// the caller's frame is gone, a call is a goto.
	TAP
	// RTN returns: pops the dump and delivers the top of stack.
	RTN
	// SEL branches to Then/Else code and pushes the rest of the control on
	// the dump; the branch ends in JOIN.
	SEL
	// TSEL is the tail conditional: branches without saving anything.
	TSEL
	// JOIN pops the control saved by SEL.
	JOIN
	// PRIM applies a standard procedure to N stack operands directly.
	PRIM
	// STE stores the top of stack into lexical address (Depth, Index) and
	// replaces it with the unspecified value.
	STE
)

func (o Op) String() string {
	switch o {
	case LDC:
		return "LDC"
	case LD:
		return "LD"
	case LDG:
		return "LDG"
	case LDF:
		return "LDF"
	case AP:
		return "AP"
	case TAP:
		return "TAP"
	case RTN:
		return "RTN"
	case SEL:
		return "SEL"
	case TSEL:
		return "TSEL"
	case JOIN:
		return "JOIN"
	case PRIM:
		return "PRIM"
	case STE:
		return "STE"
	}
	return "?"
}

// Instr is one SECD instruction.
type Instr struct {
	Op           Op
	Const        ast.ConstValue // LDC
	Depth, Index int            // LD, STE
	Name         string         // LDG, PRIM
	N            int            // AP, TAP, PRIM argument count
	Code         []Instr        // LDF body
	Then, Else   []Instr        // SEL, TSEL
}

func (i Instr) String() string {
	switch i.Op {
	case LDC:
		return fmt.Sprintf("LDC %v", i.Const)
	case LD:
		return fmt.Sprintf("LD (%d,%d)", i.Depth, i.Index)
	case STE:
		return fmt.Sprintf("STE (%d,%d)", i.Depth, i.Index)
	case LDG:
		return "LDG " + i.Name
	case LDF:
		return fmt.Sprintf("LDF <%d instrs>", len(i.Code))
	case AP, TAP, PRIM:
		if i.Op == PRIM {
			return fmt.Sprintf("PRIM %s/%d", i.Name, i.N)
		}
		return fmt.Sprintf("%s %d", i.Op, i.N)
	case SEL, TSEL:
		return fmt.Sprintf("%s <%d|%d>", i.Op, len(i.Then), len(i.Else))
	}
	return i.Op.String()
}

// CompileError reports a program the SECD compiler cannot handle.
type CompileError struct{ Msg string }

func (e *CompileError) Error() string { return "secd: " + e.Msg }

// ctenv is the compile-time environment: a chain of parameter frames for
// lexical addressing.
type ctenv struct {
	names  []string
	parent *ctenv
}

// Compile translates a Core Scheme expression to SECD code. Programs using
// call/cc or apply are rejected: the classic SECD machine has no direct
// account of either (Ramsdell's machine adds continuations separately), and
// this compiler exists to compare dump behaviour, not to be a full Scheme.
func Compile(e ast.Expr) ([]Instr, error) {
	c := &compiler{}
	code, err := c.compile(e, nil, false)
	if err != nil {
		return nil, err
	}
	return code, nil
}

// CompileSource parses, expands, and compiles program text.
func CompileSource(src string) ([]Instr, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return Compile(e)
}

type compiler struct{}

func lookupCT(env *ctenv, name string) (int, int, bool) {
	depth := 0
	for frame := env; frame != nil; frame = frame.parent {
		for i, n := range frame.names {
			if n == name {
				return depth, i, true
			}
		}
		depth++
	}
	return 0, 0, false
}

func (c *compiler) compile(e ast.Expr, env *ctenv, tail bool) ([]Instr, error) {
	switch x := e.(type) {
	case *ast.Const:
		return c.ret([]Instr{{Op: LDC, Const: x.Value}}, tail), nil

	case *ast.Var:
		if d, i, ok := lookupCT(env, x.Name); ok {
			return c.ret([]Instr{{Op: LD, Depth: d, Index: i}}, tail), nil
		}
		p, ok := prim.Lookup(x.Name)
		if !ok {
			return nil, &CompileError{Msg: "unbound variable " + x.Name}
		}
		if p.CallCC || p.Spread {
			return nil, &CompileError{Msg: x.Name + " is not supported on the SECD machine"}
		}
		return c.ret([]Instr{{Op: LDG, Name: x.Name}}, tail), nil

	case *ast.Lambda:
		body, err := c.compile(x.Body, &ctenv{names: x.Params, parent: env}, true)
		if err != nil {
			return nil, err
		}
		return c.ret([]Instr{{Op: LDF, Code: body, N: len(x.Params), Name: x.Label}}, tail), nil

	case *ast.If:
		test, err := c.compile(x.Test, env, false)
		if err != nil {
			return nil, err
		}
		thn, err := c.compile(x.Then, env, tail)
		if err != nil {
			return nil, err
		}
		els, err := c.compile(x.Else, env, tail)
		if err != nil {
			return nil, err
		}
		if tail {
			// Tail conditional: no join point is saved; the arms already
			// end in RTN/TAP.
			return append(test, Instr{Op: TSEL, Then: thn, Else: els}), nil
		}
		thn = append(thn, Instr{Op: JOIN})
		els = append(els, Instr{Op: JOIN})
		return append(test, Instr{Op: SEL, Then: thn, Else: els}), nil

	case *ast.Set:
		rhs, err := c.compile(x.Rhs, env, false)
		if err != nil {
			return nil, err
		}
		d, i, ok := lookupCT(env, x.Name)
		if !ok {
			return nil, &CompileError{Msg: "assignment to unbound variable " + x.Name}
		}
		return c.ret(append(rhs, Instr{Op: STE, Depth: d, Index: i}), tail), nil

	case *ast.Call:
		return c.compileCall(x, env, tail)

	case *ast.Mon:
		// The SECD machine has no monitor frames and — unlike the erasing
		// CEKS machines — no pass-through rule to erase into, so contracted
		// programs are out of its scope, like call/cc.
		return nil, &CompileError{Msg: "contract monitors are not supported on the SECD machine"}
	}
	return nil, &CompileError{Msg: fmt.Sprintf("unknown expression %T", e)}
}

func (c *compiler) compileCall(call *ast.Call, env *ctenv, tail bool) ([]Instr, error) {
	// Direct primitive application when the operator is an unshadowed
	// standard procedure.
	if op, ok := call.Operator().(*ast.Var); ok {
		if _, _, bound := lookupCT(env, op.Name); !bound {
			p, isPrim := prim.Lookup(op.Name)
			if isPrim {
				if p.CallCC || p.Spread {
					return nil, &CompileError{Msg: op.Name + " is not supported on the SECD machine"}
				}
				var code []Instr
				for _, arg := range call.Operands() {
					argCode, err := c.compile(arg, env, false)
					if err != nil {
						return nil, err
					}
					code = append(code, argCode...)
				}
				code = append(code, Instr{Op: PRIM, Name: op.Name, N: len(call.Operands())})
				return c.ret(code, tail), nil
			}
		}
	}

	// General application: arguments, then operator, then AP/TAP.
	var code []Instr
	for _, arg := range call.Operands() {
		argCode, err := c.compile(arg, env, false)
		if err != nil {
			return nil, err
		}
		code = append(code, argCode...)
	}
	opCode, err := c.compile(call.Operator(), env, false)
	if err != nil {
		return nil, err
	}
	code = append(code, opCode...)
	op := AP
	if tail {
		op = TAP
	}
	return append(code, Instr{Op: op, N: len(call.Operands())}), nil
}

// ret appends RTN when the expression produced a value in tail position
// (calls in tail position end in TAP and branches in TSEL arms instead).
func (c *compiler) ret(code []Instr, tail bool) []Instr {
	if tail {
		return append(code, Instr{Op: RTN})
	}
	return code
}

// CodeSize counts instructions recursively (a compiled-program size metric).
func CodeSize(code []Instr) int {
	n := 0
	for _, i := range code {
		n++
		n += CodeSize(i.Code)
		n += CodeSize(i.Then)
		n += CodeSize(i.Else)
	}
	return n
}
