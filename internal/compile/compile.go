package compile

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/env"
)

// scope is the compile-time shadow of an environment's rib chain: one level
// per runtime rib, newest first. Register environments ground out in ρ0
// (ground marks the terminal level standing for it, which contributes no
// coordinates — ρ0 bindings resolve to constant locations); restricted
// environments are single flat ribs over nothing, so their chains simply end.
//
// The invariant the compiler maintains — and the executor relies on — is that
// every Node is only ever evaluated with an environment register of its
// scope's shape. Extensions and restrictions with zero identifiers push no
// runtime rib, so they introduce no scope level either.
type scope struct {
	syms   []env.Symbol
	up     *scope
	ground bool
}

type compiler struct {
	cfg     Config
	globals env.Env
	fv      *ast.FreeVarCache
}

// Program compiles an expanded program against the global environment ρ0.
// Compilation is total on expander output; an expression form the compiler
// does not know (an Expr implementation outside package ast) aborts with an
// error so callers can fall back to the stepper.
func Program(e ast.Expr, cfg Config, globals env.Env) (*Prog, error) {
	c := &compiler{cfg: cfg, globals: globals, fv: ast.NewFreeVarCache()}
	root, err := c.compile(e, &scope{ground: true})
	if err != nil {
		return nil, err
	}
	return &Prog{Root: root, Config: cfg}, nil
}

// resolve finds sym in the scope chain, mirroring LookupSym's order exactly:
// newest rib first and, within a rib, later entries shadow earlier ones.
func (c *compiler) resolve(sc *scope, sym env.Symbol) Ref {
	depth := 0
	for s := sc; s != nil; s = s.up {
		if s.ground {
			if loc, ok := c.globals.LookupSym(sym); ok {
				return Ref{Kind: RefGlobal, Loc: loc}
			}
			return Ref{Kind: RefUnbound}
		}
		for i := len(s.syms) - 1; i >= 0; i-- {
			if s.syms[i] == sym {
				return Ref{Kind: RefLocal, Depth: depth, Index: i}
			}
		}
		depth++
	}
	return Ref{Kind: RefUnbound}
}

// restriction resolves a keep list (sorted, deduplicated — as the
// FreeVarCache delivers it) against sc, building the capture plan and the
// scope of the flat environment the plan builds. Identifiers that do not
// resolve are dropped, exactly as RestrictSyms drops identifiers LookupSym
// cannot find.
func (c *compiler) restriction(sc *scope, keep []env.Symbol) (*CapPlan, *scope) {
	syms := make([]env.Symbol, 0, len(keep))
	fetch := make([]Ref, 0, len(keep))
	for _, s := range keep {
		if ref := c.resolve(sc, s); ref.Kind != RefUnbound {
			syms = append(syms, s)
			fetch = append(fetch, ref)
		}
	}
	p := &CapPlan{Syms: syms, Fetch: fetch}
	p.seal()
	return p, &scope{syms: syms}
}

// freshCount is the compile-time half of ExtendSized: how many params are
// neither repeated later in the rib nor bound in the environment whose shape
// is below — the |Dom ρ| growth ExtendSyms recomputes per call.
func (c *compiler) freshCount(params []env.Symbol, below *scope) int {
	fresh := 0
params:
	for i, s := range params {
		for j := i + 1; j < len(params); j++ {
			if params[j] == s {
				continue params
			}
		}
		if c.resolve(below, s).Kind == RefUnbound {
			fresh++
		}
	}
	return fresh
}

func (c *compiler) compile(e ast.Expr, sc *scope) (*Node, error) {
	switch x := e.(type) {
	case *ast.Const:
		return &Node{Expr: e, Op: OpConst, Const: constValue(x.Value)}, nil

	case *ast.Var:
		sym := x.Sym
		if sym == 0 {
			sym = env.Intern(x.Name)
		}
		ref := c.resolve(sc, sym)
		op := OpLocal
		switch ref.Kind {
		case RefGlobal:
			op = OpGlobal
		case RefUnbound:
			op = OpUnbound
		}
		return &Node{Expr: e, Op: op, Ref: ref, Name: x.Name, Sym: sym}, nil

	case *ast.Lambda:
		params := x.ParamSyms
		if params == nil && len(x.Params) > 0 {
			params = env.InternAll(x.Params)
		}
		capScope := sc
		var capPlan *CapPlan
		if c.cfg.FreeClosures {
			capPlan, capScope = c.restriction(sc, c.fv.FreeSyms(x))
		}
		bodyScope := capScope
		if len(params) > 0 {
			bodyScope = &scope{syms: params, up: capScope}
		}
		body, err := c.compile(x.Body, bodyScope)
		if err != nil {
			return nil, err
		}
		code := &LambdaCode{
			Lam:    x,
			Body:   body,
			Params: params,
			Cap:    capPlan,
			Fresh:  c.freshCount(params, capScope),
		}
		return &Node{Expr: e, Op: OpLambda, Code: code}, nil

	case *ast.If:
		contScope := sc
		var capPlan *CapPlan
		if c.cfg.RestrictConts {
			capPlan, contScope = c.restriction(sc, c.fv.FreeSymsUnion(x.Then, x.Else))
		}
		test, err := c.compile(x.Test, sc)
		if err != nil {
			return nil, err
		}
		then, err := c.compile(x.Then, contScope)
		if err != nil {
			return nil, err
		}
		els, err := c.compile(x.Else, contScope)
		if err != nil {
			return nil, err
		}
		return &Node{Expr: e, Op: OpIf, Test: test, Then: then, Else: els, Cap: capPlan}, nil

	case *ast.Set:
		sym := x.Sym
		if sym == 0 {
			sym = env.Intern(x.Name)
		}
		ref := c.resolve(sc, sym)
		n := &Node{Expr: e, Op: OpSet, Ref: ref, Name: x.Name, Sym: sym}
		plan := &AssignPlan{Ref: ref}
		if c.cfg.RestrictConts {
			// The frame keeps only the target binding (RestrictToSym): within
			// that one-entry rib the target sits at (0, 0); an unbound target
			// leaves the frame the empty environment.
			n.Restrict = true
			if ref.Kind == RefUnbound {
				plan.Ref = Ref{Kind: RefUnbound}
			} else {
				plan.Ref = Ref{Kind: RefLocal}
				n.Syms = []env.Symbol{sym}
			}
		}
		n.Plan = plan
		rhs, err := c.compile(x.Rhs, sc)
		if err != nil {
			return nil, err
		}
		n.Rhs = rhs
		return n, nil

	case *ast.Call:
		return c.compileCall(x, sc)
	}
	return nil, fmt.Errorf("compile: unknown expression form %T", e)
}

// compileCall lowers a call to its chain of push steps. Subexpression i (in
// evaluation order) runs with the environment saved in frame i−1 — the site
// environment for i = 0 — so each is compiled under that frame's shape, and
// each frame's capture plan is resolved against its predecessor's shape (the
// environment the frame is built from at run time).
func (c *compiler) compileCall(x *ast.Call, sc *scope) (*Node, error) {
	n := len(x.Exprs)
	if n == 0 {
		return nil, fmt.Errorf("compile: call with no expressions")
	}

	// The permutation π, fixed at compile time. Reassemble stays nil when
	// evaluation order is source order (done values land in place).
	evalIdx := make([]int, n)
	for i := range evalIdx {
		evalIdx[i] = i
	}
	if c.cfg.RightToLeft {
		for i := range evalIdx {
			evalIdx[i] = n - 1 - i
		}
	}
	var reassemble []int
	if c.cfg.RightToLeft && n > 1 {
		reassemble = evalIdx
	}

	// Walk the frame shapes first: frame i's environment mode and capture
	// plan, and the shape subexpression i+1 is compiled under.
	scopes := make([]*scope, n) // compile scope of subexpression i
	caps := make([]*CapPlan, n)
	emptyEnv := make([]bool, n)
	scopes[0] = sc
	cur := sc // shape of the environment frame i is built from
	for i := 0; i < n; i++ {
		frameScope := cur
		restCount := n - 1 - i
		switch {
		case c.cfg.RestrictConts:
			srcRest := make([]ast.Expr, restCount)
			for j := 0; j < restCount; j++ {
				srcRest[j] = x.Exprs[evalIdx[i+1+j]]
			}
			caps[i], frameScope = c.restriction(cur, c.fv.FreeSymsOfAll(srcRest))
		case c.cfg.EvlisLastEnv && restCount == 0:
			emptyEnv[i] = true
		}
		if i+1 < n {
			scopes[i+1] = frameScope
		}
		cur = frameScope
	}

	// Compile the subexpressions (evaluation order) into the one shared
	// array every frame's Rest suffix points into.
	nodes := make([]ast.Expr, n)
	for i := 0; i < n; i++ {
		node, err := c.compile(x.Exprs[evalIdx[i]], scopes[i])
		if err != nil {
			return nil, err
		}
		nodes[i] = node
	}

	steps := make([]PushStep, n)
	for i := 0; i < n; i++ {
		steps[i] = PushStep{
			Eval:     nodes[i].(*Node),
			Rest:     nodes[i+1:],
			RestIdx:  evalIdx[i+1:],
			CurIdx:   evalIdx[i],
			EnvEmpty: emptyEnv[i],
			Cap:      caps[i],
		}
		if i > 0 {
			steps[i-1].Next = &steps[i]
		}
	}
	steps[n-1].Reassemble = reassemble

	return &Node{Expr: x, Op: OpCall, Call: &steps[0]}, nil
}
