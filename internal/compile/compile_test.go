package compile

import (
	"math/big"
	"testing"

	"tailspace/internal/ast"
	"tailspace/internal/env"
)

func mustCompile(t *testing.T, e ast.Expr, cfg Config, globals env.Env) *Prog {
	t.Helper()
	ast.InternSyms(e)
	p, err := Program(e, cfg, globals)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// callee extracts the compiled operator node of an OpCall node.
func callee(t *testing.T, n *Node) *Node {
	t.Helper()
	if n.Op != OpCall {
		t.Fatalf("want OpCall, got %v", n.Op)
	}
	return n.Call.Eval
}

func TestLexicalAddressing(t *testing.T) {
	// ((lambda (x) ((lambda (y) x) x)) '1): the inner body's x crosses one
	// rib (y's), so it sits at depth 1; the operand x is in the nearest rib.
	inner := &ast.Lambda{Params: []string{"y"}, Body: &ast.Var{Name: "x"}}
	outer := &ast.Lambda{Params: []string{"x"},
		Body: &ast.Call{Exprs: []ast.Expr{inner, &ast.Var{Name: "x"}}}}
	root := &ast.Call{Exprs: []ast.Expr{outer, &ast.Const{Value: ast.NumConst{Int: big.NewInt(1)}}}}

	prog := mustCompile(t, root, Config{}, env.Empty())
	outerCode := callee(t, prog.Root).Code
	innerCall := outerCode.Body
	operand := innerCall.Call.Next.Eval // second subexpression, left-to-right
	if operand.Op != OpLocal || operand.Ref.Depth != 0 || operand.Ref.Index != 0 {
		t.Fatalf("operand x: want local (0,0), got %v %+v", operand.Op, operand.Ref)
	}
	innerBody := callee(t, innerCall).Code.Body
	if innerBody.Op != OpLocal || innerBody.Ref.Depth != 1 || innerBody.Ref.Index != 0 {
		t.Fatalf("inner x: want local (1,0), got %v %+v", innerBody.Op, innerBody.Ref)
	}
}

func TestGlobalAndUnboundResolution(t *testing.T) {
	globals := env.FromBindings(env.Binding{Name: "car", Loc: 7})
	known := &ast.Var{Name: "car"}
	unknown := &ast.Var{Name: "nope"}
	root := &ast.Call{Exprs: []ast.Expr{known, unknown}}

	prog := mustCompile(t, root, Config{}, globals)
	op := prog.Root.Call.Eval
	if op.Op != OpGlobal || op.Ref.Loc != 7 {
		t.Fatalf("car: want global at 7, got %v %+v", op.Op, op.Ref)
	}
	arg := prog.Root.Call.Next.Eval
	if arg.Op != OpUnbound {
		t.Fatalf("nope: want unbound, got %v", arg.Op)
	}
}

func TestWithinRibShadowing(t *testing.T) {
	// LookupSym scans a rib last-first, so a repeated parameter resolves to
	// its last occurrence; the compiler must agree.
	lam := &ast.Lambda{Params: []string{"x", "x"}, Body: &ast.Var{Name: "x"}}
	prog := mustCompile(t, lam, Config{}, env.Empty())
	body := prog.Root.Code.Body
	if body.Op != OpLocal || body.Ref.Index != 1 {
		t.Fatalf("want index 1 (last occurrence), got %v %+v", body.Op, body.Ref)
	}
	// Both occurrences name one identifier: |Dom ρ| grows by 1, as
	// ExtendSyms would compute.
	if prog.Root.Code.Fresh != 1 {
		t.Fatalf("fresh: want 1, got %d", prog.Root.Code.Fresh)
	}
}

func TestFreeClosureCapturePlan(t *testing.T) {
	// (lambda (x) (lambda (y) (g x y))) under FreeClosures: the inner lambda
	// captures exactly its free resolvable identifiers {g, x}. The outer
	// lambda restricts too, so at the inner site g lives in the outer
	// closure's captured rib (depth 1), not in ρ0 — the fetch must say so.
	globals := env.FromBindings(env.Binding{Name: "g", Loc: 3})
	inner := &ast.Lambda{Params: []string{"y"},
		Body: &ast.Call{Exprs: []ast.Expr{&ast.Var{Name: "g"}, &ast.Var{Name: "x"}, &ast.Var{Name: "y"}}}}
	outer := &ast.Lambda{Params: []string{"x"}, Body: inner}

	prog := mustCompile(t, outer, Config{FreeClosures: true}, globals)
	innerCode := prog.Root.Code.Body.Code
	cap := innerCode.Cap
	if cap == nil || len(cap.Syms) != 2 {
		t.Fatalf("capture plan: want 2 identifiers, got %+v", cap)
	}
	byName := map[string]Ref{}
	for i, s := range cap.Syms {
		byName[env.SymbolName(s)] = cap.Fetch[i]
	}
	if byName["g"].Kind != RefLocal || byName["g"].Depth != 1 || byName["g"].Index != 0 {
		t.Fatalf("g fetch: want local (1,0) in the outer capture rib, got %+v", byName["g"])
	}
	if byName["x"].Kind != RefLocal || byName["x"].Depth != 0 || byName["x"].Index != 0 {
		t.Fatalf("x fetch: want local (0,0), got %+v", byName["x"])
	}
	// Inside the inner body, x lives in the captured rib one level below y's.
	arg := innerCode.Body.Call.Next.Eval
	if arg.Op != OpLocal || arg.Ref.Depth != 1 {
		t.Fatalf("inner x: want local at depth 1, got %v %+v", arg.Op, arg.Ref)
	}
	// Both params shadow nothing in the capture: fresh counts them.
	if innerCode.Fresh != 1 || prog.Root.Code.Fresh != 1 {
		t.Fatalf("fresh counts: inner=%d outer=%d, want 1/1", innerCode.Fresh, prog.Root.Code.Fresh)
	}
}

func TestCapPlanBuild(t *testing.T) {
	// A run-time build against a matching environment fetches locations by
	// coordinate; the all-global case shares one constant location slice.
	x, g := env.Intern("bx"), env.Intern("bg")
	plan := &CapPlan{
		Syms:  []env.Symbol{x, g},
		Fetch: []Ref{{Kind: RefLocal, Depth: 0, Index: 0}, {Kind: RefGlobal, Loc: 42}},
	}
	plan.seal()
	if plan.constLocs != nil {
		t.Fatal("mixed plan must not seal")
	}
	rho := env.Flat([]env.Symbol{x}, []env.Location{11})
	built := plan.Build(rho)
	if l, ok := built.LookupSym(x); !ok || l != 11 {
		t.Fatalf("bx: want 11, got %v %v", l, ok)
	}
	if l, ok := built.LookupSym(g); !ok || l != 42 {
		t.Fatalf("bg: want 42, got %v %v", l, ok)
	}

	allGlobal := &CapPlan{Syms: []env.Symbol{g}, Fetch: []Ref{{Kind: RefGlobal, Loc: 5}}}
	allGlobal.seal()
	if allGlobal.constLocs == nil {
		t.Fatal("all-global plan must seal")
	}
	if l, _ := allGlobal.Build(env.Empty()).LookupSym(g); l != 5 {
		t.Fatalf("sealed build: want 5, got %v", l)
	}
}

func TestRestrictedSetPlan(t *testing.T) {
	// Under RestrictConts, (set! x e) inside (lambda (x) ...) keeps only x in
	// the assign frame: the firing plan addresses (0, 0) of that flat rib.
	lam := &ast.Lambda{Params: []string{"x"},
		Body: &ast.Set{Name: "x", Rhs: &ast.Const{Value: ast.NumConst{Int: big.NewInt(2)}}}}
	prog := mustCompile(t, lam, Config{RestrictConts: true}, env.Empty())
	set := prog.Root.Code.Body
	if !set.Restrict || len(set.Syms) != 1 {
		t.Fatalf("restricted set!: got restrict=%v syms=%v", set.Restrict, set.Syms)
	}
	if set.Plan.Ref.Kind != RefLocal || set.Plan.Ref.Depth != 0 || set.Plan.Ref.Index != 0 {
		t.Fatalf("firing plan: want local (0,0), got %+v", set.Plan.Ref)
	}
	// The site resolution is still the source coordinates.
	if set.Ref.Kind != RefLocal || set.Ref.Depth != 0 || set.Ref.Index != 0 {
		t.Fatalf("site ref: want local (0,0), got %+v", set.Ref)
	}
}

func TestCallPlanShapes(t *testing.T) {
	call := &ast.Call{Exprs: []ast.Expr{
		&ast.Var{Name: "f"}, &ast.Const{Value: ast.NumConst{Int: big.NewInt(1)}}, &ast.Const{Value: ast.NumConst{Int: big.NewInt(2)}},
	}}
	globals := env.FromBindings(env.Binding{Name: "f", Loc: 1})

	// Z_evlis: only the frame awaiting the last subexpression stores { }.
	prog := mustCompile(t, call, Config{EvlisLastEnv: true}, globals)
	s0 := prog.Root.Call
	if s0.EnvEmpty || s0.Next.EnvEmpty || !s0.Next.Next.EnvEmpty {
		t.Fatalf("evlis env modes wrong: %v %v %v", s0.EnvEmpty, s0.Next.EnvEmpty, s0.Next.Next.EnvEmpty)
	}
	if s0.CurIdx != 0 || s0.Next.CurIdx != 1 || s0.Next.Next.CurIdx != 2 {
		t.Fatal("left-to-right CurIdx sequence wrong")
	}
	if s0.Next.Next.Reassemble != nil {
		t.Fatal("left-to-right needs no reassembly")
	}
	if len(s0.Rest) != 2 || len(s0.Next.Rest) != 1 || len(s0.Next.Next.Rest) != 0 {
		t.Fatal("rest lengths wrong")
	}

	// Right-to-left: evaluation order is reversed and the last step carries
	// the permutation back to source order.
	prog = mustCompile(t, call, Config{RightToLeft: true}, globals)
	s0 = prog.Root.Call
	if s0.CurIdx != 2 || s0.Next.CurIdx != 1 || s0.Next.Next.CurIdx != 0 {
		t.Fatal("right-to-left CurIdx sequence wrong")
	}
	re := s0.Next.Next.Reassemble
	if len(re) != 3 || re[0] != 2 || re[1] != 1 || re[2] != 0 {
		t.Fatalf("reassemble: want [2 1 0], got %v", re)
	}
}

func TestUnknownFormErrors(t *testing.T) {
	prog := mustCompile(t, &ast.Const{Value: ast.NilConst{}}, Config{}, env.Empty())
	// A compiled Node is an ast.Expr the compiler does not lower (it embeds
	// its source, but the type switch sees the wrapper): Program must report
	// it rather than guess, so the runner can fall back to the stepper.
	if _, err := Program(prog.Root, Config{}, env.Empty()); err == nil {
		t.Fatal("want error for foreign expression form")
	}
}
