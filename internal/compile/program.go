// Package compile lowers expanded Core Scheme to a pre-resolved program for
// the compiled execution backend (core.BackendCompiled).
//
// The lowering trades the stepper's per-transition work for compile-time
// facts, without changing a single observable:
//
//   - Identifier resolution becomes lexical addressing. Every environment a
//     compiled expression can be evaluated in has a statically known rib
//     shape — the chain of Extend ribs above ρ0 for ordinary register
//     environments, or the single flat rib RestrictSyms builds for the
//     safe-for-space restrictions — so a variable compiles to (depth, index)
//     coordinates (env.LocAt) or, for ρ0 bindings, to the location itself.
//     No LookupSym chain scan happens at run time.
//
//   - Expression dispatch becomes a dense opcode switch. Each Node carries an
//     Op; the executor switches on the integer instead of type-switching over
//     AST node kinds.
//
//   - The Z_free/Z_sfs environment restrictions become capture plans: the
//     keep list (FV sets, sorted and deduplicated exactly as the stepper's
//     FreeVarCache delivers them) is resolved at compile time into fetch
//     coordinates, so building a restricted environment is a handful of
//     indexed loads instead of per-identifier rib scans.
//
// A Node embeds its source expression: Node is itself an ast.Expr whose
// String and Size delegate to the source, so compiled states, continuation
// frames, and observability reports carry exactly the strings, sizes, and
// node identities the stepper's do. The space accounting never looks inside
// expressions (frames are priced by environment size and operand counts), so
// storing Nodes in frame expression slots leaves every Figure 7/8 charge
// unchanged.
package compile

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/value"
)

// Config is the compilation contract: the parts of a machine variant (plus
// the argument-order policy) that determine the compiled form. A program
// compiled under one Config must only run under a machine with the same
// policies.
type Config struct {
	// FreeClosures: closures capture ρ restricted to FV(L) (Z_free, Z_sfs).
	FreeClosures bool
	// RestrictConts: continuation frames store ρ restricted to the free
	// identifiers of the expressions they will evaluate (Z_sfs).
	RestrictConts bool
	// EvlisLastEnv: the frame awaiting a call's last subexpression stores the
	// empty environment (Z_evlis).
	EvlisLastEnv bool
	// RightToLeft evaluates call subexpressions last-first. Random order
	// cannot be compiled (the permutation is drawn per call at run time);
	// callers fall back to the stepper.
	RightToLeft bool
}

// Op is the opcode of a compiled expression: the dense dispatch index the
// executor switches on. Every expression form of Figure 1 appears, with
// identifier references split by how they resolved.
type Op int

const (
	// OpConst delivers a precomputed constant value.
	OpConst Op = iota
	// OpLocal reads a variable at (depth, index) rib coordinates.
	OpLocal
	// OpGlobal reads a variable bound in ρ0; its location is a compile-time
	// constant.
	OpGlobal
	// OpUnbound is a variable that resolves nowhere: evaluating it sticks the
	// machine, exactly like the stepper's failed lookup.
	OpUnbound
	// OpLambda builds a closure from a LambdaCode.
	OpLambda
	// OpIf pushes a select continuation and evaluates the test.
	OpIf
	// OpSet pushes an assign continuation and evaluates the right-hand side.
	OpSet
	// OpCall pushes the first push continuation of a CallPlan.
	OpCall

	// NumOps sizes dense opcode-indexed tables (and bounds the exhaustiveness
	// check in tools/analyzers/framecheck).
	NumOps
)

var opNames = [NumOps]string{
	OpConst:   "const",
	OpLocal:   "local",
	OpGlobal:  "global",
	OpUnbound: "unbound",
	OpLambda:  "lambda",
	OpIf:      "if",
	OpSet:     "set!",
	OpCall:    "call",
}

// String names the opcode for diagnostics.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// RefKind classifies how an identifier resolved against the static shape of
// the environment it will be looked up in.
type RefKind int

const (
	// RefLocal resolves within the rib chain at (Depth, Index).
	RefLocal RefKind = iota
	// RefGlobal resolves in ρ0; Loc is the compile-time-constant location.
	RefGlobal
	// RefUnbound resolves nowhere.
	RefUnbound
)

// Ref is one resolved identifier occurrence.
type Ref struct {
	Kind         RefKind
	Depth, Index int          // RefLocal: rib coordinates
	Loc          env.Location // RefGlobal: the ρ0 location
}

// CapPlan builds, without identifier comparisons, the flat restricted
// environment RestrictSyms would build at run time. Syms is the keep list in
// the order RestrictSyms preserves (sorted, deduplicated — what the
// FreeVarCache delivers), already filtered to the identifiers that resolve;
// Fetch says where each location comes from in the environment the plan is
// built against. An empty plan builds { }, exactly like a restriction that
// keeps nothing.
type CapPlan struct {
	Syms  []env.Symbol
	Fetch []Ref
	// constLocs is set when every fetch is global: the location slice is then
	// itself a compile-time constant shared across builds.
	constLocs []env.Location
}

// Build instantiates the plan against rho, whose static shape the Fetch
// coordinates were resolved against. The resulting environment is a fresh
// single flat rib (sharing the Syms slice), indistinguishable from the
// stepper's RestrictSyms result.
func (p *CapPlan) Build(rho env.Env) env.Env {
	if len(p.Syms) == 0 {
		return env.Env{}
	}
	if p.constLocs != nil {
		return env.Flat(p.Syms, p.constLocs)
	}
	locs := make([]env.Location, len(p.Fetch))
	for i, f := range p.Fetch {
		if f.Kind == RefGlobal {
			locs[i] = f.Loc
		} else {
			locs[i] = rho.LocAt(f.Depth, f.Index)
		}
	}
	return env.Flat(p.Syms, locs)
}

// seal precomputes the shared location slice when every fetch is global.
func (p *CapPlan) seal() {
	for _, f := range p.Fetch {
		if f.Kind != RefGlobal {
			return
		}
	}
	locs := make([]env.Location, len(p.Fetch))
	for i, f := range p.Fetch {
		locs[i] = f.Loc
	}
	p.constLocs = locs
}

// LambdaCode is the compiled form of one lambda expression. Closures minted
// from it carry the code in value.Closure.Code, so applying the closure needs
// no per-call analysis.
type LambdaCode struct {
	// Lam is the source lambda (arity, parameter spellings, diagnostics).
	Lam *ast.Lambda
	// Body is the compiled body, resolved against [Params rib · closure env].
	Body *Node
	// Params shares the lambda's interned parameter slice: the rib the body
	// environment pushes (empty for a thunk, which pushes no rib).
	Params []env.Symbol
	// Cap captures the closure environment: nil captures the register
	// environment unchanged; otherwise the FV(L) restriction (Z_free, Z_sfs).
	Cap *CapPlan
	// Fresh is the ExtendSized count: how many Params are neither bound in
	// the closure environment's static shape nor repeated later in the list —
	// the |Dom ρ| growth ExtendSyms derives with a lookup per identifier.
	Fresh int
}

// AssignPlan tells an assign frame where its set! target lives within the
// frame's own saved environment. One plan per set! node, shared by every
// frame the node pushes; frames copied without it (MTA chain compression)
// fall back to the stepper's lookup.
type AssignPlan struct {
	Ref Ref
}

// PushStep is the compiled form of one push continuation of a call site:
// step i describes the frame that waits while subexpression i (in evaluation
// order) runs. The Rest/RestIdx slices are shared suffixes of one per-site
// array holding the compiled subexpressions in evaluation order, so a
// compiled frame is field-for-field what the stepper would have built.
type PushStep struct {
	// Eval is the subexpression whose evaluation this frame awaits.
	Eval *Node
	// Rest holds the subexpressions still to come after Eval (compiled Nodes,
	// evaluation order); RestIdx their source positions; CurIdx the source
	// position of Eval. These populate the frame's fields verbatim.
	Rest    []ast.Expr
	RestIdx []int
	CurIdx  int
	// EnvEmpty stores { } in the frame (Z_evlis, last subexpression); Cap
	// restricts to the free identifiers of Rest (Z_sfs); with both unset the
	// frame stores the environment it was built from unchanged.
	EnvEmpty bool
	Cap      *CapPlan
	// Next describes the following frame; nil marks the last subexpression,
	// whose completion reassembles the call.
	Next *PushStep
	// Reassemble, on the last step, maps done-order to source positions
	// (vals[Reassemble[i]] = done[i]); nil means evaluation order was source
	// order and the done values are already in place.
	Reassemble []int
}

// Node is one compiled expression. The embedded source expression makes Node
// an ast.Expr — Size, String, and node identity (for allocation and peak
// attribution) are the source's — while Op and the resolved fields drive the
// executor.
type Node struct {
	ast.Expr
	Op Op

	// OpConst: the constant's runtime value. Simple constants carry no
	// locations (Section 12), so one shared value is indistinguishable from
	// the stepper's per-evaluation conversion.
	Const value.Value

	// OpLocal / OpGlobal / OpUnbound / OpSet: the identifier's resolution
	// against the node's compile-time scope, and its spelling for stuck
	// messages.
	Ref  Ref
	Name string
	Sym  env.Symbol

	// OpLambda
	Code *LambdaCode

	// OpIf: compiled arms plus the continuation-environment plan (nil stores
	// the register environment unchanged).
	Test, Then, Else *Node
	Cap              *CapPlan

	// OpSet: compiled right-hand side; Restrict mirrors RestrictToSym (the
	// Z_sfs assign frame keeps only the target binding — Syms is the shared
	// one-identifier rib); Plan is the frame's firing plan.
	Rhs      *Node
	Restrict bool
	Syms     []env.Symbol
	Plan     *AssignPlan

	// OpCall: the first push step; the rest of the plan hangs off Next.
	Call *PushStep
}

// Source returns the source expression this node compiles. The executor
// unwraps nodes with it when attributing allocations and peaks, so attribution
// keys match the stepper's ast.Number identities.
func (n *Node) Source() ast.Expr { return n.Expr }

// Prog is a compiled program: the root node plus the Config it was compiled
// under.
type Prog struct {
	Root   *Node
	Config Config
}

// constValue converts a quoted constant to its runtime value, mirroring the
// stepper's conversion exactly.
func constValue(c ast.ConstValue) value.Value {
	switch x := c.(type) {
	case ast.BoolConst:
		return value.Bool(bool(x))
	case ast.NumConst:
		return value.Num{Int: x.Int}
	case ast.SymConst:
		return value.Sym(string(x))
	case ast.StrConst:
		return value.Str(string(x))
	case ast.CharConst:
		return value.Char(rune(x))
	case ast.NilConst:
		return value.Null{}
	case ast.UnspecifiedConst:
		return value.Unspecified{}
	}
	panic(fmt.Sprintf("compile: unknown constant %T", c))
}
