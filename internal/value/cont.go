package value

import (
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/env"
)

// Cont is a continuation κ of Figure 4:
//
//	κ ::= halt
//	    | select:(E1, E2, ρ, κ)
//	    | assign:(I, ρ, κ)
//	    | push:((E,...), (v,...), π, ρ, κ)
//	    | call:((v,...), κ)
//	    | return:(ρ, κ)        (Z_gc only)
//	    | return:(A, ρ, κ)     (Z_stack only)
type Cont interface {
	isCont()
	// Next returns the saved continuation, or nil for halt.
	Next() Cont
}

// Halt is the initial continuation.
type Halt struct{}

// Select is select:(E1, E2, ρ, κ) — awaiting the test value of an if.
type Select struct {
	Then, Else ast.Expr
	Env        env.Env
	K          Cont
}

// Assign is assign:(I, ρ, κ) — awaiting the right-hand side of a set!.
type Assign struct {
	Name string
	// Sym is the interned Name when the machine had it; zero falls back to
	// string lookup.
	Sym env.Symbol
	Env env.Env
	K   Cont
	// Plan is the compiled backend's firing plan (a *compile.AssignPlan);
	// nil under the stepper, and the compiled executor falls back to the
	// stepper's lookup when a frame arrives without one. Plans address the
	// static program, so they carry no space charge and no GC roots.
	Plan any
}

// Push is push:((E,...), (v,...), π, ρ, κ) — evaluating the subexpressions
// of a procedure call. Rest holds the expressions still to evaluate, in
// evaluation order; Done holds the values computed so far. The permutation π
// is represented by the original positions RestIdx/DoneIdx so the call can
// be reassembled in source order when evaluation finishes.
type Push struct {
	Rest    []ast.Expr
	RestIdx []int
	Done    []Value
	DoneIdx []int
	// CurIdx is the source position of the subexpression currently being
	// evaluated, so values can be reassembled in source order under any π.
	CurIdx int
	Env    env.Env
	K      Cont
	// Plan is the compiled backend's step plan (a *compile.PushStep); nil
	// under the stepper (see Assign.Plan).
	Plan any
}

// Call is call:((v1,...,vm), κ) — the operands are ready and the machine is
// delivering the operator value.
type Call struct {
	Args []Value
	K    Cont
}

// Return is return:(ρ, κ), the continuation Z_gc pushes on every procedure
// call (Section 8): it wastes space for no reason, making Z_gc improperly
// tail recursive.
type Return struct {
	Env env.Env
	K   Cont
}

// ReturnStack is return:(A, ρ, κ), the continuation Z_stack pushes. The
// locations in Del are deleted from the store when the continuation is
// invoked — an Algol-like deletion strategy. If a deleted location is still
// referenced the computation is stuck (a dangling pointer).
type ReturnStack struct {
	Del []env.Location
	Env env.Env
	K   Cont
}

// MonCtc is mon-ctc:(E, ρ, l, κ) — evaluating the contract expression of a
// (mon ctc E) form; the monitored expression E and its environment wait in
// the frame.
type MonCtc struct {
	Expr  ast.Expr
	Label string
	Env   env.Env
	K     Cont
}

// MonAttach is mon-attach:(v_ctc, l, κ) — the contract is ready and the
// machine is evaluating the monitored expression. On the monitor machines the
// delivered value is checked (flat) or wrapped (arrow); everywhere else it
// passes through unchanged.
type MonAttach struct {
	Ctc   Value
	Label string
	K     Cont
}

// Pending is one deferred contract check: the contract a result must satisfy
// and the label blamed if it does not. Src is the attach-time contract the
// check descends from (the whole arrow, for a codomain check): two pending
// checks are duplicates exactly when they came from the *same monitor* with
// the same blame, so the space-efficient join dedups by Src's identity —
// codomain predicates are routinely shared (number? is one primop), their
// identity says nothing about which monitor is checking.
type Pending struct {
	Ctc   Value
	Src   Value
	Label string
}

// MonDom is mon-dom:(g, (v,...), i, κ) — a guarded application checking its
// arguments: the frame awaits the verdict of Ctc.Dom[Idx] applied to
// Args[Idx]. A true verdict resumes the application at the next argument; #f
// blames the caller.
type MonDom struct {
	G    Guarded
	Args []Value
	Idx  int
	K    Cont
}

// MonCod is mon-cod:((κ_ctc, l) ..., κ) — the monitor frame proper: the
// codomain checks pending for the value this continuation will receive. The
// naive monitor pushes a fresh MonCod on every guarded call, breaking tail
// recursion (one frame per recursion level, Greenberg's Θ(n)); the
// space-efficient monitor joins a new check into an existing top MonCod
// frame, dropping duplicates, so monitoring occupies bounded space per
// continuation.
type MonCod struct {
	Pend []Pending
	K    Cont
}

// MonChk is mon-chk:(v, (κ_ctc, l) ..., l, κ) — awaiting a flat predicate's
// verdict on Val; Rest holds the checks still pending on the same value. A
// true verdict continues with Rest (or delivers Val); #f blames Label.
type MonChk struct {
	Val   Value
	Rest  []Pending
	Label string
	K     Cont
}

func (Halt) isCont()         {}
func (*Select) isCont()      {}
func (*Assign) isCont()      {}
func (*Push) isCont()        {}
func (*Call) isCont()        {}
func (*Return) isCont()      {}
func (*ReturnStack) isCont() {}
func (*MonCtc) isCont()      {}
func (*MonAttach) isCont()   {}
func (*MonDom) isCont()      {}
func (*MonCod) isCont()      {}
func (*MonChk) isCont()      {}

func (Halt) Next() Cont           { return nil }
func (k *Select) Next() Cont      { return k.K }
func (k *Assign) Next() Cont      { return k.K }
func (k *Push) Next() Cont        { return k.K }
func (k *Call) Next() Cont        { return k.K }
func (k *Return) Next() Cont      { return k.K }
func (k *ReturnStack) Next() Cont { return k.K }
func (k *MonCtc) Next() Cont      { return k.K }
func (k *MonAttach) Next() Cont   { return k.K }
func (k *MonDom) Next() Cont      { return k.K }
func (k *MonCod) Next() Cont      { return k.K }
func (k *MonChk) Next() Cont      { return k.K }

// RootReturnEnvironments is an ablation switch for the experiments: when
// true, the saved environments of return continuations are treated as GC
// roots (the maximally literal reading of the garbage collection rule).
// Under that reading Z_gc retains everything Z_stack retains and the paper's
// Theorem 25(a) separation collapses — which is exactly why the default is
// the charged-but-dead reading (see DESIGN.md). Only the ablation experiment
// flips this, single-threaded.
var RootReturnEnvironments = false

// ContLocations appends the store locations occurring within κ. Consecutive
// frames saving the same environment (Z_tail frames all save ρ itself)
// contribute its locations once — callers treat the result as a root set, so
// dropping duplicates is exact and keeps root building O(frames + one env)
// instead of O(frames × env).
func ContLocations(k Cont, out []env.Location) []env.Location {
	var lastEnv env.Env
	haveLast := false
	appendEnv := func(e env.Env) {
		if haveLast && e == lastEnv {
			return
		}
		lastEnv, haveLast = e, true
		out = e.AppendLocations(out)
	}
	for k != nil {
		switch x := k.(type) {
		case Halt:
			return out
		case *Select:
			appendEnv(x.Env)
		case *Assign:
			appendEnv(x.Env)
		case *Push:
			appendEnv(x.Env)
			for _, v := range x.Done {
				out = Locations(v, out)
			}
		case *Call:
			for _, v := range x.Args {
				out = Locations(v, out)
			}
		case *Return:
			// The environment a return continuation restores is dead: no
			// rule ever dereferences it — the next continuation restores its
			// own environment (Section 8: "these rules waste space for no
			// reason"). It is charged by Figure 7 (1 + |Dom ρ|) but it is
			// not a root, which is what keeps Z_gc free of the Theorem 25(a)
			// quadratic blowup that Z_stack's A-retention causes.
			if RootReturnEnvironments {
				appendEnv(x.Env)
			}
		case *ReturnStack:
			// Same dead environment as Return, but the deletion set A roots
			// its locations: a stack frame keeps its variables alive until
			// it returns. This retention — not the deletion itself — is what
			// makes Z_stack asymptotically worse than a garbage collector
			// (Section 5, Theorem 25(a)).
			out = append(out, x.Del...)
		case *MonCtc:
			appendEnv(x.Env)
		case *MonAttach:
			out = Locations(x.Ctc, out)
		case *MonDom:
			out = Locations(x.G, out)
			for _, v := range x.Args {
				out = Locations(v, out)
			}
		case *MonCod:
			for _, p := range x.Pend {
				out = Locations(p.Ctc, out)
				// Src must stay rooted while its check is pending: the join
				// dedups by its tag location, which a collected-and-reused
				// cell would alias.
				out = Locations(p.Src, out)
			}
		case *MonChk:
			out = Locations(x.Val, out)
			for _, p := range x.Rest {
				out = Locations(p.Ctc, out)
				out = Locations(p.Src, out)
			}
		default:
			// A frame kind this walk does not know would silently lose GC
			// roots — fail loudly instead (and see tools/analyzers, which
			// rejects the build when a case is missing).
			panic(fmt.Sprintf("value: unrooted continuation frame %T — every frame kind must contribute its roots", k))
		}
		k = k.Next()
	}
	return out
}

// Depth returns the number of continuation frames below κ, halt included.
// It is a diagnostic ("control stack depth"), not a space measure.
func Depth(k Cont) int {
	n := 0
	for k != nil {
		n++
		k = k.Next()
	}
	return n
}
