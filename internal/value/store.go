package value

import (
	"math/rand"
	"sort"

	"tailspace/internal/env"
)

// StoreObserver receives a notification for every mutation of a store: one
// call per allocation, write, and deletion (garbage collection reports each
// collected location as a deletion). Meters use these hooks to maintain
// incremental space accounts in O(cells touched) per transition instead of
// re-walking the whole store; the observability layer uses the same hooks to
// attribute allocations to the expression being evaluated. Values are
// structurally immutable once stored (mutation replaces the slot), so a
// price computed at notification time never goes stale.
type StoreObserver interface {
	// StoreAlloc reports that a fresh location l was bound to v.
	StoreAlloc(l env.Location, v Value)
	// StoreSet reports that σ(l) was replaced: old is the previous value.
	StoreSet(l env.Location, old, v Value)
	// StoreDelete reports that l was removed while holding v (explicit
	// deletion or garbage collection).
	StoreDelete(l env.Location, v Value)
}

// Store is the σ of Figure 4: a finite map from locations to values. It also
// carries the deterministic random source used by the `random` primitive
// (Theorem 26's program calls it) so whole runs are reproducible.
//
// Two representations share this one type. The default is a dense slice
// arena: locations are indices into vals, a live/slot pair maintains Dom σ as
// a dense set with O(1) membership and swap-remove deletion, and Collect
// marks with a reusable epoch array so a collection allocates nothing.
// Locations are never reused after deletion — the Z_stack strategy's
// dangling-pointer detection depends on a deleted α staying dead forever —
// so vals grows monotonically with Allocs; that memory-for-speed trade is
// deliberate. NewMapStore instead builds the original map-backed reference
// implementation (m != nil selects it in every method), kept so differential
// tests can pin the arena against it observation-for-observation.
type Store struct {
	// Arena representation (m == nil).
	vals []Value        // vals[α]; nil after deletion
	live []env.Location // Dom σ, dense and unordered
	slot []int32        // slot[α] = index of α in live, or -1 when dead
	// Epoch-mark collection state, reused across Collects.
	marks   []uint32
	epoch   uint32
	gcStack []env.Location
	occBuf  []env.Location
	// envMarks dedups closure environments within one trace: many closures
	// share one rib chain (every top-level closure closes over ρ0), and
	// equal Envs contribute identical location sets. Entries are
	// epoch-stamped so the map is never cleared between collections.
	envMarks map[env.Env]uint32

	// Reference representation (selected when m != nil).
	m map[env.Location]Value

	next env.Location
	// mut counts every store mutation (alloc, set, delete, collection); the
	// runner compares it across steps to prove the store unchanged since the
	// last collection.
	mut uint64

	// Allocs counts every allocation ever performed; it is monotone and
	// unaffected by garbage collection.
	Allocs int
	Rand   *rand.Rand

	observers []StoreObserver
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(0x5ce4e5)) }

// NewStore returns an empty arena-backed store with a fixed-seed random
// source.
func NewStore() *Store {
	return &Store{Rand: newRand()}
}

// NewMapStore returns an empty store using the map-backed reference
// representation. Both representations allocate the same sequence of
// locations and share the fixed random seed, so a program run against either
// produces identical answers; differential tests rely on exactly that.
func NewMapStore() *Store {
	return &Store{m: make(map[env.Location]Value), Rand: newRand()}
}

// IsMapBacked reports whether s uses the reference map representation.
func (s *Store) IsMapBacked() bool { return s.m != nil }

// Mutations returns the count of mutations (allocations, writes, deletions)
// performed on s so far. Equal counts across two moments prove the store did
// not change in between.
func (s *Store) Mutations() uint64 { return s.mut }

// AddObserver registers o for mutation notifications. Adding the same
// observer twice is a no-op (a meter re-attached to the store it is already
// watching must not double-count).
func (s *Store) AddObserver(o StoreObserver) {
	for _, have := range s.observers {
		if have == o {
			return
		}
	}
	s.observers = append(s.observers, o)
}

// RemoveObserver unregisters o. The vacated tail slot is nilled so the
// backing array does not retain the removed observer (or any meter state it
// captured).
func (s *Store) RemoveObserver(o StoreObserver) {
	for i, have := range s.observers {
		if have == o {
			last := len(s.observers) - 1
			copy(s.observers[i:], s.observers[i+1:])
			s.observers[last] = nil
			s.observers = s.observers[:last]
			return
		}
	}
}

// Alloc binds a fresh location to v and returns it.
func (s *Store) Alloc(v Value) env.Location {
	l := s.next
	s.next++
	if s.m != nil {
		s.m[l] = v
	} else {
		s.vals = append(s.vals, v)
		s.slot = append(s.slot, int32(len(s.live)))
		s.live = append(s.live, l)
	}
	s.Allocs++
	s.mut++
	for _, o := range s.observers {
		o.StoreAlloc(l, v)
	}
	return l
}

// AllocN allocates n fresh locations initialized to the given values.
func (s *Store) AllocN(vs []Value) []env.Location {
	out := make([]env.Location, len(vs))
	for i, v := range vs {
		out[i] = s.Alloc(v)
	}
	return out
}

// Get returns σ(α) and reports whether α ∈ Dom σ.
func (s *Store) Get(l env.Location) (Value, bool) {
	if s.m != nil {
		v, ok := s.m[l]
		return v, ok
	}
	if l < 0 || int(l) >= len(s.slot) || s.slot[l] < 0 {
		return nil, false
	}
	return s.vals[l], true
}

// Set updates σ(α); α must already be allocated.
func (s *Store) Set(l env.Location, v Value) bool {
	var old Value
	if s.m != nil {
		var ok bool
		old, ok = s.m[l]
		if !ok {
			return false
		}
		s.m[l] = v
	} else {
		if l < 0 || int(l) >= len(s.slot) || s.slot[l] < 0 {
			return false
		}
		old = s.vals[l]
		s.vals[l] = v
	}
	s.mut++
	for _, o := range s.observers {
		o.StoreSet(l, old, v)
	}
	return true
}

// Delete removes α from the store (the Z_stack deletion strategy). Deleting
// an absent location is a no-op. The location is never reused.
func (s *Store) Delete(l env.Location) {
	if s.m != nil {
		v, ok := s.m[l]
		if !ok {
			return
		}
		delete(s.m, l)
		s.mut++
		for _, o := range s.observers {
			o.StoreDelete(l, v)
		}
		return
	}
	if l < 0 || int(l) >= len(s.slot) || s.slot[l] < 0 {
		return
	}
	v := s.vals[l]
	s.remove(l)
	s.mut++
	for _, o := range s.observers {
		o.StoreDelete(l, v)
	}
}

// remove drops a live α from the arena's dense set (swap-remove) and releases
// its value.
func (s *Store) remove(l env.Location) {
	i := s.slot[l]
	last := len(s.live) - 1
	moved := s.live[last]
	s.live[i] = moved
	s.slot[moved] = i
	s.live = s.live[:last]
	s.slot[l] = -1
	s.vals[l] = nil
}

// Size is |Dom σ|, the number of live locations.
func (s *Store) Size() int {
	if s.m != nil {
		return len(s.m)
	}
	return len(s.live)
}

// Each calls f for every live (location, value) pair (iteration order
// unspecified).
func (s *Store) Each(f func(l env.Location, v Value)) {
	if s.m != nil {
		for l, v := range s.m {
			f(l, v)
		}
		return
	}
	for _, l := range s.live {
		f(l, s.vals[l])
	}
}

// Locations returns Dom σ in ascending order.
func (s *Store) Locations() []env.Location {
	out := make([]env.Location, 0, s.Size())
	if s.m != nil {
		for l := range s.m {
			out = append(out, l)
		}
	} else {
		out = append(out, s.live...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// beginEpoch prepares the reusable mark array for a fresh traversal: bump the
// epoch (a slot is marked iff marks[α] == epoch) and grow marks to cover
// every location ever allocated. Growth goes through append so its
// reallocation is amortized; a wrapped epoch counter clears the array once
// every 2³²−1 traversals.
func (s *Store) beginEpoch() {
	for len(s.marks) < len(s.vals) {
		s.marks = append(s.marks, 0)
	}
	s.epoch++
	if s.epoch == 0 {
		for i := range s.marks {
			s.marks[i] = 0
		}
		s.envMarks = nil
		s.epoch = 1
	}
}

// markReachable traces the reachability relation of Figure 5's collection
// rule from roots, setting marks[α] == epoch for every location encountered
// (dangling references included, matching the map reference's seen set). The
// work stack is reused across calls, so a steady-state traversal allocates
// nothing.
func (s *Store) markReachable(roots []env.Location) {
	s.beginEpoch()
	if s.envMarks == nil {
		s.envMarks = make(map[env.Env]uint32)
	} else if len(s.envMarks) > 1<<16 {
		// Stale Env keys pin dead rib chains in Go's heap; rebuild once the
		// map outgrows any plausible live population.
		s.envMarks = make(map[env.Env]uint32)
	}
	stack := append(s.gcStack[:0], roots...)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l < 0 || int(l) >= len(s.marks) || s.marks[l] == s.epoch {
			continue
		}
		s.marks[l] = s.epoch
		if s.slot[l] < 0 {
			continue
		}
		// Closures are unpacked here rather than through Locations so an
		// environment shared by many closures is walked once per trace.
		if cl, ok := s.vals[l].(Closure); ok {
			stack = append(stack, cl.Tag)
			if s.envMarks[cl.Env] != s.epoch {
				s.envMarks[cl.Env] = s.epoch
				stack = cl.Env.AppendLocations(stack)
			}
			continue
		}
		stack = Locations(s.vals[l], stack)
	}
	s.gcStack = stack[:0]
}

// Reachable computes the set of locations reachable from roots through the
// values in the store — the reachability relation of the garbage collection
// rule in Figure 5.
func (s *Store) Reachable(roots []env.Location) map[env.Location]bool {
	if s.m != nil {
		seen := make(map[env.Location]bool, len(roots))
		stack := append([]env.Location(nil), roots...)
		for len(stack) > 0 {
			l := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[l] {
				continue
			}
			seen[l] = true
			v, ok := s.m[l]
			if !ok {
				continue
			}
			stack = Locations(v, stack)
		}
		return seen
	}
	s.markReachable(roots)
	out := make(map[env.Location]bool)
	for l := range s.marks {
		if s.marks[l] == s.epoch {
			out[env.Location(l)] = true
		}
	}
	return out
}

// Collect applies the garbage collection rule: every location not reachable
// from roots is removed from the store. It returns the number of locations
// collected. On the arena representation a collection that frees nothing
// performs zero heap allocations.
func (s *Store) Collect(roots []env.Location) int {
	if s.m != nil {
		reach := s.Reachable(roots)
		collected := 0
		for l, v := range s.m {
			if !reach[l] {
				delete(s.m, l)
				s.mut++
				for _, o := range s.observers {
					o.StoreDelete(l, v)
				}
				collected++
			}
		}
		return collected
	}
	s.markReachable(roots)
	collected := 0
	for i := 0; i < len(s.live); {
		l := s.live[i]
		if s.marks[l] == s.epoch {
			i++
			continue
		}
		v := s.vals[l]
		s.remove(l)
		s.mut++
		for _, o := range s.observers {
			o.StoreDelete(l, v)
		}
		collected++
	}
	return collected
}

// OccursIn reports whether any location in dels occurs within the remaining
// store (excluding the candidate locations themselves), i.e. whether the
// Z_stack deletion would create a dangling pointer through the store. The
// per-value scratch is reused across calls.
func (s *Store) OccursIn(dels map[env.Location]bool) bool {
	scratch := s.occBuf[:0]
	hit := false
	if s.m != nil {
		for l, v := range s.m {
			if dels[l] {
				continue
			}
			scratch = Locations(v, scratch[:0])
			for _, ref := range scratch {
				if dels[ref] {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
	} else {
		for _, l := range s.live {
			if dels[l] {
				continue
			}
			scratch = Locations(s.vals[l], scratch[:0])
			for _, ref := range scratch {
				if dels[ref] {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
	}
	s.occBuf = scratch[:0]
	return hit
}
