package value

import (
	"math/rand"
	"sort"

	"tailspace/internal/env"
)

// StoreObserver receives a notification for every mutation of a store: one
// call per allocation, write, and deletion (garbage collection reports each
// collected location as a deletion). Meters use these hooks to maintain
// incremental space accounts in O(cells touched) per transition instead of
// re-walking the whole store; the observability layer uses the same hooks to
// attribute allocations to the expression being evaluated. Values are
// structurally immutable once stored (mutation replaces the slot), so a
// price computed at notification time never goes stale.
type StoreObserver interface {
	// StoreAlloc reports that a fresh location l was bound to v.
	StoreAlloc(l env.Location, v Value)
	// StoreSet reports that σ(l) was replaced: old is the previous value.
	StoreSet(l env.Location, old, v Value)
	// StoreDelete reports that l was removed while holding v (explicit
	// deletion or garbage collection).
	StoreDelete(l env.Location, v Value)
}

// Store is the σ of Figure 4: a finite map from locations to values. It also
// carries the deterministic random source used by the `random` primitive
// (Theorem 26's program calls it) so whole runs are reproducible.
type Store struct {
	vals map[env.Location]Value
	next env.Location
	// Allocs counts every allocation ever performed; it is monotone and
	// unaffected by garbage collection.
	Allocs int
	Rand   *rand.Rand

	observers []StoreObserver
}

// NewStore returns an empty store with a fixed-seed random source.
func NewStore() *Store {
	return &Store{
		vals: make(map[env.Location]Value),
		Rand: rand.New(rand.NewSource(0x5ce4e5)),
	}
}

// AddObserver registers o for mutation notifications. Adding the same
// observer twice is a no-op (a meter re-attached to the store it is already
// watching must not double-count).
func (s *Store) AddObserver(o StoreObserver) {
	for _, have := range s.observers {
		if have == o {
			return
		}
	}
	s.observers = append(s.observers, o)
}

// RemoveObserver unregisters o.
func (s *Store) RemoveObserver(o StoreObserver) {
	for i, have := range s.observers {
		if have == o {
			s.observers = append(s.observers[:i], s.observers[i+1:]...)
			return
		}
	}
}

// Alloc binds a fresh location to v and returns it.
func (s *Store) Alloc(v Value) env.Location {
	l := s.next
	s.next++
	s.vals[l] = v
	s.Allocs++
	for _, o := range s.observers {
		o.StoreAlloc(l, v)
	}
	return l
}

// AllocN allocates n fresh locations initialized to the given values.
func (s *Store) AllocN(vs []Value) []env.Location {
	out := make([]env.Location, len(vs))
	for i, v := range vs {
		out[i] = s.Alloc(v)
	}
	return out
}

// Get returns σ(α) and reports whether α ∈ Dom σ.
func (s *Store) Get(l env.Location) (Value, bool) {
	v, ok := s.vals[l]
	return v, ok
}

// Set updates σ(α); α must already be allocated.
func (s *Store) Set(l env.Location, v Value) bool {
	old, ok := s.vals[l]
	if !ok {
		return false
	}
	s.vals[l] = v
	for _, o := range s.observers {
		o.StoreSet(l, old, v)
	}
	return true
}

// Delete removes α from the store (the Z_stack deletion strategy). Deleting
// an absent location is a no-op.
func (s *Store) Delete(l env.Location) {
	v, ok := s.vals[l]
	if !ok {
		return
	}
	delete(s.vals, l)
	for _, o := range s.observers {
		o.StoreDelete(l, v)
	}
}

// Size is |Dom σ|, the number of live locations.
func (s *Store) Size() int { return len(s.vals) }

// Each calls f for every live (location, value) pair.
func (s *Store) Each(f func(l env.Location, v Value)) {
	for l, v := range s.vals {
		f(l, v)
	}
}

// Locations returns Dom σ in ascending order.
func (s *Store) Locations() []env.Location {
	out := make([]env.Location, 0, len(s.vals))
	for l := range s.vals {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Reachable computes the set of locations reachable from roots through the
// values in the store — the reachability relation of the garbage collection
// rule in Figure 5.
func (s *Store) Reachable(roots []env.Location) map[env.Location]bool {
	seen := make(map[env.Location]bool, len(roots))
	stack := append([]env.Location(nil), roots...)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[l] {
			continue
		}
		seen[l] = true
		v, ok := s.vals[l]
		if !ok {
			continue
		}
		stack = Locations(v, stack)
	}
	return seen
}

// Collect applies the garbage collection rule: every location not reachable
// from roots is removed from the store. It returns the number of locations
// collected.
func (s *Store) Collect(roots []env.Location) int {
	reach := s.Reachable(roots)
	collected := 0
	for l, v := range s.vals {
		if !reach[l] {
			delete(s.vals, l)
			for _, o := range s.observers {
				o.StoreDelete(l, v)
			}
			collected++
		}
	}
	return collected
}

// OccursIn reports whether any location in dels occurs within the remaining
// store (excluding the candidate locations themselves), i.e. whether the
// Z_stack deletion would create a dangling pointer through the store.
func (s *Store) OccursIn(dels map[env.Location]bool) bool {
	var scratch []env.Location
	for l, v := range s.vals {
		if dels[l] {
			continue
		}
		scratch = Locations(v, scratch[:0])
		for _, ref := range scratch {
			if dels[ref] {
				return true
			}
		}
	}
	return false
}
