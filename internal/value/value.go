// Package value implements the runtime values of the paper's Figure 4
//
//	v ::= c | UNSPECIFIED | UNDEFINED | PRIMOP:p | ESCAPE:(α,κ)
//	    | CLOSURE:(α,L,ρ) | VEC:(α0,...)
//
// together with the store σ (a finite map from locations to values) and the
// continuation forms κ. Pairs and strings are included as ordinary library
// data; the paper leaves them to the standard library.
package value

import (
	"math/big"

	"tailspace/internal/ast"
	"tailspace/internal/env"
)

// Value is a runtime value.
type Value interface{ isValue() }

// Bool is TRUE or FALSE.
type Bool bool

// Num is NUM:z, an exact integer of unlimited precision.
type Num struct{ Int *big.Int }

// Sym is SYM:I.
type Sym string

// Str is a string value.
type Str string

// Char is a character value.
type Char rune

// Null is the empty list.
type Null struct{}

// Unspecified is the UNSPECIFIED value produced by assignments.
type Unspecified struct{}

// Undefined is the UNDEFINED value; reading a location holding it sticks the
// machine (it marks letrec variables before initialization).
type Undefined struct{}

// Pair is a cons cell; its fields live in the store so that pairs share
// structure and are mutable, like VEC.
type Pair struct {
	CarLoc, CdrLoc env.Location
}

// Vector is VEC:(α0,...,αn−1): a tag plus n element locations.
type Vector struct {
	ElemLocs []env.Location
}

// Closure is CLOSURE:(α,L,ρ). The location α tags the closure — the paper
// cites [Ram94]: a bug in the design of Scheme requires a location to be
// allocated so that procedures have identity.
type Closure struct {
	Tag env.Location
	Lam *ast.Lambda
	Env env.Env
	// Code is the compiled body when the closure was minted by the compiled
	// backend (a *compile.LambdaCode); nil under the stepper. It is invisible
	// to the space accounting — Figure 7 charges a closure for its shell and
	// copied environment, and code pointers address the static program.
	Code any
}

// Escape is ESCAPE:(α,κ), a first-class continuation captured by call/cc.
type Escape struct {
	Tag env.Location
	K   Cont
}

// Primop is PRIMOP:p, a primitive procedure. Apply runs the primitive: it
// may allocate in the store and returns the result value. Primitives that
// need machine cooperation (call/cc) are flagged and handled by the machine.
type Primop struct {
	Name   string
	Arity  int  // exact argument count; -1 means variadic
	CallCC bool // the machine captures the continuation itself
	Spread bool // (apply f a b '(c d)): the machine re-dispatches f
	Apply  func(st *Store, args []Value) (Value, error)
}

// ArrowContract is a higher-order contract built by (-> dom ... cod): one
// contract per argument plus one for the result. Dom and Cod entries are
// contract values themselves — predicate procedures (flat contracts) or
// nested arrow contracts. Like Closure, an arrow contract carries a tag
// location so contracts have identity: the space-efficient monitor drops a
// pending codomain check exactly when an identical contract (same tag) is
// already pending, which is what bounds its monitoring space.
type ArrowContract struct {
	Tag env.Location
	Dom []Value
	Cod Value
}

// Guarded is GUARDED:(α, v, κ_ctc, l): a procedure wrapped by an arrow
// contract under the monitor machines. Applying it checks the argument
// against Dom contracts, applies the underlying procedure, and monitors the
// result against Cod. Only the monitor machine variants mint Guarded values;
// every other family member erases contracts before they can wrap anything.
type Guarded struct {
	Tag   env.Location
	Proc  Value // the wrapped procedure (possibly itself Guarded)
	Ctc   *ArrowContract
	Label string // blame label: the monitored party
}

// Foreign is an extension point for alternative evaluators that share this
// value domain (the denotational interpreter's reified continuations, for
// instance). It prints as a procedure and charges one word; the hosting
// evaluator gives it meaning.
type Foreign struct {
	Tag  string
	Data any
}

func (Bool) isValue()        {}
func (Num) isValue()         {}
func (Sym) isValue()         {}
func (Str) isValue()         {}
func (Char) isValue()        {}
func (Null) isValue()        {}
func (Unspecified) isValue() {}
func (Undefined) isValue()   {}
func (Pair) isValue()        {}
func (Vector) isValue()      {}
func (Closure) isValue()        {}
func (Escape) isValue()         {}
func (*Primop) isValue()        {}
func (*ArrowContract) isValue() {}
func (Guarded) isValue()        {}
func (Foreign) isValue()        {}

// NewNum wraps an int64.
func NewNum(v int64) Num { return Num{Int: big.NewInt(v)} }

// Truthy implements Scheme truth: everything but #f is true.
func Truthy(v Value) bool {
	b, ok := v.(Bool)
	return !ok || bool(b)
}

// IsProcedure reports whether v can be applied.
func IsProcedure(v Value) bool {
	switch v.(type) {
	case Closure, Escape, *Primop, Guarded:
		return true
	}
	return false
}

// ContractID returns a comparable identity for a contract value, used by the
// space-efficient monitor to drop duplicate pending checks. Closures and
// arrow contracts are identified by their tag location, primitives by
// pointer; ok is false for values with no stable identity (those are never
// deduplicated, which is safe — it only costs space).
func ContractID(v Value) (id any, ok bool) {
	switch x := v.(type) {
	case Closure:
		return x.Tag, true
	case *ArrowContract:
		return x.Tag, true
	case *Primop:
		return x, true
	case Guarded:
		return x.Tag, true
	}
	return nil, false
}

// Locations appends the store locations that occur (syntactically) within v
// — the roots contributed by v for garbage collection and for the
// occurs-checks of the Z_stack return rule.
func Locations(v Value, out []env.Location) []env.Location {
	switch x := v.(type) {
	case Pair:
		return append(out, x.CarLoc, x.CdrLoc)
	case Vector:
		return append(out, x.ElemLocs...)
	case Closure:
		out = append(out, x.Tag)
		return x.Env.AppendLocations(out)
	case Escape:
		out = append(out, x.Tag)
		return ContLocations(x.K, out)
	case *ArrowContract:
		out = append(out, x.Tag)
		for _, d := range x.Dom {
			out = Locations(d, out)
		}
		return Locations(x.Cod, out)
	case Guarded:
		out = append(out, x.Tag)
		out = Locations(x.Proc, out)
		return Locations(x.Ctc, out)
	}
	return out
}
