package value

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tailspace/internal/env"
)

func sizeOf(v Value) int {
	// A simple pricing function for the incremental-total tests.
	switch x := v.(type) {
	case Str:
		return 1 + len(x)
	case Pair:
		return 3
	case Vector:
		return 1 + len(x.ElemLocs)
	default:
		return 1
	}
}

// accountant is a test StoreObserver maintaining Σ (1 + sizeOf(σ(α))) — the
// shape of incremental account the space meters build on these hooks.
type accountant struct{ total int }

func (a *accountant) StoreAlloc(_ env.Location, v Value)    { a.total += 1 + sizeOf(v) }
func (a *accountant) StoreSet(_ env.Location, old, v Value) { a.total += sizeOf(v) - sizeOf(old) }
func (a *accountant) StoreDelete(_ env.Location, v Value)   { a.total -= 1 + sizeOf(v) }

func TestObserverTracksMutations(t *testing.T) {
	s := NewStore()
	a := &accountant{}
	s.AddObserver(a)
	s.AddObserver(a)          // double registration is a no-op
	l := s.Alloc(Str("abcd")) // +6
	if a.total != 6 {
		t.Fatalf("after alloc: %d", a.total)
	}
	s.Set(l, Null{}) // 6 - 5 + 1
	if a.total != 2 {
		t.Fatalf("after set: %d", a.total)
	}
	s.Delete(l)
	if a.total != 0 {
		t.Fatalf("after delete: %d", a.total)
	}
	s.Delete(l) // double delete is a no-op
	if a.total != 0 {
		t.Fatalf("after double delete: %d", a.total)
	}
}

func TestObserverSeesCollection(t *testing.T) {
	s := NewStore()
	a := &accountant{}
	s.AddObserver(a)
	keep := s.Alloc(NewNum(1))
	s.Alloc(Str("garbage"))
	s.Collect([]env.Location{keep})
	if a.total != 2 {
		t.Fatalf("after collect: %d", a.total)
	}
}

func TestRemoveObserverStopsNotifications(t *testing.T) {
	s := NewStore()
	a := &accountant{}
	s.AddObserver(a)
	s.Alloc(Null{})
	s.RemoveObserver(a)
	s.Alloc(Str("unseen"))
	if a.total != 2 {
		t.Fatalf("total = %d, want 2 (only the first alloc observed)", a.total)
	}
}

// TestPropertyObserverNeverDrifts drives random store operations and checks
// the incremental total against a full walk after every step.
func TestPropertyObserverNeverDrifts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		a := &accountant{}
		s.AddObserver(a)
		var live []env.Location
		for i := 0; i < 60; i++ {
			switch r.Intn(4) {
			case 0:
				live = append(live, s.Alloc(Str(string(rune('a'+r.Intn(26))))))
			case 1:
				if len(live) > 0 {
					s.Set(live[r.Intn(len(live))], NewNum(int64(r.Intn(100))))
				}
			case 2:
				if len(live) > 0 {
					i := r.Intn(len(live))
					s.Delete(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 3:
				roots := live
				if len(roots) > 1 {
					roots = roots[:len(roots)/2]
				}
				s.Collect(roots)
				live = append([]env.Location{}, roots...)
			}
			walked := 0
			s.Each(func(_ env.Location, v Value) { walked += 1 + sizeOf(v) })
			if walked != a.total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLocationsOrderedAndComplete(t *testing.T) {
	s := NewStore()
	a := s.Alloc(Null{})
	b := s.Alloc(Null{})
	c := s.Alloc(Null{})
	s.Delete(b)
	locs := s.Locations()
	if len(locs) != 2 || locs[0] != a || locs[1] != c {
		t.Fatalf("locations = %v", locs)
	}
}

func TestAllocN(t *testing.T) {
	s := NewStore()
	locs := s.AllocN([]Value{NewNum(1), NewNum(2)})
	if len(locs) != 2 {
		t.Fatalf("locs = %v", locs)
	}
	v, _ := s.Get(locs[1])
	if v.(Num).Int.Int64() != 2 {
		t.Fatal("wrong value")
	}
}

func TestContNextChains(t *testing.T) {
	rho := env.Empty()
	var k Cont = Halt{}
	frames := []Cont{
		&Select{Env: rho, K: k},
		&Assign{Env: rho, K: k},
		&Push{Env: rho, K: k},
		&Call{K: k},
		&Return{Env: rho, K: k},
		&ReturnStack{Env: rho, K: k},
	}
	for _, f := range frames {
		if f.Next() == nil {
			t.Fatalf("%T must expose its saved continuation", f)
		}
		if _, ok := f.Next().(Halt); !ok {
			t.Fatalf("%T.Next() = %T", f, f.Next())
		}
	}
	if (Halt{}).Next() != nil {
		t.Fatal("halt has no next")
	}
}
