package value

import (
	"math/big"
	"math/rand"
	"sort"
	"testing"

	"tailspace/internal/env"
)

func bigInt(n int64) *big.Int { return big.NewInt(n) }

type nopObserver struct{ id int }

func (nopObserver) StoreAlloc(env.Location, Value)      {}
func (nopObserver) StoreSet(env.Location, Value, Value) {}
func (nopObserver) StoreDelete(env.Location, Value)     {}

// TestRemoveObserverReleasesSlot pins the fix for the append-shift leak: the
// vacated tail slot of the observer slice must be nilled so the backing array
// does not retain the removed observer.
func TestRemoveObserverReleasesSlot(t *testing.T) {
	s := NewStore()
	a, b, c := nopObserver{1}, nopObserver{2}, nopObserver{3}
	s.AddObserver(a)
	s.AddObserver(b)
	s.AddObserver(c)
	s.RemoveObserver(a)
	if len(s.observers) != 2 {
		t.Fatalf("observers len=%d, want 2", len(s.observers))
	}
	tail := s.observers[:3]
	if tail[2] != nil {
		t.Errorf("vacated tail slot still holds %v; want nil", tail[2])
	}
	if s.observers[0] != StoreObserver(b) || s.observers[1] != StoreObserver(c) {
		t.Errorf("remaining observers wrong: %v", s.observers)
	}
}

// TestArenaNeverReusesLocations pins the semantic requirement behind the
// monotone arena: Z_stack's dangling-pointer detection needs Get on a deleted
// location to report false forever, so fresh allocations must never recycle
// a deleted index.
func TestArenaNeverReusesLocations(t *testing.T) {
	s := NewStore()
	l1 := s.Alloc(Bool(true))
	s.Delete(l1)
	if _, ok := s.Get(l1); ok {
		t.Fatalf("Get(%d) alive after Delete", l1)
	}
	l2 := s.Alloc(Bool(false))
	if l2 == l1 {
		t.Fatalf("deleted location %d was reused", l1)
	}
	if _, ok := s.Get(l1); ok {
		t.Fatalf("Get(%d) came back alive after a later Alloc", l1)
	}
	s.Set(l1, Bool(true))
	if _, ok := s.Get(l1); ok {
		t.Fatalf("Set resurrected deleted location %d", l1)
	}
}

// TestArenaMatchesMapStoreOnRandomOps drives an identical random operation
// sequence through the arena and the map reference and requires identical
// observations after every operation: Get on every location ever allocated,
// Size, sorted Locations, Set/Delete results, and Collect counts from shared
// root sets.
func TestArenaMatchesMapStoreOnRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	arena, ref := NewStore(), NewMapStore()
	var ever []env.Location
	check := func(step int) {
		t.Helper()
		if arena.Size() != ref.Size() {
			t.Fatalf("step %d: Size arena=%d map=%d", step, arena.Size(), ref.Size())
		}
		for _, l := range ever {
			av, aok := arena.Get(l)
			rv, rok := ref.Get(l)
			if aok != rok {
				t.Fatalf("step %d: Get(%d) arena ok=%v map ok=%v", step, l, aok, rok)
			}
			if aok && av != rv {
				t.Fatalf("step %d: Get(%d) arena=%v map=%v", step, l, av, rv)
			}
		}
		al, rl := arena.Locations(), ref.Locations()
		if len(al) != len(rl) {
			t.Fatalf("step %d: Locations len arena=%d map=%d", step, len(al), len(rl))
		}
		if !sort.SliceIsSorted(al, func(i, j int) bool { return al[i] < al[j] }) {
			t.Fatalf("step %d: arena Locations not ascending: %v", step, al)
		}
		for i := range al {
			if al[i] != rl[i] {
				t.Fatalf("step %d: Locations[%d] arena=%d map=%d", step, i, al[i], rl[i])
			}
		}
	}
	for step := 0; step < 600; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // alloc, sometimes a pair chaining to an earlier cell
			var v Value = Num{Int: bigInt(int64(step))}
			if len(ever) >= 2 && rng.Intn(2) == 0 {
				v = Pair{CarLoc: ever[rng.Intn(len(ever))], CdrLoc: ever[rng.Intn(len(ever))]}
			}
			la, lr := arena.Alloc(v), ref.Alloc(v)
			if la != lr {
				t.Fatalf("step %d: Alloc arena=%d map=%d", step, la, lr)
			}
			ever = append(ever, la)
		case 4, 5: // set
			if len(ever) == 0 {
				continue
			}
			l := ever[rng.Intn(len(ever))]
			v := Bool(step%2 == 0)
			if aok, rok := arena.Set(l, v), ref.Set(l, v); aok != rok {
				t.Fatalf("step %d: Set(%d) arena=%v map=%v", step, l, aok, rok)
			}
		case 6, 7: // delete
			if len(ever) == 0 {
				continue
			}
			l := ever[rng.Intn(len(ever))]
			arena.Delete(l)
			ref.Delete(l)
		case 8: // collect from a random subset of roots
			var roots []env.Location
			for _, l := range ever {
				if rng.Intn(3) == 0 {
					roots = append(roots, l)
				}
			}
			if ca, cr := arena.Collect(roots), ref.Collect(roots); ca != cr {
				t.Fatalf("step %d: Collect arena=%d map=%d", step, ca, cr)
			}
		case 9: // occurs-check over a random candidate set
			dels := map[env.Location]bool{}
			for _, l := range ever {
				if rng.Intn(4) == 0 {
					dels[l] = true
				}
			}
			if oa, or := arena.OccursIn(dels), ref.OccursIn(dels); oa != or {
				t.Fatalf("step %d: OccursIn arena=%v map=%v", step, oa, or)
			}
		}
		check(step)
	}
}

// TestCollectSteadyStateAllocsFree pins the epoch-mark collector's headline
// property: once its scratch has warmed up, collecting an all-reachable store
// performs zero heap allocations.
func TestCollectSteadyStateAllocsFree(t *testing.T) {
	s := NewStore()
	var prev env.Location
	for i := 0; i < 500; i++ {
		v := Value(Num{Int: bigInt(int64(i))})
		if i > 0 {
			v = Pair{CarLoc: prev, CdrLoc: prev}
		}
		prev = s.Alloc(v)
	}
	roots := []env.Location{prev}
	s.Collect(roots) // warm the marks array and work stack
	avg := testing.AllocsPerRun(50, func() {
		if n := s.Collect(roots); n != 0 {
			t.Fatalf("steady-state collect reclaimed %d", n)
		}
	})
	if avg != 0 {
		t.Errorf("Collect allocates %v objects per run in steady state, want 0", avg)
	}
}
