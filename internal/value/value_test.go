package value

import (
	"testing"

	"tailspace/internal/ast"
	"tailspace/internal/env"
)

func TestTruthy(t *testing.T) {
	if Truthy(Bool(false)) {
		t.Fatal("#f is false")
	}
	for _, v := range []Value{Bool(true), NewNum(0), Null{}, Sym("x"), Str(""), Unspecified{}} {
		if !Truthy(v) {
			t.Fatalf("%#v should be true", v)
		}
	}
}

func TestIsProcedure(t *testing.T) {
	if !IsProcedure(Closure{}) || !IsProcedure(Escape{}) || !IsProcedure(&Primop{}) {
		t.Fatal("procedures misclassified")
	}
	if IsProcedure(NewNum(1)) || IsProcedure(Null{}) {
		t.Fatal("non-procedures misclassified")
	}
}

func TestStoreAllocGet(t *testing.T) {
	s := NewStore()
	l := s.Alloc(NewNum(42))
	v, ok := s.Get(l)
	if !ok {
		t.Fatal("missing")
	}
	if n := v.(Num); n.Int.Int64() != 42 {
		t.Fatalf("got %v", n)
	}
	if s.Size() != 1 || s.Allocs != 1 {
		t.Fatalf("size=%d allocs=%d", s.Size(), s.Allocs)
	}
}

func TestStoreFreshLocations(t *testing.T) {
	s := NewStore()
	a := s.Alloc(Null{})
	b := s.Alloc(Null{})
	if a == b {
		t.Fatal("locations must be fresh")
	}
}

func TestStoreSet(t *testing.T) {
	s := NewStore()
	l := s.Alloc(Undefined{})
	if !s.Set(l, NewNum(1)) {
		t.Fatal("set failed")
	}
	if s.Set(env.Location(999), NewNum(1)) {
		t.Fatal("set of unallocated location must fail")
	}
}

func TestStoreDeleteAndAllocsMonotone(t *testing.T) {
	s := NewStore()
	l := s.Alloc(Null{})
	s.Delete(l)
	if s.Size() != 0 {
		t.Fatal("delete failed")
	}
	if s.Allocs != 1 {
		t.Fatal("Allocs must be monotone")
	}
}

func TestReachabilityThroughPairs(t *testing.T) {
	s := NewStore()
	leaf := s.Alloc(NewNum(1))
	mid := s.Alloc(Pair{CarLoc: leaf, CdrLoc: leaf})
	orphan := s.Alloc(NewNum(9))
	reach := s.Reachable([]env.Location{mid})
	if !reach[mid] || !reach[leaf] {
		t.Fatal("pair fields must be reachable")
	}
	if reach[orphan] {
		t.Fatal("orphan must be unreachable")
	}
}

func TestReachabilityThroughClosureEnv(t *testing.T) {
	s := NewStore()
	captured := s.Alloc(NewNum(5))
	tag := s.Alloc(Unspecified{})
	clo := Closure{
		Tag: tag,
		Lam: &ast.Lambda{Params: nil, Body: &ast.Var{Name: "x"}},
		Env: env.Empty().Extend([]string{"x"}, []env.Location{captured}),
	}
	holder := s.Alloc(clo)
	reach := s.Reachable([]env.Location{holder})
	for _, l := range []env.Location{holder, captured, tag} {
		if !reach[l] {
			t.Fatalf("location %d must be reachable", l)
		}
	}
}

func TestReachabilityThroughVector(t *testing.T) {
	s := NewStore()
	a := s.Alloc(NewNum(1))
	b := s.Alloc(NewNum(2))
	vec := s.Alloc(Vector{ElemLocs: []env.Location{a, b}})
	reach := s.Reachable([]env.Location{vec})
	if !reach[a] || !reach[b] {
		t.Fatal("vector elements must be reachable")
	}
}

func TestReachabilityCycle(t *testing.T) {
	s := NewStore()
	a := s.Alloc(Undefined{})
	b := s.Alloc(Pair{CarLoc: a, CdrLoc: a})
	s.Set(a, Pair{CarLoc: b, CdrLoc: b}) // cycle
	reach := s.Reachable([]env.Location{a})
	if !reach[a] || !reach[b] {
		t.Fatal("cycle must be fully reachable")
	}
	if len(reach) != 2 {
		t.Fatalf("reach = %v", reach)
	}
}

func TestCollect(t *testing.T) {
	s := NewStore()
	keep := s.Alloc(NewNum(1))
	s.Alloc(NewNum(2))
	s.Alloc(NewNum(3))
	n := s.Collect([]env.Location{keep})
	if n != 2 || s.Size() != 1 {
		t.Fatalf("collected=%d size=%d", n, s.Size())
	}
	if _, ok := s.Get(keep); !ok {
		t.Fatal("root must survive")
	}
}

func TestCollectEmptyRoots(t *testing.T) {
	s := NewStore()
	s.Alloc(NewNum(1))
	if n := s.Collect(nil); n != 1 || s.Size() != 0 {
		t.Fatalf("collected=%d", n)
	}
}

func TestOccursIn(t *testing.T) {
	s := NewStore()
	target := s.Alloc(NewNum(1))
	s.Alloc(Pair{CarLoc: target, CdrLoc: target})
	if !s.OccursIn(map[env.Location]bool{target: true}) {
		t.Fatal("target occurs in the pair")
	}
	lonely := s.Alloc(NewNum(2))
	if s.OccursIn(map[env.Location]bool{lonely: true}) {
		t.Fatal("lonely occurs nowhere")
	}
}

func TestContLocations(t *testing.T) {
	e := env.Empty().Extend([]string{"x"}, []env.Location{3})
	var k Cont = Halt{}
	k = &Select{Then: &ast.Var{Name: "a"}, Else: &ast.Var{Name: "b"}, Env: e, K: k}
	k = &Push{Done: []Value{Pair{CarLoc: 7, CdrLoc: 8}}, Env: env.Empty(), K: k}
	locs := ContLocations(k, nil)
	want := map[env.Location]bool{3: true, 7: true, 8: true}
	for _, l := range locs {
		delete(want, l)
	}
	if len(want) != 0 {
		t.Fatalf("missing locations %v in %v", want, locs)
	}
}

func TestContLocationsIncludesDeletionSet(t *testing.T) {
	// A occurs within return:(A,ρ,κ), so stack frames root their variables
	// until they return — the retention that Theorem 25(a) exploits.
	k := &ReturnStack{Del: []env.Location{5}, Env: env.Empty(), K: Halt{}}
	locs := ContLocations(k, nil)
	found := false
	for _, l := range locs {
		if l == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("deletion-set locations must be roots until the frame returns")
	}
}

func TestReturnEnvironmentsAreDead(t *testing.T) {
	// The environment a return continuation restores is charged by Figure 7
	// but never dereferenced, so it is not a root; only Z_stack's deletion
	// set roots frame locations. This is what separates S_stack from S_gc
	// (Theorem 25(a)).
	rho := env.Empty().Extend([]string{"v"}, []env.Location{42})
	gcFrame := &Return{Env: rho, K: Halt{}}
	for _, l := range ContLocations(gcFrame, nil) {
		if l == 42 {
			t.Fatal("Z_gc return environments must not root their locations")
		}
	}
	stackFrame := &ReturnStack{Del: nil, Env: rho, K: Halt{}}
	for _, l := range ContLocations(stackFrame, nil) {
		if l == 42 {
			t.Fatal("Z_stack return environments must not root their locations either")
		}
	}
}

func TestDepth(t *testing.T) {
	var k Cont = Halt{}
	if Depth(k) != 1 {
		t.Fatalf("halt depth = %d", Depth(k))
	}
	k = &Return{Env: env.Empty(), K: k}
	k = &Return{Env: env.Empty(), K: k}
	if Depth(k) != 3 {
		t.Fatalf("depth = %d", Depth(k))
	}
}

func TestEscapeLocations(t *testing.T) {
	e := env.Empty().Extend([]string{"y"}, []env.Location{11})
	esc := Escape{Tag: 10, K: &Assign{Name: "y", Env: e, K: Halt{}}}
	locs := Locations(esc, nil)
	found := map[env.Location]bool{}
	for _, l := range locs {
		found[l] = true
	}
	if !found[10] || !found[11] {
		t.Fatalf("escape must root its tag and continuation: %v", locs)
	}
}
