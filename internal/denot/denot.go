// Package denot is a definitional interpreter for Core Scheme in the style
// of the denotational semantics the paper's Section 16 asks to be related to
// the reference implementations: environments map identifiers to locations,
// the store maps locations to values, expressible values are as in Figure 4,
// and the valuation is written in continuation-passing style so that
// call-with-current-continuation reifies the metalanguage continuation.
//
// It computes answers only — it has no operational notion of space — and
// exists to discharge the Section 16 correspondence empirically: every
// answer the denotational semantics computes is computed by every reference
// implementation (see the differential tests and the spacelab `denot`
// experiment).
package denot

import (
	"errors"
	"fmt"

	"tailspace/internal/ast"
	"tailspace/internal/env"
	"tailspace/internal/expand"
	"tailspace/internal/prim"
	"tailspace/internal/value"
)

// Cont is the semantic continuation domain: a function from expressed
// values to final answers.
type Cont func(value.Value) (value.Value, error)

// Interp evaluates Core Scheme expressions denotationally.
type Interp struct {
	store *value.Store
	// depth guards the metalanguage stack: the definitional interpreter
	// inherits Go's call discipline, so deep recursion is bounded rather
	// than properly tail recursive — which is precisely the contrast with
	// the Z_tail machine that the paper's space classes capture.
	depth, maxDepth int
}

// ErrDepth reports that the interpreter exceeded its metalanguage recursion
// budget.
var ErrDepth = errors.New("denot: metalanguage recursion limit exceeded")

// New returns an interpreter over a fresh store populated with the standard
// procedures, along with the initial environment ρ0.
func New() (*Interp, env.Env) {
	rho0, st := prim.Global()
	return &Interp{store: st, maxDepth: 2_000_000}, rho0
}

// Store exposes the interpreter's store (for rendering answers).
func (in *Interp) Store() *value.Store { return in.store }

// escape is the reified continuation captured by call/cc.
type escape struct {
	k Cont
}

// Eval runs the valuation E[[e]]ρκ.
func (in *Interp) Eval(e ast.Expr, rho env.Env, k Cont) (value.Value, error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.maxDepth {
		return nil, ErrDepth
	}
	switch x := e.(type) {
	case *ast.Const:
		return k(constValue(x.Value))

	case *ast.Var:
		loc, ok := rho.Lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("denot: unbound variable %s", x.Name)
		}
		v, ok := in.store.Get(loc)
		if !ok {
			return nil, fmt.Errorf("denot: variable %s dangles", x.Name)
		}
		if _, undef := v.(value.Undefined); undef {
			return nil, fmt.Errorf("denot: variable %s read before initialization", x.Name)
		}
		return k(v)

	case *ast.Lambda:
		tag := in.store.Alloc(value.Unspecified{})
		return k(value.Closure{Tag: tag, Lam: x, Env: rho})

	case *ast.If:
		return in.Eval(x.Test, rho, func(t value.Value) (value.Value, error) {
			if value.Truthy(t) {
				return in.Eval(x.Then, rho, k)
			}
			return in.Eval(x.Else, rho, k)
		})

	case *ast.Set:
		return in.Eval(x.Rhs, rho, func(v value.Value) (value.Value, error) {
			loc, ok := rho.Lookup(x.Name)
			if !ok {
				return nil, fmt.Errorf("denot: assignment to unbound variable %s", x.Name)
			}
			if !in.store.Set(loc, v) {
				return nil, fmt.Errorf("denot: assignment to dangling %s", x.Name)
			}
			return k(value.Unspecified{})
		})

	case *ast.Call:
		return in.evalOperands(x.Exprs, rho, nil, k)

	case *ast.Mon:
		// Contract erasure, the denotation every erasing machine implements:
		// the contract is evaluated (its effects and errors are observable)
		// and discarded, and the monitored expression's value passes through
		// unchecked.
		return in.Eval(x.Ctc, rho, func(value.Value) (value.Value, error) {
			return in.Eval(x.Expr, rho, k)
		})
	}
	return nil, fmt.Errorf("denot: unknown expression %T", e)
}

// evalOperands evaluates call subexpressions left to right, then applies.
func (in *Interp) evalOperands(exprs []ast.Expr, rho env.Env, acc []value.Value, k Cont) (value.Value, error) {
	if len(exprs) == 0 {
		return in.Apply(acc[0], acc[1:], k)
	}
	return in.Eval(exprs[0], rho, func(v value.Value) (value.Value, error) {
		return in.evalOperands(exprs[1:], rho, append(acc, v), k)
	})
}

// Apply is the procedure application valuation.
func (in *Interp) Apply(op value.Value, args []value.Value, k Cont) (value.Value, error) {
	switch proc := op.(type) {
	case value.Closure:
		if len(args) != len(proc.Lam.Params) {
			return nil, fmt.Errorf("denot: %s expects %d arguments, got %d",
				proc.Lam.Label, len(proc.Lam.Params), len(args))
		}
		locs := in.store.AllocN(args)
		return in.Eval(proc.Lam.Body, proc.Env.Extend(proc.Lam.Params, locs), k)

	case value.Foreign:
		esc, ok := proc.Data.(escape)
		if !ok {
			return nil, fmt.Errorf("denot: call of foreign non-procedure %s", proc.Tag)
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("denot: continuation invoked with %d arguments", len(args))
		}
		// Invoking a reified continuation abandons k.
		return esc.k(args[0])

	case *value.Primop:
		if proc.CallCC {
			if len(args) != 1 {
				return nil, fmt.Errorf("denot: %s expects 1 argument", proc.Name)
			}
			reified := value.Foreign{Tag: "continuation", Data: escape{k: k}}
			return in.Apply(args[0], []value.Value{reified}, k)
		}
		if proc.Spread {
			if len(args) < 2 {
				return nil, fmt.Errorf("denot: %s needs a procedure and an argument list", proc.Name)
			}
			spread, ok := prim.ListElements(in.store, args[len(args)-1])
			if !ok {
				return nil, fmt.Errorf("denot: %s: last argument is not a proper list", proc.Name)
			}
			full := append(append([]value.Value{}, args[1:len(args)-1]...), spread...)
			return in.Apply(args[0], full, k)
		}
		if proc.Arity >= 0 && len(args) != proc.Arity {
			return nil, fmt.Errorf("denot: %s expects %d arguments, got %d", proc.Name, proc.Arity, len(args))
		}
		v, err := proc.Apply(in.store, args)
		if err != nil {
			return nil, fmt.Errorf("denot: %w", err)
		}
		return k(v)
	}
	return nil, fmt.Errorf("denot: call of non-procedure %T", op)
}

func constValue(c ast.ConstValue) value.Value {
	switch x := c.(type) {
	case ast.BoolConst:
		return value.Bool(bool(x))
	case ast.NumConst:
		return value.Num{Int: x.Int}
	case ast.SymConst:
		return value.Sym(string(x))
	case ast.StrConst:
		return value.Str(string(x))
	case ast.CharConst:
		return value.Char(rune(x))
	case ast.NilConst:
		return value.Null{}
	case ast.UnspecifiedConst:
		return value.Unspecified{}
	}
	panic(fmt.Sprintf("denot: unknown constant %T", c))
}

// Run parses, expands, and evaluates a whole program, returning the final
// value and the store it lives in.
func Run(src string) (value.Value, *value.Store, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return nil, nil, err
	}
	in, rho0 := New()
	identity := func(v value.Value) (value.Value, error) { return v, nil }
	v, err := in.Eval(e, rho0, identity)
	return v, in.store, err
}

// SetMaxDepth overrides the metalanguage recursion budget.
func (in *Interp) SetMaxDepth(n int) { in.maxDepth = n }
