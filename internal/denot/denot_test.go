package denot_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"tailspace/internal/core"
	"tailspace/internal/corpus"
	"tailspace/internal/denot"
	"tailspace/internal/expand"
	"tailspace/internal/experiments"
	"tailspace/internal/value"
)

func run(t *testing.T, src string) string {
	t.Helper()
	v, st, err := denot.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return core.Answer(v, st)
}

func TestBasicEvaluation(t *testing.T) {
	cases := map[string]string{
		"42":                          "42",
		"(+ 1 2 3)":                   "6",
		"(if #f 1 2)":                 "2",
		"((lambda (x) (* x x)) 7)":    "49",
		"(let ((x 3) (y 4)) (+ x y))": "7",
		"'(1 2 3)":                    "(1 2 3)",
		"(cons 1 2)":                  "(1 . 2)",
		"(vector 1 2)":                "#(1 2)",
		"(let ((x 1)) (set! x 9) x)":  "9",
		"(lambda (x) x)":              "#<PROC>",
	}
	for src, want := range cases {
		if got := run(t, src); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestRecursion(t *testing.T) {
	src := "(define (fact n) (if (zero? n) 1 (* n (fact (- n 1))))) (fact 10)"
	if got := run(t, src); got != "3628800" {
		t.Fatalf("got %q", got)
	}
}

func TestLetrecSemantics(t *testing.T) {
	src := `(letrec ((even2? (lambda (n) (if (zero? n) #t (odd2? (- n 1)))))
	                 (odd2? (lambda (n) (if (zero? n) #f (even2? (- n 1))))))
	          (even2? 20))`
	if got := run(t, src); got != "#t" {
		t.Fatalf("got %q", got)
	}
}

func TestLetrecReadBeforeInit(t *testing.T) {
	if _, _, err := denot.Run("(letrec ((x y) (y 1)) x)"); err == nil ||
		!strings.Contains(err.Error(), "before initialization") {
		t.Fatalf("got %v", err)
	}
}

func TestCallCCEscape(t *testing.T) {
	cases := map[string]string{
		"(call/cc (lambda (k) (+ 1 (k 42))))":    "42",
		"(+ 1 (call/cc (lambda (k) (k 10) 99)))": "11",
		"(call/cc (lambda (k) 7))":               "7",
	}
	for src, want := range cases {
		if got := run(t, src); got != want {
			t.Errorf("%q = %q, want %q", src, got, want)
		}
	}
}

func TestCallCCReentry(t *testing.T) {
	src := `
(let ((saved #f) (count 0))
  (let ((x (call/cc (lambda (k) (set! saved k) 0))))
    (set! count (+ count 1))
    (if (< x 3) (saved (+ x 1)) (list x count))))`
	if got := run(t, src); got != "(3 4)" {
		t.Fatalf("got %q", got)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		"unbound-thing",
		"(1 2)",
		"((lambda (x) x) 1 2)",
		"(car 7)",
	} {
		if _, _, err := denot.Run(src); err == nil {
			t.Errorf("Run(%q): expected error", src)
		}
	}
}

// TestSection16CorpusAgreement discharges the Section 16 correspondence on
// the corpus: every answer computed by the denotational semantics is
// computed by every reference implementation.
func TestSection16CorpusAgreement(t *testing.T) {
	for _, p := range corpus.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			got := run(t, p.Source)
			if got != p.Answer {
				t.Fatalf("denotational answer %q, corpus oracle %q", got, p.Answer)
			}
		})
	}
}

func TestSection16RandomProgramAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		src := experiments.RandomProgram(r, 4)
		want := run(t, src)
		res, err := core.RunProgram(src, core.Options{Variant: core.SFS, MaxSteps: 500_000})
		if err != nil || res.Err != nil {
			t.Fatalf("machine on %q: %v %v", src, err, res.Err)
		}
		if res.Answer != want {
			t.Fatalf("disagreement on %q: denot %q, machine %q", src, want, res.Answer)
		}
	}
}

func TestDepthGuard(t *testing.T) {
	// Deep recursion against a tiny budget trips the guard rather than
	// blowing the Go stack: the definitional interpreter is NOT properly
	// tail recursive — its control space is the metalanguage's.
	e, err := expand.ParseProgram("(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 1000)")
	if err != nil {
		t.Fatal(err)
	}
	in, rho := denot.New()
	in.SetMaxDepth(50)
	_, err = in.Eval(e, rho, func(v value.Value) (value.Value, error) { return v, nil })
	if !errors.Is(err, denot.ErrDepth) {
		t.Fatalf("expected ErrDepth, got %v", err)
	}
}
