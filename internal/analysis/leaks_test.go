package analysis_test

// These tests pin the analyzer's verdicts on the four Theorem 25 separation
// programs — the hand-validated ground truth. The differential grid in
// internal/experiments additionally checks every verdict against measured
// growth classes on all six machines; here we assert the exact relation
// table and the leak kinds so a regression is attributed to the static
// side immediately.

import (
	"testing"

	"tailspace/internal/analysis"
	"tailspace/internal/ast"
	"tailspace/internal/expand"
	"tailspace/internal/experiments"
)

// applied builds the Definition 23 initial configuration (P (quote 64)) so
// the analyzer sees the driver call that seeds input magnitude.
func applied(t *testing.T, src string) *analysis.LeakReport {
	t.Helper()
	p, err := expand.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse program: %v", err)
	}
	d, err := expand.ParseExpr("(quote 64)")
	if err != nil {
		t.Fatalf("parse input: %v", err)
	}
	return analysis.AnalyzeLeaks(&ast.Call{Exprs: []ast.Expr{p, d}})
}

func wantRelations(t *testing.T, rep *analysis.LeakReport, want map[string]analysis.RelVerdict) {
	t.Helper()
	for pair, v := range want {
		r := rep.RelationFor(pair)
		if r.Verdict != v {
			t.Errorf("%s: got %s, want %s (why: %s)", pair, r.Verdict, v, r.Why)
		}
	}
}

func leakKinds(rep *analysis.LeakReport) map[string]int {
	kinds := map[string]int{}
	for _, l := range rep.Leaks {
		kinds[l.Kind]++
	}
	return kinds
}

func TestCountdownRelations(t *testing.T) {
	rep := applied(t, experiments.CountdownLoop)
	wantRelations(t, rep, map[string]analysis.RelVerdict{
		"tail<gc":    analysis.Separates,
		"gc<stack":   analysis.SameClass,
		"evlis<tail": analysis.SameClass,
		"free<tail":  analysis.SameClass,
		"sfs<evlis":  analysis.SameClass,
		"sfs<free":   analysis.SameClass,
	})
	kinds := leakKinds(rep)
	if kinds["return-cont"] == 0 {
		t.Errorf("want a return-cont leak, got %v", rep.Leaks)
	}
	if len(kinds) != 1 {
		t.Errorf("want only return-cont leaks, got %v", rep.Leaks)
	}
}

func TestVectorFramesRelations(t *testing.T) {
	rep := applied(t, experiments.VectorFrames)
	wantRelations(t, rep, map[string]analysis.RelVerdict{
		"tail<gc":    analysis.SameClass,
		"gc<stack":   analysis.Separates,
		"evlis<tail": analysis.SameClass,
		"free<tail":  analysis.SameClass,
		"sfs<evlis":  analysis.SameClass,
		"sfs<free":   analysis.SameClass,
	})
	kinds := leakKinds(rep)
	if kinds["stack-frame"] == 0 {
		t.Errorf("want a stack-frame leak, got %v", rep.Leaks)
	}
	if len(kinds) != 1 {
		t.Errorf("want only stack-frame leaks, got %v", rep.Leaks)
	}
}

func TestThunkReturnRelations(t *testing.T) {
	rep := applied(t, experiments.ThunkReturn)
	wantRelations(t, rep, map[string]analysis.RelVerdict{
		"tail<gc":    analysis.SameClass, // control stack grows on both
		"gc<stack":   analysis.SameClass, // the parked vector grows both
		"evlis<tail": analysis.Separates,
		"free<tail":  analysis.SameClass, // the park retains under both
		"sfs<evlis":  analysis.SameClass,
		"sfs<free":   analysis.Separates,
	})
	kinds := leakKinds(rep)
	if kinds["evlis-env"] == 0 {
		t.Errorf("want an evlis-env leak, got %v", rep.Leaks)
	}
	if kinds["retained-closure"] != 0 || kinds["cont-env"] != 0 {
		t.Errorf("unexpected leak kinds: %v", rep.Leaks)
	}
}

func TestClosureCaptureRelations(t *testing.T) {
	rep := applied(t, experiments.ClosureCapture)
	wantRelations(t, rep, map[string]analysis.RelVerdict{
		"tail<gc":    analysis.SameClass, // the captured vector grows both
		"gc<stack":   analysis.SameClass,
		"evlis<tail": analysis.SameClass, // no continuation park is involved
		"free<tail":  analysis.Separates,
		"sfs<evlis":  analysis.Separates,
		"sfs<free":   analysis.SameClass,
	})
	kinds := leakKinds(rep)
	if kinds["retained-closure"] == 0 {
		t.Errorf("want a retained-closure leak, got %v", rep.Leaks)
	}
	if kinds["evlis-env"] != 0 || kinds["cont-env"] != 0 {
		t.Errorf("unexpected leak kinds: %v", rep.Leaks)
	}
}

func TestCaptureReportShowsDeadBinding(t *testing.T) {
	rep := applied(t, experiments.ClosureCapture)
	found := false
	for _, lc := range rep.Lambdas {
		for _, name := range lc.Dead {
			if name == "v" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no lambda reports v as dead-captured: %+v", rep.Lambdas)
	}
}

// A statically unresolvable call running under a parked environment must
// block both a separation and an equality claim for the affected pairs.
func TestUnknownCallBlocksClaims(t *testing.T) {
	rep := applied(t, `
(define (f n h)
  (let ((v (make-vector (* 8 n))))
    (if (zero? n) 0 ((h)))))`)
	for _, pair := range []string{"evlis<tail", "sfs<free"} {
		if got := rep.RelationFor(pair).Verdict; got != analysis.NoClaim {
			t.Errorf("%s: got %s, want %s", pair, got, analysis.NoClaim)
		}
	}
}

func TestOrderingSummary(t *testing.T) {
	rep := applied(t, experiments.CountdownLoop)
	if rep.Ordering == "" {
		t.Fatal("empty ordering summary")
	}
	want := "tail<gc"
	if got := rep.RelationFor("tail<gc"); got.Verdict != analysis.Separates {
		t.Fatalf("precondition: %v", got)
	}
	if !containsStr(rep.Ordering, want) {
		t.Errorf("ordering %q missing %q", rep.Ordering, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
