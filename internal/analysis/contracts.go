package analysis

// This file analyzes contract monitors — the naive/spaceff machine pair.
// The cost of monitoring is control-shaped: every call through a guarded
// procedure leaves a pending codomain check behind, and the two monitor
// machines differ only in whether adjacent pending checks join (duplicates
// dropped by contract identity) or chain. That gives three static facts
// worth knowing about each (mon ctc e) site:
//
//   - whether the contract expression is statically tracked at all (a
//     primop predicate, or an arrow of tracked contracts): a lambda or a
//     user binding used as a contract runs arbitrary code at check time,
//     through calls no graph edge models, so no monitor bound can be
//     certified;
//   - whether a guarded procedure recurses input-driven: then the naive
//     monitor chains one pending check per level — Θ(n);
//   - whether the mon itself is built inside an input-driven cycle: a fresh
//     contract identity per level defeats the duplicate-dropping join, so
//     even the space-efficient monitor chains — the one contract leak
//     spaceff cannot fix, and the thing -lint should point at.

import (
	"tailspace/internal/ast"
	"tailspace/internal/prim"
)

// contractFinding is the analysis of one monitor site.
type contractFinding struct {
	mon  *ast.Mon
	host *node
	// unresolvable names why the contract expression is untracked ("" when
	// it is a recognized primop-predicate / arrow shape).
	unresolvable string
	// guardedDriven lists guarded lambdas living in reachable input-driven
	// cycles — the naive monitor pays one pending check per level of each.
	guardedDriven []*node
	// perIteration: the mon sits inside a reachable input-driven cycle, so
	// the contract is rebuilt (fresh identity) once per recursion level.
	perIteration bool
}

// contractScan is the program-level summary consumed by relations, leaks,
// and certificates.
type contractScan struct {
	findings []contractFinding
	anyMon   bool
}

// unresolved returns the findings whose contracts are statically untracked.
func (c *contractScan) unresolved() []contractFinding {
	var out []contractFinding
	for _, f := range c.findings {
		if f.unresolvable != "" {
			out = append(out, f)
		}
	}
	return out
}

// perIteration returns findings whose contract is rebuilt per recursion
// level (fresh identity — spaceff chains too).
func (c *contractScan) perIteration() []contractFinding {
	var out []contractFinding
	for _, f := range c.findings {
		if f.unresolvable == "" && f.perIteration {
			out = append(out, f)
		}
	}
	return out
}

// hoistedGuards returns findings with a loop-invariant contract guarding an
// input-driven recursion — naive chains, spaceff joins: the separation.
func (c *contractScan) hoistedGuards() []contractFinding {
	var out []contractFinding
	for _, f := range c.findings {
		if f.unresolvable == "" && !f.perIteration && len(f.guardedDriven) > 0 {
			out = append(out, f)
		}
	}
	return out
}

// findContracts scans every monitor site recorded by the graph walk.
func (a *leakAnalysis) findContracts() *contractScan {
	c := &contractScan{}
	facts := a.compSummary()
	driven := func(n *node) bool {
		f := facts[a.g.comp[n]]
		return f != nil && f.cyclic && f.reachable && f.inputDriven
	}
	for _, site := range a.g.monHosts {
		c.anyMon = true
		f := contractFinding{mon: site.mon, host: site.host}
		if why := a.untrackedCtc(site.mon.Ctc); why != "" {
			f.unresolvable = why
			c.findings = append(c.findings, f)
			continue
		}
		if fv := a.g.flow.exprVar[site.mon.Expr]; fv != nil {
			for _, lam := range a.g.flow.sortedLams(fv) {
				if transparentLabel(lam.Label) {
					continue
				}
				if n, ok := a.g.nodes[lam]; ok && driven(n) {
					f.guardedDriven = append(f.guardedDriven, n)
				}
			}
		}
		f.perIteration = driven(site.host)
		c.findings = append(c.findings, f)
	}
	return c
}

// untrackedCtc reports why a contract expression is statically untracked,
// or "" for the recognized shapes: a primitive predicate name, or an arrow
// (%-> ...) whose component contracts are all tracked.
func (a *leakAnalysis) untrackedCtc(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Var:
		if a.s.varRef[x] != nil {
			return "contract is a user binding: its checks run arbitrary code"
		}
		if _, ok := prim.Lookup(x.Name); ok {
			return ""
		}
		return "contract names an unbound variable"
	case *ast.Call:
		v, ok := x.Operator().(*ast.Var)
		if !ok || v.Name != "%->" || a.s.varRef[v] != nil {
			return "contract is computed by a call: its value is untracked"
		}
		for _, arg := range x.Operands() {
			if why := a.untrackedCtc(arg); why != "" {
				return why
			}
		}
		return ""
	}
	return "contract is not a predicate name or an arrow of predicates"
}
