package analysis

// This file builds the call graph shared by the static analyses: the
// control-space verdict (controlspace.go), the closure-retention analysis
// (retention.go), and the continuation-environment parking analysis
// (evlis.go). Nodes are the program's user-visible lambdas plus the top
// level; edges are call sites whose operator resolves statically. The graph
// also records, for every call site, the enclosing host procedure and the
// resolved candidate targets, and condenses itself into strongly connected
// components with a reachability relation over the condensation — the
// machinery every leak detector needs to ask "can evaluating this
// subexpression re-enter the procedure it is parked inside?".

import (
	"fmt"
	"strings"

	"tailspace/internal/ast"
	"tailspace/internal/prim"
)

// node is a call-graph vertex: a lambda, or the program's top level.
type node struct {
	lam   *ast.Lambda // nil for the root
	label string
	id    int
}

type edge struct {
	from, to *node
	tail     bool
	site     *ast.Call
}

type callGraph struct {
	root  *node
	nodes map[*ast.Lambda]*node
	// byLabel resolves operator names to candidate callees; duplicates keep
	// every candidate (over-approximation).
	byLabel map[string][]*node
	edges   []edge
	// hosts records, for every call site the walk visits, the nearest
	// enclosing non-transparent lambda (or the root).
	hosts map[*ast.Call]*node
	// lambdaHost records the host in whose body each user-visible lambda is
	// created (the procedure that runs when the closure is built).
	lambdaHost map[*ast.Lambda]*node
	// targets records the resolved candidate callees of every call site;
	// sites whose operator cannot be resolved are in unknownTarget instead.
	targets       map[*ast.Call][]*node
	unknownTarget map[*ast.Call]bool
	// tailOf records whether each visited call site is a tail call.
	tailOf map[*ast.Call]bool
	// unknownNonTail records non-tail calls whose target cannot be resolved.
	unknownNonTail []string
	// unresolvedTails notes tail calls to unresolvable targets (harmless at
	// the site, but they hide potential cycle-closing edges).
	unresolvedTails bool

	// valueVisiting guards valueOf's interprocedural resolution against
	// recursion knots.
	valueVisiting map[*node]bool
	// resolvedRefs marks variable references whose value valueOf traced to a
	// recorded call edge: their flow is fully accounted for, so the binding
	// pass must not treat them as escapes.
	resolvedRefs map[*ast.Var]bool

	// Condensation, filled by condense().
	comp   map[*node]int
	cyclic map[int]bool         // component has an internal edge
	reach  map[int]map[int]bool // reflexive-transitive reachability over components
}

func newCallGraph() *callGraph {
	g := &callGraph{
		nodes:         map[*ast.Lambda]*node{},
		byLabel:       map[string][]*node{},
		hosts:         map[*ast.Call]*node{},
		lambdaHost:    map[*ast.Lambda]*node{},
		targets:       map[*ast.Call][]*node{},
		unknownTarget: map[*ast.Call]bool{},
		tailOf:        map[*ast.Call]bool{},
		valueVisiting: map[*node]bool{},
		resolvedRefs:  map[*ast.Var]bool{},
	}
	g.root = &node{label: "(top level)", id: 0}
	return g
}

// buildGraph constructs the full call graph of an expanded program and
// condenses it. Every analysis pass shares the result.
func buildGraph(e ast.Expr) *callGraph {
	g := newCallGraph()
	// First pass: register every procedure so operator names resolve
	// regardless of definition order (letrec scoping is mutual).
	ast.Walk(e, func(x ast.Expr) bool {
		if lam, ok := x.(*ast.Lambda); ok && !transparentLabel(lam.Label) {
			g.nodeFor(lam)
		}
		return true
	})
	info := ast.MarkTails(e)
	g.walk(e, info, g.root, map[string]bool{})
	g.condense()
	return g
}

func (g *callGraph) nodeFor(lam *ast.Lambda) *node {
	if n, ok := g.nodes[lam]; ok {
		return n
	}
	n := &node{lam: lam, label: lam.Label, id: len(g.nodes) + 1}
	g.nodes[lam] = n
	g.byLabel[lam.Label] = append(g.byLabel[lam.Label], n)
	return n
}

// walk builds nodes and edges. host is the nearest non-transparent lambda
// (or the root); shadowed tracks names rebound since entering it.
func (g *callGraph) walk(e ast.Expr, info *ast.TailInfo, host *node, shadowed map[string]bool) {
	switch x := e.(type) {
	case *ast.Lambda:
		if transparentLabel(x.Label) {
			params := x.Params
			if strings.HasPrefix(x.Label, "%letrec:") {
				// The letrec wrapper's parameters are exactly the names the
				// bound lambdas are labelled with — they do not shadow.
				params = nil
			}
			g.walk(x.Body, info, host, copyShadow(shadowed, params))
			return
		}
		g.lambdaHost[x] = host
		n := g.nodeFor(x)
		g.walk(x.Body, info, n, copyShadow(nil, x.Params))
	case *ast.If:
		g.walk(x.Test, info, host, shadowed)
		g.walk(x.Then, info, host, shadowed)
		g.walk(x.Else, info, host, shadowed)
	case *ast.Set:
		g.walk(x.Rhs, info, host, shadowed)
	case *ast.Call:
		g.recordCall(x, info, host, shadowed)
		for _, sub := range x.Exprs {
			g.walk(sub, info, host, shadowed)
		}
	}
}

func (g *callGraph) recordCall(call *ast.Call, info *ast.TailInfo, host *node, shadowed map[string]bool) {
	tail := info.IsTail(call)
	g.hosts[call] = host
	g.tailOf[call] = tail
	switch op := call.Operator().(type) {
	case *ast.Lambda:
		if transparentLabel(op.Label) || plumbingCall(call) {
			// A beta-redex of expander plumbing: the body runs within the
			// host's activation and cannot be re-entered (it has no name),
			// so it is not an edge.
			return
		}
		// An immediately applied user lambda: a known edge to its node.
		g.targets[call] = []*node{g.nodeFor(op)}
		g.edges = append(g.edges, edge{from: host, to: g.nodeFor(op), tail: tail, site: call})
	case *ast.Var:
		if op.Name == "%undef" {
			return
		}
		if !shadowed[op.Name] {
			if _, isPrim := prim.Lookup(op.Name); isPrim && len(g.byLabel[op.Name]) == 0 {
				// Direct application of a standard procedure: it returns
				// immediately and performs no user calls; never an edge.
				return
			}
		}
		targets := g.byLabel[op.Name]
		if shadowed[op.Name] || len(targets) == 0 {
			g.unknownTarget[call] = true
			if !tail {
				g.unknownNonTail = append(g.unknownNonTail,
					fmt.Sprintf("non-tail call to statically unknown procedure %s (in %s)", op.Name, host.label))
			} else {
				g.unresolvedTails = true
			}
			return
		}
		g.targets[call] = targets
		for _, target := range targets {
			g.edges = append(g.edges, edge{from: host, to: target, tail: tail, site: call})
		}
	default:
		// Computed operator. Some computed operators still resolve
		// statically — most importantly the top level of an application
		// (P D), where P is the expanded program (a letrec redex whose value
		// is the main procedure).
		var refs []*ast.Var
		if targets := g.valueOf(call.Operator(), shadowed, &refs); len(targets) > 0 {
			for _, v := range refs {
				g.resolvedRefs[v] = true
			}
			g.targets[call] = targets
			for _, target := range targets {
				g.edges = append(g.edges, edge{from: host, to: target, tail: tail, site: call})
			}
			return
		}
		g.unknownTarget[call] = true
		if !tail {
			g.unknownNonTail = append(g.unknownNonTail,
				fmt.Sprintf("non-tail call with computed operator (in %s)", host.label))
		} else {
			g.unresolvedTails = true
		}
	}
}

// valueOf resolves an expression to the set of procedures it can evaluate
// to, or nil when the value is statically unknown. It sees through the
// expander's redex plumbing: an immediately applied lambda evaluates to
// whatever its body evaluates to, which is how the top-level letrec of a
// define-style program resolves to its main procedure. Every variable
// reference consumed along a successful resolution is appended to refs; the
// caller commits them to resolvedRefs only when the whole resolution
// succeeds and an edge is recorded.
func (g *callGraph) valueOf(e ast.Expr, shadowed map[string]bool, refs *[]*ast.Var) []*node {
	switch x := e.(type) {
	case *ast.Lambda:
		if transparentLabel(x.Label) {
			return nil
		}
		return []*node{g.nodeFor(x)}
	case *ast.Var:
		if shadowed[x.Name] {
			return nil
		}
		targets := g.byLabel[x.Name]
		if len(targets) > 0 {
			*refs = append(*refs, x)
		}
		return targets
	case *ast.If:
		a := g.valueOf(x.Then, shadowed, refs)
		b := g.valueOf(x.Else, shadowed, refs)
		if a == nil || b == nil {
			// One arm unknown makes the whole conditional unknown.
			return nil
		}
		return append(append([]*node{}, a...), b...)
	case *ast.Call:
		if lam, ok := x.Operator().(*ast.Lambda); ok {
			params := lam.Params
			if strings.HasPrefix(lam.Label, "%letrec:") {
				params = nil // letrec params are the labelled procedures
			}
			return g.valueOf(lam.Body, copyShadow(shadowed, params), refs)
		}
		// Applying a resolvable procedure: the call's value is whatever the
		// procedure's body can evaluate to (e.g. ((g)) where g returns a
		// thunk). The visiting set cuts recursion knots, which stay unknown.
		ops := g.valueOf(x.Operator(), shadowed, refs)
		if len(ops) == 0 {
			return nil
		}
		var out []*node
		for _, t := range ops {
			if t.lam == nil || g.valueVisiting[t] {
				return nil
			}
			g.valueVisiting[t] = true
			r := g.valueOf(t.lam.Body, copyShadow(nil, t.lam.Params), refs)
			delete(g.valueVisiting, t)
			if r == nil {
				return nil
			}
			out = append(out, r...)
		}
		return out
	}
	return nil
}

// hasAnyUnresolvedTailTargets reports whether the program contains tail
// calls whose targets the graph could not resolve (higher-order tail calls).
func (g *callGraph) hasAnyUnresolvedTailTargets() bool {
	return g.unresolvedTails
}

// hasUnknownCalls reports whether any call site failed to resolve — the
// condition under which hidden cycles may exist beyond the known edges.
func (g *callGraph) hasUnknownCalls() bool {
	return len(g.unknownTarget) > 0
}

// condense runs the SCC pass, marks cyclic components, and closes
// reachability over the component DAG.
func (g *callGraph) condense() {
	g.comp = g.sccs()
	g.cyclic = map[int]bool{}
	adj := map[int]map[int]bool{}
	comps := map[int]bool{}
	for _, c := range g.comp {
		comps[c] = true
	}
	for _, e := range g.edges {
		cf, ct := g.comp[e.from], g.comp[e.to]
		if cf == ct {
			g.cyclic[cf] = true
			continue
		}
		if adj[cf] == nil {
			adj[cf] = map[int]bool{}
		}
		adj[cf][ct] = true
	}
	// Reflexive-transitive closure by DFS from every component. Programs are
	// small (tens of lambdas), so the quadratic closure is fine.
	g.reach = map[int]map[int]bool{}
	for c := range comps {
		seen := map[int]bool{c: true}
		stack := []int{c}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[top] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		g.reach[c] = seen
	}
}

// inCycle reports whether n belongs to a component with an internal edge.
func (g *callGraph) inCycle(n *node) bool { return g.cyclic[g.comp[n]] }

// reaches reports whether from's component can reach to's component
// (reflexively).
func (g *callGraph) reaches(from, to *node) bool {
	return g.reach[g.comp[from]][g.comp[to]]
}

// sccs runs Tarjan's algorithm over the known-edge graph and returns the
// component index of every node.
func (g *callGraph) sccs() map[*node]int {
	adj := map[*node][]*node{}
	all := []*node{g.root}
	for _, n := range g.nodes {
		all = append(all, n)
	}
	for _, e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}

	index := map[*node]int{}
	low := map[*node]int{}
	onStack := map[*node]bool{}
	comp := map[*node]int{}
	var stack []*node
	counter := 0
	comps := 0

	var strongconnect func(v *node)
	strongconnect = func(v *node) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			comps++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = comps
				if w == v {
					break
				}
			}
		}
	}
	for _, v := range all {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}
