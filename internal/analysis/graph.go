package analysis

// This file builds the call graph shared by the static analyses: the
// control-space verdict (controlspace.go), the closure-retention analysis
// (retention.go), and the continuation-environment parking analysis
// (evlis.go). Nodes are the program's user-visible lambdas plus the top
// level; edges are call sites whose operator the 0-CFA (cfa.go) resolves —
// through letrec knots, conditionals, argument passing, and closures stored
// in the heap. The graph records, for every call site, the enclosing host
// procedure and the resolved candidate targets, and condenses itself into
// strongly connected components with a reachability relation over the
// condensation — the machinery every leak detector needs to ask "can
// evaluating this subexpression re-enter the procedure it is parked
// inside?".
//
// A site whose operator may also carry statically untracked flow (⊤ or a
// reified continuation) keeps its resolved edges — more edges mean more
// cycles, which only widens verdicts — and is additionally marked unknown,
// which every downstream claim treats as blocking.

import (
	"fmt"

	"tailspace/internal/ast"
)

// node is a call-graph vertex: a lambda, or the program's top level.
type node struct {
	lam   *ast.Lambda // nil for the root
	label string
	id    int
}

type edge struct {
	from, to *node
	tail     bool
	site     *ast.Call // nil for the synthetic root edge to an escaped lambda
}

// monSite is one (mon ctc e) expression with the activation it is built in.
type monSite struct {
	mon  *ast.Mon
	host *node
}

// unresolvedCall is one call site the flow analysis could not fully
// resolve; lint.go surfaces these so a reader can see why a verdict is
// "unknown".
type unresolvedCall struct {
	call   *ast.Call
	host   string
	tail   bool
	reason string
}

type callGraph struct {
	root  *node
	nodes map[*ast.Lambda]*node
	edges []edge
	// flow is the solved 0-CFA.
	flow *cfa
	// hosts records, for every call site the walk visits, the nearest
	// enclosing non-transparent lambda (or the root).
	hosts map[*ast.Call]*node
	// lambdaHost records the host in whose body each user-visible lambda is
	// created (the procedure that runs when the closure is built).
	lambdaHost map[*ast.Lambda]*node
	// targets records the resolved candidate callees of every call site;
	// sites that may also invoke untracked code are in unknownTarget too.
	targets       map[*ast.Call][]*node
	unknownTarget map[*ast.Call]bool
	// unresolved records every unknown site with its reason, in walk order.
	unresolved []unresolvedCall
	// tailOf records whether each visited call site is a tail call.
	tailOf map[*ast.Call]bool
	// monHosts records every monitor expression with its host activation,
	// in walk order — the contract analysis (contracts.go) consumes these.
	monHosts []monSite
	// unknownNonTail records non-tail calls whose target cannot be resolved.
	unknownNonTail []string
	// unresolvedTails notes tail calls to unresolvable targets (harmless at
	// the site, but they hide potential cycle-closing edges).
	unresolvedTails bool

	// Condensation, filled by condense().
	comp   map[*node]int
	cyclic map[int]bool         // component has an internal edge
	reach  map[int]map[int]bool // reflexive-transitive reachability over components
}

func newCallGraph() *callGraph {
	g := &callGraph{
		nodes:         map[*ast.Lambda]*node{},
		hosts:         map[*ast.Call]*node{},
		lambdaHost:    map[*ast.Lambda]*node{},
		targets:       map[*ast.Call][]*node{},
		unknownTarget: map[*ast.Call]bool{},
		tailOf:        map[*ast.Call]bool{},
	}
	g.root = &node{label: "(top level)", id: 0}
	return g
}

// buildGraph constructs the full call graph of an expanded program and
// condenses it. Every analysis pass shares the result.
func buildGraph(e ast.Expr) *callGraph {
	g := newCallGraph()
	g.flow = analyzeFlow(e)
	// Register every procedure in syntactic order so node IDs are stable.
	ast.Walk(e, func(x ast.Expr) bool {
		if lam, ok := x.(*ast.Lambda); ok && !transparentLabel(lam.Label) {
			g.nodeFor(lam)
		}
		return true
	})
	info := ast.MarkTails(e)
	g.walk(e, info, g.root)
	// A lambda that escaped to statically unknown code can be entered from
	// anywhere unknown code runs; a synthetic root edge keeps it (and the
	// leaks inside it) reachable. The edge is a tail edge so it never
	// manufactures control growth, and the root has no incoming edges so it
	// can never close a cycle.
	for _, lam := range g.sortedNodes() {
		if lam.lam != nil && g.flow.lambdaEscaped(lam.lam) {
			g.edges = append(g.edges, edge{from: g.root, to: lam, tail: true})
		}
	}
	g.condense()
	return g
}

// sortedNodes returns all nodes in registration (syntactic) order.
func (g *callGraph) sortedNodes() []*node {
	out := make([]*node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j].id < out[i].id {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func (g *callGraph) nodeFor(lam *ast.Lambda) *node {
	if n, ok := g.nodes[lam]; ok {
		return n
	}
	n := &node{lam: lam, label: lam.Label, id: len(g.nodes) + 1}
	g.nodes[lam] = n
	return n
}

// walk builds nodes and edges. host is the nearest non-transparent lambda
// (or the root).
func (g *callGraph) walk(e ast.Expr, info *ast.TailInfo, host *node) {
	switch x := e.(type) {
	case *ast.Lambda:
		if transparentLabel(x.Label) {
			g.walk(x.Body, info, host)
			return
		}
		g.lambdaHost[x] = host
		n := g.nodeFor(x)
		g.walk(x.Body, info, n)
	case *ast.If:
		g.walk(x.Test, info, host)
		g.walk(x.Then, info, host)
		g.walk(x.Else, info, host)
	case *ast.Set:
		g.walk(x.Rhs, info, host)
	case *ast.Call:
		g.recordCall(x, info, host)
		for _, sub := range x.Exprs {
			g.walk(sub, info, host)
		}
	case *ast.Mon:
		g.monHosts = append(g.monHosts, monSite{mon: x, host: host})
		g.walk(x.Ctc, info, host)
		g.walk(x.Expr, info, host)
	}
}

func (g *callGraph) recordCall(call *ast.Call, info *ast.TailInfo, host *node) {
	tail := info.IsTail(call)
	g.hosts[call] = host
	g.tailOf[call] = tail
	if lam, ok := call.Operator().(*ast.Lambda); ok && (transparentLabel(lam.Label) || plumbingCall(call)) {
		// A beta-redex of expander plumbing: the body runs within the
		// host's activation and cannot be re-entered (it has no name),
		// so it is not an edge.
		return
	}
	if v, ok := call.Operator().(*ast.Var); ok && v.Name == "%undef" {
		return
	}
	lams, unknown, reason := g.flow.resolve(call)
	var targets []*node
	for _, lam := range lams {
		if transparentLabel(lam.Label) {
			continue
		}
		targets = append(targets, g.nodeFor(lam))
	}
	if len(targets) > 0 {
		g.targets[call] = targets
		for _, t := range targets {
			g.edges = append(g.edges, edge{from: host, to: t, tail: tail, site: call})
		}
	}
	if unknown {
		g.unknownTarget[call] = true
		g.unresolved = append(g.unresolved, unresolvedCall{call: call, host: host.label, tail: tail, reason: reason})
		if !tail {
			g.unknownNonTail = append(g.unknownNonTail,
				fmt.Sprintf("non-tail call to statically unknown procedure (in %s): %s", host.label, reason))
		} else {
			g.unresolvedTails = true
		}
	}
}

// hasAnyUnresolvedTailTargets reports whether the program contains tail
// calls whose targets the flow analysis could not resolve (they hide
// potential cycle-closing edges).
func (g *callGraph) hasAnyUnresolvedTailTargets() bool {
	return g.unresolvedTails
}

// hasUnknownCalls reports whether any call site failed to resolve — the
// condition under which hidden cycles may exist beyond the known edges.
func (g *callGraph) hasUnknownCalls() bool {
	return len(g.unknownTarget) > 0
}

// condense runs the SCC pass, marks cyclic components, and closes
// reachability over the component DAG.
func (g *callGraph) condense() {
	g.comp = g.sccs()
	g.cyclic = map[int]bool{}
	adj := map[int]map[int]bool{}
	comps := map[int]bool{}
	for _, c := range g.comp {
		comps[c] = true
	}
	for _, e := range g.edges {
		cf, ct := g.comp[e.from], g.comp[e.to]
		if cf == ct {
			g.cyclic[cf] = true
			continue
		}
		if adj[cf] == nil {
			adj[cf] = map[int]bool{}
		}
		adj[cf][ct] = true
	}
	// Reflexive-transitive closure by DFS from every component. Programs are
	// small (tens of lambdas), so the quadratic closure is fine.
	g.reach = map[int]map[int]bool{}
	for c := range comps {
		seen := map[int]bool{c: true}
		stack := []int{c}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range adj[top] {
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		g.reach[c] = seen
	}
}

// inCycle reports whether n belongs to a component with an internal edge.
func (g *callGraph) inCycle(n *node) bool { return g.cyclic[g.comp[n]] }

// reaches reports whether from's component can reach to's component
// (reflexively).
func (g *callGraph) reaches(from, to *node) bool {
	return g.reach[g.comp[from]][g.comp[to]]
}

// sccs runs Tarjan's algorithm over the known-edge graph and returns the
// component index of every node.
func (g *callGraph) sccs() map[*node]int {
	adj := map[*node][]*node{}
	all := []*node{g.root}
	for _, n := range g.nodes {
		all = append(all, n)
	}
	for _, e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}

	index := map[*node]int{}
	low := map[*node]int{}
	onStack := map[*node]bool{}
	comp := map[*node]int{}
	var stack []*node
	counter := 0
	comps := 0

	var strongconnect func(v *node)
	strongconnect = func(v *node) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			comps++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = comps
				if w == v {
					break
				}
			}
		}
	}
	for _, v := range all {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}
