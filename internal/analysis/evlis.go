package analysis

// This file detects continuation-environment parking — the mechanism behind
// the Z_tail/Z_evlis and Z_free/Z_sfs separations (Theorem 25, third
// program). While a call's subexpression is being evaluated, the pending
// push continuation holds an environment; if the subexpression recurses,
// that environment is "parked" for the whole recursion, and every dead
// binding it contains is retained once per recursion level:
//
//   - Z_tail, Z_gc, Z_stack, Z_free store the full environment in every
//     pending continuation;
//   - Z_evlis stores the empty environment when the *last remaining*
//     subexpression is evaluated (nothing will need ρ afterwards), but the
//     full ρ when more subexpressions follow, and in pending select (if
//     test) and assign (set! rhs) continuations;
//   - Z_sfs restricts every stored environment to the free variables of the
//     work remaining, so a binding with no references is never retained.
//
// The scan walks each activation body tracking which provably dead, sized
// bindings the pending continuations above the current position hold under
// the tail policy (heldTail) and under the evlis policy (heldEvlis ⊆
// heldTail). When it meets a call whose targets can re-enter the binding's
// host component, the park repeats per recursion level: a park held by tail
// but not evlis separates Z_evlis below Z_tail/Z_free; a park held by evlis
// too separates Z_sfs below both.

import "tailspace/internal/ast"

// parkFinding is one parked binding at one recursing call site.
type parkFinding struct {
	site *ast.Call // the call whose evaluation happens under the park
	b    *binding
	// evlisHeld: some pending continuation on the chain keeps the binding
	// under the evlis policy as well (non-last operand, if test, set! rhs).
	evlisHeld bool
}

// parkScan accumulates findings and potential blockers.
type parkScan struct {
	a        *leakAnalysis
	findings []parkFinding
	// potentialTail / potentialEvlis: a call with statically unknown target
	// ran under a park; a hidden re-entry cannot be ruled out, so EQUAL
	// claims for the affected machine pairs are blocked.
	potentialTail  bool
	potentialEvlis bool
	seen           map[parkKey]bool
}

type parkKey struct {
	site *ast.Call
	b    *binding
}

// findParks scans the top level and every user lambda body.
func (a *leakAnalysis) findParks() *parkScan {
	p := &parkScan{a: a, seen: map[parkKey]bool{}}
	empty := map[*binding]bool{}
	p.scan(a.root, empty, empty)
	for _, lam := range a.userLambdas() {
		p.scan(lam.Body, empty, empty)
	}
	return p
}

// deadSized filters a rib for bindings only a machine's environment policy
// can keep alive: never read, never reassigned, and holding a fresh
// input-sized allocation.
func (a *leakAnalysis) deadSized(rib []*binding) []*binding {
	var out []*binding
	for _, b := range rib {
		if b.uses == 0 && b.setCount == 0 && b.cls.unsafe && b.cls.fresh && b.cls.sized {
			out = append(out, b)
		}
	}
	return out
}

func held(base map[*binding]bool, extra []*binding) map[*binding]bool {
	if len(extra) == 0 {
		return base
	}
	out := make(map[*binding]bool, len(base)+len(extra))
	for b := range base {
		out[b] = true
	}
	for _, b := range extra {
		out[b] = true
	}
	return out
}

// scan walks immediate code with the current pending-continuation holdings.
func (p *parkScan) scan(e ast.Expr, heldTail, heldEvlis map[*binding]bool) {
	switch x := e.(type) {
	case *ast.If:
		// A select continuation is pending while the test evaluates; it is
		// consumed before either arm runs.
		withTest := held(heldTail, p.a.deadSized(p.a.s.scopeAt[x]))
		p.scan(x.Test, withTest, held(heldEvlis, p.a.deadSized(p.a.s.scopeAt[x])))
		p.scan(x.Then, heldTail, heldEvlis)
		p.scan(x.Else, heldTail, heldEvlis)
	case *ast.Set:
		// An assign continuation is pending while the rhs evaluates.
		extra := p.a.deadSized(p.a.s.scopeAt[x])
		p.scan(x.Rhs, held(heldTail, extra), held(heldEvlis, extra))
	case *ast.Call:
		p.checkCall(x, heldTail, heldEvlis)
		extra := p.a.deadSized(p.a.s.scopeAt[x])
		last := len(x.Exprs) - 1
		for i, sub := range x.Exprs {
			subTail := held(heldTail, extra)
			subEvlis := heldEvlis
			if i != last {
				// More subexpressions follow: evlis keeps ρ too.
				subEvlis = held(heldEvlis, extra)
			}
			p.scan(sub, subTail, subEvlis)
		}
		if lam, ok := x.Operator().(*ast.Lambda); ok {
			// Immediately applied: by the time the body runs, this call's
			// own push continuation is gone — the body evaluates under the
			// same pending chain as the call itself.
			p.scan(lam.Body, heldTail, heldEvlis)
		}
	case *ast.Lambda:
		// Deferred code: its parks are scanned from its own body root, and
		// caller-side retention across its eventual application is already
		// accounted for at the call sites that can reach it.
	case *ast.Mon:
		// A mon-ctc continuation holds the environment while the contract
		// evaluates, under every policy (Z_sfs restricts it to the monitored
		// expression's free variables, which clears dead bindings — but the
		// park detector only tracks provably dead bindings, so charging both
		// sides here mirrors the if-test rule conservatively).
		extra := p.a.deadSized(p.a.s.scopeAt[x])
		p.scan(x.Ctc, held(heldTail, extra), held(heldEvlis, extra))
		p.scan(x.Expr, heldTail, heldEvlis)
	}
}

// checkCall tests whether evaluating this call can re-enter a held
// binding's host activation — the condition that repeats the park once per
// recursion level.
func (p *parkScan) checkCall(c *ast.Call, heldTail, heldEvlis map[*binding]bool) {
	if len(heldTail) == 0 {
		return
	}
	g := p.a.g
	if g.unknownTarget[c] {
		for b := range heldTail {
			if heldEvlis[b] {
				p.potentialEvlis = true
			} else {
				p.potentialTail = true
			}
		}
		return
	}
	targets := g.targets[c]
	if len(targets) == 0 {
		return
	}
	for b := range heldTail {
		if !g.inCycle(b.host) {
			continue
		}
		reenters := false
		for _, t := range targets {
			if g.reaches(t, b.host) {
				reenters = true
				break
			}
		}
		if !reenters {
			continue
		}
		key := parkKey{site: c, b: b}
		if p.seen[key] {
			continue
		}
		p.seen[key] = true
		p.findings = append(p.findings, parkFinding{site: c, b: b, evlisHeld: heldEvlis[b]})
	}
}

// lastParks returns parks cleared by the evlis policy (tail-only holds):
// the Z_evlis < Z_tail and Z_sfs < Z_free witnesses.
func (p *parkScan) lastParks() []parkFinding {
	var out []parkFinding
	for _, f := range p.findings {
		if !f.evlisHeld {
			out = append(out, f)
		}
	}
	return out
}

// nonLastParks returns parks the evlis policy also holds: witnesses that
// only Z_sfs's free-variable restriction clears.
func (p *parkScan) nonLastParks() []parkFinding {
	var out []parkFinding
	for _, f := range p.findings {
		if f.evlisHeld {
			out = append(out, f)
		}
	}
	return out
}
