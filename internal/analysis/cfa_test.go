package analysis

// Edge cases of the 0-CFA: the flow shapes the old syntactic resolver
// could not see through (letrec knots reached through higher-order
// dispatch, shadowing, closures stored in and retrieved from the heap)
// and the ones that must stay degraded (escaped lambdas, applied
// continuations). Each test checks both the control verdict and the
// structured unresolved-site report, so a precision regression and a
// soundness regression both fail.

import (
	"strings"
	"testing"
)

func lintOf(t *testing.T, src string) *LintReport {
	t.Helper()
	rep, err := LintSource("test", src)
	if err != nil {
		t.Fatalf("LintSource: %v", err)
	}
	return rep
}

// TestLetrecKnotThroughDispatcher: mutual recursion where every recursive
// call goes through a shared higher-order dispatcher, so the knot is
// invisible syntactically — the cycle exists only in the flow of ev and od
// through apply-fn's parameter f.
func TestLetrecKnotThroughDispatcher(t *testing.T) {
	src := `
(define (apply-fn f n) (f n))
(define (ev n) (if (zero? n) #t (apply-fn od (- n 1))))
(define (od n) (if (zero? n) #f (apply-fn ev (- n 1))))
(ev 10)`
	rep := lintOf(t, src)
	if rep.Control != BoundedControl.String() {
		t.Fatalf("control %v, want bounded", rep.Control)
	}
	if len(rep.Unresolved) != 0 {
		t.Fatalf("dispatcher call should resolve through the flow analysis: %+v", rep.Unresolved)
	}
}

// TestDeepShadowingResolvesToArgument: the callee name is shadowed twice
// (a parameter over a global, then a let over the parameter); the call
// must bind to the innermost definition's actual flow, not the global.
func TestDeepShadowingResolvesToArgument(t *testing.T) {
	src := `
(define (sq x) (sq x))
(define (f sq)
  (let ((sq (lambda (y) y)))
    (+ 1 (sq 2))))
(f (lambda (z) (z z)))`
	rep := lintOf(t, src)
	if rep.Control != BoundedControl.String() {
		t.Fatalf("control %v, want bounded (callee is the identity let binding)", rep.Control)
	}
	if len(rep.Unresolved) != 0 {
		t.Fatalf("shadowed call should resolve: %+v", rep.Unresolved)
	}
}

// TestStoredClosureResolvesThroughHeap: a thunk threaded through a pair —
// the single-summary store must carry the lambda from cons to car, so the
// forcing call ((car cell)) resolves instead of parking at unknown.
func TestStoredClosureResolvesThroughHeap(t *testing.T) {
	src := `
(define (force cell) ((car cell)))
(define (spin n cell)
  (if (zero? n) (force cell) (spin (- n 1) cell)))
(spin 10 (cons (lambda () 0) '()))`
	rep := lintOf(t, src)
	if rep.Control != BoundedControl.String() {
		t.Fatalf("control %v, want bounded", rep.Control)
	}
	if len(rep.Unresolved) != 0 {
		t.Fatalf("heap-stored thunk should resolve through Σ: %+v", rep.Unresolved)
	}
}

// TestStoredClosureResolvesThroughComposedAccessor: the same heap flow as
// above but retrieved with (cadr cell) — the composed accessors registered
// in internal/prim must sit in the accessor table, or the forcing site
// receives an *empty* abstract value: no edges, no unresolved entry, and a
// silently wrong bounded claim.
func TestStoredClosureResolvesThroughComposedAccessor(t *testing.T) {
	src := `
(define (force cell) ((cadr cell)))
(define (spin n cell)
  (if (zero? n) (force cell) (spin (- n 1) cell)))
(spin 10 (list 0 (lambda () 0)))`
	rep := lintOf(t, src)
	if rep.Control != BoundedControl.String() {
		t.Fatalf("control %v, want bounded", rep.Control)
	}
	if len(rep.Unresolved) != 0 {
		t.Fatalf("cadr-retrieved thunk should resolve through Σ: %+v", rep.Unresolved)
	}
}

// TestComposedAccessorNonTailSoundness: a non-tail loop recursing through
// ((cadr cell)) grows control on the stack machines; if cadr were missing
// from the accessor table the site would get no call edge at all and the
// verdict would be a wrong "bounded" — the soundness direction, not mere
// precision, depends on this entry.
func TestComposedAccessorNonTailSoundness(t *testing.T) {
	src := `
(define (loop n cell)
  (if (zero? n)
      0
      (+ 1 ((cadr cell) (- n 1) cell))))
(loop 10 (list 0 loop))`
	rep := lintOf(t, src)
	if rep.Control != UnboundedControl.String() {
		t.Fatalf("control %v, want unbounded (the cadr-retrieved call re-enters non-tail)", rep.Control)
	}
	if len(rep.Unresolved) != 0 {
		t.Fatalf("the retrieved procedure is statically known: %+v", rep.Unresolved)
	}
}

// TestCallccTailReentry: applying the reified continuation is the one call
// no static edge models, so the site must surface as unresolved — but it
// sits in tail position, and unknown tail calls never grow control, so the
// verdict stays bounded.
func TestCallccTailReentry(t *testing.T) {
	rep := lintOf(t, "(define (f n) (call/cc (lambda (k) (k n)))) (f 1)")
	if rep.Control != BoundedControl.String() {
		t.Fatalf("control %v, want bounded (the continuation call is a tail call)", rep.Control)
	}
	if len(rep.Unresolved) != 1 {
		t.Fatalf("want exactly the (k n) site unresolved: %+v", rep.Unresolved)
	}
	u := rep.Unresolved[0]
	if !u.Tail || !strings.Contains(u.Reason, "continuation") {
		t.Fatalf("unresolved site = %+v, want a tail site blamed on the continuation", u)
	}
}

// TestCallccNonTailReentryUnknown: the same continuation applied outside
// tail position may replace the control state mid-computation — no bound
// on control space can be claimed.
func TestCallccNonTailReentryUnknown(t *testing.T) {
	rep := lintOf(t, "(define (f n) (+ 1 (call/cc (lambda (k) (+ 2 (k n)))))) (f 1)")
	if rep.Control != UnknownControl.String() {
		t.Fatalf("control %v, want unknown", rep.Control)
	}
	found := false
	for _, u := range rep.Unresolved {
		if !u.Tail && strings.Contains(u.Reason, "continuation") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a non-tail unresolved site blamed on the continuation: %+v", rep.Unresolved)
	}
}

// TestEscapedLambdaDegradesToTop: a lambda that escapes through apply gets
// ⊤ parameters — the call to its parameter may invoke anything, so the
// verdict degrades to unknown rather than claiming a wrong bound.
func TestEscapedLambdaDegradesToTop(t *testing.T) {
	rep := lintOf(t, "(apply (lambda (g) (+ 1 (g 2))) (list zero?))")
	if rep.Control != UnknownControl.String() {
		t.Fatalf("control %v, want unknown (g is untracked after the escape)", rep.Control)
	}
	found := false
	for _, u := range rep.Unresolved {
		if strings.Contains(u.Expr, "(g ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("the (g 2) site should be reported unresolved: %+v", rep.Unresolved)
	}
}

// TestConditionalFlowJoins: both arms of an if flow into the operator; the
// call resolves to the join of the two lambdas, and since one of them
// re-enters non-tail, the verdict must be unbounded (not bounded via the
// other arm alone).
func TestConditionalFlowJoins(t *testing.T) {
	src := `
(define (f n pick)
  (if (zero? n)
      0
      ((if pick
           (lambda (m) (f (- m 1) pick))
           (lambda (m) (+ 1 (f (- m 1) pick))))
       n)))
(f 10 #t)`
	rep := lintOf(t, src)
	if rep.Control != UnboundedControl.String() {
		t.Fatalf("control %v, want unbounded (the second arm re-enters non-tail)", rep.Control)
	}
	if len(rep.Unresolved) != 0 {
		t.Fatalf("both arms are statically known: %+v", rep.Unresolved)
	}
}
