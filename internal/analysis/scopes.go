package analysis

// This file is the binding pass shared by the leak analyses: it walks the
// expanded program once, resolving every variable reference to its binding
// site and recording, for every call site and every user lambda, which
// bindings belong to the *current activation* — the host procedure's
// parameters plus the let/letrec ribs entered inside it. Those are the
// bindings a retention or parking leak can accumulate per recursion level;
// bindings of enclosing activations are shared across iterations and can
// only cost O(1) extra, so the leak detectors never need them.
//
// The pass also collects each binding's initializers — the operand of a
// let-style redex, the set! right-hand side of a letrec, and (via the call
// graph's CFA-resolved edges) the argument expressions of every resolved
// call site — which is what the safety classifier in bindclass.go folds
// over. Whether a parameter can additionally receive values the analysis
// does not track is no longer a syntactic question: the flow analysis
// answers it directly (cfa.paramUnknown).

import (
	"strings"

	"tailspace/internal/ast"
)

type bindKind int

const (
	paramBind  bindKind = iota // parameter of a user (non-transparent) lambda
	letBind                    // parameter of a transparent let-style wrapper
	letrecBind                 // parameter of a %letrec: wrapper
)

// binding describes one variable binding site and everything the walk
// learned about the values that flow into it.
type binding struct {
	name string
	kind bindKind
	host *node // activation that owns the rib
	// inits are the statically known initializers: the let operand, the
	// letrec set! right-hand side, or call-site arguments (joined later).
	inits []ast.Expr
	// initUnknown marks bindings that can receive values the flow analysis
	// cannot track: parameters that may be ⊤ or a reified continuation,
	// arity-mismatched sites, let wrappers missing an operand.
	initUnknown bool
	// uses counts variable references; setCount counts assignments after
	// initialization. A binding with zero of both is provably dead code —
	// only a machine's environment policy can keep its value alive.
	uses     int
	setCount int

	// Classification state (bindclass.go). cls and inputMag are rebuilt each
	// fixpoint round; the done flags are the per-round memo.
	cls      bindClass
	clsDone  bool
	inputMag bool
	magDone  bool
}

type scopes struct {
	g  *callGraph
	fv *ast.FreeVarCache
	// all lists every binding in creation order.
	all []*binding
	// varRef resolves every walked variable reference to its binding; prim
	// references and %undef stay absent.
	varRef map[*ast.Var]*binding
	// scopeAt gives the host-activation bindings in scope at each call, if,
	// and set! node — the domains a pending push/select/assign continuation
	// created there can hold.
	scopeAt map[ast.Expr][]*binding
	// lamEnv / lamScope give, at each user lambda occurrence, the full
	// lexical environment and the host-activation bindings in scope.
	lamEnv   map[*ast.Lambda]map[string]*binding
	lamScope map[*ast.Lambda][]*binding
	// paramsOf gives the parameter bindings of each call-graph node.
	paramsOf map[*node][]*binding
	// driverArgs marks the operand expressions of top-level driver calls:
	// the program's input knobs, whose magnitude scales with the sweep.
	driverArgs map[ast.Expr]bool
}

// buildScopes runs the binding pass over the expanded program whose call
// graph is g.
func buildScopes(g *callGraph, root ast.Expr) *scopes {
	s := &scopes{
		g:          g,
		fv:         ast.NewFreeVarCache(),
		varRef:     map[*ast.Var]*binding{},
		scopeAt:    map[ast.Expr][]*binding{},
		lamEnv:     map[*ast.Lambda]map[string]*binding{},
		lamScope:   map[*ast.Lambda][]*binding{},
		paramsOf:   map[*node][]*binding{},
		driverArgs: map[ast.Expr]bool{},
	}
	s.walk(root, g.root, map[string]*binding{}, nil)
	s.joinCallSites()
	return s
}

func copyEnv(env map[string]*binding) map[string]*binding {
	out := make(map[string]*binding, len(env)+2)
	for k, v := range env {
		out[k] = v
	}
	return out
}

func (s *scopes) newBinding(name string, kind bindKind, host *node, inits ...ast.Expr) *binding {
	b := &binding{name: name, kind: kind, host: host, inits: inits}
	s.all = append(s.all, b)
	return b
}

func (s *scopes) walk(e ast.Expr, host *node, env map[string]*binding, rib []*binding) {
	switch x := e.(type) {
	case *ast.Var:
		if b := env[x.Name]; b != nil {
			s.varRef[x] = b
			b.uses++
		}
	case *ast.Lambda:
		s.walkLambda(x, host, env, rib)
	case *ast.If:
		s.scopeAt[x] = append([]*binding{}, rib...)
		s.walk(x.Test, host, env, rib)
		s.walk(x.Then, host, env, rib)
		s.walk(x.Else, host, env, rib)
	case *ast.Set:
		s.scopeAt[x] = append([]*binding{}, rib...)
		if b := env[x.Name]; b != nil {
			if b.kind == letrecBind && len(b.inits) == 0 && b.setCount == 0 {
				// The letrec expansion initializes each binding with one
				// leading set!; the first assignment walked (syntactic
				// order) is that initializer.
				b.inits = append(b.inits, x.Rhs)
			} else {
				// Every assigned value is one more initializer: the safety
				// classifier folds over all of them, so mutation no longer
				// forces pessimism by itself.
				b.setCount++
				b.inits = append(b.inits, x.Rhs)
			}
		}
		s.walk(x.Rhs, host, env, rib)
	case *ast.Call:
		s.walkCall(x, host, env, rib)
	case *ast.Mon:
		// A mon-ctc continuation holding the rib's environment is pending
		// while the contract evaluates.
		s.scopeAt[x] = append([]*binding{}, rib...)
		s.walk(x.Ctc, host, env, rib)
		s.walk(x.Expr, host, env, rib)
	}
}

func (s *scopes) walkLambda(x *ast.Lambda, host *node, env map[string]*binding, rib []*binding) {
	// Transparent wrappers only occur as operators and are handled by
	// walkCall; anything that lands here is a user lambda: a new rib and a
	// new activation.
	s.lamEnv[x] = copyEnv(env)
	s.lamScope[x] = append([]*binding{}, rib...)
	n := s.g.nodeFor(x)
	newEnv := copyEnv(env)
	params := make([]*binding, len(x.Params))
	for i, p := range x.Params {
		b := s.newBinding(p, paramBind, n)
		params[i] = b
		newEnv[p] = b
	}
	s.paramsOf[n] = params
	s.walk(x.Body, n, newEnv, params)
}

func (s *scopes) walkCall(x *ast.Call, host *node, env map[string]*binding, rib []*binding) {
	s.scopeAt[x] = append([]*binding{}, rib...)
	if host == s.g.root && s.g.tailOf[x] {
		// The program's driver call: its operands are the input knobs.
		for _, arg := range x.Operands() {
			s.driverArgs[arg] = true
		}
	}
	switch op := x.Operator().(type) {
	case *ast.Lambda:
		if strings.HasPrefix(op.Label, "%letrec:") {
			// Letrec redex: the params are the recursive bindings,
			// initialized by the leading set!s of the body; the operands
			// are (%undef) placeholders.
			newEnv := copyEnv(env)
			newRib := append([]*binding{}, rib...)
			for _, p := range op.Params {
				b := s.newBinding(p, letrecBind, host)
				newEnv[p] = b
				newRib = append(newRib, b)
			}
			s.walk(op.Body, host, newEnv, newRib)
			return
		}
		if transparentLabel(op.Label) {
			// Let-style redex: the operands initialize the wrapper params,
			// and the body runs in the same activation.
			ops := x.Operands()
			for _, arg := range ops {
				s.walk(arg, host, env, rib)
			}
			newEnv := copyEnv(env)
			newRib := append([]*binding{}, rib...)
			for i, p := range op.Params {
				var b *binding
				if i < len(ops) {
					b = s.newBinding(p, letBind, host, ops[i])
				} else {
					b = s.newBinding(p, letBind, host)
					b.initUnknown = true
				}
				newEnv[p] = b
				newRib = append(newRib, b)
			}
			s.walk(op.Body, host, newEnv, newRib)
			return
		}
		// Immediately applied user lambda: its params get their inits from
		// the call-site join (the graph records the site as an edge).
		for _, arg := range x.Operands() {
			s.walk(arg, host, env, rib)
		}
		s.walkLambda(op, host, env, rib)
	case *ast.Var:
		if b := env[op.Name]; b != nil {
			s.varRef[op] = b
			b.uses++ // operator position: a use like any other
		}
		for _, arg := range x.Operands() {
			s.walk(arg, host, env, rib)
		}
	default:
		for _, sub := range x.Exprs {
			s.walk(sub, host, env, rib)
		}
	}
}

// joinCallSites distributes call-site argument expressions to parameter
// bindings along the CFA-resolved edges, and marks every parameter the flow
// analysis says may receive untracked values (⊤ or a continuation) as
// initUnknown.
func (s *scopes) joinCallSites() {
	for call, targets := range s.g.targets {
		if _, isCC := s.g.flow.ccArg[call]; isCC {
			// A (call/cc f) site: the targets are f's lambdas, but the value
			// bound to their parameter is the reified continuation, not the
			// call's operand. paramUnknown covers the parameter below.
			continue
		}
		args := call.Operands()
		for _, t := range targets {
			params := s.paramsOf[t]
			if len(args) != len(params) {
				for _, p := range params {
					p.initUnknown = true
				}
				continue
			}
			for i, p := range params {
				p.inits = append(p.inits, args[i])
			}
		}
	}
	for lam, n := range s.g.nodes {
		for i, p := range s.paramsOf[n] {
			if s.g.flow.paramUnknown(lam, i) {
				p.initUnknown = true
			}
		}
	}
}
