package analysis

// This file is the binding pass shared by the leak analyses: it walks the
// expanded program once, resolving every variable reference to its binding
// site and recording, for every call site and every user lambda, which
// bindings belong to the *current activation* — the host procedure's
// parameters plus the let/letrec ribs entered inside it. Those are the
// bindings a retention or parking leak can accumulate per recursion level;
// bindings of enclosing activations are shared across iterations and can
// only cost O(1) extra, so the leak detectors never need them.
//
// The pass also collects each binding's initializers — the operand of a
// let-style redex, the set! right-hand side of a letrec, and (via the call
// graph) the argument expressions of every resolved call site — which is
// what the safety classifier in bindclass.go folds over.

import (
	"strings"

	"tailspace/internal/ast"
)

type bindKind int

const (
	paramBind  bindKind = iota // parameter of a user (non-transparent) lambda
	letBind                    // parameter of a transparent let-style wrapper
	letrecBind                 // parameter of a %letrec: wrapper
)

// binding describes one variable binding site and everything the walk
// learned about the values that flow into it.
type binding struct {
	name string
	kind bindKind
	host *node // activation that owns the rib
	// inits are the statically known initializers: the let operand, the
	// letrec set! right-hand side, or call-site arguments (joined later).
	inits []ast.Expr
	// initUnknown marks bindings that can receive values the graph cannot
	// see: parameters of escaping procedures, arity-mismatched sites.
	initUnknown bool
	// uses counts variable references; setCount counts assignments after
	// initialization. A binding with zero of both is provably dead code —
	// only a machine's environment policy can keep its value alive.
	uses     int
	setCount int
	// escapes marks bindings referenced outside operator position: their
	// value flows somewhere the analysis does not track.
	escapes bool

	// Classification state (bindclass.go). cls and inputMag are rebuilt each
	// fixpoint round; the done flags are the per-round memo.
	cls      bindClass
	clsDone  bool
	inputMag bool
	magDone  bool
}

// lamContext records how a user lambda occurs in the program.
type lamContext int

const (
	lamEscaped lamContext = iota // value position: flows somewhere untracked
	lamApplied                   // operator position: immediately applied
	lamBound                     // sole initializer of a let/letrec binding
)

type scopes struct {
	g  *callGraph
	fv *ast.FreeVarCache
	// all lists every binding in creation order.
	all []*binding
	// varRef resolves every walked variable reference to its binding; prim
	// references and %undef stay absent.
	varRef map[*ast.Var]*binding
	// scopeAt gives the host-activation bindings in scope at each call, if,
	// and set! node — the domains a pending push/select/assign continuation
	// created there can hold.
	scopeAt map[ast.Expr][]*binding
	// lamEnv / lamScope give, at each user lambda occurrence, the full
	// lexical environment and the host-activation bindings in scope.
	lamEnv   map[*ast.Lambda]map[string]*binding
	lamScope map[*ast.Lambda][]*binding
	// paramsOf gives the parameter bindings of each call-graph node.
	paramsOf map[*node][]*binding
	// lamCtx classifies each user lambda occurrence; boundTo gives the
	// binding for lamBound lambdas.
	lamCtx  map[*ast.Lambda]lamContext
	boundTo map[*ast.Lambda]*binding
	// driverArgs marks the operand expressions of top-level driver calls:
	// the program's input knobs, whose magnitude scales with the sweep.
	driverArgs map[ast.Expr]bool
}

// buildScopes runs the binding pass over the expanded program whose call
// graph is g.
func buildScopes(g *callGraph, root ast.Expr) *scopes {
	s := &scopes{
		g:          g,
		fv:         ast.NewFreeVarCache(),
		varRef:     map[*ast.Var]*binding{},
		scopeAt:    map[ast.Expr][]*binding{},
		lamEnv:     map[*ast.Lambda]map[string]*binding{},
		lamScope:   map[*ast.Lambda][]*binding{},
		paramsOf:   map[*node][]*binding{},
		lamCtx:     map[*ast.Lambda]lamContext{},
		boundTo:    map[*ast.Lambda]*binding{},
		driverArgs: map[ast.Expr]bool{},
	}
	s.walk(root, g.root, map[string]*binding{}, nil)
	s.joinCallSites()
	return s
}

func copyEnv(env map[string]*binding) map[string]*binding {
	out := make(map[string]*binding, len(env)+2)
	for k, v := range env {
		out[k] = v
	}
	return out
}

func (s *scopes) newBinding(name string, kind bindKind, host *node, inits ...ast.Expr) *binding {
	b := &binding{name: name, kind: kind, host: host, inits: inits}
	s.all = append(s.all, b)
	return b
}

func (s *scopes) walk(e ast.Expr, host *node, env map[string]*binding, rib []*binding) {
	switch x := e.(type) {
	case *ast.Var:
		if b := env[x.Name]; b != nil {
			s.varRef[x] = b
			b.uses++
			if !s.g.resolvedRefs[x] {
				// Non-operator reference: the value flows away — unless the
				// graph traced this very reference to a recorded call edge
				// (e.g. the program value applied by the driver), in which
				// case the flow is fully accounted for by joinCallSites.
				b.escapes = true
			}
		}
	case *ast.Lambda:
		s.walkLambda(x, host, env, rib)
	case *ast.If:
		s.scopeAt[x] = append([]*binding{}, rib...)
		s.walk(x.Test, host, env, rib)
		s.walk(x.Then, host, env, rib)
		s.walk(x.Else, host, env, rib)
	case *ast.Set:
		s.scopeAt[x] = append([]*binding{}, rib...)
		if b := env[x.Name]; b != nil {
			if b.kind == letrecBind && len(b.inits) == 0 && b.setCount == 0 {
				// The letrec expansion initializes each binding with one
				// leading set!; the first assignment walked (syntactic
				// order) is that initializer.
				b.inits = append(b.inits, x.Rhs)
				if lam, ok := x.Rhs.(*ast.Lambda); ok && !transparentLabel(lam.Label) {
					s.lamCtx[lam] = lamBound
					s.boundTo[lam] = b
				}
			} else {
				b.setCount++
			}
		}
		s.walk(x.Rhs, host, env, rib)
	case *ast.Call:
		s.walkCall(x, host, env, rib)
	}
}

func (s *scopes) walkLambda(x *ast.Lambda, host *node, env map[string]*binding, rib []*binding) {
	// Transparent wrappers only occur as operators and are handled by
	// walkCall; anything that lands here is a user lambda: a new rib and a
	// new activation.
	s.lamEnv[x] = copyEnv(env)
	s.lamScope[x] = append([]*binding{}, rib...)
	if _, seen := s.lamCtx[x]; !seen {
		s.lamCtx[x] = lamEscaped
	}
	n := s.g.nodeFor(x)
	newEnv := copyEnv(env)
	params := make([]*binding, len(x.Params))
	for i, p := range x.Params {
		b := s.newBinding(p, paramBind, n)
		params[i] = b
		newEnv[p] = b
	}
	s.paramsOf[n] = params
	s.walk(x.Body, n, newEnv, params)
}

func (s *scopes) walkCall(x *ast.Call, host *node, env map[string]*binding, rib []*binding) {
	s.scopeAt[x] = append([]*binding{}, rib...)
	if host == s.g.root && s.g.tailOf[x] {
		// The program's driver call: its operands are the input knobs.
		for _, arg := range x.Operands() {
			s.driverArgs[arg] = true
		}
	}
	switch op := x.Operator().(type) {
	case *ast.Lambda:
		if strings.HasPrefix(op.Label, "%letrec:") {
			// Letrec redex: the params are the recursive bindings,
			// initialized by the leading set!s of the body; the operands
			// are (%undef) placeholders.
			newEnv := copyEnv(env)
			newRib := append([]*binding{}, rib...)
			for _, p := range op.Params {
				b := s.newBinding(p, letrecBind, host)
				newEnv[p] = b
				newRib = append(newRib, b)
			}
			s.walk(op.Body, host, newEnv, newRib)
			return
		}
		if transparentLabel(op.Label) {
			// Let-style redex: the operands initialize the wrapper params,
			// and the body runs in the same activation.
			ops := x.Operands()
			for _, arg := range ops {
				s.walk(arg, host, env, rib)
			}
			newEnv := copyEnv(env)
			newRib := append([]*binding{}, rib...)
			for i, p := range op.Params {
				var b *binding
				if i < len(ops) {
					b = s.newBinding(p, letBind, host, ops[i])
					if lam, ok := ops[i].(*ast.Lambda); ok && !transparentLabel(lam.Label) {
						s.lamCtx[lam] = lamBound
						s.boundTo[lam] = b
					}
				} else {
					b = s.newBinding(p, letBind, host)
					b.initUnknown = true
				}
				newEnv[p] = b
				newRib = append(newRib, b)
			}
			s.walk(op.Body, host, newEnv, newRib)
			return
		}
		// Immediately applied user lambda: its params get their inits from
		// the call-site join (the graph records the site as an edge).
		s.lamCtx[op] = lamApplied
		for _, arg := range x.Operands() {
			s.walk(arg, host, env, rib)
		}
		s.walkLambda(op, host, env, rib)
	case *ast.Var:
		if b := env[op.Name]; b != nil {
			s.varRef[op] = b
			b.uses++ // operator position: a use, but not an escape
		}
		for _, arg := range x.Operands() {
			s.walk(arg, host, env, rib)
		}
	default:
		for _, sub := range x.Exprs {
			s.walk(sub, host, env, rib)
		}
	}
}

// joinCallSites distributes call-site argument expressions to parameter
// bindings, and marks the parameters of escaping procedures as accepting
// unknown values.
func (s *scopes) joinCallSites() {
	for call, targets := range s.g.targets {
		args := call.Operands()
		for _, t := range targets {
			params := s.paramsOf[t]
			if len(args) != len(params) {
				for _, p := range params {
					p.initUnknown = true
				}
				continue
			}
			for i, p := range params {
				p.inits = append(p.inits, args[i])
			}
		}
	}
	for lam, ctx := range s.lamCtx {
		escaped := false
		switch ctx {
		case lamEscaped:
			escaped = true
		case lamBound:
			b := s.boundTo[lam]
			escaped = b.escapes || b.setCount > 0 || b.initUnknown
		}
		if escaped {
			for _, p := range s.paramsOf[s.g.nodes[lam]] {
				p.initUnknown = true
			}
		}
	}
}
