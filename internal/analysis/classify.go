package analysis

// This file packages space-class certificates as a report: one program, one
// cost model, one bound per certified machine — the six hierarchy machines
// plus the two contract monitors (tailscan -classify, POST /v1/classify).
//
// Certificates are derived under unit-cost accounting (the word and fixnum
// models price every object a constant number of words, so they share
// growth classes). The logarithmic model charges each object a factor that
// itself grows with the live set, so a class certified at unit cost widens
// one step: O(1) state can carry O(log n)-bit numbers, and an O(n)
// structure of log-priced cells need not stay within any fixed linear
// bound. Widening only ever weakens a claim, preserving the soundness
// direction of the whole analyzer.

import (
	"fmt"
	"strings"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
)

// ClassifyReport is the per-program certification output.
type ClassifyReport struct {
	Program string `json:"program"`
	// Model is the space cost model the bounds are stated under.
	Model        string           `json:"model"`
	Control      string           `json:"control"`
	Ordering     string           `json:"ordering"`
	Certificates []Certificate    `json:"certificates"`
	Unresolved   []UnresolvedSite `json:"unresolved,omitempty"`
}

// widenForModel translates a unit-cost class to the named cost model.
func widenForModel(c SpaceClass, model string) SpaceClass {
	if model != "log" {
		return c
	}
	switch c {
	case ClassConstant:
		return ClassLinear
	case ClassLinear:
		return ClassUnbounded
	default:
		return c
	}
}

// Classify derives the certification report for an expanded program under
// the named cost model ("word", "fixnum", or "log"; "" means word).
func Classify(name string, e ast.Expr, model string) *ClassifyReport {
	if model == "" {
		model = "word"
	}
	leak := AnalyzeLeaks(e)
	certs := make([]Certificate, len(leak.Certificates))
	for i, c := range leak.Certificates {
		wide := widenForModel(c.Class, model)
		evidence := c.Evidence
		if wide != c.Class {
			evidence = append(append([]string{}, evidence...),
				fmt.Sprintf("logarithmic accounting widens the unit-cost bound %s", c.Class))
		}
		certs[i] = Certificate{Machine: c.Machine, Class: wide, Evidence: evidence}
	}
	return &ClassifyReport{
		Program:      name,
		Model:        model,
		Control:      leak.Control,
		Ordering:     leak.Ordering,
		Certificates: certs,
		Unresolved:   leak.Unresolved,
	}
}

// ClassifySource expands and classifies program text.
func ClassifySource(name, src, model string) (*ClassifyReport, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return Classify(name, e, model), nil
}

// CertificateFor returns the certificate for one machine (zero value when
// the machine is not certified).
func (r *ClassifyReport) CertificateFor(machine string) Certificate {
	for _, c := range r.Certificates {
		if c.Machine == machine {
			return c
		}
	}
	return Certificate{}
}

// Render formats the report for terminal output.
func (r *ClassifyReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: control %s (cost model %s)\n", r.Program, r.Control, r.Model)
	for _, c := range r.Certificates {
		fmt.Fprintf(&b, "  %-6s %-10s", c.Machine, c.Class)
		if len(c.Evidence) > 0 {
			fmt.Fprintf(&b, " %s", c.Evidence[0])
		}
		b.WriteByte('\n')
		for _, e := range c.Evidence[min(1, len(c.Evidence)):] {
			fmt.Fprintf(&b, "  %17s %s\n", "", e)
		}
	}
	for _, u := range r.Unresolved {
		fmt.Fprintf(&b, "  unresolved call (node %d, in %s): %s\n", u.NodeID, u.Host, u.Reason)
	}
	return b.String()
}
