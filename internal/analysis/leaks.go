package analysis

// This file is the synthesis step of the space-leak analyzer: it runs the
// control-space, retention, and continuation-parking analyses over one
// shared call graph and binding pass, emits structured leak diagnostics,
// and combines everything into a predicted space ordering over the paper's
// machine pairs. Every claim is phrased as a relation on a pair the
// hierarchy (Theorem 24) leaves adjacent:
//
//	tail<gc     return continuations   (Theorem 25, countdown)
//	gc<stack    Algol frame retention  (Theorem 25, vector-frames)
//	evlis<tail  parked continuation environments (thunk-return)
//	free<tail   whole-environment closures       (closure-capture)
//	sfs<evlis   closure capture + non-last parks
//	sfs<free    parked continuation environments
//	spaceff<naive  pending codomain checks: chained vs joined (contracted-loop)
//
// "Separates" predicts the right machine measurably outgrows the left on
// this program; "equal" predicts the same growth class on both; "unknown"
// makes no claim (statically unresolvable calls could hide either). The
// differential grid in internal/experiments sweeps every claim against the
// meters: a separation must show a strict class gap, an equality must show
// none.

import (
	"fmt"
	"sort"
	"strings"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
)

// Leak is one structured diagnostic: a retention mechanism found at a
// specific AST node, with the machine pair it separates.
type Leak struct {
	// Kind is one of return-cont, stack-frame, evlis-env, cont-env,
	// retained-closure, contract-cod, contract-identity.
	Kind string `json:"kind"`
	// Pair names the machine pair the mechanism separates, smaller first.
	Pair   string `json:"pair"`
	NodeID int    `json:"nodeId"`
	Expr   string `json:"expr"`
	Detail string `json:"detail"`
}

// RelVerdict is the per-pair prediction.
type RelVerdict string

const (
	Separates RelVerdict = "separates"
	SameClass RelVerdict = "equal"
	NoClaim   RelVerdict = "unknown"
)

// Relation is the predicted relationship between two machines' space use
// on this program.
type Relation struct {
	Small   string     `json:"small"`
	Big     string     `json:"big"`
	Verdict RelVerdict `json:"verdict"`
	Why     string     `json:"why"`
}

// Pair renders the pair name, smaller machine first.
func (r Relation) Pair() string { return r.Small + "<" + r.Big }

// LeakReport is the full analyzer output for one program.
type LeakReport struct {
	Control         string          `json:"control"`
	ControlFindings []string        `json:"controlFindings,omitempty"`
	Lambdas         []LambdaCapture `json:"lambdas,omitempty"`
	Leaks           []Leak          `json:"leaks,omitempty"`
	Relations       []Relation      `json:"relations"`
	// Ordering is the human-readable summary, e.g.
	// "tail<gc, gc=stack, evlis<tail, free=tail, sfs=evlis, sfs<free".
	Ordering string `json:"ordering"`
	// Certificates are the per-machine space-class bounds (certify.go).
	Certificates []Certificate `json:"certificates"`
	// Unresolved lists every call site the flow analysis could not resolve —
	// the reasons any verdict above is "unknown".
	Unresolved []UnresolvedSite `json:"unresolved,omitempty"`
}

// RelationFor returns the relation for a pair like "evlis<tail", or a
// no-claim relation when the pair is not analyzed.
func (rep *LeakReport) RelationFor(pair string) Relation {
	for _, r := range rep.Relations {
		if r.Pair() == pair {
			return r
		}
	}
	small, big, _ := strings.Cut(pair, "<")
	return Relation{Small: small, Big: big, Verdict: NoClaim, Why: "pair not analyzed"}
}

// AnalyzeLeaksSource expands and analyzes program text.
func AnalyzeLeaksSource(src string) (*LeakReport, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeLeaks(e), nil
}

// AnalyzeLeaks runs the full space-leak analysis over an expanded program.
func AnalyzeLeaks(e ast.Expr) *LeakReport {
	g := buildGraph(e)
	s := buildScopes(g, e)
	classifyAll(s)
	a := &leakAnalysis{root: e, g: g, s: s, ids: ast.Number(e)}

	control := controlReport(g)
	parks := a.findParks()
	rets := a.findRetentions()
	ctrs := a.findContracts()

	rep := &LeakReport{
		Control:         control.Verdict.String(),
		ControlFindings: control.Findings,
		Lambdas:         a.captureReport(),
	}
	// Certificates come first: the monitor-pair relation compares the two
	// monitors' certified classes rather than re-deriving the gating.
	rep.Certificates = a.certify(control, parks, rets, ctrs)
	rep.Relations = a.relations(control, parks, rets, ctrs, rep.Certificates)
	rep.Leaks = a.leaks(rep.Relations, parks, rets, ctrs)
	rep.Unresolved = a.unresolvedSites()
	parts := make([]string, len(rep.Relations))
	for i, r := range rep.Relations {
		switch r.Verdict {
		case Separates:
			parts[i] = r.Small + "<" + r.Big
		case SameClass:
			parts[i] = r.Small + "=" + r.Big
		default:
			parts[i] = r.Small + "?" + r.Big
		}
	}
	rep.Ordering = strings.Join(parts, ", ")
	return rep
}

// leakAnalysis bundles the shared state of the detector passes.
type leakAnalysis struct {
	root ast.Expr
	g    *callGraph
	s    *scopes
	ids  map[ast.Expr]int
}

// userLambdas returns every non-transparent lambda in node-ID order.
func (a *leakAnalysis) userLambdas() []*ast.Lambda {
	out := make([]*ast.Lambda, 0, len(a.s.lamScope))
	for lam := range a.s.lamScope {
		out = append(out, lam)
	}
	sort.Slice(out, func(i, j int) bool { return a.ids[out[i]] < a.ids[out[j]] })
	return out
}

// compFacts summarizes one strongly connected component of the call graph.
type compFacts struct {
	cyclic    bool
	allTail   bool // every internal edge is a tail call
	reachable bool // from the top level
	// inputDriven: some member's parameter carries input magnitude, so the
	// recursion depth scales with the sweep.
	inputDriven bool
	// unsafeHosted: some binding of a member activation can hold
	// input-growing data — growth both machines of a pair pay for.
	unsafeHosted bool
	// deadSized lists hosted bindings only environment policy keeps alive.
	deadSized []*binding
}

func (a *leakAnalysis) compSummary() map[int]*compFacts {
	g := a.g
	facts := map[int]*compFacts{}
	get := func(c int) *compFacts {
		if f, ok := facts[c]; ok {
			return f
		}
		f := &compFacts{allTail: true, cyclic: g.cyclic[c]}
		facts[c] = f
		return f
	}
	for _, n := range g.nodes {
		f := get(g.comp[n])
		if g.reach[g.comp[g.root]][g.comp[n]] {
			f.reachable = true
		}
		for _, p := range a.s.paramsOf[n] {
			if p.inputMag {
				f.inputDriven = true
			}
		}
	}
	for _, e := range g.edges {
		if g.comp[e.from] == g.comp[e.to] && !e.tail {
			get(g.comp[e.from]).allTail = false
		}
	}
	for _, b := range a.s.all {
		f := get(g.comp[b.host])
		if b.cls.unsafe {
			f.unsafeHosted = true
		}
		if b.uses == 0 && b.setCount == 0 && b.cls.unsafe && b.cls.fresh && b.cls.sized {
			f.deadSized = append(f.deadSized, b)
		}
	}
	return facts
}

// relations synthesizes the per-pair verdicts.
func (a *leakAnalysis) relations(control ControlReport, parks *parkScan, rets *retentionScan, ctrs *contractScan, certs []Certificate) []Relation {
	facts := a.compSummary()
	anyUnknown := a.g.hasUnknownCalls()
	lastParks := parks.lastParks()
	nonLastParks := parks.nonLastParks()

	// growthWitness: input-sized data or control stack grows on every
	// machine of the tail family alike.
	growthWitness := control.Verdict == UnboundedControl
	cleanTailLoop := false
	var stackWitnesses []*binding
	parked := map[*binding]bool{}
	for _, f := range parks.findings {
		parked[f.b] = true
	}
	for _, f := range rets.findings {
		parked[f.b] = true
	}
	for _, f := range facts {
		if !f.reachable || !f.cyclic {
			continue
		}
		if f.unsafeHosted {
			growthWitness = true
		}
		if f.allTail && f.inputDriven && !f.unsafeHosted {
			cleanTailLoop = true
		}
		if f.inputDriven {
			for _, b := range f.deadSized {
				if !parked[b] {
					// Retained by Algol frames, collectable under Z_gc; a
					// parked or captured binding is retained by both.
					stackWitnesses = append(stackWitnesses, b)
				}
			}
		}
	}
	anyCycle := false
	for _, f := range facts {
		if f.reachable && f.cyclic {
			anyCycle = true
		}
	}

	rel := func(small, big string, v RelVerdict, why string) Relation {
		return Relation{Small: small, Big: big, Verdict: v, Why: why}
	}
	var out []Relation

	// tail < gc: useless return continuations.
	switch {
	case growthWitness:
		out = append(out, rel("tail", "gc", SameClass,
			"input-sized data or control stack grows identically on both"))
	case cleanTailLoop && !anyUnknown && len(parks.findings) == 0 && len(rets.findings) == 0:
		out = append(out, rel("tail", "gc", Separates,
			"input-driven tail recursion over constant-space state: Z_gc accumulates one return continuation per iteration, Z_tail none"))
	case !anyUnknown && !anyCycle:
		out = append(out, rel("tail", "gc", SameClass, "no input-driven recursion: both run in constant space"))
	default:
		out = append(out, rel("tail", "gc", NoClaim, "statically unresolved calls block a claim"))
	}

	// gc < stack: frames retained until return.
	switch {
	case len(stackWitnesses) > 0 && !anyUnknown:
		out = append(out, rel("gc", "stack", Separates,
			fmt.Sprintf("binding %s dies each iteration under garbage collection but lives in every retained frame", stackWitnesses[0].name)))
	case !anyUnknown:
		out = append(out, rel("gc", "stack", SameClass,
			"no dead input-sized binding distinguishes frame retention from collection"))
	default:
		out = append(out, rel("gc", "stack", NoClaim, "statically unresolved calls block a claim"))
	}

	// evlis < tail: environments parked across last-subexpression
	// evaluation.
	switch {
	case len(nonLastParks) > 0:
		out = append(out, rel("evlis", "tail", SameClass,
			"a parked environment is held by both policies (non-last position)"))
	case len(lastParks) > 0 && !parks.potentialEvlis:
		out = append(out, rel("evlis", "tail", Separates,
			fmt.Sprintf("environment holding %s is parked across last-operand recursion; Z_evlis clears it", lastParks[0].b.name)))
	case len(lastParks) == 0 && !parks.potentialTail && !parks.potentialEvlis:
		out = append(out, rel("evlis", "tail", SameClass, "no continuation parks a dead input-sized binding"))
	default:
		out = append(out, rel("evlis", "tail", NoClaim, "statically unresolved calls under a parked environment"))
	}

	// free < tail: whole-environment closures.
	switch {
	case len(parks.findings) > 0:
		out = append(out, rel("free", "tail", SameClass,
			"parked continuation environments are retained by both (closure policy is not involved)"))
	case len(rets.findings) > 0 && !parks.potentialTail && !parks.potentialEvlis:
		out = append(out, rel("free", "tail", Separates,
			fmt.Sprintf("closure %s captures dead binding %s across recursion; Z_free drops it", rets.findings[0].lam.Label, rets.findings[0].b.name)))
	case len(rets.findings) == 0 && !rets.potential && !parks.potentialTail && !parks.potentialEvlis:
		out = append(out, rel("free", "tail", SameClass, "no closure captures a dead input-sized binding"))
	default:
		out = append(out, rel("free", "tail", NoClaim, "statically unresolved calls block a claim"))
	}

	// sfs < evlis: closure capture plus non-last parks.
	switch {
	case len(rets.findings) > 0 || len(nonLastParks) > 0:
		out = append(out, rel("sfs", "evlis", Separates,
			"Z_evlis retains what safe-for-space restriction discards (whole-environment closures or non-last parks)"))
	case !rets.potential && !parks.potentialEvlis:
		out = append(out, rel("sfs", "evlis", SameClass, "no retention mechanism distinguishes the pair"))
	default:
		out = append(out, rel("sfs", "evlis", NoClaim, "statically unresolved calls block a claim"))
	}

	// sfs < free: parked continuation environments.
	switch {
	case len(parks.findings) > 0:
		out = append(out, rel("sfs", "free", Separates,
			"Z_free parks full environments in continuations; Z_sfs restricts them to live variables"))
	case !parks.potentialTail && !parks.potentialEvlis:
		out = append(out, rel("sfs", "free", SameClass, "no continuation parks a dead input-sized binding"))
	default:
		out = append(out, rel("sfs", "free", NoClaim, "statically unresolved calls block a claim"))
	}

	// spaceff < naive: chained vs joined pending codomain checks. The
	// verdict compares the monitors' certified classes, so growth both pay
	// for (parks, non-tail recursion, sized data) masks the gap into an
	// equality instead of a false separation.
	cls := map[string]SpaceClass{}
	for _, c := range certs {
		cls[c.Machine] = c.Class
	}
	monGap := cls["naive"].Rank() > cls["spaceff"].Rank()
	switch {
	case !ctrs.anyMon:
		out = append(out, rel("spaceff", "naive", SameClass,
			"no contracts: both monitor machines degenerate to Z_tail"))
	case anyUnknown || len(ctrs.unresolved()) > 0:
		out = append(out, rel("spaceff", "naive", NoClaim,
			"statically untracked contract or unresolved calls block a claim"))
	case monGap && len(ctrs.hoistedGuards()) > 0 && cls["naive"] != ClassUnbounded:
		h := ctrs.hoistedGuards()[0]
		out = append(out, rel("spaceff", "naive", Separates,
			fmt.Sprintf("loop-invariant contract %s guards an input-driven recursion: the naive monitor chains one pending codomain check per call, the space-efficient monitor joins duplicates into one frame", h.mon.Label)))
	case len(ctrs.perIteration()) > 0:
		out = append(out, rel("spaceff", "naive", SameClass,
			"a contract is rebuilt per recursion level: its fresh identity defeats the duplicate-dropping join, so both monitors chain checks"))
	default:
		out = append(out, rel("spaceff", "naive", SameClass,
			"no loop-invariant contract guards an input-driven recursion with headroom below the program's own growth"))
	}

	return out
}

// leaks assembles the structured diagnostics, ordered by node ID.
func (a *leakAnalysis) leaks(relations []Relation, parks *parkScan, rets *retentionScan, ctrs *contractScan) []Leak {
	var out []Leak
	byPair := map[string]Relation{}
	for _, r := range relations {
		byPair[r.Pair()] = r
	}

	// Relation-level mechanisms: emitted when the pair verdict is a
	// separation (the witnesses are properties of a whole cycle).
	if byPair["tail<gc"].Verdict == Separates {
		if site, host := a.cleanLoopSite(); site != nil {
			out = append(out, Leak{
				Kind: "return-cont", Pair: "tail<gc",
				NodeID: a.ids[site], Expr: exprString(site),
				Detail: fmt.Sprintf("self tail call in %s: improper machines stack a useless return continuation per iteration", host),
			})
		}
	}
	if byPair["gc<stack"].Verdict == Separates {
		for _, b := range a.stackWitnessBindings(parks, rets) {
			site := b.inits[0]
			out = append(out, Leak{
				Kind: "stack-frame", Pair: "gc<stack",
				NodeID: a.ids[site], Expr: exprString(site),
				Detail: fmt.Sprintf("binding %s holds a fresh input-sized allocation; Algol frame retention keeps one per recursion level", b.name),
			})
		}
	}
	for _, f := range parks.lastParks() {
		out = append(out, Leak{
			Kind: "evlis-env", Pair: "evlis<tail",
			NodeID: a.ids[f.site], Expr: exprString(f.site),
			Detail: fmt.Sprintf("environment holding dead binding %s is parked in the pending continuation while this call recurses", f.b.name),
		})
	}
	for _, f := range parks.nonLastParks() {
		out = append(out, Leak{
			Kind: "cont-env", Pair: "sfs<evlis",
			NodeID: a.ids[f.site], Expr: exprString(f.site),
			Detail: fmt.Sprintf("environment holding dead binding %s is parked in a non-last position; only safe-for-space restriction clears it", f.b.name),
		})
	}
	for _, f := range rets.findings {
		out = append(out, Leak{
			Kind: "retained-closure", Pair: "free<tail",
			NodeID: a.ids[f.lam], Expr: exprString(f.lam),
			Detail: fmt.Sprintf("closure %s captures dead binding %s and re-enters its activation; whole-environment capture retains one copy per level", f.lam.Label, f.b.name),
		})
	}
	if byPair["spaceff<naive"].Verdict == Separates {
		for _, f := range ctrs.hoistedGuards() {
			out = append(out, Leak{
				Kind: "contract-cod", Pair: "spaceff<naive",
				NodeID: a.ids[f.mon], Expr: exprString(f.mon),
				Detail: fmt.Sprintf("contract %s guards an input-driven recursion: the naive monitor chains one pending codomain check per call; the space-efficient join keeps one", f.mon.Label),
			})
		}
	}
	// A per-iteration contract grows even the space-efficient monitor, so
	// the pair it witnesses is erasure-vs-join, not join-vs-chain.
	for _, f := range ctrs.perIteration() {
		out = append(out, Leak{
			Kind: "contract-identity", Pair: "tail<spaceff",
			NodeID: a.ids[f.mon], Expr: exprString(f.mon),
			Detail: fmt.Sprintf("contract %s is rebuilt inside the recursion it guards: each level's monitor has a fresh identity, so even the space-efficient join cannot drop it — hoist the contract out of the loop", f.mon.Label),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// cleanLoopSite finds a representative tail-recursive call site inside a
// clean input-driven tail cycle (the tail<gc witness).
func (a *leakAnalysis) cleanLoopSite() (*ast.Call, string) {
	var best *ast.Call
	var host string
	for _, e := range a.g.edges {
		if !e.tail || a.g.comp[e.from] != a.g.comp[e.to] {
			continue
		}
		if best == nil || a.ids[e.site] < a.ids[best] {
			best = e.site
			host = e.from.label
		}
	}
	return best, host
}

// stackWitnessBindings recomputes the gc<stack witnesses in stable order.
func (a *leakAnalysis) stackWitnessBindings(parks *parkScan, rets *retentionScan) []*binding {
	parked := map[*binding]bool{}
	for _, f := range parks.findings {
		parked[f.b] = true
	}
	for _, f := range rets.findings {
		parked[f.b] = true
	}
	var out []*binding
	for _, f := range a.compSummary() {
		if !f.reachable || !f.cyclic || !f.inputDriven {
			continue
		}
		for _, b := range f.deadSized {
			if !parked[b] && len(b.inits) > 0 {
				out = append(out, b)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return a.ids[out[i].inits[0]] < a.ids[out[j].inits[0]] })
	return out
}

// exprString renders an expression for diagnostics, truncated to keep
// reports readable.
func exprString(e ast.Expr) string {
	s := e.String()
	if len(s) > 72 {
		s = s[:69] + "..."
	}
	return s
}
