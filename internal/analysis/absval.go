package analysis

// This file defines the abstract-value lattice of the 0-CFA (cfa.go,
// solve.go). An abstract value describes everything a program point can
// evaluate to that matters for call resolution:
//
//   - a set of lambda expressions (user procedures and expander wrappers
//     alike — the graph layer filters transparent wrappers out);
//   - a set of primitive-procedure names (prims are first-class: they can be
//     passed as arguments and called through variables, and two of them —
//     call/cc and apply — invoke user code);
//   - cont, the reified continuations produced by call/cc. Continuations
//     are not lambdas: applying one replaces the control state, so every
//     call site a continuation may reach degrades to ⊤;
//   - top (⊤), statically untracked flow: unbound variables, values
//     returned through apply, arguments arriving from unknown callers.
//
// The lattice is finite (the power set of the program's lambdas and prims
// plus two flags) and every transfer function only adds elements, so the
// worklist solver terminates. Soundness direction: the analysis may claim
// too many values flow somewhere, never too few — a wrong claim can only
// widen a verdict toward "unknown", not manufacture a precise one.

import (
	"sort"

	"tailspace/internal/ast"
)

// flowVar is one constraint variable: the abstract value of a binding or an
// expression, plus its outgoing subset edges.
type flowVar struct {
	label string // diagnostics only
	lams  map[*ast.Lambda]bool
	prims map[string]bool
	cont  bool
	top   bool
	// succs are subset constraints: everything here also flows to each succ.
	succs []*flowVar
	// opOf lists the call sites (real and virtual) whose operator this var
	// is; growth here re-triggers their application wiring.
	opOf []*callSite
	// inWork dedupes worklist membership.
	inWork bool
}

func (c *cfa) newVar(label string) *flowVar {
	v := &flowVar{label: label}
	c.vars = append(c.vars, v)
	return v
}

// enqueue schedules v for (re-)propagation.
func (c *cfa) enqueue(v *flowVar) {
	if !v.inWork {
		v.inWork = true
		c.work = append(c.work, v)
	}
}

// addLam adds one lambda to v, with the special semantics of the escape
// sink: a lambda that escapes to statically unknown code may be called with
// anything (params go ⊤) and its result flows back to unknown code too.
func (c *cfa) addLam(v *flowVar, lam *ast.Lambda) {
	if v.lams[lam] {
		return
	}
	if v.lams == nil {
		v.lams = map[*ast.Lambda]bool{}
	}
	v.lams[lam] = true
	if v == c.escape {
		c.escaped[lam] = true
		for _, p := range c.paramVar[lam] {
			c.setTop(p)
		}
		c.edge(c.exprVar[lam.Body], c.escape)
		return // the escape sink has no successors or call sites
	}
	c.enqueue(v)
}

func (c *cfa) addPrim(v *flowVar, name string) {
	if v.prims[name] {
		return
	}
	if v.prims == nil {
		v.prims = map[string]bool{}
	}
	v.prims[name] = true
	if v != c.escape {
		c.enqueue(v)
	}
}

func (c *cfa) setCont(v *flowVar) {
	if !v.cont {
		v.cont = true
		if v != c.escape {
			c.enqueue(v)
		}
	}
}

func (c *cfa) setTop(v *flowVar) {
	if !v.top {
		v.top = true
		if v != c.escape {
			c.enqueue(v)
		}
	}
}

// edge adds the subset constraint from ⊆ to and propagates the current
// contents immediately.
func (c *cfa) edge(from, to *flowVar) {
	if from == to {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
	c.flowInto(from, to)
}

// flowInto copies from's current contents into to.
func (c *cfa) flowInto(from, to *flowVar) {
	for lam := range from.lams {
		c.addLam(to, lam)
	}
	for name := range from.prims {
		c.addPrim(to, name)
	}
	if from.cont {
		c.setCont(to)
	}
	if from.top {
		c.setTop(to)
	}
}

// sortedLams returns v's lambdas in deterministic (generation) order.
func (c *cfa) sortedLams(v *flowVar) []*ast.Lambda {
	out := make([]*ast.Lambda, 0, len(v.lams))
	for lam := range v.lams {
		out = append(out, lam)
	}
	sort.Slice(out, func(i, j int) bool { return c.lamSeq[out[i]] < c.lamSeq[out[j]] })
	return out
}
