package analysis

// This file implements a static control-space analysis — a step toward the
// paper's third Section 16 future-work item ("a formal system for reasoning
// about the space complexity of programs"). Under the properly tail
// recursive machine Z_tail, continuations are created by subexpression
// evaluation only, so the control component of a program's space is bounded
// (input-independent) exactly when no non-tail call site can re-enter
// itself. The analysis:
//
//   - builds a call graph whose nodes are the program's lambdas (the
//     expander's immediately-applied let/cond/begin wrappers are transparent
//     and attribute to their host, as in the Figure 2 classifier);
//   - records for every call edge whether the site is a tail call
//     (Definitions 1-2) — tail calls never grow control, regardless of
//     where they go, which is why CPS code verifies as Bounded even though
//     its targets are unknown closures;
//   - condenses the known-edge graph into strongly connected components:
//     a non-tail edge inside an SCC is a provable stack-like growth (the
//     site re-enters itself); a non-tail call to a statically unknown
//     procedure leaves the verdict Unknown.
//
// The verdict is sound in both directions that matter: Bounded means the
// continuation depth provably does not depend on the input; Unbounded means
// a concrete non-tail recursion was found.

import (
	"fmt"
	"sort"
	"strings"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
	"tailspace/internal/prim"
)

// Verdict is the result of the control-space analysis.
type Verdict int

const (
	// BoundedControl: continuation depth is independent of the input.
	BoundedControl Verdict = iota
	// UnknownControl: a non-tail call to a statically unknown procedure
	// prevents a proof either way.
	UnknownControl
	// UnboundedControl: a non-tail call site inside a call-graph cycle was
	// found — the program builds control stack proportional to recursion
	// depth even on Z_tail.
	UnboundedControl
)

func (v Verdict) String() string {
	switch v {
	case BoundedControl:
		return "bounded"
	case UnknownControl:
		return "unknown"
	case UnboundedControl:
		return "unbounded"
	}
	return "?"
}

// ControlReport is the analysis output.
type ControlReport struct {
	Verdict Verdict
	// Findings explain the verdict: each is one offending call site.
	Findings []string
	// Procs and Edges size the call graph (diagnostics).
	Procs, Edges int
}

// ControlSpaceSource analyzes program text.
func ControlSpaceSource(src string) (ControlReport, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return ControlReport{}, err
	}
	return ControlSpace(e), nil
}

// ControlSpace analyzes an expanded Core Scheme program.
func ControlSpace(e ast.Expr) ControlReport {
	g := newCallGraph()
	// First pass: register every procedure so operator names resolve
	// regardless of definition order (letrec scoping is mutual).
	ast.Walk(e, func(x ast.Expr) bool {
		if lam, ok := x.(*ast.Lambda); ok && !transparentLabel(lam.Label) {
			g.nodeFor(lam)
		}
		return true
	})
	info := ast.MarkTails(e)
	g.walk(e, info, g.root, map[string]bool{})
	return g.report()
}

// node is a call-graph vertex: a lambda, or the program's top level.
type node struct {
	lam   *ast.Lambda // nil for the root
	label string
	id    int
}

type edge struct {
	from, to *node
	tail     bool
	site     *ast.Call
}

type callGraph struct {
	root  *node
	nodes map[*ast.Lambda]*node
	// byLabel resolves operator names to candidate callees; duplicates keep
	// every candidate (over-approximation).
	byLabel map[string][]*node
	edges   []edge
	// unknownNonTail records non-tail calls whose target cannot be resolved.
	unknownNonTail []string
	// unresolvedTails notes tail calls to unresolvable targets (harmless at
	// the site, but they hide potential cycle-closing edges).
	unresolvedTails bool
}

func newCallGraph() *callGraph {
	g := &callGraph{
		nodes:   map[*ast.Lambda]*node{},
		byLabel: map[string][]*node{},
	}
	g.root = &node{label: "(top level)", id: 0}
	return g
}

func (g *callGraph) nodeFor(lam *ast.Lambda) *node {
	if n, ok := g.nodes[lam]; ok {
		return n
	}
	n := &node{lam: lam, label: lam.Label, id: len(g.nodes) + 1}
	g.nodes[lam] = n
	g.byLabel[lam.Label] = append(g.byLabel[lam.Label], n)
	return n
}

// walk builds nodes and edges. host is the nearest non-transparent lambda
// (or the root); shadowed tracks names rebound since entering it.
func (g *callGraph) walk(e ast.Expr, info *ast.TailInfo, host *node, shadowed map[string]bool) {
	switch x := e.(type) {
	case *ast.Lambda:
		if transparentLabel(x.Label) {
			params := x.Params
			if strings.HasPrefix(x.Label, "%letrec:") {
				// The letrec wrapper's parameters are exactly the names the
				// bound lambdas are labelled with — they do not shadow.
				params = nil
			}
			g.walk(x.Body, info, host, copyShadow(shadowed, params))
			return
		}
		n := g.nodeFor(x)
		g.walk(x.Body, info, n, copyShadow(nil, x.Params))
	case *ast.If:
		g.walk(x.Test, info, host, shadowed)
		g.walk(x.Then, info, host, shadowed)
		g.walk(x.Else, info, host, shadowed)
	case *ast.Set:
		g.walk(x.Rhs, info, host, shadowed)
	case *ast.Call:
		g.recordCall(x, info, host, shadowed)
		for _, sub := range x.Exprs {
			g.walk(sub, info, host, shadowed)
		}
	}
}

func (g *callGraph) recordCall(call *ast.Call, info *ast.TailInfo, host *node, shadowed map[string]bool) {
	tail := info.IsTail(call)
	switch op := call.Operator().(type) {
	case *ast.Lambda:
		if transparentLabel(op.Label) || plumbingCall(call) {
			// A beta-redex of expander plumbing: the body runs within the
			// host's activation and cannot be re-entered (it has no name),
			// so it is not an edge.
			return
		}
		// An immediately applied user lambda: a known edge to its node.
		g.edges = append(g.edges, edge{from: host, to: g.nodeFor(op), tail: tail, site: call})
	case *ast.Var:
		if op.Name == "%undef" {
			return
		}
		if !shadowed[op.Name] {
			if _, isPrim := prim.Lookup(op.Name); isPrim && len(g.byLabel[op.Name]) == 0 {
				// Direct application of a standard procedure: it returns
				// immediately and performs no user calls; never an edge.
				return
			}
		}
		targets := g.byLabel[op.Name]
		if shadowed[op.Name] || len(targets) == 0 {
			if !tail {
				g.unknownNonTail = append(g.unknownNonTail,
					fmt.Sprintf("non-tail call to statically unknown procedure %s (in %s)", op.Name, host.label))
			} else {
				g.unresolvedTails = true
			}
			return
		}
		for _, target := range targets {
			g.edges = append(g.edges, edge{from: host, to: target, tail: tail, site: call})
		}
	default:
		if !tail {
			g.unknownNonTail = append(g.unknownNonTail,
				fmt.Sprintf("non-tail call with computed operator (in %s)", host.label))
		} else {
			g.unresolvedTails = true
		}
	}
}

// report condenses the graph and issues the verdict.
func (g *callGraph) report() ControlReport {
	rep := ControlReport{Procs: len(g.nodes) + 1, Edges: len(g.edges)}
	comp := g.sccs()

	for _, e := range g.edges {
		if !e.tail && comp[e.from] == comp[e.to] {
			rep.Findings = append(rep.Findings,
				fmt.Sprintf("non-tail recursive call: %s calls %s outside tail position", e.from.label, e.to.label))
		}
	}
	sort.Strings(rep.Findings)
	if len(rep.Findings) > 0 {
		rep.Verdict = UnboundedControl
		return rep
	}

	// No provable cycle growth. A non-tail call to an unknown target — or
	// any unknown target at all combined with remaining non-tail known
	// calls — blocks a boundedness proof, because the unknown edge could
	// close a cycle the graph cannot see.
	hasNonTailKnown := false
	for _, e := range g.edges {
		if !e.tail {
			hasNonTailKnown = true
		}
	}
	hasUnknown := len(g.unknownNonTail) > 0
	switch {
	case hasUnknown:
		rep.Verdict = UnknownControl
		rep.Findings = append(rep.Findings, g.unknownNonTail...)
	case hasNonTailKnown && g.hasAnyUnresolvedTailTargets():
		// Tail calls to unknown targets are harmless for control growth at
		// the site itself, but they hide edges that could make a known
		// non-tail site recursive.
		rep.Verdict = UnknownControl
		rep.Findings = append(rep.Findings,
			"non-tail calls coexist with tail calls to unknown procedures; a hidden cycle cannot be ruled out")
	default:
		rep.Verdict = BoundedControl
	}
	return rep
}

// hasAnyUnresolvedTailTargets reports whether the program contains tail
// calls whose targets the graph could not resolve (higher-order tail calls).
func (g *callGraph) hasAnyUnresolvedTailTargets() bool {
	return g.unresolvedTails
}

// sccs runs Tarjan's algorithm over the known-edge graph and returns the
// component index of every node.
func (g *callGraph) sccs() map[*node]int {
	adj := map[*node][]*node{}
	all := []*node{g.root}
	for _, n := range g.nodes {
		all = append(all, n)
	}
	for _, e := range g.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}

	index := map[*node]int{}
	low := map[*node]int{}
	onStack := map[*node]bool{}
	comp := map[*node]int{}
	var stack []*node
	counter := 0
	comps := 0

	var strongconnect func(v *node)
	strongconnect = func(v *node) {
		counter++
		index[v] = counter
		low[v] = counter
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			comps++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = comps
				if w == v {
					break
				}
			}
		}
	}
	for _, v := range all {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}
