package analysis

// This file implements a static control-space analysis — a step toward the
// paper's third Section 16 future-work item ("a formal system for reasoning
// about the space complexity of programs"). Under the properly tail
// recursive machine Z_tail, continuations are created by subexpression
// evaluation only, so the control component of a program's space is bounded
// (input-independent) exactly when no non-tail call site can re-enter
// itself. The analysis:
//
//   - builds a call graph whose nodes are the program's lambdas (the
//     expander's immediately-applied let/cond/begin wrappers are transparent
//     and attribute to their host, as in the Figure 2 classifier);
//   - records for every call edge whether the site is a tail call
//     (Definitions 1-2) — tail calls never grow control, regardless of
//     where they go, which is why CPS code verifies as Bounded even though
//     its targets are unknown closures;
//   - condenses the known-edge graph into strongly connected components:
//     a non-tail edge inside an SCC is a provable stack-like growth (the
//     site re-enters itself); a non-tail call to a statically unknown
//     procedure leaves the verdict Unknown.
//
// The verdict is sound in both directions that matter: Bounded means the
// continuation depth provably does not depend on the input; Unbounded means
// a concrete non-tail recursion was found.
//
// The call graph itself lives in graph.go and is shared with the retention
// and continuation-environment analyses (retention.go, evlis.go).

import (
	"fmt"
	"sort"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
)

// Verdict is the result of the control-space analysis.
type Verdict int

const (
	// BoundedControl: continuation depth is independent of the input.
	BoundedControl Verdict = iota
	// UnknownControl: a non-tail call to a statically unknown procedure
	// prevents a proof either way.
	UnknownControl
	// UnboundedControl: a non-tail call site inside a call-graph cycle was
	// found — the program builds control stack proportional to recursion
	// depth even on Z_tail.
	UnboundedControl
)

func (v Verdict) String() string {
	switch v {
	case BoundedControl:
		return "bounded"
	case UnknownControl:
		return "unknown"
	case UnboundedControl:
		return "unbounded"
	}
	return "?"
}

// ControlReport is the analysis output.
type ControlReport struct {
	Verdict Verdict
	// Findings explain the verdict: each is one offending call site.
	Findings []string
	// Procs and Edges size the call graph (diagnostics).
	Procs, Edges int
}

// ControlSpaceSource analyzes program text.
func ControlSpaceSource(src string) (ControlReport, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return ControlReport{}, err
	}
	return ControlSpace(e), nil
}

// ControlSpace analyzes an expanded Core Scheme program.
func ControlSpace(e ast.Expr) ControlReport {
	return controlReport(buildGraph(e))
}

// controlReport condenses the graph and issues the verdict.
func controlReport(g *callGraph) ControlReport {
	rep := ControlReport{Procs: len(g.nodes) + 1, Edges: len(g.edges)}

	for _, e := range g.edges {
		if !e.tail && g.comp[e.from] == g.comp[e.to] {
			rep.Findings = append(rep.Findings,
				fmt.Sprintf("non-tail recursive call: %s calls %s outside tail position", e.from.label, e.to.label))
		}
	}
	sort.Strings(rep.Findings)
	if len(rep.Findings) > 0 {
		rep.Verdict = UnboundedControl
		return rep
	}

	// No provable cycle growth. A non-tail call to an unknown target — or
	// any unknown target at all combined with remaining non-tail known
	// calls — blocks a boundedness proof, because the unknown edge could
	// close a cycle the graph cannot see.
	hasNonTailKnown := false
	for _, e := range g.edges {
		if !e.tail {
			hasNonTailKnown = true
		}
	}
	hasUnknown := len(g.unknownNonTail) > 0
	switch {
	case hasUnknown:
		rep.Verdict = UnknownControl
		rep.Findings = append(rep.Findings, g.unknownNonTail...)
	case hasNonTailKnown && g.hasAnyUnresolvedTailTargets():
		// Tail calls to unknown targets are harmless for control growth at
		// the site itself, but they hide edges that could make a known
		// non-tail site recursive.
		rep.Verdict = UnknownControl
		rep.Findings = append(rep.Findings,
			"non-tail calls coexist with tail calls to unknown procedures; a hidden cycle cannot be ruled out")
	default:
		rep.Verdict = BoundedControl
	}
	return rep
}
