package analysis

import (
	"strings"
	"testing"
)

func analyze(t *testing.T, src string) CallStats {
	t.Helper()
	s, err := AnalyzeSource("test", src)
	if err != nil {
		t.Fatalf("AnalyzeSource(%q): %v", src, err)
	}
	return s
}

func TestSelfTailCall(t *testing.T) {
	s := analyze(t, "(define (f n) (if (zero? n) 0 (f (- n 1)))) f")
	if s.SelfTail != 1 {
		t.Fatalf("self-tail = %d, want 1; %+v", s.SelfTail, s)
	}
	// (zero? n) and (- n 1) are non-tail.
	if s.NonTail != 2 {
		t.Fatalf("non-tail = %d, want 2; %+v", s.NonTail, s)
	}
}

func TestTailCallToOtherProcedure(t *testing.T) {
	s := analyze(t, `
(define (f n) (g n))
(define (g n) n)
f`)
	if s.TailOther != 1 {
		t.Fatalf("tail-other = %d; %+v", s.TailOther, s)
	}
	if s.SelfTail != 0 {
		t.Fatalf("self = %d; %+v", s.SelfTail, s)
	}
}

func TestNonTailCall(t *testing.T) {
	s := analyze(t, "(define (f n) (+ 1 (f (- n 1)))) f")
	// (f ...) is an operand of +: non-tail. (- n 1) non-tail. (+ ...) is tail.
	if s.SelfTail != 0 {
		t.Fatalf("self = %d; recursion in operand position is not a tail call", s.SelfTail)
	}
	if s.NonTail != 2 {
		t.Fatalf("non-tail = %d, want 2; %+v", s.NonTail, s)
	}
	if s.TailOther != 1 {
		t.Fatalf("tail-other = %d, want 1 (the + call); %+v", s.TailOther, s)
	}
}

func TestSelfCallThroughLet(t *testing.T) {
	// The let-expansion lambda is transparent: f calling f from inside a let
	// body is still a self-tail call.
	s := analyze(t, "(define (f n) (let ((x 1)) (f x))) f")
	if s.SelfTail != 1 {
		t.Fatalf("self = %d, want 1; %+v", s.SelfTail, s)
	}
	// The let application itself is a tail call to a known closure.
	if s.KnownTail != 1 {
		t.Fatalf("known = %d, want 1; %+v", s.KnownTail, s)
	}
}

func TestSelfCallShadowedByParameter(t *testing.T) {
	// Inner lambda rebinds f; the call is to the parameter, not the
	// enclosing procedure.
	s := analyze(t, "(define (f n) ((lambda (f) (f n)) car)) f")
	if s.SelfTail != 0 {
		t.Fatalf("shadowed call must not be self: %+v", s)
	}
}

func TestSelfCallShadowedByLetBinding(t *testing.T) {
	s := analyze(t, "(define (f n) (let ((f car)) (f n))) f")
	if s.SelfTail != 0 {
		t.Fatalf("let-shadowed call must not be self: %+v", s)
	}
}

func TestNestedProcedureResetsSelf(t *testing.T) {
	// g calling f tail-recursively is a tail call, not a self call of g.
	s := analyze(t, `
(define (f n)
  (define (g k) (f k))
  (g n))
f`)
	if s.SelfTail != 0 {
		t.Fatalf("f-from-g is not self: %+v", s)
	}
	if s.TailOther < 1 {
		t.Fatalf("expected tail calls: %+v", s)
	}
}

func TestIfArmsInheritTailness(t *testing.T) {
	s := analyze(t, `
(define (f n)
  (if (zero? n)
      (f 0)
      (if (even? n) (f 1) (f 2))))
f`)
	if s.SelfTail != 3 {
		t.Fatalf("self = %d, want 3; %+v", s.SelfTail, s)
	}
}

func TestNamedLetLoopIsSelf(t *testing.T) {
	s := analyze(t, "(define (f n) (let loop ((i n)) (if (zero? i) 0 (loop (- i 1))))) f")
	if s.SelfTail != 1 {
		t.Fatalf("named-let loop should self-call: %+v", s)
	}
}

func TestMutualRecursionNotSelf(t *testing.T) {
	s := analyze(t, `
(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
even2?`)
	if s.SelfTail != 0 {
		t.Fatalf("mutual recursion is not self: %+v", s)
	}
	if s.TailOther != 2 {
		t.Fatalf("tail-other = %d, want 2: %+v", s.TailOther, s)
	}
}

func TestCPSAllTail(t *testing.T) {
	s := analyze(t, `
(define (add-k a b k) (k (+ a b)))
add-k`)
	// (k ...) is tail; (+ a b) is its operand, non-tail.
	if s.TailOther != 1 || s.NonTail != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestCountsAndPercents(t *testing.T) {
	s := analyze(t, "(define (f n) (if (zero? n) 0 (f (- n 1)))) f")
	if s.Calls != s.NonTail+s.Tail() {
		t.Fatalf("counts must partition: %+v", s)
	}
	total := s.Percent(s.NonTail) + s.Percent(s.TailOther) + s.Percent(s.SelfColumn())
	if total < 99.9 || total > 100.1 {
		t.Fatalf("percents must sum to 100: %f", total)
	}
}

func TestAddAccumulates(t *testing.T) {
	a := CallStats{Calls: 5, NonTail: 2, TailOther: 1, SelfTail: 1, KnownTail: 1}
	b := CallStats{Calls: 3, NonTail: 1, TailOther: 1, SelfTail: 1}
	a.Add(b)
	if a.Calls != 8 || a.NonTail != 3 || a.SelfTail != 2 {
		t.Fatalf("%+v", a)
	}
}

func TestStringRendering(t *testing.T) {
	s := CallStats{Name: "prog", Calls: 4, NonTail: 2, TailOther: 1, SelfTail: 1}
	out := s.String()
	if !strings.Contains(out, "prog") || !strings.Contains(out, "4 calls") {
		t.Fatalf("got %q", out)
	}
}

func TestEmptyProgramPercent(t *testing.T) {
	s := CallStats{}
	if s.Percent(0) != 0 {
		t.Fatal("0/0 must be 0")
	}
}

func TestAnalyzeSourceError(t *testing.T) {
	if _, err := AnalyzeSource("bad", "(if)"); err == nil {
		t.Fatal("expected parse error")
	}
}
