package analysis

// This file classifies bindings by what the machines can be forced to
// retain through them. A binding is *unsafe* when the size of the value
// reachable from it can grow with the program's input; *fresh* when the
// value is allocated anew each time the binding is made (so a recursion
// making the binding per level allocates per level); and *sized* when the
// allocation's extent tracks an input-derived magnitude (make-vector of
// something computed from the input — the paper's separation programs all
// hinge on such a binding). The leak detectors claim a machine-pair
// separation only for bindings that are unsafe, fresh and sized: those are
// the ones whose retention or reclamation moves a program between growth
// classes.
//
// Two fixpoints run over the same binding set:
//
//   - safety: a parameter that (transitively) depends on its own class is
//     an accumulator threaded through a loop and is resolved pessimistically
//     (unsafe); a letrec-bound procedure's self-reference is the ordinary
//     recursion knot — the closure is built once per letrec entry — and is
//     resolved optimistically, then iterated to a fixpoint so that unsafety
//     flowing in through captured data still propagates;
//   - magnitude: which scalars derive from the program's input. Driver-call
//     operands seed it; scalar primitives propagate it; the fixpoint is
//     optimistic because a self-updating loop counter is input-derived only
//     if input flows in from some call site.

import "tailspace/internal/ast"

// bindClass is the safety lattice; join is pointwise or.
type bindClass struct {
	unsafe bool // reachable value size may grow with the input
	fresh  bool // value freshly allocated where the binding is made
	sized  bool // allocation extent tracks an input-derived magnitude
}

func (c bindClass) join(d bindClass) bindClass {
	return bindClass{
		unsafe: c.unsafe || d.unsafe,
		fresh:  c.fresh || d.fresh,
		sized:  c.sized || d.sized,
	}
}

// Primitive classification. Scalars produce O(1) values regardless of their
// arguments (fixed-precision numbers, booleans, characters); allocators
// produce fresh structure whose safety follows their arguments'; sized
// allocators produce fresh structure whose extent is their first argument's
// magnitude; accessors extract components, inheriting their argument's
// safety.
var (
	scalarPrims = map[string]bool{
		"%undef": true, "*": true, "+": true, "-": true, "abs": true,
		"char->integer": true, "integer->char": true,
		"eq?": true, "equal?": true, "eqv?": true,
		"even?": true, "odd?": true, "zero?": true,
		"positive?": true, "negative?": true, "not": true,
		"error": true, "expt": true, "gcd": true, "lcm": true,
		"length": true, "max": true, "min": true, "modulo": true,
		"quotient": true, "remainder": true, "random": true,
		"set-car!": true, "set-cdr!": true,
		"vector-set!": true, "vector-fill!": true,
		"string-length": true, "vector-length": true,
		"string-ref": true, "string->number": true,
	}
	allocPrims = map[string]bool{
		"append": true, "cons": true, "list": true,
		"list->string": true, "list->vector": true,
		"number->string": true, "reverse": true,
		"string->list": true, "string->symbol": true,
		"symbol->string": true, "string-append": true,
		"substring": true, "vector": true, "vector->list": true,
	}
	sizedAllocPrims = map[string]bool{
		"make-vector": true, "make-string": true,
	}
	accessorPrims = map[string]bool{
		"car": true, "cdr": true, "list-ref": true, "list-tail": true,
		"vector-ref": true,
		// Composed accessors (internal/prim/listops.go registers exactly
		// these): they retrieve from the store like car/cdr do, so omitting
		// one would hand its call sites an empty abstract value — a wrong
		// O(1) claim, not a degradation to ⊤.
		"caar": true, "cadr": true, "cdar": true, "cddr": true,
		"caddr": true, "cadddr": true,
	}
)

type classifier struct {
	s *scopes
}

// classifyAll computes every binding's class and magnitude, iterating until
// both fixpoints are stable. The lattices are finite and the per-round
// functions monotone (in-progress lookups return the previous round's
// value), so this terminates in a handful of rounds.
func classifyAll(s *scopes) {
	c := &classifier{s: s}
	for round := 0; round < len(s.all)+2; round++ {
		changed := false
		for _, b := range s.all {
			b.clsDone = false
			b.magDone = false
		}
		for _, b := range s.all {
			prevCls, prevMag := b.cls, b.inputMag
			c.bindingClass(b)
			c.bindingMag(b)
			if b.cls != prevCls || b.inputMag != prevMag {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// bindingClass folds the safety class over a binding's initializers.
func (c *classifier) bindingClass(b *binding) bindClass {
	if b.clsDone {
		return b.cls
	}
	if b.isProc() {
		// Optimistic recursion knot: return the previous round's value; the
		// outer fixpoint iterates until captured unsafety stabilizes.
		b.clsDone = true
	}
	// Assigned values are inits too (scopes.go), so mutation alone is not
	// unsafety: a set!-updated scalar counter stays safe, while an
	// accumulator's self-referential RHS resolves pessimistically below.
	cls := bindClass{}
	if b.initUnknown {
		cls.unsafe = true
	}
	// Pessimistic in-progress marker for non-procedure bindings: a cyclic
	// dependency through a parameter is a loop-carried accumulator.
	wasDone := b.clsDone
	if !wasDone {
		b.clsDone = true
		b.cls = bindClass{unsafe: true}
	}
	for _, init := range b.inits {
		cls = cls.join(c.exprClass(init))
	}
	b.cls = cls
	return cls
}

// isProc reports whether b is a letrec binding initialized to a procedure —
// the one kind of self-referential binding that is not an accumulator.
func (b *binding) isProc() bool {
	if b.kind != letrecBind || len(b.inits) != 1 {
		return false
	}
	lam, ok := b.inits[0].(*ast.Lambda)
	return ok && !transparentLabel(lam.Label)
}

// exprClass classifies the value of an expression.
func (c *classifier) exprClass(e ast.Expr) bindClass {
	switch x := e.(type) {
	case *ast.Const:
		return bindClass{}
	case *ast.Var:
		if b := c.s.varRef[x]; b != nil {
			return c.bindingClass(b)
		}
		return bindClass{} // primitive procedure or %undef: constant size
	case *ast.Lambda:
		// A closure cell is small, but the closure retains whatever its
		// free variables reach; under whole-environment capture it can
		// retain more, which the retention analysis handles separately.
		cls := bindClass{fresh: true}
		env := c.s.lamEnv[x]
		for name := range c.s.fv.Free(x) {
			if b := env[name]; b != nil && c.bindingClass(b).unsafe {
				cls.unsafe = true
			}
		}
		return cls
	case *ast.If:
		return c.exprClass(x.Then).join(c.exprClass(x.Else))
	case *ast.Set:
		return bindClass{} // unspecified value
	case *ast.Call:
		return c.callClass(x)
	case *ast.Mon:
		// The monitor's value is the monitored value, possibly inside an
		// O(1) guard wrapper that retains it.
		return c.exprClass(x.Expr)
	}
	return bindClass{unsafe: true}
}

func (c *classifier) callClass(x *ast.Call) bindClass {
	switch op := x.Operator().(type) {
	case *ast.Lambda:
		// Any immediately applied lambda evaluates to its body's value —
		// this sees through the expander's let/letrec/begin plumbing.
		return c.exprClass(op.Body)
	case *ast.Var:
		if c.s.varRef[op] != nil {
			// A user procedure call: its result is not tracked.
			return bindClass{unsafe: true}
		}
		return c.primClass(op.Name, x)
	default:
		return bindClass{unsafe: true}
	}
}

func (c *classifier) primClass(name string, call *ast.Call) bindClass {
	args := call.Operands()
	switch {
	case scalarPrims[name]:
		return bindClass{}
	case sizedAllocPrims[name]:
		cls := bindClass{fresh: true}
		if len(args) > 0 && c.inputMagExpr(args[0]) {
			cls.unsafe = true
			cls.sized = true
		}
		return cls
	case allocPrims[name]:
		// Structure built from a sized allocation still reaches it: a list of
		// input-sized vectors is itself sized (per level, for a binding made
		// per level). Without this, an accumulator of sized allocations would
		// be claimed O(n) when it is really O(n²) — sized must survive cons.
		cls := bindClass{fresh: true}
		for _, a := range args {
			ac := c.exprClass(a)
			cls.unsafe = cls.unsafe || ac.unsafe
			cls.sized = cls.sized || ac.sized
		}
		return cls
	case accessorPrims[name]:
		cls := bindClass{}
		for _, a := range args {
			ac := c.exprClass(a)
			cls.unsafe = cls.unsafe || ac.unsafe
			cls.sized = cls.sized || ac.sized
		}
		return cls
	case callccPrims[name]:
		// (call/cc f) evaluates to whatever f returns — joined with every
		// value any continuation in the program is applied to. When the flow
		// analysis proves no continuation is ever applied, a literal
		// receiver's body classifies the result exactly.
		if !c.s.g.flow.contApplied && len(args) == 1 {
			if lam, ok := args[0].(*ast.Lambda); ok && !transparentLabel(lam.Label) {
				return c.exprClass(lam.Body)
			}
		}
		return bindClass{unsafe: true}
	default:
		// apply, unregistered names: anything can come back.
		return bindClass{unsafe: true}
	}
}

// inputMagExpr reports whether an expression's numeric magnitude can derive
// from the program input.
func (c *classifier) inputMagExpr(e ast.Expr) bool {
	if c.s.driverArgs[e] {
		return true
	}
	switch x := e.(type) {
	case *ast.Const:
		return false
	case *ast.Var:
		if b := c.s.varRef[x]; b != nil {
			return c.bindingMag(b)
		}
		return false
	case *ast.If:
		return c.inputMagExpr(x.Then) || c.inputMagExpr(x.Else)
	case *ast.Call:
		if lam, ok := x.Operator().(*ast.Lambda); ok {
			return c.inputMagExpr(lam.Body)
		}
		if op, ok := x.Operator().(*ast.Var); ok && c.s.varRef[op] == nil && scalarPrims[op.Name] {
			for _, a := range x.Operands() {
				if c.inputMagExpr(a) {
					return true
				}
			}
			return false
		}
		return true // user call or unknown operator: could be anything
	case *ast.Mon:
		return c.inputMagExpr(x.Expr)
	}
	return true
}

func (c *classifier) bindingMag(b *binding) bool {
	if b.magDone {
		return b.inputMag
	}
	// Optimistic: in-progress lookups see the previous round's value. A
	// self-updating loop counter is input-derived only if input reaches one
	// of its initializers (set! right-hand sides included).
	b.magDone = true
	mag := b.initUnknown
	for _, init := range b.inits {
		if c.inputMagExpr(init) {
			mag = true
		}
	}
	b.inputMag = mag
	return mag
}
