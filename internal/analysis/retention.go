package analysis

// This file implements the closure-retention analysis — the Z_tail/Z_free
// gap (Theorem 25, fourth program). Machines without the free-variable rule
// close a lambda over its entire environment, so a closure created inside a
// recursive activation retains every binding of that activation, dead or
// not, once per recursion level. A closure that (a) is created in an
// activation whose component is cyclic, (b) runs code that can re-enter
// that activation while the closure is live, and (c) has a provably dead,
// fresh, input-sized binding in the activation's ribs, moves the program up
// a growth class on Z_tail, Z_gc, Z_stack and Z_evlis, while Z_free and
// Z_sfs stay put. The same analysis yields the per-lambda captured-rib
// versus free-variable report surfaced by tailscan -lint.

import (
	"sort"

	"tailspace/internal/ast"
)

// retentionFinding is one closure retaining one dead binding.
type retentionFinding struct {
	lam *ast.Lambda
	b   *binding
}

type retentionScan struct {
	findings []retentionFinding
	// potential: a closure with a dead sized binding in scope contains a
	// call with statically unknown target, so re-entry (and therefore
	// per-level retention) cannot be ruled out.
	potential bool
}

// findRetentions checks every user lambda.
func (a *leakAnalysis) findRetentions() *retentionScan {
	r := &retentionScan{}
	for _, lam := range a.userLambdas() {
		dead := a.deadCaptures(lam)
		if len(dead) == 0 {
			continue
		}
		// Does applying the closure re-enter the activation it captured?
		// Only immediate code counts: a nested deferred lambda captures the
		// environment through its own occurrence and is checked separately.
		reenters := map[*binding]bool{}
		unknown := false
		ast.WalkImmediate(lam.Body, func(e ast.Expr) bool {
			c, ok := e.(*ast.Call)
			if !ok {
				return true
			}
			if a.g.unknownTarget[c] {
				unknown = true
				return true
			}
			for _, t := range a.g.targets[c] {
				for _, b := range dead {
					if a.g.inCycle(b.host) && a.g.reaches(t, b.host) {
						reenters[b] = true
					}
				}
			}
			return true
		})
		for _, b := range dead {
			if reenters[b] {
				r.findings = append(r.findings, retentionFinding{lam: lam, b: b})
			} else if unknown {
				r.potential = true
			}
		}
	}
	return r
}

// deadCaptures returns the host-activation bindings in scope at the lambda
// that the whole-environment capture retains but the closure can never use.
func (a *leakAnalysis) deadCaptures(lam *ast.Lambda) []*binding {
	return a.deadSized(a.s.lamScope[lam])
}

// LambdaCapture reports, for one lambda, the environment domain a
// whole-environment machine captures versus the free variables a
// safe-for-space machine keeps.
type LambdaCapture struct {
	Label    string   `json:"label"`
	NodeID   int      `json:"nodeId"`
	Captured []string `json:"captured"`
	Free     []string `json:"free"`
	Dead     []string `json:"dead,omitempty"`
}

// captureReport builds the per-lambda capture table, ordered by node ID.
func (a *leakAnalysis) captureReport() []LambdaCapture {
	var out []LambdaCapture
	for _, lam := range a.userLambdas() {
		env := a.s.lamEnv[lam]
		captured := make([]string, 0, len(env))
		for name := range env {
			captured = append(captured, name)
		}
		sort.Strings(captured)
		free := a.s.fv.Free(lam)
		var freeBound, dead []string
		for _, name := range captured {
			if free.Contains(name) {
				freeBound = append(freeBound, name)
			} else {
				dead = append(dead, name)
			}
		}
		out = append(out, LambdaCapture{
			Label:    lam.Label,
			NodeID:   a.ids[lam],
			Captured: captured,
			Free:     freeBound,
			Dead:     dead,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}
