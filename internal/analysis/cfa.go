package analysis

// This file is the constraint generator of the 0-CFA that replaced the
// syntactic resolver (the old graph.go valueOf): one lexically scoped walk
// over the expanded program creates a flow variable per binding and per
// expression and records every call site, and solve.go then propagates
// lambda sets through the constraints until fixpoint. Context-insensitive:
// one abstract value per binding, joined over every call site — enough to
// see through letrec knots, conditionals, argument passing, and closures
// stored in and retrieved from the heap.
//
// The store is modelled by a single summary variable Σ: every lambda passed
// to an ordinary primitive may be stored (cons, vector-set!, ...), and every
// accessor primitive (car, vector-ref, ...) may retrieve any stored lambda.
// That is coarse but sound, and it is precise enough to resolve calls to
// thunks threaded through pairs (streams).
//
// Genuinely dynamic flow degrades to ⊤, never to a wrong claim:
//
//   - call/cc gives its receiver a cont value; every site a cont reaches is
//     marked unresolved (applying a continuation replaces the control
//     state, which no static call edge models) — but the call/cc site
//     itself gets a precise edge to its receiver, which call/cc tail-calls;
//   - apply re-dispatches with a dynamically spread argument list, so its
//     procedure argument escapes and the site is unresolved;
//   - unbound variables are ⊤;
//   - a call whose operator may be ⊤ marks the site unresolved and lets
//     every argument escape.

import (
	"tailspace/internal/ast"
	"tailspace/internal/prim"
)

// callSite is one application the solver wires: a real call expression, or
// the virtual (f <cont>) application a call/cc site induces on its receiver.
type callSite struct {
	// call is the source expression (for virtual sites, the call/cc call
	// that induced them — used for diagnostics and unresolved marking).
	call    *ast.Call
	opVar   *flowVar
	argVars []*flowVar
	resVar  *flowVar
	// applied / primsDone / topDone / contDone dedupe wiring work.
	applied   map[*ast.Lambda]bool
	primsDone map[string]bool
	topDone   bool
	contDone  bool
}

type cfa struct {
	vars []*flowVar
	work []*flowVar

	exprVar  map[ast.Expr]*flowVar
	paramVar map[*ast.Lambda][]*flowVar
	lamSeq   map[*ast.Lambda]int
	sites    map[*ast.Call]*callSite

	// store is Σ, the one-summary abstract heap; escape is the ⊤-context
	// sink (see addLam).
	store  *flowVar
	escape *flowVar

	// escaped marks lambdas that reached unknown code; their params are ⊤.
	escaped map[*ast.Lambda]bool
	// topAt marks call sites whose operator may be statically untracked,
	// with the reason recorded for diagnostics (first cause wins).
	topAt map[*ast.Call]string
	// ccArg gives, for each (call/cc f) site, the flow variable of f — the
	// receiver the graph layer records a precise tail edge to.
	ccArg map[*ast.Call]*flowVar
	// delivery joins every value any continuation is applied to; it flows
	// to every call/cc site's result (see contDelivery in solve.go).
	delivery *flowVar
	// contApplied records that some site may apply a reified continuation:
	// only then can a call/cc expression evaluate to anything besides its
	// receiver's return value.
	contApplied bool
}

// analyzeFlow builds and solves the flow constraints of an expanded program.
func analyzeFlow(root ast.Expr) *cfa {
	c := &cfa{
		exprVar:  map[ast.Expr]*flowVar{},
		paramVar: map[*ast.Lambda][]*flowVar{},
		lamSeq:   map[*ast.Lambda]int{},
		sites:    map[*ast.Call]*callSite{},
		escaped:  map[*ast.Lambda]bool{},
		topAt:    map[*ast.Call]string{},
		ccArg:    map[*ast.Call]*flowVar{},
	}
	c.store = c.newVar("Σ")
	c.escape = c.newVar("⊤-context")
	c.gen(root, map[string]*flowVar{})
	c.solve()
	return c
}

func copyFlowEnv(env map[string]*flowVar) map[string]*flowVar {
	out := make(map[string]*flowVar, len(env)+2)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// gen emits constraints for e under the lexical environment env and returns
// e's flow variable.
func (c *cfa) gen(e ast.Expr, env map[string]*flowVar) *flowVar {
	switch x := e.(type) {
	case *ast.Const:
		v := c.newVar("const")
		c.exprVar[x] = v
		return v
	case *ast.Var:
		if v, ok := env[x.Name]; ok {
			c.exprVar[x] = v
			return v
		}
		v := c.newVar("global:" + x.Name)
		if x.Name == "%undef" {
			// The expander's unspecified-value marker: no procedure.
		} else if _, ok := prim.Lookup(x.Name); ok {
			c.addPrim(v, x.Name)
		} else {
			// Unbound: the run would be stuck, but claim nothing.
			c.setTop(v)
		}
		c.exprVar[x] = v
		return v
	case *ast.Lambda:
		seq := len(c.lamSeq)
		c.lamSeq[x] = seq
		params := make([]*flowVar, len(x.Params))
		inner := copyFlowEnv(env)
		for i, p := range x.Params {
			pv := c.newVar("param:" + x.Label + ":" + p)
			params[i] = pv
			inner[p] = pv
		}
		c.paramVar[x] = params
		c.gen(x.Body, inner)
		v := c.newVar("lam:" + x.Label)
		c.addLam(v, x)
		c.exprVar[x] = v
		return v
	case *ast.If:
		c.gen(x.Test, env)
		v := c.newVar("if")
		c.edge(c.gen(x.Then, env), v)
		c.edge(c.gen(x.Else, env), v)
		c.exprVar[x] = v
		return v
	case *ast.Set:
		rhs := c.gen(x.Rhs, env)
		if bv, ok := env[x.Name]; ok {
			c.edge(rhs, bv)
		}
		v := c.newVar("set!") // unspecified value
		c.exprVar[x] = v
		return v
	case *ast.Call:
		opv := c.gen(x.Operator(), env)
		args := make([]*flowVar, len(x.Operands()))
		for i, a := range x.Operands() {
			args[i] = c.gen(a, env)
		}
		res := c.newVar("call")
		c.exprVar[x] = res
		site := &callSite{
			call: x, opVar: opv, argVars: args, resVar: res,
			applied:   map[*ast.Lambda]bool{},
			primsDone: map[string]bool{},
		}
		c.sites[x] = site
		opv.opOf = append(opv.opOf, site)
		c.wireSite(site)
		return res
	case *ast.Mon:
		// Monitoring is value-transparent for flow: a guarded procedure
		// applies the same underlying lambdas, so the monitor's value IS the
		// monitored expression's value. The contract value escapes — monitor
		// machines apply its flat predicates at runtime through calls no
		// static edge models, so any lambda inside a contract must be ⊤.
		c.edge(c.gen(x.Ctc, env), c.escape)
		v := c.gen(x.Expr, env)
		c.exprVar[x] = v
		return v
	}
	v := c.newVar("other")
	c.setTop(v)
	return v
}

// paramUnknown reports whether the i-th parameter of lam can receive values
// the analysis does not track (⊤ or a reified continuation).
func (c *cfa) paramUnknown(lam *ast.Lambda, i int) bool {
	ps := c.paramVar[lam]
	if i >= len(ps) {
		return true
	}
	return ps[i].top || ps[i].cont
}

// lambdaEscaped reports whether lam's value reached statically unknown code.
func (c *cfa) lambdaEscaped(lam *ast.Lambda) bool { return c.escaped[lam] }

// resolve returns the lambdas that may be applied at a call site, and
// whether untracked operators are also possible (with the reason). For a
// call/cc site the targets are the receiver's lambdas: call/cc tail-calls
// its argument.
func (c *cfa) resolve(call *ast.Call) (targets []*ast.Lambda, unknown bool, reason string) {
	reason, unknown = c.topAt[call], false
	if reason != "" {
		unknown = true
	}
	opv := c.sites[call].opVar
	if av, ok := c.ccArg[call]; ok {
		opv = av
	}
	if opv == nil {
		return nil, unknown, reason
	}
	return c.sortedLams(opv), unknown, reason
}
