package analysis

import (
	"strings"
	"testing"
)

func verdictOf(t *testing.T, src string) ControlReport {
	t.Helper()
	rep, err := ControlSpaceSource(src)
	if err != nil {
		t.Fatalf("ControlSpaceSource(%q): %v", src, err)
	}
	return rep
}

func TestBoundedIterativeLoop(t *testing.T) {
	rep := verdictOf(t, "(define (f n) (if (zero? n) 0 (f (- n 1)))) (f 10)")
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestBoundedMutualTailRecursion(t *testing.T) {
	rep := verdictOf(t, `
(define (even2? n) (if (zero? n) #t (odd2? (- n 1))))
(define (odd2? n) (if (zero? n) #f (even2? (- n 1))))
(even2? 10)`)
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestUnboundedNonTailRecursion(t *testing.T) {
	rep := verdictOf(t, "(define (sum n) (if (zero? n) 0 (+ n (sum (- n 1))))) (sum 10)")
	if rep.Verdict != UnboundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
	if len(rep.Findings) == 0 || !strings.Contains(rep.Findings[0], "sum") {
		t.Fatalf("findings should name the procedure: %v", rep.Findings)
	}
}

func TestUnboundedDoubleRecursion(t *testing.T) {
	rep := verdictOf(t, "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 5)")
	if rep.Verdict != UnboundedControl {
		t.Fatalf("verdict %v", rep.Verdict)
	}
}

func TestUnboundedMutualNonTail(t *testing.T) {
	// The cycle spans two procedures; the non-tail edge is g -> f.
	rep := verdictOf(t, `
(define (f n) (g (- n 1)))
(define (g n) (if (zero? n) 0 (+ 1 (f n))))
(f 5)`)
	if rep.Verdict != UnboundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestBoundedNonTailAcrossDAG(t *testing.T) {
	// helper is called non-tail but never calls back: constant depth.
	rep := verdictOf(t, `
(define (helper x) (* x x))
(define (f n) (if (zero? n) 0 (f (- n (helper 1)))))
(f 10)`)
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestCPSProvablyBounded(t *testing.T) {
	// Every call is a tail call (the continuation targets are unknown, but
	// tail calls never grow control): CPS verifies as bounded.
	rep := verdictOf(t, `
(define (fact-k n k)
  (if (zero? n)
      (k 1)
      (fact-k (- n 1) (lambda (r) (k (* n r))))))
(fact-k 10 (lambda (x) x))`)
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestHigherOrderPrimArgumentBounded(t *testing.T) {
	// (p x) is a non-tail call to a parameter, but the flow analysis tracks
	// zero? into p: the only callee is a primitive, which never grows
	// control. (The syntactic resolver of PR 3 parked this at unknown.)
	rep := verdictOf(t, "(define (check p x) (if (p x) 'yes 'no)) (check zero? 0)")
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestTrulyUnknownOperandStaysUnknown(t *testing.T) {
	// The procedure argument escapes through apply, so the non-tail (p x)
	// may invoke statically untracked code: the verdict must stay unknown.
	rep := verdictOf(t, `
(define (check p x) (if (p x) 'yes 'no))
(check (apply car (list (list zero?))) 0)`)
	if rep.Verdict != UnknownControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestUnboundedThroughAnonymousThunk(t *testing.T) {
	// The paper's closure-capture program: the thunk's body re-enters f
	// outside tail position.
	rep := verdictOf(t, `
(define (f n)
  (if (zero? n)
      0
      ((lambda () (begin (f (- n 1)) n)))))
(f 5)`)
	if rep.Verdict != UnboundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestNamedLetLoopBounded(t *testing.T) {
	rep := verdictOf(t, "(let loop ((i 10)) (if (zero? i) 'done (loop (- i 1))))")
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestDoLoopBounded(t *testing.T) {
	rep := verdictOf(t, "(do ((i 0 (+ i 1)) (a 0 (+ a i))) ((= i 10) a))")
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestArgumentFlowResolvesShadowedName(t *testing.T) {
	// The call goes to the parameter g, not a global — and the flow
	// analysis sees the identity lambda arrive through the call site: the
	// non-tail (g 1) has exactly one callee, which never calls back.
	rep := verdictOf(t, "(define (f g) (+ 1 (g 1))) (f (lambda (x) x))")
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestTailCallsThroughLetRemainBounded(t *testing.T) {
	rep := verdictOf(t, `
(define (f n)
  (let ((m (- n 1)))
    (if (zero? n) 0 (f m))))
(f 10)`)
	if rep.Verdict != BoundedControl {
		t.Fatalf("verdict %v: %v", rep.Verdict, rep.Findings)
	}
}

func TestGraphSizesReported(t *testing.T) {
	rep := verdictOf(t, "(define (f n) (f n)) (f 1)")
	if rep.Procs < 2 || rep.Edges < 1 {
		t.Fatalf("graph too small: %+v", rep)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		BoundedControl:   "bounded",
		UnknownControl:   "unknown",
		UnboundedControl: "unbounded",
	} {
		if v.String() != want {
			t.Fatalf("%d = %q", v, v.String())
		}
	}
}
