package analysis

// This file synthesizes per-(program, machine) space-class certificates
// from the leak analyses: for the six machines of the hierarchy plus the
// two contract monitors, an asymptotic bound on S_X(program, n) as the
// driver argument scales, with the evidence that forced each bound. The
// certificate lattice is deliberately coarse —
//
//	O(1)  ⊑  O(n)  ⊑  unbounded
//
// — because those are the claims the paper's hierarchy actually
// distinguishes: constant-space (proper tail recursion over constant-space
// state), linear (one frame or one input-sized object per level), and
// everything the machine's retention policy can compound beyond that
// (quadratic parks, closures, nested recursions). Certificates only ever
// *weaken*: every rule raises a machine's class, none lowers it, and any
// statically unresolved call collapses every machine to unbounded. The
// differential grid (internal/experiments) checks the resulting soundness
// contract dynamically: a certificate must upper-bound the fitted growth
// class of the meters on every machine.
//
// One documented assumption keeps the middle class useful: a live unsafe
// binding that is not input-*sized* is priced at O(1) allocation per
// recursion level (so n levels cost O(n)). Per-level allocations that are
// themselves input-sized, and nested input-driven recursions (whose
// per-level cost is another whole recursion), both escalate to unbounded.

import (
	"fmt"
	"sort"
)

// SpaceClass is one certificate bound.
type SpaceClass string

const (
	ClassConstant  SpaceClass = "O(1)"
	ClassLinear    SpaceClass = "O(n)"
	ClassUnbounded SpaceClass = "unbounded"
)

// Rank orders the certificate lattice; the gap between O(n) and unbounded
// mirrors the grid's class ranks (unbounded upper-bounds every fitted
// class, including quadratic).
func (c SpaceClass) Rank() int {
	switch c {
	case ClassConstant:
		return 0
	case ClassLinear:
		return 1
	default:
		return 3
	}
}

// CertMachines lists the machines certificates are issued for, in report
// order: the six machines of the Theorem 24 hierarchy followed by the two
// contract monitors. The monitor machines behave exactly like Z_tail on
// contract-free programs, so every tail rule below also names them; the
// contract rules at the end are theirs alone.
var CertMachines = []string{"stack", "gc", "tail", "evlis", "free", "sfs", "naive", "spaceff"}

// Certificate is one machine's certified bound with its evidence trail.
type Certificate struct {
	Machine  string     `json:"machine"`
	Class    SpaceClass `json:"class"`
	Evidence []string   `json:"evidence,omitempty"`
}

// UnresolvedSite is one call site the flow analysis could not resolve — the
// reason a verdict or certificate degraded.
type UnresolvedSite struct {
	NodeID int    `json:"nodeId"`
	Expr   string `json:"expr"`
	Host   string `json:"host"`
	Tail   bool   `json:"tail"`
	Reason string `json:"reason"`
}

// unresolvedSites converts the graph's unresolved-call records, ordered by
// node ID.
func (a *leakAnalysis) unresolvedSites() []UnresolvedSite {
	var out []UnresolvedSite
	for _, u := range a.g.unresolved {
		out = append(out, UnresolvedSite{
			NodeID: a.ids[u.call], Expr: exprString(u.call),
			Host: u.host, Tail: u.tail, Reason: u.reason,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// certify derives the per-machine certificates from the shared analysis
// state.
func (a *leakAnalysis) certify(control ControlReport, parks *parkScan, rets *retentionScan, ctrs *contractScan) []Certificate {
	cls := make(map[string]SpaceClass, len(CertMachines))
	ev := make(map[string][]string, len(CertMachines))
	for _, m := range CertMachines {
		cls[m] = ClassConstant
	}
	bump := func(why string, c SpaceClass, machines ...string) {
		for _, m := range machines {
			if c.Rank() > cls[m].Rank() {
				cls[m] = c
			}
			if c.Rank() < cls[m].Rank() {
				continue // a weaker reason does not explain the bound
			}
			dup := false
			for _, w := range ev[m] {
				if w == why {
					dup = true
					break
				}
			}
			if !dup {
				ev[m] = append(ev[m], why)
			}
		}
	}
	collect := func() []Certificate {
		out := make([]Certificate, 0, len(CertMachines))
		for _, m := range CertMachines {
			out = append(out, Certificate{Machine: m, Class: cls[m], Evidence: ev[m]})
		}
		return out
	}

	// Any statically unresolved call could hide arbitrary re-entry: no bound
	// can be certified for any machine.
	if a.g.hasUnknownCalls() || control.Verdict == UnknownControl {
		why := "statically unresolved calls: no bound can be certified"
		if len(a.g.unresolved) > 0 {
			why = fmt.Sprintf("statically unresolved call (%s): no bound can be certified", a.g.unresolved[0].reason)
		}
		bump(why, ClassUnbounded, CertMachines...)
		return collect()
	}

	facts := a.compSummary()
	ids := make([]int, 0, len(facts))
	for cid := range facts {
		ids = append(ids, cid)
	}
	sort.Ints(ids)
	driven := func(f *compFacts) bool { return f != nil && f.cyclic && f.reachable && f.inputDriven }

	// Nested input-driven recursions: each level of the outer runs a whole
	// input-driven recursion of its own, so per-level cost is no longer O(1)
	// or one sized object — the compounding escapes the lattice's middle.
	for _, c1 := range ids {
		if !driven(facts[c1]) {
			continue
		}
		for _, c2 := range ids {
			if c2 != c1 && driven(facts[c2]) && a.g.reach[c1][c2] {
				bump("nested input-driven recursions: per-level cost is itself input-driven", ClassUnbounded, CertMachines...)
			}
		}
	}

	// Control growth per input-driven cycle: a non-tail cycle stacks a frame
	// per level on every machine; an all-tail cycle costs only the improper
	// machines their useless return continuations (Theorem 25, countdown).
	for _, cid := range ids {
		f := facts[cid]
		if !driven(f) {
			continue
		}
		if f.allTail {
			bump("input-driven tail recursion: improper machines stack one return continuation per iteration",
				ClassLinear, "gc", "stack")
		} else {
			bump("input-driven non-tail recursion: one pending frame per level on every machine",
				ClassLinear, CertMachines...)
		}
	}

	// Any reachable input-sized allocation floors every machine at O(n):
	// even one such object, made once, scales with the input.
	for _, b := range a.s.all {
		if b.cls.sized && a.g.reach[a.g.comp[a.g.root]][a.g.comp[b.host]] {
			bump(fmt.Sprintf("input-sized allocation bound to %s", b.name), ClassLinear, CertMachines...)
		}
	}

	// Live bindings in input-driven cycles: the program itself keeps them,
	// so no machine's policy helps. A per-level *sized* allocation compounds
	// (n levels × Θ(n) each); anything else is priced at the documented
	// O(1)-per-level assumption.
	for _, b := range a.s.all {
		f := facts[a.g.comp[b.host]]
		if !driven(f) || !b.cls.unsafe {
			continue
		}
		if b.uses == 0 && b.setCount == 0 {
			continue
		}
		if b.cls.sized && b.cls.fresh {
			bump(fmt.Sprintf("live input-sized allocation %s made per recursion level", b.name),
				ClassUnbounded, CertMachines...)
		} else {
			bump(fmt.Sprintf("live binding %s accumulates with the input (O(1) allocation per level assumed)", b.name),
				ClassLinear, CertMachines...)
		}
	}

	// Parked continuation environments (Theorem 25, thunk-return): the park
	// repeats per recursion level and holds an input-sized dead binding, so
	// every policy that stores ρ in the pending continuation compounds.
	// Z_evlis escapes only last-position parks; Z_sfs always escapes.
	for _, fd := range parks.findings {
		if !driven(facts[a.g.comp[fd.b.host]]) {
			continue
		}
		why := fmt.Sprintf("environment holding dead input-sized binding %s is parked once per recursion level", fd.b.name)
		bump(why, ClassUnbounded, "tail", "gc", "stack", "free", "naive", "spaceff")
		if fd.evlisHeld {
			bump(why, ClassUnbounded, "evlis")
		}
	}

	// Whole-environment closures (Theorem 25, closure-capture): one closure
	// per level retains the dead sized binding on every machine without the
	// free-variable rule.
	for _, fd := range rets.findings {
		if !driven(facts[a.g.comp[fd.b.host]]) {
			continue
		}
		bump(fmt.Sprintf("closure %s captures dead input-sized binding %s once per recursion level", fd.lam.Label, fd.b.name),
			ClassUnbounded, "tail", "gc", "stack", "evlis", "naive", "spaceff")
	}

	// Algol frame retention (Theorem 25, vector-frames): a dead sized
	// binding nobody parks or captures still lives in every retained frame.
	parkedOrCaptured := map[*binding]bool{}
	for _, fd := range parks.findings {
		parkedOrCaptured[fd.b] = true
	}
	for _, fd := range rets.findings {
		parkedOrCaptured[fd.b] = true
	}
	for _, cid := range ids {
		f := facts[cid]
		if !driven(f) {
			continue
		}
		for _, b := range f.deadSized {
			if !parkedOrCaptured[b] {
				bump(fmt.Sprintf("dead input-sized binding %s lives in every retained Algol frame", b.name),
					ClassUnbounded, "stack")
			}
		}
	}

	// Contract monitoring: every call through a guarded procedure leaves a
	// pending codomain check behind. Z_naive chains them (one per level of a
	// guarded recursion); Z_spaceff joins adjacent checks, dropping
	// duplicates by contract identity — which only helps while the contract
	// is the *same* contract, so a monitor rebuilt per recursion level
	// chains on both. A contract whose checks run untracked code admits no
	// bound at all. The erasing machines never see any of this.
	for _, f := range ctrs.findings {
		if f.unresolvable != "" {
			bump(fmt.Sprintf("%s: monitor space cannot be bounded", f.unresolvable),
				ClassUnbounded, "naive", "spaceff")
			continue
		}
		if len(f.guardedDriven) > 0 {
			bump(fmt.Sprintf("contract %s guards an input-driven recursion: the naive monitor chains one pending codomain check per call", f.mon.Label),
				ClassLinear, "naive")
		}
		if f.perIteration {
			bump(fmt.Sprintf("contract %s is rebuilt per recursion level: its fresh identity defeats the duplicate-dropping join", f.mon.Label),
				ClassLinear, "naive", "spaceff")
		}
	}

	return collect()
}
