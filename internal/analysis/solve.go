package analysis

// This file is the worklist solver of the 0-CFA (cfa.go). Constraints are
// monotone over a finite lattice (absval.go), so the loop terminates; the
// result does not depend on processing order (the transfer functions are
// join-preserving), and the graph layer sorts every extracted set, so the
// whole analysis is deterministic.

import "tailspace/internal/ast"

// Flow behavior of primitive procedures. Control prims invoke user code;
// everything else may store its arguments (Σ) and accessors may retrieve
// them. The accessor set is accessorPrims in bindclass.go — the same table
// the size classifier uses.
var callccPrims = map[string]bool{
	"call/cc": true, "call-with-current-continuation": true,
}

func (c *cfa) solve() {
	for len(c.work) > 0 {
		v := c.work[len(c.work)-1]
		c.work = c.work[:len(c.work)-1]
		v.inWork = false
		for _, s := range v.succs {
			c.flowInto(v, s)
		}
		for _, site := range v.opOf {
			c.wireSite(site)
		}
	}
}

// wireSite applies every value currently in the site's operator variable
// that has not been wired yet.
func (c *cfa) wireSite(site *callSite) {
	op := site.opVar
	for _, lam := range c.sortedLams(op) {
		if !site.applied[lam] {
			site.applied[lam] = true
			c.wireLambda(site, lam)
		}
	}
	for name := range op.prims {
		if !site.primsDone[name] {
			site.primsDone[name] = true
			c.wirePrim(site, name)
		}
	}
	if op.cont && !site.contDone {
		site.contDone = true
		c.wireCont(site)
	}
	if op.top && !site.topDone {
		site.topDone = true
		c.markUnknown(site, "operator may be any value (statically untracked flow)")
		for _, a := range site.argVars {
			c.edge(a, c.escape)
		}
		c.setTop(site.resVar)
	}
}

// wireLambda connects one applied lambda: arguments flow to parameters and
// the body's value flows to the call's value. An arity mismatch would make
// the machine stuck, so no value flows — but the parameters are poisoned
// (⊤) so no precise claim survives about a procedure the program misuses.
func (c *cfa) wireLambda(site *callSite, lam *ast.Lambda) {
	params := c.paramVar[lam]
	if len(site.argVars) != len(params) {
		for _, p := range params {
			c.setTop(p)
		}
		return
	}
	for i, a := range site.argVars {
		c.edge(a, params[i])
	}
	c.edge(c.exprVar[lam.Body], site.resVar)
}

// wirePrim connects one primitive operator.
func (c *cfa) wirePrim(site *callSite, name string) {
	switch {
	case callccPrims[name]:
		c.wireCallCC(site)
	case name == "apply":
		// apply re-dispatches its first argument with a dynamically spread
		// argument list: the procedure escapes (it may be called with
		// anything) and anything may come back.
		c.markUnknown(site, "apply re-dispatches its procedure argument with dynamic arguments")
		for _, a := range site.argVars {
			c.edge(a, c.escape)
		}
		c.setTop(site.resVar)
	default:
		// An ordinary primitive: it may store any procedure argument (Σ),
		// and accessors may retrieve any stored procedure. No user code
		// runs, so the site is not a call edge.
		for _, a := range site.argVars {
			c.edge(a, c.store)
		}
		if accessorPrims[name] {
			c.edge(c.store, site.resVar)
		}
	}
}

// wireCallCC models (call/cc f): f is tail-called with the reified current
// continuation as its one argument, and the site's value is whatever f
// returns — or whatever any continuation is later applied to (contDelivery,
// see wireCont).
func (c *cfa) wireCallCC(site *callSite) {
	if len(site.argVars) != 1 {
		c.markUnknown(site, "call/cc applied with wrong arity")
		c.setTop(site.resVar)
		return
	}
	recv := site.argVars[0]
	if c.ccArg[site.call] == nil {
		c.ccArg[site.call] = recv
	}
	contv := c.newVar("cont")
	c.setCont(contv)
	c.edge(c.contDelivery(), site.resVar)
	// Virtual application (f <cont>), sharing the call/cc site's result.
	vsite := &callSite{
		call: site.call, opVar: recv,
		argVars:   []*flowVar{contv},
		resVar:    site.resVar,
		applied:   map[*ast.Lambda]bool{},
		primsDone: map[string]bool{},
	}
	recv.opOf = append(recv.opOf, vsite)
	c.wireSite(vsite)
}

// wireCont handles a site whose operator may be a reified continuation:
// applying one replaces the control state — flow no static call edge
// models — so the site is unresolved, and the argument is delivered to
// every call/cc site's value.
func (c *cfa) wireCont(site *callSite) {
	c.contApplied = true
	c.markUnknown(site, "operator may be a reified continuation (call/cc): applying it replaces the control state")
	if len(site.argVars) == 1 {
		c.edge(site.argVars[0], c.contDelivery())
	} else {
		for _, a := range site.argVars {
			c.edge(a, c.escape)
		}
	}
}

// contDelivery is the join of every value any continuation is applied to;
// it flows to every call/cc site's result.
func (c *cfa) contDelivery() *flowVar {
	if c.delivery == nil {
		c.delivery = c.newVar("cont-delivery")
	}
	return c.delivery
}

// markUnknown records that a call site may invoke statically untracked
// code; the first reason recorded wins (it names the root cause).
func (c *cfa) markUnknown(site *callSite, reason string) {
	if site.call == nil {
		return
	}
	if _, done := c.topAt[site.call]; !done {
		c.topAt[site.call] = reason
	}
}
