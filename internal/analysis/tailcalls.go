// Package analysis implements the static call-site classifier behind the
// paper's Figure 2: every procedure call in a program is a non-tail call, a
// tail call, or a self-tail call (the special case in which a procedure
// calls itself tail recursively). Definitions 1 and 2 of the paper define
// tail positions; self-tail calls are tail calls whose operator is the
// (unshadowed) variable naming the enclosing lambda.
//
// Following the Figure 2 caption — "the self-tail calls shown for Scheme
// include all tail calls to known closures, because Twobit has no reason to
// recognize self-tail calls as a special case" — tail calls whose operator
// is a literal lambda expression are tracked separately as KnownTail and
// folded into the self column of the Figure 2 report.
package analysis

import (
	"fmt"
	"strings"

	"tailspace/internal/ast"
	"tailspace/internal/expand"
)

// CallStats counts the call sites of one program.
type CallStats struct {
	// Name identifies the program (for report rows).
	Name string
	// Calls is the total number of call sites.
	Calls int
	// NonTail counts calls in non-tail position.
	NonTail int
	// TailOther counts tail calls to operators that are neither the
	// enclosing procedure nor a literal lambda.
	TailOther int
	// SelfTail counts tail calls whose operator names the enclosing lambda.
	SelfTail int
	// KnownTail counts tail calls whose operator is a literal lambda
	// expression (the expansions of let and begin produce these).
	KnownTail int
}

// Tail returns all tail calls.
func (s CallStats) Tail() int { return s.TailOther + s.SelfTail + s.KnownTail }

// SelfColumn is the Figure 2 self-tail column: self-tail calls plus tail
// calls to known closures.
func (s CallStats) SelfColumn() int { return s.SelfTail + s.KnownTail }

// Percent renders n as a percentage of total calls.
func (s CallStats) Percent(n int) float64 {
	if s.Calls == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Calls)
}

// Add accumulates other into s.
func (s *CallStats) Add(other CallStats) {
	s.Calls += other.Calls
	s.NonTail += other.NonTail
	s.TailOther += other.TailOther
	s.SelfTail += other.SelfTail
	s.KnownTail += other.KnownTail
}

func (s CallStats) String() string {
	return fmt.Sprintf("%s: %d calls (%.1f%% non-tail, %.1f%% tail, %.1f%% self)",
		s.Name, s.Calls, s.Percent(s.NonTail), s.Percent(s.Tail()), s.Percent(s.SelfColumn()))
}

// Analyze classifies every call site in a Core Scheme expression.
func Analyze(e ast.Expr) CallStats {
	var stats CallStats
	info := ast.MarkTails(e)
	classify(e, info, "", map[string]bool{}, &stats)
	return stats
}

// AnalyzeSource parses, expands, and classifies program source. Derived
// forms contribute the calls their expansions contain (a `let` is a lambda
// application), matching how a compiler like Twobit sees the program after
// macro expansion.
func AnalyzeSource(name, src string) (CallStats, error) {
	e, err := expand.ParseProgram(src)
	if err != nil {
		return CallStats{}, err
	}
	stats := Analyze(e)
	stats.Name = name
	return stats, nil
}

// transparentLabel reports whether a lambda was manufactured by the expander
// for an immediately-applied form (let, letrec, begin, cond, case, or).
// Such lambdas are transparent for self-call detection: a call to f inside
// (let (...) ...) inside f's body is still a self call of f, because the let
// body runs within f's activation. A user-written anonymous lambda
// ("%lambda:N") is NOT transparent — it is a real procedure boundary.
func transparentLabel(label string) bool {
	for _, p := range []string{"%let:", "%letrec:", "%begin:", "%cond:", "%case:", "%or:"} {
		if strings.HasPrefix(label, p) {
			return true
		}
	}
	return false
}

// plumbingCall reports whether a call exists only as expansion machinery —
// the letrec wrapper application, (%undef) initializers, and begin-chain
// applications — and should not be counted as a call site of the source
// program. Its subexpressions are still classified.
func plumbingCall(c *ast.Call) bool {
	if v, ok := c.Operator().(*ast.Var); ok && v.Name == "%undef" {
		return true
	}
	if lam, ok := c.Operator().(*ast.Lambda); ok {
		return strings.HasPrefix(lam.Label, "%letrec:") || strings.HasPrefix(lam.Label, "%begin:")
	}
	return false
}

// classify walks the tree carrying the label of the enclosing user-visible
// lambda and the set of names shadowed since entering it (a shadowed name
// can no longer refer to the enclosing procedure, so a call through it is
// not a self call).
func classify(e ast.Expr, info *ast.TailInfo, enclosing string, shadowed map[string]bool, stats *CallStats) {
	switch x := e.(type) {
	case *ast.Lambda:
		if transparentLabel(x.Label) {
			inner := copyShadow(shadowed, x.Params)
			classify(x.Body, info, enclosing, inner, stats)
			return
		}
		inner := copyShadow(nil, x.Params)
		classify(x.Body, info, x.Label, inner, stats)
	case *ast.If:
		classify(x.Test, info, enclosing, shadowed, stats)
		classify(x.Then, info, enclosing, shadowed, stats)
		classify(x.Else, info, enclosing, shadowed, stats)
	case *ast.Set:
		classify(x.Rhs, info, enclosing, shadowed, stats)
	case *ast.Call:
		if plumbingCall(x) {
			for _, sub := range x.Exprs {
				classify(sub, info, enclosing, shadowed, stats)
			}
			return
		}
		stats.Calls++
		switch {
		case !info.IsTail(x):
			stats.NonTail++
		case isSelfCall(x, enclosing, shadowed):
			stats.SelfTail++
		case isKnownClosureCall(x):
			stats.KnownTail++
		default:
			stats.TailOther++
		}
		for _, sub := range x.Exprs {
			classify(sub, info, enclosing, shadowed, stats)
		}
	case *ast.Mon:
		classify(x.Ctc, info, enclosing, shadowed, stats)
		classify(x.Expr, info, enclosing, shadowed, stats)
	}
}

func copyShadow(base map[string]bool, params []string) map[string]bool {
	out := make(map[string]bool, len(base)+len(params))
	for k, v := range base {
		if v {
			out[k] = true
		}
	}
	for _, p := range params {
		out[p] = true
	}
	return out
}

func isSelfCall(c *ast.Call, enclosing string, shadowed map[string]bool) bool {
	if enclosing == "" {
		return false
	}
	v, ok := c.Operator().(*ast.Var)
	return ok && v.Name == enclosing && !shadowed[v.Name]
}

func isKnownClosureCall(c *ast.Call) bool {
	_, ok := c.Operator().(*ast.Lambda)
	return ok
}
