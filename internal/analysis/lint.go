package analysis

// This file packages the space-leak analyzer as a linter: one report per
// program, with a human rendering (tailscan -lint) and stable JSON
// (tailscan -lint -json, pinned by a golden test). A leak is "confirmed"
// when the analyzer found a concrete retention mechanism — the differential
// grid in internal/experiments checks that every confirmed leak's machine
// pair really separates on the meters.

import (
	"fmt"
	"strings"

	"tailspace/internal/ast"
)

// LintReport is the per-program linter output.
type LintReport struct {
	Program string `json:"program"`
	*LeakReport
}

// Lint analyzes one expanded program under a display name.
func Lint(name string, e ast.Expr) *LintReport {
	return &LintReport{Program: name, LeakReport: AnalyzeLeaks(e)}
}

// LintSource expands and lints program text.
func LintSource(name, src string) (*LintReport, error) {
	rep, err := AnalyzeLeaksSource(src)
	if err != nil {
		return nil, err
	}
	return &LintReport{Program: name, LeakReport: rep}, nil
}

// Confirmed reports whether the linter found at least one concrete leak.
func (r *LintReport) Confirmed() bool { return len(r.Leaks) > 0 }

// Render formats the report for terminal output.
func (r *LintReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: control %s", r.Program, r.Control)
	switch n := len(r.Leaks); n {
	case 0:
		b.WriteString("; no space leaks found\n")
	case 1:
		b.WriteString("; 1 space leak\n")
	default:
		fmt.Fprintf(&b, "; %d space leaks\n", n)
	}
	for _, l := range r.Leaks {
		fmt.Fprintf(&b, "  [%s] node %d: %s\n", l.Kind, l.NodeID, l.Expr)
		fmt.Fprintf(&b, "      %s (separates %s)\n", l.Detail, l.Pair)
	}
	fmt.Fprintf(&b, "  predicted machine ordering: %s\n", r.Ordering)
	for _, u := range r.Unresolved {
		pos := "non-tail"
		if u.Tail {
			pos = "tail"
		}
		fmt.Fprintf(&b, "  unresolved %s call (node %d, in %s): %s\n      %s\n", pos, u.NodeID, u.Host, u.Expr, u.Reason)
	}
	for _, lc := range r.Lambdas {
		if len(lc.Dead) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  closure %s (node %d) captures dead: %s (free: %s)\n",
			lc.Label, lc.NodeID, strings.Join(lc.Dead, " "), strings.Join(lc.Free, " "))
	}
	return b.String()
}
